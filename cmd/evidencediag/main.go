// Command evidencediag audits evidence quality at the knowledge-atom
// level: for each evidence condition it reports what fraction of dev atoms
// a matching clause resolves, and whether the resolved fragment is
// execution-correct. It is the tool used to calibrate the reproduction and
// to debug SEED coverage regressions.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/evidence"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/seed"
)

func main() {
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	traceN := flag.Int("trace", 0, "print the stage-graph trace tree for the first n BIRD dev questions and exit")
	fetchTrace := flag.String("fetch-trace", "", "fetch one retained trace by ID from a running seedd (GET /v1/traces/{id}) and render its span tree")
	addr := flag.String("addr", "http://127.0.0.1:8080", "seedd base URL for -fetch-trace")
	flag.Parse()

	if *fetchTrace != "" {
		if err := printRemoteTrace(*addr, *fetchTrace); err != nil {
			fmt.Fprintf(os.Stderr, "fetch-trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	env := experiments.NewEnv(*seedFlag)
	if *traceN > 0 {
		if err := printTraces(env, *traceN); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	conditions := []struct {
		name string
		ev   func(e dataset.Example) string
	}{
		{"bird-provided", func(e dataset.Example) string { return e.Evidence }},
		{"bird-clean", func(e dataset.Example) string { return e.CleanEvidence }},
		{"seed_gpt", mapFunc(env.BIRDSeedEvidence(seed.VariantGPT))},
		{"seed_deepseek", mapFunc(env.BIRDSeedEvidence(seed.VariantDeepSeek))},
		{"seed_revised", mapFunc(env.BIRDRevisedEvidence())},
	}

	fmt.Printf("%-14s %8s %8s %8s %8s %8s\n", "condition", "atoms", "matched", "correct", "wrong", "joins%")
	for _, c := range conditions {
		var atoms, matched, correct, wrong, withJoins, total int
		perKind := map[dataset.AtomKind][2]int{}
		for _, e := range env.BIRD.Dev {
			ev := c.ev(e)
			total++
			if evidence.HasJoins(ev) {
				withJoins++
			}
			clauses := evidence.Parse(ev)
			for _, a := range e.Atoms {
				if a.Kind == dataset.JoinPath {
					continue
				}
				atoms++
				cl, ok := evidence.BestMatch(clauses, a.Term, 0.55)
				if !ok {
					continue
				}
				matched++
				frag := extractLike(cl, a.Kind)
				pk := perKind[a.Kind]
				if frag == a.CorrectFrag || equivalentFrag(frag, a.CorrectFrag) {
					correct++
					pk[0]++
				} else {
					wrong++
					pk[1]++
				}
				perKind[a.Kind] = pk
			}
		}
		fmt.Printf("%-14s %8d %8d %8d %8d %7.1f%%\n", c.name, atoms, matched, correct, wrong,
			100*float64(withJoins)/float64(total))
		for _, k := range []dataset.AtomKind{dataset.ValueMap, dataset.Synonym, dataset.Threshold, dataset.Formula, dataset.ColumnRef} {
			pk := perKind[k]
			fmt.Printf("    %-20s correct=%d wrong=%d\n", k, pk[0], pk[1])
		}
	}
}

// printRemoteTrace fetches one retained trace from a running seedd and
// renders it with the same span-tree renderer sqlsh's .trace uses — the
// operator loop is: make a request, read X-Trace-Id off the response,
// `evidencediag -fetch-trace <id> -addr <replica>`.
func printRemoteTrace(base, id string) error {
	url := strings.TrimRight(base, "/") + "/v1/traces/" + id
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var rec obs.TraceRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return fmt.Errorf("decoding trace: %w", err)
	}
	fmt.Print(obs.RenderTree(&rec))
	return nil
}

// printTraces renders the evidence DAG's provenance tree for the first n
// dev questions: per-stage wall time, token spend and memo hits, indented
// by dependency depth. The second generation of a repeated question shows
// the trace preserved across the evidence cache.
func printTraces(env *experiments.Env, n int) error {
	ctx := context.Background()
	dev := env.BIRD.Dev
	if n > len(dev) {
		n = len(dev)
	}
	for _, ex := range dev[:n] {
		ev, err := env.BIRDSeedEvidenceTraced(ctx, seed.VariantGPT, ex.DB, ex.Question)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.ID, err)
		}
		fmt.Printf("[%s] %s\n", ex.ID, ex.Question)
		fmt.Printf("  evidence: %s\n", ev.Text)
		if ev.CacheHit {
			fmt.Println("  (served from evidence cache; trace below is the original generation)")
		}
		if ev.Trace != nil {
			tree := strings.TrimSuffix(ev.Trace.Tree(), "\n")
			for _, line := range strings.Split(tree, "\n") {
				fmt.Println("  " + line)
			}
		}
		fmt.Println()
	}
	return nil
}

func mapFunc(m map[string]string) func(e dataset.Example) string {
	return func(e dataset.Example) string { return m[e.ID] }
}

// extractLike mirrors the generators' fragment extraction.
func extractLike(c evidence.Clause, kind dataset.AtomKind) string {
	switch kind {
	case dataset.ValueMap, dataset.Synonym:
		if lit, ok := c.ValueLiteral(); ok {
			return lit
		}
		return ""
	case dataset.Threshold, dataset.Formula:
		return c.Body
	case dataset.ColumnRef:
		return c.ColumnSide()
	}
	return ""
}

// equivalentFrag treats qualification differences as equal
// ("laboratory.hct >= 52" vs "hct >= 52").
func equivalentFrag(got, want string) bool {
	return got != "" && (contains(want, got) || contains(got, want))
}

func contains(a, b string) bool {
	return len(b) > 0 && len(a) >= len(b) && (a == b || suffixAfterDot(a) == b || suffixAfterDot(b) == a)
}

func suffixAfterDot(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}
