// Command seedrouter is the fleet front tier: it shards /v1/query and
// /v1/evidence across a set of seedd replicas by consistent hash of
// (db, question), health-probes the fleet, retries and hedges around
// failures, and honors replica backpressure (Retry-After on 429/503).
//
// Usage:
//
//	seedrouter -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	seedrouter -addr 127.0.0.1:0 -addrfile /tmp/seedrouter.addr -replicas ...
//	seedrouter -replicas ... -hedge 100ms -probe-interval 250ms
//
// The routed API is a superset of seedd's client API:
//
//	POST /v1/query, /v1/evidence   -> sharded by (db, question)
//	GET  /v1/dbs, /v1/examples     -> any replica (round-robin)
//	GET  /v1/route?db=&question=   -> shard owner + failover order (debug)
//	GET  /healthz[?ready]          -> router liveness / fleet readiness
//	GET  /metrics                  -> routing counters + per-replica state
//
// Pair each replica with -peers (WAL-shipping replication) and a killed
// replica's shard is served by its ring successor from already-replicated
// evidence — zero LLM calls, zero client 5xx.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening")
	replicas := flag.String("replicas", "", "comma-separated seedd base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default)")
	maxAttempts := flag.Int("max-attempts", 0, "max backend attempts per client request (0 = max(3, replica count))")
	timeout := flag.Duration("timeout", 30*time.Second, "end-to-end client deadline across all attempts")
	attemptTimeout := flag.Duration("attempt-timeout", 10*time.Second, "per-backend-attempt deadline")
	hedge := flag.Duration("hedge", 250*time.Millisecond, "wait this long on an attempt before racing the next ring replica")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "replica health-probe period (0 disables probing)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health-probe round-trip deadline")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures that eject a replica (0 = default 5)")
	breakerProbation := flag.Duration("breaker-probation", 0, "initial ejection duration, doubling while flapping (0 = default 1s)")
	debugAddr := flag.String("debug-addr", "", "loopback-only pprof + runtime/trace listener, e.g. 127.0.0.1:6061 (empty disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	flag.Parse()

	logLevel := slog.LevelInfo
	if *quiet {
		logLevel = slog.LevelWarn
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	urls := splitURLs(*replicas)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "seedrouter: -replicas is required (comma-separated seedd base URLs)")
		os.Exit(2)
	}

	rt, err := fleet.NewRouter(fleet.Config{
		Replicas:         urls,
		VirtualNodes:     *vnodes,
		MaxAttempts:      *maxAttempts,
		RequestTimeout:   *timeout,
		AttemptTimeout:   *attemptTimeout,
		HedgeDelay:       *hedge,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerProbation: *breakerProbation,
		Logger:           log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	fmt.Printf("seedrouter listening on http://%s (%d replicas)\n", bound, len(urls))
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *debugAddr != "" {
		dbgBound, stopDebug, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stopDebug()
		log.Info("debug listener", "addr", "http://"+dbgBound+"/debug/pprof/")
	}

	hs := &http.Server{Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Warn("forced shutdown", "err", err)
		}
	}
}

// splitURLs parses the -replicas flag: comma-separated base URLs, empties
// and surrounding whitespace dropped, trailing slashes trimmed.
func splitURLs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}
