// Command seedd is the SEED serving daemon: it loads one or both synthetic
// corpora and serves the online text-to-SQL API (POST /v1/query,
// POST /v1/evidence, GET /v1/dbs, /v1/examples, /healthz, /metrics) with
// micro-batched evidence generation and admission control.
//
// Usage:
//
//	seedd                                  # BIRD on 127.0.0.1:8080
//	seedd -addr 127.0.0.1:0 -addrfile /tmp/seedd.addr   # ephemeral port, address written to file
//	seedd -corpus both -variant seed_deepseek -rate 500 -inflight 128
//	seedd -store-dir /var/lib/seedd        # durable evidence: warm restarts
//	seedd -addr 127.0.0.1:8081 -store-dir /var/lib/seedd-1 \
//	      -peers http://127.0.0.1:8082,http://127.0.0.1:8083   # fleet member
//
// With -store-dir, every generated evidence entry is persisted
// write-through to a crash-safe store (one subdirectory per corpus) and
// replayed into the evidence cache on startup, so a restarted daemon
// serves the corpus it already paid for without a single LLM call.
// /metrics reports the store counters (records, WAL size, replay time,
// snapshot age).
//
// With -peers, the daemon joins a fleet: it tails every peer's evidence
// store over GET /v1/replicate (WAL shipping) into its own store and
// serving cache, and serves its own WAL to them on the same endpoint. A
// seedrouter in front shards questions across the fleet; when a replica
// dies, the next replica on the ring already holds its shard's evidence
// and serves it with zero LLM calls.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /healthz?ready
// flips to 503 (draining) so routers take it out of rotation, the
// -drain-grace period passes, in-flight requests drain (up to 5s),
// pending micro-batches flush, worker pools stop, and the evidence store
// is flushed and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/seed"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts wrapping an ephemeral port)")
	corpusName := flag.String("corpus", "bird", "corpus to serve: bird, spider or both")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	variant := flag.String("variant", string(seed.VariantGPT), "SEED evidence variant: seed_gpt or seed_deepseek")
	generator := flag.String("generator", "codes-15b", "text-to-SQL generator: codes-{1,3,7,15}b, chess, chess-sscg, rsl-sql, dail-sql, c3")
	workers := flag.Int("workers", 0, "evidence worker pool size per corpus (0 = GOMAXPROCS)")
	cache := flag.Int("cache", 0, "evidence cache capacity in entries (0 = 4096)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "micro-batch window; 0 disables batching")
	batchMax := flag.Int("batch-max", 32, "micro-batch size that forces an early flush")
	rate := flag.Float64("rate", 0, "admission rate limit in requests/second (0 = unlimited)")
	burst := flag.Int("burst", 64, "admission token-bucket burst")
	inflight := flag.Int("inflight", 256, "max in-flight requests (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
	storeDir := flag.String("store-dir", "", "durable evidence store directory: evidence survives restarts, replayed into the cache on startup (empty = in-memory only)")
	storeCompact := flag.Int("store-compact", 0, "store WAL compaction threshold in records (0 = 1024, negative disables)")
	memory := flag.Bool("memory", false, "enable the confidence-gated query memory: verified generations are remembered and paraphrases served with zero pipeline/LLM calls")
	memoryDir := flag.String("memory-dir", "", "durable query-memory directory, patterns survive restarts (requires -memory)")
	peers := flag.String("peers", "", "comma-separated base URLs of the other fleet replicas; their evidence stores are tailed over /v1/replicate into this one (requires -store-dir)")
	replicateEvery := flag.Duration("replicate-interval", 0, "peer WAL poll period (0 = 200ms)")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "on SIGTERM/SIGINT, how long /healthz?ready advertises draining before the listener stops accepting")
	traceCapacity := flag.Int("trace-capacity", 0, "retained traces behind /v1/traces (0 = 256, negative disables tracing)")
	slowQuery := flag.Duration("slow-query", 0, "slow-query threshold: slower traces are always retained and logged (0 disables)")
	debugAddr := flag.String("debug-addr", "", "loopback-only pprof + runtime/trace listener, e.g. 127.0.0.1:6060 (empty disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request logs")
	flag.Parse()

	logLevel := slog.LevelInfo
	if *quiet {
		logLevel = slog.LevelWarn
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	var corpora []*dataset.Corpus
	switch *corpusName {
	case "bird":
		corpora = []*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})}
	case "spider":
		corpora = []*dataset.Corpus{dataset.BuildSpider(*seedFlag)}
	case "both":
		corpora = []*dataset.Corpus{
			dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag}),
			dataset.BuildSpider(*seedFlag),
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown corpus %q (want bird, spider or both)\n", *corpusName)
		os.Exit(2)
	}

	srv, err := server.New(server.Config{
		Corpora:            corpora,
		Client:             llm.NewSimulator(),
		Variant:            seed.Variant(*variant),
		Generator:          *generator,
		EvidenceWorkers:    *workers,
		EvidenceCache:      *cache,
		BatchWindow:        *batchWindow,
		BatchMax:           *batchMax,
		Rate:               *rate,
		Burst:              *burst,
		MaxInFlight:        *inflight,
		RequestTimeout:     *timeout,
		StoreDir:           *storeDir,
		StoreCompactEvery:  *storeCompact,
		StoreSeed:          *seedFlag,
		Memory:             *memory,
		MemoryDir:          *memoryDir,
		Peers:              splitPeers(*peers),
		ReplicateInterval:  *replicateEvery,
		TraceCapacity:      *traceCapacity,
		SlowQueryThreshold: *slowQuery,
		Logger:             log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	totalDBs := 0
	for _, c := range corpora {
		totalDBs += len(c.DBs)
	}
	fmt.Printf("seedd listening on http://%s (%s, %d databases)\n", bound, *corpusName, totalDBs)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *debugAddr != "" {
		dbgBound, stopDebug, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stopDebug()
		log.Info("debug listener", "addr", "http://"+dbgBound+"/debug/pprof/")
	}

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		// Graceful drain: advertise not-ready first so a fleet router
		// stops sending new work, give it a grace period to notice, then
		// stop the listener (finishing in-flight requests), and finally
		// let the deferred srv.Close flush the stores. A second signal
		// during the drain skips straight to shutdown.
		log.Info("draining", "signal", s.String(), "grace", (*drainGrace).String())
		srv.SetDraining(true)
		select {
		case <-time.After(*drainGrace):
		case s2 := <-sig:
			log.Info("second signal, skipping drain grace", "signal", s2.String())
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Warn("forced shutdown", "err", err)
		}
		log.Info("drained")
	}
}

// splitPeers parses the -peers flag: comma-separated base URLs, empties
// and surrounding whitespace dropped.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, strings.TrimRight(p, "/"))
		}
	}
	return out
}
