package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/sqlengine"
	"repro/internal/synth"
)

// The -scalebench mode: throughput-vs-row-count curves over synthetic
// corpora. Every published speedup so far was measured on fixture tables
// of tens-to-hundreds of rows; this snapshot regenerates the financial
// database at 1k, 100k and 1M total rows with internal/synth and measures
// the engine (bulk load, point lookup, aggregate scan, FK join — planner
// on vs off) and the serving path (seedd-style /v1/query QPS over a
// synthesized workload) at each size. BENCH_scale.json is gated by
// benchcheck like every other snapshot: the ratios under "speedups" are
// the pinned wins.

// scaleBenchReport is the BENCH_scale.json schema.
type scaleBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	// FKConsistent is true when every generated corpus passed VerifyFK.
	FKConsistent bool `json:"fk_consistent"`
	// Deterministic is true when two generations from the same seed
	// fingerprinted identically.
	Deterministic bool `json:"deterministic"`
	// Sizes holds one entry per corpus scale, smallest first.
	Sizes []scaleSizeReport `json:"sizes"`
	// Speedups holds the gated headline ratios across sizes.
	Speedups map[string]float64 `json:"speedups"`
}

// scaleSizeReport is one row of the throughput-vs-row-count curve.
type scaleSizeReport struct {
	Label     string `json:"label"`
	TotalRows int    `json:"total_rows"`
	// GenerateRowsPerSec covers model inference + row synthesis + bulk
	// load, i.e. the end-to-end cost of materialising the corpus.
	GenerateRowsPerSec float64 `json:"generate_rows_per_sec"`
	// Benchmarks holds ns/op per measured engine path at this size.
	Benchmarks []engineBenchResult `json:"benchmarks"`
	// ServingQPS is warm micro-batched /v1/query throughput over the
	// synthesized workload; ServingP99Micros its tail latency.
	ServingQPS       float64 `json:"serving_qps"`
	ServingP99Micros float64 `json:"serving_p99_micros"`
}

// scaleSizes are the measured corpus scales. Labels are stable keys: the
// gated speedup names reference them.
var scaleSizes = []struct {
	label string
	total int
	// Serving sample plan: measurement rounds and requests per round as a
	// multiple of the workload size. At 1M rows each request scans close
	// to a million rows, so the full 3×8 plan would burn minutes of CI on
	// a number that is informational (no gated ratio references serving
	// at 1m); fewer, larger-variance samples are the right trade there.
	servingRounds int
	servingMult   int
}{
	{"1k", 1_000, 3, 8},
	{"100k", 100_000, 3, 8},
	{"1m", 1_000_000, 2, 2},
}

// naiveJoinPairLimit bounds the planner-off nested-loop join measurement:
// beyond ~1e7 candidate pairs a single naive execution takes most of a
// second and the measurement window minutes, so larger sizes report only
// the planned join (the curve still shows the planner scaling; the naive
// ratio is gated at a size where both sides are measurable).
const naiveJoinPairLimit = 10_000_000

func writeScaleBench(path string, seed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: seed, CleanDev: true})
	src, ok := corpus.DB("financial")
	if !ok {
		return fmt.Errorf("no financial DB in BIRD corpus")
	}

	report := scaleBenchReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Seed:          seed,
		FKConsistent:  true,
		Deterministic: true,
		Speedups:      map[string]float64{},
	}

	// Determinism probe at the smallest size: two generations, one
	// fingerprint. Cheap, and any batch-seeding regression trips it.
	fpA, err := generateScaleDB(src, seed, scaleSizes[0].total)
	if err != nil {
		return err
	}
	fpB, err := generateScaleDB(src, seed, scaleSizes[0].total)
	if err != nil {
		return err
	}
	if synth.Fingerprint(fpA.db) != synth.Fingerprint(fpB.db) {
		report.Deterministic = false
	}

	perSize := map[string]map[string]float64{}
	for _, size := range scaleSizes {
		progress("%s: generating %d rows", size.label, size.total)
		gen, err := generateScaleDB(src, seed, size.total)
		if err != nil {
			return err
		}
		progress("%s: generated at %.0f rows/s, verifying FKs", size.label, gen.rowsPerSec)
		if err := synth.VerifyFK(gen.db); err != nil {
			fmt.Fprintf(os.Stderr, "scalebench: %s: %v\n", size.label, err)
			report.FKConsistent = false
		}
		sizeReport, byName, err := measureScaleSize(size.label, gen, seed, size.servingRounds, size.servingMult)
		if err != nil {
			return err
		}
		sizeReport.TotalRows = size.total
		sizeReport.GenerateRowsPerSec = gen.rowsPerSec
		report.Sizes = append(report.Sizes, *sizeReport)
		perSize[size.label] = byName
	}

	ratio := func(size, num, den string) float64 {
		m := perSize[size]
		if m == nil || m[den] == 0 {
			return 0
		}
		return m[num] / m[den]
	}
	// Naive-vs-planner point lookup at the largest size: the planner's
	// reason to exist, measured where it matters most.
	report.Speedups["point_lookup_planner_vs_naive_1m"] = ratio("1m", "point_lookup_naive", "point_lookup_planner")
	// The join ratio is gated at 100k, the largest size where the naive
	// nested loop is still measurable (see naiveJoinPairLimit).
	report.Speedups["join_planner_vs_naive_100k"] = ratio("100k", "join_naive", "join_planner")
	// Bulk load vs the SQL INSERT path, measured on the 100k corpus's
	// account table: the reason BulkInsert exists.
	report.Speedups["bulk_load_vs_sql_insert_100k"] = ratio("100k", "sql_insert_load", "bulk_load")

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	for _, s := range report.Sizes {
		fmt.Printf("  %-5s generate %9.0f rows/s   serving %7.0f req/s (p99 %.0fus)\n",
			s.Label, s.GenerateRowsPerSec, s.ServingQPS, s.ServingP99Micros)
	}
	for k, v := range report.Speedups {
		fmt.Printf("  %-36s %.1fx\n", k, v)
	}
	if !report.FKConsistent || !report.Deterministic {
		return fmt.Errorf("scalebench: generated corpora unsound (fk_consistent=%v deterministic=%v)",
			report.FKConsistent, report.Deterministic)
	}
	return nil
}

// progress prints a timestamped phase marker to stderr: scalebench runs
// for minutes in CI, and a silent gate that long reads as a hang.
var progressStart = time.Now()

func progress(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "[%6.1fs] "+format+"\n", append([]any{time.Since(progressStart).Seconds()}, args...)...)
}

// generatedDB is one generated corpus plus its generation throughput.
type generatedDB struct {
	db         *schema.DB
	rowsPerSec float64
	totalRows  int
}

func generateScaleDB(src *schema.DB, seed uint64, total int) (*generatedDB, error) {
	start := time.Now()
	db, err := synth.Generate(src, synth.Options{Seed: seed, Rows: synth.ProportionalRows(src, total)})
	if err != nil {
		return nil, err
	}
	rows := 0
	for _, t := range db.Engine.Tables() {
		rows += len(t.Rows)
	}
	return &generatedDB{
		db:         db,
		rowsPerSec: float64(rows) / time.Since(start).Seconds(),
		totalRows:  rows,
	}, nil
}

// measureScaleSize runs the engine and serving measurements for one
// generated corpus and returns the size report plus a name->ns/op map for
// ratio computation.
func measureScaleSize(label string, gen *generatedDB, seed uint64, servingRounds, servingMult int) (*scaleSizeReport, map[string]float64, error) {
	db := gen.db
	planned := db.Engine
	planned.SetPlanner(true)

	// A second, byte-identical engine with the planner off. Regenerating is
	// cheaper than deep-copying and provably identical (determinism).
	// Reuse the rows already materialised: clone table-by-table.
	naive := cloneEngine(planned)
	naive.SetPlanner(false)

	// The biggest table carries the scan-heavy measurements.
	var big *sqlengine.Table
	for _, t := range planned.Tables() {
		if big == nil || len(t.Rows) > len(big.Rows) {
			big = t
		}
	}
	bigPK := ""
	for _, c := range big.Columns {
		if c.PrimaryKey {
			bigPK = c.Name
			break
		}
	}
	midKey := len(big.Rows) / 2 // seqInt PKs: row i has pk i+1
	pointQ := fmt.Sprintf("SELECT %s FROM %s WHERE %s = %d", bigPK, big.Name, bigPK, midKey)
	aggQ := "SELECT AVG(amount) FROM loan WHERE duration > 12"

	mustExec := func(eng *sqlengine.Database, q string) func() {
		return func() {
			if _, err := eng.Exec(q); err != nil {
				panic(err)
			}
		}
	}
	const short = 100 * time.Millisecond
	progress("%s: engine measurements", label)
	results := []engineBenchResult{
		measure("point_lookup_planner", short, mustExec(planned, pointQ)),
		measure("point_lookup_naive", short, mustExec(naive, pointQ)),
		measure("agg_scan", short, mustExec(planned, aggQ)),
	}

	// FK join: child rows joined to the district dimension. The naive
	// nested loop is only measured while its candidate-pair count stays
	// tractable.
	joinQ := "SELECT COUNT(*) FROM client JOIN district ON client.district_id = district.district_id " +
		"WHERE district.A3 = 'south Bohemia'"
	client, _ := planned.Table("client")
	district, _ := planned.Table("district")
	progress("%s: join measurements", label)
	results = append(results, measure("join_planner", short, mustExec(planned, joinQ)))
	if len(client.Rows)*len(district.Rows) <= naiveJoinPairLimit {
		results = append(results, measure("join_naive", short, mustExec(naive, joinQ)))
	}

	// Load-path comparison on the account table: BulkInsert vs the SQL
	// INSERT statement path, both into fresh single-table engines.
	account, _ := planned.Table("account")
	loadRows := account.Rows
	if len(loadRows) > 25_000 {
		loadRows = loadRows[:25_000] // keep the INSERT side's window short
	}
	stmts := renderInserts(account, loadRows)
	progress("%s: load-path measurements (%d rows)", label, len(loadRows))
	results = append(results,
		measure("bulk_load", short, func() {
			eng := tableShell(account)
			if _, err := eng.BulkInsert(account.Name, loadRows); err != nil {
				panic(err)
			}
		}),
		measure("sql_insert_load", short, func() {
			eng := tableShell(account)
			for _, s := range stmts {
				eng.MustExec(s)
			}
		}),
	)

	// Serving: a synthesized workload over the generated values, served by
	// the full stack (micro-batching on), warm pass then measurement.
	progress("%s: serving measurement", label)
	qps, p99, err := measureServing(db, seed, servingRounds, servingMult)
	if err != nil {
		return nil, nil, err
	}
	progress("%s: done", label)

	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	return &scaleSizeReport{
		Label:            label,
		Benchmarks:       results,
		ServingQPS:       qps,
		ServingP99Micros: p99,
	}, byName, nil
}

// cloneEngine builds a second engine with the same schema and the same row
// slices. Shared backing arrays are safe: both engines only run read-only
// queries during measurement.
func cloneEngine(src *sqlengine.Database) *sqlengine.Database {
	dst := sqlengine.NewDatabase(src.Name)
	for _, t := range src.Tables() {
		dst.MustExec(schema.TableDDL(t))
		clone, _ := dst.Table(t.Name)
		clone.Rows = t.Rows
	}
	return dst
}

// tableShell builds a fresh engine holding only the given table's schema,
// empty — the target for load-path measurements.
func tableShell(t *sqlengine.Table) *sqlengine.Database {
	eng := sqlengine.NewDatabase("shell")
	eng.MustExec(schema.TableDDL(t))
	return eng
}

// renderInserts renders rows as INSERT statements for the SQL-path side of
// the load comparison.
func renderInserts(t *sqlengine.Table, rows [][]sqlengine.Value) []string {
	out := make([]string, len(rows))
	var b strings.Builder
	for i, row := range rows {
		b.Reset()
		fmt.Fprintf(&b, "INSERT INTO %s VALUES (", t.Name)
		for j, v := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			switch {
			case v.IsNull():
				b.WriteString("NULL")
			case v.Kind == sqlengine.KindText:
				b.WriteString("'" + strings.ReplaceAll(v.S, "'", "''") + "'")
			default:
				b.WriteString(v.AsText())
			}
		}
		b.WriteString(")")
		out[i] = b.String()
	}
	return out
}

// measureServing synthesizes a workload over the generated database, wraps
// it as a corpus, and measures warm micro-batched /v1/query throughput.
func measureServing(db *schema.DB, seed uint64, rounds, mult int) (qps, p99 float64, err error) {
	const workloadN = 40
	qs, err := synth.Workload(db, workloadN, seed)
	if err != nil {
		return 0, 0, err
	}
	sc, err := synth.ToCorpus(db, qs)
	if err != nil {
		return 0, 0, err
	}
	const concurrency = 16
	_, base, stop, err := startServer([]*dataset.Corpus{sc}, 2*time.Millisecond, concurrency)
	if err != nil {
		return 0, 0, err
	}
	defer stop()

	payloads := make([][]byte, 0, len(sc.Dev))
	for _, e := range sc.Dev {
		body, err := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		if err != nil {
			return 0, 0, err
		}
		payloads = append(payloads, body)
	}
	ctx := context.Background()
	// Warm pass: evidence cache, sessions, plan cache.
	if _, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: 8,
	}); err != nil {
		return 0, 0, err
	}
	load, err := bestLoad(rounds, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: base, Payloads: payloads, Concurrency: concurrency, Total: mult * len(payloads),
		})
	})
	if err != nil {
		return 0, 0, err
	}
	return load.QPS, load.P99Micros, nil
}
