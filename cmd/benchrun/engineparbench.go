package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/sqlengine"
)

// The -enginebench mode: the columnar/morsel-parallel execution engine
// measured against its own serial fallbacks, on synthetic financial
// corpora at 100k and 1M rows. Three engine configurations share one
// generated corpus per size (cloned table-by-table, so the rows are
// byte-identical by construction):
//
//   - rowwise: planner on, SetVectorized(false) — the pre-columnar
//     executor, one worker.
//   - vec1:    vectorized kernels, SetParallelism(1) — isolates the
//     batch/kernel win from parallelism.
//   - vecN:    vectorized kernels, SetParallelism(NumCPU) — adds the
//     morsel-parallel fan-out.
//
// The gated claims, recorded as booleans the CI lane asserts with jq:
//
//   - cost_invariant / rows_identical: every configuration (plus the
//     naive planner-off executor at 100k, where nested-loop joins are
//     still tractable) returns byte-identical rows AND byte-identical
//     logical Result.Cost for every benchmark query. The cost model is
//     plan-independent by definition; this is the end-to-end check of
//     that definition on corpora too big for the unit-test fixtures.
//   - vectorized_speedup_ok: vec1 beats rowwise by >= 1.5x on the 1M-row
//     filter scan — the single-core vectorization win, no parallelism.
//   - parallel_scaling_ok: vecN beats vec1 on the 1M-row join or
//     aggregate by a NumCPU-scaled target (4x at >= 8 cores, 0.55x/core
//     below that, trivially satisfied on a single-core runner where
//     vecN degenerates to vec1).
//
// The numeric ratios under "speedups" are additionally gated by
// benchcheck against the committed BENCH_engine.json baseline.

type engineParReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	// Workers is the parallelism of the vecN configuration (NumCPU).
	Workers int    `json:"workers"`
	Seed    uint64 `json:"seed"`
	// Gated soundness booleans (see file comment).
	CostInvariant       bool `json:"cost_invariant"`
	RowsIdentical       bool `json:"rows_identical"`
	VectorizedSpeedupOK bool `json:"vectorized_speedup_ok"`
	ParallelScalingOK   bool `json:"parallel_scaling_ok"`
	// ParallelTarget is the NumCPU-scaled minimum the parallel speedup was
	// held to (0 on single-core runners).
	ParallelTarget float64            `json:"parallel_target"`
	Sizes          []engineParSize    `json:"sizes"`
	Speedups       map[string]float64 `json:"speedups"`
}

type engineParSize struct {
	Label      string              `json:"label"`
	TotalRows  int                 `json:"total_rows"`
	Benchmarks []engineBenchResult `json:"benchmarks"`
}

// engineParQueries are the measured shapes. All are subquery-free,
// planner-optimisable, and dominated by exactly one batch operator, so
// each ratio isolates one engine mechanism.
var engineParQueries = []struct {
	key string
	sql string
}{
	// Filter: two pushed conjuncts over the loan scan — the cmp kernels on
	// an int-typed and an int-typed column, highly selective.
	{"filter", "SELECT COUNT(*) FROM loan WHERE amount > 400000 AND duration >= 48"},
	// Join: fact-to-dimension through the parallel hash-join probe (the
	// probe side is the ~N-row client scan). Big-big joins are impossible
	// under the plan-independent cost model — every configuration charges
	// the full |L|·|R| pair count against the 50M budget — so the
	// dimension side is what internal/synth caps at 128 rows.
	{"join", "SELECT COUNT(*) FROM client JOIN district ON client.district_id = district.district_id WHERE district.A3 = 'south Bohemia'"},
	// Aggregate: morsel-parallel grouping over the client scan, then
	// parallel per-group projection across the district groups.
	{"agg", "SELECT district_id, COUNT(*) FROM client GROUP BY district_id ORDER BY district_id"},
}

var engineParSizes = []struct {
	label string
	total int
	// naiveCheck: also cross-check against the planner-off executor. Off
	// at 1M, where the naive nested-loop join alone would take minutes.
	naiveCheck bool
}{
	{"100k", 100_000, true},
	{"1m", 1_000_000, false},
}

func writeEngineParBench(path string, seed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: seed, CleanDev: true})
	src, ok := corpus.DB("financial")
	if !ok {
		return fmt.Errorf("no financial DB in BIRD corpus")
	}

	workers := runtime.NumCPU()
	report := engineParReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		Workers:       workers,
		Seed:          seed,
		CostInvariant: true,
		RowsIdentical: true,
		Speedups:      map[string]float64{},
	}

	perSize := map[string]map[string]float64{}
	for _, size := range engineParSizes {
		progress("%s: generating %d rows", size.label, size.total)
		gen, err := generateScaleDB(src, seed, size.total)
		if err != nil {
			return err
		}

		rowwise := cloneEngine(gen.db.Engine)
		rowwise.SetVectorized(false)
		vec1 := cloneEngine(gen.db.Engine)
		vec1.SetParallelism(1)
		vecN := cloneEngine(gen.db.Engine)
		vecN.SetParallelism(workers)

		configs := []struct {
			key string
			eng *sqlengine.Database
		}{{"rowwise", rowwise}, {"vec1", vec1}, {"vecN", vecN}}

		// Soundness pass: every configuration must agree on rows and Cost
		// for every query — against each other always, and against the
		// naive planner-off executor where tractable.
		progress("%s: cross-config equivalence check", size.label)
		var ref *sqlengine.Database
		refName := "rowwise"
		if size.naiveCheck {
			ref = cloneEngine(gen.db.Engine)
			ref.SetPlanner(false)
			refName = "naive"
		} else {
			ref = rowwise
		}
		for _, q := range engineParQueries {
			want, err := ref.Exec(q.sql)
			if err != nil {
				return fmt.Errorf("%s: %s: %s: %v", size.label, refName, q.key, err)
			}
			for _, cfg := range configs {
				got, err := cfg.eng.Exec(q.sql)
				if err != nil {
					return fmt.Errorf("%s: %s: %s: %v", size.label, cfg.key, q.key, err)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					report.RowsIdentical = false
					fmt.Fprintf(os.Stderr, "enginebench: %s: %s rows diverge from %s on %q\n", size.label, cfg.key, refName, q.sql)
				}
				if got.Cost != want.Cost {
					report.CostInvariant = false
					fmt.Fprintf(os.Stderr, "enginebench: %s: %s Cost %d != %s %d on %q\n", size.label, cfg.key, got.Cost, refName, want.Cost, q.sql)
				}
			}
		}

		// Timing pass.
		const short = 100 * time.Millisecond
		var results []engineBenchResult
		byName := map[string]float64{}
		for _, q := range engineParQueries {
			for _, cfg := range configs {
				progress("%s: measuring %s_%s", size.label, q.key, cfg.key)
				sql := q.sql
				eng := cfg.eng
				r := measure(q.key+"_"+cfg.key, short, func() {
					if _, err := eng.Exec(sql); err != nil {
						panic(err)
					}
				})
				results = append(results, r)
				byName[r.Name] = r.NsPerOp
			}
		}
		report.Sizes = append(report.Sizes, engineParSize{
			Label:      size.label,
			TotalRows:  gen.totalRows,
			Benchmarks: results,
		})
		perSize[size.label] = byName
	}

	ratio := func(size, num, den string) float64 {
		m := perSize[size]
		if m == nil || m[den] == 0 {
			return 0
		}
		return m[num] / m[den]
	}
	report.Speedups["filter_vectorized_vs_rowwise_100k"] = ratio("100k", "filter_rowwise", "filter_vec1")
	report.Speedups["filter_vectorized_vs_rowwise_1m"] = ratio("1m", "filter_rowwise", "filter_vec1")
	report.Speedups["join_parallel_ncore_vs_1core_1m"] = ratio("1m", "join_vec1", "join_vecN")
	report.Speedups["agg_parallel_ncore_vs_1core_1m"] = ratio("1m", "agg_vec1", "agg_vecN")

	report.VectorizedSpeedupOK = report.Speedups["filter_vectorized_vs_rowwise_1m"] >= 1.5
	report.ParallelTarget = parallelTarget(workers)
	bestPar := report.Speedups["join_parallel_ncore_vs_1core_1m"]
	if s := report.Speedups["agg_parallel_ncore_vs_1core_1m"]; s > bestPar {
		bestPar = s
	}
	report.ParallelScalingOK = bestPar >= report.ParallelTarget

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	for k, v := range report.Speedups {
		fmt.Printf("  %-36s %.2fx\n", k, v)
	}
	fmt.Printf("  cost_invariant=%v rows_identical=%v vectorized_speedup_ok=%v parallel_scaling_ok=%v (target %.2fx at %d cores)\n",
		report.CostInvariant, report.RowsIdentical, report.VectorizedSpeedupOK, report.ParallelScalingOK,
		report.ParallelTarget, workers)
	if !report.CostInvariant || !report.RowsIdentical {
		return fmt.Errorf("enginebench: execution configurations are not equivalent (cost_invariant=%v rows_identical=%v)",
			report.CostInvariant, report.RowsIdentical)
	}
	return nil
}

// parallelTarget is the NumCPU-scaled minimum N-core speedup: the paper
// claim is >= 4x on 8 cores; below 8 cores the bar scales at 0.55x per
// core (parallel efficiency well under the linear ideal, robust to CI
// runner noise), and a single-core runner — where the N-core config IS
// the 1-core config — gates nothing.
func parallelTarget(workers int) float64 {
	switch {
	case workers >= 8:
		return 4.0
	case workers <= 1:
		return 0
	default:
		return 0.55 * float64(workers)
	}
}
