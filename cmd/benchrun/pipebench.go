package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/seed"
)

// The -pipebench mode: the evidence-pipeline perf snapshot. It compares
// cold GenerateEvidence wall time between the pre-refactor sequential
// call chain (GenerateEvidenceSequential) and the stage DAG, per variant,
// with the simulator configured to charge a per-call API latency — the
// cost that dominates a deployed SEED, where every LLM request is a
// network round trip. The DAG's win is stage overlap: schema
// summarization's LLM call runs concurrently with keyword extraction and
// sampling, so the deepseek variant hides one of its three round trips
// entirely. Stage memos are reset before every DAG run so the cold
// comparison measures overlap only, never memo hits.
//
// A second scenario measures the warm partial hit: the same question
// text against a different database, where the question-keyed
// extract_keywords memo answers while the db-keyed stages regenerate.
//
// Byte-identity between the two paths is checked on every question and
// reported in the snapshot; the golden test in internal/seed pins the
// same property over the full dev slice.

// pipeBenchLatency is the simulated per-LLM-call API round trip. Small
// enough to keep the snapshot fast, large enough to dominate the
// simulator's CPU cost the way real API latency (hundreds of
// milliseconds) dominates real pipelines.
const pipeBenchLatency = 5 * time.Millisecond

// pipeBenchReport is the BENCH_pipeline.json schema.
type pipeBenchReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	Seed        uint64  `json:"seed"`
	LatencyMS   float64 `json:"simulated_llm_latency_ms"`
	// Questions is the BIRD dev question count replayed per variant.
	Questions int `json:"questions"`
	// Variants holds the cold sequential-vs-DAG comparison per SEED
	// variant.
	Variants map[string]*pipeVariantBench `json:"variants"`
	// SpeedupCold is the headline number: cold DAG speedup over the
	// sequential chain for the deepseek variant, whose summarization
	// stage gives the DAG a whole LLM round trip to hide.
	SpeedupCold float64 `json:"speedup_cold_dag_vs_sequential"`
	// ByteIdentical reports that every DAG generation matched its
	// sequential twin byte for byte.
	ByteIdentical bool `json:"byte_identical"`
	// PartialWarm is the cross-database memo-reuse scenario.
	PartialWarm *partialWarmBench `json:"partial_warm"`
}

// pipeVariantBench is one variant's cold comparison.
type pipeVariantBench struct {
	// SequentialUS and DagUS are total cold wall times over all questions.
	SequentialUS int64 `json:"sequential_us"`
	DagUS        int64 `json:"dag_us"`
	// Speedup is SequentialUS / DagUS.
	Speedup float64 `json:"speedup"`
	// MeanOverlap is the mean trace overlap (stage-seconds per
	// wall-second): 1.0 would mean the DAG ran fully sequentially.
	MeanOverlap float64 `json:"mean_overlap"`
	// Stages is the per-stage cost aggregation across the DAG runs.
	Stages []pipeline.StageAgg `json:"stages"`
}

// partialWarmBench measures a warm partial hit: same question text,
// different database, against the gpt variant.
type partialWarmBench struct {
	Variant string `json:"variant"`
	// ColdUS is the fully cold generation on the first database;
	// WarmUS is the same question against a second database, where the
	// question-keyed keyword memo answers.
	ColdUS int64 `json:"cold_us"`
	WarmUS int64 `json:"warm_us"`
	// Speedup is ColdUS / WarmUS.
	Speedup float64 `json:"speedup"`
	// SkippedStages lists the stages served from memo on the warm run.
	SkippedStages []string `json:"skipped_stages"`
}

func writePipeBench(path string, corpusSeed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})
	questions := corpus.Dev
	if len(questions) > 48 {
		questions = questions[:48]
	}
	report := &pipeBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        corpusSeed,
		LatencyMS:   float64(pipeBenchLatency) / float64(time.Millisecond),
		Questions:   len(questions),
		Variants:    make(map[string]*pipeVariantBench),
	}
	report.ByteIdentical = true

	for _, cfg := range []seed.Config{seed.ConfigGPT(), seed.ConfigDeepSeek()} {
		client := llm.NewSimulator()
		client.SetLatency(pipeBenchLatency)
		p := seed.New(cfg, client, corpus)
		agg := pipeline.NewAggregator()
		vb := &pipeVariantBench{}
		var overlapSum float64
		for _, ex := range questions {
			t0 := time.Now()
			sev, err := p.GenerateEvidenceSequential(ex.DB, ex.Question)
			if err != nil {
				return fmt.Errorf("pipebench %s sequential %s: %w", cfg.Variant, ex.ID, err)
			}
			vb.SequentialUS += time.Since(t0).Microseconds()

			// Reset the stage memos so the DAG run is genuinely cold:
			// this measures stage overlap, not memoization.
			p.ResetStageMemos()
			t0 = time.Now()
			dev, tr, err := p.GenerateEvidenceTraced(context.Background(), ex.DB, ex.Question)
			if err != nil {
				return fmt.Errorf("pipebench %s dag %s: %w", cfg.Variant, ex.ID, err)
			}
			vb.DagUS += time.Since(t0).Microseconds()
			if dev != sev {
				report.ByteIdentical = false
			}
			agg.Observe(tr)
			overlapSum += tr.Overlap()
		}
		if vb.DagUS > 0 {
			vb.Speedup = float64(vb.SequentialUS) / float64(vb.DagUS)
		}
		vb.MeanOverlap = overlapSum / float64(len(questions))
		vb.Stages = agg.Snapshot()
		report.Variants[string(cfg.Variant)] = vb
	}
	report.SpeedupCold = report.Variants[string(seed.VariantDeepSeek)].Speedup

	// Partial warm: warm the question-keyed keyword memo on one database,
	// then replay the same question text against a different database.
	pw, err := measurePartialWarm(corpus, questions)
	if err != nil {
		return err
	}
	report.PartialWarm = pw

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	for name, vb := range report.Variants {
		fmt.Printf("  %-14s cold sequential %7.1fms  cold DAG %7.1fms  speedup %.2fx  overlap %.2fx\n",
			name,
			float64(vb.SequentialUS)/1e3, float64(vb.DagUS)/1e3, vb.Speedup, vb.MeanOverlap)
	}
	fmt.Printf("  partial warm (%s): cold %.2fms -> warm %.2fms (%.2fx), skipped %v\n",
		pw.Variant, float64(pw.ColdUS)/1e3, float64(pw.WarmUS)/1e3, pw.Speedup, pw.SkippedStages)
	fmt.Printf("  byte identical: %v\n", report.ByteIdentical)
	return nil
}

// measurePartialWarm times the cross-database memo hit on the gpt
// variant. To keep the timing stable it replays the pair several times on
// fresh memos and reports the fastest cold/warm pair — this ratio is a
// benchcheck-gated metric, and minimums over sleep-dominated runs are
// what stay comparable across contended CI machines.
func measurePartialWarm(corpus *dataset.Corpus, questions []dataset.Example) (*partialWarmBench, error) {
	// Find two distinct databases in the slice.
	dbA := questions[0].DB
	dbB := ""
	for _, ex := range questions {
		if ex.DB != dbA {
			dbB = ex.DB
			break
		}
	}
	if dbB == "" {
		for name := range corpus.DBs {
			if name != dbA {
				dbB = name
				break
			}
		}
	}
	q := questions[0].Question

	client := llm.NewSimulator()
	client.SetLatency(pipeBenchLatency)
	cfg := seed.ConfigGPT()
	p := seed.New(cfg, client, corpus)

	pw := &partialWarmBench{Variant: string(cfg.Variant)}
	for rep := 0; rep < 9; rep++ {
		p.ResetStageMemos()
		t0 := time.Now()
		if _, _, err := p.GenerateEvidenceTraced(context.Background(), dbA, q); err != nil {
			return nil, fmt.Errorf("pipebench partial-warm cold: %w", err)
		}
		cold := time.Since(t0).Microseconds()

		t0 = time.Now()
		_, tr, err := p.GenerateEvidenceTraced(context.Background(), dbB, q)
		if err != nil {
			return nil, fmt.Errorf("pipebench partial-warm warm: %w", err)
		}
		warm := time.Since(t0).Microseconds()
		if pw.ColdUS == 0 || cold < pw.ColdUS {
			pw.ColdUS = cold
		}
		if pw.WarmUS == 0 || warm < pw.WarmUS {
			pw.WarmUS = warm
		}
		if rep == 0 {
			for _, st := range tr.Stages {
				if st.CacheHit {
					pw.SkippedStages = append(pw.SkippedStages, st.Stage)
				}
			}
		}
	}
	if pw.WarmUS > 0 {
		pw.Speedup = float64(pw.ColdUS) / float64(pw.WarmUS)
	}
	return pw, nil
}
