package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/evserve"
	"repro/internal/evstore"
	"repro/internal/llm"
	"repro/internal/seed"
)

// The -storebench mode: the durability perf snapshot. It measures what
// the durable evidence store buys across a process restart, in three
// phases over the BIRD dev questions:
//
//	cold         — fresh store, fresh service: every request is a full
//	               pipeline generation (and a write-through append).
//	steady       — the same service replays the questions: the in-memory
//	               cache answers everything. This is the steady-state
//	               serving regime the store must recover.
//	warm restart — the service and store are closed (process death), the
//	               store is reopened and replayed into a brand-new
//	               service with a brand-new simulator, and the questions
//	               replay again.
//
// The acceptance criterion is recovery_hit_ratio: the warm-restart pass
// must recover at least 95% of the steady-state cache hit rate — with
// zero LLM calls and byte-identical evidence and traces. Before the
// store existed, a restart meant re-paying cold generation for the whole
// corpus; the headline speedup warm_restart_vs_cold is that bill.

// storeBenchLatency models the per-LLM-call API round trip during the
// cold phase, so the cold/warm gap reflects deployed economics rather
// than simulator CPU cost.
const storeBenchLatency = 2 * time.Millisecond

// storePhase is one measured replay of the question set.
type storePhase struct {
	WallUS int64 `json:"wall_us"`
	// QPS is questions served per second of phase wall time.
	QPS float64 `json:"qps"`
	// HitRate is the evidence-cache hit rate over this phase only.
	HitRate float64 `json:"hit_rate"`
	// Generations counts pipeline runs during the phase.
	Generations int64 `json:"generations"`
	// LLMCalls counts simulated LLM API calls during the phase.
	LLMCalls int `json:"llm_calls"`
}

// storeBenchReport is the BENCH_store.json schema.
type storeBenchReport struct {
	GeneratedAt string  `json:"generated_at"`
	GoVersion   string  `json:"go_version"`
	NumCPU      int     `json:"num_cpu"`
	Seed        uint64  `json:"seed"`
	LatencyMS   float64 `json:"simulated_llm_latency_ms"`
	// Questions is the BIRD dev question count replayed per phase.
	Questions int `json:"questions"`
	// Store snapshots the reopened store after replay: records on disk,
	// replay wall time.
	Store evstore.Stats `json:"store"`
	// Restored counts cache entries replayed into the restarted service.
	Restored int64 `json:"restored"`

	Cold        storePhase `json:"cold"`
	Steady      storePhase `json:"steady"`
	WarmRestart storePhase `json:"warm_restart"`

	// ByteIdentical reports every warm-restart response (evidence and
	// trace) matched its cold twin byte for byte.
	ByteIdentical bool `json:"byte_identical"`
	// ZeroLLMCallsOnRestart is the durability promise: the restarted
	// service answered the whole corpus without one simulator call.
	ZeroLLMCallsOnRestart bool `json:"zero_llm_calls_on_restart"`
	// RecoveryHitRatio is WarmRestart.HitRate / Steady.HitRate — the
	// acceptance criterion (>= 0.95).
	RecoveryHitRatio float64 `json:"recovery_hit_ratio"`
	// WarmVsSteadyWallRatio compares the warm-restart pass to the steady
	// pass it is meant to recover. Informational only: both passes are
	// pure cache lookups measured over microseconds, so the ratio is too
	// noisy for the regression gate (which keys on "speedup"/"recovery").
	WarmVsSteadyWallRatio float64 `json:"warm_vs_steady_wall_ratio"`
	// Speedups are the ratios the CI benchcheck gate pins.
	Speedups map[string]float64 `json:"speedups"`
}

// runStorePhase replays the requests through the service and measures the
// phase relative to the counters before it started.
func runStorePhase(svc *evserve.Service, client *llm.Simulator, reqs []evserve.Request) (storePhase, []evserve.Result, error) {
	before := svc.Stats()
	callsBefore := client.LedgerSnapshot().TotalCalls()
	t0 := time.Now()
	results, err := svc.GenerateAll(context.Background(), reqs)
	wall := time.Since(t0)
	if err != nil {
		return storePhase{}, nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return storePhase{}, nil, fmt.Errorf("request %s/%s: %w", r.Request.DB, r.Request.Question, r.Err)
		}
	}
	after := svc.Stats()
	ph := storePhase{
		WallUS:      wall.Microseconds(),
		Generations: after.Generations - before.Generations,
		LLMCalls:    client.LedgerSnapshot().TotalCalls() - callsBefore,
	}
	if wall > 0 {
		ph.QPS = float64(len(reqs)) / wall.Seconds()
	}
	if probes := (after.Cache.Hits - before.Cache.Hits) + (after.Cache.Misses - before.Cache.Misses); probes > 0 {
		ph.HitRate = float64(after.Cache.Hits-before.Cache.Hits) / float64(probes)
	}
	return ph, results, nil
}

// entryBytes renders one result's evidence+trace for byte comparison.
func entryBytes(r evserve.Result) ([]byte, error) {
	return json.Marshal(struct {
		Evidence string `json:"evidence"`
		Trace    any    `json:"trace"`
	}{r.Evidence, r.Trace})
}

func writeStoreBench(path string, corpusSeed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})
	reqs := make([]evserve.Request, len(corpus.Dev))
	for i, e := range corpus.Dev {
		reqs[i] = evserve.Request{DB: e.DB, Question: e.Question}
	}
	dir, err := os.MkdirTemp("", "storebench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := &storeBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        corpusSeed,
		LatencyMS:   float64(storeBenchLatency) / float64(time.Millisecond),
		Questions:   len(reqs),
		Speedups:    make(map[string]float64),
	}

	// First life: cold generation + steady-state serving.
	manifest := evstore.Manifest("bird", corpusSeed)
	store, err := evstore.Open(dir, evstore.Options{Manifest: manifest})
	if err != nil {
		return err
	}
	client := llm.NewSimulator()
	client.SetLatency(storeBenchLatency)
	p := seed.New(seed.ConfigGPT(), client, corpus)
	svc := evserve.New(evserve.Options{
		Variant:        string(seed.VariantGPT),
		GenerateTraced: p.GenerateEvidenceTraced,
		Store:          store,
	})
	cold, coldResults, err := runStorePhase(svc, client, reqs)
	if err != nil {
		return fmt.Errorf("storebench cold: %w", err)
	}
	report.Cold = cold
	steady, _, err := runStorePhase(svc, client, reqs)
	if err != nil {
		return fmt.Errorf("storebench steady: %w", err)
	}
	report.Steady = steady
	svc.Close()
	if err := store.Close(); err != nil {
		return err
	}

	// Second life: reopen, replay, serve warm with a fresh simulator.
	store2, err := evstore.Open(dir, evstore.Options{Manifest: manifest})
	if err != nil {
		return err
	}
	defer store2.Close()
	client2 := llm.NewSimulator()
	client2.SetLatency(storeBenchLatency)
	p2 := seed.New(seed.ConfigGPT(), client2, corpus)
	svc2 := evserve.New(evserve.Options{
		Variant:        string(seed.VariantGPT),
		GenerateTraced: p2.GenerateEvidenceTraced,
		Store:          store2,
	})
	defer svc2.Close()
	report.Restored = svc2.Stats().Restored
	warm, warmResults, err := runStorePhase(svc2, client2, reqs)
	if err != nil {
		return fmt.Errorf("storebench warm restart: %w", err)
	}
	report.WarmRestart = warm
	report.Store = store2.Stats()

	report.ByteIdentical = true
	for i := range coldResults {
		a, err := entryBytes(coldResults[i])
		if err != nil {
			return err
		}
		b, err := entryBytes(warmResults[i])
		if err != nil {
			return err
		}
		if string(a) != string(b) {
			report.ByteIdentical = false
			break
		}
	}
	report.ZeroLLMCallsOnRestart = warm.LLMCalls == 0 && warm.Generations == 0
	if report.Steady.HitRate > 0 {
		report.RecoveryHitRatio = report.WarmRestart.HitRate / report.Steady.HitRate
	}
	if warm.WallUS > 0 {
		report.Speedups["warm_restart_vs_cold"] = float64(cold.WallUS) / float64(warm.WallUS)
	}
	if steady.WallUS > 0 && warm.WallUS > 0 {
		report.WarmVsSteadyWallRatio = float64(steady.WallUS) / float64(warm.WallUS)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  cold          %8.0f q/s  (hit rate %.2f, %d LLM calls)\n", cold.QPS, cold.HitRate, cold.LLMCalls)
	fmt.Printf("  steady        %8.0f q/s  (hit rate %.2f)\n", steady.QPS, steady.HitRate)
	fmt.Printf("  warm restart  %8.0f q/s  (hit rate %.2f, %d LLM calls, replay %.1fms, %d records)\n",
		warm.QPS, warm.HitRate, warm.LLMCalls,
		float64(report.Store.ReplayMicros)/1e3, report.Store.Records)
	fmt.Printf("  recovery %.3f of steady hit rate, byte identical %v, warm-vs-cold %.0fx\n",
		report.RecoveryHitRatio, report.ByteIdentical, report.Speedups["warm_restart_vs_cold"])
	return nil
}
