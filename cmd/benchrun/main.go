// Command benchrun regenerates the paper's tables and figures from the
// synthetic corpora.
//
// Usage:
//
//	benchrun -exp table4            # one experiment
//	benchrun -exp all -sample 4     # everything, sampled dev for speed
//	benchrun -exp all -stats        # plus service throughput + plan cache reports
//	benchrun -benchjson BENCH_sqlengine.json   # emit the engine perf snapshot and exit
//	benchrun -servebench BENCH_server.json     # emit the serving perf snapshot and exit
//	benchrun -pipebench BENCH_pipeline.json    # emit the evidence-pipeline snapshot and exit
//	benchrun -storebench BENCH_store.json      # emit the durability (warm-restart) snapshot and exit
//	benchrun -scalebench BENCH_scale.json      # emit the scale snapshot (1k/100k/1M-row synthetic corpora) and exit
//	benchrun -fleetbench BENCH_fleet.json      # emit the fleet fault-tolerance snapshot (QPS scaling, chaos, failover) and exit
//	benchrun -obsbench BENCH_obs.json          # emit the observability snapshot (tracing on/off overhead, routed-trace coverage) and exit
//	benchrun -enginebench BENCH_engine.json    # emit the columnar/parallel execution snapshot (vectorized + morsel-parallel vs row-wise) and exit
//	benchrun -memorybench BENCH_memory.json    # emit the query-memory snapshot (paraphrase hit rate, zero-LLM hit serving vs pipeline, EX on/off) and exit
//
// Experiments: fig2, fig3, table1, table2, table3, table4, table5,
// table6, table7, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2, fig3, table1..table7, all)")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	sample := flag.Int("sample", 1, "evaluate every n-th dev example (1 = full split)")
	stats := flag.Bool("stats", false, "print the evidence-service throughput and plan-cache reports at the end")
	benchJSON := flag.String("benchjson", "", "write the sqlengine perf snapshot (cold parse, cached plan, nested vs hash join, Evaluate pass) to this JSON file and exit")
	serveBench := flag.String("servebench", "", "write the serving perf snapshot (serial vs concurrent vs micro-batched /v1/query load) to this JSON file and exit")
	pipeBench := flag.String("pipebench", "", "write the evidence-pipeline perf snapshot (cold sequential vs stage-DAG generation, partial-warm memo reuse) to this JSON file and exit")
	storeBench := flag.String("storebench", "", "write the durability perf snapshot (cold vs steady vs warm-restart serving over the evidence store) to this JSON file and exit")
	scaleBench := flag.String("scalebench", "", "write the scale perf snapshot (synthetic corpora at 1k/100k/1M rows: generation, engine planner on/off, serving QPS) to this JSON file and exit")
	fleetBench := flag.String("fleetbench", "", "write the fleet fault-tolerance snapshot (routed QPS scaling 1 vs 3 replicas, p99 under injected chaos, failover takeover time) to this JSON file and exit")
	obsBench := flag.String("obsbench", "", "write the observability snapshot (serving QPS with tracing+metrics on vs off, routed-trace span coverage) to this JSON file and exit")
	engineBench := flag.String("enginebench", "", "write the columnar/parallel execution snapshot (row-wise vs vectorized vs N-core morsel-parallel on 100k/1M synth corpora, plus cost-invariance check) to this JSON file and exit")
	memoryBench := flag.String("memorybench", "", "write the query-memory snapshot (paraphrase hit rate, zero-LLM hit serving vs per-request pipeline, EX memory on/off) to this JSON file and exit")
	storeDir := flag.String("store-dir", "", "durable evidence store directory for the experiment drivers (same layout as seedd -store-dir): repeat runs replay instead of regenerating")
	flag.Parse()

	if *benchJSON != "" {
		if err := writeEngineBench(*benchJSON, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveBench != "" {
		if err := writeServerBench(*serveBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "servebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pipeBench != "" {
		if err := writePipeBench(*pipeBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storeBench != "" {
		if err := writeStoreBench(*storeBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "storebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scaleBench != "" {
		if err := writeScaleBench(*scaleBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "scalebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fleetBench != "" {
		if err := writeFleetBench(*fleetBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *obsBench != "" {
		if err := writeObsBench(*obsBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "obsbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *engineBench != "" {
		if err := writeEngineParBench(*engineBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "enginebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *memoryBench != "" {
		if err := writeMemoryBench(*memoryBench, *seedFlag); err != nil {
			fmt.Fprintf(os.Stderr, "memorybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var env *experiments.Env
	if *storeDir != "" {
		env = experiments.NewEnvWithStore(*seedFlag, *storeDir)
	} else {
		env = experiments.NewEnv(*seedFlag)
	}
	defer env.Close()
	run := func(id string) {
		start := time.Now()
		switch id {
		case "fig2":
			fmt.Println(experiments.Fig2(env).Render())
		case "fig3":
			fmt.Println(experiments.Fig3Trace(env))
		case "table1":
			fmt.Println(experiments.Table1(env).Render())
		case "table2":
			fmt.Println(experiments.Table2(env).Render())
		case "table3":
			fmt.Println(experiments.Table3(env).Render())
		case "table4":
			fmt.Println(experiments.Table4(env, *sample).Render())
		case "table5":
			fmt.Println(experiments.Table5(env).Render())
		case "table6":
			fmt.Println(experiments.Table6(env).Render())
		case "table7":
			fmt.Println(experiments.Table7(env, *sample).Render())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, id := range []string{"fig2", "table1", "table2", "table3", "table4", "table5", "table6", "table7", "fig3"} {
			run(id)
		}
	} else {
		run(*exp)
	}
	if *stats {
		fmt.Println(experiments.ThroughputReport(env).Render())
		fmt.Println(experiments.PipelineStageReport(env).Render())
		fmt.Println(experiments.PlanCacheReport(env).Render())
	}
}
