package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/sqlengine"
	"repro/internal/texttosql"
)

// The -benchjson mode: an in-process perf snapshot of the SQL engine's hot
// paths, written as machine-readable JSON so the perf trajectory is
// comparable across PRs without a `go test -bench` harness. Measurements
// mirror the sqlengine/eval benchmark suites: cold parse vs cached plan,
// nested-loop vs hash join on the 3-table financial query, indexed vs
// scanned point lookup, and a full Evaluate pass planner-on vs planner-off.

// engineBenchReport is the BENCH_sqlengine.json schema.
type engineBenchReport struct {
	// GeneratedAt is the snapshot timestamp (RFC 3339).
	GeneratedAt string `json:"generated_at"`
	// GoVersion and NumCPU identify the measurement environment.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Seed is the corpus generation seed the fixtures were built with.
	Seed uint64 `json:"seed"`
	// Benchmarks holds ns/op per measured path.
	Benchmarks []engineBenchResult `json:"benchmarks"`
	// Speedups holds the headline ratios derived from Benchmarks.
	Speedups map[string]float64 `json:"speedups"`
}

type engineBenchResult struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// measureRounds is how many independent timing windows each benchmark
// runs; the fastest round wins. The minimum is the noise-robust
// estimator — scheduler contention and GC only ever add time — and these
// ratios feed the CI benchcheck gate, so single-window means would make
// the gate flaky on shared runners.
const measureRounds = 3

// measure times fn over measureRounds windows of at least minDur (and at
// least 5 ops each) and returns the fastest round's mean ns/op.
func measure(name string, minDur time.Duration, fn func()) engineBenchResult {
	// Warm-up run (builds lazy indexes, fills caches where intended).
	fn()
	best := engineBenchResult{Name: name}
	for round := 0; round < measureRounds; round++ {
		ops := 0
		start := time.Now()
		for time.Since(start) < minDur || ops < 5 {
			fn()
			ops++
		}
		elapsed := time.Since(start)
		nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
		if best.Ops == 0 || nsPerOp < best.NsPerOp {
			best.NsPerOp = nsPerOp
			best.Ops = ops
		}
	}
	return best
}

// join3Query is the 3-table equi-join target, the same statement the
// sqlengine benchmark suite uses.
const join3Query = "SELECT c.client_id, a.account_id, a.frequency " +
	"FROM client AS c JOIN disp AS d ON d.client_id = c.client_id " +
	"JOIN account AS a ON a.account_id = d.account_id " +
	"WHERE a.frequency = 'POPLATEK TYDNE' AND c.gender = 'F'"

const pointQuery = "SELECT account_id, date FROM account WHERE account_id = 77"

// goldEcho returns the gold SQL verbatim, isolating the evaluation
// pipeline itself.
type goldEcho struct{}

func (goldEcho) Name() string                              { return "gold-echo" }
func (goldEcho) Generate(t texttosql.Task) (string, error) { return t.Example.GoldSQL, nil }

func writeEngineBench(path string, seed uint64) error {
	financial := func(planner bool) *sqlengine.Database {
		corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: seed})
		db, ok := corpus.DB("financial")
		if !ok {
			panic("no financial DB in BIRD corpus")
		}
		db.Engine.SetPlanner(planner)
		return db.Engine
	}
	evaluatePass := func(planner bool) func() {
		corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: seed})
		for _, db := range corpus.DBs {
			db.Engine.SetPlanner(planner)
		}
		runner := eval.NewRunner(corpus)
		return func() { runner.Evaluate(goldEcho{}, corpus.Dev, eval.NoEvidence) }
	}

	naive := financial(false)
	planned := financial(true)
	mustExec := func(eng *sqlengine.Database, q string) func() {
		return func() {
			if _, err := eng.Exec(q); err != nil {
				panic(err)
			}
		}
	}

	const short = 150 * time.Millisecond
	report := engineBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Speedups:    map[string]float64{},
	}
	results := []engineBenchResult{
		measure("parse_cold", short, func() {
			if _, err := sqlengine.Parse(join3Query); err != nil {
				panic(err)
			}
		}),
		measure("plan_cached", short, func() {
			if _, err := planned.Prepare(join3Query); err != nil {
				panic(err)
			}
		}),
		measure("join3_nested", 500*time.Millisecond, mustExec(naive, join3Query)),
		measure("join3_hash", short, mustExec(planned, join3Query)),
		measure("point_lookup_scan", short, mustExec(naive, pointQuery)),
		measure("point_lookup_indexed", short, mustExec(planned, pointQuery)),
		measure("evaluate_planner_off", time.Second, evaluatePass(false)),
		measure("evaluate_planner_on", 500*time.Millisecond, evaluatePass(true)),
	}
	report.Benchmarks = results

	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	ratio := func(num, den string) float64 {
		if byName[den] == 0 {
			return 0
		}
		return byName[num] / byName[den]
	}
	report.Speedups["prepare_vs_cold_parse"] = ratio("parse_cold", "plan_cached")
	report.Speedups["join3_hash_vs_nested"] = ratio("join3_nested", "join3_hash")
	report.Speedups["point_lookup_index_vs_scan"] = ratio("point_lookup_scan", "point_lookup_indexed")
	report.Speedups["evaluate_planner_vs_naive"] = ratio("evaluate_planner_off", "evaluate_planner_on")

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	for k, v := range report.Speedups {
		fmt.Printf("  %-28s %.1fx\n", k, v)
	}
	return nil
}
