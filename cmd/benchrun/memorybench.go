package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/qmemory"
	"repro/internal/schema"
	"repro/internal/seed"
	"repro/internal/server"
	"repro/internal/synth"
)

// The -memorybench mode: the confidence-gated query-memory snapshot. A
// synthesized financial corpus is served twice — once with the memory on,
// once without — over a paraphrased workload (internal/synth emits 2-3
// literal-preserving paraphrases per canonical question):
//
//	teach      — every canonical question is served once (judged-correct
//	             generations admit patterns), then replayed once; the
//	             replays that answer source=memory are the learned set.
//	paraphrase — every paraphrase of a learned question is served once.
//	             These are questions the server has NEVER seen: a
//	             source=memory answer is a semantic (vector+BM25) match
//	             against the canonical pattern, verified by execution
//	             before serving. hit_rate is the gated fraction.
//	hit QPS    — the confirmed memory-hit questions under concurrent
//	             load, with the simulator's call ledger watched:
//	             llm_calls_on_hits must stay zero.
//	pipeline   — the same stack without memory: per-request serial
//	             pipeline calls (the pre-memory status quo, same
//	             denominator servebench gates against) plus an
//	             informational warm served run.
//
// The headline ratio memory-hit QPS / pipeline-serial QPS is the gated
// claim: a memory hit skips evidence generation AND SQL generation
// entirely, so serving it must be far cheaper than the pipeline it
// replaces. EX over the paraphrase sweep is reported for both regimes;
// memory-on must not lose accuracy (hits are execution-verified, misses
// fall through to the identical pipeline).

// llmLatency is the modeled LLM round trip, applied identically to every
// regime via Simulator.SetLatency. With a zero-cost simulator the memory's
// claim is unmeasurable by construction — the pipeline it skips consists
// almost entirely of LLM calls whose real cost is network+inference time.
// 25ms is deliberately conservative (real text-to-SQL calls run hundreds
// of milliseconds); the gated speedup understates the production win.
const llmLatency = 25 * time.Millisecond

// memoryBenchReport is the BENCH_memory.json schema.
type memoryBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	// TotalRows sizes the synthesized corpus; Workload counts canonical
	// questions, ParaphraseExamples the unseen phrasings layered on top.
	TotalRows          int `json:"total_rows"`
	Workload           int `json:"workload"`
	ParaphraseExamples int `json:"paraphrase_examples"`
	// Learned counts canonical questions whose replay served from
	// memory after one teaching pass (bounded by the simulator's EX —
	// only judged-correct generations admit patterns).
	Learned int `json:"learned"`
	// ParaphraseRequests / ParaphraseMemoryHits are the semantic-match
	// sweep over paraphrases of learned questions; HitRate is their
	// ratio — the gated recall of the memory on never-seen phrasings.
	ParaphraseRequests   int     `json:"paraphrase_requests"`
	ParaphraseMemoryHits int     `json:"paraphrase_memory_hits"`
	HitRate              float64 `json:"hit_rate"`
	// LLMCallsOnHits counts simulator calls made while serving the
	// confirmed-hit load; the memory's core claim is that this is zero.
	LLMCallsOnHits int `json:"llm_calls_on_hits"`
	// MemoryHit is concurrent serving over confirmed memory hits;
	// PipelineSerial is per-request serial pipeline calls (the
	// pre-memory status quo); ServedWarmNoMemory is the same server
	// without memory, warm — informational (named without "speedup" so
	// benchcheck skips it: both sides are warm lookup-dominated).
	MemoryHit          *server.LoadReport `json:"memory_hit"`
	PipelineSerial     *server.LoadReport `json:"pipeline_serial"`
	ServedWarmNoMemory *server.LoadReport `json:"served_warm_no_memory"`
	// SpeedupMemoryHitVsPipeline is MemoryHit.QPS / PipelineSerial.QPS —
	// the gated headline win.
	SpeedupMemoryHitVsPipeline float64 `json:"speedup_memory_hit_vs_pipeline_serial"`
	// MemoryHitVsServedWarmRatio compares the memory hit against warm
	// memoryless serving of the identical questions.
	MemoryHitVsServedWarmRatio float64 `json:"memory_hit_vs_served_warm_ratio"`
	// ExMemoryOn / ExMemoryOff are execution accuracy over the full
	// paraphrase sweep with and without the memory; the gate is
	// on >= off (verified hits must never cost accuracy).
	ExMemoryOn  float64 `json:"ex_memory_on"`
	ExMemoryOff float64 `json:"ex_memory_off"`
	// Memory is the memory-on server's final counter snapshot.
	Memory qmemory.Stats `json:"memory"`
}

func writeMemoryBench(path string, seedVal uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: seedVal, CleanDev: true})
	src, ok := corpus.DB("financial")
	if !ok {
		return fmt.Errorf("no financial DB in BIRD corpus")
	}
	const totalRows = 20_000
	progress("memory: generating %d-row corpus", totalRows)
	db, err := synth.Generate(src, synth.Options{Seed: seedVal, Rows: synth.ProportionalRows(src, totalRows)})
	if err != nil {
		return err
	}
	const workloadN = 40
	qs, err := synth.Workload(db, workloadN, seedVal)
	if err != nil {
		return err
	}
	canonical, err := synth.ToExamples(db.Name, qs)
	if err != nil {
		return err
	}
	paraphrases, err := synth.ParaphraseExamples(db.Name, qs)
	if err != nil {
		return err
	}
	// Canonical questions in Dev, paraphrases in Test: both splits are
	// servable, and the split boundary keeps "taught" and "never seen"
	// apart in the phases below.
	mkCorpus := func() *dataset.Corpus {
		return &dataset.Corpus{
			Name: "synth",
			DBs:  map[string]*schema.DB{db.Name: db},
			Dev:  canonical,
			Test: paraphrases,
		}
	}
	// Paraphrase index: example ID prefix "<db>-synth-%04d" -> canonical
	// position, so the sweep can restrict itself to learned questions.
	paraOf := func(e dataset.Example) int {
		var idx, p int
		if _, err := fmt.Sscanf(e.ID, db.Name+"-synth-%04d-p%d", &idx, &p); err != nil {
			return -1
		}
		return idx
	}

	report := memoryBenchReport{
		GeneratedAt:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		NumCPU:             runtime.NumCPU(),
		Seed:               seedVal,
		TotalRows:          totalRows,
		Workload:           len(canonical),
		ParaphraseExamples: len(paraphrases),
	}

	// ----- Memory-on server -----
	sim := llm.NewSimulator()
	sim.SetLatency(llmLatency)
	memSrv, memBase, stopMem, err := startMemoryServer(mkCorpus(), sim, true)
	if err != nil {
		return err
	}
	defer stopMem()

	progress("memory: teach pass over %d canonical questions", len(canonical))
	learned := map[int]bool{}
	for i, e := range canonical {
		if _, _, err := postQueryOnce(memBase, e); err != nil {
			return err
		}
		qr, status, err := postQueryOnce(memBase, e)
		if err != nil {
			return err
		}
		if status == http.StatusOK && qr.Source == api.SourceMemory {
			learned[i] = true
		}
	}
	report.Learned = len(learned)
	if report.Learned == 0 {
		return fmt.Errorf("memorybench: teaching pass admitted no patterns")
	}

	progress("memory: paraphrase sweep (%d learned patterns)", report.Learned)
	judge := eval.NewJudge()
	var exOn, hitQuestions []dataset.Example
	var onCorrect int
	for _, e := range paraphrases {
		qr, status, err := postQueryOnce(memBase, e)
		if err != nil {
			return err
		}
		if status == http.StatusOK && judge.Score(db, e, qr.SQL).Correct {
			onCorrect++
		}
		exOn = append(exOn, e)
		if idx := paraOf(e); idx >= 0 && learned[idx] {
			report.ParaphraseRequests++
			if status == http.StatusOK && qr.Source == api.SourceMemory {
				report.ParaphraseMemoryHits++
				hitQuestions = append(hitQuestions, e)
			}
		}
	}
	if report.ParaphraseRequests > 0 {
		report.HitRate = float64(report.ParaphraseMemoryHits) / float64(report.ParaphraseRequests)
	}
	if len(exOn) > 0 {
		report.ExMemoryOn = float64(onCorrect) / float64(len(exOn))
	}
	if len(hitQuestions) == 0 {
		return fmt.Errorf("memorybench: no paraphrase served from memory (hit rate %.2f over %d)",
			report.HitRate, report.ParaphraseRequests)
	}

	// Confirmed-hit load: learned canonical questions plus the
	// paraphrases that already matched, watched by the call ledger.
	var hitPayloads [][]byte
	for i, e := range canonical {
		if learned[i] {
			hitPayloads = append(hitPayloads, mustQueryPayload(e))
		}
	}
	for _, e := range hitQuestions {
		hitPayloads = append(hitPayloads, mustQueryPayload(e))
	}
	progress("memory: hit-serving measurement (%d questions)", len(hitPayloads))
	ctx := context.Background()
	callsBefore := sim.LedgerSnapshot().TotalCalls()
	memHit, err := bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: memBase, Payloads: hitPayloads, Concurrency: 16, Total: 4 * len(hitPayloads),
		})
	})
	if err != nil {
		return err
	}
	report.MemoryHit = memHit
	report.LLMCallsOnHits = sim.LedgerSnapshot().TotalCalls() - callsBefore
	report.Memory = memSrv.Metrics().Memory["synth"]
	stopMem()

	// ----- Memory-off regimes -----
	progress("memory: pipeline-serial baseline")
	baselineTotal := len(hitPayloads)
	if baselineTotal > 20 {
		baselineTotal = 20
	}
	pipeline, err := bestLoad(3, func() (*server.LoadReport, error) {
		psim := llm.NewSimulator()
		psim.SetLatency(llmLatency)
		return server.RunSerialBaseline(mkCorpus(), psim, seed.VariantGPT, "codes-15b", baselineTotal)
	})
	if err != nil {
		return err
	}
	report.PipelineSerial = pipeline

	progress("memory: memory-off served run")
	offSim := llm.NewSimulator()
	offSim.SetLatency(llmLatency)
	_, offBase, stopOff, err := startMemoryServer(mkCorpus(), offSim, false)
	if err != nil {
		return err
	}
	defer stopOff()
	var offCorrect int
	for _, e := range paraphrases {
		qr, status, err := postQueryOnce(offBase, e)
		if err != nil {
			return err
		}
		if status == http.StatusOK && judge.Score(db, e, qr.SQL).Correct {
			offCorrect++
		}
	}
	if len(paraphrases) > 0 {
		report.ExMemoryOff = float64(offCorrect) / float64(len(paraphrases))
	}
	servedWarm, err := bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: offBase, Payloads: hitPayloads, Concurrency: 16, Total: 4 * len(hitPayloads),
		})
	})
	if err != nil {
		return err
	}
	report.ServedWarmNoMemory = servedWarm

	if pipeline.QPS > 0 {
		report.SpeedupMemoryHitVsPipeline = memHit.QPS / pipeline.QPS
	}
	if servedWarm.QPS > 0 {
		report.MemoryHitVsServedWarmRatio = memHit.QPS / servedWarm.QPS
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  learned %d/%d canonical, paraphrase hit rate %.2f (%d/%d)\n",
		report.Learned, report.Workload, report.HitRate,
		report.ParaphraseMemoryHits, report.ParaphraseRequests)
	fmt.Printf("  memory hit     %8.0f req/s (p99 %.0fus), %d LLM calls\n",
		memHit.QPS, memHit.P99Micros, report.LLMCallsOnHits)
	fmt.Printf("  pipeline serial %7.0f req/s — speedup %.1fx (vs warm served %.1fx)\n",
		pipeline.QPS, report.SpeedupMemoryHitVsPipeline, report.MemoryHitVsServedWarmRatio)
	fmt.Printf("  EX memory-on %.3f vs memory-off %.3f\n", report.ExMemoryOn, report.ExMemoryOff)
	return nil
}

// startMemoryServer stands the serving stack up with or without the
// query memory, on a loopback ephemeral port.
func startMemoryServer(c *dataset.Corpus, client llm.Client, memory bool) (*server.Server, string, func(), error) {
	srv, err := server.New(server.Config{
		Corpora:        []*dataset.Corpus{c},
		Client:         client,
		Variant:        seed.VariantGPT,
		BatchWindow:    2 * time.Millisecond,
		BatchMax:       16,
		MaxInFlight:    1024,
		RequestTimeout: time.Minute,
		Memory:         memory,
		Logger:         slog.New(slog.DiscardHandler),
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		srv.Close()
	}
	return srv, "http://" + ln.Addr().String(), stop, nil
}

// postQueryOnce issues one /v1/query request and decodes the typed
// response; non-2xx answers return the status with a zero response.
func postQueryOnce(base string, e dataset.Example) (api.QueryResponse, int, error) {
	var qr api.QueryResponse
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(mustQueryPayload(e)))
	if err != nil {
		return qr, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return qr, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return qr, resp.StatusCode, nil
	}
	if err := json.Unmarshal(data, &qr); err != nil {
		return qr, resp.StatusCode, fmt.Errorf("decode /v1/query: %w: %s", err, data)
	}
	return qr, resp.StatusCode, nil
}

func mustQueryPayload(e dataset.Example) []byte {
	body, err := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
	if err != nil {
		panic(err)
	}
	return body
}
