package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/server"
)

// The -servebench mode: the serving-path perf snapshot. It stands a real
// HTTP server up on a loopback ephemeral port, replays the BIRD dev
// questions through POST /v1/query, and measures four regimes:
//
//	pipeline_serial — per-request serial pipeline calls, the pre-serving
//	                  status quo: every request regenerates evidence from
//	                  scratch (no cache, no batching, no concurrency, not
//	                  even HTTP overhead).
//	served serial   — the server, warm evidence cache, batching off, one
//	                  request at a time.
//	served concurrent — warm cache, batching off, 16 client workers.
//	served batched  — warm cache, micro-batching on, 16 client workers:
//	                  the deployed configuration, where concurrent
//	                  evidence requests coalesce into pooled GenerateAll
//	                  batches.
//
// The headline ratio batched/pipeline_serial is the acceptance criterion
// for the serving subsystem: batched warm serving must sustain higher QPS
// than per-request serial pipeline calls — the paper's practical-usability
// claim (generate evidence once, serve many requests cheaply) measured
// end to end.

// serverBenchReport is the BENCH_server.json schema.
type serverBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	// Endpoint is the measured route.
	Endpoint string `json:"endpoint"`
	// Questions is the distinct question count replayed.
	Questions int `json:"questions"`
	// Requests is the request count per served regime.
	Requests int `json:"requests"`
	// PipelineSerial is the pre-serving baseline; the served regimes are
	// the subsystem under measurement.
	PipelineSerial *server.LoadReport `json:"pipeline_serial"`
	ServedSerial   *server.LoadReport `json:"served_serial"`
	Concurrent     *server.LoadReport `json:"served_concurrent_unbatched"`
	Batched        *server.LoadReport `json:"served_concurrent_batched"`
	// SpeedupBatchedVsPipeline is Batched.QPS / PipelineSerial.QPS — the
	// headline serving win.
	SpeedupBatchedVsPipeline float64 `json:"speedup_batched_vs_pipeline_serial"`
	// BatchedVsServedSerialRatio is Batched.QPS / ServedSerial.QPS: what
	// concurrency + coalescing add over one-at-a-time serving on the same
	// warm server (bounded by the CPU count of the measurement box, ~1.0
	// on one core). Informational only — deliberately named without
	// "speedup" so the CI benchcheck gate skips it: both sides are warm
	// cache-lookup regimes whose ratio jitters well past any useful
	// regression band.
	BatchedVsServedSerialRatio float64 `json:"batched_vs_served_serial_ratio"`
	// BatchAvgFill is the mean requests per dispatched batch in the
	// batched regime.
	BatchAvgFill float64 `json:"batch_avg_fill"`
	// EvidenceCacheHitRate is the warm-cache hit rate observed by the
	// batched server during measurement.
	EvidenceCacheHitRate float64 `json:"evidence_cache_hit_rate"`
}

// bestLoad repeats a load measurement and keeps the highest-QPS report.
// Contention on a shared runner only ever subtracts throughput, and the
// batched-vs-pipeline ratio feeds the CI benchcheck gate, so the gated
// inputs get the same noise-robust treatment enginebench (best-of-3) and
// pipebench (min-of-9) apply.
func bestLoad(rounds int, run func() (*server.LoadReport, error)) (*server.LoadReport, error) {
	var best *server.LoadReport
	for i := 0; i < rounds; i++ {
		r, err := run()
		if err != nil {
			return nil, err
		}
		if best == nil || r.QPS > best.QPS {
			best = r
		}
	}
	return best, nil
}

// startServer builds a serving stack over the given corpora and exposes
// it on a loopback ephemeral port. The returned stop function shuts the
// HTTP server and the serving subsystem down.
func startServer(corpora []*dataset.Corpus, batchWindow time.Duration, batchMax int) (srv *server.Server, base string, stop func(), err error) {
	srv, err = server.New(server.Config{
		Corpora:        corpora,
		Client:         llm.NewSimulator(),
		Variant:        seed.VariantGPT,
		BatchWindow:    batchWindow,
		BatchMax:       batchMax,
		MaxInFlight:    1024,
		RequestTimeout: time.Minute,
		Logger:         slog.New(slog.DiscardHandler),
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		srv.Close()
	}
	return srv, "http://" + ln.Addr().String(), stop, nil
}

func writeServerBench(path string, corpusSeed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})
	payloads := make([][]byte, 0, len(corpus.Dev))
	for _, e := range corpus.Dev {
		body, err := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		if err != nil {
			return err
		}
		payloads = append(payloads, body)
	}
	const concurrency = 16
	total := 4 * len(payloads)
	ctx := context.Background()

	// Baseline: per-request serial pipeline calls, no serving machinery.
	// Capped well below the served totals — at a full generation per
	// request it is orders of magnitude slower per call. Best-of-3 with a
	// fresh pipeline per round: this QPS is the denominator of the gated
	// headline ratio.
	baselineTotal := len(payloads) / 2
	pipeline, err := bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunSerialBaseline(corpus, llm.NewSimulator(), seed.VariantGPT, "codes-15b", baselineTotal)
	})
	if err != nil {
		return err
	}

	// Served regimes 1+2: batching disabled.
	_, base, stop, err := startServer([]*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})}, 0, 0)
	if err != nil {
		return err
	}
	// Warm pass: fills the evidence cache, builds every session and the
	// gold-plan side of the plan cache, so the measured regimes compare
	// steady-state serving rather than first-touch construction.
	if _, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: 8,
	}); err != nil {
		stop()
		return err
	}
	serial, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: 1, Total: total,
	})
	if err != nil {
		stop()
		return err
	}
	concurrent, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: concurrency, Total: total,
	})
	stop()
	if err != nil {
		return err
	}

	// Served regime 3: micro-batching on, fresh server. BatchMax matches
	// client concurrency so saturated batches flush on size immediately;
	// the window only sweeps up stragglers.
	batchedSrv, base, stop, err := startServer([]*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})}, 2*time.Millisecond, concurrency)
	if err != nil {
		return err
	}
	defer stop()
	if _, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: 8,
	}); err != nil {
		return err
	}
	// Best-of-3 on the warm batched server: the numerator of the gated
	// headline ratio.
	batched, err := bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: base, Payloads: payloads, Concurrency: concurrency, Total: total,
		})
	})
	if err != nil {
		return err
	}
	snap := batchedSrv.Metrics()

	report := serverBenchReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Seed:           corpusSeed,
		Endpoint:       "/v1/query",
		Questions:      len(payloads),
		Requests:       total,
		PipelineSerial: pipeline,
		ServedSerial:   serial,
		Concurrent:     concurrent,
		Batched:        batched,
	}
	if pipeline.QPS > 0 {
		report.SpeedupBatchedVsPipeline = batched.QPS / pipeline.QPS
	}
	if serial.QPS > 0 {
		report.BatchedVsServedSerialRatio = batched.QPS / serial.QPS
	}
	report.BatchAvgFill = snap.Batcher["bird"].AvgFill
	report.EvidenceCacheHitRate = snap.Evidence["bird"].CacheHitRate

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  pipeline serial          %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", pipeline.QPS, pipeline.P50Micros, pipeline.P99Micros)
	fmt.Printf("  served serial            %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", serial.QPS, serial.P50Micros, serial.P99Micros)
	fmt.Printf("  served concurrent (c=%d) %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", concurrency, concurrent.QPS, concurrent.P50Micros, concurrent.P99Micros)
	fmt.Printf("  served batched    (c=%d) %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", concurrency, batched.QPS, batched.P50Micros, batched.P99Micros)
	fmt.Printf("  batched vs pipeline serial %.1fx  (avg batch fill %.1f, evidence hit rate %.2f)\n",
		report.SpeedupBatchedVsPipeline, report.BatchAvgFill, report.EvidenceCacheHitRate)
	return nil
}
