package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/server"
)

// The -fleetbench mode: the fault-tolerance perf snapshot. It stands a
// real fleet up — seedrouter's Router in front of N in-process seedd
// serving stacks with WAL-shipping replication between them — and
// measures four things:
//
//	routed_single_replica — router fronting one replica, warm cache: the
//	                        single-node routed baseline.
//	routed_fleet          — router fronting fleetSize replicas, evidence
//	                        fully replicated: QPS scaling from sharding.
//	routed_fleet_chaos    — the same fleet behind fault-injecting proxies
//	                        (latency spikes, 5xx bursts, truncated
//	                        responses): p99 and availability under chaos.
//	failover              — one replica killed mid-serve; how long until
//	                        its shard answers again (from the successor's
//	                        replicated evidence, as a cache hit).
//
// One ratio feeds the CI benchcheck gate ("speedup" in the path):
// failover_headroom_vs_5s_budget (5000ms / takeover-ms — recovery must
// stay far inside the 5s budget the CI smoke enforces). The QPS scaling
// ratio is informational only, deliberately named without "speedup" so
// the gate skips it: both sides are warm same-box serving regimes whose
// ratio jitters well past any useful regression band (on a multi-core
// box it shows the sharding win; on a single-core runner it merely pins
// routing + replication overhead). Raw takeover milliseconds and chaos
// counters ride along ungated too.
//
// A handful of dev questions generate SQL that answers 422 (the
// generator's known losses); they appear identically in every regime's
// error count and are not availability loss — the availability number is
// chaos_client_5xx, which the chaos regime pins at zero.

const (
	fleetSize        = 3
	fleetConcurrency = 16
)

// fleetBenchReport is the BENCH_fleet.json schema.
type fleetBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	FleetSize   int    `json:"fleet_size"`
	// Questions is the distinct question count replayed; Requests is the
	// request count per measured regime.
	Questions int `json:"questions"`
	Requests  int `json:"requests"`

	SingleReplica *server.LoadReport `json:"routed_single_replica"`
	Fleet         *server.LoadReport `json:"routed_fleet"`
	Chaos         *server.LoadReport `json:"routed_fleet_chaos"`

	// Speedups are the benchcheck-gated ratios.
	Speedups struct {
		// FailoverHeadroom is 5000 / FailoverTakeoverMs: how many times
		// over the CI smoke's 5s recovery budget the measured takeover
		// fits. Falls toward 1 as recovery degrades toward the budget.
		FailoverHeadroom float64 `json:"failover_headroom_vs_5s_budget"`
	} `json:"speedups"`

	// QPSScaling is Fleet.QPS / SingleReplica.QPS — informational (see
	// the mode comment for why it is not gated).
	QPSScaling float64 `json:"qps_scaling_3_vs_1_ratio"`

	// ChaosInjectedFaults counts faults the proxies actually injected
	// during the chaos regime; ChaosClient5xx is how many of them leaked
	// through the router to clients (the zero-availability-loss claim).
	ChaosInjectedFaults int64 `json:"chaos_injected_faults"`
	ChaosClient5xx      int64 `json:"chaos_client_5xx"`
	// ChaosRouter is the chaos-regime router's full counter snapshot —
	// how many attempts, retries, hedges and sheds the faults cost.
	ChaosRouter fleet.Metrics `json:"chaos_router"`

	// FailoverTakeoverMs is the wall time from killing the shard owner to
	// the first successful routed answer for its shard.
	FailoverTakeoverMs float64 `json:"failover_takeover_ms"`
	// FailoverServedBy is the replica that took the shard over;
	// FailoverCacheHit reports it answered from replicated evidence
	// (no regeneration); FailoverClient5xx counts 5xx the router returned
	// during the failover window (must be 0).
	FailoverServedBy  string `json:"failover_served_by"`
	FailoverCacheHit  bool   `json:"failover_cache_hit"`
	FailoverClient5xx int64  `json:"failover_client_5xx"`

	// ReplicatedRecords maps each replica to the count of WAL records it
	// applied from its peers before measurement started.
	ReplicatedRecords map[string]int64 `json:"replicated_records"`
}

// fleetMember is one in-process seedd replica: a serving stack with a
// durable store, exposed on a loopback listener.
type fleetMember struct {
	srv *server.Server
	hs  *http.Server
	url string
}

// startFleet builds n replicated serving stacks. Listeners are bound
// before any server starts so every member can be configured with its
// peers' final URLs.
func startFleet(n int, corpusSeed uint64, dir string) (members []*fleetMember, urls []string, stop func(), err error) {
	lns := make([]net.Listener, n)
	urls = make([]string, n)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			for _, ln := range lns[:i] {
				ln.Close()
			}
			return nil, nil, nil, err
		}
		urls[i] = "http://" + lns[i].Addr().String()
	}
	members = make([]*fleetMember, 0, n)
	stop = func() {
		for _, m := range members {
			m.hs.Close()
			m.srv.Close()
		}
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv, err := server.New(server.Config{
			Corpora:           []*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})},
			Client:            llm.NewSimulator(),
			Variant:           seed.VariantGPT,
			BatchWindow:       2 * time.Millisecond,
			BatchMax:          fleetConcurrency,
			MaxInFlight:       1024,
			RequestTimeout:    time.Minute,
			StoreDir:          filepath.Join(dir, fmt.Sprintf("replica-%d", i)),
			StoreSeed:         corpusSeed,
			Peers:             peers,
			ReplicateInterval: 25 * time.Millisecond,
			Logger:            slog.New(slog.DiscardHandler),
		})
		if err != nil {
			stop()
			for _, ln := range lns[len(members):] {
				ln.Close()
			}
			return nil, nil, nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		members = append(members, &fleetMember{srv: srv, hs: hs, url: urls[i]})
	}
	return members, urls, stop, nil
}

// startFleetRouter fronts the given replica URLs with a Router on a
// loopback listener, tuned for fast failure detection (bench and CI runs
// measure recovery, not steady state).
func startFleetRouter(replicaURLs []string) (rt *fleet.Router, base string, stop func(), err error) {
	rt, err = fleet.NewRouter(fleet.Config{
		Replicas:       replicaURLs,
		RequestTimeout: time.Minute,
		AttemptTimeout: 10 * time.Second,
		HedgeDelay:     50 * time.Millisecond,
		BaseBackoff:    5 * time.Millisecond,
		ProbeInterval:  100 * time.Millisecond,
		Logger:         slog.New(slog.DiscardHandler),
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		rt.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	stop = func() {
		hs.Close()
		rt.Close()
	}
	return rt, "http://" + ln.Addr().String(), stop, nil
}

// waitReplicated blocks until every member's store holds at least want
// records (its own shard plus everything shipped from its peers).
func waitReplicated(members []*fleetMember, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		converged := true
		for _, m := range members {
			if st, ok := m.srv.Metrics().Store["bird"]; !ok || st.Records < want {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		if time.Now().After(deadline) {
			counts := make([]int, len(members))
			for i, m := range members {
				counts[i] = m.srv.Metrics().Store["bird"].Records
			}
			return fmt.Errorf("replication did not converge to %d records within %v (per-replica: %v)", want, timeout, counts)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func writeFleetBench(path string, corpusSeed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})
	payloads := make([][]byte, 0, len(corpus.Dev))
	for _, e := range corpus.Dev {
		body, err := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		if err != nil {
			return err
		}
		payloads = append(payloads, body)
	}
	total := 2 * len(payloads)
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "fleetbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	report := fleetBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        corpusSeed,
		FleetSize:   fleetSize,
		Questions:   len(payloads),
		Requests:    total,
	}

	// Regime 1: router fronting a single replica, warm cache — the routed
	// single-node baseline and the denominator of the scaling ratio.
	single, _, stopSingle, err := startFleet(1, corpusSeed, filepath.Join(dir, "single"))
	if err != nil {
		return err
	}
	_, singleBase, stopSingleRouter, err := startFleetRouter([]string{single[0].url})
	if err != nil {
		stopSingle()
		return err
	}
	if _, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: singleBase, Payloads: payloads, Concurrency: 8,
	}); err != nil {
		stopSingleRouter()
		stopSingle()
		return err
	}
	report.SingleReplica, err = bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: singleBase, Payloads: payloads, Concurrency: fleetConcurrency, Total: total,
		})
	})
	stopSingleRouter()
	stopSingle()
	if err != nil {
		return err
	}

	// Regime 2: the full fleet. Warm every shard through the router, wait
	// for WAL shipping to mirror every store, then measure.
	members, urls, stopFleet, err := startFleet(fleetSize, corpusSeed, filepath.Join(dir, "fleet"))
	if err != nil {
		return err
	}
	defer stopFleet()
	rt, base, stopRouter, err := startFleetRouter(urls)
	if err != nil {
		return err
	}
	defer stopRouter()
	if _, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL: base, Payloads: payloads, Concurrency: 8,
	}); err != nil {
		return err
	}
	if err := waitReplicated(members, len(payloads), 30*time.Second); err != nil {
		return err
	}
	report.ReplicatedRecords = make(map[string]int64, len(members))
	for _, m := range members {
		var applied int64
		for _, ts := range m.srv.Metrics().Replication {
			applied += ts.Applied
		}
		report.ReplicatedRecords[m.url] = applied
	}
	report.Fleet, err = bestLoad(3, func() (*server.LoadReport, error) {
		return server.RunLoad(ctx, server.LoadOptions{
			BaseURL: base, Payloads: payloads, Concurrency: fleetConcurrency, Total: total,
		})
	})
	if err != nil {
		return err
	}
	if report.SingleReplica.QPS > 0 {
		report.QPSScaling = report.Fleet.QPS / report.SingleReplica.QPS
	}

	// Regime 3: the same fleet behind fault-injecting proxies — every
	// replica misbehaves a different way while a second router (it must
	// learn the proxied URLs) carries the same load.
	proxies := make([]*chaos.Proxy, len(members))
	proxyURLs := make([]string, len(members))
	for i, m := range members {
		p, err := chaos.NewProxy(m.url)
		if err != nil {
			return err
		}
		defer p.Close()
		proxies[i] = p
		proxyURLs[i] = p.URL()
	}
	chaosRouter, chaosBase, stopChaosRouter, err := startFleetRouter(proxyURLs)
	if err != nil {
		return err
	}
	proxies[0].SpikeLatency(25*time.Millisecond, 3) // every 3rd response stalls
	proxies[1].Burst5xx(25)                         // a burst of server errors
	proxies[2].TruncateEvery(5)                     // every 5th body cut mid-flight
	report.Chaos, err = server.RunLoad(ctx, server.LoadOptions{
		BaseURL: chaosBase, Payloads: payloads, Concurrency: fleetConcurrency, Total: total,
	})
	chaosMetrics := chaosRouter.Metrics()
	stopChaosRouter()
	if err != nil {
		return err
	}
	for _, p := range proxies {
		report.ChaosInjectedFaults += p.Injected()
		p.Reset()
	}
	report.ChaosRouter = chaosMetrics
	report.ChaosClient5xx = chaosMetrics.ClientFivexx

	// Regime 4: failover. Kill the replica that owns a known question's
	// shard, then time how long until the router answers that question
	// again — served by a successor, from replicated evidence.
	ring := fleet.NewRing(urls, 0)
	victimIdx := -1
	var victimExample dataset.Example
	for _, e := range corpus.Dev {
		owner, _ := ring.Owner(fleet.ShardKey(e.DB, e.Question))
		for i, u := range urls {
			if u == owner && i != 0 { // keep member 0 alive to serve
				victimIdx, victimExample = i, e
				break
			}
		}
		if victimIdx >= 0 {
			break
		}
	}
	if victimIdx < 0 {
		return fmt.Errorf("no dev question maps to a killable replica")
	}
	fivexxBefore := rt.Metrics().ClientFivexx
	members[victimIdx].hs.Close() // abrupt: in-flight connections die too

	evBody, err := json.Marshal(api.QueryRequest{DB: victimExample.DB, Question: victimExample.Question})
	if err != nil {
		return err
	}
	killT0 := time.Now()
	deadline := killT0.Add(5 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/evidence", "application/json", bytes.NewReader(evBody))
		if err != nil {
			return err
		}
		var ev struct {
			CacheHit bool `json:"evidence_cache_hit"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&ev)
		resp.Body.Close()
		if resp.StatusCode == 200 && decodeErr == nil {
			report.FailoverTakeoverMs = float64(time.Since(killT0).Microseconds()) / 1000
			report.FailoverServedBy = resp.Header.Get("X-Fleet-Replica")
			report.FailoverCacheHit = ev.CacheHit
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard did not fail over within 5s (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	report.FailoverClient5xx = rt.Metrics().ClientFivexx - fivexxBefore
	if report.FailoverTakeoverMs > 0 {
		report.Speedups.FailoverHeadroom = 5000 / report.FailoverTakeoverMs
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  routed single replica   %8.0f req/s (p50 %.0fus, p99 %.0fus)\n",
		report.SingleReplica.QPS, report.SingleReplica.P50Micros, report.SingleReplica.P99Micros)
	fmt.Printf("  routed fleet (n=%d)      %8.0f req/s (p50 %.0fus, p99 %.0fus)  scaling %.2fx\n",
		fleetSize, report.Fleet.QPS, report.Fleet.P50Micros, report.Fleet.P99Micros, report.QPSScaling)
	fmt.Printf("  fleet under chaos       %8.0f req/s (p99 %.0fus, %d faults injected, %d client 5xx)\n",
		report.Chaos.QPS, report.Chaos.P99Micros, report.ChaosInjectedFaults, report.ChaosClient5xx)
	fmt.Printf("  failover takeover       %8.1f ms (served by %s, cache hit %v, %d client 5xx, headroom %.0fx)\n",
		report.FailoverTakeoverMs, report.FailoverServedBy, report.FailoverCacheHit,
		report.FailoverClient5xx, report.Speedups.FailoverHeadroom)
	return nil
}
