package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/fleet"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/seed"
	"repro/internal/server"
)

// The -obsbench mode: proves the observability layer is affordable and
// actually wired end to end. Two measurements:
//
//   - Overhead: warm batched /v1/query QPS with tracing + metrics + the
//     slow-query log fully on, versus the same server with tracing
//     disabled (TraceCapacity < 0, no slow threshold). The gated ratio
//     speedup_obs_enabled_vs_disabled must stay >= 0.95 — full-on
//     observability may cost at most 5% of throughput.
//
//   - Coverage: one query routed through a real fleet.Router into the
//     replica, then the trace fetched back via GET /v1/traces/{id} using
//     the response's X-Trace-Id. The report records which spans the trace
//     contains (router forward, admission, batcher wait, evidence DAG
//     stages, engine prepare/execute) as booleans CI asserts with jq.

// obsBenchReport is the BENCH_obs.json schema.
type obsBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Seed        uint64 `json:"seed"`
	// Questions is the distinct question count replayed; Requests the
	// request count per measured regime.
	Questions int `json:"questions"`
	Requests  int `json:"requests"`
	// Disabled is warm batched serving with tracing off (the baseline);
	// Enabled is the same load with tracing, metrics and the slow-query
	// log fully on.
	Disabled *server.LoadReport `json:"served_obs_disabled"`
	Enabled  *server.LoadReport `json:"served_obs_enabled"`
	// SpeedupObsEnabledVsDisabled is Enabled.QPS / Disabled.QPS — the
	// gated number: full observability must retain >= 95% of the
	// uninstrumented throughput. ("speedup" in the key keeps it under the
	// benchcheck regression gate.)
	SpeedupObsEnabledVsDisabled float64 `json:"speedup_obs_enabled_vs_disabled"`
	// TracesRetained is the replica's /v1/traces population after the
	// enabled run — proof the ring retained work under load.
	TracesRetained int `json:"traces_retained"`
	// Coverage is the routed-trace span coverage check.
	Coverage obsCoverage `json:"routed_trace_coverage"`
}

// obsCoverage reports which spans one routed query's trace contained.
type obsCoverage struct {
	TraceID string `json:"trace_id"`
	Spans   int    `json:"spans"`
	// The booleans CI asserts: every layer of the request path must have
	// recorded itself into the one trace.
	RouterForward  bool `json:"router_forward"`
	Admission      bool `json:"admission"`
	BatcherWait    bool `json:"batcher_wait"`
	EvidenceStages int  `json:"evidence_stages"`
	EnginePrepare  bool `json:"engine_prepare"`
	EngineExecute  bool `json:"engine_execute"`
}

// startObsServer stands up a batched serving stack with observability on
// or off, on a loopback ephemeral port.
func startObsServer(corpusSeed uint64, enabled bool) (srv *server.Server, base string, stop func(), err error) {
	traceCapacity := -1
	var slowThreshold time.Duration
	if enabled {
		traceCapacity = 0 // default 256
		// An outlier threshold, not a median one: a slow log that fires on
		// every request measures the log, not the serving path.
		slowThreshold = 25 * time.Millisecond
	}
	srv, err = server.New(server.Config{
		Corpora:            []*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})},
		Client:             llm.NewSimulator(),
		Variant:            seed.VariantGPT,
		BatchWindow:        2 * time.Millisecond,
		BatchMax:           16,
		MaxInFlight:        1024,
		RequestTimeout:     time.Minute,
		TraceCapacity:      traceCapacity,
		SlowQueryThreshold: slowThreshold,
		Logger:             slog.New(slog.DiscardHandler),
	})
	if err != nil {
		return nil, "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return srv, "http://" + ln.Addr().String(), func() {
		hs.Close()
		srv.Close()
	}, nil
}

func writeObsBench(path string, corpusSeed uint64) error {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed})
	payloads := make([][]byte, 0, len(corpus.Dev))
	for _, e := range corpus.Dev {
		body, err := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		if err != nil {
			return err
		}
		payloads = append(payloads, body)
	}
	const concurrency = 16
	total := 4 * len(payloads)
	ctx := context.Background()

	// Both servers stay up for the whole measurement and the rounds
	// interleave disabled/enabled, so machine drift (thermal, GC, page
	// cache) lands on both regimes equally: the tracing overhead on this
	// workload is small against per-request generation cost, and a
	// sequential A-then-B measurement can drift more than the 5% band the
	// gate allows. Best-of-5 per regime, same treatment both sides.
	offSrv, offBase, offStop, err := startObsServer(corpusSeed, false)
	if err != nil {
		return err
	}
	defer offStop()
	_ = offSrv
	onSrv, onBase, onStop, err := startObsServer(corpusSeed, true)
	if err != nil {
		return err
	}
	defer onStop()

	var disabled, enabled *server.LoadReport
	for round := 0; round < 5; round++ {
		for _, side := range []struct {
			base string
			best **server.LoadReport
		}{{offBase, &disabled}, {onBase, &enabled}} {
			opts := server.LoadOptions{
				BaseURL: side.base, Payloads: payloads, Concurrency: concurrency, Total: total,
			}
			if round == 0 {
				// Warm pass: fills the evidence cache, sessions and plan
				// caches; not counted.
				opts.Concurrency, opts.Total = 8, 0
			}
			rep, err := server.RunLoad(ctx, opts)
			if err != nil {
				return err
			}
			if round > 0 && (*side.best == nil || rep.QPS > (*side.best).QPS) {
				*side.best = rep
			}
		}
	}
	retained := 0
	if ts := onSrv.Traces(); ts != nil {
		retained = ts.Len()
	}

	coverage, err := routedTraceCoverage(corpusSeed, payloads[0])
	if err != nil {
		return err
	}

	report := obsBenchReport{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		NumCPU:         runtime.NumCPU(),
		Seed:           corpusSeed,
		Questions:      len(payloads),
		Requests:       total,
		Disabled:       disabled,
		Enabled:        enabled,
		TracesRetained: retained,
		Coverage:       *coverage,
	}
	if disabled.QPS > 0 {
		report.SpeedupObsEnabledVsDisabled = enabled.QPS / disabled.QPS
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	fmt.Printf("  obs disabled (c=%d) %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", concurrency, disabled.QPS, disabled.P50Micros, disabled.P99Micros)
	fmt.Printf("  obs enabled  (c=%d) %8.0f req/s (p50 %.0fus, p99 %.0fus)\n", concurrency, enabled.QPS, enabled.P50Micros, enabled.P99Micros)
	fmt.Printf("  enabled/disabled ratio %.3f (gate: >= 0.95); %d traces retained\n",
		report.SpeedupObsEnabledVsDisabled, retained)
	fmt.Printf("  routed trace %s: %d spans, router_forward=%v admission=%v batcher_wait=%v stages=%d prepare=%v execute=%v\n",
		coverage.TraceID, coverage.Spans, coverage.RouterForward, coverage.Admission,
		coverage.BatcherWait, coverage.EvidenceStages, coverage.EnginePrepare, coverage.EngineExecute)
	return nil
}

// routedTraceCoverage sends one query through a real fleet.Router into a
// tracing replica, fetches the trace the response advertises, and reports
// which layers recorded spans.
func routedTraceCoverage(corpusSeed uint64, payload []byte) (*obsCoverage, error) {
	_, base, stop, err := startObsServer(corpusSeed, true)
	if err != nil {
		return nil, err
	}
	defer stop()

	rt, err := fleet.NewRouter(fleet.Config{
		Replicas: []string{base},
		Logger:   slog.New(slog.DiscardHandler),
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()

	resp, err := http.Post("http://"+rln.Addr().String()+"/v1/query", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("routed query: %s", resp.Status)
	}
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID == "" {
		return nil, fmt.Errorf("routed query response carries no %s header", obs.TraceIDHeader)
	}

	tresp, err := http.Get(base + "/v1/traces/" + traceID)
	if err != nil {
		return nil, err
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/traces/%s: %s", traceID, tresp.Status)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(tresp.Body).Decode(&rec); err != nil {
		return nil, err
	}

	cov := &obsCoverage{TraceID: traceID, Spans: len(rec.Spans)}
	for _, sp := range rec.Spans {
		switch {
		case sp.Name == "router.forward":
			cov.RouterForward = true
		case sp.Name == "admission":
			cov.Admission = true
		case sp.Name == "batcher.wait":
			cov.BatcherWait = true
		case strings.HasPrefix(sp.Name, "stage:"):
			cov.EvidenceStages++
		case sp.Name == "sqlengine.prepare":
			cov.EnginePrepare = true
		case sp.Name == "sqlengine.execute":
			cov.EngineExecute = true
		}
	}
	return cov, nil
}
