package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeSnap writes a snapshot fixture and returns its path.
func writeSnap(t *testing.T, name string, doc any) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// verdictOf finds one metric's verdict in a report.
func verdictOf(t *testing.T, r *diffReport, metric string) string {
	t.Helper()
	for _, c := range r.Comparisons {
		if c.Metric == metric {
			return c.Verdict
		}
	}
	t.Fatalf("metric %q not in report: %+v", metric, r.Comparisons)
	return ""
}

func TestGatedMetricsSelection(t *testing.T) {
	doc := map[string]any{
		"generated_at": "2026-01-01T00:00:00Z", // non-numeric: ignored
		"num_cpu":      4.0,                    // numeric but ungated
		"speedups": map[string]any{
			"join3_hash_vs_nested": 32.5,
		},
		"speedup_batched_vs_pipeline_serial": 8.8,
		"recovery_hit_ratio":                 1.0,
		"variants": map[string]any{
			"seed_gpt": map[string]any{"speedup": 0.98, "dag_us": 583346.0},
		},
		"warm_vs_steady_wall_ratio": 1.2, // deliberately ungated (noise)
	}
	got := gatedMetrics(doc)
	want := []string{
		"speedups.join3_hash_vs_nested",
		"speedup_batched_vs_pipeline_serial",
		"recovery_hit_ratio",
		"variants.seed_gpt.speedup",
	}
	if len(got) != len(want) {
		t.Fatalf("gated %d metrics %v, want %d", len(got), got, len(want))
	}
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("metric %q not gated; got %v", k, got)
		}
	}
}

func TestRegressionBeyondThresholdFails(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"x": 10.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"speedups": map[string]any{"x": 6.0}})
	r, err := run([]string{base + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed || r.Regressions != 1 {
		t.Fatalf("40%% drop passed the 30%% gate: %+v", r)
	}
	if v := verdictOf(t, r, "speedups.x"); v != verdictRegression {
		t.Fatalf("verdict = %s, want regression", v)
	}
}

func TestDriftWithinThresholdPasses(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"x": 10.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"speedups": map[string]any{"x": 8.0}})
	r, err := run([]string{base + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("20%% drift failed the 30%% gate: %+v", r)
	}
}

func TestImprovementPasses(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"recovery_hit_ratio": 0.96})
	cur := writeSnap(t, "cur.json", map[string]any{"recovery_hit_ratio": 1.0})
	r, err := run([]string{base + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("improvement failed the gate: %+v", r)
	}
	if v := verdictOf(t, r, "recovery_hit_ratio"); v != verdictImproved {
		t.Fatalf("verdict = %s, want improved", v)
	}
}

// TestSaturatedRatiosPassOnJitterFailOnCollapse pins the saturation rule:
// a 7000x-vs-3000x swing between two warm-vs-cold ratios is jitter, but a
// collapse to ~1x (the restart stopped restoring) must still fail.
func TestSaturatedRatiosPassOnJitterFailOnCollapse(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"warm_restart_vs_cold": 7421.0}})
	jitter := writeSnap(t, "jitter.json", map[string]any{"speedups": map[string]any{"warm_restart_vs_cold": 3000.0}})
	collapse := writeSnap(t, "collapse.json", map[string]any{"speedups": map[string]any{"warm_restart_vs_cold": 1.05}})

	r, err := run([]string{base + "=" + jitter}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("saturated jitter failed the gate: %+v", r)
	}
	if v := verdictOf(t, r, "speedups.warm_restart_vs_cold"); v != verdictSaturated {
		t.Fatalf("verdict = %s, want saturated", v)
	}

	r, err = run([]string{base + "=" + collapse}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed {
		t.Fatalf("ratio collapse passed the gate: %+v", r)
	}

	// A collapse that still clears the absolute floor (7421x -> 65x) is a
	// regression too — saturation tolerates jitter, not wreckage.
	aboveFloor := writeSnap(t, "above-floor.json", map[string]any{"speedups": map[string]any{"warm_restart_vs_cold": 65.0}})
	r, err = run([]string{base + "=" + aboveFloor}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed {
		t.Fatalf("collapse above the saturation floor passed the gate: %+v", r)
	}
	if v := verdictOf(t, r, "speedups.warm_restart_vs_cold"); v != verdictRegression {
		t.Fatalf("verdict = %s, want regression", v)
	}
}

func TestMissingMetricFails(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"x": 10.0, "y": 5.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"speedups": map[string]any{"x": 10.0}})
	r, err := run([]string{base + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed {
		t.Fatalf("deleted metric passed the gate: %+v", r)
	}
	if v := verdictOf(t, r, "speedups.y"); v != verdictMissing {
		t.Fatalf("verdict = %s, want missing", v)
	}
}

func TestNewMetricIsInformationalOnly(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"x": 10.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"speedups": map[string]any{"x": 10.0, "z": 2.0}})
	r, err := run([]string{base + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("new metric failed the gate before its baseline exists: %+v", r)
	}
	if v := verdictOf(t, r, "speedups.z"); v != verdictNew {
		t.Fatalf("verdict = %s, want new", v)
	}
}

func TestReportArtifactWritten(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"speedups": map[string]any{"x": 10.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"speedups": map[string]any{"x": 2.0}})
	reportPath := filepath.Join(t.TempDir(), "diff.json")
	if _, err := run([]string{base + "=" + cur}, 0.30, reportPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var r diffReport
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Passed || r.Regressions != 1 || len(r.Comparisons) != 1 {
		t.Fatalf("artifact content wrong: %+v", r)
	}
}

func TestMalformedPairRejected(t *testing.T) {
	if _, err := run([]string{"no-equals-sign"}, 0.30, ""); err == nil {
		t.Fatal("malformed pair accepted")
	}
}

// TestVacuousBaselineRejected: a baseline exposing zero gated metrics is
// an error, not a pass — otherwise a snapshot schema rename silently
// disables the whole gate.
func TestVacuousBaselineRejected(t *testing.T) {
	base := writeSnap(t, "base.json", map[string]any{"ratios": map[string]any{"x": 10.0}})
	cur := writeSnap(t, "cur.json", map[string]any{"ratios": map[string]any{"x": 1.0}})
	if _, err := run([]string{base + "=" + cur}, 0.30, ""); err == nil {
		t.Fatal("baseline with no gated metrics accepted — the gate would pass vacuously")
	}
}

// TestCommittedBaselinesSelfCompare: every committed BENCH file gates
// cleanly against itself — guards against a snapshot schema change that
// silently empties the gated metric set.
// TestAbsentBaselineWarnsNotFails pins first-run behavior: when a brand-new
// benchmark's baseline file has not been committed yet, the gate must
// surface the current metrics as new_in_current and pass — never error or
// count a regression. Only an unreadable *current* snapshot is fatal.
func TestAbsentBaselineWarnsNotFails(t *testing.T) {
	cur := writeSnap(t, "fresh.json", map[string]any{
		"speedups": map[string]any{"brand_new_ratio": 12.5},
	})
	missing := filepath.Join(t.TempDir(), "BENCH_notyet.json")
	r, err := run([]string{missing + "=" + cur}, 0.30, "")
	if err != nil {
		t.Fatalf("absent baseline must warn, not error: %v", err)
	}
	if !r.Passed || r.Regressions != 0 {
		t.Fatalf("absent baseline counted as regression: %+v", r)
	}
	if got := verdictOf(t, r, "speedups.brand_new_ratio"); got != verdictNew {
		t.Fatalf("verdict = %q, want %q", got, verdictNew)
	}

	// A current snapshot that cannot be read is still a hard error — the
	// leniency is only for the baseline side.
	if _, err := run([]string{missing + "=" + filepath.Join(t.TempDir(), "nope.json")}, 0.30, ""); err == nil {
		t.Fatal("unreadable current snapshot must fail even with an absent baseline")
	}
}

func TestCommittedBaselinesSelfCompare(t *testing.T) {
	for _, name := range []string{"BENCH_sqlengine.json", "BENCH_pipeline.json", "BENCH_server.json", "BENCH_store.json", "BENCH_scale.json"} {
		path := filepath.Join("..", "..", name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("committed baseline %s missing: %v", name, err)
		}
		r, err := run([]string{path + "=" + path}, 0.30, "")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Passed {
			t.Fatalf("%s fails against itself: %+v", name, r)
		}
		if len(r.Comparisons) == 0 {
			t.Fatalf("%s exposes no gated metrics — the gate would pass vacuously", name)
		}
	}
}
