// Command benchcheck is the CI perf-regression gate: it compares freshly
// generated benchmark snapshots (BENCH_sqlengine.json, BENCH_pipeline.json,
// BENCH_server.json, BENCH_store.json) against the baselines committed in
// the repository and fails when a pinned ratio regressed past the
// threshold.
//
// Usage:
//
//	benchcheck -threshold 0.30 -report bench-diff.json \
//	    BENCH_sqlengine.json=fresh-sqlengine.json \
//	    BENCH_store.json=fresh-store.json
//
// Each positional argument is a baseline=current pair. The gate walks
// both JSON documents and compares every numeric leaf whose dotted path
// contains "speedup" or "recovery" — the ratios each snapshot publishes
// as its pinned wins. A metric fails when current/baseline drops below
// 1-threshold; metrics missing from the current snapshot fail outright
// (a deleted headline number is a regression, not an oversight);
// improvements always pass.
//
// Saturated ratios — both baseline and current above 50x — always pass:
// at three orders of magnitude (a warm cache lookup versus a cold LLM
// round trip) run-to-run jitter dwarfs any 30% band, while a real break
// collapses the ratio toward 1 and still trips the gate.
//
// The -report file records every comparison (baseline, current, ratio,
// verdict) so CI can upload the diff as an artifact on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// saturationFloor is the ratio above which a metric is compared only for
// collapse, not for percentage drift; collapseFactor is how far a
// saturated metric may fall relative to its baseline before the gate
// fails anyway. Without the collapse check, a 10000x baseline falling to
// 65x would pass simply because both sides clear the floor.
const (
	saturationFloor = 50.0
	collapseFactor  = 3.0
)

// verdicts a compared metric can receive.
const (
	verdictOK         = "ok"
	verdictImproved   = "improved"
	verdictSaturated  = "saturated"
	verdictRegression = "regression"
	verdictMissing    = "missing_in_current"
	verdictNew        = "new_in_current"
)

// comparison is one metric's entry in the diff report.
type comparison struct {
	File     string  `json:"file"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Ratio is current/baseline; 0 when either side is missing.
	Ratio   float64 `json:"ratio"`
	Verdict string  `json:"verdict"`
}

// diffReport is the -report JSON schema.
type diffReport struct {
	Threshold   float64      `json:"threshold"`
	Comparisons []comparison `json:"comparisons"`
	Regressions int          `json:"regressions"`
	Passed      bool         `json:"passed"`
}

// gatedMetrics walks a decoded JSON document and collects every numeric
// leaf whose dotted path contains "speedup" or "recovery".
func gatedMetrics(doc any) map[string]float64 {
	out := make(map[string]float64)
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch node := v.(type) {
		case map[string]any:
			for k, child := range node {
				p := k
				if path != "" {
					p = path + "." + k
				}
				walk(p, child)
			}
		case []any:
			for i, child := range node {
				walk(fmt.Sprintf("%s[%d]", path, i), child)
			}
		case float64:
			lower := strings.ToLower(path)
			if strings.Contains(lower, "speedup") || strings.Contains(lower, "recovery") {
				out[path] = node
			}
		}
	}
	walk("", doc)
	return out
}

// loadMetrics reads one snapshot file and extracts its gated metrics.
func loadMetrics(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return gatedMetrics(doc), nil
}

// comparePair gates one baseline=current snapshot pair.
func comparePair(baselinePath, currentPath string, threshold float64) ([]comparison, error) {
	base, err := loadMetrics(baselinePath)
	if os.IsNotExist(err) {
		// The baseline file does not exist yet: this is the first run of a
		// brand-new benchmark. Nothing can be gated, but the current
		// metrics are worth surfacing — report each as new_in_current
		// (a warning, not a failure) so the operator commits the baseline.
		cur, curErr := loadMetrics(currentPath)
		if curErr != nil {
			return nil, curErr
		}
		var comps []comparison
		for metric, c := range cur {
			comps = append(comps, comparison{
				File: baselinePath, Metric: metric, Current: c, Verdict: verdictNew,
			})
		}
		sort.Slice(comps, func(i, j int) bool { return comps[i].Metric < comps[j].Metric })
		fmt.Fprintf(os.Stderr, "benchcheck: warning: baseline %s does not exist yet; %d metric(s) from %s reported ungated — commit the baseline to arm the gate\n",
			baselinePath, len(comps), currentPath)
		return comps, nil
	}
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		// A baseline with nothing to gate means the gate passes vacuously
		// forever — a schema change renamed the speedup/recovery keys and
		// nobody noticed. Fail loudly instead.
		return nil, fmt.Errorf("%s exposes no gated metrics (no numeric field whose path contains \"speedup\" or \"recovery\")", baselinePath)
	}
	cur, err := loadMetrics(currentPath)
	if err != nil {
		return nil, err
	}
	var comps []comparison
	for metric, b := range base {
		c, ok := cur[metric]
		comp := comparison{File: baselinePath, Metric: metric, Baseline: b, Current: c}
		switch {
		case !ok:
			comp.Verdict = verdictMissing
		case b <= 0:
			// A non-positive baseline carries no regression signal.
			comp.Verdict = verdictOK
		default:
			comp.Ratio = c / b
			switch {
			case b > saturationFloor && c > saturationFloor:
				// Deep in orders-of-magnitude territory run-to-run jitter
				// dwarfs the percentage band — but a collapse relative to
				// baseline is still a regression, even if the wreckage
				// clears the absolute floor.
				if comp.Ratio < 1/collapseFactor {
					comp.Verdict = verdictRegression
				} else {
					comp.Verdict = verdictSaturated
				}
			case comp.Ratio < 1-threshold:
				comp.Verdict = verdictRegression
			case comp.Ratio > 1:
				comp.Verdict = verdictImproved
			default:
				comp.Verdict = verdictOK
			}
		}
		comps = append(comps, comp)
	}
	for metric, c := range cur {
		if _, ok := base[metric]; !ok {
			// Informational: a new metric is not gated until its baseline
			// is committed.
			comps = append(comps, comparison{
				File: baselinePath, Metric: metric, Current: c, Verdict: verdictNew,
			})
		}
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Metric < comps[j].Metric })
	return comps, nil
}

// run executes the whole gate; split from main for testability.
func run(pairs []string, threshold float64, reportPath string) (*diffReport, error) {
	report := &diffReport{Threshold: threshold, Comparisons: []comparison{}}
	for _, pair := range pairs {
		baselinePath, currentPath, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("argument %q is not a baseline=current pair", pair)
		}
		comps, err := comparePair(baselinePath, currentPath, threshold)
		if err != nil {
			return nil, err
		}
		report.Comparisons = append(report.Comparisons, comps...)
	}
	for _, c := range report.Comparisons {
		if c.Verdict == verdictRegression || c.Verdict == verdictMissing {
			report.Regressions++
		}
	}
	report.Passed = report.Regressions == 0
	if reportPath != "" {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		out = append(out, '\n')
		if err := os.WriteFile(reportPath, out, 0o644); err != nil {
			return nil, err
		}
	}
	return report, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.30, "maximum tolerated fractional regression (0.30 = current may be up to 30% below baseline)")
	reportPath := flag.String("report", "", "write the full comparison diff to this JSON file (CI uploads it as an artifact)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-threshold 0.30] [-report diff.json] baseline.json=current.json ...")
		os.Exit(2)
	}
	report, err := run(flag.Args(), *threshold, *reportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	for _, c := range report.Comparisons {
		mark := " "
		if c.Verdict == verdictRegression || c.Verdict == verdictMissing {
			mark = "✗"
		}
		fmt.Printf("%s %-60s %12.3f -> %12.3f  (%.2fx)  %s\n",
			mark, c.File+":"+c.Metric, c.Baseline, c.Current, c.Ratio, c.Verdict)
	}
	if !report.Passed {
		fmt.Printf("benchcheck: %d regression(s) beyond the %.0f%% threshold\n", report.Regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d metric(s) within the %.0f%% threshold\n", len(report.Comparisons), *threshold*100)
}
