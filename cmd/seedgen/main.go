// Command seedgen runs the SEED pipeline over a corpus split and prints
// the generated evidence, one line per question.
//
// Usage:
//
//	seedgen -corpus bird -variant gpt -limit 10
//	seedgen -corpus spider -variant deepseek
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

func main() {
	corpusName := flag.String("corpus", "bird", "corpus: bird or spider")
	variant := flag.String("variant", "gpt", "SEED variant: gpt or deepseek")
	limit := flag.Int("limit", 20, "maximum questions to process (0 = all)")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	revise := flag.Bool("revise", false, "also print the SEED_revised form")
	flag.Parse()

	var corpus *dataset.Corpus
	switch *corpusName {
	case "bird":
		corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})
	case "spider":
		corpus = dataset.BuildSpider(*seedFlag)
	default:
		fmt.Fprintf(os.Stderr, "unknown corpus %q\n", *corpusName)
		os.Exit(2)
	}

	cfg := seed.ConfigGPT()
	if *variant == "deepseek" {
		cfg = seed.ConfigDeepSeek()
	}
	client := llm.NewSimulator()
	p := seed.New(cfg, client, corpus)

	if *corpusName == "spider" {
		for _, db := range corpus.DBs {
			if err := p.DescribeDatabase(db); err != nil {
				fmt.Fprintf(os.Stderr, "describing %s: %v\n", db.Name, err)
				os.Exit(1)
			}
		}
		fmt.Println("-- generated description files for all spider databases")
	}

	n := 0
	for _, e := range corpus.Dev {
		if *limit > 0 && n >= *limit {
			break
		}
		n++
		ev, err := p.GenerateEvidence(e.DB, e.Question)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			continue
		}
		fmt.Printf("[%s] %s\n  evidence: %s\n", e.ID, e.Question, ev)
		if *revise {
			rev, err := p.Revise(ev)
			if err == nil {
				fmt.Printf("  revised:  %s\n", rev)
			}
		}
	}
	ledger := client.LedgerSnapshot()
	fmt.Printf("\n-- %d questions, %d simulated LLM calls\n", n, ledger.TotalCalls())
	for model, u := range ledger.PerModel {
		fmt.Printf("--   %s: %d calls, %d prompt tokens, %d completion tokens\n",
			model, u.Calls, u.PromptTokens, u.CompletionTokens)
	}
}
