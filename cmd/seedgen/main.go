// Command seedgen runs the SEED pipeline over a corpus split and prints
// the generated evidence, one line per question. Generation goes through
// the evserve service: a bounded worker pool fans the split out, identical
// questions are deduplicated in flight, and repeats hit the evidence cache.
//
// Usage:
//
//	seedgen -corpus bird -variant gpt -limit 10
//	seedgen -corpus spider -variant deepseek
//	seedgen -corpus bird -workers 8 -cache 4096   # batch tuning
//	seedgen -corpus bird -store-dir /var/lib/seedd   # share seedd's corpus
//
// With -store-dir, generation reads and writes the same durable evidence
// store layout seedd uses (StoreDir/<corpus>): questions the daemon has
// already served cost a cache lookup here, and evidence generated offline
// is served warm by the next daemon start — one evidence corpus shared
// between offline runs and online serving. The store holds a directory
// flock, so pointing seedgen at a directory a running seedd owns fails
// fast instead of corrupting the log; a store built under a different
// -seed refuses to open (manifest mismatch) instead of serving stale
// evidence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/evserve"
	"repro/internal/evstore"
	"repro/internal/llm"
	"repro/internal/seed"
)

func main() {
	corpusName := flag.String("corpus", "bird", "corpus: bird or spider")
	variant := flag.String("variant", "gpt", "SEED variant: gpt or deepseek")
	limit := flag.Int("limit", 20, "maximum questions to process (0 = all)")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	revise := flag.Bool("revise", false, "also print the SEED_revised form")
	workers := flag.Int("workers", 0, "evidence worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", 4096, "evidence cache capacity in entries (negative disables)")
	stats := flag.Bool("stats", false, "print the per-stage pipeline cost table (runs, memo hits, wall time, tokens)")
	storeDir := flag.String("store-dir", "", "durable evidence store directory (same layout as seedd -store-dir; empty = in-memory only)")
	flag.Parse()

	var corpus *dataset.Corpus
	switch *corpusName {
	case "bird":
		corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})
	case "spider":
		corpus = dataset.BuildSpider(*seedFlag)
	default:
		fmt.Fprintf(os.Stderr, "unknown corpus %q\n", *corpusName)
		os.Exit(2)
	}

	cfg := seed.ConfigGPT()
	if *variant == "deepseek" {
		cfg = seed.ConfigDeepSeek()
	}
	client := llm.NewSimulator()
	p := seed.New(cfg, client, corpus)

	if *corpusName == "spider" {
		for _, db := range corpus.DBs {
			if err := p.DescribeDatabase(db); err != nil {
				fmt.Fprintf(os.Stderr, "describing %s: %v\n", db.Name, err)
				os.Exit(1)
			}
		}
		fmt.Println("-- generated description files for all spider databases")
	}

	svcOpts := evserve.Options{
		// One namespace rule shared with serving and the experiment
		// drivers, so a shared store replays cleanly in every direction.
		Variant:        evserve.CacheNamespace(string(cfg.Variant), *corpusName),
		GenerateTraced: p.GenerateEvidenceTraced,
		Workers:        *workers,
		CacheCapacity:  *cacheSize,
	}
	var store *evstore.Store
	if *storeDir != "" {
		// Same layout seedd uses: one store per corpus, keys carry the
		// variant, so offline and online runs share one evidence corpus.
		var err error
		store, err = evstore.Open(filepath.Join(*storeDir, *corpusName), evstore.Options{
			Manifest: evstore.Manifest(*corpusName, *seedFlag),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening store: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		svcOpts.Store = store
	}
	svc := evserve.New(svcOpts)
	defer svc.Close()

	split := corpus.Dev
	if *limit > 0 && *limit < len(split) {
		split = split[:*limit]
	}
	reqs := make([]evserve.Request, len(split))
	for i, e := range split {
		reqs[i] = evserve.Request{DB: e.DB, Question: e.Question}
	}
	start := time.Now()
	results, err := svc.GenerateAll(context.Background(), reqs)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "batch: %v\n", err)
		os.Exit(1)
	}

	for i, r := range results {
		e := split[i]
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, r.Err)
			continue
		}
		fmt.Printf("[%s] %s\n  evidence: %s\n", e.ID, e.Question, r.Evidence)
		if *revise {
			rev, err := p.Revise(r.Evidence)
			if err == nil {
				fmt.Printf("  revised:  %s\n", rev)
			}
		}
	}

	ledger := client.LedgerSnapshot()
	svcStats := svc.Stats()
	fmt.Printf("\n-- %d questions in %v (%.0f q/s), %d simulated LLM calls\n",
		len(split), elapsed.Round(time.Millisecond),
		float64(len(split))/elapsed.Seconds(), ledger.TotalCalls())
	fmt.Printf("-- %s\n", svcStats)
	if store != nil {
		sst := store.Stats()
		fmt.Printf("-- store %s: %d records (%d restored into cache), %d appended this run, replay %v\n",
			store.Dir(), sst.Records, svcStats.Restored, svcStats.StoreAppends,
			time.Duration(sst.ReplayMicros)*time.Microsecond)
	}
	for model, u := range ledger.PerModel {
		fmt.Printf("--   %s: %d calls, %d prompt tokens, %d completion tokens\n",
			model, u.Calls, u.PromptTokens, u.CompletionTokens)
	}

	if *stats {
		fmt.Printf("\n-- per-stage pipeline cost (%s)\n", cfg.Variant)
		fmt.Printf("--   %-18s %6s %10s %6s %12s %12s %9s\n",
			"stage", "runs", "memo hits", "hit%", "mean wall", "total wall", "tokens")
		for _, sa := range svcStats.Stages {
			fmt.Printf("--   %-18s %6d %10d %5.0f%% %12s %12s %9d\n",
				sa.Stage, sa.Count, sa.CacheHits, 100*sa.HitRate(),
				(time.Duration(sa.MeanMicros()) * time.Microsecond).Round(time.Microsecond),
				(time.Duration(sa.WallMicros) * time.Microsecond).Round(time.Microsecond),
				sa.Tokens)
		}
		for stage, ms := range p.StageMemoStats() {
			fmt.Printf("--   memo %-18s %d entries, %d hits / %d misses, %d evictions\n",
				stage, ms.Entries, ms.Hits, ms.Misses, ms.Evictions)
		}
	}
}
