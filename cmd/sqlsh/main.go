// Command sqlsh is an interactive SQL shell over a synthetic corpus
// database, backed by the reproduction's own SQL engine.
//
// Usage:
//
//	sqlsh -db financial
//	> SELECT COUNT(*) FROM client WHERE gender = 'F';
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

func main() {
	dbName := flag.String("db", "financial", "database name within the corpus")
	corpusName := flag.String("corpus", "bird", "corpus: bird or spider")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	flag.Parse()

	var corpus *dataset.Corpus
	if *corpusName == "spider" {
		corpus = dataset.BuildSpider(*seedFlag)
	} else {
		corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})
	}
	db, ok := corpus.DB(*dbName)
	if !ok {
		var names []string
		for k := range corpus.DBs {
			names = append(names, k)
		}
		fmt.Fprintf(os.Stderr, "no database %q; available: %v\n", *dbName, names)
		os.Exit(2)
	}
	fmt.Printf("connected to %s (%d tables); end statements with ';', .schema prints DDL, .timing toggles timing, .trace on|off prints span trees, .quit exits\n",
		db.Name, len(db.Engine.Tables()))

	scanner := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	timing := false
	tracing := false
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if arg, ok := strings.CutPrefix(trimmed, ".trace"); ok {
			switch strings.TrimSpace(arg) {
			case "on":
				tracing = true
			case "off":
				tracing = false
			default:
				tracing = !tracing
			}
			state := "off"
			if tracing {
				state = "on"
			}
			fmt.Printf("trace %s (span tree per statement: prepare, plan-cache hit, execute, rows, cost)\n", state)
			fmt.Print("> ")
			continue
		}
		switch trimmed {
		case ".quit", ".exit":
			return
		case ".schema":
			fmt.Println(db.DDL())
			fmt.Print("> ")
			continue
		case ".tables":
			fmt.Println(strings.Join(db.Engine.TableNames(), " "))
			fmt.Print("> ")
			continue
		case ".timing":
			timing = !timing
			state := "off"
			if timing {
				state = "on"
			}
			fmt.Printf("timing %s (prepare vs execute, via the prepared-plan cache, plus execution mode)\n", state)
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("... ")
			continue
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if sql != "" {
			run(db, sql, timing, tracing)
		}
		fmt.Print("> ")
	}
}

func run(db *schema.DB, sql string, timing, tracing bool) {
	var res *sqlengine.Result
	var err error
	var prepTime, execTime time.Duration
	var cacheHit bool
	var tr *obs.Trace
	var root *obs.Span
	ctx := context.Background()
	if tracing {
		ctx, tr = obs.NewTrace(ctx, "", "")
		root = tr.StartRoot("statement", "")
		root.SetAttr("sql", sql)
		ctx = obs.ContextWithSpan(ctx, root)
	}
	if timing || tracing {
		// Go through PrepareCached explicitly so the two phases —
		// parse/plan (amortised by the plan cache) and execution — are
		// separable, and the cache verdict is per-call rather than
		// inferred from stats deltas.
		_, psp := obs.StartSpan(ctx, "sqlengine.prepare")
		start := time.Now()
		var stmt *sqlengine.Stmt
		stmt, cacheHit, err = db.Engine.PrepareCached(sql)
		prepTime = time.Since(start)
		psp.SetAttr("plan_cache_hit", cacheHit)
		if err != nil {
			psp.Fail(err)
		} else {
			psp.End()
			_, esp := obs.StartSpan(ctx, "sqlengine.execute")
			start = time.Now()
			res, err = stmt.Exec()
			execTime = time.Since(start)
			if err != nil {
				esp.Fail(err)
			} else {
				if res.Rows != nil {
					esp.SetAttr("rows", len(res.Rows.Data))
				}
				esp.SetAttr("cost", res.Cost)
				esp.SetAttr("batches", res.Batches)
				esp.SetAttr("parallel_workers", res.Workers)
				esp.End()
			}
		}
	} else {
		res, err = db.Engine.Exec(sql)
	}
	if tracing {
		if err != nil {
			root.Fail(err)
		} else {
			root.End()
		}
		errMsg := ""
		if err != nil {
			errMsg = err.Error()
		}
		defer func() { fmt.Print(obs.RenderTree(tr.Finish("statement", 0, errMsg))) }()
	}
	if timing {
		defer func() {
			if err != nil {
				return
			}
			source := "planned"
			if cacheHit {
				source = "plan cache hit"
			}
			// Physical execution mode: row-at-a-time (serial) vs vectorized
			// batches, and the widest parallel fan-out any operator reached.
			mode := "serial"
			if res.Batches > 0 {
				mode = fmt.Sprintf("vectorized, %d batches", res.Batches)
			}
			if res.Workers > 1 {
				mode += fmt.Sprintf(", %d workers", res.Workers)
			}
			fmt.Printf("timing: prepare %v (%s), execute %v (%s)\n",
				prepTime.Round(time.Microsecond), source, execTime.Round(time.Microsecond), mode)
		}()
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Rows == nil {
		fmt.Printf("ok (%d rows affected, cost %d)\n", res.RowsAffected, res.Cost)
		return
	}
	fmt.Println(strings.Join(res.Rows.Columns, " | "))
	for _, row := range res.Rows.Data {
		parts := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				parts[i] = "NULL"
			} else {
				parts[i] = v.AsText()
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows, cost %d)\n", len(res.Rows.Data), res.Cost)
}
