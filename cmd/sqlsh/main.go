// Command sqlsh is an interactive SQL shell over a synthetic corpus
// database, backed by the reproduction's own SQL engine.
//
// Usage:
//
//	sqlsh -db financial
//	> SELECT COUNT(*) FROM client WHERE gender = 'F';
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

func main() {
	dbName := flag.String("db", "financial", "database name within the corpus")
	corpusName := flag.String("corpus", "bird", "corpus: bird or spider")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	flag.Parse()

	var corpus *dataset.Corpus
	if *corpusName == "spider" {
		corpus = dataset.BuildSpider(*seedFlag)
	} else {
		corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})
	}
	db, ok := corpus.DB(*dbName)
	if !ok {
		var names []string
		for k := range corpus.DBs {
			names = append(names, k)
		}
		fmt.Fprintf(os.Stderr, "no database %q; available: %v\n", *dbName, names)
		os.Exit(2)
	}
	fmt.Printf("connected to %s (%d tables); end statements with ';', .schema prints DDL, .timing toggles timing, .quit exits\n",
		db.Name, len(db.Engine.Tables()))

	scanner := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	timing := false
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case ".quit", ".exit":
			return
		case ".schema":
			fmt.Println(db.DDL())
			fmt.Print("> ")
			continue
		case ".tables":
			fmt.Println(strings.Join(db.Engine.TableNames(), " "))
			fmt.Print("> ")
			continue
		case ".timing":
			timing = !timing
			state := "off"
			if timing {
				state = "on"
			}
			fmt.Printf("timing %s (prepare vs execute, via the prepared-plan cache)\n", state)
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("... ")
			continue
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if sql != "" {
			run(db, sql, timing)
		}
		fmt.Print("> ")
	}
}

func run(db *schema.DB, sql string, timing bool) {
	var res *sqlengine.Result
	var err error
	var prepTime, execTime time.Duration
	var cacheHit bool
	if timing {
		// Go through Prepare explicitly so the two phases — parse/plan
		// (amortised by the plan cache) and execution — are separable.
		hitsBefore := db.Engine.PlanCacheStats().Hits
		start := time.Now()
		var stmt *sqlengine.Stmt
		stmt, err = db.Engine.Prepare(sql)
		prepTime = time.Since(start)
		if err == nil {
			cacheHit = db.Engine.PlanCacheStats().Hits > hitsBefore
			start = time.Now()
			res, err = stmt.Exec()
			execTime = time.Since(start)
		}
	} else {
		res, err = db.Engine.Exec(sql)
	}
	if timing {
		defer func() {
			if err != nil {
				return
			}
			source := "planned"
			if cacheHit {
				source = "plan cache hit"
			}
			fmt.Printf("timing: prepare %v (%s), execute %v\n",
				prepTime.Round(time.Microsecond), source, execTime.Round(time.Microsecond))
		}()
	}
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Rows == nil {
		fmt.Printf("ok (%d rows affected, cost %d)\n", res.RowsAffected, res.Cost)
		return
	}
	fmt.Println(strings.Join(res.Rows.Columns, " | "))
	for _, row := range res.Rows.Data {
		parts := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				parts[i] = "NULL"
			} else {
				parts[i] = v.AsText()
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows, cost %d)\n", len(res.Rows.Data), res.Cost)
}
