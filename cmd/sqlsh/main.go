// Command sqlsh is an interactive SQL shell over a synthetic corpus
// database, backed by the reproduction's own SQL engine.
//
// Usage:
//
//	sqlsh -db financial
//	> SELECT COUNT(*) FROM client WHERE gender = 'F';
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/schema"
)

func main() {
	dbName := flag.String("db", "financial", "database name within the corpus")
	corpusName := flag.String("corpus", "bird", "corpus: bird or spider")
	seedFlag := flag.Uint64("seed", 7, "corpus generation seed")
	flag.Parse()

	var corpus *dataset.Corpus
	if *corpusName == "spider" {
		corpus = dataset.BuildSpider(*seedFlag)
	} else {
		corpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: *seedFlag})
	}
	db, ok := corpus.DB(*dbName)
	if !ok {
		var names []string
		for k := range corpus.DBs {
			names = append(names, k)
		}
		fmt.Fprintf(os.Stderr, "no database %q; available: %v\n", *dbName, names)
		os.Exit(2)
	}
	fmt.Printf("connected to %s (%d tables); end statements with ';', .schema prints DDL, .quit exits\n",
		db.Name, len(db.Engine.Tables()))

	scanner := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	fmt.Print("> ")
	for scanner.Scan() {
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case ".quit", ".exit":
			return
		case ".schema":
			fmt.Println(db.DDL())
			fmt.Print("> ")
			continue
		case ".tables":
			fmt.Println(strings.Join(db.Engine.TableNames(), " "))
			fmt.Print("> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			fmt.Print("... ")
			continue
		}
		sql := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if sql != "" {
			run(db, sql)
		}
		fmt.Print("> ")
	}
}

func run(db *schema.DB, sql string) {
	res, err := db.Engine.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Rows == nil {
		fmt.Printf("ok (%d rows affected, cost %d)\n", res.RowsAffected, res.Cost)
		return
	}
	fmt.Println(strings.Join(res.Rows.Columns, " | "))
	for _, row := range res.Rows.Data {
		parts := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				parts[i] = "NULL"
			} else {
				parts[i] = v.AsText()
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows, cost %d)\n", len(res.Rows.Data), res.Cost)
}
