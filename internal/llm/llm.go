// Package llm is the deterministic simulated large-language-model substrate
// for the SEED reproduction. The paper's pipelines call GPT-4o, GPT-4o-mini,
// DeepSeek-R1, DeepSeek-V3 and ChatGPT through HTTP APIs; this package
// reproduces the two properties of those APIs that the paper's mechanisms
// depend on, without any network access:
//
//  1. Context-window limits. DeepSeek-R1's API caps requests at 8,192
//     tokens, which is the entire motivation for SEED's schema
//     summarization stage (§III-A). The simulator enforces each model's
//     window: requests either fail or are truncated per policy, and task
//     logic only ever sees the post-truncation prompt, so exceeding the
//     window genuinely loses information.
//
//  2. Capability-dependent behaviour. Each model carries capability
//     parameters in [0,1]; task implementations draw from a deterministic,
//     request-seeded random source to decide capability-gated outcomes.
//     The same request always produces the same response, making every
//     experiment bit-reproducible.
//
// Task logic itself (what "the model" answers for a given prompt) is
// supplied by the caller as a TaskFunc: the SEED pipeline and the
// text-to-SQL baselines each define their own, operating on the prompt the
// simulator hands them.
package llm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Model describes one simulated LLM.
type Model struct {
	// Name is the API-style model identifier, e.g. "gpt-4o".
	Name string
	// ContextWindow is the maximum total tokens per request.
	ContextWindow int
	// Capability in [0,1] scales how reliably the model completes
	// reasoning-heavy steps (schema linking, SQL assembly, evidence
	// inference). It is the lever that separates GPT-4o from ChatGPT.
	Capability float64
	// InstructionFollowing in [0,1] scales how closely output format
	// tracks exemplars; low values let extra clauses (e.g. join hints)
	// leak into generated evidence, the mechanism behind Table VI.
	InstructionFollowing float64
}

// Registry of the models used in the paper. Context windows follow the
// public APIs at the paper's writing time; capabilities are calibration
// parameters documented in EXPERIMENTS.md.
var registry = map[string]Model{
	"gpt-4o":       {Name: "gpt-4o", ContextWindow: 128000, Capability: 0.92, InstructionFollowing: 0.95},
	"gpt-4o-mini":  {Name: "gpt-4o-mini", ContextWindow: 128000, Capability: 0.84, InstructionFollowing: 0.90},
	"gpt-4":        {Name: "gpt-4", ContextWindow: 32000, Capability: 0.90, InstructionFollowing: 0.92},
	"chatgpt":      {Name: "chatgpt", ContextWindow: 16000, Capability: 0.78, InstructionFollowing: 0.82},
	"deepseek-r1":  {Name: "deepseek-r1", ContextWindow: 8192, Capability: 0.90, InstructionFollowing: 0.72},
	"deepseek-v3":  {Name: "deepseek-v3", ContextWindow: 64000, Capability: 0.87, InstructionFollowing: 0.88},
	"codes-sft":    {Name: "codes-sft", ContextWindow: 8192, Capability: 0.80, InstructionFollowing: 0.97},
	"starcoder-ft": {Name: "starcoder-ft", ContextWindow: 8192, Capability: 0.76, InstructionFollowing: 0.95},
}

var registryMu sync.RWMutex

// Lookup returns the registered model by name.
func Lookup(name string) (Model, error) {
	registryMu.RLock()
	m, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Model{}, fmt.Errorf("llm: unknown model %q", name)
	}
	return m, nil
}

// RegisterModel adds (or replaces) a model in the registry. Used for
// parameterised model families such as the CodeS size ladder.
func RegisterModel(m Model) {
	registryMu.Lock()
	registry[m.Name] = m
	registryMu.Unlock()
}

// MustLookup is Lookup for statically known names; it panics on a typo.
func MustLookup(name string) Model {
	m, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ModelNames lists all registered model identifiers (unordered).
func ModelNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// CountTokens approximates API tokenisation: one token per word piece,
// where long words count one token per 4 characters. It over-counts
// slightly versus real BPE, which keeps window enforcement conservative.
func CountTokens(s string) int {
	n := 0
	for _, f := range strings.Fields(s) {
		n += tokenCost(f)
	}
	return n
}

// tokenCost prices one whitespace-delimited field: one token per started
// 5-character chunk.
func tokenCost(f string) int { return 1 + (len(f)-1)/5 }

// TruncatePolicy selects what happens when a prompt exceeds the window.
type TruncatePolicy int

// Truncation policies.
const (
	// ErrorOnOverflow rejects over-window requests, like the DeepSeek-R1
	// API does.
	ErrorOnOverflow TruncatePolicy = iota
	// TruncateHead keeps the end of the prompt (instructions usually
	// trail), dropping the front.
	TruncateHead
	// TruncateTail keeps the front of the prompt, dropping the end.
	TruncateTail
)

// ErrContextOverflow is returned when a request exceeds the model's context
// window under ErrorOnOverflow.
var ErrContextOverflow = errors.New("llm: prompt exceeds model context window")

// TaskFunc implements the "brain" of a simulated completion: it receives
// the (post-truncation) prompt, the model parameters and a deterministic
// random source, and returns the completion text.
type TaskFunc func(prompt string, m Model, rng *Rand) (string, error)

// Request is one completion call.
type Request struct {
	// Model is the registered model identifier, e.g. "gpt-4o".
	Model string
	// Prompt is the full request text.
	Prompt string
	// Salt differentiates repeated calls that must draw independent noise
	// (e.g. C3's self-consistency votes).
	Salt string
	// Policy selects overflow handling; the zero value rejects overflows.
	Policy TruncatePolicy
	// Task computes the completion. Required.
	Task TaskFunc
}

// Response is the result of a completion call.
type Response struct {
	// Text is the completion.
	Text string
	// PromptTokens and CompletionTokens count post-truncation usage.
	PromptTokens     int
	CompletionTokens int
	// Truncated reports whether the prompt was cut to fit the window.
	Truncated bool
}

// Client issues completion requests. Implementations must be safe for
// concurrent use.
type Client interface {
	Complete(req Request) (Response, error)
}

// Simulator is the deterministic Client. The zero value is usable; Ledger
// is allocated lazily.
type Simulator struct {
	mu     sync.Mutex
	ledger Ledger

	// latencyNanos, when non-zero, is slept per completion to model the
	// network round trip of the real HTTP APIs. See SetLatency.
	latencyNanos atomic.Int64
}

// NewSimulator returns a fresh simulator with an empty ledger.
func NewSimulator() *Simulator { return &Simulator{} }

// SetLatency makes every Complete call take at least d of wall time,
// modelling the API round trip the paper's pipelines pay on each real
// LLM request. The default is zero (no sleep), which keeps tests and
// deterministic golden comparisons instant; latency changes only wall
// time, never response content. Benchmarks enable it to measure how much
// call latency the stage-graph scheduler hides by overlapping
// independent LLM calls — the dominant cost in a deployed SEED, where a
// single API round trip is hundreds of milliseconds.
func (s *Simulator) SetLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.latencyNanos.Store(int64(d))
}

// Complete implements Client.
func (s *Simulator) Complete(req Request) (Response, error) {
	if req.Task == nil {
		return Response{}, errors.New("llm: request has no task")
	}
	if d := s.latencyNanos.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	m, err := Lookup(req.Model)
	if err != nil {
		return Response{}, err
	}
	prompt := req.Prompt
	tokens := CountTokens(prompt)
	truncated := false
	if tokens > m.ContextWindow {
		switch req.Policy {
		case ErrorOnOverflow:
			return Response{PromptTokens: tokens}, fmt.Errorf("%w: %d tokens > %d (%s)", ErrContextOverflow, tokens, m.ContextWindow, m.Name)
		case TruncateHead:
			prompt = truncateToTokens(prompt, m.ContextWindow, true)
			truncated = true
		case TruncateTail:
			prompt = truncateToTokens(prompt, m.ContextWindow, false)
			truncated = true
		}
		tokens = CountTokens(prompt)
	}
	rng := NewRand(seedFor(m.Name, prompt, req.Salt))
	text, err := req.Task(prompt, m, rng)
	if err != nil {
		return Response{PromptTokens: tokens, Truncated: truncated}, err
	}
	resp := Response{
		Text:             text,
		PromptTokens:     tokens,
		CompletionTokens: CountTokens(text),
		Truncated:        truncated,
	}
	s.mu.Lock()
	s.ledger.record(m.Name, resp)
	s.mu.Unlock()
	return resp, nil
}

// LedgerSnapshot returns a copy of the accumulated usage accounting.
func (s *Simulator) LedgerSnapshot() Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.clone()
}

// ResetLedger clears accumulated usage.
func (s *Simulator) ResetLedger() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger = Ledger{}
}

func truncateToTokens(prompt string, window int, keepTail bool) string {
	fields := strings.Fields(prompt)
	// Walk from the kept end accumulating token cost until the window fills.
	budget := window
	if keepTail {
		start := len(fields)
		for i := len(fields) - 1; i >= 0; i-- {
			cost := tokenCost(fields[i])
			if budget-cost < 0 {
				break
			}
			budget -= cost
			start = i
		}
		return strings.Join(fields[start:], " ")
	}
	end := 0
	for i := 0; i < len(fields); i++ {
		cost := tokenCost(fields[i])
		if budget-cost < 0 {
			break
		}
		budget -= cost
		end = i + 1
	}
	return strings.Join(fields[:end], " ")
}

func seedFor(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Usage aggregates calls for one model.
type Usage struct {
	// Calls counts completions issued to the model.
	Calls int
	// PromptTokens and CompletionTokens sum token usage across calls.
	PromptTokens     int
	CompletionTokens int
}

// Ledger tracks per-model usage for cost reporting.
type Ledger struct {
	// PerModel maps model name to its accumulated usage.
	PerModel map[string]Usage
}

func (l *Ledger) record(model string, r Response) {
	if l.PerModel == nil {
		l.PerModel = make(map[string]Usage)
	}
	u := l.PerModel[model]
	u.Calls++
	u.PromptTokens += r.PromptTokens
	u.CompletionTokens += r.CompletionTokens
	l.PerModel[model] = u
}

func (l *Ledger) clone() Ledger {
	out := Ledger{PerModel: make(map[string]Usage, len(l.PerModel))}
	for k, v := range l.PerModel {
		out.PerModel[k] = v
	}
	return out
}

// TotalCalls sums calls across models.
func (l Ledger) TotalCalls() int {
	n := 0
	for _, u := range l.PerModel {
		n += u.Calls
	}
	return n
}
