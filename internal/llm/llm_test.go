package llm

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func echoTask(prompt string, m Model, rng *Rand) (string, error) {
	return "echo: " + prompt, nil
}

func TestLookup(t *testing.T) {
	m, err := Lookup("deepseek-r1")
	if err != nil {
		t.Fatal(err)
	}
	if m.ContextWindow != 8192 {
		t.Errorf("deepseek-r1 window = %d, want 8192 (the paper's stated API cap)", m.ContextWindow)
	}
	if _, err := Lookup("gpt-99"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestCompleteDeterministic(t *testing.T) {
	sim := NewSimulator()
	task := func(prompt string, m Model, rng *Rand) (string, error) {
		if rng.Chance(0.5) {
			return "heads", nil
		}
		return "tails", nil
	}
	req := Request{Model: "gpt-4o", Prompt: "flip", Task: task}
	r1, err := sim.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Errorf("same request must give same response: %q vs %q", r1.Text, r2.Text)
	}
	// Different salt draws independent noise; over many salts both outcomes
	// appear.
	seen := map[string]bool{}
	for _, salt := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		r, err := sim.Complete(Request{Model: "gpt-4o", Prompt: "flip", Salt: salt, Task: task})
		if err != nil {
			t.Fatal(err)
		}
		seen[r.Text] = true
	}
	if !seen["heads"] || !seen["tails"] {
		t.Errorf("salted calls should vary: %v", seen)
	}
}

func TestContextOverflowError(t *testing.T) {
	sim := NewSimulator()
	long := strings.Repeat("schema column_name TEXT ", 4000) // ~16k tokens
	_, err := sim.Complete(Request{Model: "deepseek-r1", Prompt: long, Task: echoTask})
	if !errors.Is(err, ErrContextOverflow) {
		t.Fatalf("want ErrContextOverflow, got %v", err)
	}
	// Same prompt fits comfortably in gpt-4o.
	if _, err := sim.Complete(Request{Model: "gpt-4o", Prompt: long, Task: echoTask}); err != nil {
		t.Fatalf("gpt-4o should accept: %v", err)
	}
}

func TestTruncationLosesInformation(t *testing.T) {
	sim := NewSimulator()
	needle := "NEEDLE_AT_FRONT"
	long := needle + " " + strings.Repeat("filler ", 9000)
	resp, err := sim.Complete(Request{Model: "deepseek-r1", Prompt: long, Policy: TruncateHead, Task: echoTask})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("response should be flagged truncated")
	}
	if strings.Contains(resp.Text, needle) {
		t.Error("head truncation must drop the front of the prompt")
	}
	// Tail policy keeps the needle.
	resp, err = sim.Complete(Request{Model: "deepseek-r1", Prompt: long, Policy: TruncateTail, Task: echoTask})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, needle) {
		t.Error("tail truncation must keep the front of the prompt")
	}
	if got := CountTokens(strings.TrimPrefix(resp.Text, "echo: ")); got > 8192 {
		t.Errorf("truncated prompt still over window: %d tokens", got)
	}
}

func TestLedger(t *testing.T) {
	sim := NewSimulator()
	for i := 0; i < 3; i++ {
		if _, err := sim.Complete(Request{Model: "gpt-4o-mini", Prompt: "hello world", Task: echoTask}); err != nil {
			t.Fatal(err)
		}
	}
	led := sim.LedgerSnapshot()
	u := led.PerModel["gpt-4o-mini"]
	if u.Calls != 3 {
		t.Errorf("calls = %d, want 3", u.Calls)
	}
	if u.PromptTokens != 3*CountTokens("hello world") {
		t.Errorf("prompt tokens = %d", u.PromptTokens)
	}
	if led.TotalCalls() != 3 {
		t.Errorf("TotalCalls = %d", led.TotalCalls())
	}
	sim.ResetLedger()
	if sim.LedgerSnapshot().TotalCalls() != 0 {
		t.Error("ResetLedger should clear usage")
	}
}

func TestMissingTask(t *testing.T) {
	sim := NewSimulator()
	if _, err := sim.Complete(Request{Model: "gpt-4o", Prompt: "x"}); err == nil {
		t.Error("nil task should error")
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty string has 0 tokens")
	}
	if CountTokens("one two three") != 3 {
		t.Errorf("short words are 1 token each: %d", CountTokens("one two three"))
	}
	long := CountTokens("antidisestablishmentarianism")
	if long < 2 {
		t.Errorf("long words cost more than 1 token: %d", long)
	}
}

// Property: token count is additive across concatenation with a space.
func TestCountTokensAdditive(t *testing.T) {
	f := func(a, b string) bool {
		a = strings.Join(strings.Fields(a), " ")
		b = strings.Join(strings.Fields(b), " ")
		if a == "" || b == "" {
			return true
		}
		return CountTokens(a+" "+b) == CountTokens(a)+CountTokens(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Rand.Float64 stays in [0,1) and is reproducible per seed.
func TestRandProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r1, r2 := NewRand(seed), NewRand(seed)
		for i := 0; i < 16; i++ {
			v1, v2 := r1.Float64(), r2.Float64()
			if v1 != v2 || v1 < 0 || v1 >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRandChanceExtremes(t *testing.T) {
	r := NewRand(42)
	if r.Chance(0) {
		t.Error("Chance(0) must be false")
	}
	if !r.Chance(1) {
		t.Error("Chance(1) must be true")
	}
	if r.Pick(0) != -1 {
		t.Error("Pick(0) = -1")
	}
}

// TestLedgerConcurrentComplete hammers one simulator from many goroutines,
// the access pattern the evserve worker pool produces. Run under -race this
// guards the ledger's lock discipline; the final counts check that no
// recording was lost.
func TestLedgerConcurrentComplete(t *testing.T) {
	s := NewSimulator()
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := s.Complete(Request{
					Model:  "gpt-4o",
					Prompt: "concurrent prompt",
					Salt:   string(rune('a' + g)),
					Task:   echoTask,
				})
				if err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
				if i%10 == 0 {
					_ = s.LedgerSnapshot() // concurrent reads must be safe too
				}
			}
		}(g)
	}
	wg.Wait()
	ledger := s.LedgerSnapshot()
	if got := ledger.TotalCalls(); got != goroutines*perG {
		t.Errorf("ledger recorded %d calls, want %d", got, goroutines*perG)
	}
}

// TestRegistryConcurrentAccess exercises RegisterModel against Lookup and
// ModelNames from concurrent goroutines.
func TestRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "race-model-" + string(rune('a'+g))
			for i := 0; i < 25; i++ {
				RegisterModel(Model{Name: name, ContextWindow: 1000, Capability: 0.5, InstructionFollowing: 0.5})
				if _, err := Lookup(name); err != nil {
					t.Errorf("Lookup(%s): %v", name, err)
					return
				}
				_ = ModelNames()
			}
		}(g)
	}
	wg.Wait()
}
