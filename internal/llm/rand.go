package llm

// Rand is a small deterministic pseudo-random source (splitmix64). It gives
// task functions capability-gated coin flips that are stable across runs
// for the same (model, prompt, salt) triple — the property that makes the
// whole reproduction deterministic.
type Rand struct{ state uint64 }

// NewRand returns a Rand seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("llm: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Chance reports true with probability p (clamped to [0,1]).
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pick returns a uniformly chosen index into a slice of length n, or -1
// when n is zero.
func (r *Rand) Pick(n int) int {
	if n == 0 {
		return -1
	}
	return r.Intn(n)
}
