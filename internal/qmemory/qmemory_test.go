package qmemory

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sqlengine"
)

func testRows() *sqlengine.Rows {
	return &sqlengine.Rows{
		Columns: []string{"n"},
		Data:    [][]sqlengine.Value{{sqlengine.Int(42)}},
	}
}

func TestAdmitLookupParaphrase(t *testing.T) {
	m, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(testRows())
	m.Admit("shop", "How many orders have status 'shipped'?", "status means order state",
		"SELECT COUNT(*) FROM orders WHERE status = 'shipped'", fp)

	// The exact phrasing hits.
	hit, ok := m.Lookup("shop", "How many orders have status 'shipped'?")
	if !ok {
		t.Fatal("exact phrasing should hit")
	}
	if hit.SQL != "SELECT COUNT(*) FROM orders WHERE status = 'shipped'" {
		t.Fatalf("wrong SQL: %q", hit.SQL)
	}
	if hit.Confidence < 0.85 {
		t.Fatalf("fresh pattern confidence %v below serve threshold", hit.Confidence)
	}

	// A paraphrase carrying the same literal hits too.
	hit2, ok := m.Lookup("shop", "Count the orders whose status equals 'shipped'.")
	if !ok {
		t.Fatal("paraphrase should hit")
	}
	if hit2.PatternID != hit.PatternID {
		t.Fatal("paraphrase matched a different pattern")
	}

	// A question missing the SQL's literal must NOT be served this
	// pattern, however lexically similar: the literal gate protects
	// against serving someone else's constants.
	if _, ok := m.Lookup("shop", "How many orders have status 'returned'?"); ok {
		t.Fatal("literal gate should reject a different-entity question")
	}

	// An unrelated database misses.
	if _, ok := m.Lookup("other", "How many orders have status 'shipped'?"); ok {
		t.Fatal("lookup must be db-scoped")
	}
}

func TestSuccessTeachesPhrasing(t *testing.T) {
	m, _ := New(Options{})
	fp := Fingerprint(testRows())
	m.Admit("shop", "How many orders have status 'shipped'?", "",
		"SELECT COUNT(*) FROM orders WHERE status = 'shipped'", fp)
	hit, ok := m.Lookup("shop", "Count orders with status 'shipped'")
	if !ok {
		t.Fatal("paraphrase should hit")
	}
	before := hit.Confidence
	m.Success(hit.PatternID, "Count orders with status 'shipped'")
	hit2, ok := m.Lookup("shop", "Count orders with status 'shipped'")
	if !ok {
		t.Fatal("taught phrasing should hit")
	}
	if hit2.Confidence <= before {
		t.Fatalf("success should raise confidence: %v -> %v", before, hit2.Confidence)
	}
	if hit2.Similarity < hit.Similarity {
		t.Fatalf("taught phrasing should match at least as well: %v -> %v", hit.Similarity, hit2.Similarity)
	}
	st := m.Stats()
	if st.Admitted != 1 || st.Reinforced != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPoisonedPatternStopsServing is the memory-poisoning regression:
// a pattern whose SQL starts failing verification must lose confidence
// and stop being served — one failure is enough to demote it below the
// serve threshold.
func TestPoisonedPatternStopsServing(t *testing.T) {
	m, _ := New(Options{})
	fp := Fingerprint(testRows())
	q := "How many orders have status 'shipped'?"
	sql := "SELECT COUNT(*) FROM orders WHERE status = 'shipped'"
	m.Admit("shop", q, "", sql, fp)

	hit, ok := m.Lookup("shop", q)
	if !ok {
		t.Fatal("should hit before poisoning")
	}
	m.Failure(hit.PatternID)
	if _, ok := m.Lookup("shop", q); ok {
		t.Fatal("one failure must demote the pattern below the serve threshold")
	}
	st := m.Stats()
	if st.Demotions != 1 {
		t.Fatalf("want 1 demotion, got %+v", st)
	}

	// Re-admission (a fresh verified generation of the same SQL) restores
	// trust over successive successes.
	for i := 0; i < 8; i++ {
		m.Admit("shop", q, "", sql, fp)
	}
	if _, ok := m.Lookup("shop", q); !ok {
		t.Fatal("repeated verified successes should restore serving")
	}
}

func TestStoreRestartRestoresPatterns(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Manifest: "corpus=test seed=1"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint(testRows())
	m.Admit("shop", "How many orders have status 'shipped'?", "ev",
		"SELECT COUNT(*) FROM orders WHERE status = 'shipped'", fp)
	hit, ok := m.Lookup("shop", "How many orders have status 'shipped'?")
	if !ok {
		t.Fatal("should hit before restart")
	}
	m.Success(hit.PatternID, "Count orders whose status is 'shipped'")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, StoreOptions{Manifest: "corpus=test seed=1"})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Stats().Restored; got != 1 {
		t.Fatalf("want 1 restored pattern, got %d", got)
	}
	hit2, ok := m2.Lookup("shop", "Count orders whose status is 'shipped'")
	if !ok {
		t.Fatal("taught phrasing should survive restart")
	}
	if hit2.SQL != hit.SQL || hit2.Fingerprint != hit.Fingerprint {
		t.Fatal("restored pattern lost state")
	}
	if hit2.Confidence != hit.Confidence+0.25*(1-hit.Confidence) {
		t.Fatalf("restored confidence %v does not reflect the pre-restart success", hit2.Confidence)
	}
}

func TestStoreManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{Manifest: "corpus=a seed=1"})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := OpenStore(dir, StoreOptions{Manifest: "corpus=b seed=2"}); err == nil {
		t.Fatal("manifest mismatch must refuse to open")
	}
}

func TestStoreTruncatesCorruptTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{ID: "a", DB: "d", SQL: "SELECT 1", Confidence: 0.9, Successes: 1, Phrasings: []string{"q"}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Simulate a torn write: garbage after the valid frame.
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("deadbeef {\"id\":\"torn")
	f.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("want 1 live record after truncation, got %d", st2.Len())
	}
	if !st2.Stats().Truncated {
		t.Fatal("stats should record the truncation")
	}
	// The store must be appendable after truncation (frame boundary
	// restored).
	if err := st2.Append(Record{ID: "b", DB: "d", SQL: "SELECT 2", Confidence: 0.9, Successes: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreOptions{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: "a", DB: "d", SQL: "SELECT 1", Phrasings: []string{"q"}}
	for i := 0; i < 20; i++ {
		rec.Successes++
		rec.Confidence = float64(i) / 20
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Compacts == 0 {
		t.Fatal("compaction should have triggered")
	}
	st.Close()

	st2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var got []Record
	st2.Load(func(r Record) { got = append(got, r) })
	if len(got) != 1 || got[0].Successes != 20 {
		t.Fatalf("replay after compaction: %+v", got)
	}
}

func TestSyncConvergence(t *testing.T) {
	a, _ := New(Options{})
	b, _ := New(Options{})
	fp := Fingerprint(testRows())
	a.Admit("shop", "How many orders have status 'shipped'?", "",
		"SELECT COUNT(*) FROM orders WHERE status = 'shipped'", fp)
	a.Admit("shop", "What is the total quantity across all items rows?", "",
		"SELECT SUM(quantity) FROM items", fp)

	srv := httptest.NewServer(httpHandler(a))
	defer srv.Close()
	tailer := NewTailer(srv.URL, b, TailerOptions{})
	if err := tailer.Poll(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := tailer.Stats().Applied; got != 2 {
		t.Fatalf("want 2 applied, got %d (stats %+v)", got, tailer.Stats())
	}
	if _, ok := b.Lookup("shop", "How many orders have status 'shipped'?"); !ok {
		t.Fatal("replicated pattern should serve on the follower")
	}

	// A second poll with nothing new applies nothing (cursor advanced).
	if err := tailer.Poll(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := tailer.Stats().Applied; got != 2 {
		t.Fatalf("idle poll should apply nothing, got %d", got)
	}

	// The reverse direction skips everything — no echo amplification.
	srvB := httptest.NewServer(httpHandler(b))
	defer srvB.Close()
	back := NewTailer(srvB.URL, a, TailerOptions{})
	if err := back.Poll(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := back.Stats().Applied; got != 0 {
		t.Fatalf("echo must not re-apply, got %d applied", got)
	}

	// A demotion on A (more events) wins on B.
	hit, _ := a.Lookup("shop", "How many orders have status 'shipped'?")
	a.Failure(hit.PatternID)
	if err := tailer.Poll(t.Context()); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("shop", "How many orders have status 'shipped'?"); ok {
		t.Fatal("replicated demotion should stop the follower from serving")
	}
	if b.Stats().Demotions == 0 {
		// Demotions count locally; the injected copy just replaces state.
		// What matters is the serve gate above — this assert documents
		// that injection does not fabricate demotion metrics.
		_ = b
	}
}

func TestInjectDominance(t *testing.T) {
	m, _ := New(Options{})
	rec := Record{ID: "x", DB: "d", SQL: "SELECT a FROM t", Confidence: 0.9, Successes: 2, Phrasings: []string{"q"}}
	if ok, _ := m.Inject(rec); !ok {
		t.Fatal("unknown pattern must apply")
	}
	// Fewer events: skip.
	older := rec
	older.Successes = 1
	if ok, _ := m.Inject(older); ok {
		t.Fatal("fewer events must not override")
	}
	// Same events, lower confidence: pessimism wins.
	demoted := rec
	demoted.Confidence = 0.4
	if ok, _ := m.Inject(demoted); !ok {
		t.Fatal("tie should break toward lower confidence")
	}
	// Identical record: no-op (echo).
	if ok, _ := m.Inject(demoted); ok {
		t.Fatal("identical record must be a no-op")
	}
	// More events always wins, even raising confidence back.
	newer := rec
	newer.Successes = 5
	newer.Confidence = 0.95
	if ok, _ := m.Inject(newer); !ok {
		t.Fatal("more events must apply")
	}
	hit, ok := m.Lookup("d", "q")
	if !ok || hit.Confidence != 0.95 {
		t.Fatalf("final state wrong: %+v ok=%v", hit, ok)
	}
}

func TestSQLLiterals(t *testing.T) {
	got := sqlLiterals("SELECT COUNT(*) FROM t1 WHERE name = 'O''Brien' AND qty > 12 OR price = 3.5 LIMIT 5")
	want := []string{"O'Brien", "12", "3.5", "5"}
	if len(got) != len(want) {
		t.Fatalf("literals %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("literals %v, want %v", got, want)
		}
	}
}

// httpHandler adapts a Memory's sync endpoint for httptest.
func httpHandler(m *Memory) http.Handler {
	return http.HandlerFunc(m.ServeSync)
}
