package qmemory

import "repro/internal/obs"

// RegisterMetrics publishes the memory's counters into reg as gauge
// functions, mirroring the evstore/evserve convention so the scrape
// surface stays uniform across subsystems.
func (m *Memory) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("qmemory_patterns", "Patterns held in the query memory.",
		func() float64 { return float64(m.Stats().Patterns) }, labels...)
	reg.GaugeFunc("qmemory_phrasings", "Stored question phrasings across all patterns.",
		func() float64 { return float64(m.Stats().Phrasings) }, labels...)
	reg.GaugeFunc("qmemory_lookups_total", "Serve-path memory probes.",
		func() float64 { return float64(m.Stats().Lookups) }, labels...)
	reg.GaugeFunc("qmemory_hits_total", "Probes that returned a servable pattern.",
		func() float64 { return float64(m.Stats().Hits) }, labels...)
	reg.GaugeFunc("qmemory_misses_total", "Probes with no servable pattern.",
		func() float64 { return float64(m.Stats().Misses) }, labels...)
	reg.GaugeFunc("qmemory_hit_rate", "Hits over lookups.",
		func() float64 { return m.Stats().HitRate }, labels...)
	reg.GaugeFunc("qmemory_admitted_total", "New patterns admitted from verified generations.",
		func() float64 { return float64(m.Stats().Admitted) }, labels...)
	reg.GaugeFunc("qmemory_reinforced_total", "Verified successes recorded against existing patterns.",
		func() float64 { return float64(m.Stats().Reinforced) }, labels...)
	reg.GaugeFunc("qmemory_demotions_total", "Patterns whose confidence fell below the serve threshold.",
		func() float64 { return float64(m.Stats().Demotions) }, labels...)
	reg.GaugeFunc("qmemory_injected_total", "Patterns landed by fleet sync.",
		func() float64 { return float64(m.Stats().Injected) }, labels...)
	reg.GaugeFunc("qmemory_store_errors_total", "Write-through persistence failures.",
		func() float64 { return float64(m.Stats().StoreErrors) }, labels...)
}

// RegisterMetrics publishes the tailer's replication counters into reg,
// keyed by the peer labels the caller supplies.
func (t *Tailer) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.GaugeFunc("qmemory_tail_polls_total", "Sync polls attempted.",
		func() float64 { return float64(t.Stats().Polls) }, labels...)
	reg.GaugeFunc("qmemory_tail_applied_total", "Replicated patterns applied.",
		func() float64 { return float64(t.Stats().Applied) }, labels...)
	reg.GaugeFunc("qmemory_tail_skipped_total", "Replicated patterns our copy dominated.",
		func() float64 { return float64(t.Stats().Skipped) }, labels...)
	reg.GaugeFunc("qmemory_tail_errors_total", "Sync polls that failed.",
		func() float64 { return float64(t.Stats().Errors) }, labels...)
	reg.GaugeFunc("qmemory_tail_resyncs_total", "Generation changes forcing a full resync.",
		func() float64 { return float64(t.Stats().Resyncs) }, labels...)
}
