package qmemory

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is the memory's durable side: a single append-only WAL of
// pattern records in the evstore framing — one line per append,
// "%08x payload\n" with a CRC-32C over the payload — replayed
// newest-wins at open, with the corrupt tail (a torn final write after a
// crash) truncated rather than fatal. Every confidence change appends
// the pattern's full record, so replay needs no delta logic and
// compaction is just "rewrite the live set".
type Store struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	w       *bufio.Writer
	live    map[string]Record
	appends int // appends since last compaction
	closed  bool

	opts StoreOptions

	statAppends   int64
	statCompacts  int64
	statDropped   int64 // corrupt lines truncated at open
	statRestored  int64
	statTruncated bool
}

// StoreOptions configures a Store.
type StoreOptions struct {
	// Manifest, when non-empty, stamps the directory with a corpus
	// identity (evstore.Manifest formatting); reopening over a different
	// manifest fails instead of serving another corpus's SQL.
	Manifest string
	// CompactEvery rewrites the WAL once this many appends accumulate
	// past the live-set size; default 1024.
	CompactEvery int
}

var storeCastagnoli = crc32.MakeTable(crc32.Castagnoli)

const walName = "qmemory.wal"

// OpenStore opens (creating if needed) the WAL store in dir and replays
// its live set.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 1024
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qmemory: creating store dir: %w", err)
	}
	if opts.Manifest != "" {
		mPath := filepath.Join(dir, "MANIFEST")
		existing, err := os.ReadFile(mPath)
		switch {
		case os.IsNotExist(err):
			if err := os.WriteFile(mPath, []byte(opts.Manifest), 0o644); err != nil {
				return nil, fmt.Errorf("qmemory: writing manifest: %w", err)
			}
		case err != nil:
			return nil, fmt.Errorf("qmemory: reading manifest: %w", err)
		case string(existing) != opts.Manifest:
			return nil, fmt.Errorf("qmemory: store %s belongs to %q, want %q",
				dir, existing, opts.Manifest)
		}
	}
	s := &Store{dir: dir, live: make(map[string]Record), opts: opts}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qmemory: opening wal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// replay loads the WAL newest-wins, truncating any corrupt tail so the
// next append starts on a valid frame boundary.
func (s *Store) replay() error {
	path := filepath.Join(s.dir, walName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("qmemory: reading wal: %w", err)
	}
	valid := 0
	for len(data) > valid {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn final line
		}
		line := data[valid : valid+nl]
		rec, ok := decodeLine(line)
		if !ok {
			break // corrupt frame: everything after it is suspect
		}
		s.live[rec.ID] = rec
		valid += nl + 1
	}
	if valid < len(data) {
		s.statDropped = int64(countStoreLines(data[valid:]))
		s.statTruncated = true
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("qmemory: truncating corrupt wal tail: %w", err)
		}
	}
	s.statRestored = int64(len(s.live))
	return nil
}

// Append durably records a pattern's current state.
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("qmemory: store closed")
	}
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("qmemory: appending wal: %w", err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("qmemory: flushing wal: %w", err)
	}
	s.live[rec.ID] = rec
	s.appends++
	s.statAppends++
	if s.appends > len(s.live)+s.opts.CompactEvery {
		return s.compactLocked()
	}
	return nil
}

// Load replays the live set (sorted by ID for determinism) into fn.
func (s *Store) Load(fn func(Record)) {
	s.mu.Lock()
	recs := make([]Record, 0, len(s.live))
	for _, rec := range s.live {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	for _, rec := range recs {
		fn(rec)
	}
}

// Len reports the live pattern count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Compact rewrites the WAL down to the live set.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("qmemory: store closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	recs := make([]Record, 0, len(s.live))
	for _, rec := range s.live {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })

	tmp := filepath.Join(s.dir, walName+".compact")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("qmemory: creating compaction file: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		line, err := encodeLine(rec)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := w.Write(line); err != nil {
			f.Close()
			return fmt.Errorf("qmemory: writing compaction: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("qmemory: flushing compaction: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("qmemory: syncing compaction: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("qmemory: closing compaction: %w", err)
	}

	// Swap the new WAL in under the old name, then reopen the append
	// handle on it.
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("qmemory: flushing wal before swap: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("qmemory: closing wal before swap: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		return fmt.Errorf("qmemory: swapping compacted wal: %w", err)
	}
	f, err = os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qmemory: reopening wal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.appends = 0
	s.statCompacts++
	return nil
}

// Close flushes and closes the WAL. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("qmemory: flushing wal at close: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("qmemory: syncing wal at close: %w", err)
	}
	return s.f.Close()
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// StoreStats is the store's counter snapshot.
type StoreStats struct {
	Live      int   `json:"live"`
	Appends   int64 `json:"appends"`
	Compacts  int64 `json:"compacts"`
	Restored  int64 `json:"restored"`
	Dropped   int64 `json:"dropped,omitempty"`
	Truncated bool  `json:"truncated,omitempty"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Live:      len(s.live),
		Appends:   s.statAppends,
		Compacts:  s.statCompacts,
		Restored:  s.statRestored,
		Dropped:   s.statDropped,
		Truncated: s.statTruncated,
	}
}

func encodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("qmemory: encoding record: %w", err)
	}
	line := fmt.Appendf(nil, "%08x ", crc32.Checksum(payload, storeCastagnoli))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

func decodeLine(line []byte) (Record, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	var want uint64
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return Record{}, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, storeCastagnoli) != uint32(want) {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	if rec.ID == "" {
		return Record{}, false
	}
	return rec, true
}

func countStoreLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}
