package qmemory

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Replication ships learned patterns between fleet replicas the same way
// evidence ships: each replica exposes an incremental sync feed and
// tails its peers. The cursor is (gen, seq): gen is fresh per Memory
// construction (a restarted peer forces a full resync, like evstore's
// generation stamp), and seq is the memory's mutation counter — a
// follower asks for "everything you changed after seq S in generation G"
// and applies what comes back through the Inject dominance rule, so the
// mesh converges without echo loops even though every replica both
// serves and tails.

// SyncChunk is one sync response: the source's generation, the cursor
// the follower should present next, and every pattern mutated past the
// follower's cursor.
type SyncChunk struct {
	Gen      int64    `json:"gen"`
	Next     int64    `json:"next"`
	Patterns []Record `json:"patterns"`
}

// SyncRead collects the patterns mutated after the (gen, since) cursor.
// A generation mismatch resets the cursor: the follower gets the full
// live set and adopts the new generation.
func (m *Memory) SyncRead(gen, since int64, limit int) SyncChunk {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gen != m.gen {
		since = 0
	}
	type seqRec struct {
		seq int64
		rec Record
	}
	var changed []seqRec
	for _, p := range m.patterns {
		if p.seq > since {
			changed = append(changed, seqRec{p.seq, cloneRecord(p.rec)})
		}
	}
	// Oldest-first so a truncated chunk advances the cursor correctly.
	for i := 1; i < len(changed); i++ {
		for j := i; j > 0 && changed[j].seq < changed[j-1].seq; j-- {
			changed[j], changed[j-1] = changed[j-1], changed[j]
		}
	}
	if limit > 0 && len(changed) > limit {
		changed = changed[:limit]
	}
	out := SyncChunk{Gen: m.gen, Next: since}
	for _, c := range changed {
		out.Patterns = append(out.Patterns, c.rec)
		if c.seq > out.Next {
			out.Next = c.seq
		}
	}
	return out
}

// ServeSync handles a follower's GET: query params gen, since and an
// optional limit.
func (m *Memory) ServeSync(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	gen, _ := strconv.ParseInt(q.Get("gen"), 10, 64)
	since, _ := strconv.ParseInt(q.Get("since"), 10, 64)
	limit := 0
	if v := q.Get("limit"); v != "" {
		limit, _ = strconv.Atoi(v)
	}
	chunk := m.SyncRead(gen, since, limit)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(chunk)
}

// Inject lands a replicated pattern. The dominance rule keeps the mesh
// convergent and echo-free:
//
//   - unknown pattern: apply;
//   - more observed events (successes+failures) than ours: the peer has
//     seen more of the world — apply;
//   - equal events but different state: break the tie toward the lower
//     confidence (pessimism is the safe direction for a serve gate), and
//     on an exact confidence tie toward more phrasings;
//   - otherwise: skip (our copy dominates, or the records are equal —
//     this is what stops A→B→A echo).
//
// Injected patterns persist write-through like local mutations, so a
// replica that learned a pattern over the wire still has it after a
// restart.
func (m *Memory) Inject(rec Record) (applied bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.patterns[rec.ID]
	if ok {
		ce, re := cur.rec.events(), rec.events()
		switch {
		case re > ce:
			// apply
		case re == ce && !sameRecord(cur.rec, rec) &&
			(rec.Confidence < cur.rec.Confidence ||
				rec.Confidence == cur.rec.Confidence && len(rec.Phrasings) > len(cur.rec.Phrasings)):
			// apply
		default:
			return false, nil
		}
	}
	if err := m.applyHeld(rec, true); err != nil {
		return false, err
	}
	m.stats.Injected++
	return true, nil
}

func sameRecord(a, b Record) bool {
	if a.ID != b.ID || a.DB != b.DB || a.SQL != b.SQL || a.Evidence != b.Evidence ||
		a.Fingerprint != b.Fingerprint || a.Confidence != b.Confidence ||
		a.Successes != b.Successes || a.Failures != b.Failures ||
		len(a.Phrasings) != len(b.Phrasings) {
		return false
	}
	for i := range a.Phrasings {
		if a.Phrasings[i] != b.Phrasings[i] {
			return false
		}
	}
	return true
}

// TailerOptions configures a replication tailer.
type TailerOptions struct {
	// Interval between polls; default 2s.
	Interval time.Duration
	// Limit bounds patterns per poll; 0 means unlimited.
	Limit int
	// Client is the HTTP client for polls; default a 10s-timeout client.
	Client *http.Client
}

// TailerStats is a tailer's counter snapshot.
type TailerStats struct {
	Polls   int64 `json:"polls"`
	Applied int64 `json:"applied"`
	Skipped int64 `json:"skipped"`
	Errors  int64 `json:"errors"`
	Resyncs int64 `json:"resyncs"`
	// Cursor is the seq the next poll presents.
	Cursor int64 `json:"cursor"`
}

// Tailer follows one peer's sync feed into a local Memory.
type Tailer struct {
	source string
	mem    *Memory
	opts   TailerOptions

	mu    sync.Mutex
	gen   int64
	since int64
	stats TailerStats
}

// NewTailer builds a tailer polling source (a fully-formed sync URL,
// query-string-ready: "?..." already present or absent) into mem.
func NewTailer(source string, mem *Memory, opts TailerOptions) *Tailer {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Tailer{source: source, mem: mem, opts: opts}
}

// Run polls until ctx is done.
func (t *Tailer) Run(ctx context.Context) {
	ticker := time.NewTicker(t.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			_ = t.Poll(ctx)
		}
	}
}

// Poll performs one sync round-trip and applies the chunk.
func (t *Tailer) Poll(ctx context.Context) error {
	t.mu.Lock()
	gen, since := t.gen, t.since
	t.mu.Unlock()

	sep := "?"
	if len(t.source) > 0 && containsQuery(t.source) {
		sep = "&"
	}
	url := fmt.Sprintf("%s%sgen=%d&since=%d&limit=%d", t.source, sep, gen, since, t.opts.Limit)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.fail()
		return err
	}
	resp, err := t.opts.Client.Do(req)
	if err != nil {
		t.fail()
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		t.fail()
		return fmt.Errorf("qmemory: sync %s: status %d", t.source, resp.StatusCode)
	}
	var chunk SyncChunk
	if err := json.NewDecoder(resp.Body).Decode(&chunk); err != nil {
		t.fail()
		return fmt.Errorf("qmemory: decoding sync chunk: %w", err)
	}

	var applied, skipped int64
	for _, rec := range chunk.Patterns {
		ok, err := t.mem.Inject(rec)
		if err != nil {
			t.fail()
			return err
		}
		if ok {
			applied++
		} else {
			skipped++
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Polls++
	t.stats.Applied += applied
	t.stats.Skipped += skipped
	if gen != 0 && chunk.Gen != gen {
		t.stats.Resyncs++
	}
	t.gen = chunk.Gen
	t.since = chunk.Next
	t.stats.Cursor = t.since
	return nil
}

func (t *Tailer) fail() {
	t.mu.Lock()
	t.stats.Polls++
	t.stats.Errors++
	t.mu.Unlock()
}

// Stats snapshots the tailer's counters.
func (t *Tailer) Stats() TailerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func containsQuery(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '?' {
			return true
		}
	}
	return false
}
