// Package qmemory is the confidence-gated semantic query memory: it
// learns from past *successful* (question, evidence, SQL,
// result-fingerprint) tuples and serves them back for new phrasings of
// the same intent — skipping evidence generation and the LLM entirely.
//
// Retrieval is hybrid (ekaya-engine's text2sql-plan pattern): an
// incoming question is matched against every stored phrasing by cosine
// similarity over the deterministic embedding model plus a BM25 lexical
// score, and the best-scoring pattern is a candidate only if it clears a
// similarity floor, a literal-overlap gate (every literal in the stored
// SQL must appear in the question — a paraphrase of "count rows where
// name='Alice'" still mentions Alice), and a per-pattern confidence
// threshold. Confidence rises on execution success and decays on
// failure, so a pattern whose SQL goes stale (schema drift, data change)
// demotes itself out of serving within a failure or two.
//
// The memory is optionally durable (a WAL-backed Store reusing the
// evstore framing idioms) and replicates to fleet peers over an
// incremental sync protocol (see replicate.go), exactly like evidence.
package qmemory

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bm25"
	"repro/internal/embed"
	"repro/internal/sqlengine"
)

// Options tunes a Memory. The zero value is ready: every field defaults
// to the serving-shaped constants below.
type Options struct {
	// ServeThreshold is the confidence a pattern needs before its SQL is
	// served in place of generation; default 0.85.
	ServeThreshold float64
	// MinSimilarity is the hybrid retrieval score floor below which a
	// best match is still a miss; default 0.35. The floor is a coarse
	// relevance filter, not the accuracy gate: under the deterministic
	// hash embeddings a genuine paraphrase lands around 0.4–0.7 while
	// unrelated questions land near zero, and same-shape questions over
	// *different entities* (which score high on any similarity measure)
	// are rejected by the literal-overlap gate and, ultimately, by
	// execution verification.
	MinSimilarity float64
	// InitialConfidence is a freshly admitted pattern's confidence.
	// Admission is already execution-judged (only verified-correct
	// generations enter the memory), so patterns start above the serve
	// threshold; default 0.90.
	InitialConfidence float64
	// SuccessWeight moves confidence toward 1 on a verified success:
	// conf += SuccessWeight * (1 - conf); default 0.25.
	SuccessWeight float64
	// FailureDecay multiplies confidence on a failed verification:
	// conf *= FailureDecay; default 0.45, so one failure demotes a 0.90
	// pattern to 0.405 — below the serve threshold until it re-earns
	// trust through admissions.
	FailureDecay float64
	// TopK bounds the BM25 candidate pool per lookup; default 8.
	TopK int
	// MaxPhrasings bounds the stored phrasings per pattern; default 16.
	MaxPhrasings int
	// Store, when non-nil, makes the memory durable: patterns are
	// replayed from it at construction and persisted write-through.
	Store *Store
}

func (o *Options) fill() {
	if o.ServeThreshold <= 0 {
		o.ServeThreshold = 0.85
	}
	if o.MinSimilarity <= 0 {
		o.MinSimilarity = 0.35
	}
	if o.InitialConfidence <= 0 {
		o.InitialConfidence = 0.90
	}
	if o.SuccessWeight <= 0 {
		o.SuccessWeight = 0.25
	}
	if o.FailureDecay <= 0 {
		o.FailureDecay = 0.45
	}
	if o.TopK <= 0 {
		o.TopK = 8
	}
	if o.MaxPhrasings <= 0 {
		o.MaxPhrasings = 16
	}
}

// Record is one pattern's serializable state: the WAL unit, the sync
// unit, and the replay unit are all this shape.
type Record struct {
	// ID is the pattern key: a hash of (db, SQL), so re-admitting the
	// same SQL under a new phrasing extends the pattern instead of
	// duplicating it.
	ID string `json:"id"`
	// DB names the database the SQL runs against.
	DB string `json:"db"`
	// SQL is the verified query this pattern serves.
	SQL string `json:"sql"`
	// Evidence is the evidence the original generation consumed; served
	// back with memory hits for provenance.
	Evidence string `json:"evidence,omitempty"`
	// Fingerprint pins the execution result the pattern was admitted
	// with; a hit whose re-execution fingerprints differently fails
	// verification.
	Fingerprint string `json:"fingerprint"`
	// Confidence is the serve gate; see Options.
	Confidence float64 `json:"confidence"`
	// Successes and Failures count verified outcomes over the pattern's
	// lifetime (admissions included). Their sum orders replicas'
	// versions of a pattern during sync.
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`
	// Phrasings are the known question phrasings, retrieval documents
	// for future lookups. Bounded by Options.MaxPhrasings.
	Phrasings []string `json:"phrasings"`
}

// events is the total verified-outcome count — the dominance order for
// replica sync (more observed outcomes = newer knowledge).
func (r Record) events() int64 { return r.Successes + r.Failures }

// PatternID derives the stable pattern key for a (db, SQL) pair.
func PatternID(db, sql string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(db))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(sql))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint hashes an execution result (columns and row values, in
// order) for admission pinning and hit verification. The engine is
// deterministic, so identical SQL over identical data always
// fingerprints identically.
func Fingerprint(rows *sqlengine.Rows) string {
	h := fnv.New64a()
	if rows == nil {
		return "empty"
	}
	for _, c := range rows.Columns {
		_, _ = h.Write([]byte(c))
		_, _ = h.Write([]byte{1})
	}
	var buf []byte
	for _, row := range rows.Data {
		for _, v := range row {
			buf = v.AppendKey(buf[:0])
			_, _ = h.Write(buf)
			_, _ = h.Write([]byte{2})
		}
		_, _ = h.Write([]byte{3})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Hit is a servable lookup result.
type Hit struct {
	PatternID   string
	SQL         string
	Evidence    string
	Fingerprint string
	// Confidence is the pattern's confidence at lookup time.
	Confidence float64
	// Similarity is the hybrid retrieval score of the matched phrasing.
	Similarity float64
}

// pattern is a Record plus its in-memory retrieval state.
type pattern struct {
	rec  Record
	vecs []embed.Vector // parallel to rec.Phrasings
	seq  int64          // last mutation sequence, for incremental sync
}

// dbIndex is one database's retrieval index: a flat phrasing list with a
// lazily (re)built BM25 side. Embeddings live on the patterns.
type dbIndex struct {
	ids  []string // pattern ID per phrasing entry
	docs []string // phrasing text per entry
	idx  *bm25.Index
	// selfNorm is each doc's BM25 score against itself — the absolute
	// scale lexical scores normalize by, so a weak best match reads as
	// weak instead of being inflated to 1.0 by top-score normalization.
	selfNorm []float64
	dirty    bool
}

// Stats is the memory's counter snapshot.
type Stats struct {
	// Patterns and Phrasings size the memory.
	Patterns  int `json:"patterns"`
	Phrasings int `json:"phrasings"`
	// Lookups, Hits and Misses count serve-path probes; HitRate is
	// Hits/Lookups.
	Lookups int64   `json:"lookups"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// Admitted counts new patterns; Reinforced counts successes recorded
	// against existing ones.
	Admitted   int64 `json:"admitted"`
	Reinforced int64 `json:"reinforced"`
	// Demotions counts confidence drops across the serve threshold — a
	// pattern leaving rotation.
	Demotions int64 `json:"demotions"`
	// Restored counts patterns replayed from the durable store at
	// startup; Injected counts patterns landed by fleet sync.
	Restored int64 `json:"restored,omitempty"`
	Injected int64 `json:"injected,omitempty"`
	// StoreAppends/StoreErrors count write-through persistence outcomes.
	StoreAppends int64 `json:"store_appends,omitempty"`
	StoreErrors  int64 `json:"store_errors,omitempty"`
}

// Memory is the confidence-gated query memory. Construct with New; safe
// for concurrent use.
type Memory struct {
	opts  Options
	model *embed.Model

	mu       sync.Mutex
	patterns map[string]*pattern
	dbs      map[string]*dbIndex
	gen      int64 // sync generation: fresh per construction
	seq      int64 // bumped on every mutation

	stats Stats
}

// New builds a Memory. With Options.Store set, the store's live set is
// replayed into the index (warm restart: the memory a crashed replica
// paid for survives).
func New(opts Options) (*Memory, error) {
	opts.fill()
	m := &Memory{
		opts:     opts,
		model:    embed.NewModel(),
		patterns: make(map[string]*pattern),
		dbs:      make(map[string]*dbIndex),
		gen:      time.Now().UnixNano(),
	}
	if opts.Store != nil {
		var restoreErr error
		opts.Store.Load(func(rec Record) {
			if restoreErr != nil {
				return
			}
			if err := m.applyLocked(rec, false); err != nil {
				restoreErr = err
				return
			}
			m.stats.Restored++
		})
		if restoreErr != nil {
			return nil, fmt.Errorf("qmemory: restoring store: %w", restoreErr)
		}
	}
	return m, nil
}

// Close flushes and closes the durable store, if any.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.opts.Store == nil {
		return nil
	}
	return m.opts.Store.Close()
}

// Lookup finds the best servable pattern for a question: hybrid
// embedding+BM25 match over every stored phrasing of the database,
// gated by similarity floor, literal overlap and pattern confidence.
// Patterns named in exclude are skipped — the serve path passes the
// candidates that already failed verification for this question, so a
// look-alike outscoring the right pattern costs one engine execution
// rather than suppressing the hit.
func (m *Memory) Lookup(db, question string, exclude ...string) (Hit, bool) {
	var excluded map[string]bool
	if len(exclude) > 0 {
		excluded = make(map[string]bool, len(exclude))
		for _, id := range exclude {
			excluded[id] = true
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Lookups++
	di := m.dbs[db]
	if di == nil || len(di.docs) == 0 {
		m.stats.Misses++
		return Hit{}, false
	}
	if di.dirty || di.idx == nil {
		di.idx = bm25.New(di.docs)
		di.selfNorm = make([]float64, len(di.docs))
		for i, doc := range di.docs {
			di.selfNorm[i] = di.idx.Score(doc, i)
		}
		di.dirty = false
	}

	// BM25 side: lexical score for the top-K entries normalized by each
	// doc's self-score, zero elsewhere.
	lex := make(map[int]float64, m.opts.TopK)
	for _, r := range di.idx.TopK(question, m.opts.TopK) {
		if norm := di.selfNorm[r.Index]; norm > 0 {
			s := r.Score / norm
			if s > 1 {
				s = 1
			}
			lex[r.Index] = s
		}
	}

	// Exact-phrasing fast path: a question that IS a recorded successful
	// phrasing of a confident pattern serves that pattern outright —
	// repeat traffic is the common case, and semantic ranking can only
	// add noise on top of an exact prior success.
	for i, doc := range di.docs {
		if doc != question || excluded[di.ids[i]] {
			continue
		}
		p := m.patterns[di.ids[i]]
		if p == nil || p.rec.Confidence < m.opts.ServeThreshold || !literalsCovered(p.rec.SQL, question) {
			continue
		}
		m.stats.Hits++
		return Hit{
			PatternID:   p.rec.ID,
			SQL:         p.rec.SQL,
			Evidence:    p.rec.Evidence,
			Fingerprint: p.rec.Fingerprint,
			Confidence:  p.rec.Confidence,
			Similarity:  1,
		}, true
	}

	// Embedding side: cosine against every phrasing of the db, fused
	// with the lexical score into one hybrid score per pattern (a
	// pattern's best phrasing wins). The scan is bounded by
	// patterns×phrasings, which the phrasing cap keeps small relative to
	// a single pipeline run.
	qv := m.model.Embed(question)
	bestOf := make(map[string]float64)
	for i, id := range di.ids {
		p := m.patterns[id]
		if p == nil || excluded[id] {
			continue
		}
		cos := embed.Cosine(qv, m.vecFor(p, di.docs[i]))
		score := 0.65*cos + 0.35*lex[i]
		if score >= m.opts.MinSimilarity && score > bestOf[id] {
			bestOf[id] = score
		}
	}
	// Candidates ranked by score. Templated workloads make near-ties
	// common — a differently-parameterized question phrased the same way
	// often outscores the right pattern — so the serve decision walks the
	// ranking and takes the FIRST candidate that clears both the
	// confidence and the literal-overlap gate, not just the argmax. The
	// literal gate is what tells the look-alikes apart.
	type cand struct {
		id    string
		score float64
	}
	ranked := make([]cand, 0, len(bestOf))
	for id, s := range bestOf {
		ranked = append(ranked, cand{id, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	if len(ranked) > m.opts.TopK {
		ranked = ranked[:m.opts.TopK]
	}
	for _, c := range ranked {
		p := m.patterns[c.id]
		if p.rec.Confidence < m.opts.ServeThreshold || !literalsCovered(p.rec.SQL, question) {
			continue
		}
		m.stats.Hits++
		return Hit{
			PatternID:   p.rec.ID,
			SQL:         p.rec.SQL,
			Evidence:    p.rec.Evidence,
			Fingerprint: p.rec.Fingerprint,
			Confidence:  p.rec.Confidence,
			Similarity:  c.score,
		}, true
	}
	m.stats.Misses++
	return Hit{}, false
}

// vecFor returns the embedding of one of p's phrasings, computing and
// caching it on first use (restored/injected patterns arrive without
// vectors).
func (m *Memory) vecFor(p *pattern, phrasing string) embed.Vector {
	for i, ph := range p.rec.Phrasings {
		if ph == phrasing {
			var zero embed.Vector
			if p.vecs[i] == zero {
				p.vecs[i] = m.model.Embed(ph)
			}
			return p.vecs[i]
		}
	}
	return m.model.Embed(phrasing)
}

// Admit records a verified-correct serving outcome: a new pattern (at
// InitialConfidence) or a success + new phrasing on an existing one.
// Callers must only admit judge-verified generations — admission is the
// memory's accuracy floor.
func (m *Memory) Admit(db, question, evidence, sql, fingerprint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := PatternID(db, sql)
	if p, ok := m.patterns[id]; ok {
		p.rec.Successes++
		p.rec.Confidence += m.opts.SuccessWeight * (1 - p.rec.Confidence)
		// The data may have legitimately changed since admission (bulk
		// load, compaction): re-admission re-pins the fingerprint.
		p.rec.Fingerprint = fingerprint
		if evidence != "" {
			p.rec.Evidence = evidence
		}
		m.addPhrasingLocked(p, question)
		m.touchLocked(p)
		m.stats.Reinforced++
		return
	}
	rec := Record{
		ID: id, DB: db, SQL: sql,
		Evidence:    evidence,
		Fingerprint: fingerprint,
		Confidence:  m.opts.InitialConfidence,
		Successes:   1,
		Phrasings:   []string{question},
	}
	p := &pattern{rec: rec, vecs: []embed.Vector{m.model.Embed(question)}}
	m.patterns[id] = p
	m.indexPhrasingLocked(db, id, question)
	m.touchLocked(p)
	m.stats.Admitted++
}

// Success records a verified memory hit: confidence rises and the
// serving phrasing (a fresh paraphrase, usually) joins the pattern's
// retrieval documents.
func (m *Memory) Success(patternID, question string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.patterns[patternID]
	if !ok {
		return
	}
	p.rec.Successes++
	p.rec.Confidence += m.opts.SuccessWeight * (1 - p.rec.Confidence)
	m.addPhrasingLocked(p, question)
	m.touchLocked(p)
	m.stats.Reinforced++
}

// Failure records a failed hit verification (parse/execute error,
// fingerprint mismatch, or judge rejection): confidence decays, and a
// pattern crossing below the serve threshold counts as a demotion —
// it stops being served until re-earned.
func (m *Memory) Failure(patternID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.patterns[patternID]
	if !ok {
		return
	}
	was := p.rec.Confidence
	p.rec.Failures++
	p.rec.Confidence *= m.opts.FailureDecay
	if was >= m.opts.ServeThreshold && p.rec.Confidence < m.opts.ServeThreshold {
		m.stats.Demotions++
	}
	m.touchLocked(p)
}

// Stats snapshots the memory's counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.Patterns = len(m.patterns)
	for _, di := range m.dbs {
		s.Phrasings += len(di.docs)
	}
	if s.Lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Lookups)
	}
	return s
}

// Patterns returns a copy of every record, sorted by ID (tests and the
// sync reader use it).
func (m *Memory) Patterns() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.patterns))
	for _, p := range m.patterns {
		out = append(out, cloneRecord(p.rec))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// touchLocked stamps a mutated pattern with the next sequence number and
// persists it write-through.
func (m *Memory) touchLocked(p *pattern) {
	m.seq++
	p.seq = m.seq
	if m.opts.Store != nil {
		if err := m.opts.Store.Append(cloneRecord(p.rec)); err != nil {
			m.stats.StoreErrors++
		} else {
			m.stats.StoreAppends++
		}
	}
}

// addPhrasingLocked appends a phrasing to a pattern (dedup, bounded) and
// indexes it for retrieval.
func (m *Memory) addPhrasingLocked(p *pattern, question string) {
	if question == "" || len(p.rec.Phrasings) >= m.opts.MaxPhrasings {
		return
	}
	for _, ph := range p.rec.Phrasings {
		if ph == question {
			return
		}
	}
	p.rec.Phrasings = append(p.rec.Phrasings, question)
	p.vecs = append(p.vecs, m.model.Embed(question))
	m.indexPhrasingLocked(p.rec.DB, p.rec.ID, question)
}

// indexPhrasingLocked adds one retrieval document to the db's index.
func (m *Memory) indexPhrasingLocked(db, id, phrasing string) {
	di := m.dbs[db]
	if di == nil {
		di = &dbIndex{}
		m.dbs[db] = di
	}
	di.ids = append(di.ids, id)
	di.docs = append(di.docs, phrasing)
	di.dirty = true
}

// applyLocked installs a full record (restore and sync paths), replacing
// any existing version and reindexing its phrasings. persist=true also
// writes it through to the store.
func (m *Memory) applyLocked(rec Record, persist bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applyHeld(rec, persist)
}

// applyHeld is applyLocked with m.mu already held.
func (m *Memory) applyHeld(rec Record, persist bool) error {
	if rec.ID == "" || rec.DB == "" || rec.SQL == "" {
		return fmt.Errorf("qmemory: record missing id/db/sql")
	}
	old := m.patterns[rec.ID]
	rec = cloneRecord(rec)
	p := &pattern{rec: rec, vecs: make([]embed.Vector, len(rec.Phrasings))}
	m.patterns[rec.ID] = p
	// Reindex: drop the old entries for this pattern, add the new set.
	// Rebuilding the flat lists is O(phrasings of the db), fine at the
	// mutation rates sync and restore run at.
	di := m.dbs[rec.DB]
	if old != nil && di != nil {
		ids, docs := di.ids[:0], di.docs[:0]
		for i, id := range di.ids {
			if id != rec.ID {
				ids = append(ids, id)
				docs = append(docs, di.docs[i])
			}
		}
		di.ids, di.docs = ids, docs
	}
	for _, ph := range rec.Phrasings {
		m.indexPhrasingLocked(rec.DB, rec.ID, ph)
	}
	if di = m.dbs[rec.DB]; di != nil {
		di.dirty = true
	}
	m.seq++
	p.seq = m.seq
	if persist && m.opts.Store != nil {
		if err := m.opts.Store.Append(cloneRecord(p.rec)); err != nil {
			m.stats.StoreErrors++
		} else {
			m.stats.StoreAppends++
		}
	}
	return nil
}

func cloneRecord(rec Record) Record {
	rec.Phrasings = append([]string(nil), rec.Phrasings...)
	return rec
}

// literalsCovered is the literal-overlap safety gate: every literal in
// the stored SQL (quoted strings and bare numbers) must appear in the
// incoming question. A paraphrase of the same intent carries the same
// entities; a different-entity question that merely *sounds* similar
// does not, and must regenerate instead of being served someone else's
// constants.
func literalsCovered(sql, question string) bool {
	q := strings.ToLower(question)
	for _, lit := range sqlLiterals(sql) {
		if !strings.Contains(q, strings.ToLower(lit)) {
			return false
		}
	}
	return true
}

// sqlLiterals extracts quoted string literals and standalone numeric
// literals from a SQL text.
func sqlLiterals(sql string) []string {
	var out []string
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		switch {
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(sql[j])
				j++
			}
			if b.Len() > 0 {
				out = append(out, b.String())
			}
			i = j
		case c >= '0' && c <= '9':
			// A number is standalone when not part of an identifier.
			if i > 0 && (isIdentChar(sql[i-1]) || sql[i-1] == '.') {
				for i < len(sql) && isIdentChar(sql[i]) {
					i++
				}
				continue
			}
			j := i
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			out = append(out, sql[i:j])
			i = j - 1
		}
	}
	return out
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
