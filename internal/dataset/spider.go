package dataset

import (
	"fmt"
	"strings"

	"repro/internal/schema"
)

// BuildSpider generates the synthetic Spider corpus: four cross-domain
// databases with *no description files* and questions that ship no
// evidence — the Fig. 1a setting. Values are cleaner than BIRD's (fewer
// cryptic codes), so knowledge atoms are fewer and more guessable, which
// is why the paper's Spider gains (Table V) are smaller than its BIRD
// gains. SEED's Spider pipeline first generates description files
// (§IV-E3); the corpus intentionally leaves Docs empty so that path is
// exercised.
func BuildSpider(seed uint64) *Corpus {
	c := &Corpus{Name: "spider", DBs: make(map[string]*schema.DB)}
	type buildFunc func(seed uint64) (*schema.DB, []Example, []Example, []Example)
	builders := []buildFunc{
		buildConcertSinger,
		buildPets,
		buildWorld,
		buildEmployeeHire,
	}
	for i, build := range builders {
		db, train, dev, test := build(seed + uint64(i)*1000)
		c.DBs[db.Name] = db
		c.Train = append(c.Train, train...)
		c.Dev = append(c.Dev, dev...)
		c.Test = append(c.Test, test...)
	}
	// Spider provides no evidence with questions.
	for i := range c.Dev {
		c.Dev[i].Evidence = ""
	}
	for i := range c.Test {
		c.Test[i].Evidence = ""
	}
	return c
}

func buildConcertSinger(seed uint64) (*schema.DB, []Example, []Example, []Example) {
	b := newBuilder("concert_singer", seed)
	b.exec(`CREATE TABLE stadium (
		stadium_id INTEGER PRIMARY KEY,
		name TEXT,
		location TEXT,
		capacity INTEGER
	)`)
	b.exec(`CREATE TABLE singer (
		singer_id INTEGER PRIMARY KEY,
		name TEXT,
		country TEXT,
		age INTEGER
	)`)
	b.exec(`CREATE TABLE concert (
		concert_id INTEGER PRIMARY KEY,
		concert_name TEXT,
		theme TEXT,
		stadium_id INTEGER,
		year INTEGER,
		FOREIGN KEY (stadium_id) REFERENCES stadium(stadium_id)
	)`)
	b.exec(`CREATE TABLE singer_in_concert (
		concert_id INTEGER,
		singer_id INTEGER,
		FOREIGN KEY (concert_id) REFERENCES concert(concert_id),
		FOREIGN KEY (singer_id) REFERENCES singer(singer_id)
	)`)

	locations := []string{"East Fife", "Ayr", "Stirling", "Glasgow", "Peterhead"}
	for i := 1; i <= 20; i++ {
		b.execf("INSERT INTO stadium VALUES (%d, 'Stadium %02d', '%s', %d)",
			i, i, locations[b.rng.Intn(len(locations))], 1000+b.rng.Intn(50000))
	}
	countries := []string{"France", "United States", "Netherlands", "Japan", "Brazil"}
	for i := 1; i <= 30; i++ {
		b.execf("INSERT INTO singer VALUES (%d, 'Singer %02d', '%s', %d)",
			i, i, countries[b.rng.Intn(len(countries))], 20+b.rng.Intn(40))
	}
	themes := []string{"Free choice", "Bleeding Love", "Wide Awake", "Happy Tonight"}
	for i := 1; i <= 40; i++ {
		b.execf("INSERT INTO concert VALUES (%d, 'Concert %02d', '%s', %d, %d)",
			i, i, themes[b.rng.Intn(len(themes))], 1+b.rng.Intn(20), 2012+b.rng.Intn(4))
	}
	for i := 1; i <= 40; i++ {
		n := 1 + b.rng.Intn(3)
		for j := 0; j < n; j++ {
			b.execf("INSERT INTO singer_in_concert VALUES (%d, %d)", i, 1+b.rng.Intn(30))
		}
	}

	for _, ctry := range countries {
		b.add(
			fmt.Sprintf("How many singers are from %s?", ctry),
			"SELECT COUNT(*) FROM singer WHERE country = '"+ctry+"'",
		)
		b.add(
			fmt.Sprintf("What is the average age of singers from %s?", ctry),
			"SELECT AVG(age) FROM singer WHERE country = '"+ctry+"'",
		)
	}
	for _, y := range []int{2012, 2013, 2014, 2015} {
		b.add(
			fmt.Sprintf("How many concerts were held in %d?", y),
			fmt.Sprintf("SELECT COUNT(*) FROM concert WHERE year = %d", y),
		)
		b.add(
			fmt.Sprintf("Show the stadium names that hosted a concert in %d.", y),
			fmt.Sprintf("SELECT DISTINCT stadium.name FROM concert JOIN stadium ON {{0}} WHERE concert.year = %d ORDER BY stadium.name", y),
			joinAtom("concert", "stadium_id", "stadium", "stadium_id"),
		)
	}
	for _, cap := range []int{10000, 20000, 30000} {
		b.add(
			fmt.Sprintf("How many stadiums have a capacity over %d?", cap),
			fmt.Sprintf("SELECT COUNT(*) FROM stadium WHERE capacity > %d", cap),
		)
	}
	for _, loc := range locations {
		b.add(
			fmt.Sprintf("List the stadium names located in %s.", loc),
			"SELECT name FROM stadium WHERE {{0}} = '"+loc+"' ORDER BY name",
			columnAtom(loc, "stadium", "location", "name"),
		)
	}
	b.add(
		"Which stadium hosted the most concerts?",
		"SELECT stadium.name FROM concert JOIN stadium ON {{0}} GROUP BY stadium.name ORDER BY COUNT(*) DESC, stadium.name LIMIT 1",
		joinAtom("concert", "stadium_id", "stadium", "stadium_id"),
	)
	for _, th := range themes[:2] {
		b.add(
			fmt.Sprintf("How many singers performed in concerts with the theme %q?", th),
			"SELECT COUNT(DISTINCT singer_in_concert.singer_id) FROM singer_in_concert JOIN concert ON {{1}} WHERE concert.theme = {{0}}",
			synonymAtom(th, "concert", "theme", th, firstWord(th)),
			joinAtom("singer_in_concert", "concert_id", "concert", "concert_id"),
		)
	}

	train, dev, test := b.split3()
	return b.db, train, dev, test
}

func buildPets(seed uint64) (*schema.DB, []Example, []Example, []Example) {
	b := newBuilder("pets_1", seed)
	b.exec(`CREATE TABLE student (
		stuid INTEGER PRIMARY KEY,
		lname TEXT,
		fname TEXT,
		age INTEGER,
		sex TEXT,
		major INTEGER,
		city_code TEXT
	)`)
	b.exec(`CREATE TABLE pets (
		petid INTEGER PRIMARY KEY,
		pettype TEXT,
		pet_age INTEGER,
		weight REAL
	)`)
	b.exec(`CREATE TABLE has_pet (
		stuid INTEGER,
		petid INTEGER,
		FOREIGN KEY (stuid) REFERENCES student(stuid),
		FOREIGN KEY (petid) REFERENCES pets(petid)
	)`)

	cities := []string{"BAL", "WAS", "NYC", "PHL"}
	for i := 1; i <= 40; i++ {
		sex := "M"
		if b.rng.Chance(0.5) {
			sex = "F"
		}
		b.execf("INSERT INTO student VALUES (%d, 'Last%02d', 'First%02d', %d, '%s', %d, '%s')",
			i, i, i, 17+b.rng.Intn(8), sex, 100+b.rng.Intn(5), cities[b.rng.Intn(4)])
	}
	petTypes := []string{"dog", "cat", "bird", "hamster"}
	for i := 1; i <= 35; i++ {
		b.execf("INSERT INTO pets VALUES (%d, '%s', %d, %0.1f)",
			i, petTypes[b.rng.Intn(4)], 1+b.rng.Intn(12), 1+b.rng.Float64()*30)
	}
	for i := 1; i <= 35; i++ {
		b.execf("INSERT INTO has_pet VALUES (%d, %d)", 1+b.rng.Intn(40), i)
	}

	for _, pt := range petTypes {
		caps := strings.ToUpper(pt[:1]) + pt[1:]
		b.add(
			fmt.Sprintf("How many students have a %s?", pt),
			"SELECT COUNT(DISTINCT has_pet.stuid) FROM has_pet JOIN pets ON {{1}} WHERE pets.pettype = {{0}}",
			synonymAtom(pt, "pets", "pettype", pt, caps),
			joinAtom("has_pet", "petid", "pets", "petid"),
		)
		b.add(
			fmt.Sprintf("What is the average weight of each %s?", pt),
			"SELECT AVG(weight) FROM pets WHERE pettype = {{0}}",
			synonymAtom(pt, "pets", "pettype", pt, caps),
		)
	}
	for _, sx := range []struct{ term, value string }{{"female students", "F"}, {"male students", "M"}} {
		b.add(
			fmt.Sprintf("How many %s own pets?", sx.term),
			"SELECT COUNT(DISTINCT student.stuid) FROM student JOIN has_pet ON {{1}} WHERE student.sex = {{0}}",
			synonymAtom(sx.term, "student", "sex", sx.value, firstWord(sx.term)),
			joinAtom("has_pet", "stuid", "student", "stuid"),
		)
	}
	for _, a := range []int{18, 20, 22} {
		b.add(
			fmt.Sprintf("How many students are older than %d?", a),
			fmt.Sprintf("SELECT COUNT(*) FROM student WHERE age > %d", a),
		)
	}
	for _, city := range cities {
		b.add(
			fmt.Sprintf("List the last names of students from city code %s.", city),
			"SELECT lname FROM student WHERE city_code = '"+city+"' ORDER BY lname",
		)
	}
	b.add(
		"What is the weight of the heaviest pet?",
		"SELECT MAX(weight) FROM pets",
	)
	b.add(
		"Which pet type is most common?",
		"SELECT pettype FROM pets GROUP BY pettype ORDER BY COUNT(*) DESC, pettype LIMIT 1",
	)

	train, dev, test := b.split3()
	return b.db, train, dev, test
}

func buildWorld(seed uint64) (*schema.DB, []Example, []Example, []Example) {
	b := newBuilder("world_1", seed)
	b.exec(`CREATE TABLE country (
		code TEXT PRIMARY KEY,
		name TEXT,
		continent TEXT,
		region TEXT,
		population INTEGER,
		gnp REAL
	)`)
	b.exec(`CREATE TABLE city (
		id INTEGER PRIMARY KEY,
		name TEXT,
		countrycode TEXT,
		district TEXT,
		population INTEGER,
		FOREIGN KEY (countrycode) REFERENCES country(code)
	)`)
	b.exec(`CREATE TABLE countrylanguage (
		countrycode TEXT,
		language TEXT,
		isofficial TEXT,
		percentage REAL,
		FOREIGN KEY (countrycode) REFERENCES country(code)
	)`)

	countries := []struct {
		code, name, continent, region string
	}{
		{"FRA", "France", "Europe", "Western Europe"},
		{"USA", "United States", "North America", "North America"},
		{"JPN", "Japan", "Asia", "Eastern Asia"},
		{"BRA", "Brazil", "South America", "South America"},
		{"NLD", "Netherlands", "Europe", "Western Europe"},
		{"KEN", "Kenya", "Africa", "Eastern Africa"},
		{"IND", "India", "Asia", "Southern Asia"},
		{"AUS", "Australia", "Oceania", "Australia and New Zealand"},
	}
	for _, c := range countries {
		b.execf("INSERT INTO country VALUES ('%s', '%s', '%s', '%s', %d, %0.1f)",
			c.code, c.name, c.continent, c.region,
			1000000+b.rng.Intn(200000000), 1000+b.rng.Float64()*100000)
	}
	for i := 1; i <= 60; i++ {
		c := countries[b.rng.Intn(len(countries))]
		b.execf("INSERT INTO city VALUES (%d, 'City %02d', '%s', 'District %d', %d)",
			i, i, c.code, 1+b.rng.Intn(9), 10000+b.rng.Intn(9000000))
	}
	langs := []string{"English", "French", "Japanese", "Portuguese", "Dutch", "Swahili", "Hindi"}
	for _, c := range countries {
		n := 1 + b.rng.Intn(3)
		for j := 0; j < n; j++ {
			official := "F"
			if j == 0 {
				official = "T"
			}
			b.execf("INSERT INTO countrylanguage VALUES ('%s', '%s', '%s', %0.1f)",
				c.code, langs[b.rng.Intn(len(langs))], official, b.rng.Float64()*100)
		}
	}

	for _, cont := range []string{"Europe", "Asia", "Africa", "North America"} {
		b.add(
			fmt.Sprintf("How many countries are in %s?", cont),
			"SELECT COUNT(*) FROM country WHERE continent = '"+cont+"'",
		)
		b.add(
			fmt.Sprintf("What is the total population of countries in %s?", cont),
			"SELECT SUM(population) FROM country WHERE continent = '"+cont+"'",
		)
	}
	for _, c := range countries[:5] {
		b.add(
			fmt.Sprintf("How many cities does %s have?", c.name),
			"SELECT COUNT(*) FROM city JOIN country ON {{1}} WHERE country.name = {{0}}",
			synonymAtom(c.name, "country", "name", c.name, c.code),
			joinAtom("city", "countrycode", "country", "code"),
		)
	}
	for _, lg := range langs[:4] {
		b.add(
			fmt.Sprintf("How many countries speak %s as an official language?", lg),
			"SELECT COUNT(*) FROM countrylanguage WHERE language = '"+lg+"' AND isofficial = {{0}}",
			valueMapAtom("official language", "countrylanguage", "isofficial", "T", "official"),
		)
	}
	for _, p := range []int{1000000, 5000000} {
		b.add(
			fmt.Sprintf("List the city names with a population over %d.", p),
			fmt.Sprintf("SELECT name FROM city WHERE population > %d ORDER BY name", p),
		)
	}
	b.add(
		"Which country has the largest population?",
		"SELECT name FROM country ORDER BY population DESC LIMIT 1",
	)
	b.add(
		"What is the average GNP of European countries?",
		"SELECT AVG(gnp) FROM country WHERE continent = 'Europe'",
	)

	train, dev, test := b.split3()
	return b.db, train, dev, test
}

func buildEmployeeHire(seed uint64) (*schema.DB, []Example, []Example, []Example) {
	b := newBuilder("employee_hire_evaluation", seed)
	b.exec(`CREATE TABLE employee (
		employee_id INTEGER PRIMARY KEY,
		name TEXT,
		age INTEGER,
		city TEXT
	)`)
	b.exec(`CREATE TABLE shop (
		shop_id INTEGER PRIMARY KEY,
		name TEXT,
		location TEXT,
		number_products INTEGER
	)`)
	b.exec(`CREATE TABLE hiring (
		shop_id INTEGER,
		employee_id INTEGER,
		start_from INTEGER,
		is_full_time TEXT,
		FOREIGN KEY (shop_id) REFERENCES shop(shop_id),
		FOREIGN KEY (employee_id) REFERENCES employee(employee_id)
	)`)
	b.exec(`CREATE TABLE evaluation (
		employee_id INTEGER,
		year_awarded INTEGER,
		bonus REAL,
		FOREIGN KEY (employee_id) REFERENCES employee(employee_id)
	)`)

	cities := []string{"Leeds", "York", "Bristol", "Derby"}
	for i := 1; i <= 30; i++ {
		b.execf("INSERT INTO employee VALUES (%d, 'Employee %02d', %d, '%s')",
			i, i, 22+b.rng.Intn(40), cities[b.rng.Intn(4)])
	}
	for i := 1; i <= 12; i++ {
		b.execf("INSERT INTO shop VALUES (%d, 'Shop %02d', '%s', %d)",
			i, i, cities[b.rng.Intn(4)], 50+b.rng.Intn(300))
	}
	for i := 1; i <= 30; i++ {
		ft := "T"
		if b.rng.Chance(0.3) {
			ft = "F"
		}
		b.execf("INSERT INTO hiring VALUES (%d, %d, %d, '%s')",
			1+b.rng.Intn(12), i, 2005+b.rng.Intn(12), ft)
	}
	for i := 1; i <= 30; i++ {
		if b.rng.Chance(0.6) {
			b.execf("INSERT INTO evaluation VALUES (%d, %d, %0.1f)",
				i, 2010+b.rng.Intn(8), 500+b.rng.Float64()*4500)
		}
	}

	for _, city := range cities {
		b.add(
			fmt.Sprintf("How many employees live in %s?", city),
			"SELECT COUNT(*) FROM employee WHERE city = '"+city+"'",
		)
		b.add(
			fmt.Sprintf("How many shops are located in %s?", city),
			"SELECT COUNT(*) FROM shop WHERE {{0}} = '"+city+"'",
			columnAtom(city, "shop", "location", "name"),
		)
	}
	b.add(
		"How many employees work full time?",
		"SELECT COUNT(*) FROM hiring WHERE is_full_time = {{0}}",
		valueMapAtom("full time", "hiring", "is_full_time", "T", "full"),
	)
	b.add(
		"How many employees work part time?",
		"SELECT COUNT(*) FROM hiring WHERE is_full_time = {{0}}",
		valueMapAtom("part time", "hiring", "is_full_time", "F", "part"),
	)
	for _, y := range []int{2010, 2012, 2014} {
		b.add(
			fmt.Sprintf("How many evaluations were awarded after %d?", y),
			fmt.Sprintf("SELECT COUNT(*) FROM evaluation WHERE year_awarded > %d", y),
		)
	}
	for _, n := range []int{100, 200} {
		b.add(
			fmt.Sprintf("List the shop names carrying more than %d products.", n),
			fmt.Sprintf("SELECT name FROM shop WHERE number_products > %d ORDER BY name", n),
		)
	}
	b.add(
		"Which shop hired the most employees?",
		"SELECT shop.name FROM hiring JOIN shop ON {{0}} GROUP BY shop.name ORDER BY COUNT(*) DESC, shop.name LIMIT 1",
		joinAtom("hiring", "shop_id", "shop", "shop_id"),
	)
	b.add(
		"What is the highest bonus ever awarded?",
		"SELECT MAX(bonus) FROM evaluation",
	)

	train, dev, test := b.split3()
	return b.db, train, dev, test
}
