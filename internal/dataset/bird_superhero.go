package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildSuperhero constructs the synthetic counterpart of BIRD's
// `superhero` database: capitalised colour values (the Table I
// case-sensitivity example), the full_name vs superhero_name column
// confusion, and id-table joins for eye colour and publisher.
func buildSuperhero(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("superhero", seed)

	b.exec(`CREATE TABLE colour (
		id INTEGER PRIMARY KEY,
		colour TEXT
	)`)
	b.exec(`CREATE TABLE publisher (
		id INTEGER PRIMARY KEY,
		publisher_name TEXT
	)`)
	b.exec(`CREATE TABLE gender (
		id INTEGER PRIMARY KEY,
		gender TEXT
	)`)
	b.exec(`CREATE TABLE superhero (
		id INTEGER PRIMARY KEY,
		superhero_name TEXT,
		full_name TEXT,
		eye_colour_id INTEGER,
		hair_colour_id INTEGER,
		publisher_id INTEGER,
		gender_id INTEGER,
		height_cm INTEGER,
		weight_kg INTEGER,
		FOREIGN KEY (eye_colour_id) REFERENCES colour(id),
		FOREIGN KEY (hair_colour_id) REFERENCES colour(id),
		FOREIGN KEY (publisher_id) REFERENCES publisher(id),
		FOREIGN KEY (gender_id) REFERENCES gender(id)
	)`)

	colours := []string{"Blue", "Brown", "Green", "Black", "Red", "Yellow"}
	for i, c := range colours {
		b.execf("INSERT INTO colour VALUES (%d, '%s')", i+1, c)
	}
	publishers := []string{"Marvel Comics", "DC Comics", "Dark Horse Comics", "Image Comics"}
	for i, p := range publishers {
		b.execf("INSERT INTO publisher VALUES (%d, '%s')", i+1, p)
	}
	b.exec("INSERT INTO gender VALUES (1, 'Male'), (2, 'Female')")
	firsts := []string{"Peter", "Diana", "Bruce", "Clark", "Natasha", "Tony", "Steve", "Wanda", "Carol", "Hal"}
	lasts := []string{"Parker", "Prince", "Wayne", "Kent", "Romanoff", "Stark", "Rogers", "Maximoff", "Danvers", "Jordan"}
	for i := 1; i <= 140; i++ {
		b.execf("INSERT INTO superhero VALUES (%d, 'Hero%03d', '%s %s', %d, %d, %d, %d, %d, %d)",
			i, i,
			firsts[b.rng.Intn(len(firsts))], lasts[b.rng.Intn(len(lasts))],
			1+b.rng.Intn(len(colours)), 1+b.rng.Intn(len(colours)),
			1+b.rng.Intn(len(publishers)), 1+b.rng.Intn(2),
			150+b.rng.Intn(60), 50+b.rng.Intn(70))
	}

	b.doc(schema.TableDoc{
		Table: "superhero", Description: "superheroes with physical attributes and publisher links",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique superhero identifier"},
			{Column: "superhero_name", FullName: "superhero name", Description: "the hero's alias"},
			{Column: "full_name", FullName: "full name", Description: "the hero's civilian full name"},
			{Column: "eye_colour_id", FullName: "eye colour id", Description: "eye colour, id into the colour table"},
			{Column: "hair_colour_id", FullName: "hair colour id", Description: "hair colour, id into the colour table"},
			{Column: "publisher_id", FullName: "publisher id", Description: "publisher, id into the publisher table"},
			{Column: "gender_id", FullName: "gender id", Description: "gender, id into the gender table"},
			{Column: "height_cm", FullName: "height in cm", Description: "height in centimetres"},
			{Column: "weight_kg", FullName: "weight in kg", Description: "weight in kilograms"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "colour", Description: "colour lookup table",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique colour identifier"},
			{Column: "colour", FullName: "colour", Description: "colour name, capitalised (Blue, Brown, ...)"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "publisher", Description: "publisher lookup table",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique publisher identifier"},
			{Column: "publisher_name", FullName: "publisher name", Description: "full publisher name"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "gender", Description: "gender lookup table",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique gender identifier"},
			{Column: "gender", FullName: "gender", Description: "gender value, capitalised (Male, Female)"},
		},
	})

	// --- Question templates ---

	// The Table I example shape: full names of heroes by eye colour.
	for _, c := range colours {
		lower := firstWord(c)
		b.add(
			fmt.Sprintf("List down at least five full names of superheroes with %s eyes.", lower),
			"SELECT {{0}} FROM superhero JOIN colour ON {{2}} WHERE colour.colour = {{1}} ORDER BY superhero.id LIMIT 5",
			columnAtom("full names", "superhero", "superhero.full_name", "superhero.superhero_name"),
			synonymAtom(lower+" eyes", "colour", "colour", c, lowerFirst(c)),
			joinAtom("superhero", "eye_colour_id", "colour", "id"),
		)
		b.add(
			fmt.Sprintf("How many superheroes have %s hair?", lower),
			"SELECT COUNT(*) FROM superhero JOIN colour ON {{1}} WHERE colour.colour = {{0}}",
			synonymAtom(lower+" hair", "colour", "colour", c, lowerFirst(c)),
			joinAtom("superhero", "hair_colour_id", "colour", "id"),
		)
	}

	// Publisher value binding: the question says "Marvel", the value is
	// 'Marvel Comics' — fuzzy value retrieval closes the gap.
	for _, p := range []struct{ term, value string }{
		{"Marvel", "Marvel Comics"}, {"DC", "DC Comics"},
		{"Dark Horse", "Dark Horse Comics"}, {"Image", "Image Comics"},
	} {
		b.add(
			fmt.Sprintf("How many superheroes were published by %s?", p.term),
			"SELECT COUNT(*) FROM superhero JOIN publisher ON {{1}} WHERE publisher.publisher_name = {{0}}",
			synonymAtom(p.term, "publisher", "publisher_name", p.value, p.term),
			joinAtom("superhero", "publisher_id", "publisher", "id"),
		)
		b.add(
			fmt.Sprintf("List the superhero names published by %s, ordered by name.", p.term),
			"SELECT superhero.superhero_name FROM superhero JOIN publisher ON {{1}} WHERE publisher.publisher_name = {{0}} ORDER BY superhero.superhero_name",
			synonymAtom(p.term, "publisher", "publisher_name", p.value, p.term),
			joinAtom("superhero", "publisher_id", "publisher", "id"),
		)
	}

	// Gendered counts with capitalised values.
	for _, g := range []struct{ term, value, naive string }{
		{"female superheroes", "Female", "female"},
		{"male superheroes", "Male", "male"},
	} {
		b.add(
			fmt.Sprintf("How many %s are there?", g.term),
			"SELECT COUNT(*) FROM superhero JOIN gender ON {{1}} WHERE gender.gender = {{0}}",
			synonymAtom(g.term, "gender", "gender", g.value, g.naive),
			joinAtom("superhero", "gender_id", "gender", "id"),
		)
		b.add(
			fmt.Sprintf("What is the average height of %s?", g.term),
			"SELECT AVG(superhero.height_cm) FROM superhero JOIN gender ON {{1}} WHERE gender.gender = {{0}}",
			synonymAtom(g.term, "gender", "gender", g.value, g.naive),
			joinAtom("superhero", "gender_id", "gender", "id"),
		)
	}

	// Physical-attribute questions, no knowledge atoms.
	for _, h := range []int{170, 180, 190, 200} {
		b.add(
			fmt.Sprintf("How many superheroes are taller than %d cm?", h),
			fmt.Sprintf("SELECT COUNT(*) FROM superhero WHERE height_cm > %d", h),
		)
	}
	for _, w := range []int{60, 80, 100} {
		b.add(
			fmt.Sprintf("List the superhero names of heroes weighing under %d kg.", w),
			fmt.Sprintf("SELECT superhero_name FROM superhero WHERE weight_kg < %d ORDER BY superhero_name", w),
		)
	}
	b.add(
		"Which publisher has the most superheroes?",
		"SELECT publisher.publisher_name FROM superhero JOIN publisher ON {{0}} GROUP BY publisher.publisher_name ORDER BY COUNT(*) DESC LIMIT 1",
		joinAtom("superhero", "publisher_id", "publisher", "id"),
	)

	// BMI-style formula.
	for _, n := range []int{20, 25, 30} {
		b.add(
			fmt.Sprintf("How many superheroes have a body mass index over %d?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM superhero WHERE {{0}} > %d", n),
			formulaAtom("body mass index",
				"CAST(weight_kg AS REAL) * 10000 / (height_cm * height_cm)",
				"weight_kg / height_cm"),
		)
	}

	train, dev := b.split()
	return b.db, train, dev
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	return string(b)
}
