package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildSchools constructs the synthetic counterpart of BIRD's
// `california_schools` database: the eligible-free-rate formula, magnet/
// charter integer flags, and the county-vs-city column ambiguity behind the
// paper's "Fremont" example (§III-B) and Table VI.
func buildSchools(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("california_schools", seed)

	b.exec(`CREATE TABLE schools (
		CDSCode TEXT PRIMARY KEY,
		School TEXT,
		County TEXT,
		City TEXT,
		Magnet INTEGER,
		Charter INTEGER,
		FundingType TEXT
	)`)
	b.exec(`CREATE TABLE frpm (
		CDSCode TEXT PRIMARY KEY,
		AcademicYear TEXT,
		Enrollment REAL,
		FreeMealCount REAL,
		FRPMCount REAL,
		FOREIGN KEY (CDSCode) REFERENCES schools(CDSCode)
	)`)
	b.exec(`CREATE TABLE satscores (
		cds TEXT PRIMARY KEY,
		NumTstTakr INTEGER,
		AvgScrMath INTEGER,
		AvgScrRead INTEGER,
		NumGE1500 INTEGER,
		FOREIGN KEY (cds) REFERENCES schools(CDSCode)
	)`)

	counties := []string{"Alameda", "Contra Costa", "Los Angeles", "Fresno", "Santa Clara", "San Diego"}
	cities := []string{"Fremont", "Hayward", "Oakland", "Fresno", "Pasadena", "San Jose", "Lakewood", "Chula Vista"}
	fundingTypes := []string{"Directly funded", "Locally funded"}
	for i := 1; i <= 130; i++ {
		cds := fmt.Sprintf("%014d", 1000000+i)
		county := counties[b.rng.Intn(len(counties))]
		city := cities[b.rng.Intn(len(cities))]
		magnet := 0
		if b.rng.Chance(0.3) {
			magnet = 1
		}
		charter := 0
		funding := ""
		if b.rng.Chance(0.4) {
			charter = 1
			funding = fundingTypes[b.rng.Intn(2)]
		}
		b.execf("INSERT INTO schools VALUES ('%s', 'School %03d', '%s', '%s', %d, %d, '%s')",
			cds, i, county, city, magnet, charter, funding)
		enrollment := 200 + b.rng.Intn(2800)
		freeMeal := b.rng.Intn(enrollment)
		b.execf("INSERT INTO frpm VALUES ('%s', '2014-2015', %d, %d, %d)",
			cds, enrollment, freeMeal, freeMeal+b.rng.Intn(enrollment-freeMeal+1))
		takers := 20 + b.rng.Intn(980)
		b.execf("INSERT INTO satscores VALUES ('%s', %d, %d, %d, %d)",
			cds, takers, 350+b.rng.Intn(400), 350+b.rng.Intn(400), b.rng.Intn(takers/2+1))
	}

	b.doc(schema.TableDoc{
		Table: "schools", Description: "directory of California public schools",
		Columns: []schema.ColumnDoc{
			{Column: "CDSCode", FullName: "cds code", Description: "unique county-district-school code"},
			{Column: "School", FullName: "school name", Description: "name of the school"},
			{Column: "County", FullName: "county", Description: "county the school belongs to"},
			{Column: "City", FullName: "city", Description: "city the school is located in"},
			{Column: "Magnet", FullName: "magnet", Description: "whether the school is a magnet school or offers a magnet program",
				ValueMap: map[string]string{"1": "magnet school or offers a magnet program", "0": "not a magnet school"}},
			{Column: "Charter", FullName: "charter", Description: "whether the school is a charter school",
				ValueMap: map[string]string{"1": "charter school", "0": "not a charter school"}},
			{Column: "FundingType", FullName: "funding type", Description: "charter school funding arrangement",
				ValueMap: map[string]string{"Directly funded": "funded directly by the state", "Locally funded": "funded by the local district"}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "frpm", Description: "free and reduced-price meal statistics per school",
		Columns: []schema.ColumnDoc{
			{Column: "CDSCode", FullName: "cds code", Description: "school identifier"},
			{Column: "AcademicYear", FullName: "academic year", Description: "academic year of the record"},
			{Column: "Enrollment", FullName: "enrollment", Description: "K-12 enrollment count"},
			{Column: "FreeMealCount", FullName: "free meal count", Description: "students eligible for free meals",
				Range: "eligible free rate = FreeMealCount / Enrollment"},
			{Column: "FRPMCount", FullName: "free or reduced price meal count", Description: "students eligible for free or reduced-price meals"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "satscores", Description: "SAT score statistics per school",
		Columns: []schema.ColumnDoc{
			{Column: "cds", FullName: "cds code", Description: "school identifier"},
			{Column: "NumTstTakr", FullName: "number of test takers", Description: "number of SAT test takers"},
			{Column: "AvgScrMath", FullName: "average math score", Description: "average SAT math score"},
			{Column: "AvgScrRead", FullName: "average reading score", Description: "average SAT reading score"},
			{Column: "NumGE1500", FullName: "number scoring 1500 or above", Description: "test takers whose total SAT score is 1500 or more",
				Range: "excellence rate = NumGE1500 / NumTstTakr"},
		},
	})

	// --- Question templates ---

	// The Table VI flagship: magnet flag + SAT takers threshold.
	for _, n := range []int{300, 400, 500, 600, 700} {
		b.add(
			fmt.Sprintf("Among schools with SAT test takers of over %d, how many are magnet schools or offer a magnet program?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM schools JOIN satscores ON {{1}} WHERE satscores.NumTstTakr > %d AND schools.Magnet = {{0}}", n),
			flagAtom("magnet schools or offer a magnet program", "schools", "Magnet"),
			joinAtom("satscores", "cds", "schools", "CDSCode"),
		)
		b.add(
			fmt.Sprintf("How many charter schools have more than %d SAT test takers?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM schools JOIN satscores ON {{1}} WHERE satscores.NumTstTakr > %d AND schools.Charter = {{0}}", n),
			flagAtom("charter schools", "schools", "Charter"),
			joinAtom("satscores", "cds", "schools", "CDSCode"),
		)
	}

	// Eligible free rate: the classic BIRD formula.
	for _, county := range counties {
		b.add(
			fmt.Sprintf("What is the highest eligible free rate for K-12 students in schools located in %s county?", county),
			"SELECT MAX({{0}}) FROM frpm JOIN schools ON {{1}} WHERE schools.County = '"+county+"'",
			formulaAtom("eligible free rate", "frpm.FreeMealCount / frpm.Enrollment", "frpm.FreeMealCount"),
			joinAtom("frpm", "CDSCode", "schools", "CDSCode"),
		)
		b.add(
			fmt.Sprintf("How many schools in %s county have an eligible free rate above 0.5?", county),
			"SELECT COUNT(*) FROM frpm JOIN schools ON {{1}} WHERE schools.County = '"+county+"' AND {{0}} > 0.5",
			formulaAtom("eligible free rate", "frpm.FreeMealCount / frpm.Enrollment", "frpm.FreeMealCount"),
			joinAtom("frpm", "CDSCode", "schools", "CDSCode"),
		)
	}

	// Excellence rate formula.
	for _, r := range []string{"0.1", "0.2", "0.3"} {
		b.add(
			fmt.Sprintf("List the cds codes of schools whose SAT excellence rate is over %s.", r),
			"SELECT cds FROM satscores WHERE {{0}} > "+r+" ORDER BY cds",
			formulaAtom("excellence rate", "CAST(NumGE1500 AS REAL) / NumTstTakr", "NumGE1500"),
		)
	}

	// The Fremont ambiguity: city names that read like counties.
	for _, city := range cities {
		b.add(
			fmt.Sprintf("How many schools are there in %s?", city),
			"SELECT COUNT(*) FROM schools WHERE {{0}} = '"+city+"'",
			columnAtom(city, "schools", "City", "County"),
		)
	}
	for _, county := range counties {
		b.add(
			fmt.Sprintf("How many test takers are there at schools in %s county in total?", county),
			"SELECT SUM(satscores.NumTstTakr) FROM satscores JOIN schools ON {{1}} WHERE {{0}} = '"+county+"'",
			columnAtom(county, "schools", "schools.County", "schools.City"),
			joinAtom("satscores", "cds", "schools", "CDSCode"),
		)
	}

	// Charter funding value map.
	for _, ft := range []struct{ term, code string }{
		{"directly funded charter schools", "Directly funded"},
		{"locally funded charter schools", "Locally funded"},
	} {
		b.add(
			fmt.Sprintf("How many %s are there?", ft.term),
			"SELECT COUNT(*) FROM schools WHERE Charter = 1 AND FundingType = {{0}}",
			valueMapAtom(ft.term, "schools", "FundingType", ft.code, firstWord(ft.term)),
		)
		b.add(
			fmt.Sprintf("List the school names of %s, ordered by name.", ft.term),
			"SELECT School FROM schools WHERE Charter = 1 AND FundingType = {{0}} ORDER BY School",
			valueMapAtom(ft.term, "schools", "FundingType", ft.code, firstWord(ft.term)),
		)
	}

	// Plain structural questions with no knowledge atoms: the EX floor.
	for _, n := range []int{500, 520, 540, 560} {
		b.add(
			fmt.Sprintf("How many schools have an average SAT math score above %d?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM satscores WHERE AvgScrMath > %d", n),
		)
	}
	b.add(
		"Which county has the most schools?",
		"SELECT County FROM schools GROUP BY County ORDER BY COUNT(*) DESC LIMIT 1",
	)
	b.add(
		"List the five schools with the highest enrollment.",
		"SELECT schools.School FROM schools JOIN frpm ON {{0}} ORDER BY frpm.Enrollment DESC LIMIT 5",
		joinAtom("frpm", "CDSCode", "schools", "CDSCode"),
	)

	train, dev := b.split()
	return b.db, train, dev
}

// flagAtom builds a value-illustration atom over a 0/1 integer flag column
// ("magnet schools ... means that Magnet = 1"). The naive mistake treats
// the flag as a text value.
func flagAtom(term, table, column string) Atom {
	return Atom{
		Kind:         ValueMap,
		Term:         term,
		Clause:       fmt.Sprintf("%s refers to %s = 1", term, column),
		CorrectFrag:  "1",
		WrongFrag:    "'Yes'",
		Guess:        0.35,
		Table:        table,
		Column:       column,
		Value:        "1",
		DocDerivable: true,
	}
}
