// Package dataset generates the synthetic BIRD-like and Spider-like
// text-to-SQL corpora used by the reproduction. Real BIRD is 33.4 GB of
// databases plus hand-written questions and evidence; this package builds
// databases with the same *information structure* — cryptic coded values,
// description files, domain thresholds, formula conventions — and question
// sets whose gold SQL depends on explicit knowledge atoms, so that evidence
// provision, omission and corruption have mechanically real effects on
// execution accuracy.
package dataset

import (
	"fmt"
	"strings"
)

// AtomKind classifies the knowledge an example's gold SQL depends on,
// following BIRD's four evidence categories (paper §II-A) plus the two
// structural kinds SEED interacts with.
type AtomKind int

// Atom kinds.
const (
	// ValueMap: an NL term denotes a cryptic stored code
	// ("weekly issuance" -> frequency = 'POPLATEK TYDNE'). BIRD calls this
	// value illustration.
	ValueMap AtomKind = iota
	// Synonym: an NL term is a synonym of a stored value
	// ("women" -> gender = 'F').
	Synonym
	// Threshold: a domain range from the description file
	// ("exceeded the normal range" -> HCT >= 52). BIRD calls this domain
	// knowledge.
	Threshold
	// Formula: numeric-reasoning knowledge
	// ("years" -> duration / 12).
	Formula
	// ColumnRef: an ambiguous NL term must be bound to the right column
	// ("Fremont" could be a county, district or city).
	ColumnRef
	// JoinPath: the correct join condition between two tables. BIRD gold
	// evidence does not spell these out; SEED's deepseek variant does,
	// which is the Table VI format difference.
	JoinPath
)

// String returns the BIRD-style category name.
func (k AtomKind) String() string {
	switch k {
	case ValueMap:
		return "value-illustration"
	case Synonym:
		return "synonym"
	case Threshold:
		return "domain"
	case Formula:
		return "numeric-reasoning"
	case ColumnRef:
		return "column-ref"
	case JoinPath:
		return "join-path"
	default:
		return fmt.Sprintf("AtomKind(%d)", int(k))
	}
}

// Atom is one unit of knowledge an example's gold SQL requires. A
// text-to-SQL generator must produce CorrectFrag at the atom's template
// slot; resolving from defective evidence or failing to resolve yields a
// different, executable fragment and therefore (almost always) different
// query results.
type Atom struct {
	Kind AtomKind
	// Term is the natural-language phrase in the question that carries
	// this knowledge requirement.
	Term string
	// Clause is the correct evidence clause, in BIRD's
	// "<term> refers to <frag>" style.
	Clause string
	// CorrectFrag is the SQL fragment the gold query uses at this slot.
	CorrectFrag string
	// WrongFrag is the plausible mistake an unaided model makes
	// (wrong value casing, wrong column, literal term as value, ...).
	WrongFrag string
	// Guess is the probability that a fully capable model resolves this
	// atom correctly with no evidence and no retrieval; weaker models
	// scale it down.
	Guess float64
	// Table/Column/Value locate the knowledge in the database, for
	// retrieval machinery (CHESS IR, CodeS BM25, SEED sampling).
	Table  string
	Column string
	Value  string
	// Table2 names the second endpoint of a join-path atom. Knowing the
	// two joined tables is part of the question structure; the knowledge
	// being tested is which columns join them.
	Table2 string
	// DocDerivable marks atoms whose resolution is written in the
	// description file (value maps, ranges).
	DocDerivable bool
	// ValueDerivable marks atoms that sampling database values can
	// resolve (the value literally appears in the question, or fuzzy
	// string match closes the gap).
	ValueDerivable bool
}

// Slot returns the placeholder token for atom index i in a SQL template.
func Slot(i int) string { return fmt.Sprintf("{{%d}}", i) }

// RenderSQL substitutes fragment i for slot i in template. Missing slots
// are an error so templates and atom lists cannot drift apart silently.
func RenderSQL(template string, frags []string) (string, error) {
	out := template
	for i, f := range frags {
		slot := Slot(i)
		if !strings.Contains(out, slot) {
			return "", fmt.Errorf("dataset: template missing slot %s: %q", slot, template)
		}
		out = strings.ReplaceAll(out, slot, f)
	}
	if i := strings.Index(out, "{{"); i >= 0 {
		return "", fmt.Errorf("dataset: unfilled slot remains in %q", out)
	}
	return out, nil
}

// CorrectFrags returns the gold fragment for each atom in order.
func CorrectFrags(atoms []Atom) []string {
	out := make([]string, len(atoms))
	for i, a := range atoms {
		out[i] = a.CorrectFrag
	}
	return out
}

// ComposeEvidence joins the evidence clauses of the atoms that BIRD-style
// gold evidence would contain (everything except join paths and plain
// column bindings, which human annotators left implicit).
func ComposeEvidence(atoms []Atom) string {
	var parts []string
	for _, a := range atoms {
		if a.Clause == "" {
			continue
		}
		switch a.Kind {
		case ValueMap, Synonym, Threshold, Formula:
			parts = append(parts, a.Clause)
		}
	}
	return strings.Join(parts, "; ")
}
