package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildStudentClub constructs the synthetic counterpart of BIRD's
// `student_club` database: member positions with capitalised titles,
// event types, and budget categories.
func buildStudentClub(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("student_club", seed)

	b.exec(`CREATE TABLE major (
		major_id INTEGER PRIMARY KEY,
		major_name TEXT,
		department TEXT,
		college TEXT
	)`)
	b.exec(`CREATE TABLE member (
		member_id INTEGER PRIMARY KEY,
		first_name TEXT,
		last_name TEXT,
		position TEXT,
		t_shirt_size TEXT,
		link_to_major INTEGER,
		FOREIGN KEY (link_to_major) REFERENCES major(major_id)
	)`)
	b.exec(`CREATE TABLE event (
		event_id INTEGER PRIMARY KEY,
		event_name TEXT,
		type TEXT,
		event_date TEXT,
		location TEXT,
		status TEXT
	)`)
	b.exec(`CREATE TABLE attendance (
		link_to_event INTEGER,
		link_to_member INTEGER,
		FOREIGN KEY (link_to_event) REFERENCES event(event_id),
		FOREIGN KEY (link_to_member) REFERENCES member(member_id)
	)`)
	b.exec(`CREATE TABLE budget (
		budget_id INTEGER PRIMARY KEY,
		category TEXT,
		spent REAL,
		amount REAL,
		link_to_event INTEGER,
		FOREIGN KEY (link_to_event) REFERENCES event(event_id)
	)`)

	majors := []struct{ name, dept, college string }{
		{"Computer Science", "Engineering", "College of Engineering"},
		{"Business", "Management", "College of Business"},
		{"Biology", "Life Sciences", "College of Science"},
		{"Physics", "Physical Sciences", "College of Science"},
		{"English", "Humanities", "College of Arts"},
	}
	for i, m := range majors {
		b.execf("INSERT INTO major VALUES (%d, '%s', '%s', '%s')", i+1, m.name, m.dept, m.college)
	}
	positions := []string{"Member", "President", "Vice President", "Treasurer", "Secretary"}
	sizes := []string{"Small", "Medium", "Large", "X-Large"}
	firsts := []string{"Alice", "Ben", "Chloe", "David", "Emma", "Frank", "Grace", "Henry"}
	lasts := []string{"Lopez", "Nguyen", "Smith", "Patel", "Kim", "Brown", "Garcia", "Jones"}
	for i := 1; i <= 110; i++ {
		pos := positions[0]
		if i <= 8 {
			pos = positions[1+b.rng.Intn(4)]
		}
		b.execf("INSERT INTO member VALUES (%d, '%s', '%s', '%s', '%s', %d)",
			i, firsts[b.rng.Intn(len(firsts))], lasts[b.rng.Intn(len(lasts))],
			pos, sizes[b.rng.Intn(4)], 1+b.rng.Intn(len(majors)))
	}
	eventTypes := []string{"Meeting", "Social", "Fundraiser", "Guest Speaker", "Community Service"}
	statuses := []string{"Open", "Closed", "Planning"}
	for e := 1; e <= 50; e++ {
		b.execf("INSERT INTO event VALUES (%d, 'Event %02d', '%s', '%04d-%02d-%02d', 'Hall %d', '%s')",
			e, e, eventTypes[b.rng.Intn(len(eventTypes))],
			2019+b.rng.Intn(2), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			1+b.rng.Intn(5), statuses[b.rng.Intn(3)])
	}
	for e := 1; e <= 50; e++ {
		n := 3 + b.rng.Intn(15)
		for j := 0; j < n; j++ {
			b.execf("INSERT INTO attendance VALUES (%d, %d)", e, 1+b.rng.Intn(110))
		}
	}
	categories := []string{"Food", "Advertisement", "Speaker Gifts", "Club T-Shirts", "Parking"}
	for bg := 1; bg <= 70; bg++ {
		amount := 50 + b.rng.Float64()*450
		b.execf("INSERT INTO budget VALUES (%d, '%s', %0.2f, %0.2f, %d)",
			bg, categories[b.rng.Intn(len(categories))],
			amount*b.rng.Float64(), amount, 1+b.rng.Intn(50))
	}

	b.doc(schema.TableDoc{
		Table: "member", Description: "club members",
		Columns: []schema.ColumnDoc{
			{Column: "member_id", FullName: "member id", Description: "unique member identifier"},
			{Column: "first_name", FullName: "first name", Description: "member first name"},
			{Column: "last_name", FullName: "last name", Description: "member last name"},
			{Column: "position", FullName: "position", Description: "club position, capitalised",
				ValueMap: map[string]string{
					"Member": "regular member", "President": "club president",
					"Vice President": "vice president", "Treasurer": "treasurer",
					"Secretary": "secretary",
				}},
			{Column: "t_shirt_size", FullName: "t-shirt size", Description: "capitalised size name"},
			{Column: "link_to_major", FullName: "major id", Description: "major, id into the major table"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "major", Description: "university majors",
		Columns: []schema.ColumnDoc{
			{Column: "major_id", FullName: "major id", Description: "unique major identifier"},
			{Column: "major_name", FullName: "major name", Description: "name of the major"},
			{Column: "department", FullName: "department", Description: "owning department"},
			{Column: "college", FullName: "college", Description: "owning college"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "event", Description: "club events",
		Columns: []schema.ColumnDoc{
			{Column: "event_id", FullName: "event id", Description: "unique event identifier"},
			{Column: "event_name", FullName: "event name", Description: "name of the event"},
			{Column: "type", FullName: "type", Description: "event category, capitalised"},
			{Column: "event_date", FullName: "event date", Description: "date in YYYY-MM-DD format"},
			{Column: "location", FullName: "location", Description: "venue"},
			{Column: "status", FullName: "status", Description: "event status, capitalised"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "attendance", Description: "event attendance links",
		Columns: []schema.ColumnDoc{
			{Column: "link_to_event", FullName: "event id", Description: "attended event"},
			{Column: "link_to_member", FullName: "member id", Description: "attending member"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "budget", Description: "per-event budget lines",
		Columns: []schema.ColumnDoc{
			{Column: "budget_id", FullName: "budget id", Description: "unique budget-line identifier"},
			{Column: "category", FullName: "category", Description: "spending category, capitalised"},
			{Column: "spent", FullName: "spent", Description: "amount spent so far"},
			{Column: "amount", FullName: "amount", Description: "budgeted amount",
				Range: "remaining budget = amount - spent"},
			{Column: "link_to_event", FullName: "event id", Description: "event the line belongs to"},
		},
	})

	// --- Question templates ---

	for _, p := range []struct{ term, value, naive string }{
		{"the president", "President", "president"},
		{"the vice president", "Vice President", "vice president"},
		{"the treasurer", "Treasurer", "treasurer"},
		{"the secretary", "Secretary", "secretary"},
	} {
		b.add(
			fmt.Sprintf("What is the last name of %s of the club?", p.term),
			"SELECT last_name FROM member WHERE position = {{0}} ORDER BY member_id",
			synonymAtom(p.term, "member", "position", p.value, p.naive),
		)
		b.add(
			fmt.Sprintf("Which major does %s study? Give the major name.", p.term),
			"SELECT major.major_name FROM member JOIN major ON {{1}} WHERE member.position = {{0}} ORDER BY member.member_id",
			synonymAtom(p.term, "member", "position", p.value, p.naive),
			joinAtom("member", "link_to_major", "major", "major_id"),
		)
	}

	for _, et := range []struct{ term, value string }{
		{"guest speaker events", "Guest Speaker"},
		{"community service events", "Community Service"},
		{"fundraisers", "Fundraiser"},
		{"social events", "Social"},
	} {
		b.add(
			fmt.Sprintf("How many %s has the club held?", et.term),
			"SELECT COUNT(*) FROM event WHERE type = {{0}}",
			synonymAtom(et.term, "event", "type", et.value, firstWord(et.term)),
		)
		b.add(
			fmt.Sprintf("How many members attended %s in total?", et.term),
			"SELECT COUNT(*) FROM attendance JOIN event ON {{1}} WHERE event.type = {{0}}",
			synonymAtom(et.term, "event", "type", et.value, firstWord(et.term)),
			joinAtom("attendance", "link_to_event", "event", "event_id"),
		)
	}

	// Remaining-budget formula.
	for _, n := range []int{50, 100, 150} {
		b.add(
			fmt.Sprintf("How many budget lines have more than %d remaining?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM budget WHERE {{0}} > %d", n),
			formulaAtom("remaining budget", "amount - spent", "amount"),
		)
	}

	// Category spend aggregation.
	for _, c := range categories {
		b.add(
			fmt.Sprintf("What is the total amount budgeted for %s?", c),
			"SELECT SUM(amount) FROM budget WHERE {{0}} = '"+c+"'",
			columnAtom(c, "budget", "category", "link_to_event"),
		)
	}

	// Majors by college: plain joins.
	for _, m := range majors {
		b.add(
			fmt.Sprintf("How many members study %s?", m.name),
			"SELECT COUNT(*) FROM member JOIN major ON {{1}} WHERE major.major_name = {{0}}",
			synonymAtom(m.name, "major", "major_name", m.name, firstWord(m.name)),
			joinAtom("member", "link_to_major", "major", "major_id"),
		)
	}

	// Structural no-knowledge questions.
	b.add(
		"Which event had the highest attendance?",
		"SELECT event.event_name FROM event JOIN attendance ON {{0}} GROUP BY event.event_name ORDER BY COUNT(*) DESC, event.event_name LIMIT 1",
		joinAtom("attendance", "link_to_event", "event", "event_id"),
	)
	for _, sz := range sizes {
		b.add(
			fmt.Sprintf("How many members wear a size %s t-shirt?", sz),
			"SELECT COUNT(*) FROM member WHERE t_shirt_size = '"+sz+"'",
		)
	}

	train, dev := b.split()
	return b.db, train, dev
}
