package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildFinancial constructs the synthetic counterpart of BIRD's
// `financial` database (Czech banking): accounts with cryptic issuance
// frequency codes, single-letter loan status codes, and M/F gender codes —
// the value-illustration and synonym knowledge the paper's Table III
// examples come from.
func buildFinancial(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("financial", seed)

	b.exec(`CREATE TABLE district (
		district_id INTEGER PRIMARY KEY,
		A2 TEXT,
		A3 TEXT,
		A11 INTEGER
	)`)
	b.exec(`CREATE TABLE account (
		account_id INTEGER PRIMARY KEY,
		district_id INTEGER,
		frequency TEXT,
		date TEXT,
		FOREIGN KEY (district_id) REFERENCES district(district_id)
	)`)
	b.exec(`CREATE TABLE client (
		client_id INTEGER PRIMARY KEY,
		gender TEXT,
		birth_date TEXT,
		district_id INTEGER,
		FOREIGN KEY (district_id) REFERENCES district(district_id)
	)`)
	b.exec(`CREATE TABLE disp (
		disp_id INTEGER PRIMARY KEY,
		client_id INTEGER,
		account_id INTEGER,
		type TEXT,
		FOREIGN KEY (client_id) REFERENCES client(client_id),
		FOREIGN KEY (account_id) REFERENCES account(account_id)
	)`)
	b.exec(`CREATE TABLE loan (
		loan_id INTEGER PRIMARY KEY,
		account_id INTEGER,
		date TEXT,
		amount INTEGER,
		duration INTEGER,
		payments REAL,
		status TEXT,
		FOREIGN KEY (account_id) REFERENCES account(account_id)
	)`)

	districts := []struct {
		id     int
		name   string
		region string
	}{
		{1, "Jesenik", "north Moravia"}, {2, "Pisek", "south Bohemia"},
		{3, "Tabor", "south Bohemia"}, {4, "Beroun", "central Bohemia"},
		{5, "Prague", "Prague"}, {6, "Brno", "south Moravia"},
		{7, "Olomouc", "north Moravia"}, {8, "Kolin", "central Bohemia"},
		{9, "Decin", "north Bohemia"}, {10, "Zlin", "south Moravia"},
	}
	for _, d := range districts {
		b.execf("INSERT INTO district VALUES (%d, '%s', '%s', %d)", d.id, d.name, d.region, 8000+b.rng.Intn(5000))
	}

	freqCodes := []string{"POPLATEK MESICNE", "POPLATEK TYDNE", "POPLATEK PO OBRATU"}
	for i := 1; i <= 120; i++ {
		freq := freqCodes[b.rng.Intn(3)]
		year := 1993 + b.rng.Intn(6)
		month := 1 + b.rng.Intn(12)
		day := 1 + b.rng.Intn(28)
		b.execf("INSERT INTO account VALUES (%d, %d, '%s', '%04d-%02d-%02d')",
			i, 1+b.rng.Intn(len(districts)), freq, year, month, day)
	}
	for i := 1; i <= 150; i++ {
		gender := "M"
		if b.rng.Chance(0.5) {
			gender = "F"
		}
		b.execf("INSERT INTO client VALUES (%d, '%s', '%04d-%02d-%02d', %d)",
			i, gender, 1940+b.rng.Intn(50), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			1+b.rng.Intn(len(districts)))
	}
	for i := 1; i <= 150; i++ {
		typ := "OWNER"
		if b.rng.Chance(0.25) {
			typ = "DISPONENT"
		}
		b.execf("INSERT INTO disp VALUES (%d, %d, %d, '%s')", i, i, 1+b.rng.Intn(120), typ)
	}
	statusCodes := []string{"A", "B", "C", "D"}
	for i := 1; i <= 90; i++ {
		duration := []int{12, 24, 36, 48, 60}[b.rng.Intn(5)]
		amount := 5000 + b.rng.Intn(495000)
		b.execf("INSERT INTO loan VALUES (%d, %d, '%04d-%02d-%02d', %d, %d, %0.1f, '%s')",
			i, 1+b.rng.Intn(120), 1994+b.rng.Intn(5), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			amount, duration, float64(amount)/float64(duration), statusCodes[b.rng.Intn(4)])
	}

	b.doc(schema.TableDoc{
		Table: "account", Description: "bank accounts and their statement issuance settings",
		Columns: []schema.ColumnDoc{
			{Column: "account_id", FullName: "account id", Description: "unique account identifier"},
			{Column: "district_id", FullName: "district id", Description: "branch district of the account"},
			{Column: "frequency", FullName: "frequency", Description: "frequency of statement issuance",
				ValueMap: map[string]string{
					"POPLATEK MESICNE":   "monthly issuance",
					"POPLATEK TYDNE":     "weekly issuance",
					"POPLATEK PO OBRATU": "issuance after transaction",
				}},
			{Column: "date", FullName: "date", Description: "account opening date in YYYY-MM-DD format"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "client", Description: "bank clients",
		Columns: []schema.ColumnDoc{
			{Column: "client_id", FullName: "client id", Description: "unique client identifier"},
			{Column: "gender", FullName: "gender", Description: "client gender",
				ValueMap: map[string]string{"F": "female", "M": "male"}},
			{Column: "birth_date", FullName: "birth date", Description: "client birth date"},
			{Column: "district_id", FullName: "district id", Description: "district where the client lives"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "loan", Description: "loans granted on accounts",
		Columns: []schema.ColumnDoc{
			{Column: "loan_id", FullName: "loan id", Description: "unique loan identifier"},
			{Column: "account_id", FullName: "account id", Description: "account the loan is attached to"},
			{Column: "amount", FullName: "amount", Description: "approved loan amount in CZK"},
			{Column: "duration", FullName: "duration", Description: "loan duration in months"},
			{Column: "payments", FullName: "payments", Description: "monthly payment"},
			{Column: "status", FullName: "status", Description: "repayment status",
				ValueMap: map[string]string{
					"A": "contract finished, no problems",
					"B": "contract finished, loan not paid",
					"C": "running contract, OK so far",
					"D": "running contract, client in debt",
				}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "disp", Description: "disposition rights linking clients to accounts",
		Columns: []schema.ColumnDoc{
			{Column: "disp_id", FullName: "disposition id", Description: "unique disposition identifier"},
			{Column: "client_id", FullName: "client id", Description: "client holding the right"},
			{Column: "account_id", FullName: "account id", Description: "account the right applies to"},
			{Column: "type", FullName: "type", Description: "kind of disposition",
				ValueMap: map[string]string{
					"OWNER":     "owner of the account",
					"DISPONENT": "user who can operate the account",
				}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "district", Description: "branch districts",
		Columns: []schema.ColumnDoc{
			{Column: "district_id", FullName: "district id", Description: "unique district identifier"},
			{Column: "A2", FullName: "district name", Description: "name of the district"},
			{Column: "A3", FullName: "region", Description: "region the district belongs to"},
			{Column: "A11", FullName: "average salary", Description: "average salary in the district"},
		},
	})

	// --- Question templates ---

	genders := []struct{ term, value, naive string }{
		{"women", "F", "Female"}, {"female clients", "F", "Female"},
		{"men", "M", "Male"}, {"male clients", "M", "Male"},
	}
	for _, d := range districts {
		for _, g := range genders {
			b.add(
				fmt.Sprintf("How many clients who opened their accounts in the %s branch are %s?", d.name, g.term),
				"SELECT COUNT(*) FROM client JOIN district ON {{1}} WHERE district.A2 = '"+d.name+"' AND client.gender = {{0}}",
				synonymAtom(g.term, "client", "gender", g.value, g.naive),
				joinAtom("client", "district_id", "district", "district_id"),
			)
		}
	}

	freqs := []struct{ term, code string }{
		{"weekly issuance", "POPLATEK TYDNE"},
		{"monthly issuance", "POPLATEK MESICNE"},
		{"issuance after transaction", "POPLATEK PO OBRATU"},
	}
	amounts := []int{50000, 100000, 200000, 300000}
	for _, f := range freqs {
		for _, amt := range amounts {
			b.add(
				fmt.Sprintf("Among the %s accounts, how many have a loan of under %d?", f.term, amt),
				fmt.Sprintf("SELECT COUNT(*) FROM account JOIN loan ON {{1}} WHERE account.frequency = {{0}} AND loan.amount < %d", amt),
				valueMapAtom(f.term, "account", "frequency", f.code, firstWord(f.term)),
				joinAtom("loan", "account_id", "account", "account_id"),
			)
			b.add(
				fmt.Sprintf("What is the total loan amount held by accounts with %s that borrowed more than %d?", f.term, amt),
				fmt.Sprintf("SELECT SUM(loan.amount) FROM account JOIN loan ON {{1}} WHERE account.frequency = {{0}} AND loan.amount > %d", amt),
				valueMapAtom(f.term, "account", "frequency", f.code, firstWord(f.term)),
				joinAtom("loan", "account_id", "account", "account_id"),
			)
		}
	}

	statuses := []struct{ term, code, naive string }{
		{"finished contracts with no problems", "A", "finished"},
		{"finished contracts where the loan was not paid", "B", "unpaid"},
		{"running contracts that are OK so far", "C", "running"},
		{"clients in debt", "D", "debt"},
	}
	for _, s := range statuses {
		b.add(
			fmt.Sprintf("How many loans belong to %s?", s.term),
			"SELECT COUNT(*) FROM loan WHERE status = {{0}}",
			valueMapAtom(s.term, "loan", "status", s.code, s.naive),
		)
		b.add(
			fmt.Sprintf("What is the average loan amount for %s?", s.term),
			"SELECT AVG(amount) FROM loan WHERE status = {{0}}",
			valueMapAtom(s.term, "loan", "status", s.code, s.naive),
		)
		b.add(
			fmt.Sprintf("List the account ids of loans that belong to %s.", s.term),
			"SELECT account_id FROM loan WHERE status = {{0}} ORDER BY account_id",
			valueMapAtom(s.term, "loan", "status", s.code, s.naive),
		)
	}

	for _, n := range []int{1, 2, 3, 4} {
		b.add(
			fmt.Sprintf("How many loans have a duration of more than %d years?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM loan WHERE {{0}} > %d", n),
			formulaAtom("duration in years", "duration / 12", "duration"),
		)
		b.add(
			fmt.Sprintf("List the loan ids with a duration of at least %d years.", n),
			fmt.Sprintf("SELECT loan_id FROM loan WHERE {{0}} >= %d ORDER BY loan_id", n),
			formulaAtom("duration in years", "duration / 12", "duration"),
		)
	}

	for _, d := range districts {
		b.add(
			fmt.Sprintf("How many accounts are held in %s?", d.name),
			"SELECT COUNT(*) FROM account JOIN district ON {{1}} WHERE {{0}} = '"+d.name+"'",
			columnAtom(d.name, "district", "district.A2", "district.A3"),
			joinAtom("account", "district_id", "district", "district_id"),
		)
	}

	regions := []string{"north Moravia", "south Bohemia", "central Bohemia", "south Moravia", "north Bohemia"}
	for _, r := range regions {
		b.add(
			fmt.Sprintf("How many clients live in the %s region?", r),
			"SELECT COUNT(*) FROM client JOIN district ON {{1}} WHERE {{0}} = '"+r+"'",
			columnAtom(r, "district", "district.A3", "district.A2"),
			joinAtom("client", "district_id", "district", "district_id"),
		)
	}

	dispTypes := []struct{ term, code, naive string }{
		{"users who can only operate the account", "DISPONENT", "user"},
		{"owners of accounts", "OWNER", "Owner"},
	}
	for _, dt := range dispTypes {
		b.add(
			fmt.Sprintf("How many %s are there?", dt.term),
			"SELECT COUNT(*) FROM disp WHERE type = {{0}}",
			valueMapAtom(dt.term, "disp", "type", dt.code, dt.naive),
		)
		b.add(
			fmt.Sprintf("List the client ids of %s, ordered by client id.", dt.term),
			"SELECT client_id FROM disp WHERE type = {{0}} ORDER BY client_id",
			valueMapAtom(dt.term, "disp", "type", dt.code, dt.naive),
		)
	}

	for _, year := range []int{1993, 1994, 1995, 1996, 1997} {
		b.add(
			fmt.Sprintf("How many accounts were opened in %d?", year),
			fmt.Sprintf("SELECT COUNT(*) FROM account WHERE {{0}} = '%d'", year),
			formulaAtom("opened in the year", "STRFTIME('%Y', date)", "date"),
		)
	}

	for _, cutoff := range []string{"1994-06-01", "1995-01-01", "1996-03-15", "1997-09-30"} {
		b.add(
			fmt.Sprintf("How many accounts were opened before %s?", cutoff),
			"SELECT COUNT(*) FROM account WHERE date < {{0}}",
			dateAtom("opened before", "account", "date", cutoff),
		)
	}

	// Harder, multi-knowledge questions combining a value map with a
	// synonym across two joins.
	for _, f := range freqs[:2] {
		for _, g := range genders[:2] {
			b.add(
				fmt.Sprintf("How many %s own an account with %s?", g.term, f.term),
				"SELECT COUNT(*) FROM client JOIN disp ON {{2}} JOIN account ON {{3}} WHERE client.gender = {{0}} AND account.frequency = {{1}}",
				synonymAtom(g.term, "client", "gender", g.value, g.naive),
				valueMapAtom(f.term, "account", "frequency", f.code, firstWord(f.term)),
				joinAtom("disp", "client_id", "client", "client_id"),
				joinAtom("disp", "account_id", "account", "account_id"),
			)
		}
	}

	train, dev := b.split()
	return b.db, train, dev
}

// dateAtom marks a date-literal binding; the naive mistake is a slash
// format the engine's ISO comparisons will not match.
func dateAtom(term, table, column, iso string) Atom {
	slash := iso[5:7] + "/" + iso[8:10] + "/" + iso[:4]
	return Atom{
		Kind:           ValueMap,
		Term:           term,
		Clause:         fmt.Sprintf("%s refers to %s < '%s'", term, column, iso),
		CorrectFrag:    "'" + iso + "'",
		WrongFrag:      "'" + slash + "'",
		Guess:          0.70,
		Table:          table,
		Column:         column,
		Value:          iso,
		ValueDerivable: true,
	}
}

func firstWord(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			return s[:i]
		}
	}
	return s
}
