package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildThrombosis constructs the synthetic counterpart of BIRD's
// `thrombosis_prediction` database: patient laboratory measurements whose
// normal ranges live only in the description files — the paper's Table III
// domain-knowledge example ("hematoclit level exceeded the normal range
// refers to HCT >= 52").
func buildThrombosis(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("thrombosis_prediction", seed)

	b.exec(`CREATE TABLE patient (
		id INTEGER PRIMARY KEY,
		sex TEXT,
		birthday TEXT,
		admission TEXT,
		diagnosis TEXT
	)`)
	b.exec(`CREATE TABLE laboratory (
		lab_id INTEGER PRIMARY KEY,
		id INTEGER,
		lab_date TEXT,
		hct REAL,
		glu INTEGER,
		wbc REAL,
		plt INTEGER,
		FOREIGN KEY (id) REFERENCES patient(id)
	)`)
	b.exec(`CREATE TABLE examination (
		exam_id INTEGER PRIMARY KEY,
		id INTEGER,
		exam_date TEXT,
		thrombosis INTEGER,
		ana INTEGER,
		FOREIGN KEY (id) REFERENCES patient(id)
	)`)

	diagnoses := []string{"SLE", "APS", "PSS", "RA", "MCTD"}
	for p := 1; p <= 90; p++ {
		sex := "M"
		if b.rng.Chance(0.55) {
			sex = "F"
		}
		adm := "+"
		if b.rng.Chance(0.4) {
			adm = "-"
		}
		b.execf("INSERT INTO patient VALUES (%d, '%s', '%04d-%02d-%02d', '%s', '%s')",
			p, sex, 1930+b.rng.Intn(60), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			adm, diagnoses[b.rng.Intn(len(diagnoses))])
	}
	lid := 1
	for p := 1; p <= 90; p++ {
		n := 1 + b.rng.Intn(4)
		for j := 0; j < n; j++ {
			b.execf("INSERT INTO laboratory VALUES (%d, %d, '%04d-%02d-%02d', %0.1f, %d, %0.1f, %d)",
				lid, p, 1991+b.rng.Intn(8), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
				20+b.rng.Float64()*40, 60+b.rng.Intn(140), 2+b.rng.Float64()*13, 50+b.rng.Intn(400))
			lid++
		}
	}
	for p := 1; p <= 90; p++ {
		if !b.rng.Chance(0.8) {
			continue
		}
		thrombosis := 0
		if b.rng.Chance(0.3) {
			thrombosis = 1 + b.rng.Intn(2)
		}
		b.execf("INSERT INTO examination VALUES (%d, %d, '%04d-%02d-%02d', %d, %d)",
			p, p, 1992+b.rng.Intn(7), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			thrombosis, b.rng.Intn(256))
	}

	b.doc(schema.TableDoc{
		Table: "patient", Description: "patients under observation",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique patient identifier"},
			{Column: "sex", FullName: "sex", Description: "patient sex",
				ValueMap: map[string]string{"F": "female", "M": "male"}},
			{Column: "birthday", FullName: "birthday", Description: "patient birth date"},
			{Column: "admission", FullName: "admission", Description: "admission status",
				ValueMap: map[string]string{"+": "admitted to the hospital", "-": "followed at the outpatient clinic"}},
			{Column: "diagnosis", FullName: "diagnosis", Description: "disease code diagnosed"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "laboratory", Description: "laboratory examination results",
		Columns: []schema.ColumnDoc{
			{Column: "lab_id", FullName: "lab id", Description: "unique lab-result identifier"},
			{Column: "id", FullName: "patient id", Description: "patient the result belongs to"},
			{Column: "lab_date", FullName: "lab date", Description: "date of the examination"},
			{Column: "hct", FullName: "hematoclit", Description: "hematoclit level",
				Range: "Normal range: 29 < N < 52"},
			{Column: "glu", FullName: "glucose", Description: "blood glucose",
				Range: "Normal range: N < 180"},
			{Column: "wbc", FullName: "white blood cell", Description: "white blood cell count",
				Range: "Normal range: 3.5 < N < 9.0"},
			{Column: "plt", FullName: "platelet", Description: "platelet count",
				Range: "Normal range: 100 < N < 400"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "examination", Description: "special laboratory examinations",
		Columns: []schema.ColumnDoc{
			{Column: "exam_id", FullName: "exam id", Description: "unique examination identifier"},
			{Column: "id", FullName: "patient id", Description: "patient examined"},
			{Column: "exam_date", FullName: "examination date", Description: "date of the examination"},
			{Column: "thrombosis", FullName: "thrombosis", Description: "degree of thrombosis",
				ValueMap: map[string]string{"0": "negative, no thrombosis", "1": "positive, most severe", "2": "positive, severe"}},
			{Column: "ana", FullName: "anti-nucleus antibody", Description: "anti-nucleus antibody concentration"},
		},
	})

	// --- Question templates ---

	// The Table III flagship: normal-range thresholds. Each measurement's
	// range lives only in the description file.
	rangeCases := []struct {
		term, correct, wrong string
	}{
		{"hematoclit level exceeded the normal range", "laboratory.hct >= 52", "laboratory.hct > 0"},
		{"hematoclit level below the normal range", "laboratory.hct <= 29", "laboratory.hct < 52"},
		{"glucose above the normal range", "laboratory.glu >= 180", "laboratory.glu > 100"},
		{"white blood cell count beyond the normal range", "laboratory.wbc >= 9.0", "laboratory.wbc > 0"},
		{"white blood cell count under the normal range", "laboratory.wbc <= 3.5", "laboratory.wbc < 9.0"},
		{"platelet count above the normal range", "laboratory.plt >= 400", "laboratory.plt > 100"},
	}
	for _, rc := range rangeCases {
		b.add(
			fmt.Sprintf("How many laboratory examinations show that the %s?", rc.term),
			"SELECT COUNT(*) FROM laboratory WHERE {{0}}",
			thresholdAtom(rc.term, "laboratory", rangeColumn(rc.correct), rc.correct, rc.wrong),
		)
		b.add(
			fmt.Sprintf("Name the ids of patients whose %s.", rc.term),
			"SELECT DISTINCT patient.id FROM patient JOIN laboratory ON {{1}} WHERE {{0}} ORDER BY patient.id",
			thresholdAtom(rc.term, "laboratory", rangeColumn(rc.correct), rc.correct, rc.wrong),
			joinAtom("laboratory", "id", "patient", "id"),
		)
	}

	// Sex synonym + admission code combinations.
	for _, sx := range []struct{ term, value, naive string }{
		{"female patients", "F", "Female"}, {"male patients", "M", "Male"},
	} {
		b.add(
			fmt.Sprintf("How many %s are there?", sx.term),
			"SELECT COUNT(*) FROM patient WHERE sex = {{0}}",
			synonymAtom(sx.term, "patient", "sex", sx.value, sx.naive),
		)
		b.add(
			fmt.Sprintf("How many %s were admitted to the hospital?", sx.term),
			"SELECT COUNT(*) FROM patient WHERE sex = {{0}} AND admission = {{1}}",
			synonymAtom(sx.term, "patient", "sex", sx.value, sx.naive),
			valueMapAtom("admitted to the hospital", "patient", "admission", "+", "admitted"),
		)
	}

	// Thrombosis degree value map.
	for _, tc := range []struct {
		term string
		code string
	}{
		{"no thrombosis", "0"}, {"the most severe thrombosis", "1"}, {"severe thrombosis", "2"},
	} {
		b.add(
			fmt.Sprintf("How many examinations found %s?", tc.term),
			"SELECT COUNT(*) FROM examination WHERE thrombosis = {{0}}",
			Atom{
				Kind:         ValueMap,
				Term:         tc.term,
				Clause:       fmt.Sprintf("%s refers to thrombosis = %s", tc.term, tc.code),
				CorrectFrag:  tc.code,
				WrongFrag:    "'" + firstWord(tc.term) + "'",
				Guess:        0.15,
				Table:        "examination",
				Column:       "thrombosis",
				Value:        tc.code,
				DocDerivable: true,
			},
		)
	}

	// Diagnosis literals: plain value binding, resolvable by sampling.
	for _, d := range diagnoses {
		b.add(
			fmt.Sprintf("How many patients were diagnosed with %s?", d),
			"SELECT COUNT(*) FROM patient WHERE {{0}} = '"+d+"'",
			columnAtom(d, "patient", "diagnosis", "admission"),
		)
	}

	// Age formula.
	for _, y := range []int{50, 60, 70} {
		b.add(
			fmt.Sprintf("How many patients were older than %d in 1999?", y),
			fmt.Sprintf("SELECT COUNT(*) FROM patient WHERE {{0}} > %d", y),
			formulaAtom("age in 1999", "1999 - CAST(STRFTIME('%Y', birthday) AS INTEGER)", "birthday"),
		)
	}

	train, dev := b.split()
	return b.db, train, dev
}

// rangeColumn extracts the bare column name from a qualified predicate like
// "laboratory.hct >= 52".
func rangeColumn(pred string) string {
	dot := 0
	for i := 0; i < len(pred); i++ {
		if pred[i] == '.' {
			dot = i + 1
		}
		if pred[i] == ' ' {
			return pred[dot:i]
		}
	}
	return pred
}
