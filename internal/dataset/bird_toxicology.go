package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildToxicology constructs the synthetic counterpart of BIRD's
// `toxicology` database: molecules, atoms and bonds where both the element
// codes ('cl' means Chlorine, ...) and the bond-type symbols ('=' means
// double bond) are value-illustration knowledge. The paper's Table I
// "unnecessary information" example comes from this domain.
func buildToxicology(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("toxicology", seed)

	b.exec(`CREATE TABLE molecule (
		molecule_id TEXT PRIMARY KEY,
		label TEXT
	)`)
	b.exec(`CREATE TABLE atom (
		atom_id TEXT PRIMARY KEY,
		molecule_id TEXT,
		element TEXT,
		FOREIGN KEY (molecule_id) REFERENCES molecule(molecule_id)
	)`)
	b.exec(`CREATE TABLE bond (
		bond_id TEXT PRIMARY KEY,
		molecule_id TEXT,
		bond_type TEXT,
		FOREIGN KEY (molecule_id) REFERENCES molecule(molecule_id)
	)`)

	elements := []string{"c", "h", "o", "n", "s", "cl", "p", "na", "br", "f"}
	bondTypes := []string{"-", "=", "#"}
	for m := 1; m <= 60; m++ {
		mid := fmt.Sprintf("TR%03d", m)
		label := "-"
		if b.rng.Chance(0.45) {
			label = "+"
		}
		b.execf("INSERT INTO molecule VALUES ('%s', '%s')", mid, label)
		nAtoms := 3 + b.rng.Intn(8)
		for a := 1; a <= nAtoms; a++ {
			b.execf("INSERT INTO atom VALUES ('%s_%d', '%s', '%s')",
				mid, a, mid, elements[b.rng.Intn(len(elements))])
		}
		nBonds := 2 + b.rng.Intn(6)
		for bd := 1; bd <= nBonds; bd++ {
			bt := bondTypes[0]
			r := b.rng.Float64()
			if r > 0.8 {
				bt = bondTypes[2]
			} else if r > 0.5 {
				bt = bondTypes[1]
			}
			b.execf("INSERT INTO bond VALUES ('%s_b%d', '%s', '%s')", mid, bd, mid, bt)
		}
	}

	b.doc(schema.TableDoc{
		Table: "molecule", Description: "molecules under toxicology study",
		Columns: []schema.ColumnDoc{
			{Column: "molecule_id", FullName: "molecule id", Description: "unique molecule identifier, TRxxx"},
			{Column: "label", FullName: "label", Description: "carcinogenicity label",
				ValueMap: map[string]string{"+": "carcinogenic", "-": "non-carcinogenic"}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "atom", Description: "atoms belonging to molecules",
		Columns: []schema.ColumnDoc{
			{Column: "atom_id", FullName: "atom id", Description: "unique atom identifier"},
			{Column: "molecule_id", FullName: "molecule id", Description: "owning molecule"},
			{Column: "element", FullName: "element", Description: "chemical element code",
				ValueMap: map[string]string{
					"c": "Carbon", "h": "Hydrogen", "o": "Oxygen", "n": "Nitrogen",
					"s": "Sulfur", "cl": "Chlorine", "p": "Phosphorus", "na": "Sodium",
					"br": "Bromine", "f": "Fluorine",
				}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "bond", Description: "bonds within molecules",
		Columns: []schema.ColumnDoc{
			{Column: "bond_id", FullName: "bond id", Description: "unique bond identifier"},
			{Column: "molecule_id", FullName: "molecule id", Description: "owning molecule"},
			{Column: "bond_type", FullName: "bond type", Description: "bond symbol",
				ValueMap: map[string]string{"-": "single bond", "=": "double bond", "#": "triple bond"}},
		},
	})

	// --- Question templates ---

	bondTerms := []struct{ term, code, naive string }{
		{"double bond", "=", "double"},
		{"single bond", "-", "single"},
		{"triple bond", "#", "triple"},
	}
	// The Table I shape: elements of a molecule's bonds.
	for _, bt := range bondTerms {
		for _, m := range []string{"TR024", "TR007", "TR031", "TR048"} {
			b.add(
				fmt.Sprintf("How many %ss does molecule %s contain?", bt.term, m),
				"SELECT COUNT(*) FROM bond WHERE molecule_id = '"+m+"' AND bond_type = {{0}}",
				valueMapAtom(bt.term, "bond", "bond_type", bt.code, bt.naive),
			)
		}
		b.add(
			fmt.Sprintf("How many molecules contain at least one %s?", bt.term),
			"SELECT COUNT(DISTINCT molecule_id) FROM bond WHERE bond_type = {{0}}",
			valueMapAtom(bt.term, "bond", "bond_type", bt.code, bt.naive),
		)
	}

	elementTerms := []struct{ term, code string }{
		{"Chlorine", "cl"}, {"Carbon", "c"}, {"Hydrogen", "h"},
		{"Oxygen", "o"}, {"Nitrogen", "n"}, {"Sulfur", "s"},
		{"Sodium", "na"}, {"Bromine", "br"},
	}
	for _, el := range elementTerms {
		b.add(
			fmt.Sprintf("How many %s atoms are there across all molecules?", el.term),
			"SELECT COUNT(*) FROM atom WHERE element = {{0}}",
			valueMapAtom(el.term, "atom", "element", el.code, el.term),
		)
		b.add(
			fmt.Sprintf("List the molecule ids that contain %s atoms.", el.term),
			"SELECT DISTINCT molecule_id FROM atom WHERE element = {{0}} ORDER BY molecule_id",
			valueMapAtom(el.term, "atom", "element", el.code, el.term),
		)
	}

	// Carcinogenic label knowledge crossed with element/bond knowledge.
	for _, lab := range []struct{ term, code, naive string }{
		{"carcinogenic molecules", "+", "carcinogenic"},
		{"non-carcinogenic molecules", "-", "non-carcinogenic"},
	} {
		b.add(
			fmt.Sprintf("How many %s are there?", lab.term),
			"SELECT COUNT(*) FROM molecule WHERE label = {{0}}",
			valueMapAtom(lab.term, "molecule", "label", lab.code, lab.naive),
		)
		for _, el := range elementTerms[:3] {
			b.add(
				fmt.Sprintf("How many %s contain %s atoms?", lab.term, el.term),
				"SELECT COUNT(DISTINCT molecule.molecule_id) FROM molecule JOIN atom ON {{2}} WHERE molecule.label = {{0}} AND atom.element = {{1}}",
				valueMapAtom(lab.term, "molecule", "label", lab.code, lab.naive),
				valueMapAtom(el.term, "atom", "element", el.code, el.term),
				joinAtom("atom", "molecule_id", "molecule", "molecule_id"),
			)
		}
	}

	// Structural questions with no knowledge atoms.
	for _, n := range []int{5, 7, 9} {
		b.add(
			fmt.Sprintf("How many molecules have more than %d atoms?", n),
			fmt.Sprintf("SELECT COUNT(*) FROM (SELECT molecule_id FROM atom GROUP BY molecule_id HAVING COUNT(*) > %d) sub", n),
		)
	}
	b.add(
		"Which molecule has the most atoms?",
		"SELECT molecule_id FROM atom GROUP BY molecule_id ORDER BY COUNT(*) DESC, molecule_id LIMIT 1",
	)

	train, dev := b.split()
	return b.db, train, dev
}
