package dataset

import (
	"fmt"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// Split names a corpus partition.
type Split string

// Corpus splits.
const (
	Train Split = "train"
	Dev   Split = "dev"
	Test  Split = "test"
)

// Example is one text-to-SQL task instance.
type Example struct {
	// ID is unique within the corpus, e.g. "financial-0042".
	ID string
	// DB names the database the question runs against.
	DB string
	// Question is the natural-language request.
	Question string
	// SQLTemplate is the gold SQL with one {{i}} slot per atom.
	SQLTemplate string
	// Atoms lists the knowledge requirements, in slot order.
	Atoms []Atom
	// GoldSQL is SQLTemplate with every correct fragment substituted.
	GoldSQL string
	// CleanEvidence is the correct human-style evidence.
	CleanEvidence string
	// Evidence is the evidence as provided with the example. On dev it
	// may be defective (missing or erroneous) per the injected defect.
	Evidence string
	// Defect records the injected evidence defect, if any.
	Defect DefectType
	// Complexity in [0,1] summarises structural difficulty (joins,
	// grouping, subqueries), derived from the gold SQL.
	Complexity float64
	// CorruptSQL is a structurally degraded variant of the gold query
	// (dropped conjunct, negated filter, spurious LIMIT) that generators
	// emit when their structural parse fails. It is precomputed so the
	// failure mode is deterministic and executable.
	CorruptSQL string
}

// Finalize computes GoldSQL, CleanEvidence, Evidence and Complexity from
// the template and atoms. Call once after constructing the literal fields.
func (e *Example) Finalize() error {
	gold, err := RenderSQL(e.SQLTemplate, CorrectFrags(e.Atoms))
	if err != nil {
		return fmt.Errorf("dataset: example %s: %w", e.ID, err)
	}
	e.GoldSQL = gold
	e.CleanEvidence = ComposeEvidence(e.Atoms)
	e.Evidence = e.CleanEvidence
	e.Complexity = sqlComplexity(gold)
	e.CorruptSQL = corruptVariant(gold)
	return nil
}

// corruptVariant degrades a gold query the way near-miss LLM output does:
// it drops one WHERE conjunct, or negates the filter, or perturbs the
// result shape. The variant always differs textually from the gold query.
func corruptVariant(gold string) string {
	sel, err := sqlengine.ParseSelect(gold)
	if err != nil {
		return gold + " LIMIT 1"
	}
	if b, ok := sel.Where.(*sqlengine.Binary); ok && b.Op == "AND" {
		sel.Where = b.L
		return sel.SQL()
	}
	if sel.Where != nil {
		sel.Where = &sqlengine.Unary{Op: "NOT", X: sel.Where}
		return sel.SQL()
	}
	if sel.Limit == nil {
		sel.Limit = &sqlengine.Literal{Val: sqlengine.Int(1)}
		return sel.SQL()
	}
	sel.Limit = nil
	return sel.SQL()
}

// sqlComplexity scores structural difficulty in [0,1].
func sqlComplexity(sql string) float64 {
	up := strings.ToUpper(sql)
	score := 0.0
	score += 0.18 * float64(strings.Count(up, " JOIN "))
	if strings.Contains(up, "GROUP BY") {
		score += 0.15
	}
	if strings.Contains(up, "HAVING") {
		score += 0.10
	}
	if strings.Count(up, "SELECT") > 1 {
		score += 0.22 // subquery
	}
	if strings.Contains(up, "ORDER BY") {
		score += 0.08
	}
	if strings.Contains(up, "CASE") {
		score += 0.10
	}
	if score > 1 {
		score = 1
	}
	return score
}

// Corpus is a complete benchmark: databases plus question splits.
type Corpus struct {
	// Name is "bird" or "spider".
	Name string
	// DBs maps database names to executable databases with docs.
	DBs map[string]*schema.DB
	// Train, Dev and Test are the question splits. Test is only populated
	// for Spider (BIRD's test set is hidden in the real benchmark).
	Train []Example
	Dev   []Example
	Test  []Example
}

// DB returns the named database.
func (c *Corpus) DB(name string) (*schema.DB, bool) {
	db, ok := c.DBs[name]
	return db, ok
}

// SplitExamples returns the examples of the requested split.
func (c *Corpus) SplitExamples(s Split) []Example {
	switch s {
	case Train:
		return c.Train
	case Dev:
		return c.Dev
	case Test:
		return c.Test
	default:
		return nil
	}
}

// TrainByDB groups training examples by database name, the index few-shot
// selection needs.
func (c *Corpus) TrainByDB() map[string][]Example {
	out := make(map[string][]Example)
	for _, e := range c.Train {
		out[e.DB] = append(out[e.DB], e)
	}
	return out
}
