package dataset

import (
	"fmt"
	"strings"

	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// builder accumulates one database plus its question set. Each bird_*.go /
// spider_*.go file defines a build function over one of these.
type builder struct {
	db        *schema.DB
	examples  []Example
	seq       int
	rng       *llm.Rand
	validated map[string]bool
}

func newBuilder(dbName string, seed uint64) *builder {
	return &builder{
		db:        schema.NewDB(sqlengine.NewDatabase(dbName)),
		rng:       llm.NewRand(seed),
		validated: make(map[string]bool),
	}
}

// exec runs DDL/DML against the database, panicking on error: corpus
// definitions are program constants, so failures are bugs.
func (b *builder) exec(sql string) { b.db.Engine.MustExec(sql) }

func (b *builder) execf(format string, args ...any) {
	b.exec(fmt.Sprintf(format, args...))
}

// doc installs a table description file.
func (b *builder) doc(td schema.TableDoc) { b.db.SetDoc(&td) }

// add creates, finalises and stores one example, plus two paraphrase
// variants sharing its SQL template and atoms. Paraphrases mirror real
// BIRD's many near-duplicate question shapes and scale the corpus without
// padding its knowledge content.
func (b *builder) add(question, sqlTemplate string, atoms ...Atom) {
	for _, q := range paraphrases(question) {
		b.addOne(q, sqlTemplate, atoms)
	}
}

func (b *builder) addOne(question, sqlTemplate string, atoms []Atom) {
	e := Example{
		ID:          fmt.Sprintf("%s-%04d", b.db.Name, b.seq),
		DB:          b.db.Name,
		Question:    question,
		SQLTemplate: sqlTemplate,
		Atoms:       atoms,
	}
	b.seq++
	if err := e.Finalize(); err != nil {
		panic(err)
	}
	// Gold SQL must execute: catching template/schema drift at build time.
	// Identical gold queries (paraphrase siblings) validate once.
	if !b.validated[e.GoldSQL] {
		if _, err := b.db.Engine.Exec(e.GoldSQL); err != nil {
			panic(fmt.Sprintf("dataset: gold SQL for %s does not execute: %v\n%s", e.ID, err, e.GoldSQL))
		}
		b.validated[e.GoldSQL] = true
	}
	b.examples = append(b.examples, e)
}

// paraphrases returns the question plus two reworded variants.
func paraphrases(q string) []string {
	out := []string{q}
	switch {
	case strings.HasPrefix(q, "How many"):
		out = append(out,
			"Count how many"+strings.TrimPrefix(q, "How many"),
			"Please tell me how many"+strings.TrimPrefix(q, "How many"))
	case strings.HasPrefix(q, "List"):
		out = append(out,
			"Show"+strings.TrimPrefix(q, "List"),
			"Please list"+strings.TrimPrefix(q, "List"))
	case strings.HasPrefix(q, "What is"):
		out = append(out,
			"Tell me what"+strings.TrimPrefix(q, "What"),
			"Find out what"+strings.TrimPrefix(q, "What"))
	case strings.HasPrefix(q, "Which"):
		out = append(out,
			"Find out which"+strings.TrimPrefix(q, "Which"),
			"Identify which"+strings.TrimPrefix(q, "Which"))
	case strings.HasPrefix(q, "Among"):
		out = append(out,
			"Considering"+strings.TrimPrefix(q, "Among"),
			"Looking at"+strings.TrimPrefix(q, "Among"))
	default:
		out = append(out, "Please answer: "+q, "I would like to know: "+q)
	}
	return out
}

// split partitions the accumulated examples deterministically: of every
// five consecutive examples, three go to train and two to dev. Because
// template instantiation interleaves parameter values, every dev question
// has same-template siblings in train — the property SEED's few-shot
// selection exploits, as real BIRD's train/dev overlap in question shape
// does.
func (b *builder) split() (train, dev []Example) {
	for i, e := range b.examples {
		if i%5 < 3 {
			train = append(train, e)
		} else {
			dev = append(dev, e)
		}
	}
	return train, dev
}

// split3 additionally carves out a test split (Spider publishes one; BIRD's
// is hidden): of every five examples, three go to train, one to dev, one to
// test.
func (b *builder) split3() (train, dev, test []Example) {
	for i, e := range b.examples {
		switch {
		case i%5 < 3:
			train = append(train, e)
		case i%5 == 3:
			dev = append(dev, e)
		default:
			test = append(test, e)
		}
	}
	return train, dev, test
}

// --- Atom constructors ---

// valueMapAtom builds a value-illustration atom: term denotes a cryptic
// code documented in the description file. The naive mistake is using the
// NL term itself as the value.
func valueMapAtom(term, table, column, code, naive string) Atom {
	return Atom{
		Kind:         ValueMap,
		Term:         term,
		Clause:       fmt.Sprintf("%s refers to %s = '%s'", term, column, code),
		CorrectFrag:  "'" + code + "'",
		WrongFrag:    "'" + naive + "'",
		Guess:        0.32,
		Table:        table,
		Column:       column,
		Value:        code,
		DocDerivable: true,
	}
}

// synonymAtom builds a synonym atom: term is a synonym of a stored value
// ("women" -> 'F'). Models guess these moderately often; value sampling
// resolves them reliably.
func synonymAtom(term, table, column, value, naive string) Atom {
	return Atom{
		Kind:           Synonym,
		Term:           term,
		Clause:         fmt.Sprintf("%s refers to %s = '%s'", term, column, value),
		CorrectFrag:    "'" + value + "'",
		WrongFrag:      "'" + naive + "'",
		Guess:          0.68,
		Table:          table,
		Column:         column,
		Value:          value,
		DocDerivable:   true,
		ValueDerivable: true,
	}
}

// thresholdAtom builds a domain-knowledge atom: a range documented only in
// the description file ("normal range: N < 52" -> HCT >= 52).
func thresholdAtom(term, table, column, correct, wrong string) Atom {
	return Atom{
		Kind:         Threshold,
		Term:         term,
		Clause:       fmt.Sprintf("%s refers to %s", term, correct),
		CorrectFrag:  correct,
		WrongFrag:    wrong,
		Guess:        0.25,
		Table:        table,
		Column:       column,
		DocDerivable: true,
	}
}

// formulaAtom builds a numeric-reasoning atom: a calculation convention
// that lives in neither schema nor data; only few-shot exemplars (or human
// evidence) supply it.
func formulaAtom(term, correct, wrong string) Atom {
	return Atom{
		Kind:        Formula,
		Term:        term,
		Clause:      fmt.Sprintf("%s refers to %s", term, correct),
		CorrectFrag: correct,
		WrongFrag:   wrong,
		Guess:       0.45,
	}
}

// columnAtom builds a column-binding atom: the term (usually a literal
// value like "Fremont") must be located in the right column. Sampling
// database values resolves it.
func columnAtom(term, table, correctCol, wrongCol string) Atom {
	return Atom{
		Kind:           ColumnRef,
		Term:           term,
		Clause:         fmt.Sprintf("%s refers to %s", term, correctCol),
		CorrectFrag:    correctCol,
		WrongFrag:      wrongCol,
		Guess:          0.65,
		Table:          table,
		Column:         correctCol,
		Value:          term,
		ValueDerivable: true,
	}
}

// joinAtom builds a join-path atom. BIRD gold evidence leaves joins
// implicit (generators resolve them from foreign keys most of the time);
// SEED's deepseek variant spells them out, which is the Table VI format
// difference CHESS reacts badly to.
func joinAtom(childTable, childCol, parentTable, parentCol string) Atom {
	correct := fmt.Sprintf("%s.%s = %s.%s", childTable, childCol, parentTable, parentCol)
	wrong := fmt.Sprintf("%s.%s = %s.%s", childTable, childCol, parentTable, childCol)
	return Atom{
		Kind:        JoinPath,
		Term:        childTable + " with " + parentTable,
		Clause:      "join on " + correct,
		CorrectFrag: correct,
		WrongFrag:   wrong,
		Guess:       0.93,
		Table:       childTable,
		Column:      childCol,
		Table2:      parentTable,
	}
}
