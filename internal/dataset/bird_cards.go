package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildCardGames constructs the synthetic counterpart of BIRD's
// `card_games` database. Its legalities.status column carries capitalised
// values ('Legal', 'Restricted', 'Banned') — the source of the paper's
// Table I case-sensitivity example ("restricted refers to
// status = 'Restricted'") — and isTextless is a 0/1 flag read inversely
// ("have text boxes refers to isTextless = 0").
func buildCardGames(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("card_games", seed)

	b.exec(`CREATE TABLE cards (
		id INTEGER PRIMARY KEY,
		name TEXT,
		manaCost INTEGER,
		isTextless INTEGER,
		power INTEGER,
		types TEXT,
		rarity TEXT
	)`)
	b.exec(`CREATE TABLE legalities (
		id INTEGER PRIMARY KEY,
		card_id INTEGER,
		format TEXT,
		status TEXT,
		FOREIGN KEY (card_id) REFERENCES cards(id)
	)`)
	b.exec(`CREATE TABLE sets (
		id INTEGER PRIMARY KEY,
		code TEXT,
		name TEXT,
		releaseDate TEXT,
		totalSetSize INTEGER
	)`)

	types := []string{"Creature", "Instant", "Sorcery", "Artifact", "Enchantment"}
	rarities := []string{"common", "uncommon", "rare", "mythic"}
	for i := 1; i <= 160; i++ {
		textless := 0
		if b.rng.Chance(0.15) {
			textless = 1
		}
		b.execf("INSERT INTO cards VALUES (%d, 'Card %03d', %d, %d, %d, '%s', '%s')",
			i, i, b.rng.Intn(10), textless, b.rng.Intn(12),
			types[b.rng.Intn(len(types))], rarities[b.rng.Intn(len(rarities))])
	}
	formats := []string{"standard", "modern", "legacy", "vintage"}
	statuses := []string{"Legal", "Restricted", "Banned"}
	lid := 1
	for card := 1; card <= 160; card++ {
		for _, f := range formats {
			if !b.rng.Chance(0.6) {
				continue
			}
			status := statuses[0]
			r := b.rng.Float64()
			if r > 0.85 {
				status = statuses[2]
			} else if r > 0.7 {
				status = statuses[1]
			}
			b.execf("INSERT INTO legalities VALUES (%d, %d, '%s', '%s')", lid, card, f, status)
			lid++
		}
	}
	for i := 1; i <= 12; i++ {
		b.execf("INSERT INTO sets VALUES (%d, 'S%02d', 'Set %02d', '%04d-%02d-01', %d)",
			i, i, i, 2008+i, 1+b.rng.Intn(12), 100+b.rng.Intn(250))
	}

	b.doc(schema.TableDoc{
		Table: "cards", Description: "trading cards and their printed attributes",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique card identifier"},
			{Column: "name", FullName: "name", Description: "card name"},
			{Column: "manaCost", FullName: "mana cost", Description: "converted mana cost"},
			{Column: "isTextless", FullName: "is textless", Description: "whether the card has no text box",
				ValueMap: map[string]string{"1": "textless card", "0": "card with a text box"}},
			{Column: "power", FullName: "power", Description: "creature power"},
			{Column: "types", FullName: "types", Description: "card type"},
			{Column: "rarity", FullName: "rarity", Description: "card rarity, lower-case (common, uncommon, rare, mythic)"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "legalities", Description: "per-format play legality of cards",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique row identifier"},
			{Column: "card_id", FullName: "card id", Description: "card the ruling applies to"},
			{Column: "format", FullName: "format", Description: "play format, lower-case"},
			{Column: "status", FullName: "status", Description: "legality status, capitalised",
				ValueMap: map[string]string{"Legal": "legal to play", "Restricted": "restricted to one copy", "Banned": "banned from play"}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "sets", Description: "card set releases",
		Columns: []schema.ColumnDoc{
			{Column: "id", FullName: "id", Description: "unique set identifier"},
			{Column: "code", FullName: "code", Description: "set code"},
			{Column: "name", FullName: "name", Description: "set name"},
			{Column: "releaseDate", FullName: "release date", Description: "release date in YYYY-MM-DD format"},
			{Column: "totalSetSize", FullName: "total set size", Description: "number of cards in the set"},
		},
	})

	// --- Question templates ---

	// The Table I case-sensitivity flagship: restricted cards with text
	// boxes.
	for _, s := range []struct{ term, value string }{
		{"restricted", "Restricted"}, {"banned", "Banned"}, {"legal", "Legal"},
	} {
		b.add(
			fmt.Sprintf("How many cards of legalities whose status is %s have text boxes?", s.term),
			"SELECT COUNT(*) FROM cards JOIN legalities ON {{2}} WHERE legalities.status = {{0}} AND cards.isTextless = {{1}}",
			synonymAtom(s.term, "legalities", "status", s.value, s.term),
			textBoxAtom(),
			joinAtom("legalities", "card_id", "cards", "id"),
		)
		for _, f := range formats {
			b.add(
				fmt.Sprintf("How many cards are %s in the %s format?", s.term, f),
				"SELECT COUNT(*) FROM legalities WHERE format = '"+f+"' AND status = {{0}}",
				synonymAtom(s.term, "legalities", "status", s.value, s.term),
			)
		}
	}

	// Rarity + type combinations, no coded knowledge (values are
	// lower-case and literal).
	for _, r := range rarities {
		b.add(
			fmt.Sprintf("How many %s cards are there?", r),
			"SELECT COUNT(*) FROM cards WHERE rarity = '"+r+"'",
		)
	}
	for _, ty := range types[:3] {
		for _, p := range []int{4, 6, 8} {
			b.add(
				fmt.Sprintf("List the names of %s cards with power greater than %d.", lowerFirst(ty), p),
				fmt.Sprintf("SELECT name FROM cards WHERE types = {{0}} AND power > %d ORDER BY name", p),
				synonymAtom(lowerFirst(ty)+" cards", "cards", "types", ty, lowerFirst(ty)),
			)
		}
	}

	// Textless flag read both ways.
	b.add(
		"How many textless cards are there?",
		"SELECT COUNT(*) FROM cards WHERE isTextless = {{0}}",
		flagAtom("textless cards", "cards", "isTextless"),
	)
	b.add(
		"What is the average mana cost of cards that have text boxes?",
		"SELECT AVG(manaCost) FROM cards WHERE isTextless = {{0}}",
		textBoxAtom(),
	)

	// Release-date questions over sets (date knowledge).
	for _, y := range []int{2010, 2012, 2014, 2016} {
		b.add(
			fmt.Sprintf("How many sets were released after %d?", y),
			fmt.Sprintf("SELECT COUNT(*) FROM sets WHERE {{0}} > '%d'", y),
			formulaAtom("released in the year", "STRFTIME('%Y', releaseDate)", "releaseDate"),
		)
	}
	b.add(
		"Which set has the largest total set size?",
		"SELECT name FROM sets ORDER BY totalSetSize DESC LIMIT 1",
	)
	for _, n := range []int{150, 200, 250} {
		b.add(
			fmt.Sprintf("List the set codes of sets with more than %d cards.", n),
			fmt.Sprintf("SELECT code FROM sets WHERE totalSetSize > %d ORDER BY code", n),
		)
	}

	train, dev := b.split()
	return b.db, train, dev
}

// textBoxAtom is the paper's inverse-flag example: "have text boxes refers
// to isTextless = 0".
func textBoxAtom() Atom {
	return Atom{
		Kind:         ValueMap,
		Term:         "have text boxes",
		Clause:       "have text boxes refers to isTextless = 0",
		CorrectFrag:  "0",
		WrongFrag:    "1",
		Guess:        0.25,
		Table:        "cards",
		Column:       "isTextless",
		Value:        "0",
		DocDerivable: true,
	}
}
