package dataset

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/llm"
)

// DefectType enumerates the evidence defect taxonomy the paper measured in
// the BIRD development set (Fig. 2 and Table I): 9.65% of pairs lack
// evidence entirely and 6.84% carry one of eight error types.
type DefectType int

// Defect types. DefectNone marks clean evidence.
const (
	DefectNone DefectType = iota
	DefectMissing
	DefectIncorrectCalc
	DefectTypo
	DefectUnnecessary
	DefectCaseSensitivity
	DefectDateFormat
	DefectSchemaSelection
	DefectValueMapping
	DefectComparisonOp
)

// String names the defect as the paper does.
func (d DefectType) String() string {
	switch d {
	case DefectNone:
		return "none"
	case DefectMissing:
		return "missing evidence"
	case DefectIncorrectCalc:
		return "incorrect calculation"
	case DefectTypo:
		return "typo"
	case DefectUnnecessary:
		return "unnecessary information"
	case DefectCaseSensitivity:
		return "case-sensitivity issue"
	case DefectDateFormat:
		return "invalid date format"
	case DefectSchemaSelection:
		return "incorrect schema selection"
	case DefectValueMapping:
		return "invalid value mapping"
	case DefectComparisonOp:
		return "comparison operator misuse"
	default:
		return fmt.Sprintf("DefectType(%d)", int(d))
	}
}

// ErroneousTypes lists the eight error types (everything except none and
// missing), in the order the defect injector cycles through them.
func ErroneousTypes() []DefectType {
	return []DefectType{
		DefectIncorrectCalc, DefectTypo, DefectUnnecessary,
		DefectCaseSensitivity, DefectDateFormat, DefectSchemaSelection,
		DefectValueMapping, DefectComparisonOp,
	}
}

// Paper-measured defect rates on the BIRD dev set (1,534 pairs: 148
// missing, 105 erroneous).
const (
	MissingRate   = 0.0965
	ErroneousRate = 0.0684
)

// InjectDefects corrupts the Evidence field of dev examples in place so
// that the split reproduces the paper's measured defect rates exactly
// (quota-based: round(rate x len(dev)) examples per bucket, like the
// paper's census of 148 missing and 105 erroneous out of 1,534). Injection
// is deterministic for a given seed. Examples whose evidence cannot host a
// requested error type fall back to the next applicable type.
func InjectDefects(dev []Example, seed uint64) {
	rng := llm.NewRand(seed)
	var eligible []int
	for i := range dev {
		dev[i].Defect = DefectNone
		dev[i].Evidence = dev[i].CleanEvidence
		if dev[i].CleanEvidence != "" {
			eligible = append(eligible, i)
		}
	}
	// Deterministic Fisher-Yates shuffle of the eligible indices.
	for i := len(eligible) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	missingTarget := int(math.Round(MissingRate * float64(len(dev))))
	errTarget := int(math.Round(ErroneousRate * float64(len(dev))))

	idx := 0
	for n := 0; n < missingTarget && idx < len(eligible); n++ {
		e := &dev[eligible[idx]]
		idx++
		e.Defect = DefectMissing
		e.Evidence = ""
	}
	types := ErroneousTypes()
	typeIdx := 0
	applied := 0
	for applied < errTarget && idx < len(eligible) {
		e := &dev[eligible[idx]]
		idx++
		for tries := 0; tries < len(types); tries++ {
			dt := types[typeIdx%len(types)]
			typeIdx++
			if corrupted, ok := applyDefect(e, dt, rng); ok {
				e.Defect = dt
				e.Evidence = corrupted
				applied++
				break
			}
		}
	}
}

// applyDefect produces a corrupted variant of e's clean evidence for the
// given defect type, or reports that the type does not apply.
func applyDefect(e *Example, dt DefectType, rng *llm.Rand) (string, bool) {
	ev := e.CleanEvidence
	if ev == "" {
		return "", false
	}
	switch dt {
	case DefectCaseSensitivity:
		// Flip the case of a quoted value literal: 'Restricted' ->
		// 'restricted'. Only applies when some quoted alphabetic literal
		// exists and case actually changes.
		return flipQuotedCase(ev)
	case DefectTypo:
		return injectTypo(ev, rng)
	case DefectUnnecessary:
		// Append a pile of irrelevant mapping clauses, like the element
		// list in the paper's Table I example.
		extra := "; element = 'cl' means Chlorine; element = 'c' means Carbon; element = 'h' means Hydrogen; element = 'o' means Oxygen; element = 's' means Sulfur; element = 'n' means Nitrogen; element = 'p' means Phosphorus; element = 'na' means Sodium"
		return ev + extra, true
	case DefectIncorrectCalc:
		// Swap an arithmetic operator inside a formula clause.
		for _, sub := range []struct{ from, to string }{{" / ", " * "}, {" * ", " / "}, {" + ", " - "}, {" - ", " + "}} {
			if strings.Contains(ev, sub.from) {
				return strings.Replace(ev, sub.from, sub.to, 1), true
			}
		}
		return "", false
	case DefectDateFormat:
		// Rewrite an ISO date literal to a slash format the engine's
		// STRFTIME and comparisons will not match.
		return reformatDate(ev)
	case DefectSchemaSelection:
		// Point a clause at the wrong column using the atom's WrongFrag.
		for _, a := range e.Atoms {
			if a.Kind == ColumnRef || a.Kind == Threshold {
				continue
			}
			if a.Clause != "" && a.Column != "" && strings.Contains(ev, a.CorrectFrag) {
				wrong := strings.Replace(a.CorrectFrag, a.Column, wrongColumnName(a.Column), 1)
				if wrong != a.CorrectFrag {
					return strings.Replace(ev, a.CorrectFrag, wrong, 1), true
				}
			}
		}
		return "", false
	case DefectValueMapping:
		// Replace a quoted value with a different (wrong) literal.
		for _, a := range e.Atoms {
			if a.Value == "" || !strings.Contains(ev, "'"+a.Value+"'") {
				continue
			}
			return strings.Replace(ev, "'"+a.Value+"'", "'"+scrambleValue(a.Value)+"'", 1), true
		}
		return "", false
	case DefectComparisonOp:
		for _, sub := range []struct{ from, to string }{{" >= ", " <= "}, {" <= ", " >= "}, {" > ", " < "}, {" < ", " > "}} {
			if strings.Contains(ev, sub.from) {
				return strings.Replace(ev, sub.from, sub.to, 1), true
			}
		}
		return "", false
	}
	return "", false
}

func flipQuotedCase(ev string) (string, bool) {
	i := strings.Index(ev, "'")
	for i >= 0 {
		j := strings.Index(ev[i+1:], "'")
		if j < 0 {
			break
		}
		val := ev[i+1 : i+1+j]
		if hasLetter(val) {
			var flipped string
			if val == strings.ToLower(val) {
				flipped = strings.ToUpper(val[:1]) + val[1:]
			} else {
				flipped = strings.ToLower(val)
			}
			if flipped != val {
				return ev[:i+1] + flipped + ev[i+1+j:], true
			}
		}
		next := strings.Index(ev[i+1+j+1:], "'")
		if next < 0 {
			break
		}
		i = i + 1 + j + 1 + next
	}
	return "", false
}

func injectTypo(ev string, rng *llm.Rand) (string, bool) {
	words := strings.Fields(ev)
	// Find a reasonably long bare word to corrupt.
	for attempt := 0; attempt < 8; attempt++ {
		idx := rng.Intn(len(words))
		w := words[idx]
		if len(w) >= 5 && hasLetter(w) && !strings.ContainsAny(w, "'\"=<>") {
			pos := 1 + rng.Intn(len(w)-2)
			words[idx] = w[:pos] + w[pos+1:] // drop a letter
			return strings.Join(words, " "), true
		}
	}
	return "", false
}

func reformatDate(ev string) (string, bool) {
	// Find YYYY-MM-DD inside quotes and flip to MM/DD/YYYY.
	for i := 0; i+12 <= len(ev); i++ {
		if ev[i] == '\'' && i+11 < len(ev) && ev[i+11] == '\'' {
			d := ev[i+1 : i+11]
			if len(d) == 10 && d[4] == '-' && d[7] == '-' && allDigits(d[:4]) && allDigits(d[5:7]) && allDigits(d[8:10]) {
				reformatted := d[5:7] + "/" + d[8:10] + "/" + d[:4]
				return ev[:i+1] + reformatted + ev[i+11:], true
			}
		}
	}
	return "", false
}

func wrongColumnName(col string) string {
	// A neighbouring-sounding but wrong column, mirroring the paper's
	// "full name" vs "superhero name" confusion.
	switch {
	case strings.Contains(strings.ToLower(col), "name"):
		return "id"
	case strings.HasSuffix(col, "_id"):
		return strings.TrimSuffix(col, "_id")
	default:
		return col + "_id"
	}
}

func scrambleValue(v string) string {
	if len(v) <= 1 {
		return v + "X"
	}
	// Swap first two characters; if that is a no-op, append a marker.
	if v[0] != v[1] {
		return string(v[1]) + string(v[0]) + v[2:]
	}
	return v + "X"
}

func hasLetter(s string) bool {
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			return true
		}
	}
	return false
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// AuditDefects tallies the defect distribution of a dev split, reproducing
// the Fig. 2 census.
func AuditDefects(dev []Example) map[DefectType]int {
	out := make(map[DefectType]int)
	for _, e := range dev {
		out[e.Defect]++
	}
	return out
}
