package dataset

import (
	"fmt"

	"repro/internal/schema"
)

// buildDebitCard constructs the synthetic counterpart of BIRD's
// `debit_card_specializing` database: customer segments stored as cryptic
// codes (SME/LAM/KAM), currencies, and gas-station transactions.
func buildDebitCard(seed uint64) (*schema.DB, []Example, []Example) {
	b := newBuilder("debit_card_specializing", seed)

	b.exec(`CREATE TABLE customers (
		CustomerID INTEGER PRIMARY KEY,
		Segment TEXT,
		Currency TEXT
	)`)
	b.exec(`CREATE TABLE gasstations (
		GasStationID INTEGER PRIMARY KEY,
		ChainID INTEGER,
		Country TEXT,
		Segment TEXT
	)`)
	b.exec(`CREATE TABLE products (
		ProductID INTEGER PRIMARY KEY,
		Description TEXT
	)`)
	b.exec(`CREATE TABLE transactions_1k (
		TransactionID INTEGER PRIMARY KEY,
		CustomerID INTEGER,
		GasStationID INTEGER,
		ProductID INTEGER,
		TxDate TEXT,
		Amount INTEGER,
		Price REAL,
		FOREIGN KEY (CustomerID) REFERENCES customers(CustomerID),
		FOREIGN KEY (GasStationID) REFERENCES gasstations(GasStationID),
		FOREIGN KEY (ProductID) REFERENCES products(ProductID)
	)`)

	segments := []string{"SME", "LAM", "KAM"}
	currencies := []string{"CZK", "EUR"}
	for c := 1; c <= 100; c++ {
		b.execf("INSERT INTO customers VALUES (%d, '%s', '%s')",
			c, segments[b.rng.Intn(3)], currencies[b.rng.Intn(2)])
	}
	countries := []string{"CZE", "SVK", "AUT"}
	stationSegs := []string{"Value for money", "Premium", "Other"}
	for g := 1; g <= 40; g++ {
		b.execf("INSERT INTO gasstations VALUES (%d, %d, '%s', '%s')",
			g, 1+b.rng.Intn(8), countries[b.rng.Intn(3)], stationSegs[b.rng.Intn(3)])
	}
	prods := []string{"Unleaded 95", "Diesel", "Premium petrol", "LPG", "Car wash", "Motor oil"}
	for p, d := range prods {
		b.execf("INSERT INTO products VALUES (%d, '%s')", p+1, d)
	}
	for t := 1; t <= 300; t++ {
		b.execf("INSERT INTO transactions_1k VALUES (%d, %d, %d, %d, '%04d-%02d-%02d', %d, %0.2f)",
			t, 1+b.rng.Intn(100), 1+b.rng.Intn(40), 1+b.rng.Intn(len(prods)),
			2012+b.rng.Intn(2), 1+b.rng.Intn(12), 1+b.rng.Intn(28),
			1+b.rng.Intn(60), 10+b.rng.Float64()*40)
	}

	b.doc(schema.TableDoc{
		Table: "customers", Description: "debit card customers",
		Columns: []schema.ColumnDoc{
			{Column: "CustomerID", FullName: "customer id", Description: "unique customer identifier"},
			{Column: "Segment", FullName: "client segment", Description: "customer business segment",
				ValueMap: map[string]string{
					"SME": "small and medium enterprise",
					"LAM": "large account management customer",
					"KAM": "key account management customer",
				}},
			{Column: "Currency", FullName: "currency", Description: "billing currency",
				ValueMap: map[string]string{"CZK": "Czech koruna", "EUR": "euro"}},
		},
	})
	b.doc(schema.TableDoc{
		Table: "gasstations", Description: "partner gas stations",
		Columns: []schema.ColumnDoc{
			{Column: "GasStationID", FullName: "gas station id", Description: "unique station identifier"},
			{Column: "ChainID", FullName: "chain id", Description: "chain the station belongs to"},
			{Column: "Country", FullName: "country", Description: "three-letter country code",
				ValueMap: map[string]string{"CZE": "Czech Republic", "SVK": "Slovakia", "AUT": "Austria"}},
			{Column: "Segment", FullName: "segment", Description: "station positioning segment"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "products", Description: "products sold at stations",
		Columns: []schema.ColumnDoc{
			{Column: "ProductID", FullName: "product id", Description: "unique product identifier"},
			{Column: "Description", FullName: "description", Description: "product name"},
		},
	})
	b.doc(schema.TableDoc{
		Table: "transactions_1k", Description: "sampled card transactions",
		Columns: []schema.ColumnDoc{
			{Column: "TransactionID", FullName: "transaction id", Description: "unique transaction identifier"},
			{Column: "CustomerID", FullName: "customer id", Description: "purchasing customer"},
			{Column: "GasStationID", FullName: "gas station id", Description: "station of purchase"},
			{Column: "ProductID", FullName: "product id", Description: "purchased product"},
			{Column: "TxDate", FullName: "transaction date", Description: "date in YYYY-MM-DD format"},
			{Column: "Amount", FullName: "amount", Description: "quantity purchased"},
			{Column: "Price", FullName: "price", Description: "total price paid",
				Range: "unit price = Price / Amount"},
		},
	})

	// --- Question templates ---

	segTerms := []struct{ term, code string }{
		{"small and medium enterprise customers", "SME"},
		{"large account management customers", "LAM"},
		{"key account management customers", "KAM"},
	}
	for _, st := range segTerms {
		b.add(
			fmt.Sprintf("How many %s are there?", st.term),
			"SELECT COUNT(*) FROM customers WHERE Segment = {{0}}",
			valueMapAtom(st.term, "customers", "Segment", st.code, firstWord(st.term)),
		)
		for _, cur := range []struct{ term, code string }{{"euros", "EUR"}, {"Czech koruna", "CZK"}} {
			b.add(
				fmt.Sprintf("How many %s pay in %s?", st.term, cur.term),
				"SELECT COUNT(*) FROM customers WHERE Segment = {{0}} AND Currency = {{1}}",
				valueMapAtom(st.term, "customers", "Segment", st.code, firstWord(st.term)),
				valueMapAtom(cur.term, "customers", "Currency", cur.code, firstWord(cur.term)),
			)
		}
	}

	countryTerms := []struct{ term, code string }{
		{"the Czech Republic", "CZE"}, {"Slovakia", "SVK"}, {"Austria", "AUT"},
	}
	for _, ct := range countryTerms {
		b.add(
			fmt.Sprintf("How many gas stations are there in %s?", ct.term),
			"SELECT COUNT(*) FROM gasstations WHERE Country = {{0}}",
			valueMapAtom(ct.term, "gasstations", "Country", ct.code, firstWord(trimThe(ct.term))),
		)
		b.add(
			fmt.Sprintf("How many transactions were made at gas stations in %s?", ct.term),
			"SELECT COUNT(*) FROM transactions_1k JOIN gasstations ON {{1}} WHERE gasstations.Country = {{0}}",
			valueMapAtom(ct.term, "gasstations", "Country", ct.code, firstWord(trimThe(ct.term))),
			joinAtom("transactions_1k", "GasStationID", "gasstations", "GasStationID"),
		)
	}

	// Unit-price formula.
	for _, p := range []int{1, 2, 3} {
		b.add(
			fmt.Sprintf("How many transactions have a unit price above %d?", p),
			fmt.Sprintf("SELECT COUNT(*) FROM transactions_1k WHERE {{0}} > %d", p),
			formulaAtom("unit price", "Price / Amount", "Price"),
		)
	}

	// Product-name value binding resolved by fuzzy sampling.
	for _, pr := range []struct{ term, value string }{
		{"unleaded petrol", "Unleaded 95"}, {"diesel", "Diesel"}, {"car washes", "Car wash"},
	} {
		b.add(
			fmt.Sprintf("How many transactions bought %s?", pr.term),
			"SELECT COUNT(*) FROM transactions_1k JOIN products ON {{1}} WHERE products.Description = {{0}}",
			synonymAtom(pr.term, "products", "Description", pr.value, firstWord(pr.term)),
			joinAtom("transactions_1k", "ProductID", "products", "ProductID"),
		)
	}

	// Date-bounded questions and plain structure.
	for _, d := range []string{"2012-06-01", "2012-09-15", "2013-03-01"} {
		b.add(
			fmt.Sprintf("How many transactions happened before %s?", d),
			"SELECT COUNT(*) FROM transactions_1k WHERE TxDate < {{0}}",
			dateAtom("happened before", "transactions_1k", "TxDate", d),
		)
	}
	b.add(
		"Which customer made the most transactions?",
		"SELECT CustomerID FROM transactions_1k GROUP BY CustomerID ORDER BY COUNT(*) DESC, CustomerID LIMIT 1",
	)
	for _, n := range []int{40, 50} {
		b.add(
			fmt.Sprintf("List the transaction ids with an amount over %d.", n),
			fmt.Sprintf("SELECT TransactionID FROM transactions_1k WHERE Amount > %d ORDER BY TransactionID", n),
		)
	}

	train, dev := b.split()
	return b.db, train, dev
}

func trimThe(s string) string {
	if len(s) > 4 && s[:4] == "the " {
		return s[4:]
	}
	return s
}
