package dataset

import (
	"repro/internal/schema"
)

// BIRDOptions tunes BIRD corpus generation.
type BIRDOptions struct {
	// Seed drives all pseudo-random choices (data population, defect
	// injection). Corpora built from equal seeds are identical.
	Seed uint64
	// CleanDev skips defect injection, leaving dev evidence pristine.
	// The defect-correction experiment (Table II) builds both variants.
	CleanDev bool
}

// BuildBIRD generates the full synthetic BIRD corpus: eight databases
// with description files, a train split with clean evidence, and a dev
// split whose evidence carries the paper-measured defect rates (Fig. 2)
// unless CleanDev is set.
func BuildBIRD(opt BIRDOptions) *Corpus {
	c := &Corpus{Name: "bird", DBs: make(map[string]*schema.DB)}
	type buildFunc func(seed uint64) (*schema.DB, []Example, []Example)
	builders := []buildFunc{
		buildFinancial,
		buildSchools,
		buildSuperhero,
		buildCardGames,
		buildToxicology,
		buildThrombosis,
		buildDebitCard,
		buildStudentClub,
	}
	for i, build := range builders {
		db, train, dev := build(opt.Seed + uint64(i)*1000)
		c.DBs[db.Name] = db
		c.Train = append(c.Train, train...)
		c.Dev = append(c.Dev, dev...)
	}
	if !opt.CleanDev {
		InjectDefects(c.Dev, opt.Seed+77)
	}
	return c
}
