package dataset

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sqlengine"
)

var (
	cachedBIRD     *Corpus
	cachedBIRDOnce sync.Once
)

// buildTestBIRD returns a shared corpus: construction executes every gold
// query, so tests reuse one build. Tests must not mutate it.
func buildTestBIRD(t *testing.T) *Corpus {
	t.Helper()
	cachedBIRDOnce.Do(func() { cachedBIRD = BuildBIRD(BIRDOptions{Seed: 7}) })
	return cachedBIRD
}

func TestBIRDCorpusShape(t *testing.T) {
	c := buildTestBIRD(t)
	if len(c.DBs) != 8 {
		t.Errorf("BIRD DBs = %d, want 8", len(c.DBs))
	}
	if len(c.Train) == 0 || len(c.Dev) == 0 {
		t.Fatalf("empty splits: train=%d dev=%d", len(c.Train), len(c.Dev))
	}
	t.Logf("BIRD train=%d dev=%d", len(c.Train), len(c.Dev))
	// Every database referenced by an example must exist.
	for _, e := range append(append([]Example{}, c.Train...), c.Dev...) {
		if _, ok := c.DB(e.DB); !ok {
			t.Fatalf("example %s references unknown DB %s", e.ID, e.DB)
		}
	}
}

func TestBIRDGoldSQLExecutes(t *testing.T) {
	c := buildTestBIRD(t)
	for _, e := range append(append([]Example{}, c.Train...), c.Dev...) {
		db := c.DBs[e.DB]
		if _, err := db.Engine.Exec(e.GoldSQL); err != nil {
			t.Fatalf("gold SQL of %s fails: %v\n%s", e.ID, err, e.GoldSQL)
		}
	}
}

func TestBIRDCorruptSQLDiffers(t *testing.T) {
	c := buildTestBIRD(t)
	for _, e := range c.Dev {
		if e.CorruptSQL == e.GoldSQL {
			t.Errorf("corrupt variant identical to gold for %s", e.ID)
		}
	}
}

func TestBIRDDeterministic(t *testing.T) {
	a := BuildBIRD(BIRDOptions{Seed: 7})
	b := BuildBIRD(BIRDOptions{Seed: 7})
	if len(a.Dev) != len(b.Dev) {
		t.Fatalf("dev sizes differ: %d vs %d", len(a.Dev), len(b.Dev))
	}
	for i := range a.Dev {
		if a.Dev[i].Question != b.Dev[i].Question || a.Dev[i].Evidence != b.Dev[i].Evidence {
			t.Fatalf("example %d differs between equal-seed builds", i)
		}
	}
}

func TestWrongFragsChangeResults(t *testing.T) {
	// For a healthy majority of atoms, substituting the wrong fragment
	// must change execution results (or fail); otherwise evidence cannot
	// matter. Perfect separation is not required — a wrong threshold can
	// coincide on sparse data — but it should be rare.
	c := buildTestBIRD(t)
	checked, diverged := 0, 0
	for _, e := range c.Dev {
		if len(e.Atoms) == 0 {
			continue
		}
		db := c.DBs[e.DB]
		gold, err := db.Engine.Query(e.GoldSQL)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.Atoms {
			frags := CorrectFrags(e.Atoms)
			frags[i] = e.Atoms[i].WrongFrag
			sql, err := RenderSQL(e.SQLTemplate, frags)
			if err != nil {
				t.Fatal(err)
			}
			checked++
			wrong, err := db.Engine.Query(sql)
			if err != nil || !sameRows(gold, wrong) {
				diverged++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no atoms checked")
	}
	ratio := float64(diverged) / float64(checked)
	t.Logf("wrong-frag divergence: %d/%d (%.1f%%)", diverged, checked, 100*ratio)
	// Some coincidences (0 == 0 counts on sparse slices) are expected and
	// realistic; a large majority must still diverge for evidence to
	// matter.
	if ratio < 0.70 {
		t.Errorf("only %.1f%% of wrong fragments change results; evidence would barely matter", 100*ratio)
	}
}

func sameRows(a, b *sqlengine.Rows) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	counts := make(map[string]int)
	key := func(r []sqlengine.Value) string {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.Key())
			sb.WriteByte(0)
		}
		return sb.String()
	}
	for _, r := range a.Data {
		counts[key(r)]++
	}
	for _, r := range b.Data {
		counts[key(r)]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestDefectRates(t *testing.T) {
	c := buildTestBIRD(t)
	audit := AuditDefects(c.Dev)
	total := len(c.Dev)
	missing := float64(audit[DefectMissing]) / float64(total)
	var erroneous int
	for _, dt := range ErroneousTypes() {
		erroneous += audit[dt]
	}
	errRate := float64(erroneous) / float64(total)
	t.Logf("defects: missing=%.2f%% erroneous=%.2f%% of %d", 100*missing, 100*errRate, total)
	if missing < 0.06 || missing > 0.14 {
		t.Errorf("missing rate %.3f outside tolerance of paper's 0.0965", missing)
	}
	if errRate < 0.04 || errRate > 0.10 {
		t.Errorf("erroneous rate %.3f outside tolerance of paper's 0.0684", errRate)
	}
}

func TestDefectiveEvidenceDiffersFromClean(t *testing.T) {
	c := buildTestBIRD(t)
	for _, e := range c.Dev {
		switch e.Defect {
		case DefectNone:
			if e.Evidence != e.CleanEvidence {
				t.Errorf("%s: clean example has altered evidence", e.ID)
			}
		case DefectMissing:
			if e.Evidence != "" {
				t.Errorf("%s: missing-defect example still has evidence", e.ID)
			}
		default:
			if e.Evidence == e.CleanEvidence || e.Evidence == "" {
				t.Errorf("%s: %v defect did not alter evidence (%q)", e.ID, e.Defect, e.Evidence)
			}
		}
	}
}

func TestCleanDevOption(t *testing.T) {
	c := BuildBIRD(BIRDOptions{Seed: 7, CleanDev: true})
	for _, e := range c.Dev {
		if e.Defect != DefectNone || e.Evidence != e.CleanEvidence {
			t.Fatalf("CleanDev build has defect %v on %s", e.Defect, e.ID)
		}
	}
}

func TestSpiderCorpusShape(t *testing.T) {
	c := BuildSpider(7)
	if len(c.DBs) != 4 {
		t.Errorf("Spider DBs = %d, want 4", len(c.DBs))
	}
	if len(c.Test) == 0 {
		t.Error("Spider must have a test split")
	}
	t.Logf("Spider train=%d dev=%d test=%d", len(c.Train), len(c.Dev), len(c.Test))
	for _, e := range append(append([]Example{}, c.Dev...), c.Test...) {
		if e.Evidence != "" {
			t.Fatalf("Spider example %s ships evidence", e.ID)
		}
	}
	for _, db := range c.DBs {
		if db.HasDescriptions() {
			t.Errorf("Spider DB %s ships description files", db.Name)
		}
	}
	for _, e := range append(append(append([]Example{}, c.Train...), c.Dev...), c.Test...) {
		db := c.DBs[e.DB]
		if _, err := db.Engine.Exec(e.GoldSQL); err != nil {
			t.Fatalf("gold SQL of %s fails: %v", e.ID, err)
		}
	}
}

func TestBIRDHasDescriptions(t *testing.T) {
	c := buildTestBIRD(t)
	for name, db := range c.DBs {
		if !db.HasDescriptions() {
			t.Errorf("BIRD DB %s lacks description files", name)
		}
	}
}

func TestAtomCategoriesPresent(t *testing.T) {
	// The corpus must exercise all four BIRD knowledge categories plus
	// joins, or the experiments cannot reproduce the paper's breakdowns.
	c := buildTestBIRD(t)
	seen := make(map[AtomKind]int)
	for _, e := range c.Dev {
		for _, a := range e.Atoms {
			seen[a.Kind]++
		}
	}
	for _, k := range []AtomKind{ValueMap, Synonym, Threshold, Formula, ColumnRef, JoinPath} {
		if seen[k] == 0 {
			t.Errorf("no %v atoms in dev split", k)
		}
	}
	t.Logf("atom census: %v", seen)
}

func TestTrainSiblingsExist(t *testing.T) {
	// Few-shot selection needs same-DB training questions; every dev
	// example's database must appear in train.
	c := buildTestBIRD(t)
	trainByDB := c.TrainByDB()
	for _, e := range c.Dev {
		if len(trainByDB[e.DB]) == 0 {
			t.Fatalf("dev example %s has no train siblings in DB %s", e.ID, e.DB)
		}
	}
}

func TestRenderSQLErrors(t *testing.T) {
	if _, err := RenderSQL("SELECT {{0}}", []string{"a", "b"}); err == nil {
		t.Error("extra fragment should error")
	}
	if _, err := RenderSQL("SELECT {{0}} {{1}}", []string{"a"}); err == nil {
		t.Error("unfilled slot should error")
	}
	out, err := RenderSQL("SELECT {{0}} FROM t WHERE x = {{1}}", []string{"a", "'v'"})
	if err != nil || out != "SELECT a FROM t WHERE x = 'v'" {
		t.Errorf("RenderSQL = %q, %v", out, err)
	}
}
