package bm25

import (
	"testing"
	"testing/quick"
)

var corpus = []string{
	"POPLATEK TYDNE weekly issuance",
	"POPLATEK MESICNE monthly issuance",
	"POPLATEK PO OBRATU issuance after transaction",
	"Alameda county school district",
	"magnet school program",
}

func TestTopKRanksRelevantFirst(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("weekly issuance", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Index != 0 {
		t.Errorf("weekly doc should rank first, got %d", res[0].Index)
	}
}

func TestTopKOmitsZeroScores(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("zzzz qqqq", 5)
	if len(res) != 0 {
		t.Errorf("nonsense query should match nothing, got %v", res)
	}
}

func TestTopKRespectsK(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("issuance", 2)
	if len(res) > 2 {
		t.Errorf("k=2 returned %d results", len(res))
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil)
	if idx.Len() != 0 {
		t.Error("empty index length")
	}
	if res := idx.TopK("anything", 3); len(res) != 0 {
		t.Errorf("empty index returned %v", res)
	}
}

func TestScoreMonotonicInTermMatches(t *testing.T) {
	idx := New(corpus)
	one := idx.Score("weekly", 0)
	two := idx.Score("weekly issuance", 0)
	if two <= one {
		t.Errorf("adding a matching term should not lower the score: %v -> %v", one, two)
	}
}

func TestStemmedMatching(t *testing.T) {
	idx := New([]string{"the school has many students"})
	res := idx.TopK("schools student", 1)
	if len(res) != 1 {
		t.Fatalf("stemmed query should match: %v", res)
	}
}

// Property: scores are non-negative and TopK is sorted descending.
func TestScoreProperties(t *testing.T) {
	idx := New(corpus)
	f := func(q string) bool {
		res := idx.TopK(q, -1)
		prev := -1.0
		for i, r := range res {
			if r.Score < 0 {
				return false
			}
			if i > 0 && r.Score > prev {
				return false
			}
			prev = r.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
