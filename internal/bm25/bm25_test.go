package bm25

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/textutil"
)

var corpus = []string{
	"POPLATEK TYDNE weekly issuance",
	"POPLATEK MESICNE monthly issuance",
	"POPLATEK PO OBRATU issuance after transaction",
	"Alameda county school district",
	"magnet school program",
}

func TestTopKRanksRelevantFirst(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("weekly issuance", 3)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if res[0].Index != 0 {
		t.Errorf("weekly doc should rank first, got %d", res[0].Index)
	}
}

func TestTopKOmitsZeroScores(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("zzzz qqqq", 5)
	if len(res) != 0 {
		t.Errorf("nonsense query should match nothing, got %v", res)
	}
}

func TestTopKRespectsK(t *testing.T) {
	idx := New(corpus)
	res := idx.TopK("issuance", 2)
	if len(res) > 2 {
		t.Errorf("k=2 returned %d results", len(res))
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil)
	if idx.Len() != 0 {
		t.Error("empty index length")
	}
	if res := idx.TopK("anything", 3); len(res) != 0 {
		t.Errorf("empty index returned %v", res)
	}
}

func TestScoreMonotonicInTermMatches(t *testing.T) {
	idx := New(corpus)
	one := idx.Score("weekly", 0)
	two := idx.Score("weekly issuance", 0)
	if two <= one {
		t.Errorf("adding a matching term should not lower the score: %v -> %v", one, two)
	}
}

func TestStemmedMatching(t *testing.T) {
	idx := New([]string{"the school has many students"})
	res := idx.TopK("schools student", 1)
	if len(res) != 1 {
		t.Fatalf("stemmed query should match: %v", res)
	}
}

// Property: scores are non-negative and TopK is sorted descending.
func TestScoreProperties(t *testing.T) {
	idx := New(corpus)
	f := func(q string) bool {
		res := idx.TopK(q, -1)
		prev := -1.0
		for i, r := range res {
			if r.Score < 0 {
				return false
			}
			if i > 0 && r.Score > prev {
				return false
			}
			prev = r.Score
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTopKHeapMatchesSort pins the bounded-heap selection against the
// full-sort oracle for every k on randomised document sets: same hits,
// same order, same scores.
func TestTopKHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	words := []string{"account", "loan", "status", "district", "client",
		"weekly", "monthly", "issuance", "gender", "school", "driver", "rate"}
	for trial := 0; trial < 25; trial++ {
		nDocs := 1 + rng.Intn(60)
		docs := make([]string, nDocs)
		for i := range docs {
			n := 2 + rng.Intn(8)
			parts := make([]string, n)
			for j := range parts {
				parts[j] = words[rng.Intn(len(words))]
			}
			docs[i] = strings.Join(parts, " ")
		}
		idx := New(docs)
		query := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		qToks := stemAll(textutil.Tokenize(query))
		for _, k := range []int{0, 1, 2, 5, nDocs, nDocs * 2, -1} {
			got := idx.TopK(query, k)
			want := idx.topKSorted(qToks, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: len %d vs %d", k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d pos %d: heap %v vs sort %v", k, i, got[i], want[i])
				}
			}
		}
	}
}

// BenchmarkTopK contrasts the bounded heap with the full sort over a large
// document set at the retrieval sizes the CodeS baseline uses (k=5).
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	words := []string{"account", "loan", "status", "district", "client",
		"weekly", "monthly", "issuance", "gender", "school", "driver", "rate",
		"payment", "duration", "owner", "branch", "region", "code"}
	docs := make([]string, 5000)
	for i := range docs {
		n := 3 + rng.Intn(10)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		docs[i] = strings.Join(parts, " ")
	}
	idx := New(docs)
	const query = "weekly issuance account district"
	qToks := stemAll(textutil.Tokenize(query))
	b.Run("heap-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.TopK(query, 5)
		}
	})
	b.Run("sort-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.topKSorted(qToks, 5)
		}
	})
}
