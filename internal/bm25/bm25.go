// Package bm25 implements Okapi BM25 ranked retrieval over small document
// collections. The CodeS baseline (paper §IV-C3) uses a BM25 index over
// database values and description text to ground its SQL generation; this
// package is that index.
package bm25

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/textutil"
)

// Standard Okapi BM25 parameters.
const (
	k1 = 1.5
	b  = 0.75
)

// Index is a BM25 inverted index. Build it with New and query with TopK.
type Index struct {
	docs     []string
	tokens   [][]string
	df       map[string]int
	avgLen   float64
	totalDoc int
}

// New builds an index over docs. Documents are tokenised and stemmed with
// the textutil pipeline.
func New(docs []string) *Index {
	idx := &Index{
		docs: docs,
		df:   make(map[string]int),
	}
	var totalLen int
	for _, d := range docs {
		toks := stemAll(textutil.Tokenize(d))
		idx.tokens = append(idx.tokens, toks)
		totalLen += len(toks)
		seen := make(map[string]bool)
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				idx.df[t]++
			}
		}
	}
	idx.totalDoc = len(docs)
	if idx.totalDoc > 0 {
		idx.avgLen = float64(totalLen) / float64(idx.totalDoc)
	}
	return idx
}

// Len returns the number of indexed documents.
func (idx *Index) Len() int { return idx.totalDoc }

// Doc returns document i.
func (idx *Index) Doc(i int) string { return idx.docs[i] }

// Score computes the BM25 score of query against document i.
func (idx *Index) Score(query string, i int) float64 {
	return idx.scoreTokens(stemAll(textutil.Tokenize(query)), i)
}

// scoreTokens scores document i against an already tokenised-and-stemmed
// query; TopK hoists the query processing out of its per-document loop.
func (idx *Index) scoreTokens(qToks []string, i int) float64 {
	tf := make(map[string]int)
	for _, t := range idx.tokens[i] {
		tf[t]++
	}
	dl := float64(len(idx.tokens[i]))
	var score float64
	for _, q := range qToks {
		f := float64(tf[q])
		if f == 0 {
			continue
		}
		df := float64(idx.df[q])
		idf := math.Log(1 + (float64(idx.totalDoc)-df+0.5)/(df+0.5))
		denom := f + k1*(1-b+b*dl/math.Max(idx.avgLen, 1e-9))
		score += idf * f * (k1 + 1) / denom
	}
	return score
}

// Result is one ranked retrieval hit.
type Result struct {
	Index int
	Score float64
}

// TopK returns the k highest-scoring documents for query, highest first.
// Zero-score documents are omitted; ties break by document index for
// determinism. A negative k returns every scoring document.
//
// Selection uses a bounded min-heap, so a top-k query over n documents is
// O(n log k) rather than the O(n log n) of sorting every hit; the result
// is identical to sorting (topKSorted is kept as the test oracle). The
// query is tokenised once for the whole pass, not once per document.
func (idx *Index) TopK(query string, k int) []Result {
	if k < 0 {
		return idx.topKSorted(stemAll(textutil.Tokenize(query)), k)
	}
	if k == 0 {
		return nil
	}
	qToks := stemAll(textutil.Tokenize(query))
	h := make(resultMinHeap, 0, k)
	for i := range idx.docs {
		s := idx.scoreTokens(qToks, i)
		if s <= 0 {
			continue
		}
		r := Result{Index: i, Score: s}
		if len(h) < k {
			heap.Push(&h, r)
			continue
		}
		// Replace the current worst only when r outranks it under the
		// (score desc, index asc) total order.
		if worse(h[0], r) {
			h[0] = r
			heap.Fix(&h, 0)
		}
	}
	results := []Result(h)
	sort.Slice(results, func(a, c int) bool { return worse(results[c], results[a]) })
	return results
}

// topKSorted is the full-sort selection path: score everything, sort, cut.
// It is the reference TopK must match and the fallback for k < 0.
func (idx *Index) topKSorted(qToks []string, k int) []Result {
	var results []Result
	for i := range idx.docs {
		s := idx.scoreTokens(qToks, i)
		if s > 0 {
			results = append(results, Result{Index: i, Score: s})
		}
	}
	sort.Slice(results, func(a, c int) bool { return worse(results[c], results[a]) })
	if k >= 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// worse reports whether a ranks strictly below b in the deterministic
// retrieval order: higher score first, lower index on ties.
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

// resultMinHeap keeps the current top-k with the worst-ranked result at the
// root, so one comparison decides whether a new document displaces it.
type resultMinHeap []Result

func (h resultMinHeap) Len() int            { return len(h) }
func (h resultMinHeap) Less(i, j int) bool  { return worse(h[i], h[j]) }
func (h resultMinHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultMinHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultMinHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func stemAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = textutil.Stem(t)
	}
	return out
}
