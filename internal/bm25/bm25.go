// Package bm25 implements Okapi BM25 ranked retrieval over small document
// collections. The CodeS baseline (paper §IV-C3) uses a BM25 index over
// database values and description text to ground its SQL generation; this
// package is that index.
package bm25

import (
	"math"
	"sort"

	"repro/internal/textutil"
)

// Standard Okapi BM25 parameters.
const (
	k1 = 1.5
	b  = 0.75
)

// Index is a BM25 inverted index. Build it with New and query with TopK.
type Index struct {
	docs     []string
	tokens   [][]string
	df       map[string]int
	avgLen   float64
	totalDoc int
}

// New builds an index over docs. Documents are tokenised and stemmed with
// the textutil pipeline.
func New(docs []string) *Index {
	idx := &Index{
		docs: docs,
		df:   make(map[string]int),
	}
	var totalLen int
	for _, d := range docs {
		toks := stemAll(textutil.Tokenize(d))
		idx.tokens = append(idx.tokens, toks)
		totalLen += len(toks)
		seen := make(map[string]bool)
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				idx.df[t]++
			}
		}
	}
	idx.totalDoc = len(docs)
	if idx.totalDoc > 0 {
		idx.avgLen = float64(totalLen) / float64(idx.totalDoc)
	}
	return idx
}

// Len returns the number of indexed documents.
func (idx *Index) Len() int { return idx.totalDoc }

// Doc returns document i.
func (idx *Index) Doc(i int) string { return idx.docs[i] }

// Score computes the BM25 score of query against document i.
func (idx *Index) Score(query string, i int) float64 {
	qToks := stemAll(textutil.Tokenize(query))
	tf := make(map[string]int)
	for _, t := range idx.tokens[i] {
		tf[t]++
	}
	dl := float64(len(idx.tokens[i]))
	var score float64
	for _, q := range qToks {
		f := float64(tf[q])
		if f == 0 {
			continue
		}
		df := float64(idx.df[q])
		idf := math.Log(1 + (float64(idx.totalDoc)-df+0.5)/(df+0.5))
		denom := f + k1*(1-b+b*dl/math.Max(idx.avgLen, 1e-9))
		score += idf * f * (k1 + 1) / denom
	}
	return score
}

// Result is one ranked retrieval hit.
type Result struct {
	Index int
	Score float64
}

// TopK returns the k highest-scoring documents for query, highest first.
// Zero-score documents are omitted; ties break by document index for
// determinism.
func (idx *Index) TopK(query string, k int) []Result {
	var results []Result
	for i := range idx.docs {
		s := idx.Score(query, i)
		if s > 0 {
			results = append(results, Result{Index: i, Score: s})
		}
	}
	sort.Slice(results, func(a, c int) bool {
		if results[a].Score != results[c].Score {
			return results[a].Score > results[c].Score
		}
		return results[a].Index < results[c].Index
	})
	if k >= 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

func stemAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = textutil.Stem(t)
	}
	return out
}
