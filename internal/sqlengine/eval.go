package sqlengine

import (
	"fmt"
	"math"
	"strings"
)

// evalEnv is the environment for expression evaluation: an execution
// context (for subqueries and cost), the current row scope, and — when
// evaluating grouped projections — the rows of the current group.
type evalEnv struct {
	ec    *execCtx
	sc    *scope
	group []*scope
}

func (env *evalEnv) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if x.Name == "*" {
			return Value{}, fmt.Errorf("sqlengine: %s.* is only valid inside COUNT()", x.Table)
		}
		return env.sc.resolve(x.Table, x.Name)
	case *Unary:
		return env.evalUnary(x)
	case *Binary:
		return env.evalBinary(x)
	case *FuncCall:
		if isAggregateCall(x) {
			return env.evalAggregate(x)
		}
		return env.evalScalarFunc(x)
	case *CaseExpr:
		return env.evalCase(x)
	case *InExpr:
		return env.evalIn(x)
	case *BetweenExpr:
		return env.evalBetween(x)
	case *LikeExpr:
		return env.evalLike(x)
	case *IsNullExpr:
		v, err := env.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		return Bool(v.IsNull() != x.Not), nil
	case *ExistsExpr:
		rows, err := env.execSub(x.Sub)
		if err != nil {
			return Value{}, err
		}
		return Bool((len(rows.Data) > 0) != x.Not), nil
	case *SubqueryExpr:
		rows, err := env.execSub(x.Sub)
		if err != nil {
			return Value{}, err
		}
		if len(rows.Data) == 0 || len(rows.Data[0]) == 0 {
			return Null(), nil
		}
		return rows.Data[0][0], nil
	case *CastExpr:
		v, err := env.eval(x.X)
		if err != nil {
			return Value{}, err
		}
		return evalCast(v, x.Type), nil
	default:
		return Value{}, fmt.Errorf("sqlengine: cannot evaluate expression %T", e)
	}
}

func (env *evalEnv) evalUnary(u *Unary) (Value, error) {
	v, err := env.eval(u.X)
	if err != nil {
		return Value{}, err
	}
	switch u.Op {
	case "-":
		if v.IsNull() {
			return Null(), nil
		}
		if v.Kind == KindInt {
			return Int(-v.I), nil
		}
		return Float(-v.AsFloat()), nil
	case "NOT":
		t, known := v.Truth()
		if !known {
			return Null(), nil
		}
		return Bool(!t), nil
	default:
		return Value{}, fmt.Errorf("sqlengine: unknown unary operator %q", u.Op)
	}
}

func (env *evalEnv) evalBinary(b *Binary) (Value, error) {
	// AND/OR need three-valued short-circuit logic.
	switch b.Op {
	case "AND":
		lv, err := env.eval(b.L)
		if err != nil {
			return Value{}, err
		}
		lt, lknown := lv.Truth()
		if lknown && !lt {
			return Bool(false), nil
		}
		rv, err := env.eval(b.R)
		if err != nil {
			return Value{}, err
		}
		rt, rknown := rv.Truth()
		if rknown && !rt {
			return Bool(false), nil
		}
		if !lknown || !rknown {
			return Null(), nil
		}
		return Bool(true), nil
	case "OR":
		lv, err := env.eval(b.L)
		if err != nil {
			return Value{}, err
		}
		lt, lknown := lv.Truth()
		if lknown && lt {
			return Bool(true), nil
		}
		rv, err := env.eval(b.R)
		if err != nil {
			return Value{}, err
		}
		rt, rknown := rv.Truth()
		if rknown && rt {
			return Bool(true), nil
		}
		if !lknown || !rknown {
			return Null(), nil
		}
		return Bool(false), nil
	}

	lv, err := env.eval(b.L)
	if err != nil {
		return Value{}, err
	}
	rv, err := env.eval(b.R)
	if err != nil {
		return Value{}, err
	}

	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		// Numeric/text affinity: comparing number with numeric-looking text
		// coerces the text side, mirroring SQLite column affinity in the
		// common predicate shapes our workloads use.
		lv, rv = harmonise(lv, rv)
		c := Compare(lv, rv)
		switch b.Op {
		case "=":
			return Bool(c == 0), nil
		case "!=":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "||":
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		return Text(lv.AsText() + rv.AsText()), nil
	case "+", "-", "*", "/", "%":
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		return evalArith(b.Op, lv, rv)
	default:
		return Value{}, fmt.Errorf("sqlengine: unknown binary operator %q", b.Op)
	}
}

// harmonise applies cross-kind coercion before comparison: when one side is
// numeric and the other is numeric-looking text, the text is coerced.
func harmonise(a, b Value) (Value, Value) {
	if a.IsNumeric() && b.Kind == KindText {
		if f, ok := numericText(b.S); ok {
			return a, Float(f)
		}
	}
	if b.IsNumeric() && a.Kind == KindText {
		if f, ok := numericText(a.S); ok {
			return Float(f), b
		}
	}
	return a, b
}

func evalArith(op string, l, r Value) (Value, error) {
	bothInt := l.Kind == KindInt && r.Kind == KindInt
	switch op {
	case "+":
		if bothInt {
			return Int(l.I + r.I), nil
		}
		return Float(l.AsFloat() + r.AsFloat()), nil
	case "-":
		if bothInt {
			return Int(l.I - r.I), nil
		}
		return Float(l.AsFloat() - r.AsFloat()), nil
	case "*":
		if bothInt {
			return Int(l.I * r.I), nil
		}
		return Float(l.AsFloat() * r.AsFloat()), nil
	case "/":
		if bothInt {
			if r.I == 0 {
				return Null(), nil
			}
			return Int(l.I / r.I), nil
		}
		rf := r.AsFloat()
		if rf == 0 {
			return Null(), nil
		}
		return Float(l.AsFloat() / rf), nil
	case "%":
		ri := r.AsInt()
		if ri == 0 {
			return Null(), nil
		}
		return Int(l.AsInt() % ri), nil
	}
	return Value{}, fmt.Errorf("sqlengine: unknown arithmetic operator %q", op)
}

func (env *evalEnv) evalCase(c *CaseExpr) (Value, error) {
	if c.Operand != nil {
		op, err := env.eval(c.Operand)
		if err != nil {
			return Value{}, err
		}
		for _, w := range c.Whens {
			wv, err := env.eval(w.When)
			if err != nil {
				return Value{}, err
			}
			if eq, known := Equal(op, wv); known && eq {
				return env.eval(w.Then)
			}
		}
	} else {
		for _, w := range c.Whens {
			wv, err := env.eval(w.When)
			if err != nil {
				return Value{}, err
			}
			if t, known := wv.Truth(); known && t {
				return env.eval(w.Then)
			}
		}
	}
	if c.Else != nil {
		return env.eval(c.Else)
	}
	return Null(), nil
}

func (env *evalEnv) evalIn(in *InExpr) (Value, error) {
	xv, err := env.eval(in.X)
	if err != nil {
		return Value{}, err
	}
	if xv.IsNull() {
		return Null(), nil
	}
	var candidates []Value
	if in.Sub != nil {
		rows, err := env.execSub(in.Sub)
		if err != nil {
			return Value{}, err
		}
		for _, r := range rows.Data {
			if len(r) > 0 {
				candidates = append(candidates, r[0])
			}
		}
	} else {
		for _, e := range in.List {
			v, err := env.eval(e)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, v)
		}
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		a, b := harmonise(xv, c)
		if Compare(a, b) == 0 {
			return Bool(!in.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(in.Not), nil
}

func (env *evalEnv) evalBetween(b *BetweenExpr) (Value, error) {
	xv, err := env.eval(b.X)
	if err != nil {
		return Value{}, err
	}
	lo, err := env.eval(b.Lo)
	if err != nil {
		return Value{}, err
	}
	hi, err := env.eval(b.Hi)
	if err != nil {
		return Value{}, err
	}
	if xv.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null(), nil
	}
	a1, b1 := harmonise(xv, lo)
	a2, b2 := harmonise(xv, hi)
	in := Compare(a1, b1) >= 0 && Compare(a2, b2) <= 0
	return Bool(in != b.Not), nil
}

func (env *evalEnv) evalLike(l *LikeExpr) (Value, error) {
	xv, err := env.eval(l.X)
	if err != nil {
		return Value{}, err
	}
	pv, err := env.eval(l.Pattern)
	if err != nil {
		return Value{}, err
	}
	if xv.IsNull() || pv.IsNull() {
		return Null(), nil
	}
	m := likeMatch(pv.AsText(), xv.AsText())
	return Bool(m != l.Not), nil
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' one character.
// Matching is ASCII-case-insensitive, as in SQLite's default LIKE.
func likeMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	return likeRec(p, t)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

func evalCast(v Value, typ string) Value {
	if v.IsNull() {
		return Null()
	}
	switch typ {
	case "INTEGER":
		return Int(v.AsInt())
	case "REAL":
		return Float(v.AsFloat())
	default:
		return Text(v.AsText())
	}
}

// --- Aggregates ---

func (env *evalEnv) evalAggregate(fc *FuncCall) (Value, error) {
	if env.group == nil {
		return Value{}, fmt.Errorf("sqlengine: misuse of aggregate function %s", fc.Name)
	}
	// Gather argument values over the group.
	var vals []Value
	if !fc.Star {
		if len(fc.Args) != 1 {
			return Value{}, fmt.Errorf("sqlengine: aggregate %s takes exactly one argument", fc.Name)
		}
		for _, rowScope := range env.group {
			child := &evalEnv{ec: env.ec, sc: rowScope}
			v, err := child.eval(fc.Args[0])
			if err != nil {
				return Value{}, err
			}
			vals = append(vals, v)
		}
		if fc.Distinct {
			seen := make(map[string]bool, len(vals))
			var uniq []Value
			for _, v := range vals {
				k := v.Key()
				if !seen[k] {
					seen[k] = true
					uniq = append(uniq, v)
				}
			}
			vals = uniq
		}
	}

	switch fc.Name {
	case "COUNT":
		if fc.Star {
			return Int(int64(len(env.group))), nil
		}
		var n int64
		for _, v := range vals {
			if !v.IsNull() {
				n++
			}
		}
		return Int(n), nil
	case "SUM", "TOTAL":
		anyVal := false
		allInt := true
		var fi int64
		var ff float64
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			anyVal = true
			if v.Kind == KindInt {
				fi += v.I
			} else {
				allInt = false
			}
			ff += v.AsFloat()
		}
		if !anyVal {
			if fc.Name == "TOTAL" {
				return Float(0), nil
			}
			return Null(), nil
		}
		if fc.Name == "TOTAL" {
			return Float(ff), nil
		}
		if allInt {
			return Int(fi), nil
		}
		return Float(ff), nil
	case "AVG":
		var sum float64
		var n int64
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			sum += v.AsFloat()
			n++
		}
		if n == 0 {
			return Null(), nil
		}
		return Float(sum / float64(n)), nil
	case "MIN", "MAX":
		var best Value
		have := false
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			if !have {
				best = v
				have = true
				continue
			}
			c := Compare(v, best)
			if (fc.Name == "MIN" && c < 0) || (fc.Name == "MAX" && c > 0) {
				best = v
			}
		}
		if !have {
			return Null(), nil
		}
		return best, nil
	case "GROUP_CONCAT":
		var parts []string
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			parts = append(parts, v.AsText())
		}
		if len(parts) == 0 {
			return Null(), nil
		}
		return Text(strings.Join(parts, ",")), nil
	}
	return Value{}, fmt.Errorf("sqlengine: unknown aggregate %s", fc.Name)
}

// --- Scalar functions ---

func (env *evalEnv) evalScalarFunc(fc *FuncCall) (Value, error) {
	args := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := env.eval(a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return callScalar(fc.Name, args)
}

func callScalar(name string, args []Value) (Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlengine: function %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ABS":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := args[0]
		if v.IsNull() {
			return Null(), nil
		}
		if v.Kind == KindInt {
			if v.I < 0 {
				return Int(-v.I), nil
			}
			return v, nil
		}
		return Float(math.Abs(v.AsFloat())), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return Value{}, fmt.Errorf("sqlengine: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		digits := int64(0)
		if len(args) == 2 {
			digits = args[1].AsInt()
		}
		mult := math.Pow(10, float64(digits))
		return Float(math.Round(args[0].AsFloat()*mult) / mult), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len([]rune(args[0].AsText())))), nil
	case "UPPER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].AsText())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].AsText())), nil
	case "TRIM":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.TrimSpace(args[0].AsText())), nil
	case "LTRIM":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Text(strings.TrimLeft(args[0].AsText(), " \t\r\n")), nil
	case "RTRIM":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Text(strings.TrimRight(args[0].AsText(), " \t\r\n")), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return Value{}, fmt.Errorf("sqlengine: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		s := []rune(args[0].AsText())
		start := args[1].AsInt()
		// SQLite 1-based indexing; negative counts from the end.
		if start < 0 {
			start = int64(len(s)) + start + 1
			if start < 1 {
				start = 1
			}
		}
		if start < 1 {
			start = 1
		}
		idx := int(start - 1)
		if idx >= len(s) {
			return Text(""), nil
		}
		end := len(s)
		if len(args) == 3 {
			n := int(args[2].AsInt())
			if n < 0 {
				n = 0
			}
			if idx+n < end {
				end = idx + n
			}
		}
		return Text(string(s[idx:end])), nil
	case "INSTR":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		return Int(int64(strings.Index(args[0].AsText(), args[1].AsText()) + 1)), nil
	case "REPLACE":
		if err := need(3); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ReplaceAll(args[0].AsText(), args[1].AsText(), args[2].AsText())), nil
	case "COALESCE":
		for _, v := range args {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	case "IFNULL":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if !args[0].IsNull() {
			return args[0], nil
		}
		return args[1], nil
	case "NULLIF":
		if err := need(2); err != nil {
			return Value{}, err
		}
		if eq, known := Equal(args[0], args[1]); known && eq {
			return Null(), nil
		}
		return args[0], nil
	case "IIF":
		if err := need(3); err != nil {
			return Value{}, err
		}
		if t, known := args[0].Truth(); known && t {
			return args[1], nil
		}
		return args[2], nil
	case "MIN", "MAX":
		// Scalar multi-argument form.
		if len(args) < 2 {
			return Value{}, fmt.Errorf("sqlengine: scalar %s needs at least 2 arguments", name)
		}
		best := args[0]
		for _, v := range args[1:] {
			if v.IsNull() || best.IsNull() {
				return Null(), nil
			}
			c := Compare(v, best)
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	case "TYPEOF":
		if err := need(1); err != nil {
			return Value{}, err
		}
		return Text(strings.ToLower(args[0].Kind.String())), nil
	case "STRFTIME":
		if err := need(2); err != nil {
			return Value{}, err
		}
		return evalStrftime(args[0].AsText(), args[1])
	case "DATE":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		d := args[0].AsText()
		if len(d) >= 10 {
			return Text(d[:10]), nil
		}
		return Text(d), nil
	case "CAST":
		return Value{}, fmt.Errorf("sqlengine: CAST requires AS syntax")
	}
	return Value{}, fmt.Errorf("sqlengine: no such function: %s", name)
}

// evalStrftime supports the %Y / %m / %d / %Y-%m fragments over ISO-8601
// date text (YYYY-MM-DD...), which is the only date representation the
// synthetic corpora use.
func evalStrftime(format string, v Value) (Value, error) {
	if v.IsNull() {
		return Null(), nil
	}
	d := v.AsText()
	if len(d) < 10 || d[4] != '-' || d[7] != '-' {
		return Null(), nil
	}
	year, month, day := d[0:4], d[5:7], d[8:10]
	out := format
	out = strings.ReplaceAll(out, "%Y", year)
	out = strings.ReplaceAll(out, "%m", month)
	out = strings.ReplaceAll(out, "%d", day)
	if strings.Contains(out, "%") {
		return Value{}, fmt.Errorf("sqlengine: unsupported STRFTIME format %q", format)
	}
	return Text(out), nil
}
