package sqlengine

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Stmt is a prepared statement: a parsed AST plus the planner's structural
// analysis of every SELECT it contains. A Stmt is bound to the Database that
// prepared it and is safe for concurrent Exec calls (execution state lives
// in a per-call context, and both the AST and the plan are immutable after
// Prepare).
type Stmt struct {
	db    *Database
	src   string
	ast   Statement
	plans map[*SelectStmt]*selectPlan
}

// SQL returns the statement's source text.
func (s *Stmt) SQL() string { return s.src }

// Exec runs the prepared statement. The cost model is identical to
// Database.Exec: whatever physical plan the planner picks, the Result's
// Cost is the logical rows-touched count the naive executor would charge.
func (s *Stmt) Exec() (*Result, error) {
	plans := s.plans
	if s.db.plannerOff {
		plans = nil
	}
	ec := &execCtx{db: s.db, plans: plans, vec: plans != nil && !s.db.vectorOff}
	return ec.execStatement(s.ast)
}

// Prepare parses sql (or fetches the cached parse) and plans it. Each
// distinct statement text is parsed and analysed once per database; repeat
// executions — the evaluation harness re-runs every gold query per
// prediction, and experiment drivers re-run whole splits per evidence
// variant — hit the cache and skip straight to execution.
//
// Parse errors are not cached: the error path is cold by construction
// (a failed prediction is scored once), and caching only successes keeps
// the cache a pure AST store.
func (db *Database) Prepare(sql string) (*Stmt, error) {
	st, _, err := db.PrepareCached(sql)
	return st, err
}

// PrepareCached is Prepare plus a per-call plan-cache-hit indicator —
// the form the serving layer uses to attribute cache behaviour to an
// individual request (the aggregate PlanCacheStats counters cannot be
// attributed to one call under concurrency).
func (db *Database) PrepareCached(sql string) (*Stmt, bool, error) {
	if st, ok := db.plans.get(sql); ok {
		return st, true, nil
	}
	ast, err := Parse(sql)
	if err != nil {
		return nil, false, err
	}
	st := &Stmt{db: db, src: sql, ast: ast, plans: planStatement(ast)}
	db.plans.put(sql, st)
	return st, false, nil
}

// PlanCacheStats is a snapshot of the prepared-plan cache counters.
type PlanCacheStats struct {
	// Hits counts Prepare calls served from the cache.
	Hits int64
	// Misses counts Prepare calls that parsed and planned from scratch.
	Misses int64
	// Evictions counts plans displaced by the LRU policy.
	Evictions int64
	// Entries is the current number of cached plans.
	Entries int
}

// Add accumulates another snapshot into st. Callers that own several
// databases (a corpus, a serving registry) use it to aggregate per-engine
// caches into one view.
func (st *PlanCacheStats) Add(o PlanCacheStats) {
	st.Hits += o.Hits
	st.Misses += o.Misses
	st.Evictions += o.Evictions
	st.Entries += o.Entries
}

// PlanCacheStats snapshots the database's prepared-plan cache counters.
func (db *Database) PlanCacheStats() PlanCacheStats {
	return db.plans.stats()
}

// planCache is a sharded LRU over prepared statements, keyed by SQL text.
// The sharding mirrors evserve's evidence cache: an FNV-1a hash picks the
// shard, each shard has its own lock and recency list, so concurrent
// evaluation workers preparing different statements never contend.
type planCache struct {
	shards []*planShard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type planShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

type planEntry struct {
	key  string
	stmt *Stmt
}

// newPlanCache builds a cache of roughly capacity entries over the given
// shard count (rounded up to a power of two). Non-positive arguments fall
// back to defaults sized for evaluation workloads: a few thousand distinct
// statements (gold + predicted queries for a dev split) fit without
// eviction, while corpus-construction INSERT floods just churn the LRU tail.
func newPlanCache(capacity, shards int) *planCache {
	if capacity <= 0 {
		capacity = 4096
	}
	if shards <= 0 {
		shards = 8
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &planCache{shards: make([]*planShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &planShard{
			capacity: perShard,
			entries:  make(map[string]*list.Element),
			order:    list.New(),
		}
	}
	return c
}

func (c *planCache) shardFor(key string) *planShard {
	h := fnv.New64a()
	h.Write([]byte(key))
	return c.shards[h.Sum64()&c.mask]
}

func (c *planCache) get(key string) (*Stmt, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	st := el.Value.(*planEntry).stmt
	s.mu.Unlock()
	c.hits.Add(1)
	return st, true
}

func (c *planCache) put(key string, st *Stmt) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*planEntry).stmt = st
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.capacity {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*planEntry).key)
			c.evictions.Add(1)
		}
	}
	s.entries[key] = s.order.PushFront(&planEntry{key: key, stmt: st})
}

func (c *planCache) stats() PlanCacheStats {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}
