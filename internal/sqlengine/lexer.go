package sqlengine

import (
	"fmt"
	"strings"
)

// Lexer splits a SQL statement into tokens. It handles single-quoted
// strings with ” escapes, double-quoted and backquoted identifiers
// (SQLite/MySQL style), square-bracket identifiers, line comments (--) and
// block comments (/* */).
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize runs the lexer to completion, returning all tokens excluding the
// trailing EOF. It is the convenience entry point used by the parser.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Type == TokenEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

// Next returns the next token, or a TokenEOF token at end of input.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	if lx.pos >= len(lx.src) {
		return Token{Type: TokenEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '\'':
		s, err := lx.readString('\'')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: TokenString, Text: s, Pos: start}, nil
	case c == '"':
		s, err := lx.readString('"')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: TokenIdent, Text: s, Pos: start}, nil
	case c == '`':
		s, err := lx.readString('`')
		if err != nil {
			return Token{}, err
		}
		return Token{Type: TokenIdent, Text: s, Pos: start}, nil
	case c == '[':
		end := strings.IndexByte(lx.src[lx.pos:], ']')
		if end < 0 {
			return Token{}, fmt.Errorf("sqlengine: unterminated [identifier] at offset %d", start)
		}
		text := lx.src[lx.pos+1 : lx.pos+end]
		lx.pos += end + 1
		return Token{Type: TokenIdent, Text: text, Pos: start}, nil
	case isDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		return lx.readNumber(), nil
	case isIdentStart(c):
		return lx.readWord(), nil
	}
	// Operators and punctuation.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=":
		lx.pos += 2
		return Token{Type: TokenLte, Text: "<=", Pos: start}, nil
	case ">=":
		lx.pos += 2
		return Token{Type: TokenGte, Text: ">=", Pos: start}, nil
	case "<>", "!=":
		lx.pos += 2
		return Token{Type: TokenNeq, Text: "!=", Pos: start}, nil
	case "||":
		lx.pos += 2
		return Token{Type: TokenConcat, Text: "||", Pos: start}, nil
	case "==":
		lx.pos += 2
		return Token{Type: TokenEq, Text: "=", Pos: start}, nil
	}
	lx.pos++
	switch c {
	case ',':
		return Token{Type: TokenComma, Text: ",", Pos: start}, nil
	case '.':
		return Token{Type: TokenDot, Text: ".", Pos: start}, nil
	case ';':
		return Token{Type: TokenSemicolon, Text: ";", Pos: start}, nil
	case '(':
		return Token{Type: TokenLParen, Text: "(", Pos: start}, nil
	case ')':
		return Token{Type: TokenRParen, Text: ")", Pos: start}, nil
	case '*':
		return Token{Type: TokenStar, Text: "*", Pos: start}, nil
	case '+':
		return Token{Type: TokenPlus, Text: "+", Pos: start}, nil
	case '-':
		return Token{Type: TokenMinus, Text: "-", Pos: start}, nil
	case '/':
		return Token{Type: TokenSlash, Text: "/", Pos: start}, nil
	case '%':
		return Token{Type: TokenPercent, Text: "%", Pos: start}, nil
	case '=':
		return Token{Type: TokenEq, Text: "=", Pos: start}, nil
	case '<':
		return Token{Type: TokenLt, Text: "<", Pos: start}, nil
	case '>':
		return Token{Type: TokenGt, Text: ">", Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlengine: unexpected character %q at offset %d", c, start)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			nl := strings.IndexByte(lx.src[lx.pos:], '\n')
			if nl < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += nl + 1
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += end + 4
			}
		default:
			return
		}
	}
}

// readString consumes a quoted literal delimited by quote, handling doubled
// quotes as escapes (” -> ').
func (lx *Lexer) readString(quote byte) (string, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == quote {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == quote {
				b.WriteByte(quote)
				lx.pos += 2
				continue
			}
			lx.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		lx.pos++
	}
	return "", fmt.Errorf("sqlengine: unterminated string starting at offset %d", start)
}

func (lx *Lexer) readNumber() Token {
	start := lx.pos
	seenDot, seenExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case isDigit(c):
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			return Token{Type: TokenNumber, Text: lx.src[start:lx.pos], Pos: start}
		}
	}
	return Token{Type: TokenNumber, Text: lx.src[start:lx.pos], Pos: start}
}

func (lx *Lexer) readWord() Token {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.pos++
	}
	word := lx.src[start:lx.pos]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Type: TokenKeyword, Text: upper, Pos: start}
	}
	return Token{Type: TokenIdent, Text: word, Pos: start}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
