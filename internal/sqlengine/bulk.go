package sqlengine

import "fmt"

// BulkInsert appends already-materialised rows to a table, bypassing the
// SQL text path entirely: no lexing, no parsing, no per-row statement
// execution. It applies exactly the same column-type coercion and NOT NULL
// checks the INSERT executor applies, so a table loaded through BulkInsert
// is indistinguishable from one loaded with row-at-a-time INSERT
// statements — the property the synthetic-corpus generator relies on.
//
// Every row must supply one value per table column, in declaration order.
// The call is atomic: rows are validated and coerced into a staging slice
// first, and only appended once every row has passed, so a constraint
// violation in row k leaves the table untouched. Lazily built point-lookup
// indexes are invalidated once per call rather than once per row, which
// together with the skipped parse work is what makes million-row loads
// practical (see BenchmarkBulkInsertVsInsert).
//
// Like all DML, BulkInsert must not run concurrently with queries or other
// mutations on the same database.
func (db *Database) BulkInsert(table string, rows [][]Value) (int, error) {
	t, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("sqlengine: no such table %q", table)
	}
	staged := make([][]Value, len(rows))
	for ri, row := range rows {
		if len(row) != len(t.Columns) {
			return 0, fmt.Errorf("sqlengine: bulk row %d has %d values but table %s has %d columns",
				ri, len(row), t.Name, len(t.Columns))
		}
		out := make([]Value, len(row))
		for i := range row {
			out[i] = coerce(row[i], t.Columns[i].Type)
			if out[i].IsNull() && t.Columns[i].NotNull {
				return 0, fmt.Errorf("sqlengine: bulk row %d: NOT NULL constraint failed: %s.%s",
					ri, t.Name, t.Columns[i].Name)
			}
		}
		staged[ri] = out
	}
	if cap(t.Rows)-len(t.Rows) < len(staged) {
		grown := make([][]Value, len(t.Rows), len(t.Rows)+len(staged))
		copy(grown, t.Rows)
		t.Rows = grown
	}
	t.Rows = append(t.Rows, staged...)
	t.noteBulkAppend(staged)
	return len(staged), nil
}
