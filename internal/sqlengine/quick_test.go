package sqlengine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDB builds a deterministic pseudo-random single-table database from a
// seed, used by the executor property tests.
func randDB(seed int64, nRows int) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase("prop")
	db.MustExec("CREATE TABLE t (id INTEGER, grp TEXT, num REAL, flag INTEGER)")
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < nRows; i++ {
		g := groups[rng.Intn(len(groups))]
		num := float64(rng.Intn(1000)) / 10
		flag := rng.Intn(2)
		db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s', %g, %d)", i, g, num, flag))
	}
	return db
}

// Property: WHERE output is a subset of the unfiltered output, and adding a
// conjunct never grows the result.
func TestWhereSubsetProperty(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		db := randDB(seed, 40)
		all, err := db.Query("SELECT id FROM t")
		if err != nil {
			return false
		}
		filtered, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE num > %d", int(threshold)%100))
		if err != nil {
			return false
		}
		narrower, err := db.Query(fmt.Sprintf("SELECT id FROM t WHERE num > %d AND flag = 1", int(threshold)%100))
		if err != nil {
			return false
		}
		ids := make(map[int64]bool)
		for _, r := range all.Data {
			ids[r[0].I] = true
		}
		for _, r := range filtered.Data {
			if !ids[r[0].I] {
				return false
			}
		}
		return len(narrower.Data) <= len(filtered.Data) && len(filtered.Data) <= len(all.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of rows the same predicate returns.
func TestCountMatchesRowsProperty(t *testing.T) {
	f := func(seed int64, threshold uint8) bool {
		db := randDB(seed, 30)
		pred := fmt.Sprintf("num <= %d", int(threshold)%100)
		rows, err := db.Query("SELECT id FROM t WHERE " + pred)
		if err != nil {
			return false
		}
		cnt, err := db.Query("SELECT COUNT(*) FROM t WHERE " + pred)
		if err != nil {
			return false
		}
		return cnt.Data[0][0].I == int64(len(rows.Data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: ORDER BY produces a non-decreasing (or non-increasing) sequence.
func TestOrderBySortedProperty(t *testing.T) {
	f := func(seed int64, desc bool) bool {
		db := randDB(seed, 35)
		dir := "ASC"
		if desc {
			dir = "DESC"
		}
		rows, err := db.Query("SELECT num FROM t ORDER BY num " + dir)
		if err != nil {
			return false
		}
		for i := 1; i < len(rows.Data); i++ {
			c := Compare(rows.Data[i-1][0], rows.Data[i][0])
			if desc && c < 0 {
				return false
			}
			if !desc && c > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: DISTINCT output contains no duplicate rows and the same value
// set as the raw projection.
func TestDistinctProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := randDB(seed, 40)
		distinct, err := db.Query("SELECT DISTINCT grp FROM t")
		if err != nil {
			return false
		}
		raw, err := db.Query("SELECT grp FROM t")
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		for _, r := range distinct.Data {
			k := r[0].Key()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		for _, r := range raw.Data {
			if !seen[r[0].Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: LIMIT n returns min(n, total) rows and is a prefix of the
// unlimited ordered result.
func TestLimitPrefixProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		db := randDB(seed, 25)
		n := int(nRaw % 30)
		full, err := db.Query("SELECT id FROM t ORDER BY id")
		if err != nil {
			return false
		}
		lim, err := db.Query(fmt.Sprintf("SELECT id FROM t ORDER BY id LIMIT %d", n))
		if err != nil {
			return false
		}
		want := n
		if len(full.Data) < n {
			want = len(full.Data)
		}
		if len(lim.Data) != want {
			return false
		}
		for i := range lim.Data {
			if Compare(lim.Data[i][0], full.Data[i][0]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: GROUP BY sums partition the overall sum.
func TestGroupBySumPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := randDB(seed, 40)
		total, err := db.Query("SELECT SUM(num) FROM t")
		if err != nil {
			return false
		}
		parts, err := db.Query("SELECT grp, SUM(num) FROM t GROUP BY grp")
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range parts.Data {
			sum += r[1].AsFloat()
		}
		diff := sum - total.Data[0][0].AsFloat()
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every generated query produces identical rows (order included)
// and an identical Cost under the planner and under the naive executor.
// This is the planner's core invariant — Cost is logical, so VES and every
// experiment table stay byte-stable however the physical plan changes.
func TestPlannerEquivalenceProperty(t *testing.T) {
	templates := []func(p1, p2 int) string{
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp WHERE t.num > %d", p1)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT t.id, g.label FROM t LEFT JOIN g ON t.grp = g.grp WHERE t.num <= %d LIMIT %d", p1, p2)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT COUNT(*) FROM t JOIN g ON t.grp = g.grp JOIN acc ON acc.t_id = t.id WHERE t.num BETWEEN %d AND %d", p1, p1+p2)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT t.id FROM t JOIN g ON t.num > g.weight WHERE t.id < %d", p2)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT g.label, SUM(t.num) FROM t JOIN g ON t.grp = g.grp GROUP BY g.label HAVING COUNT(*) > %d ORDER BY g.label", p2%4)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT id FROM t WHERE id = %d", p1)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT id FROM t WHERE grp IN (SELECT grp FROM g WHERE weight > %d)", p2)
		},
		func(p1, p2 int) string {
			return fmt.Sprintf("SELECT t.id FROM t JOIN acc ON t.id = acc.num_text WHERE acc.kind != 'q%d'", p1)
		},
	}
	f := func(seed int64, a, b uint8) bool {
		planned, naive := plannerPair(seed, 30)
		p1, p2 := int(a)%100, int(b)%20+1
		for _, tmpl := range templates {
			q := tmpl(p1, p2)
			pr, perr := planned.Exec(q)
			nr, nerr := naive.Exec(q)
			if (perr == nil) != (nerr == nil) {
				t.Logf("error mismatch for %q: %v vs %v", q, perr, nerr)
				return false
			}
			if perr != nil {
				continue
			}
			if pr.Cost != nr.Cost || !rowsIdentical(pr.Rows, nr.Rows) {
				t.Logf("divergence for %q: cost %d vs %d", q, pr.Cost, nr.Cost)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: INNER JOIN row count equals the number of matching pairs, and
// LEFT JOIN never returns fewer rows than the left table has.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		db := randDB(seed, 20)
		db.MustExec("CREATE TABLE g (grp TEXT, label TEXT)")
		db.MustExec("INSERT INTO g VALUES ('a', 'A'), ('b', 'B')")
		left, err := db.Query("SELECT t.id FROM t LEFT JOIN g ON t.grp = g.grp")
		if err != nil {
			return false
		}
		base, err := db.Query("SELECT id FROM t")
		if err != nil {
			return false
		}
		inner, err := db.Query("SELECT t.id FROM t JOIN g ON t.grp = g.grp")
		if err != nil {
			return false
		}
		return len(left.Data) >= len(base.Data) && len(inner.Data) <= len(left.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
