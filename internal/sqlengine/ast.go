package sqlengine

import "strings"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed SQL expression.
type Expr interface {
	expr()
	// SQL renders the expression back to SQL text; used for error messages,
	// evidence composition, and schema-linking extraction by the baselines.
	SQL() string
}

// JoinType enumerates supported join flavours.
type JoinType int

// Join flavours. JoinNone marks the first item of a FROM chain.
const (
	JoinNone JoinType = iota
	JoinInner
	JoinLeft
	JoinCross
)

func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return ""
	}
}

// FromItem is one element of a FROM chain: either a base table or a
// subquery, with an optional alias and (for items after the first) the join
// type and ON condition linking it to the preceding items.
type FromItem struct {
	Table string
	Sub   *SelectStmt
	Alias string
	Join  JoinType
	On    Expr
}

// Name returns the name this item is addressable by in column references.
func (f *FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// SelectItem is one projected column: an expression with an optional alias,
// or a star (all columns, optionally qualified by a table name).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CompoundOp is a set operator combining two SELECTs.
type CompoundOp int

// Compound select operators.
const (
	CompoundNone CompoundOp = iota
	CompoundUnion
	CompoundUnionAll
	CompoundExcept
	CompoundIntersect
)

// SelectStmt is a parsed SELECT, possibly compound (UNION/EXCEPT/INTERSECT
// chain hangs off Compound/Next).
type SelectStmt struct {
	Distinct bool
	Columns  []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	Compound CompoundOp
	Next     *SelectStmt
}

func (*SelectStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // normalised: INTEGER, REAL or TEXT
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// ForeignKeyDef records a FOREIGN KEY ... REFERENCES clause. The engine does
// not enforce it, but SEED's schema serialisation and the deepseek variant's
// join-path clauses read these.
type ForeignKeyDef struct {
	Column       string
	ParentTable  string
	ParentColumn string
}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	ForeignKeys []ForeignKeyDef
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is a parsed INSERT INTO ... VALUES.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// UpdateStmt is a parsed UPDATE ... SET ... WHERE.
type UpdateStmt struct {
	Table string
	Set   []struct {
		Column string
		Value  Expr
	}
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is a parsed DELETE FROM ... WHERE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// --- Expressions ---

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}

// SQL implements Expr.
func (c *ColumnRef) SQL() string {
	if c.Table != "" {
		return quoteIdent(c.Table) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// Literal is a constant value.
type Literal struct{ Val Value }

func (*Literal) expr() {}

// SQL implements Expr.
func (l *Literal) SQL() string { return l.Val.String() }

// Unary is a prefix operator: "-", "+" or "NOT".
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) expr() {}

// SQL implements Expr.
func (u *Unary) SQL() string { return u.Op + " " + u.X.SQL() }

// Binary is an infix operator: arithmetic, comparison, AND/OR, or "||".
type Binary struct {
	Op   string
	L, R Expr
}

func (*Binary) expr() {}

// SQL implements Expr.
func (b *Binary) SQL() string { return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")" }

// FuncCall is a function invocation. Star marks COUNT(*); Distinct marks
// COUNT(DISTINCT x) and friends.
type FuncCall struct {
	Name     string // upper-case
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) expr() {}

// SQL implements Expr.
func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var parts []string
	for _, a := range f.Args {
		parts = append(parts, a.SQL())
	}
	inner := strings.Join(parts, ", ")
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return f.Name + "(" + inner + ")"
}

// WhenClause is one WHEN ... THEN ... arm of a CASE.
type WhenClause struct {
	When Expr
	Then Expr
}

// CaseExpr is a CASE expression, with or without an operand.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) expr() {}

// SQL implements Expr.
func (c *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.When.SQL() + " THEN " + w.Then.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

// InExpr is "x [NOT] IN (list)" or "x [NOT] IN (subquery)".
type InExpr struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

func (*InExpr) expr() {}

// SQL implements Expr.
func (i *InExpr) SQL() string {
	op := " IN "
	if i.Not {
		op = " NOT IN "
	}
	if i.Sub != nil {
		return i.X.SQL() + op + "(" + i.Sub.SQL() + ")"
	}
	var parts []string
	for _, e := range i.List {
		parts = append(parts, e.SQL())
	}
	return i.X.SQL() + op + "(" + strings.Join(parts, ", ") + ")"
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) expr() {}

// SQL implements Expr.
func (b *BetweenExpr) SQL() string {
	op := " BETWEEN "
	if b.Not {
		op = " NOT BETWEEN "
	}
	return b.X.SQL() + op + b.Lo.SQL() + " AND " + b.Hi.SQL()
}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

func (*LikeExpr) expr() {}

// SQL implements Expr.
func (l *LikeExpr) SQL() string {
	op := " LIKE "
	if l.Not {
		op = " NOT LIKE "
	}
	return l.X.SQL() + op + l.Pattern.SQL()
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// SQL implements Expr.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.X.SQL() + " IS NOT NULL"
	}
	return i.X.SQL() + " IS NULL"
}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

func (*ExistsExpr) expr() {}

// SQL implements Expr.
func (e *ExistsExpr) SQL() string {
	if e.Not {
		return "NOT EXISTS (" + e.Sub.SQL() + ")"
	}
	return "EXISTS (" + e.Sub.SQL() + ")"
}

// SubqueryExpr is a scalar subquery in expression position.
type SubqueryExpr struct{ Sub *SelectStmt }

func (*SubqueryExpr) expr() {}

// SQL implements Expr.
func (s *SubqueryExpr) SQL() string { return "(" + s.Sub.SQL() + ")" }

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type string // normalised INTEGER/REAL/TEXT
}

func (*CastExpr) expr() {}

// SQL implements Expr.
func (c *CastExpr) SQL() string { return "CAST(" + c.X.SQL() + " AS " + c.Type + ")" }

// quoteIdent backquotes an identifier when it contains characters that would
// not re-lex as a bare identifier.
func quoteIdent(s string) string {
	for i := 0; i < len(s); i++ {
		if !isIdentPart(s[i]) {
			return "`" + s + "`"
		}
	}
	if s == "" || keywords[strings.ToUpper(s)] || isDigit(s[0]) {
		return "`" + s + "`"
	}
	return s
}
