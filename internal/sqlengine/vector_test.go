package sqlengine

import "testing"

// buildVecTable returns a table with one column of each behaviour class:
// a clean INTEGER column, a REAL column with NULLs, a TEXT column, and an
// INTEGER-declared column polluted with non-numeric text (mixed kinds).
func buildVecTable(t *testing.T) (*Database, *Table) {
	t.Helper()
	db := NewDatabase("vec")
	db.MustExec("CREATE TABLE v (a INTEGER, b REAL, c TEXT, d INTEGER)")
	db.MustExec("INSERT INTO v VALUES (1, 1.5, 'x', 10)")
	db.MustExec("INSERT INTO v VALUES (2, NULL, 'y', 'stray')")
	db.MustExec("INSERT INTO v VALUES (3, 3.5, NULL, 30)")
	tab, ok := db.Table("v")
	if !ok {
		t.Fatal("table v missing")
	}
	return db, tab
}

func TestColumnVecBuild(t *testing.T) {
	_, tab := buildVecTable(t)

	a := tab.columnVec(0)
	if !a.typed || a.kind != KindInt || a.nulls != nil {
		t.Fatalf("col a: typed=%v kind=%v nulls=%v; want typed INTEGER, no null bitmap", a.typed, a.kind, a.nulls)
	}
	if a.ints[0] != 1 || a.ints[2] != 3 {
		t.Fatalf("col a ints = %v", a.ints)
	}

	b := tab.columnVec(1)
	if !b.typed || b.kind != KindFloat {
		t.Fatalf("col b: typed=%v kind=%v; want typed REAL", b.typed, b.kind)
	}
	if b.nulls == nil || !b.null(1) || b.null(0) || b.null(2) {
		t.Fatalf("col b null bitmap wrong: %v", b.nulls)
	}

	c := tab.columnVec(2)
	if !c.typed || c.kind != KindText || !c.null(2) || c.strs[0] != "x" {
		t.Fatalf("col c: typed=%v kind=%v nulls=%v strs=%v", c.typed, c.kind, c.nulls, c.strs)
	}

	d := tab.columnVec(3)
	if d.typed {
		t.Fatalf("col d holds mixed kinds but vector is typed (%v)", d.kind)
	}

	// The lazy build must be cached: same pointer on re-request.
	if tab.columnVec(0) != a {
		t.Fatal("columnVec rebuilt a cached vector")
	}
}

func TestColumnVecInvalidationOnDML(t *testing.T) {
	db, tab := buildVecTable(t)
	a := tab.columnVec(0)
	db.MustExec("UPDATE v SET a = 99 WHERE a = 1")
	if got := tab.columnVec(0); got == a {
		t.Fatal("UPDATE did not invalidate the columnar shadow")
	} else if got.ints[0] != 99 {
		t.Fatalf("rebuilt vector stale: %v", got.ints)
	}
}

func TestNoteBulkAppendExtendsInPlace(t *testing.T) {
	db, tab := buildVecTable(t)
	a := tab.columnVec(0)
	b := tab.columnVec(1)

	if _, err := db.BulkInsert("v", [][]Value{
		{Int(4), Null(), Text("z"), Int(40)},
		{Int(5), Float(5.5), Text("w"), Int(50)},
	}); err != nil {
		t.Fatal(err)
	}

	// Same-kind appends extend the existing vectors in place.
	if got := tab.columnVec(0); got != a {
		t.Fatal("bulk append rebuilt the int vector instead of extending it")
	}
	if a.length() != 5 || a.ints[3] != 4 || a.ints[4] != 5 {
		t.Fatalf("int vector after append: len=%d ints=%v", a.length(), a.ints)
	}
	if got := tab.columnVec(1); got != b {
		t.Fatal("bulk append rebuilt the float vector instead of extending it")
	}
	if !b.null(3) || b.null(4) || b.floats[4] != 5.5 {
		t.Fatalf("float vector nulls/values after append: nulls=%v floats=%v", b.nulls, b.floats)
	}

	// A kind-breaking append must evict the column's vector, and the
	// rebuilt vector must be untyped.
	if _, err := db.BulkInsert("v", [][]Value{
		{Text("oops"), Float(6.5), Text("q"), Int(60)},
	}); err != nil {
		t.Fatal(err)
	}
	got := tab.columnVec(0)
	if got == a {
		t.Fatal("kind-breaking append did not evict the int vector")
	}
	if got.typed {
		t.Fatal("rebuilt vector over mixed kinds claims to be typed")
	}
}

// TestColumnVecAlignedWithRows pins the positional-alignment invariant the
// scan kernels depend on: cell i of the vector is row i of t.Rows, for
// every column, across INSERT and BulkInsert loading.
func TestColumnVecAlignedWithRows(t *testing.T) {
	db, tab := buildVecTable(t)
	rows := make([][]Value, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, []Value{Int(int64(i)), Float(float64(i) / 2), Text("r"), Int(int64(i * 10))})
	}
	if _, err := db.BulkInsert("v", rows); err != nil {
		t.Fatal(err)
	}
	for col := range tab.Columns {
		vec := tab.columnVec(col)
		if !vec.typed {
			continue // mixed-kind columns carry no arrays to align
		}
		if vec.length() != len(tab.Rows) {
			t.Fatalf("col %d: vector length %d vs %d rows", col, vec.length(), len(tab.Rows))
		}
		for i := range tab.Rows {
			want := tab.Rows[i][col]
			if got := vecCell(vec, i); got != want {
				t.Fatalf("col %d row %d: vector %v vs row %v", col, i, got, want)
			}
		}
	}
}

// vecCell materialises typed-vector position i back into a Value.
func vecCell(v *colVec, i int) Value {
	if v.null(i) {
		return Null()
	}
	switch v.kind {
	case KindInt:
		return Int(v.ints[i])
	case KindFloat:
		return Float(v.floats[i])
	case KindText:
		return Text(v.strs[i])
	default:
		return Null()
	}
}
