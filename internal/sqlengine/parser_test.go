package sqlengine

import (
	"testing"
)

func mustParseSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5 OFFSET 2")
	if len(sel.Columns) != 2 {
		t.Fatalf("columns = %d, want 2", len(sel.Columns))
	}
	if sel.Columns[1].Alias != "bee" {
		t.Errorf("alias = %q, want bee", sel.Columns[1].Alias)
	}
	if sel.Where == nil || sel.Limit == nil || sel.Offset == nil {
		t.Errorf("missing WHERE/LIMIT/OFFSET")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("ORDER BY DESC not parsed")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustParseSelect(t, `SELECT s.name FROM schools s INNER JOIN satscores ON s.CDSCode = satscores.cds LEFT JOIN frpm f ON f.CDSCode = s.CDSCode`)
	if len(sel.From) != 3 {
		t.Fatalf("from items = %d, want 3", len(sel.From))
	}
	if sel.From[0].Alias != "s" {
		t.Errorf("first alias = %q", sel.From[0].Alias)
	}
	if sel.From[1].Join != JoinInner || sel.From[1].On == nil {
		t.Errorf("second item should be INNER JOIN with ON")
	}
	if sel.From[2].Join != JoinLeft {
		t.Errorf("third item should be LEFT JOIN")
	}
}

func TestParseGroupHaving(t *testing.T) {
	sel := mustParseSelect(t, "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3")
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("GROUP BY / HAVING not parsed")
	}
	fc, ok := sel.Columns[1].Expr.(*FuncCall)
	if !ok || !fc.Star || fc.Name != "COUNT" {
		t.Errorf("COUNT(*) not parsed: %#v", sel.Columns[1].Expr)
	}
}

func TestParseSubqueries(t *testing.T) {
	sel := mustParseSelect(t, `SELECT name FROM t WHERE id IN (SELECT tid FROM u WHERE x = 1) AND EXISTS (SELECT 1 FROM v) AND score > (SELECT AVG(score) FROM t)`)
	if sel.Where == nil {
		t.Fatal("missing WHERE")
	}
	// WHERE is ((IN AND EXISTS) AND scalar-subquery-compare)
	b, ok := sel.Where.(*Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("top of WHERE should be AND, got %T", sel.Where)
	}
}

func TestParseCaseCast(t *testing.T) {
	sel := mustParseSelect(t, `SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END, CAST(x AS REAL), CASE y WHEN 1 THEN 'one' END FROM t`)
	ce, ok := sel.Columns[0].Expr.(*CaseExpr)
	if !ok || len(ce.Whens) != 2 || ce.Else == nil || ce.Operand != nil {
		t.Errorf("searched CASE parse failed: %#v", sel.Columns[0].Expr)
	}
	cast, ok := sel.Columns[1].Expr.(*CastExpr)
	if !ok || cast.Type != "REAL" {
		t.Errorf("CAST parse failed: %#v", sel.Columns[1].Expr)
	}
	ce2, ok := sel.Columns[2].Expr.(*CaseExpr)
	if !ok || ce2.Operand == nil {
		t.Errorf("operand CASE parse failed")
	}
}

func TestParseBetweenLikeIn(t *testing.T) {
	sel := mustParseSelect(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE '%x%' AND c NOT IN (1, 2) AND d IS NOT NULL`)
	b := sel.Where.(*Binary)
	if b.Op != "AND" {
		t.Fatalf("top op = %q", b.Op)
	}
	isn, ok := b.R.(*IsNullExpr)
	if !ok || !isn.Not {
		t.Errorf("IS NOT NULL parse failed: %#v", b.R)
	}
}

func TestParseCompound(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t UNION SELECT a FROM u ORDER BY a LIMIT 3")
	if sel.Compound != CompoundUnion || sel.Next == nil {
		t.Fatalf("UNION not parsed")
	}
	if len(sel.OrderBy) != 1 || sel.Limit == nil {
		t.Errorf("compound tail not attached to head")
	}
	if sel.Next.OrderBy != nil {
		t.Errorf("tail should not attach to second arm")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse(`CREATE TABLE schools (
		CDSCode TEXT PRIMARY KEY,
		County TEXT NOT NULL,
		Magnet INTEGER,
		Budget REAL DEFAULT 0,
		FOREIGN KEY (County) REFERENCES counties(name)
	)`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ct := st.(*CreateTableStmt)
	if ct.Name != "schools" || len(ct.Columns) != 4 {
		t.Fatalf("bad create: %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != "TEXT" {
		t.Errorf("CDSCode should be TEXT PRIMARY KEY")
	}
	if !ct.Columns[1].NotNull {
		t.Errorf("County should be NOT NULL")
	}
	if ct.Columns[2].Type != "INTEGER" || ct.Columns[3].Type != "REAL" {
		t.Errorf("types wrong: %+v", ct.Columns)
	}
	if len(ct.ForeignKeys) != 1 || ct.ForeignKeys[0].ParentTable != "counties" {
		t.Errorf("FK wrong: %+v", ct.ForeignKeys)
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatalf("Parse insert: %v", err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert parse: %+v", ins)
	}

	st, err = Parse("UPDATE t SET a = 2, b = 'z' WHERE a = 1")
	if err != nil {
		t.Fatalf("Parse update: %v", err)
	}
	up := st.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update parse: %+v", up)
	}

	st, err = Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatalf("Parse delete: %v", err)
	}
	del := st.(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete parse: %+v", del)
	}
}

func TestParseBacktickedColumns(t *testing.T) {
	sel := mustParseSelect(t, "SELECT `Free Meal Count` FROM `frpm` WHERE `Academic Year` = '2014-2015'")
	cr, ok := sel.Columns[0].Expr.(*ColumnRef)
	if !ok || cr.Name != "Free Meal Count" {
		t.Errorf("backticked column parse failed: %#v", sel.Columns[0].Expr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT a FROM t GROUP",
		"INSERT INTO t VALUES",
		"CREATE TABLE t ()",
		"SELECT a FROM t ORDER",
		"SELECT CASE END FROM t",
		"SELECT a b c FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExprSQLRoundTrip(t *testing.T) {
	// Rendering an expression back to SQL should re-parse to an equivalent form.
	srcs := []string{
		"SELECT a + b * 2 FROM t",
		"SELECT UPPER(name) FROM t WHERE id IN (1, 2, 3)",
		"SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT t.a FROM t WHERE b LIKE '%f%' AND c BETWEEN 1 AND 2",
	}
	for _, src := range srcs {
		sel := mustParseSelect(t, src)
		for _, col := range sel.Columns {
			rendered := col.Expr.SQL()
			if _, err := ParseSelect("SELECT " + rendered + " FROM t"); err != nil {
				t.Errorf("re-parse of rendered %q failed: %v", rendered, err)
			}
		}
	}
}
