package sqlengine

// Hash equi-join execution. The planner hands the executor the flattened
// ON conjunction (joinAnalysis); this file resolves the equi conditions
// against the actual input relations and, when at least one resolves
// cleanly, replaces the O(|L|·|R|) nested loop with an O(|L|+|R|+matches)
// build/probe join. For large probe inputs the probe/emission phase runs
// morsel-parallel (parallel.go): the build side is hashed once by the
// coordinator, then workers probe disjoint left-row morsels with worker-
// local pair buffers and environments, and the per-morsel outputs are
// concatenated in morsel order.
//
// Equivalence with the nested loop is structural:
//
//   - Content: buckets are keyed by coarseKey, which never separates two
//     values the executor's `=` would match; every bucket candidate is
//     re-verified with sqlEq (exact `=` semantics) plus the residual
//     conjuncts, so spurious bucket collisions cost a comparison, never a
//     wrong row.
//   - Order: pairs are emitted in left-row-major order with right matches
//     ascending — exactly the nested loop's emission order — regardless of
//     which side the hash table is built on, and regardless of how many
//     workers probe (each morsel is a contiguous left-row range and the
//     merge is in morsel order).
//   - Cost: the caller (join) has already charged |L|·|R| logical pairs
//     before this function runs, identical to the naive loop's total.
//     Residual conjuncts are safe-total by the planner's gate, so probing
//     them concurrently cannot charge cost or raise row-dependent errors.

// equiCond is one resolved hash condition: column positions in the left
// and right input relations.
type equiCond struct{ li, ri int }

// resolveHashJoin classifies ja's conjuncts into hash conditions and
// residual filters. ok is false when the nested loop must run instead:
// no cross-side equi condition, or any column reference that does not
// resolve cleanly (the nested loop then reproduces the naive executor's
// error — or its silence, when an empty input means the ON clause is
// never evaluated).
func resolveHashJoin(left, right *rowSet, ja *joinAnalysis, outer *scope) (equis []equiCond, residual []Expr, ok bool) {
	for _, c := range ja.conj {
		for _, r := range c.refs {
			_, nl := resolveCols(left.cols, r.Table, r.Name)
			_, nr := resolveCols(right.cols, r.Table, r.Name)
			if nl+nr > 1 {
				return nil, nil, false // ambiguous in the join scope
			}
			if nl+nr == 0 && outerResolveClass(outer, r.Table, r.Name) != 1 {
				return nil, nil, false // would be "no such column" (or outer ambiguity)
			}
		}
		if c.eq != nil {
			ali, anl := resolveCols(left.cols, c.eq.a.Table, c.eq.a.Name)
			ari, anr := resolveCols(right.cols, c.eq.a.Table, c.eq.a.Name)
			bli, bnl := resolveCols(left.cols, c.eq.b.Table, c.eq.b.Name)
			bri, bnr := resolveCols(right.cols, c.eq.b.Table, c.eq.b.Name)
			switch {
			case anl == 1 && anr == 0 && bnl == 0 && bnr == 1:
				equis = append(equis, equiCond{li: ali, ri: bri})
				continue
			case anl == 0 && anr == 1 && bnl == 1 && bnr == 0:
				equis = append(equis, equiCond{li: bli, ri: ari})
				continue
			}
			// Same-side or correlated equality: plain residual filter.
		}
		residual = append(residual, c.expr)
	}
	if len(equis) == 0 {
		return nil, nil, false
	}
	return equis, residual, true
}

// probeState is the worker-local mutable state of one probe goroutine:
// the reusable pair buffer and environment for residual evaluation, and
// the reusable key buffer.
type probeState struct {
	buf []Value
	env *evalEnv
	key []byte
}

// joinRowKey appends the coarse equi-key of row (using side to pick the
// column per condition) to buf. ok is false when any key column is NULL —
// NULL never equi-matches; the row can only surface via LEFT JOIN
// null-extension.
func joinRowKey(buf []byte, row []Value, equis []equiCond, side func(equiCond) int) (out []byte, key string, ok bool) {
	buf = buf[:0]
	for _, eq := range equis {
		v := row[side(eq)]
		if v.IsNull() {
			return buf, "", false
		}
		buf = coarseKey(buf, v)
		buf = append(buf, 0)
	}
	return buf, string(buf), true
}

// probeMorsels drives the probe phase: probeOne(state, li, dst) processes
// left row li, appending emitted rows to dst. Large inputs fan out over
// left-row morsels with per-worker state; the serial path reuses one
// state and emits directly, exactly like the pre-parallel code.
func (ec *execCtx) probeMorsels(nLeft int, newState func() *probeState, probeOne func(p *probeState, li int, dst [][]Value) ([][]Value, error)) ([][]Value, error) {
	if !ec.useBatch(nLeft) {
		p := newState()
		var out [][]Value
		for li := 0; li < nLeft; li++ {
			var err error
			out, err = probeOne(p, li, out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	nm := morselCount(nLeft)
	outs := make([][][]Value, nm)
	errs := make([]error, nm)
	var states []*probeState
	ec.batchRun(nm, nLeft, func(workers int) {
		states = make([]*probeState, workers)
	}, func(w, m int) {
		p := states[w]
		if p == nil {
			p = newState()
			states[w] = p
		}
		lo, hi := morselBounds(m, nLeft)
		var dst [][]Value
		for li := lo; li < hi; li++ {
			var err error
			dst, err = probeOne(p, li, dst)
			if err != nil {
				errs[m] = err
				return
			}
		}
		outs[m] = dst
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return concatRowMorsels(outs), nil
}

// hashJoin executes the join with the given resolved conditions. The
// logical |L|·|R| cost has already been charged by the caller.
func (ec *execCtx) hashJoin(left, right *rowSet, jt JoinType, equis []equiCond, residual []Expr, outer *scope) (*rowSet, error) {
	cols := make([]scopeCol, 0, len(left.cols)+len(right.cols))
	cols = append(cols, left.cols...)
	cols = append(cols, right.cols...)
	out := &rowSet{cols: cols}

	newState := func() *probeState {
		buf := make([]Value, len(cols))
		return &probeState{
			buf: buf,
			env: &evalEnv{ec: ec, sc: &scope{cols: cols, row: buf, parent: outer}},
		}
	}
	match := func(p *probeState, lr, rr []Value) (bool, error) {
		for _, eq := range equis {
			if !sqlEq(lr[eq.li], rr[eq.ri]) {
				return false, nil
			}
		}
		if len(residual) > 0 {
			copy(p.buf, lr)
			copy(p.buf[len(left.cols):], rr)
			for _, e := range residual {
				v, err := p.env.eval(e)
				if err != nil {
					return false, err
				}
				if t, known := v.Truth(); !t || !known {
					return false, nil
				}
			}
		}
		return true, nil
	}
	emit := func(dst [][]Value, lr, rr []Value) [][]Value {
		row := make([]Value, 0, len(cols))
		row = append(row, lr...)
		row = append(row, rr...)
		return append(dst, row)
	}

	leftSide := func(eq equiCond) int { return eq.li }
	rightSide := func(eq equiCond) int { return eq.ri }
	nullRight := make([]Value, len(right.cols))

	var probeOne func(p *probeState, li int, dst [][]Value) ([][]Value, error)
	if len(right.rows) <= len(left.rows) {
		// Build on the right (smaller) side; probe with left rows in
		// order. Buckets hold right positions ascending, so emission is
		// nested-loop order for free.
		buckets := make(map[string][]int, len(right.rows))
		var keyBuf []byte
		for ri, rr := range right.rows {
			var k string
			var ok bool
			keyBuf, k, ok = joinRowKey(keyBuf, rr, equis, rightSide)
			if ok {
				buckets[k] = append(buckets[k], ri)
			}
		}
		probeOne = func(p *probeState, li int, dst [][]Value) ([][]Value, error) {
			lr := left.rows[li]
			matched := false
			var k string
			var ok bool
			p.key, k, ok = joinRowKey(p.key, lr, equis, leftSide)
			if ok {
				for _, ri := range buckets[k] {
					hit, err := match(p, lr, right.rows[ri])
					if err != nil {
						return nil, err
					}
					if hit {
						matched = true
						dst = emit(dst, lr, right.rows[ri])
					}
				}
			}
			if jt == JoinLeft && !matched {
				dst = emit(dst, lr, nullRight)
			}
			return dst, nil
		}
	} else {
		// Build on the left (smaller) side; probe with right rows,
		// collecting candidate right positions per left row, then emit in
		// left-major order. Candidates arrive in right-row order, so the
		// per-left lists are ascending. The emission phase is what fans
		// out; the candidate collection is cheap hash lookups and stays on
		// the coordinator.
		buckets := make(map[string][]int, len(left.rows))
		var keyBuf []byte
		for li, lr := range left.rows {
			var k string
			var ok bool
			keyBuf, k, ok = joinRowKey(keyBuf, lr, equis, leftSide)
			if ok {
				buckets[k] = append(buckets[k], li)
			}
		}
		cand := make([][]int, len(left.rows))
		for ri, rr := range right.rows {
			var k string
			var ok bool
			keyBuf, k, ok = joinRowKey(keyBuf, rr, equis, rightSide)
			if ok {
				for _, li := range buckets[k] {
					cand[li] = append(cand[li], ri)
				}
			}
		}
		probeOne = func(p *probeState, li int, dst [][]Value) ([][]Value, error) {
			lr := left.rows[li]
			matched := false
			for _, ri := range cand[li] {
				hit, err := match(p, lr, right.rows[ri])
				if err != nil {
					return nil, err
				}
				if hit {
					matched = true
					dst = emit(dst, lr, right.rows[ri])
				}
			}
			if jt == JoinLeft && !matched {
				dst = emit(dst, lr, nullRight)
			}
			return dst, nil
		}
	}

	rows, err := ec.probeMorsels(len(left.rows), newState, probeOne)
	if err != nil {
		return nil, err
	}
	out.rows = rows
	out.logical = len(out.rows)
	return out, nil
}
