package sqlengine

// Hash equi-join execution. The planner hands the executor the flattened
// ON conjunction (joinAnalysis); this file resolves the equi conditions
// against the actual input relations and, when at least one resolves
// cleanly, replaces the O(|L|·|R|) nested loop with an O(|L|+|R|+matches)
// build/probe join.
//
// Equivalence with the nested loop is structural:
//
//   - Content: buckets are keyed by coarseKey, which never separates two
//     values the executor's `=` would match; every bucket candidate is
//     re-verified with sqlEq (exact `=` semantics) plus the residual
//     conjuncts, so spurious bucket collisions cost a comparison, never a
//     wrong row.
//   - Order: pairs are emitted in left-row-major order with right matches
//     ascending — exactly the nested loop's emission order — regardless of
//     which side the hash table is built on.
//   - Cost: the caller (join) has already charged |L|·|R| logical pairs
//     before this function runs, identical to the naive loop's total.

// equiCond is one resolved hash condition: column positions in the left
// and right input relations.
type equiCond struct{ li, ri int }

// resolveHashJoin classifies ja's conjuncts into hash conditions and
// residual filters. ok is false when the nested loop must run instead:
// no cross-side equi condition, or any column reference that does not
// resolve cleanly (the nested loop then reproduces the naive executor's
// error — or its silence, when an empty input means the ON clause is
// never evaluated).
func resolveHashJoin(left, right *rowSet, ja *joinAnalysis, outer *scope) (equis []equiCond, residual []Expr, ok bool) {
	for _, c := range ja.conj {
		for _, r := range c.refs {
			_, nl := resolveCols(left.cols, r.Table, r.Name)
			_, nr := resolveCols(right.cols, r.Table, r.Name)
			if nl+nr > 1 {
				return nil, nil, false // ambiguous in the join scope
			}
			if nl+nr == 0 && outerResolveClass(outer, r.Table, r.Name) != 1 {
				return nil, nil, false // would be "no such column" (or outer ambiguity)
			}
		}
		if c.eq != nil {
			ali, anl := resolveCols(left.cols, c.eq.a.Table, c.eq.a.Name)
			ari, anr := resolveCols(right.cols, c.eq.a.Table, c.eq.a.Name)
			bli, bnl := resolveCols(left.cols, c.eq.b.Table, c.eq.b.Name)
			bri, bnr := resolveCols(right.cols, c.eq.b.Table, c.eq.b.Name)
			switch {
			case anl == 1 && anr == 0 && bnl == 0 && bnr == 1:
				equis = append(equis, equiCond{li: ali, ri: bri})
				continue
			case anl == 0 && anr == 1 && bnl == 1 && bnr == 0:
				equis = append(equis, equiCond{li: bli, ri: ari})
				continue
			}
			// Same-side or correlated equality: plain residual filter.
		}
		residual = append(residual, c.expr)
	}
	if len(equis) == 0 {
		return nil, nil, false
	}
	return equis, residual, true
}

// hashJoin executes the join with the given resolved conditions. The
// logical |L|·|R| cost has already been charged by the caller.
func (ec *execCtx) hashJoin(left, right *rowSet, jt JoinType, equis []equiCond, residual []Expr, outer *scope) (*rowSet, error) {
	cols := make([]scopeCol, 0, len(left.cols)+len(right.cols))
	cols = append(cols, left.cols...)
	cols = append(cols, right.cols...)
	out := &rowSet{cols: cols, rows: make([][]Value, 0, len(left.rows))}

	// One reusable pair buffer and environment for residual evaluation;
	// emitted rows are fresh copies.
	buf := make([]Value, len(cols))
	sc := &scope{cols: cols, row: buf, parent: outer}
	env := &evalEnv{ec: ec, sc: sc}
	match := func(lr, rr []Value) (bool, error) {
		for _, eq := range equis {
			if !sqlEq(lr[eq.li], rr[eq.ri]) {
				return false, nil
			}
		}
		if len(residual) > 0 {
			copy(buf, lr)
			copy(buf[len(left.cols):], rr)
			for _, e := range residual {
				v, err := env.eval(e)
				if err != nil {
					return false, err
				}
				if t, known := v.Truth(); !t || !known {
					return false, nil
				}
			}
		}
		return true, nil
	}
	emit := func(lr, rr []Value) {
		row := make([]Value, 0, len(cols))
		row = append(row, lr...)
		row = append(row, rr...)
		out.rows = append(out.rows, row)
	}

	var keyBuf []byte
	rowKey := func(row []Value, side func(equiCond) int) (string, bool) {
		keyBuf = keyBuf[:0]
		for _, eq := range equis {
			v := row[side(eq)]
			if v.IsNull() {
				// NULL never equi-matches; the row can only surface via
				// LEFT JOIN null-extension.
				return "", false
			}
			keyBuf = coarseKey(keyBuf, v)
			keyBuf = append(keyBuf, 0)
		}
		return string(keyBuf), true
	}
	leftSide := func(eq equiCond) int { return eq.li }
	rightSide := func(eq equiCond) int { return eq.ri }

	nullRight := make([]Value, len(right.cols))

	if len(right.rows) <= len(left.rows) {
		// Build on the right (smaller) side; probe with left rows in
		// order. Buckets hold right positions ascending, so emission is
		// nested-loop order for free.
		buckets := make(map[string][]int, len(right.rows))
		for ri, rr := range right.rows {
			if k, ok := rowKey(rr, rightSide); ok {
				buckets[k] = append(buckets[k], ri)
			}
		}
		for _, lr := range left.rows {
			matched := false
			if k, ok := rowKey(lr, leftSide); ok {
				for _, ri := range buckets[k] {
					hit, err := match(lr, right.rows[ri])
					if err != nil {
						return nil, err
					}
					if hit {
						matched = true
						emit(lr, right.rows[ri])
					}
				}
			}
			if jt == JoinLeft && !matched {
				emit(lr, nullRight)
			}
		}
	} else {
		// Build on the left (smaller) side; probe with right rows,
		// collecting candidate right positions per left row, then emit in
		// left-major order. Candidates arrive in right-row order, so the
		// per-left lists are ascending.
		buckets := make(map[string][]int, len(left.rows))
		for li, lr := range left.rows {
			if k, ok := rowKey(lr, leftSide); ok {
				buckets[k] = append(buckets[k], li)
			}
		}
		cand := make([][]int, len(left.rows))
		for ri, rr := range right.rows {
			if k, ok := rowKey(rr, rightSide); ok {
				for _, li := range buckets[k] {
					cand[li] = append(cand[li], ri)
				}
			}
		}
		for li, lr := range left.rows {
			matched := false
			for _, ri := range cand[li] {
				hit, err := match(lr, right.rows[ri])
				if err != nil {
					return nil, err
				}
				if hit {
					matched = true
					emit(lr, right.rows[ri])
				}
			}
			if jt == JoinLeft && !matched {
				emit(lr, nullRight)
			}
		}
	}
	out.logical = len(out.rows)
	return out, nil
}
