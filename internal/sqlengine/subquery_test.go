package sqlengine

import (
	"fmt"
	"strings"
	"testing"
)

// subqueryFixture builds two tables big enough that re-executing an
// uncorrelated subquery per outer row would dominate the cost counter.
func subqueryFixture(t *testing.T, rows int) *Database {
	t.Helper()
	db := NewDatabase("subq")
	for _, s := range []string{
		`CREATE TABLE outer_t (id INTEGER PRIMARY KEY, grp INTEGER)`,
		`CREATE TABLE inner_t (id INTEGER PRIMARY KEY, grp INTEGER)`,
	} {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tab := range []string{"outer_t", "inner_t"} {
		var vals []string
		for i := 0; i < rows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d)", i, i%7))
		}
		if _, err := db.Exec("INSERT INTO " + tab + " VALUES " + strings.Join(vals, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestUncorrelatedSubqueryMemoized pins the memoization win: an
// uncorrelated EXISTS must execute once per statement, not once per outer
// row. Without the memo this query charges ~rows² and blows past any
// reasonable budget.
func TestUncorrelatedSubqueryMemoized(t *testing.T) {
	const rows = 1000
	db := subqueryFixture(t, rows)
	res, err := db.Exec(`SELECT COUNT(*) FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows.Data[0][0].I; got != rows {
		t.Fatalf("COUNT(*) = %d, want %d", got, rows)
	}
	// One outer scan + one inner scan + slack: far below the rows² a
	// per-row re-execution would charge.
	if res.Cost > 4*rows {
		t.Fatalf("uncorrelated EXISTS cost %d — subquery is being re-executed per row", res.Cost)
	}
}

// TestUncorrelatedMemoCostPlanIndependent checks the invariant the rest of
// the repo relies on: memoization applies identically with the planner on
// and off, so Cost stays plan-independent.
func TestUncorrelatedMemoCostPlanIndependent(t *testing.T) {
	queries := []string{
		`SELECT COUNT(*) FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t)`,
		`SELECT COUNT(*) FROM outer_t WHERE grp IN (SELECT grp FROM inner_t WHERE id < 3)`,
		`SELECT COUNT(*) FROM outer_t WHERE id > (SELECT MIN(id) FROM inner_t)`,
	}
	for _, q := range queries {
		planned := subqueryFixture(t, 200)
		naive := subqueryFixture(t, 200)
		naive.SetPlanner(false)
		pr, err := planned.Exec(q)
		if err != nil {
			t.Fatalf("%s (planned): %v", q, err)
		}
		nr, err := naive.Exec(q)
		if err != nil {
			t.Fatalf("%s (naive): %v", q, err)
		}
		if pr.Rows.Data[0][0].I != nr.Rows.Data[0][0].I {
			t.Fatalf("%s: rows diverged (%v vs %v)", q, pr.Rows.Data[0][0], nr.Rows.Data[0][0])
		}
		if pr.Cost != nr.Cost {
			t.Fatalf("%s: cost diverged (planned %d, naive %d)", q, pr.Cost, nr.Cost)
		}
	}
}

// TestCorrelatedSubqueryStillPerRow: correlated subqueries must keep their
// per-row semantics — the memo must never capture a result that depends on
// the outer row.
func TestCorrelatedSubqueryStillPerRow(t *testing.T) {
	db := subqueryFixture(t, 50)
	// Each outer row matches exactly the inner rows in its group; rows in
	// group 0 have ids 0,7,14,...,49 → 8 inner matches each, others 7.
	rows, err := db.Query(`SELECT COUNT(*) FROM outer_t WHERE EXISTS (SELECT 1 FROM inner_t WHERE inner_t.grp = outer_t.grp AND inner_t.id > outer_t.id)`)
	if err != nil {
		t.Fatal(err)
	}
	// The largest id in every group has no strictly greater partner: 7
	// groups, so 50-7 outer rows qualify.
	if got := rows.Data[0][0].I; got != 43 {
		t.Fatalf("correlated EXISTS count = %d, want 43", got)
	}

	// Unqualified reference to an outer column is correlation too.
	rows, err = db.Query(`SELECT COUNT(*) FROM outer_t WHERE grp = (SELECT grp FROM inner_t WHERE inner_t.id = outer_t.id)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].I; got != 50 {
		t.Fatalf("correlated scalar subquery count = %d, want 50", got)
	}
}

// TestSubqueryCorrelationCheck unit-tests the static walker on shapes the
// executor will meet, including the conservative fallbacks.
func TestSubqueryCorrelationCheck(t *testing.T) {
	db := subqueryFixture(t, 10)
	cases := []struct {
		sub  string
		want bool
	}{
		{`SELECT 1 FROM inner_t`, false},
		{`SELECT grp FROM inner_t WHERE id < 5`, false},
		{`SELECT 1 FROM inner_t WHERE inner_t.grp = outer_t.grp`, true},
		// Unqualified name that only an outer table can supply.
		{`SELECT 1 FROM inner_t WHERE missing_col = 1`, true},
		// Nested subquery referencing the middle level stays uncorrelated
		// as a whole.
		{`SELECT 1 FROM inner_t WHERE grp IN (SELECT grp FROM inner_t WHERE id < 2)`, false},
		// Unknown table: conservative — treated as correlated.
		{`SELECT 1 FROM no_such_table`, true},
	}
	for _, c := range cases {
		st, err := Parse(c.sub)
		if err != nil {
			if c.want {
				continue // unparseable shapes can't be memoized either way
			}
			t.Fatalf("parse %q: %v", c.sub, err)
		}
		sel, ok := st.(*SelectStmt)
		if !ok {
			t.Fatalf("%q parsed to %T", c.sub, st)
		}
		if got := subqueryCorrelated(db, sel, nil); got != c.want {
			t.Errorf("subqueryCorrelated(%q) = %v, want %v", c.sub, got, c.want)
		}
	}
}
