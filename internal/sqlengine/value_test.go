package sqlengine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null should be null")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int AsFloat")
	}
	if Float(2.5).AsInt() != 2 {
		t.Error("Float AsInt truncates")
	}
	if Text("7").AsInt() != 7 {
		t.Error("Text AsInt parses")
	}
	if Text("x").AsFloat() != 0 {
		t.Error("non-numeric text is 0")
	}
	if Bool(true).I != 1 || Bool(false).I != 0 {
		t.Error("Bool encoding")
	}
	if Float(4).AsText() != "4.0" {
		t.Errorf("integral REAL renders with .0, got %q", Float(4).AsText())
	}
}

func TestTruth(t *testing.T) {
	cases := []struct {
		v     Value
		truth bool
		known bool
	}{
		{Null(), false, false},
		{Int(0), false, true},
		{Int(5), true, true},
		{Float(0), false, true},
		{Float(0.1), true, true},
		{Text("0"), false, true},
		{Text("1"), true, true},
		{Text("abc"), false, true},
	}
	for _, c := range cases {
		tr, kn := c.v.Truth()
		if tr != c.truth || kn != c.known {
			t.Errorf("Truth(%v) = (%v,%v), want (%v,%v)", c.v, tr, kn, c.truth, c.known)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	// NULL < numeric < text (SQLite ordering).
	if Compare(Null(), Int(0)) >= 0 {
		t.Error("NULL should sort before numbers")
	}
	if Compare(Int(999), Text("")) >= 0 {
		t.Error("numbers should sort before text")
	}
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("2 == 2.0")
	}
	if Compare(Text("a"), Text("B")) <= 0 {
		t.Error("text comparison must be case-sensitive byte order ('a' > 'B')")
	}
}

func TestDistinctEqualAndKey(t *testing.T) {
	if !DistinctEqual(Null(), Null()) {
		t.Error("NULL is distinct-equal to NULL")
	}
	if DistinctEqual(Null(), Int(0)) {
		t.Error("NULL != 0")
	}
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("3 and 3.0 must share a grouping key")
	}
	if Int(3).Key() == Text("3").Key() {
		t.Error("3 and '3' must not share a grouping key")
	}
}

// Property: Compare is antisymmetric and consistent with Key equality.
func TestCompareProperties(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		c1, c2 := Compare(va, vb), Compare(vb, va)
		if c1 != -c2 {
			return false
		}
		if c1 == 0 != (va.Key() == vb.Key()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is never known when either side is NULL.
func TestEqualNullProperty(t *testing.T) {
	f := func(s string) bool {
		_, known := Equal(Text(s), Null())
		_, known2 := Equal(Null(), Text(s))
		return !known && !known2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: text round-trips through Key uniquely.
func TestTextKeyInjective(t *testing.T) {
	f := func(a, b string) bool {
		return (a == b) == (Text(a).Key() == Text(b).Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "abbc", false},
		{"abc", "ABC", true}, // case-insensitive
		{"", "", true},
		{"", "x", false},
		{"%%", "x", true},
		{"x_", "x", false},
		{"POPLATEK%", "POPLATEK TYDNE", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: a string always matches itself as a pattern when it contains no
// wildcards, and always matches "%".
func TestLikeProperties(t *testing.T) {
	f := func(s string) bool {
		clean := ""
		for _, r := range s {
			if r != '%' && r != '_' && r < 128 {
				clean += string(r)
			}
		}
		return likeMatch(clean, clean) && likeMatch("%", clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
