package sqlengine

import (
	"fmt"
	"testing"
)

func bulkTestDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("bulk")
	db.MustExec(`CREATE TABLE items (
		id INTEGER PRIMARY KEY,
		name TEXT NOT NULL,
		qty INTEGER,
		price REAL
	)`)
	return db
}

// BulkInsert must be observationally identical to row-at-a-time INSERT:
// same coercion, same stored values, same query results.
func TestBulkInsertMatchesInsert(t *testing.T) {
	viaInsert := bulkTestDB(t)
	viaBulk := bulkTestDB(t)

	rows := [][]Value{
		{Int(1), Text("bolt"), Int(10), Float(0.25)},
		// Text that coerces: numeric affinity must parse "7", REAL must
		// widen the int, TEXT must render the number.
		{Int(2), Int(99), Text("7"), Int(3)},
		{Int(3), Text("nut"), Null(), Null()},
		{Float(4), Text("washer"), Float(2.0), Float(1.5)},
	}
	for _, r := range rows {
		viaInsert.MustExec(fmt.Sprintf("INSERT INTO items VALUES (%s, %s, %s, %s)",
			r[0], r[1], r[2], r[3]))
	}
	n, err := viaBulk.BulkInsert("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("BulkInsert appended %d rows, want %d", n, len(rows))
	}

	const q = "SELECT id, name, qty, price FROM items ORDER BY id"
	a, err := viaInsert.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaBulk.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != len(b.Data) {
		t.Fatalf("row counts differ: insert %d vs bulk %d", len(a.Data), len(b.Data))
	}
	for i := range a.Data {
		for j := range a.Data[i] {
			av, bv := a.Data[i][j], b.Data[i][j]
			if av.Kind != bv.Kind || !DistinctEqual(av, bv) {
				t.Fatalf("row %d col %d: insert %v (%v) vs bulk %v (%v)",
					i, j, av, av.Kind, bv, bv.Kind)
			}
		}
	}
}

// A constraint violation anywhere in the batch must leave the table
// untouched — the staging pass makes the call atomic.
func TestBulkInsertAtomicOnConstraintViolation(t *testing.T) {
	db := bulkTestDB(t)
	if _, err := db.BulkInsert("items", [][]Value{
		{Int(1), Text("good"), Int(1), Float(1)},
		{Int(2), Null(), Int(2), Float(2)}, // violates name NOT NULL
	}); err == nil {
		t.Fatal("BulkInsert accepted a NOT NULL violation")
	}
	rows, err := db.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].I; got != 0 {
		t.Fatalf("failed bulk insert left %d rows behind", got)
	}
}

func TestBulkInsertRejectsBadShape(t *testing.T) {
	db := bulkTestDB(t)
	if _, err := db.BulkInsert("nope", nil); err == nil {
		t.Fatal("BulkInsert accepted an unknown table")
	}
	if _, err := db.BulkInsert("items", [][]Value{{Int(1)}}); err == nil {
		t.Fatal("BulkInsert accepted a short row")
	}
}

// Bulk-loaded rows must be visible to the planner's lazily built
// point-lookup indexes, i.e. the per-call invalidation really ran.
func TestBulkInsertInvalidatesIndexes(t *testing.T) {
	db := bulkTestDB(t)
	db.MustExec("INSERT INTO items VALUES (1, 'a', 1, 1.0)")
	// Build the lazy index on id.
	if rows, err := db.Query("SELECT name FROM items WHERE id = 1"); err != nil || len(rows.Data) != 1 {
		t.Fatalf("warm-up lookup: %v (%d rows)", err, len(rows.Data))
	}
	if _, err := db.BulkInsert("items", [][]Value{{Int(2), Text("b"), Int(2), Float(2)}}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT name FROM items WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].S != "b" {
		t.Fatalf("bulk-inserted row invisible to indexed lookup: %v", rows.Data)
	}
}

// BenchmarkBulkInsertVsInsert quantifies the bulk path's point: loading
// rows without the per-statement lex/parse/execute machinery.
func BenchmarkBulkInsertVsInsert(b *testing.B) {
	const n = 2000
	rows := make([][]Value, n)
	stmts := make([]string, n)
	for i := range rows {
		rows[i] = []Value{Int(int64(i)), Text(fmt.Sprintf("item-%d", i)), Int(int64(i % 7)), Float(float64(i) / 3)}
		stmts[i] = fmt.Sprintf("INSERT INTO items VALUES (%d, 'item-%d', %d, %g)", i, i, i%7, float64(i)/3)
	}
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := bulkTestDB(b)
			for _, s := range stmts {
				db.MustExec(s)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := bulkTestDB(b)
			if _, err := db.BulkInsert("items", rows); err != nil {
				b.Fatal(err)
			}
		}
	})
}
