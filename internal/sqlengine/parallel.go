package sqlengine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Morsel-driven parallel execution. Batch operators (scan filters, WHERE
// residual filters, hash-join probes, grouped aggregation) split their
// input into fixed-size morsels; a small worker group — the coordinating
// goroutine plus workers borrowed from a process-wide per-core pool —
// pulls morsel indices from an atomic counter, writes results into
// per-morsel slots, and the coordinator concatenates the slots in morsel
// order. That order-preserving merge is what keeps every parallel operator
// emitting byte-identical rows to its serial counterpart.
//
// Only safe-total expressions (planner.go) ever run inside a morsel:
// they cannot execute subqueries (the one path by which evaluation touches
// the shared execCtx) and cannot fail except for row-independent column
// resolution errors, so worker-local scopes and environments are fully
// isolated and the logical Cost — charged serially before the operator
// runs — is untouched.

const (
	// morselRows is the number of input rows per work unit. Big enough to
	// amortise scheduling, small enough that NumCPU workers load-balance
	// over skewed filters.
	morselRows = 4096
	// defMinBatchRows is the smallest operator input that takes the batch
	// (vectorized/kernel) path at all; below it the plain serial
	// interpreter loop wins. Database.SetBatchTuning overrides.
	defMinBatchRows = 1024
	// defMinParRows is the smallest operator input that may fan out to
	// parallel workers. Database.SetBatchTuning overrides.
	defMinParRows = 8192
)

// workerTokens is the process-wide pool bounding extra worker goroutines
// across all concurrently executing queries: GOMAXPROCS-1 tokens (at
// least one, so two-way parallelism stays available on a single-core
// box when explicitly requested). Operators acquire tokens without
// blocking — under concurrent query load, execution degrades toward
// serial instead of oversubscribing the machine.
var workerTokens = make(chan struct{}, maxInt(runtime.GOMAXPROCS(0)-1, 1))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func acquireTokens(want int) int {
	got := 0
	for got < want {
		select {
		case workerTokens <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func releaseTokens(n int) {
	for i := 0; i < n; i++ {
		<-workerTokens
	}
}

// Engine-wide batch execution counters, exported to the metrics registry
// via RegisterEngineExecMetrics (obs.go).
var (
	engineBatchesTotal     atomic.Int64 // morsels processed by batch operators
	engineParallelOpsTotal atomic.Int64 // batch operators that ran with >1 worker
)

func morselCount(nRows int) int {
	return (nRows + morselRows - 1) / morselRows
}

// morselBounds returns the [lo, hi) input range of morsel m.
func morselBounds(m, nRows int) (lo, hi int) {
	lo = m * morselRows
	hi = lo + morselRows
	if hi > nRows {
		hi = nRows
	}
	return lo, hi
}

// runMorsels executes fn(worker, unit) for every unit in [0, nUnits) over
// the calling goroutine plus workers-1 spawned goroutines. Units are
// claimed from a shared atomic counter (morsel stealing), so a skewed
// unit cannot idle the other workers.
func runMorsels(nUnits, workers int, fn func(w, m int)) {
	if workers <= 1 || nUnits <= 1 {
		for m := 0; m < nUnits; m++ {
			fn(0, m)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= nUnits {
					return
				}
				fn(w, m)
			}
		}(w)
	}
	for {
		m := int(next.Add(1)) - 1
		if m >= nUnits {
			break
		}
		fn(0, m)
	}
	wg.Wait()
}

// minBatchRows / minParRows resolve the per-database thresholds.
func (ec *execCtx) minBatchRows() int {
	if ec.db.minVecRows > 0 {
		return ec.db.minVecRows
	}
	return defMinBatchRows
}

func (ec *execCtx) minParRows() int {
	if ec.db.minParRows > 0 {
		return ec.db.minParRows
	}
	return defMinParRows
}

// useBatch reports whether a batch operator should engage for an input of
// nRows rows under this execution.
func (ec *execCtx) useBatch(nRows int) bool {
	return ec.vec && nRows >= ec.minBatchRows()
}

// workerCap is the per-operator worker ceiling for this execution.
func (ec *execCtx) workerCap() int {
	if ec.db.workers > 0 {
		return ec.db.workers
	}
	return runtime.GOMAXPROCS(0)
}

// batchRun executes nUnits work units of one batch operator. gateRows is
// the operator's input cardinality: below the parallel threshold the
// units run serially on the coordinator; above it, up to workerCap-1
// extra workers are borrowed from the process-wide pool (non-blocking —
// zero available tokens means serial execution, not waiting). setup is
// called with the final worker count before any unit runs, so callers
// can allocate per-worker state. Only the coordinating goroutine touches
// the execCtx stats.
func (ec *execCtx) batchRun(nUnits, gateRows int, setup func(workers int), fn func(w, m int)) {
	workers := 1
	if gateRows >= ec.minParRows() && nUnits > 1 {
		want := ec.workerCap()
		if want > nUnits {
			want = nUnits
		}
		if want > 1 {
			workers = 1 + acquireTokens(want-1)
		}
	}
	if setup != nil {
		setup(workers)
	}
	runMorsels(nUnits, workers, fn)
	if workers > 1 {
		releaseTokens(workers - 1)
		engineParallelOpsTotal.Add(1)
	}
	ec.batches += int64(nUnits)
	if workers > ec.maxPar {
		ec.maxPar = workers
	}
	engineBatchesTotal.Add(int64(nUnits))
}

// runFilter applies compiled predicates to rows, morsel-parallel, emitting
// survivors in input order. Index-form kernels (byIdx) require rows to be
// the exact slice the predicates were compiled against (a full table
// scan); expression fallbacks evaluate with a worker-local environment.
func (ec *execCtx) runFilter(cols []scopeCol, rows [][]Value, preds []rowPred, outer *scope) ([][]Value, error) {
	nm := morselCount(len(rows))
	outs := make([][][]Value, nm)
	errs := make([]error, nm)
	needEnv := false
	for _, p := range preds {
		if p.byIdx == nil && p.byRow == nil {
			needEnv = true
		}
	}
	var envs []*evalEnv
	ec.batchRun(nm, len(rows), func(workers int) {
		envs = make([]*evalEnv, workers)
	}, func(w, m int) {
		var env *evalEnv
		if needEnv {
			env = envs[w]
			if env == nil {
				env = &evalEnv{ec: ec, sc: &scope{cols: cols, parent: outer}}
				envs[w] = env
			}
		}
		lo, hi := morselBounds(m, len(rows))
		out := make([][]Value, 0, hi-lo)
		for i := lo; i < hi; i++ {
			row := rows[i]
			pass := true
			for _, p := range preds {
				var ok bool
				switch {
				case p.byIdx != nil:
					ok = p.byIdx(i)
				case p.byRow != nil:
					ok = p.byRow(row)
				default:
					env.sc.row = row
					v, err := env.eval(p.expr)
					if err != nil {
						errs[m] = err
						return
					}
					t, known := v.Truth()
					ok = t && known
				}
				if !ok {
					pass = false
					break
				}
			}
			if pass {
				out = append(out, row)
			}
		}
		outs[m] = out
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return concatRowMorsels(outs), nil
}

// concatRowMorsels merges per-morsel outputs in morsel order — the step
// that restores serial emission order after parallel execution.
func concatRowMorsels(outs [][][]Value) [][]Value {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	res := make([][]Value, 0, total)
	for _, o := range outs {
		res = append(res, o...)
	}
	return res
}

// filterScan is the vectorized scan filter: pushed conjuncts compiled
// against t's columnar shadow and applied over the full table, morsel
// parallel. Only valid for full scans — index-narrowed candidate lists
// break the positional alignment the vectors rely on.
func (ec *execCtx) filterScan(t *Table, cols []scopeCol, pushed []conjunct, outer *scope) ([][]Value, error) {
	exprs := make([]Expr, len(pushed))
	for i, c := range pushed {
		exprs[i] = c.expr
	}
	ps := &predSource{t: t, vecs: true, cols: cols}
	return ec.runFilter(cols, t.Rows, compilePreds(ps, exprs), outer)
}

// filterIntermediate is the batch filter for post-join and WHERE-residual
// stages: row-form kernels (no columnar shadow exists for intermediate
// relations) with expression fallback, morsel parallel.
func (ec *execCtx) filterIntermediate(cols []scopeCol, rows [][]Value, exprs []Expr, outer *scope) ([][]Value, error) {
	ps := &predSource{cols: cols}
	return ec.runFilter(cols, rows, compilePreds(ps, exprs), outer)
}
