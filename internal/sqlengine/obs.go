package sqlengine

import "repro/internal/obs"

// RegisterPlanCacheMetrics publishes the plan-cache counters of a set of
// databases into reg as gauge callbacks, aggregated at scrape time. stats
// is called per scrape so the exposition always reflects live counters;
// servers pass a closure over their corpus registry.
func RegisterPlanCacheMetrics(reg *obs.Registry, stats func() PlanCacheStats, labels ...obs.Label) {
	if reg == nil || stats == nil {
		return
	}
	reg.GaugeFunc("sqlengine_plan_cache_hits_total", "Prepare calls served from the plan cache.",
		func() float64 { return float64(stats().Hits) }, labels...)
	reg.GaugeFunc("sqlengine_plan_cache_misses_total", "Prepare calls parsed and planned from scratch.",
		func() float64 { return float64(stats().Misses) }, labels...)
	reg.GaugeFunc("sqlengine_plan_cache_evictions_total", "Plans displaced by the LRU policy.",
		func() float64 { return float64(stats().Evictions) }, labels...)
	reg.GaugeFunc("sqlengine_plan_cache_entries", "Currently cached plans.",
		func() float64 { return float64(stats().Entries) }, labels...)
}

// RegisterEngineExecMetrics publishes the process-wide batch-execution
// counters (parallel.go) into reg as gauge callbacks. These are engine
// globals, not per-database, so one registration per process suffices.
func RegisterEngineExecMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("sqlengine_engine_batches_total", "Morsels processed by batch (vectorized/parallel) operators.",
		func() float64 { return float64(engineBatchesTotal.Load()) }, labels...)
	reg.GaugeFunc("sqlengine_engine_parallel_ops_total", "Batch operators that executed with more than one worker.",
		func() float64 { return float64(engineParallelOpsTotal.Load()) }, labels...)
}
