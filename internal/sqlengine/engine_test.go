package sqlengine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestVectorizedPlannerMatrix is the engine's core equivalence guarantee:
// every combination of planner on/off and vectorized on/off (plus parallel
// workers) must produce byte-identical rows AND byte-identical logical
// Cost against the naive reference for the full planner battery.
// SetBatchTuning(1, 1) forces the batch path to engage even on the small
// fixtures, so every kernel in kernels.go is exercised against the
// interpreter on the same queries.
func TestVectorizedPlannerMatrix(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		naive := buildMultiDB(seed, 60)
		naive.SetPlanner(false)

		configs := []struct {
			name string
			db   *Database
		}{
			{"planned row-wise", func() *Database {
				db := buildMultiDB(seed, 60)
				db.SetVectorized(false)
				return db
			}()},
			{"planned vectorized serial", func() *Database {
				db := buildMultiDB(seed, 60)
				db.SetBatchTuning(1, 1)
				db.SetParallelism(1)
				return db
			}()},
			{"planned vectorized parallel", func() *Database {
				db := buildMultiDB(seed, 60)
				db.SetBatchTuning(1, 1)
				db.SetParallelism(4)
				return db
			}()},
			{"unplanned with vec flags set", func() *Database {
				// Planner off must ignore the vectorized machinery entirely:
				// identical to naive by construction, pinned here anyway.
				db := buildMultiDB(seed, 60)
				db.SetPlanner(false)
				db.SetBatchTuning(1, 1)
				db.SetParallelism(4)
				return db
			}()},
		}
		for _, cfg := range configs {
			for _, q := range crossCheckQueries {
				t.Run(fmt.Sprintf("seed%d/%s", seed, cfg.name), func(t *testing.T) {
					crossCheck(t, cfg.db, naive, q)
				})
			}
		}
	}
}

// engineQueries are the shapes that matter at scale: pushdown filter
// kernels, parallel hash-join probes, LEFT JOIN null extension, grouped
// aggregation, fast projection with ORDER BY/LIMIT. All subquery-free so
// the big-input cross-check stays O(n).
var engineQueries = []string{
	"SELECT id FROM f WHERE num > 50 AND flag = 1",
	"SELECT id FROM f WHERE grp IN ('a', 'b') AND num BETWEEN 10 AND 70",
	"SELECT id FROM f WHERE txt LIKE 'x%' AND flag = 0",
	"SELECT id FROM f WHERE grp IS NULL",
	"SELECT COUNT(*) FROM f WHERE num_text < 500000",
	"SELECT f.id, d.label FROM f JOIN d ON f.grp = d.grp WHERE f.num < 20",
	"SELECT f.id, d.label FROM f LEFT JOIN d ON f.grp = d.grp WHERE d.label IS NULL",
	"SELECT f.id, d.label FROM f JOIN d ON f.grp = d.grp AND f.num > d.weight LIMIT 40",
	"SELECT COUNT(*) FROM f JOIN d ON f.grp = d.grp",
	"SELECT f.id FROM f JOIN d ON f.grp = d.grp ORDER BY f.id LIMIT 25",
	"SELECT grp, COUNT(*), SUM(num), AVG(num), MIN(num), MAX(num) FROM f GROUP BY grp ORDER BY grp",
	"SELECT f.grp, d.label, COUNT(*) FROM f JOIN d ON f.grp = d.grp GROUP BY f.grp, d.label ORDER BY 3 DESC, 1",
	"SELECT grp, COUNT(*) FROM f GROUP BY grp HAVING COUNT(*) > 100 ORDER BY 2 DESC, 1",
	"SELECT DISTINCT grp FROM f ORDER BY grp",
	"SELECT id, num, txt FROM f WHERE flag = 1 ORDER BY num DESC, id LIMIT 30",
	"SELECT * FROM f WHERE flag = 0 ORDER BY id LIMIT 10",
}

// buildEngineDB bulk-loads a database big enough to cross the *default*
// batch and parallel thresholds — no tuning override, so the production
// engagement path is what gets tested.
func buildEngineDB(seed int64, n int) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase("engine")
	db.MustExec("CREATE TABLE f (id INTEGER, grp TEXT, num REAL, flag INTEGER, txt TEXT, num_text TEXT)")
	db.MustExec("CREATE TABLE d (grp TEXT, label TEXT, weight INTEGER)")
	groups := []string{"a", "b", "c", "d", "e", "zz"}
	rows := make([][]Value, 0, n)
	for i := 0; i < n; i++ {
		g := Text(groups[rng.Intn(len(groups))])
		if rng.Intn(10) == 0 {
			g = Null()
		}
		txt := fmt.Sprintf("%c%03d", 'w'+rng.Intn(4), rng.Intn(1000))
		rows = append(rows, []Value{
			Int(int64(i)), g, Float(float64(rng.Intn(1000)) / 10),
			Int(int64(rng.Intn(2))), Text(txt), Text(fmt.Sprintf("%d", rng.Intn(1000000))),
		})
	}
	if _, err := db.BulkInsert("f", rows); err != nil {
		panic(err)
	}
	for i, g := range groups[:4] {
		db.MustExec(fmt.Sprintf("INSERT INTO d VALUES ('%s', 'L%d', %d)", g, i, i*10))
	}
	db.MustExec("INSERT INTO d VALUES (NULL, 'null-group', 99)")
	return db
}

// TestEngineCrossValidationAtScale cross-checks the batch engine against
// the naive executor on inputs large enough that morsel splitting, the
// worker pool, and the columnar scan kernels all engage with production
// thresholds.
func TestEngineCrossValidationAtScale(t *testing.T) {
	n := 12000
	if testing.Short() {
		n = 9000 // still > defMinParRows and > 2 morsels
	}
	vec := buildEngineDB(5, n)
	vec.SetParallelism(4)
	naive := buildEngineDB(5, n)
	naive.SetPlanner(false)
	rowwise := buildEngineDB(5, n)
	rowwise.SetVectorized(false)
	for _, q := range engineQueries {
		crossCheck(t, vec, naive, q)
		crossCheck(t, rowwise, naive, q)
	}
}

// TestResultReportsPhysicalExecution pins the Result.Batches/Workers
// contract: batch execution reports morsels, naive execution reports none,
// and Workers is always at least 1.
func TestResultReportsPhysicalExecution(t *testing.T) {
	vec := buildEngineDB(11, 9000)
	res := vec.MustExec("SELECT COUNT(*) FROM f WHERE num > 50")
	if res.Batches == 0 {
		t.Fatalf("batch scan reported 0 batches (workers=%d)", res.Workers)
	}
	if res.Workers < 1 {
		t.Fatalf("Workers = %d, want >= 1", res.Workers)
	}

	naive := buildEngineDB(11, 9000)
	naive.SetPlanner(false)
	res = naive.MustExec("SELECT COUNT(*) FROM f WHERE num > 50")
	if res.Batches != 0 || res.Workers != 1 {
		t.Fatalf("naive execution reported batches=%d workers=%d, want 0/1", res.Batches, res.Workers)
	}
}

// TestEngineConcurrentQueryHammer runs 8 goroutines of concurrent
// Prepare/Exec against ONE shared database while morsel workers are live.
// Under -race this guards the shared plan cache, the lazily built
// point-lookup indexes and column vectors (all built on first use, so the
// goroutines race to build them), and the process-wide worker-token pool.
// Every result must equal the serially precomputed reference.
func TestEngineConcurrentQueryHammer(t *testing.T) {
	db := buildEngineDB(23, 10000)
	db.SetParallelism(4)

	queries := []string{
		"SELECT COUNT(*) FROM f WHERE num > 50 AND flag = 1",
		"SELECT f.grp, COUNT(*), SUM(f.num) FROM f JOIN d ON f.grp = d.grp GROUP BY f.grp ORDER BY f.grp",
		"SELECT id FROM f WHERE id = 4321",
		"SELECT f.id, d.label FROM f JOIN d ON f.grp = d.grp ORDER BY f.id LIMIT 20",
		"SELECT grp, MIN(num), MAX(num) FROM f GROUP BY grp ORDER BY grp",
		"SELECT COUNT(*) FROM f WHERE txt LIKE 'x%'",
	}
	// Reference pass on an identical database, serial and unplanned.
	ref := buildEngineDB(23, 10000)
	ref.SetPlanner(false)
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := ref.Exec(q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[i] = r
	}

	iters := 20
	if testing.Short() {
		iters = 6
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(queries)
				st, err := db.Prepare(queries[qi])
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d prepare %q: %w", g, queries[qi], err)
					return
				}
				res, err := st.Exec()
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d exec %q: %w", g, queries[qi], err)
					return
				}
				if !rowsIdentical(res.Rows, want[qi].Rows) {
					errCh <- fmt.Errorf("goroutine %d: rows diverged for %q", g, queries[qi])
					return
				}
				if res.Cost != want[qi].Cost {
					errCh <- fmt.Errorf("goroutine %d: Cost %d != %d for %q", g, res.Cost, want[qi].Cost, queries[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
