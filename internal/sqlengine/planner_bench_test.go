// Planner benchmarks over the BIRD financial fixture — the database the
// paper's Table III examples come from, and the join shapes the EX/VES
// evaluation hot path executes thousands of times per experiment table.
// The external test package lets the benchmarks build the real corpus
// fixture through internal/dataset without an import cycle.
package sqlengine_test

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlengine"
)

// financialEngine returns the financial database's engine, optionally with
// the planner disabled (the naive nested-loop reference).
func financialEngine(b *testing.B, planner bool) *sqlengine.Database {
	b.Helper()
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
	db, ok := corpus.DB("financial")
	if !ok {
		b.Fatal("no financial DB in BIRD corpus")
	}
	db.Engine.SetPlanner(planner)
	return db.Engine
}

// join3Query is the 3-table equi-join microbench target: client ⋈ disp ⋈
// account with a mixed WHERE. Naively this evaluates |client|·|disp| +
// |intermediate|·|account| join pairs per execution.
const join3Query = "SELECT c.client_id, a.account_id, a.frequency " +
	"FROM client AS c JOIN disp AS d ON d.client_id = c.client_id " +
	"JOIN account AS a ON a.account_id = d.account_id " +
	"WHERE a.frequency = 'POPLATEK TYDNE' AND c.gender = 'F'"

func benchQuery(b *testing.B, eng *sqlengine.Database, sql string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoin3Table contrasts the nested-loop and hash-join plans on the
// same query and data. Both variants charge the identical logical Cost;
// only wall-clock differs.
func BenchmarkJoin3Table(b *testing.B) {
	b.Run("nested", func(b *testing.B) { benchQuery(b, financialEngine(b, false), join3Query) })
	b.Run("hash", func(b *testing.B) { benchQuery(b, financialEngine(b, true), join3Query) })
}

// BenchmarkPointLookup measures single-table equality predicates: the
// planner's lazily built per-column index versus the naive full scan with
// per-row predicate evaluation.
func BenchmarkPointLookup(b *testing.B) {
	const q = "SELECT account_id, date FROM account WHERE account_id = 77"
	b.Run("scan", func(b *testing.B) { benchQuery(b, financialEngine(b, false), q) })
	b.Run("indexed", func(b *testing.B) { benchQuery(b, financialEngine(b, true), q) })
}

// BenchmarkPrepare contrasts a cold parse+plan per execution with the
// prepared-plan cache hit path that Database.Exec rides.
func BenchmarkPrepare(b *testing.B) {
	eng := financialEngine(b, true)
	b.Run("cold-parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqlengine.Parse(join3Query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-plan", func(b *testing.B) {
		if _, err := eng.Prepare(join3Query); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Prepare(join3Query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLeftJoinEvidencePattern is the LEFT JOIN + aggregation shape
// that predicted SQL produces constantly in the evaluation workload.
func BenchmarkLeftJoinEvidencePattern(b *testing.B) {
	const q = "SELECT d.A2, COUNT(*) FROM account AS a " +
		"LEFT JOIN district AS d ON a.district_id = d.district_id " +
		"GROUP BY d.A2 ORDER BY 2 DESC"
	b.Run("nested", func(b *testing.B) { benchQuery(b, financialEngine(b, false), q) })
	b.Run("hash", func(b *testing.B) { benchQuery(b, financialEngine(b, true), q) })
}
