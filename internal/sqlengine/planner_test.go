package sqlengine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// buildMultiDB constructs a deterministic three-table database with the
// shapes the planner must handle: equi-joinable keys, NULLs in join
// columns, a TEXT/INTEGER affinity mismatch between acc.num_text and
// t.id, and unmatched rows on both sides of every join.
func buildMultiDB(seed int64, nRows int) *Database {
	rng := rand.New(rand.NewSource(seed))
	db := NewDatabase("planner")
	db.MustExec("CREATE TABLE t (id INTEGER, grp TEXT, num REAL, flag INTEGER)")
	db.MustExec("CREATE TABLE g (grp TEXT, label TEXT, weight INTEGER)")
	db.MustExec("CREATE TABLE acc (id INTEGER, t_id INTEGER, num_text TEXT, kind TEXT)")
	groups := []string{"a", "b", "c", "d", "zz"}
	for i := 0; i < nRows; i++ {
		g := groups[rng.Intn(len(groups))]
		num := float64(rng.Intn(1000)) / 10
		flag := rng.Intn(2)
		if rng.Intn(8) == 0 {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, NULL, %g, %d)", i, num, flag))
		} else {
			db.MustExec(fmt.Sprintf("INSERT INTO t VALUES (%d, '%s', %g, %d)", i, g, num, flag))
		}
	}
	for i, g := range groups[:4] {
		db.MustExec(fmt.Sprintf("INSERT INTO g VALUES ('%s', 'L%d', %d)", g, i, i*10))
	}
	db.MustExec("INSERT INTO g VALUES (NULL, 'null-group', 99)")
	for i := 0; i < nRows/2; i++ {
		tid := rng.Intn(nRows + 5) // some point past the end: unmatched
		kind := groups[rng.Intn(len(groups))]
		// num_text holds the id as numeric-looking TEXT: joining it to
		// t.id exercises the harmonise coercion inside the hash join.
		db.MustExec(fmt.Sprintf("INSERT INTO acc VALUES (%d, %d, '%d', '%s')", i, tid, tid, kind))
	}
	return db
}

// plannerPair builds two identical databases and disables the planner on
// the second: the naive executor is the reference implementation.
func plannerPair(seed int64, nRows int) (planned, naive *Database) {
	planned = buildMultiDB(seed, nRows)
	naive = buildMultiDB(seed, nRows)
	naive.SetPlanner(false)
	return planned, naive
}

func rowsIdentical(a, b *Rows) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !reflect.DeepEqual(a.Columns, b.Columns) {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if !reflect.DeepEqual(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}

// crossCheck runs sql on both databases and requires identical outcomes:
// same error-ness, same rows in the same order, same Cost.
func crossCheck(t *testing.T, planned, naive *Database, sql string) {
	t.Helper()
	pr, perr := planned.Exec(sql)
	nr, nerr := naive.Exec(sql)
	if (perr == nil) != (nerr == nil) {
		t.Fatalf("planner/naive error mismatch for %q: planner=%v naive=%v", sql, perr, nerr)
	}
	if perr != nil {
		return
	}
	if !rowsIdentical(pr.Rows, nr.Rows) {
		t.Fatalf("planner/naive rows differ for %q:\nplanner=%v\nnaive=%v", sql, pr.Rows, nr.Rows)
	}
	if pr.Cost != nr.Cost {
		t.Fatalf("planner/naive Cost differ for %q: planner=%d naive=%d", sql, pr.Cost, nr.Cost)
	}
}

// crossCheckQueries is the planner's acceptance battery: every optimisable
// shape (hash joins, pushdown targets, index lookups) plus every mandatory
// fallback (non-equi ON, subqueries, LEFT JOIN right-side predicates,
// ambiguous references) cross-checked against the naive executor.
var crossCheckQueries = []string{
	// Hash equi-joins, two and three tables, with LIMIT exercising raw
	// emission order.
	"SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp",
	"SELECT t.id, g.label FROM t JOIN g ON g.grp = t.grp LIMIT 7",
	"SELECT t.id, g.label, acc.kind FROM t JOIN g ON t.grp = g.grp JOIN acc ON acc.t_id = t.id",
	"SELECT COUNT(*) FROM t JOIN g ON t.grp = g.grp JOIN acc ON acc.t_id = t.id WHERE acc.kind = 'a'",
	// Affinity coercion across the join key: TEXT num_text vs INTEGER id.
	"SELECT t.id, acc.id FROM t JOIN acc ON t.id = acc.num_text",
	// LEFT JOIN null-extension through the hash path.
	"SELECT t.id, g.label FROM t LEFT JOIN g ON t.grp = g.grp ORDER BY t.id",
	"SELECT t.id, g.label FROM t LEFT JOIN g ON t.grp = g.grp WHERE t.num > 30",
	"SELECT t.id, g.label FROM t LEFT JOIN g ON t.grp = g.grp WHERE g.label IS NULL",
	// Equi + residual conjunction; same-side equality as residual.
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp AND t.num > g.weight",
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp AND g.label = g.label",
	"SELECT t.id FROM t JOIN acc ON t.id = acc.t_id AND acc.kind != 'zz' AND t.flag = 1",
	// Non-equi ON: nested-loop fallback.
	"SELECT t.id, g.weight FROM t JOIN g ON t.num > g.weight WHERE t.id < 12",
	// Cross join (no ON).
	"SELECT COUNT(*) FROM t CROSS JOIN g",
	// Pushdown: single table, point lookup, IN, BETWEEN, LIKE.
	"SELECT id FROM t WHERE grp = 'a'",
	"SELECT id FROM t WHERE grp = 'a' AND num > 20",
	"SELECT id FROM t WHERE t.grp = 'zz' OR flag = 1",
	"SELECT id FROM t WHERE grp IN ('a', 'b') AND num BETWEEN 10 AND 70",
	"SELECT id FROM t WHERE grp LIKE 'a%' AND flag = 1",
	"SELECT id FROM t WHERE grp = NULL",
	// Pushdown around one join: both sides, and WHERE mixing sides.
	"SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp WHERE t.flag = 1",
	"SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp WHERE g.weight > 5 AND t.num < 80",
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp WHERE t.num > g.weight",
	"SELECT t.id FROM t LEFT JOIN g ON t.grp = g.grp WHERE t.flag = 0",
	// Two joins: only the last table's predicate may move.
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp JOIN acc ON acc.t_id = t.id WHERE acc.kind = 'b' AND t.flag = 1",
	// Aggregation, grouping, ordering over planned joins.
	"SELECT g.label, COUNT(*), SUM(t.num) FROM t JOIN g ON t.grp = g.grp GROUP BY g.label ORDER BY g.label",
	"SELECT grp, COUNT(*) FROM t GROUP BY grp HAVING COUNT(*) > 2 ORDER BY 2 DESC, 1",
	"SELECT DISTINCT t.grp FROM t JOIN g ON t.grp = g.grp ORDER BY t.grp",
	// Subqueries: unsafe for pushdown, joins inside still planned.
	"SELECT id FROM t WHERE grp IN (SELECT grp FROM g WHERE weight > 5)",
	"SELECT id FROM t WHERE EXISTS (SELECT 1 FROM acc WHERE acc.t_id = t.id)",
	"SELECT (SELECT COUNT(*) FROM acc WHERE acc.t_id = t.id) FROM t WHERE flag = 1",
	"SELECT s.id FROM (SELECT id, grp FROM t WHERE flag = 1) AS s JOIN g ON s.grp = g.grp",
	// Compound selects over joins.
	"SELECT grp FROM t WHERE flag = 1 UNION SELECT grp FROM g WHERE weight > 0 ORDER BY 1",
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp INTERSECT SELECT id FROM t WHERE flag = 1",
	// Aliases and qualified stars.
	"SELECT a.id, b.label FROM t AS a JOIN g AS b ON a.grp = b.grp WHERE a.flag = 1",
	"SELECT b.* FROM t AS a JOIN g AS b ON a.grp = b.grp LIMIT 5",
	// Error shapes must error identically.
	"SELECT id FROM t JOIN g ON t.grp = g.grp WHERE nonexistent = 1",
	"SELECT t.id FROM t JOIN acc ON t.id = acc.id WHERE id = 1",
	// Unsafe ON clauses must disable pushdown: an ON subquery charges
	// cost per evaluated pair, so the pair count must stay naive.
	"SELECT t.id FROM t JOIN g ON t.grp = g.grp AND (SELECT COUNT(*) FROM g) > 0 WHERE t.id = 2",
	// An unresolvable ON reference must error exactly when the naive
	// executor errors — even when a pushable WHERE would empty a scan
	// and the ON would never be evaluated.
	"SELECT t.id FROM t JOIN g ON t.grp = g.nosuch WHERE t.id = 2",
	"SELECT t.id FROM t JOIN g ON t.grp = g.nosuch WHERE t.id = 99999",
}

func TestPlannerCrossValidation(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		planned, naive := plannerPair(seed, 60)
		for _, q := range crossCheckQueries {
			crossCheck(t, planned, naive, q)
		}
	}
}

// TestPlannerCrossValidationAfterDML re-runs point-lookup and join queries
// after INSERT/UPDATE/DELETE on both databases: the planner's lazy indexes
// must be invalidated, never stale.
func TestPlannerCrossValidationAfterDML(t *testing.T) {
	planned, naive := plannerPair(3, 50)
	queries := []string{
		"SELECT id, grp, num FROM t WHERE grp = 'a'",
		"SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp",
		"SELECT COUNT(*) FROM t WHERE grp = 'freshly-inserted'",
	}
	dml := []string{
		"INSERT INTO t VALUES (1000, 'freshly-inserted', 5.5, 1)",
		"INSERT INTO t VALUES (1001, 'a', 6.5, 0)",
		"UPDATE t SET grp = 'b' WHERE id = 1001",
		"UPDATE g SET weight = 77 WHERE grp = 'a'",
		"DELETE FROM t WHERE grp = 'a'",
	}
	for _, q := range queries {
		crossCheck(t, planned, naive, q)
	}
	for _, m := range dml {
		pr := planned.MustExec(m)
		nr := naive.MustExec(m)
		if pr.RowsAffected != nr.RowsAffected {
			t.Fatalf("DML %q affected %d (planner) vs %d (naive)", m, pr.RowsAffected, nr.RowsAffected)
		}
		for _, q := range queries {
			crossCheck(t, planned, naive, q)
		}
	}
}

// TestIndexInvalidationAfterDML pins the index lifecycle directly: a point
// lookup builds the index, each DML kind drops it, and subsequent lookups
// see the new data.
func TestIndexInvalidationAfterDML(t *testing.T) {
	db := NewDatabase("idx")
	db.MustExec("CREATE TABLE p (id INTEGER, name TEXT)")
	db.MustExec("INSERT INTO p VALUES (1, 'x'), (2, 'y'), (3, 'x')")

	count := func() int64 {
		rows, err := db.Query("SELECT COUNT(*) FROM p WHERE name = 'x'")
		if err != nil {
			t.Fatal(err)
		}
		return rows.Data[0][0].I
	}
	if got := count(); got != 2 {
		t.Fatalf("initial count = %d, want 2", got)
	}
	tab, _ := db.Table("p")
	tab.idxMu.Lock()
	built := tab.eqIdx != nil
	tab.idxMu.Unlock()
	if !built {
		t.Fatal("point lookup did not build the equality index")
	}

	db.MustExec("INSERT INTO p VALUES (4, 'x')")
	if got := count(); got != 3 {
		t.Fatalf("count after INSERT = %d, want 3", got)
	}
	db.MustExec("UPDATE p SET name = 'z' WHERE id = 1")
	if got := count(); got != 2 {
		t.Fatalf("count after UPDATE = %d, want 2", got)
	}
	db.MustExec("DELETE FROM p WHERE name = 'x'")
	if got := count(); got != 0 {
		t.Fatalf("count after DELETE = %d, want 0", got)
	}
}

// TestHashJoinLeftJoinNullRows pins LEFT JOIN null-extension through the
// hash path: unmatched and NULL-keyed left rows surface exactly once with
// NULL right columns.
func TestHashJoinLeftJoinNullRows(t *testing.T) {
	db := NewDatabase("left")
	db.MustExec("CREATE TABLE l (id INTEGER, k TEXT)")
	db.MustExec("CREATE TABLE r (k TEXT, v TEXT)")
	db.MustExec("INSERT INTO l VALUES (1, 'a'), (2, 'missing'), (3, NULL), (4, 'b')")
	db.MustExec("INSERT INTO r VALUES ('a', 'va'), ('b', 'vb'), ('a', 'va2')")

	rows, err := db.Query("SELECT l.id, r.v FROM l LEFT JOIN r ON l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]Value{
		{Int(1), Text("va")},
		{Int(1), Text("va2")},
		{Int(2), Null()},
		{Int(3), Null()},
		{Int(4), Text("vb")},
	}
	if !reflect.DeepEqual(rows.Data, want) {
		t.Fatalf("LEFT JOIN rows = %v, want %v", rows.Data, want)
	}
}

// TestNegativeZeroBucketing pins that REAL -0.0 and INTEGER 0 land in the
// same hash-join bucket and the same point-lookup index bucket: SQL
// comparison treats them as equal, so the coarse key must too.
func TestNegativeZeroBucketing(t *testing.T) {
	build := func(planner bool) *Database {
		db := NewDatabase("zero")
		db.MustExec("CREATE TABLE a (x REAL)")
		db.MustExec("CREATE TABLE b (y INTEGER)")
		db.MustExec("INSERT INTO a VALUES (-0.0), (1.5)")
		db.MustExec("INSERT INTO b VALUES (0), (2)")
		db.SetPlanner(planner)
		return db
	}
	planned, naive := build(true), build(false)
	for _, q := range []string{
		"SELECT COUNT(*) FROM a JOIN b ON a.x = b.y",
		"SELECT x FROM a WHERE x = 0",
	} {
		crossCheck(t, planned, naive, q)
	}
	rows, err := planned.Query("SELECT COUNT(*) FROM a JOIN b ON a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].I != 1 {
		t.Fatalf("-0.0 = 0 join matched %d rows, want 1", rows.Data[0][0].I)
	}
}

// TestResolveHashJoinClassification white-box checks which ON clauses the
// planner hashes and which fall back.
func TestResolveHashJoinClassification(t *testing.T) {
	db := buildMultiDB(5, 20)
	left := &rowSet{cols: []scopeCol{{"t", "id"}, {"t", "grp"}}}
	right := &rowSet{cols: []scopeCol{{"g", "grp"}, {"g", "weight"}}}

	cases := []struct {
		on        string
		wantHash  bool
		wantEquis int
		wantResid int
	}{
		{"t.grp = g.grp", true, 1, 0},
		{"g.grp = t.grp", true, 1, 0},
		{"t.grp = g.grp AND t.id > g.weight", true, 1, 1},
		{"t.id > g.weight", false, 0, 0},                      // no equi
		{"t.id = t.id", false, 0, 0},                          // same-side only
		{"t.grp = g.grp AND t.id = missing_col", false, 0, 0}, // unresolvable ref
		{"grp = g.weight", false, 0, 0},                       // ambiguous "grp"... resolves twice
	}
	_ = db
	for _, tc := range cases {
		sel, err := ParseSelect("SELECT 1 FROM t JOIN g ON " + tc.on)
		if err != nil {
			t.Fatalf("parse ON %q: %v", tc.on, err)
		}
		pl := planSelect(sel)
		ja := pl.joins[1]
		if ja == nil {
			t.Fatalf("no join analysis for %q", tc.on)
		}
		equis, resid, ok := resolveHashJoin(left, right, ja, nil)
		if ok != tc.wantHash {
			t.Errorf("ON %q: hashable = %v, want %v", tc.on, ok, tc.wantHash)
			continue
		}
		if !ok {
			continue
		}
		if len(equis) != tc.wantEquis || len(resid) != tc.wantResid {
			t.Errorf("ON %q: equis=%d resid=%d, want %d/%d", tc.on, len(equis), len(resid), tc.wantEquis, tc.wantResid)
		}
	}
}

// TestExprSafeTotal pins the pushdown safety whitelist's boundary.
func TestExprSafeTotal(t *testing.T) {
	safe := []string{
		"a = 1", "a > b AND c < 2", "x LIKE 'a%'", "x IS NOT NULL",
		"x IN (1, 2, 3)", "x BETWEEN 1 AND 2", "UPPER(x) = 'A'",
		"CASE WHEN a = 1 THEN 2 ELSE 3 END = 2", "CAST(x AS INTEGER) = 1",
		"COALESCE(a, b, 0) > 1", "SUBSTR(x, 1, 2) = 'ab'",
		"STRFTIME('%Y', d) = '1999'", "-a = 1", "NOT (a = 1)",
	}
	unsafe := []string{
		"x IN (SELECT a FROM t)",     // subquery charges cost
		"EXISTS (SELECT 1 FROM t)",   // subquery
		"(SELECT MAX(a) FROM t) = x", // scalar subquery
		"COUNT(a) > 1",               // aggregate misuse errors
		"MAX(a) = 1",                 // single-arg MAX is the aggregate
		"NOSUCHFUNC(a) = 1",          // unknown function errors
		"SUBSTR(x) = 'a'",            // bad arity errors
		"STRFTIME('%H', d) = '12'",   // unsupported format errors
		"STRFTIME(fmt, d) = '1999'",  // non-literal format
	}
	for _, s := range safe {
		e := mustParseExpr(t, s)
		if !exprSafeTotal(e) {
			t.Errorf("exprSafeTotal(%q) = false, want true", s)
		}
	}
	for _, s := range unsafe {
		e := mustParseExpr(t, s)
		if exprSafeTotal(e) {
			t.Errorf("exprSafeTotal(%q) = true, want false", s)
		}
	}
}

func mustParseExpr(t *testing.T, cond string) Expr {
	t.Helper()
	sel, err := ParseSelect("SELECT 1 FROM t WHERE " + cond)
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	return sel.Where
}

// TestPlanCache pins cache hits, misses and LRU eviction.
func TestPlanCache(t *testing.T) {
	db := NewDatabase("cache")
	db.MustExec("CREATE TABLE t (id INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1), (2)")
	base := db.PlanCacheStats()

	const q = "SELECT id FROM t WHERE id = 1"
	for i := 0; i < 5; i++ {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if hits := st.Hits - base.Hits; hits != 4 {
		t.Errorf("hits = %d, want 4", hits)
	}

	// Same statement prepared twice is the same cached object.
	s1, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("Prepare returned distinct Stmt objects for one statement text")
	}

	// Direct LRU behaviour on a tiny cache.
	c := newPlanCache(4, 2)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("q%d", i), &Stmt{src: fmt.Sprintf("q%d", i)})
	}
	cs := c.stats()
	if cs.Entries > 4 {
		t.Errorf("entries = %d, want <= 4", cs.Entries)
	}
	if cs.Evictions == 0 {
		t.Error("expected evictions on an overfull cache")
	}
}

// TestPreparedConcurrentExec exercises the plan cache and the lazy
// equality-index build under -race: one database, many goroutines, same
// and different statements.
func TestPreparedConcurrentExec(t *testing.T) {
	db := buildMultiDB(11, 40)
	queries := []string{
		"SELECT t.id, g.label FROM t JOIN g ON t.grp = g.grp WHERE t.flag = 1",
		"SELECT id FROM t WHERE grp = 'a'",
		"SELECT COUNT(*) FROM t JOIN acc ON acc.t_id = t.id",
	}
	want := make([]*Result, len(queries))
	for i, q := range queries {
		r, err := db.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (w + i) % len(queries)
				r, err := db.Exec(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if r.Cost != want[qi].Cost || !rowsIdentical(r.Rows, want[qi].Rows) {
					errs <- fmt.Errorf("concurrent exec diverged for %q", queries[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
