// Package sqlengine implements a self-contained, in-memory SQL database
// engine: a lexer, a recursive-descent parser, a query planner and a
// materialising executor supporting joins, aggregation, subqueries and the
// scalar-function subset that the SEED reproduction needs. It stands in
// for SQLite in the paper's pipeline: SEED's sample-SQL-execution stage
// and the EX/VES evaluation metrics both run real queries through this
// engine.
//
// The engine is deliberately deterministic: repeated execution of the same
// statement over the same database yields identical rows and an identical
// Cost (rows-touched count), which makes the valid-efficiency-score metric
// reproducible without wall-clock timing.
//
// # The cost model is logical, so VES is plan-independent
//
// Cost counts the rows the *naive* reference plan — full scans feeding
// nested-loop joins — would touch, not the rows the chosen physical plan
// touches. The planner (Prepare, plan cache, hash equi-joins, predicate
// pushdown, point-lookup indexes; see planner.go) may make execution
// orders of magnitude faster, but it always charges the naive plan's
// count: a hash join still charges |L|·|R| pairs, a pushdown-filtered or
// index-narrowed scan still charges the full table. VES weights execution
// accuracy by sqrt(goldCost/predictedCost), so this is precisely the
// property that keeps every reproduced experiment table bit-identical
// while wall-clock time drops. Optimisations apply only where the planner
// can prove rows, order, errors and cost all match the naive executor;
// everything else falls back to the naive path, which remains intact as
// the reference implementation (Database.SetPlanner toggles it for tests
// and benchmarks).
package sqlengine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value. The engine follows SQLite's
// storage-class model: NULL, INTEGER, REAL and TEXT. (BLOB is not needed by
// any workload in this repository.)
type Kind int

// Value kinds, ordered so that the inter-kind ORDER BY precedence
// (NULL < numbers < text) matches SQLite's.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed SQL value.
// The zero Value is NULL, so uninitialised cells behave like SQL NULLs.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int returns an INTEGER value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a REAL value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{Kind: KindText, S: s} }

// Bool returns the engine's representation of a boolean: INTEGER 0 or 1,
// matching SQLite semantics.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// IsNumeric reports whether v is INTEGER or REAL.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// AsFloat converts a numeric value to float64. Text that parses as a number
// is coerced, mirroring SQLite's affinity rules; anything else yields 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsInt converts a value to int64 using SQLite-like coercion.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindText:
		i, err := strconv.ParseInt(strings.TrimSpace(v.S), 10, 64)
		if err != nil {
			return int64(v.AsFloat())
		}
		return i
	default:
		return 0
	}
}

// AsText renders the value as text. NULL renders as the empty string; use
// IsNull to distinguish.
func (v Value) AsText() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return formatFloat(v.F)
	case KindText:
		return v.S
	default:
		return ""
	}
}

// Truth reports the SQL three-valued truthiness of v: NULL is unknown
// (false here, with known=false); numbers are true when non-zero; text is
// true when it parses to a non-zero number (SQLite rule).
func (v Value) Truth() (truth, known bool) {
	switch v.Kind {
	case KindNull:
		return false, false
	case KindInt:
		return v.I != 0, true
	case KindFloat:
		return v.F != 0, true
	case KindText:
		return v.AsFloat() != 0, true
	default:
		return false, true
	}
}

// numericText reports whether s is numeric-looking text — the trigger for
// harmonise's affinity coercion — and returns the REAL value the coercion
// would produce. It is the single definition of "numeric-looking text"
// shared by the row interpreter (harmonise), the planner's coarse join
// keys (coarseKey) and the vectorized comparison kernels (kernels.go), so
// the three can never disagree on a boundary case.
func numericText(s string) (float64, bool) {
	ts := strings.TrimSpace(s)
	if !looksNumeric(ts) {
		return 0, false
	}
	f, err := strconv.ParseFloat(ts, 64)
	if err != nil {
		// Still coerced: AsFloat yields 0 for unparseable text, and the
		// coercion decision is looksNumeric's, not the parser's.
		return 0, true
	}
	return f, true
}

// formatFloat renders a REAL like SQLite does: integral values get a
// trailing ".0" so that REAL and INTEGER remain distinguishable as text.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// String implements fmt.Stringer with SQL-literal-like rendering, used by
// tests and the sqlsh tool.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	default:
		return v.AsText()
	}
}

// Compare orders two values using SQLite's cross-kind ordering:
// NULL < numeric < text. Numerics compare numerically across INTEGER/REAL;
// text compares byte-wise (case-sensitive — this is what makes the paper's
// case-sensitivity evidence defects genuinely fail at execution time).
// The result is -1, 0 or +1.
func Compare(a, b Value) int {
	ra, rb := compareRank(a), compareRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		fa, fb := a.AsFloat(), b.AsFloat()
		// Preserve exact int64 comparison when both sides are integers.
		if a.Kind == KindInt && b.Kind == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	default: // both text
		return strings.Compare(a.S, b.S)
	}
}

func compareRank(v Value) int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports SQL equality with NULL treated as not equal to anything
// (including NULL). For result-set comparison that needs NULL==NULL, use
// DistinctEqual.
func Equal(a, b Value) (eq, known bool) {
	if a.IsNull() || b.IsNull() {
		return false, false
	}
	return Compare(a, b) == 0, true
}

// DistinctEqual implements the IS NOT DISTINCT FROM notion of equality:
// NULLs compare equal to each other. Used by GROUP BY, DISTINCT and the
// execution-accuracy metric.
func DistinctEqual(a, b Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a canonical string key for grouping and DISTINCT. Two values
// map to the same key iff DistinctEqual holds. Numeric values that are
// integral collapse across INTEGER/REAL, matching SQL equality.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// AppendKey appends the Key encoding of v to dst and returns the extended
// slice. Hot comparison paths (result-set keys, DISTINCT, hash joins) use it
// to build composite row keys in one reusable buffer instead of allocating a
// string per cell.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 'n')
	case KindInt:
		return strconv.AppendInt(append(dst, 'i'), v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.AppendInt(append(dst, 'i'), int64(v.F), 10)
		}
		return strconv.AppendFloat(append(dst, 'f'), v.F, 'b', -1, 64)
	default:
		return append(append(dst, 't'), v.S...)
	}
}
