package sqlengine

import "fmt"

// TokenType classifies lexical tokens produced by the Lexer.
type TokenType int

// Token types. Keywords are folded into TokenKeyword with the upper-cased
// keyword text in Token.Text; operators get dedicated types so the parser
// can switch on them cheaply.
const (
	TokenEOF TokenType = iota
	TokenIdent
	TokenKeyword
	TokenString
	TokenNumber
	TokenComma
	TokenDot
	TokenSemicolon
	TokenLParen
	TokenRParen
	TokenStar
	TokenPlus
	TokenMinus
	TokenSlash
	TokenPercent
	TokenConcat // ||
	TokenEq
	TokenNeq
	TokenLt
	TokenLte
	TokenGt
	TokenGte
)

// Token is one lexical unit of a SQL statement. Pos is the byte offset of
// the token's first character in the input, used for error messages.
type Token struct {
	Type TokenType
	Text string
	Pos  int
}

func (t Token) String() string {
	return fmt.Sprintf("%v(%q)", t.Type, t.Text)
}

// keywords is the set of reserved words recognised by the lexer. Identifiers
// matching these (case-insensitively) become TokenKeyword tokens with
// upper-cased text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true,
	"AS": true, "JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"OUTER": true, "CROSS": true, "ON": true, "USING": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "IS": true,
	"NULL": true, "LIKE": true, "BETWEEN": true, "EXISTS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"CAST": true, "CREATE": true, "TABLE": true, "PRIMARY": true,
	"KEY": true, "FOREIGN": true, "REFERENCES": true, "UNIQUE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "INTEGER": true, "INT": true,
	"REAL": true, "TEXT": true, "VARCHAR": true, "CHAR": true,
	"FLOAT": true, "DOUBLE": true, "NUMERIC": true, "DECIMAL": true,
	"BOOLEAN": true, "DATE": true, "DATETIME": true, "BIGINT": true,
	"SMALLINT": true, "TRUE": true, "FALSE": true, "DEFAULT": true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true, "ESCAPE": true,
	"IIF": true, "GLOB": true, "COLLATE": true, "NOCASE": true,
}

// TypeName reports whether kw (upper-case) is a SQL column type name; the
// parser uses this when reading CREATE TABLE column definitions.
func isTypeKeyword(kw string) bool {
	switch kw {
	case "INTEGER", "INT", "REAL", "TEXT", "VARCHAR", "CHAR", "FLOAT",
		"DOUBLE", "NUMERIC", "DECIMAL", "BOOLEAN", "DATE", "DATETIME",
		"BIGINT", "SMALLINT":
		return true
	}
	return false
}
