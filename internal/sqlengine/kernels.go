package sqlengine

import "strings"

// Vectorized predicate kernels. A kernel is a compiled per-row predicate
// for one safe-total WHERE/ON conjunct: instead of walking the expression
// tree and resolving column names per row, the shapes the planner already
// recognises (col <op> literal, BETWEEN, IN, LIKE, IS NULL) compile once
// into closures over a column vector (vector.go) or a row position, and
// the filter loop in parallel.go applies them per morsel.
//
// Every kernel replicates the row interpreter's semantics exactly — the
// same NULL propagation, the same harmonise text/numeric coercion, the
// same Compare ordering — so a kernel-filtered scan emits byte-identical
// rows to the naive loop. A conjunct with no kernelizable shape keeps its
// expression and is evaluated per row with a worker-local environment;
// safe-total conjuncts cannot touch the shared execCtx (no subqueries, no
// cost charges) and can only fail with row-independent resolution errors,
// which is what makes both forms legal inside parallel morsels.

// rowPred is one compiled conjunct. Exactly one evaluation form applies:
// byIdx (vector kernel over a base-table scan position), byRow (direct
// row-slice kernel), or expr (worker-local interpreter fallback).
type rowPred struct {
	byIdx func(i int) bool
	byRow func(row []Value) bool
	expr  Expr
}

// cmpMask3 encodes a three-way comparison outcome as a bit: 1 = less,
// 2 = equal, 4 = greater. Comparison operators become a constant mask
// tested against it, so one kernel body serves all six operators.
func cmpMask3(c int) uint8 {
	if c < 0 {
		return 1
	}
	if c > 0 {
		return 4
	}
	return 2
}

func cmpMaskInt(a, b int64) uint8 {
	if a < b {
		return 1
	}
	if a > b {
		return 4
	}
	return 2
}

func cmpMaskFloat(a, b float64) uint8 {
	if a < b {
		return 1
	}
	if a > b {
		return 4
	}
	return 2
}

// opMask returns the accepting mask for a comparison operator, or 0 for
// a non-comparison operator.
func opMask(op string) uint8 {
	switch op {
	case "=":
		return 2
	case "!=":
		return 1 | 4
	case "<":
		return 1
	case "<=":
		return 1 | 2
	case ">":
		return 4
	case ">=":
		return 4 | 2
	default:
		return 0
	}
}

// flipOp mirrors a comparison so `lit op col` becomes `col flip(op) lit`.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default: // = and != are symmetric
		return op
	}
}

// predSource abstracts where a kernel reads its column cells from: a
// base-table scan position (with an optional typed vector) or a row slice.
type predSource struct {
	t    *Table // non-nil: scan source, kernels may be position-based
	vecs bool   // consult t's columnar shadow (table is large enough)
	cols []scopeCol
}

// resolveLocal resolves a column reference strictly within the source's
// scope level. ok is false unless the reference resolves uniquely — an
// ambiguous or absent reference must keep its expression form so the
// interpreter raises exactly the naive error.
func (ps *predSource) resolveLocal(cr *ColumnRef) (int, bool) {
	idx, n := resolveCols(ps.cols, cr.Table, cr.Name)
	return idx, n == 1
}

// compilePreds compiles one rowPred per conjunct expression. Exprs must
// all be safe-total (the caller's precondition for running them inside
// morsels at all).
func compilePreds(ps *predSource, exprs []Expr) []rowPred {
	preds := make([]rowPred, len(exprs))
	for i, e := range exprs {
		preds[i] = compilePred(ps, e)
	}
	return preds
}

func compilePred(ps *predSource, e Expr) rowPred {
	switch x := e.(type) {
	case *Binary:
		if mask := opMask(x.Op); mask != 0 {
			if cr, ok := x.L.(*ColumnRef); ok && cr.Name != "*" {
				if lit, ok := x.R.(*Literal); ok {
					if p := cmpKernel(ps, cr, lit.Val, mask); p.usable() {
						return p
					}
				}
			}
			if cr, ok := x.R.(*ColumnRef); ok && cr.Name != "*" {
				if lit, ok := x.L.(*Literal); ok {
					if p := cmpKernel(ps, cr, lit.Val, opMask(flipOp(x.Op))); p.usable() {
						return p
					}
				}
			}
		}
	case *IsNullExpr:
		if cr, ok := x.X.(*ColumnRef); ok && cr.Name != "*" {
			if p := isNullKernel(ps, cr, x.Not); p.usable() {
				return p
			}
		}
	case *BetweenExpr:
		if cr, ok := x.X.(*ColumnRef); ok && cr.Name != "*" {
			lo, lok := x.Lo.(*Literal)
			hi, hok := x.Hi.(*Literal)
			if lok && hok {
				if p := betweenKernel(ps, cr, lo.Val, hi.Val, x.Not); p.usable() {
					return p
				}
			}
		}
	case *InExpr:
		if cr, ok := x.X.(*ColumnRef); ok && cr.Name != "*" && x.Sub == nil {
			lits := make([]Value, 0, len(x.List))
			allLit := true
			for _, le := range x.List {
				lit, ok := le.(*Literal)
				if !ok {
					allLit = false
					break
				}
				lits = append(lits, lit.Val)
			}
			if allLit {
				if p := inKernel(ps, cr, lits, x.Not); p.usable() {
					return p
				}
			}
		}
	case *LikeExpr:
		if cr, ok := x.X.(*ColumnRef); ok && cr.Name != "*" {
			if lit, ok := x.Pattern.(*Literal); ok {
				if p := likeKernel(ps, cr, lit.Val, x.Not); p.usable() {
					return p
				}
			}
		}
	}
	return rowPred{expr: e}
}

func (p rowPred) usable() bool { return p.byIdx != nil || p.byRow != nil }

// cellAt builds a position-indexed cell reader for a scan source column.
// Used by the generic kernel bodies when no typed specialisation applies.
func cellAt(ps *predSource, col int) func(i int) Value {
	rows := ps.t.Rows
	return func(i int) Value { return rows[i][col] }
}

// cmpKernel compiles `col <op> lit` with the interpreter's exact
// semantics: NULL on either side fails the filter, mixed numeric/text
// operands harmonise, then Compare orders across kinds.
func cmpKernel(ps *predSource, cr *ColumnRef, lit Value, mask uint8) rowPred {
	col, ok := ps.resolveLocal(cr)
	if !ok {
		return rowPred{}
	}
	if lit.IsNull() {
		return constPred(ps, false)
	}
	generic := func(v Value) bool {
		if v.IsNull() {
			return false
		}
		a, b := harmonise(v, lit)
		return mask&cmpMask3(Compare(a, b)) != 0
	}
	if ps.t == nil {
		return rowPred{byRow: func(row []Value) bool { return generic(row[col]) }}
	}
	if !ps.vecs {
		cell := cellAt(ps, col)
		return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
	}
	vec := ps.t.columnVec(col)
	if !vec.typed || vec.kind == KindNull {
		cell := cellAt(ps, col)
		return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
	}
	litF, litNum := 0.0, false
	switch lit.Kind {
	case KindInt:
		litF, litNum = float64(lit.I), true
	case KindFloat:
		litF, litNum = lit.F, true
	case KindText:
		litF, litNum = numericText(lit.S)
	}
	switch vec.kind {
	case KindInt:
		ints := vec.ints
		if lit.Kind == KindInt {
			li := lit.I
			return rowPred{byIdx: func(i int) bool {
				return !vec.null(i) && mask&cmpMaskInt(ints[i], li) != 0
			}}
		}
		if litNum {
			// Int column vs REAL literal, or vs numeric-looking text that
			// harmonise coerces to REAL: numeric comparison as float.
			return rowPred{byIdx: func(i int) bool {
				return !vec.null(i) && mask&cmpMaskFloat(float64(ints[i]), litF) != 0
			}}
		}
		// Numeric column vs non-numeric text: numbers order before text.
		res := mask&1 != 0
		return rowPred{byIdx: func(i int) bool { return !vec.null(i) && res }}
	case KindFloat:
		floats := vec.floats
		if litNum {
			return rowPred{byIdx: func(i int) bool {
				return !vec.null(i) && mask&cmpMaskFloat(floats[i], litF) != 0
			}}
		}
		res := mask&1 != 0
		return rowPred{byIdx: func(i int) bool { return !vec.null(i) && res }}
	case KindText:
		strs := vec.strs
		if lit.Kind == KindText {
			// Text vs text: no harmonise coercion, byte-wise Compare.
			ls := lit.S
			return rowPred{byIdx: func(i int) bool {
				return !vec.null(i) && mask&cmpMask3(strings.Compare(strs[i], ls)) != 0
			}}
		}
		// Text column vs numeric literal: numeric-looking cells harmonise
		// to REAL and compare numerically; the rest order after numbers.
		textRes := mask&4 != 0
		return rowPred{byIdx: func(i int) bool {
			if vec.null(i) {
				return false
			}
			if f, ok := numericText(strs[i]); ok {
				return mask&cmpMaskFloat(f, litF) != 0
			}
			return textRes
		}}
	}
	cell := cellAt(ps, col)
	return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
}

func isNullKernel(ps *predSource, cr *ColumnRef, not bool) rowPred {
	col, ok := ps.resolveLocal(cr)
	if !ok {
		return rowPred{}
	}
	if ps.t == nil {
		return rowPred{byRow: func(row []Value) bool { return row[col].IsNull() != not }}
	}
	if ps.vecs {
		vec := ps.t.columnVec(col)
		if vec.typed {
			// Only typed vectors carry an authoritative null bitmap.
			return rowPred{byIdx: func(i int) bool { return vec.null(i) != not }}
		}
	}
	cell := cellAt(ps, col)
	return rowPred{byIdx: func(i int) bool { return cell(i).IsNull() != not }}
}

func betweenKernel(ps *predSource, cr *ColumnRef, lo, hi Value, not bool) rowPred {
	col, ok := ps.resolveLocal(cr)
	if !ok {
		return rowPred{}
	}
	if lo.IsNull() || hi.IsNull() {
		// Any NULL bound makes the BETWEEN NULL for every row: never true.
		return constPred(ps, false)
	}
	generic := func(v Value) bool {
		if v.IsNull() {
			return false
		}
		a1, b1 := harmonise(v, lo)
		a2, b2 := harmonise(v, hi)
		in := Compare(a1, b1) >= 0 && Compare(a2, b2) <= 0
		return in != not
	}
	if ps.t == nil {
		return rowPred{byRow: func(row []Value) bool { return generic(row[col]) }}
	}
	if ps.vecs {
		vec := ps.t.columnVec(col)
		if vec.typed && vec.kind == KindInt && lo.Kind == KindInt && hi.Kind == KindInt {
			ints, li, hv := vec.ints, lo.I, hi.I
			return rowPred{byIdx: func(i int) bool {
				if vec.null(i) {
					return false
				}
				x := ints[i]
				return (x >= li && x <= hv) != not
			}}
		}
	}
	cell := cellAt(ps, col)
	return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
}

func inKernel(ps *predSource, cr *ColumnRef, lits []Value, not bool) rowPred {
	col, ok := ps.resolveLocal(cr)
	if !ok {
		return rowPred{}
	}
	sawNull := false
	cands := make([]Value, 0, len(lits))
	for _, c := range lits {
		if c.IsNull() {
			sawNull = true
			continue
		}
		cands = append(cands, c)
	}
	generic := func(v Value) bool {
		if v.IsNull() {
			return false // NULL IN (...) is NULL: filtered out
		}
		for _, c := range cands {
			a, b := harmonise(v, c)
			if Compare(a, b) == 0 {
				return !not
			}
		}
		if sawNull {
			return false // unknown: filtered out
		}
		return not
	}
	if ps.t == nil {
		return rowPred{byRow: func(row []Value) bool { return generic(row[col]) }}
	}
	cell := cellAt(ps, col)
	return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
}

func likeKernel(ps *predSource, cr *ColumnRef, pattern Value, not bool) rowPred {
	col, ok := ps.resolveLocal(cr)
	if !ok {
		return rowPred{}
	}
	if pattern.IsNull() {
		return constPred(ps, false)
	}
	p := strings.ToLower(pattern.AsText())
	generic := func(v Value) bool {
		if v.IsNull() {
			return false
		}
		return likeRec(p, strings.ToLower(v.AsText())) != not
	}
	if ps.t == nil {
		return rowPred{byRow: func(row []Value) bool { return generic(row[col]) }}
	}
	if ps.vecs {
		vec := ps.t.columnVec(col)
		if vec.typed && vec.kind == KindText {
			strs := vec.strs
			return rowPred{byIdx: func(i int) bool {
				return !vec.null(i) && likeRec(p, strings.ToLower(strs[i])) != not
			}}
		}
	}
	cell := cellAt(ps, col)
	return rowPred{byIdx: func(i int) bool { return generic(cell(i)) }}
}

// constPred is a kernel with a row-independent verdict (e.g. `col = NULL`).
func constPred(ps *predSource, res bool) rowPred {
	if ps.t == nil {
		return rowPred{byRow: func([]Value) bool { return res }}
	}
	return rowPred{byIdx: func(int) bool { return res }}
}
