package sqlengine

import (
	"fmt"
	"strings"
)

// SQL renders the statement back to executable SQL text. Together with
// Expr.SQL it gives callers (the dataset's corruption variants, RSL-SQL's
// backward schema linking) a parse → transform → render path.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	s.writeCore(&b)
	for cur := s; cur.Compound != CompoundNone; cur = cur.Next {
		switch cur.Compound {
		case CompoundUnion:
			b.WriteString(" UNION ")
		case CompoundUnionAll:
			b.WriteString(" UNION ALL ")
		case CompoundExcept:
			b.WriteString(" EXCEPT ")
		case CompoundIntersect:
			b.WriteString(" INTERSECT ")
		}
		cur.Next.writeCore(&b)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, ob := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ob.Expr.SQL())
			if ob.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %s", s.Limit.SQL())
		if s.Offset != nil {
			fmt.Fprintf(&b, " OFFSET %s", s.Offset.SQL())
		}
	}
	return b.String()
}

func (s *SelectStmt) writeCore(b *strings.Builder) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.StarTable != "":
			b.WriteString(quoteIdent(item.StarTable) + ".*")
		case item.Star:
			b.WriteString("*")
		default:
			b.WriteString(item.Expr.SQL())
			if item.Alias != "" {
				b.WriteString(" AS " + quoteIdent(item.Alias))
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				if f.Join == JoinCross {
					b.WriteString(" CROSS JOIN ")
				} else {
					b.WriteString(" " + f.Join.String() + " ")
				}
			}
			if f.Sub != nil {
				b.WriteString("(" + f.Sub.SQL() + ")")
			} else {
				b.WriteString(quoteIdent(f.Table))
			}
			if f.Alias != "" && f.Alias != f.Table {
				b.WriteString(" AS " + quoteIdent(f.Alias))
			}
			if f.On != nil {
				b.WriteString(" ON " + f.On.SQL())
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
}

// ReferencedColumns walks a parsed statement and collects every
// table-qualified and bare column reference. RSL-SQL's backward schema
// linking extracts exactly this set from a preliminary SQL query.
func ReferencedColumns(s *SelectStmt) []ColumnRef {
	var out []ColumnRef
	var walkExpr func(e Expr)
	var walkSel func(sel *SelectStmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *ColumnRef:
			out = append(out, *x)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Unary:
			walkExpr(x.X)
		case *FuncCall:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *CaseExpr:
			if x.Operand != nil {
				walkExpr(x.Operand)
			}
			for _, w := range x.Whens {
				walkExpr(w.When)
				walkExpr(w.Then)
			}
			if x.Else != nil {
				walkExpr(x.Else)
			}
		case *InExpr:
			walkExpr(x.X)
			for _, el := range x.List {
				walkExpr(el)
			}
			if x.Sub != nil {
				walkSel(x.Sub)
			}
		case *BetweenExpr:
			walkExpr(x.X)
			walkExpr(x.Lo)
			walkExpr(x.Hi)
		case *LikeExpr:
			walkExpr(x.X)
			walkExpr(x.Pattern)
		case *IsNullExpr:
			walkExpr(x.X)
		case *ExistsExpr:
			walkSel(x.Sub)
		case *SubqueryExpr:
			walkSel(x.Sub)
		case *CastExpr:
			walkExpr(x.X)
		}
	}
	walkSel = func(sel *SelectStmt) {
		for cur := sel; cur != nil; cur = cur.Next {
			for _, c := range cur.Columns {
				if c.Expr != nil {
					walkExpr(c.Expr)
				}
			}
			for _, f := range cur.From {
				if f.On != nil {
					walkExpr(f.On)
				}
				if f.Sub != nil {
					walkSel(f.Sub)
				}
			}
			if cur.Where != nil {
				walkExpr(cur.Where)
			}
			for _, g := range cur.GroupBy {
				walkExpr(g)
			}
			if cur.Having != nil {
				walkExpr(cur.Having)
			}
			for _, ob := range cur.OrderBy {
				walkExpr(ob.Expr)
			}
			if cur.Compound == CompoundNone {
				break
			}
		}
	}
	walkSel(s)
	return out
}

// ReferencedTables collects the base-table names a statement touches.
func ReferencedTables(s *SelectStmt) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(sel *SelectStmt)
	walk = func(sel *SelectStmt) {
		for cur := sel; cur != nil; cur = cur.Next {
			for _, f := range cur.From {
				if f.Sub != nil {
					walk(f.Sub)
					continue
				}
				k := strings.ToLower(f.Table)
				if !seen[k] {
					seen[k] = true
					out = append(out, f.Table)
				}
			}
			if cur.Compound == CompoundNone {
				break
			}
		}
	}
	walk(s)
	return out
}
