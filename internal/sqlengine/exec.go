package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// Rows is a materialised query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Result is the outcome of executing any statement. Cost counts the rows
// the naive executor touches (scans, join pairs, subquery work); it is the
// deterministic stand-in for execution time used by the VES metric.
//
// Cost is a *logical* measure, independent of the physical plan: when the
// planner substitutes a hash join for a nested loop or pushes a predicate
// below a join, it still charges exactly the rows the naive plan would
// have touched. That plan-independence is what keeps VES — and every
// experiment table derived from it — stable while wall-clock time drops;
// see the contract notes in planner.go.
type Result struct {
	Rows         *Rows
	RowsAffected int64
	Cost         int64
	// Batches and Workers describe the *physical* execution and carry no
	// semantic weight (unlike Cost they may change across engine versions):
	// Batches counts the morsels processed by batch operators (0 = fully
	// row-at-a-time execution) and Workers is the widest parallel fan-out
	// any single operator reached (1 = serial).
	Batches int64
	Workers int
}

// Exec parses and executes a single statement. Parsing and planning go
// through the database's prepared-plan cache, so repeat executions of the
// same statement text skip both.
func (db *Database) Exec(sql string) (*Result, error) {
	st, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}

// Query parses and executes a statement that must produce rows.
func (db *Database) Query(sql string) (*Rows, error) {
	res, err := db.Exec(sql)
	if err != nil {
		return nil, err
	}
	if res.Rows == nil {
		return nil, fmt.Errorf("sqlengine: statement produced no result rows")
	}
	return res.Rows, nil
}

// MustExec executes sql and panics on error. Intended for test fixtures and
// dataset construction where the SQL is program-generated.
func (db *Database) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(err)
	}
	return res
}

// ExecStmt executes an already-parsed statement. Statements executed this
// way bypass the plan cache and run unplanned; use Prepare to get planned
// execution for a hand-built AST.
func (db *Database) ExecStmt(st Statement) (*Result, error) {
	ec := &execCtx{db: db}
	return ec.execStatement(st)
}

func (ec *execCtx) execStatement(st Statement) (*Result, error) {
	res, err := ec.execStatementInner(st)
	if err != nil {
		return nil, err
	}
	res.Batches = ec.batches
	res.Workers = maxInt(ec.maxPar, 1)
	return res, nil
}

func (ec *execCtx) execStatementInner(st Statement) (*Result, error) {
	db := ec.db
	switch s := st.(type) {
	case *SelectStmt:
		rows, err := ec.execSelect(s, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Rows: rows, Cost: ec.cost}, nil
	case *CreateTableStmt:
		if _, err := db.createTable(s); err != nil {
			return nil, err
		}
		return &Result{Cost: ec.cost}, nil
	case *InsertStmt:
		n, err := ec.execInsert(s)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Cost: ec.cost}, nil
	case *UpdateStmt:
		n, err := ec.execUpdate(s)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Cost: ec.cost}, nil
	case *DeleteStmt:
		n, err := ec.execDelete(s)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Cost: ec.cost}, nil
	default:
		return nil, fmt.Errorf("sqlengine: unsupported statement %T", st)
	}
}

// execCtx carries per-execution state: the database, the cost counter and
// the planner's per-SELECT analysis (nil for unplanned execution — the
// executor then behaves exactly like the pre-planner naive engine).
type execCtx struct {
	db    *Database
	cost  int64
	plans map[*SelectStmt]*selectPlan
	// vec enables the columnar batch paths (vector.go, kernels.go,
	// parallel.go). It is only ever true for planned execution, so
	// planner-off remains the pristine serial reference implementation.
	vec bool
	// Physical execution stats, written only by the coordinating
	// goroutine (batchRun): morsels processed, widest worker fan-out.
	batches int64
	maxPar  int
	// Uncorrelated-subquery memo, per statement execution: results keyed
	// by subquery node, plus the cached correlation verdict (see
	// subquery.go).
	subMemo map[*SelectStmt]*Rows
	subCorr map[*SelectStmt]bool
}

// planFor returns the plan for sel, nil when executing unplanned.
func (ec *execCtx) planFor(sel *SelectStmt) *selectPlan { return ec.plans[sel] }

// maxCost bounds runaway queries (e.g. accidental cross joins in predicted
// SQL). Exceeding it aborts execution with an error, which the evaluation
// harness counts as a failed query.
const maxCost = 50_000_000

func (ec *execCtx) charge(n int64) error {
	ec.cost += n
	if ec.cost > maxCost {
		return fmt.Errorf("sqlengine: query exceeded cost budget (%d rows touched)", maxCost)
	}
	return nil
}

// scopeCol names one column visible in a row scope; both fields are
// lower-cased for case-insensitive resolution.
type scopeCol struct {
	table string
	name  string
}

// scope binds a set of visible columns to one row of values, with a parent
// link for correlated subqueries.
type scope struct {
	cols   []scopeCol
	row    []Value
	parent *scope
}

// resolve finds a column by (optionally qualified) name, walking outward
// through parent scopes. Ambiguous unqualified references within one scope
// level are an error, as in SQLite.
func (s *scope) resolve(table, name string) (Value, error) {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	for cur := s; cur != nil; cur = cur.parent {
		found := -1
		for i, c := range cur.cols {
			if c.name != ln {
				continue
			}
			if lt != "" && c.table != lt {
				continue
			}
			if found >= 0 {
				return Value{}, fmt.Errorf("sqlengine: ambiguous column name %q", name)
			}
			found = i
		}
		if found >= 0 {
			return cur.row[found], nil
		}
	}
	if table != "" {
		return Value{}, fmt.Errorf("sqlengine: no such column: %s.%s", table, name)
	}
	return Value{}, fmt.Errorf("sqlengine: no such column: %s", name)
}

// rowSet is an intermediate relation during FROM evaluation. logical is
// the cardinality the *naive* executor's relation would have at this point
// in the pipeline: it differs from len(rows) only when predicate pushdown
// filtered a scan, and it is what join charges are computed from so that
// Cost stays plan-independent.
type rowSet struct {
	cols    []scopeCol
	rows    [][]Value
	logical int
}

// --- SELECT execution ---

func (ec *execCtx) execSelect(sel *SelectStmt, outer *scope) (*Rows, error) {
	if sel.Compound == CompoundNone {
		return ec.execSelectSimple(sel, outer)
	}
	// Compound: evaluate each core without the shared tail, then combine.
	head, err := ec.execSelectCoreOnly(sel, outer)
	if err != nil {
		return nil, err
	}
	combined := head
	for cur := sel; cur.Compound != CompoundNone; cur = cur.Next {
		next, err := ec.execSelectCoreOnly(cur.Next, outer)
		if err != nil {
			return nil, err
		}
		if len(next.Columns) != len(combined.Columns) {
			return nil, fmt.Errorf("sqlengine: compound SELECT column count mismatch (%d vs %d)", len(combined.Columns), len(next.Columns))
		}
		combined = combineRows(combined, next, cur.Compound)
	}
	// Apply the tail (ORDER BY / LIMIT) over the combined output.
	out := &selOutput{columns: combined.Columns}
	for _, r := range combined.Data {
		out.add(r, nil)
	}
	if err := ec.finishSelect(sel, out, outer, nil); err != nil {
		return nil, err
	}
	return out.rows(), nil
}

// execSelectCoreOnly executes one arm of a compound select, ignoring the
// ORDER BY/LIMIT tail which belongs to the whole compound. The clone shares
// the arm's FROM/WHERE, so the arm's plan (keyed by the original pointer)
// still applies.
func (ec *execCtx) execSelectCoreOnly(sel *SelectStmt, outer *scope) (*Rows, error) {
	clone := *sel
	clone.Compound = CompoundNone
	clone.Next = nil
	clone.OrderBy = nil
	clone.Limit = nil
	clone.Offset = nil
	return ec.execSelectPlanned(&clone, outer, ec.planFor(sel))
}

func combineRows(a, b *Rows, op CompoundOp) *Rows {
	var buf []byte
	keyOf := func(r []Value) string {
		buf = buf[:0]
		for _, v := range r {
			buf = v.AppendKey(buf)
			buf = append(buf, '\x00')
		}
		return string(buf)
	}
	out := &Rows{Columns: a.Columns}
	switch op {
	case CompoundUnionAll:
		out.Data = append(append(out.Data, a.Data...), b.Data...)
	case CompoundUnion:
		seen := make(map[string]bool)
		for _, r := range append(append([][]Value{}, a.Data...), b.Data...) {
			k := keyOf(r)
			if !seen[k] {
				seen[k] = true
				out.Data = append(out.Data, r)
			}
		}
	case CompoundExcept:
		drop := make(map[string]bool)
		for _, r := range b.Data {
			drop[keyOf(r)] = true
		}
		seen := make(map[string]bool)
		for _, r := range a.Data {
			k := keyOf(r)
			if !drop[k] && !seen[k] {
				seen[k] = true
				out.Data = append(out.Data, r)
			}
		}
	case CompoundIntersect:
		keep := make(map[string]bool)
		for _, r := range b.Data {
			keep[keyOf(r)] = true
		}
		seen := make(map[string]bool)
		for _, r := range a.Data {
			k := keyOf(r)
			if keep[k] && !seen[k] {
				seen[k] = true
				out.Data = append(out.Data, r)
			}
		}
	}
	return out
}

// selOutput accumulates projected rows together with a per-row evaluation
// environment so ORDER BY can evaluate arbitrary expressions after
// projection.
type selOutput struct {
	columns []string
	data    [][]Value
	envs    []*evalEnv // parallel to data; nil entries mean "output only"
}

func (o *selOutput) add(vals []Value, env *evalEnv) {
	o.data = append(o.data, vals)
	o.envs = append(o.envs, env)
}

func (o *selOutput) rows() *Rows { return &Rows{Columns: o.columns, Data: o.data} }

func (ec *execCtx) execSelectSimple(sel *SelectStmt, outer *scope) (*Rows, error) {
	return ec.execSelectPlanned(sel, outer, ec.planFor(sel))
}

func (ec *execCtx) execSelectPlanned(sel *SelectStmt, outer *scope, pl *selectPlan) (*Rows, error) {
	// 1. FROM (with pushdown placement when the plan allows it)
	src, fp, err := ec.execFrom(sel, outer, pl)
	if err != nil {
		return nil, err
	}
	// 2. WHERE. The scope and environment are reused across rows: filter
	// environments are never retained (unlike projection environments,
	// which ORDER BY may consult later).
	var filtered [][]Value
	if fp != nil {
		// Pushdown ran: pushed conjuncts were applied during the scans and
		// every conjunct is safe-total, so a row passes the original WHERE
		// iff every residual conjunct is true on it.
		switch {
		case len(fp.residual) == 0:
			filtered = src.rows
		case ec.useBatch(len(src.rows)):
			filtered, err = ec.filterIntermediate(src.cols, src.rows, fp.residual, outer)
			if err != nil {
				return nil, err
			}
		default:
			sc := &scope{cols: src.cols, parent: outer}
			env := &evalEnv{ec: ec, sc: sc}
			for _, row := range src.rows {
				sc.row = row
				pass := true
				for _, e := range fp.residual {
					v, err := env.eval(e)
					if err != nil {
						return nil, err
					}
					if t, known := v.Truth(); !t || !known {
						pass = false
						break
					}
				}
				if pass {
					filtered = append(filtered, row)
				}
			}
		}
	} else if sel.Where != nil {
		// Without pushdown the WHERE can still run as a batch filter when
		// the plan proves every conjunct safe-total: the AND-tree passes
		// iff every conjunct is true, and short-circuit differences are
		// unobservable on pure total expressions.
		if pl != nil && pl.whereSafe && len(pl.where) > 0 && ec.useBatch(len(src.rows)) {
			exprs := make([]Expr, len(pl.where))
			for i, c := range pl.where {
				exprs[i] = c.expr
			}
			filtered, err = ec.filterIntermediate(src.cols, src.rows, exprs, outer)
			if err != nil {
				return nil, err
			}
		} else {
			sc := &scope{cols: src.cols, parent: outer}
			env := &evalEnv{ec: ec, sc: sc}
			for _, row := range src.rows {
				sc.row = row
				v, err := env.eval(sel.Where)
				if err != nil {
					return nil, err
				}
				if t, known := v.Truth(); t && known {
					filtered = append(filtered, row)
				}
			}
		}
	} else {
		filtered = src.rows
	}

	grouped := len(sel.GroupBy) > 0 || anyAggregate(sel)
	out := &selOutput{columns: projectionNames(sel, src)}

	if grouped {
		if err := ec.projectGrouped(sel, src, filtered, outer, out, pl); err != nil {
			return nil, err
		}
	} else if ixs, ok := ec.planFastProjection(sel, src, out.columns); ok && ec.useBatch(len(filtered)) {
		ec.projectIndexed(filtered, ixs, out)
	} else {
		for _, row := range filtered {
			sc := &scope{cols: src.cols, row: row, parent: outer}
			env := &evalEnv{ec: ec, sc: sc}
			vals, err := ec.projectRow(sel, src, env)
			if err != nil {
				return nil, err
			}
			out.add(vals, env)
		}
	}

	if sel.Distinct {
		dedupeOutput(out)
	}
	if err := ec.finishSelect(sel, out, outer, src); err != nil {
		return nil, err
	}
	return out.rows(), nil
}

// finishSelect applies ORDER BY, LIMIT and OFFSET to an accumulated output.
func (ec *execCtx) finishSelect(sel *SelectStmt, out *selOutput, outer *scope, src *rowSet) error {
	if len(sel.OrderBy) > 0 {
		if err := ec.orderOutput(sel, out); err != nil {
			return err
		}
	}
	if sel.Limit != nil {
		env := &evalEnv{ec: ec, sc: &scope{parent: outer}}
		lv, err := env.eval(sel.Limit)
		if err != nil {
			return err
		}
		limit := lv.AsInt()
		var offset int64
		if sel.Offset != nil {
			ov, err := env.eval(sel.Offset)
			if err != nil {
				return err
			}
			offset = ov.AsInt()
		}
		if offset < 0 {
			offset = 0
		}
		n := int64(len(out.data))
		if offset > n {
			offset = n
		}
		end := n
		if limit >= 0 && offset+limit < n {
			end = offset + limit
		}
		out.data = out.data[offset:end]
		out.envs = out.envs[offset:end]
	}
	return nil
}

// orderOutput sorts the output rows by the ORDER BY terms. Each term can be
// an ordinal, an output-column alias/name, or an arbitrary expression
// (evaluated in the row's saved environment).
func (ec *execCtx) orderOutput(sel *SelectStmt, out *selOutput) error {
	type keyed struct {
		vals []Value
		env  *evalEnv
		keys []Value
	}
	items := make([]keyed, len(out.data))
	for i := range out.data {
		items[i] = keyed{vals: out.data[i], env: out.envs[i]}
		items[i].keys = make([]Value, len(sel.OrderBy))
		for j, ob := range sel.OrderBy {
			v, err := ec.evalOrderTerm(ob.Expr, out, i)
			if err != nil {
				return err
			}
			items[i].keys[j] = v
		}
	}
	sort.SliceStable(items, func(a, b int) bool {
		for j, ob := range sel.OrderBy {
			c := Compare(items[a].keys[j], items[b].keys[j])
			if c == 0 {
				continue
			}
			if ob.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range items {
		out.data[i] = items[i].vals
		out.envs[i] = items[i].env
	}
	return nil
}

func (ec *execCtx) evalOrderTerm(e Expr, out *selOutput, rowIdx int) (Value, error) {
	// Ordinal: ORDER BY 2
	if lit, ok := e.(*Literal); ok && lit.Val.Kind == KindInt {
		idx := int(lit.Val.I) - 1
		if idx < 0 || idx >= len(out.columns) {
			return Value{}, fmt.Errorf("sqlengine: ORDER BY ordinal %d out of range", lit.Val.I)
		}
		return out.data[rowIdx][idx], nil
	}
	// Output column name or alias.
	if cr, ok := e.(*ColumnRef); ok && cr.Table == "" {
		for i, c := range out.columns {
			if strings.EqualFold(c, cr.Name) {
				return out.data[rowIdx][i], nil
			}
		}
	}
	env := out.envs[rowIdx]
	if env == nil {
		return Value{}, fmt.Errorf("sqlengine: ORDER BY expression %s must name an output column here", e.SQL())
	}
	return env.eval(e)
}

func dedupeOutput(out *selOutput) {
	seen := make(map[string]bool, len(out.data))
	var data [][]Value
	var envs []*evalEnv
	var buf []byte
	for i, r := range out.data {
		buf = buf[:0]
		for _, v := range r {
			buf = v.AppendKey(buf)
			buf = append(buf, '\x00')
		}
		k := string(buf)
		if !seen[k] {
			seen[k] = true
			data = append(data, r)
			envs = append(envs, out.envs[i])
		}
	}
	out.data, out.envs = data, envs
}

// projectionNames computes output column names for the select list.
func projectionNames(sel *SelectStmt, src *rowSet) []string {
	var names []string
	for _, item := range sel.Columns {
		switch {
		case item.Star && item.StarTable == "":
			for _, c := range src.cols {
				names = append(names, c.name)
			}
		case item.Star:
			lt := strings.ToLower(item.StarTable)
			for _, c := range src.cols {
				if c.table == lt {
					names = append(names, c.name)
				}
			}
		case item.Alias != "":
			names = append(names, item.Alias)
		default:
			if cr, ok := item.Expr.(*ColumnRef); ok {
				names = append(names, cr.Name)
			} else {
				names = append(names, item.Expr.SQL())
			}
		}
	}
	return names
}

// projectRow evaluates the select list for one (non-grouped) row.
func (ec *execCtx) projectRow(sel *SelectStmt, src *rowSet, env *evalEnv) ([]Value, error) {
	var vals []Value
	for _, item := range sel.Columns {
		switch {
		case item.Star && item.StarTable == "":
			vals = append(vals, env.sc.row...)
		case item.Star:
			lt := strings.ToLower(item.StarTable)
			matched := false
			for i, c := range src.cols {
				if c.table == lt {
					vals = append(vals, env.sc.row[i])
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("sqlengine: no such table: %s", item.StarTable)
			}
		default:
			v, err := env.eval(item.Expr)
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
		}
	}
	return vals, nil
}

// rowGroup is one GROUP BY partition: the representative scope (first row
// in input order) and every member row's scope.
type rowGroup struct {
	rep  *scope
	rows []*scope
}

// projectGrouped partitions rows into groups, applies HAVING, and projects
// the select list with aggregate support. With a plan that proves the
// GROUP BY keys safe-total, the partitioning runs morsel-parallel: workers
// build per-morsel group fragments in first-seen order, and the
// coordinator merges fragments in morsel order, which reproduces the
// serial first-seen group order exactly. When HAVING and every projection
// item are aggregate-safe as well (aggExprSafeTotal), the per-group
// evaluation also fans out, each group still computed serially over its
// rows in input order — float aggregate accumulation order is preserved,
// so results stay byte-identical.
func (ec *execCtx) projectGrouped(sel *SelectStmt, src *rowSet, rows [][]Value, outer *scope, out *selOutput, pl *selectPlan) error {
	var groups []*rowGroup
	if len(sel.GroupBy) == 0 {
		// Single implicit group (possibly empty: COUNT over no rows). The
		// rows slice stays non-nil so aggregate evaluation recognises the
		// grouped context even for the empty group.
		g := &rowGroup{rows: make([]*scope, 0, len(rows))}
		for _, row := range rows {
			sc := &scope{cols: src.cols, row: row, parent: outer}
			if g.rep == nil {
				g.rep = sc
			}
			g.rows = append(g.rows, sc)
		}
		if g.rep == nil {
			g.rep = &scope{cols: src.cols, row: make([]Value, len(src.cols)), parent: outer}
		}
		groups = append(groups, g)
	} else if pl != nil && pl.groupBySafe && ec.useBatch(len(rows)) {
		var err error
		groups, err = ec.groupMorsels(sel, src, rows, outer)
		if err != nil {
			return err
		}
	} else {
		idx := make(map[string]*rowGroup)
		var order []string
		var kb []byte
		for _, row := range rows {
			sc := &scope{cols: src.cols, row: row, parent: outer}
			env := &evalEnv{ec: ec, sc: sc}
			kb = kb[:0]
			for _, ge := range sel.GroupBy {
				v, err := env.eval(ge)
				if err != nil {
					return err
				}
				kb = v.AppendKey(kb)
				kb = append(kb, '\x00')
			}
			k := string(kb)
			g, ok := idx[k]
			if !ok {
				g = &rowGroup{rep: sc}
				idx[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, sc)
		}
		for _, k := range order {
			groups = append(groups, idx[k])
		}
	}

	if pl != nil && pl.aggProjSafe && ec.vec && len(groups) > 1 && len(rows) >= ec.minParRows() {
		return ec.projectGroupsParallel(sel, src, groups, out)
	}
	for _, g := range groups {
		env := &evalEnv{ec: ec, sc: g.rep, group: g.rows}
		if sel.Having != nil {
			hv, err := env.eval(sel.Having)
			if err != nil {
				return err
			}
			if t, known := hv.Truth(); !t || !known {
				continue
			}
		}
		vals, err := ec.projectRow(sel, src, env)
		if err != nil {
			return err
		}
		out.add(vals, env)
	}
	return nil
}

// groupMorsels is the parallel GROUP BY partitioning phase: per-morsel
// group fragments built by workers, merged by the coordinator in morsel
// order so first-seen group order matches the serial loop.
func (ec *execCtx) groupMorsels(sel *SelectStmt, src *rowSet, rows [][]Value, outer *scope) ([]*rowGroup, error) {
	type fragment struct {
		order []string
		m     map[string]*rowGroup
		err   error
	}
	nm := morselCount(len(rows))
	frags := make([]fragment, nm)
	ec.batchRun(nm, len(rows), nil, func(w, m int) {
		lo, hi := morselBounds(m, len(rows))
		fr := fragment{m: make(map[string]*rowGroup)}
		var kb []byte
		for i := lo; i < hi; i++ {
			sc := &scope{cols: src.cols, row: rows[i], parent: outer}
			env := &evalEnv{ec: ec, sc: sc}
			kb = kb[:0]
			for _, ge := range sel.GroupBy {
				v, err := env.eval(ge)
				if err != nil {
					fr.err = err
					frags[m] = fr
					return
				}
				kb = v.AppendKey(kb)
				kb = append(kb, '\x00')
			}
			k := string(kb)
			g, ok := fr.m[k]
			if !ok {
				g = &rowGroup{rep: sc}
				fr.m[k] = g
				fr.order = append(fr.order, k)
			}
			g.rows = append(g.rows, sc)
		}
		frags[m] = fr
	})
	idx := make(map[string]*rowGroup)
	var groups []*rowGroup
	for _, fr := range frags {
		if fr.err != nil {
			return nil, fr.err
		}
		for _, k := range fr.order {
			part := fr.m[k]
			g, ok := idx[k]
			if !ok {
				idx[k] = part
				groups = append(groups, part)
				continue
			}
			g.rows = append(g.rows, part.rows...)
		}
	}
	return groups, nil
}

// projectGroupsParallel evaluates HAVING and the projection per group with
// one group per work unit, emitting surviving groups in group order. Only
// called when every evaluated expression is aggregate-safe (no subqueries,
// no possible cost charge; errors are row-independent), so worker-local
// environments are sound and the first error in group order matches the
// serial loop's error.
func (ec *execCtx) projectGroupsParallel(sel *SelectStmt, src *rowSet, groups []*rowGroup, out *selOutput) error {
	vals := make([][]Value, len(groups))
	keep := make([]bool, len(groups))
	envs := make([]*evalEnv, len(groups))
	errs := make([]error, len(groups))
	totalRows := 0
	for _, g := range groups {
		totalRows += len(g.rows)
	}
	ec.batchRun(len(groups), totalRows, nil, func(w, gi int) {
		g := groups[gi]
		env := &evalEnv{ec: ec, sc: g.rep, group: g.rows}
		if sel.Having != nil {
			hv, err := env.eval(sel.Having)
			if err != nil {
				errs[gi] = err
				return
			}
			if t, known := hv.Truth(); !t || !known {
				return
			}
		}
		v, err := ec.projectRow(sel, src, env)
		if err != nil {
			errs[gi] = err
			return
		}
		vals[gi], envs[gi], keep[gi] = v, env, true
	})
	for gi := range groups {
		if errs[gi] != nil {
			return errs[gi]
		}
		if keep[gi] {
			out.add(vals[gi], envs[gi])
		}
	}
	return nil
}

// planFastProjection decides whether the select list can run as a pure
// index gather — every item a star or a uniquely resolving column
// reference — and whether every ORDER BY term is static (ordinal or
// output-column name), since gathered rows carry no evaluation
// environment for ORDER BY expressions to use. Any resolution failure
// falls back to the interpreted path so the naive error surfaces
// verbatim.
func (ec *execCtx) planFastProjection(sel *SelectStmt, src *rowSet, columns []string) ([]int, bool) {
	if !ec.vec {
		return nil, false
	}
	var ixs []int
	for _, item := range sel.Columns {
		switch {
		case item.Star && item.StarTable == "":
			for i := range src.cols {
				ixs = append(ixs, i)
			}
		case item.Star:
			lt := strings.ToLower(item.StarTable)
			matched := false
			for i, c := range src.cols {
				if c.table == lt {
					ixs = append(ixs, i)
					matched = true
				}
			}
			if !matched {
				return nil, false
			}
		default:
			cr, ok := item.Expr.(*ColumnRef)
			if !ok || cr.Name == "*" {
				return nil, false
			}
			idx, n := resolveCols(src.cols, cr.Table, cr.Name)
			if n != 1 {
				return nil, false
			}
			ixs = append(ixs, idx)
		}
	}
	for _, ob := range sel.OrderBy {
		if lit, ok := ob.Expr.(*Literal); ok && lit.Val.Kind == KindInt {
			if idx := int(lit.Val.I) - 1; idx >= 0 && idx < len(columns) {
				continue
			}
			return nil, false
		}
		if cr, ok := ob.Expr.(*ColumnRef); ok && cr.Table == "" {
			found := false
			for _, c := range columns {
				if strings.EqualFold(c, cr.Name) {
					found = true
					break
				}
			}
			if found {
				continue
			}
		}
		return nil, false
	}
	return ixs, true
}

// projectIndexed gathers the projected columns per row, morsel-parallel,
// with nil environments (planFastProjection guaranteed nothing will need
// them).
func (ec *execCtx) projectIndexed(rows [][]Value, ixs []int, out *selOutput) {
	nm := morselCount(len(rows))
	outs := make([][][]Value, nm)
	ec.batchRun(nm, len(rows), nil, func(w, m int) {
		lo, hi := morselBounds(m, len(rows))
		part := make([][]Value, 0, hi-lo)
		for i := lo; i < hi; i++ {
			row := rows[i]
			vals := make([]Value, len(ixs))
			for k, ix := range ixs {
				vals[k] = row[ix]
			}
			part = append(part, vals)
		}
		outs[m] = part
	})
	for _, part := range outs {
		for _, vals := range part {
			out.add(vals, nil)
		}
	}
}

// --- FROM evaluation ---

func (ec *execCtx) execFrom(sel *SelectStmt, outer *scope, pl *selectPlan) (*rowSet, *fromPlan, error) {
	items := sel.From
	if len(items) == 0 {
		// SELECT without FROM: a single empty row.
		return &rowSet{rows: [][]Value{{}}, logical: 1}, nil, nil
	}
	fp := ec.planFrom(pl, sel, outer)
	pushedFor := func(i int) []conjunct {
		if fp == nil {
			return nil
		}
		return fp.pushed[i]
	}
	acc, err := ec.execFromItem(&items[0], outer, pushedFor(0))
	if err != nil {
		return nil, nil, err
	}
	for i := 1; i < len(items); i++ {
		right, err := ec.execFromItem(&items[i], outer, pushedFor(i))
		if err != nil {
			return nil, nil, err
		}
		var ja *joinAnalysis
		if pl != nil && pl.joins != nil {
			ja = pl.joins[i]
		}
		acc, err = ec.join(acc, right, items[i].Join, items[i].On, outer, ja)
		if err != nil {
			return nil, nil, err
		}
	}
	return acc, fp, nil
}

// execFromItem materialises one FROM item. pushed holds the WHERE conjuncts
// the planner placed at this scan (always nil for subquery items and for
// unplanned execution). The scan is charged at full table size whether or
// not pushdown filters it — that is the naive executor's charge.
func (ec *execCtx) execFromItem(item *FromItem, outer *scope, pushed []conjunct) (*rowSet, error) {
	name := strings.ToLower(item.Name())
	if item.Sub != nil {
		sub, err := ec.execSelect(item.Sub, outer)
		if err != nil {
			return nil, err
		}
		rs := &rowSet{rows: sub.Data, logical: len(sub.Data)}
		for _, c := range sub.Columns {
			rs.cols = append(rs.cols, scopeCol{table: name, name: strings.ToLower(c)})
		}
		return rs, nil
	}
	t, ok := ec.db.Table(item.Table)
	if !ok {
		return nil, fmt.Errorf("sqlengine: no such table: %s", item.Table)
	}
	if err := ec.charge(int64(len(t.Rows))); err != nil {
		return nil, err
	}
	rs := &rowSet{logical: len(t.Rows)}
	for _, c := range t.Columns {
		rs.cols = append(rs.cols, scopeCol{table: name, name: strings.ToLower(c.Name)})
	}
	if len(pushed) == 0 {
		rs.rows = t.Rows
		return rs, nil
	}

	// Point-lookup fast path: the first pushed `col = literal` conjunct
	// narrows the scan to the column's equality-index bucket. Buckets hold
	// ascending row positions, so emission order matches a full scan; every
	// candidate still passes through the full pushed-conjunct filter below,
	// which re-verifies the indexed equality with real `=` semantics.
	rows := t.Rows
	narrowed := false
	for _, c := range pushed {
		if c.eqLit == nil {
			continue
		}
		col, n := resolveCols(rs.cols, c.eqLit.col.Table, c.eqLit.col.Name)
		if n != 1 {
			continue
		}
		if c.eqLit.lit.IsNull() {
			// `col = NULL` is never true: the scan yields nothing.
			return rs, nil
		}
		bucket := t.eqLookup(col, string(coarseKey(nil, c.eqLit.lit)))
		rows = make([][]Value, len(bucket))
		for i, ri := range bucket {
			rows[i] = t.Rows[ri]
		}
		narrowed = true
		break
	}

	// Vectorized scan filter: compile the pushed conjuncts into kernels
	// over the table's columnar shadow and evaluate morsel-parallel. Only
	// for full scans — an index-narrowed candidate list no longer aligns
	// positionally with the column vectors and is small anyway.
	if !narrowed && ec.useBatch(len(t.Rows)) {
		filtered, err := ec.filterScan(t, rs.cols, pushed, outer)
		if err != nil {
			return nil, err
		}
		rs.rows = filtered
		return rs, nil
	}

	sc := &scope{cols: rs.cols, parent: outer}
	env := &evalEnv{ec: ec, sc: sc}
	out := make([][]Value, 0, len(rows))
	for _, row := range rows {
		sc.row = row
		pass := true
		for _, c := range pushed {
			v, err := env.eval(c.expr)
			if err != nil {
				return nil, err
			}
			if t, known := v.Truth(); !t || !known {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, row)
		}
	}
	rs.rows = out
	return rs, nil
}

// join combines two relations. The logical pair count |L|·|R| is charged up
// front — exactly the naive nested loop's total, and computed from the
// inputs' logical cardinalities so that pushdown-filtered scans do not
// change the charge. With a usable plan the join runs as a hash join;
// otherwise the nested loop below runs with one reusable pair buffer and
// environment (fresh slices are allocated only for emitted rows).
func (ec *execCtx) join(left, right *rowSet, jt JoinType, on Expr, outer *scope, ja *joinAnalysis) (*rowSet, error) {
	if err := ec.charge(int64(left.logical) * int64(right.logical)); err != nil {
		return nil, err
	}
	if on != nil && ja != nil && ja.safe {
		if equis, residual, ok := resolveHashJoin(left, right, ja, outer); ok {
			return ec.hashJoin(left, right, jt, equis, residual, outer)
		}
	}
	cols := make([]scopeCol, 0, len(left.cols)+len(right.cols))
	cols = append(cols, left.cols...)
	cols = append(cols, right.cols...)
	out := &rowSet{cols: cols}
	nullRight := make([]Value, len(right.cols))
	buf := make([]Value, len(cols))
	sc := &scope{cols: cols, row: buf, parent: outer}
	env := &evalEnv{ec: ec, sc: sc}
	for _, lr := range left.rows {
		matched := false
		copy(buf, lr)
		for _, rr := range right.rows {
			copy(buf[len(left.cols):], rr)
			if on != nil {
				v, err := env.eval(on)
				if err != nil {
					return nil, err
				}
				if t, known := v.Truth(); !t || !known {
					continue
				}
			}
			matched = true
			row := make([]Value, len(cols))
			copy(row, buf)
			out.rows = append(out.rows, row)
		}
		if jt == JoinLeft && !matched {
			row := make([]Value, 0, len(cols))
			row = append(row, lr...)
			row = append(row, nullRight...)
			out.rows = append(out.rows, row)
		}
	}
	out.logical = len(out.rows)
	return out, nil
}

// --- DML execution ---

func (ec *execCtx) execInsert(ins *InsertStmt) (int64, error) {
	t, ok := ec.db.Table(ins.Table)
	if !ok {
		return 0, fmt.Errorf("sqlengine: no such table: %s", ins.Table)
	}
	env := &evalEnv{ec: ec, sc: &scope{}}
	var n int64
	for _, rowExprs := range ins.Rows {
		vals := make([]Value, len(rowExprs))
		for i, e := range rowExprs {
			v, err := env.eval(e)
			if err != nil {
				return n, err
			}
			vals[i] = v
		}
		if err := t.insertRow(ins.Columns, vals); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (ec *execCtx) execUpdate(up *UpdateStmt) (int64, error) {
	t, ok := ec.db.Table(up.Table)
	if !ok {
		return 0, fmt.Errorf("sqlengine: no such table: %s", up.Table)
	}
	cols := make([]scopeCol, len(t.Columns))
	lt := strings.ToLower(t.Name)
	for i, c := range t.Columns {
		cols[i] = scopeCol{table: lt, name: strings.ToLower(c.Name)}
	}
	var n int64
	sc := &scope{cols: cols}
	env := &evalEnv{ec: ec, sc: sc}
	for ri, row := range t.Rows {
		if err := ec.charge(1); err != nil {
			return n, err
		}
		sc.row = row
		if up.Where != nil {
			v, err := env.eval(up.Where)
			if err != nil {
				return n, err
			}
			if truth, known := v.Truth(); !truth || !known {
				continue
			}
		}
		newRow := make([]Value, len(row))
		copy(newRow, row)
		for _, set := range up.Set {
			idx := t.ColumnIndex(set.Column)
			if idx < 0 {
				return n, fmt.Errorf("sqlengine: no such column: %s", set.Column)
			}
			v, err := env.eval(set.Value)
			if err != nil {
				return n, err
			}
			newRow[idx] = coerce(v, t.Columns[idx].Type)
		}
		t.Rows[ri] = newRow
		n++
	}
	if n > 0 {
		t.invalidateIndexes()
	}
	return n, nil
}

func (ec *execCtx) execDelete(del *DeleteStmt) (int64, error) {
	t, ok := ec.db.Table(del.Table)
	if !ok {
		return 0, fmt.Errorf("sqlengine: no such table: %s", del.Table)
	}
	cols := make([]scopeCol, len(t.Columns))
	lt := strings.ToLower(t.Name)
	for i, c := range t.Columns {
		cols[i] = scopeCol{table: lt, name: strings.ToLower(c.Name)}
	}
	var kept [][]Value
	var n int64
	sc := &scope{cols: cols}
	env := &evalEnv{ec: ec, sc: sc}
	for _, row := range t.Rows {
		if err := ec.charge(1); err != nil {
			return n, err
		}
		remove := true
		if del.Where != nil {
			sc.row = row
			v, err := env.eval(del.Where)
			if err != nil {
				return n, err
			}
			truth, known := v.Truth()
			remove = truth && known
		}
		if remove {
			n++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	t.invalidateIndexes()
	return n, nil
}

// anyAggregate reports whether the select list, HAVING or ORDER BY of sel
// contains an aggregate function call.
func anyAggregate(sel *SelectStmt) bool {
	for _, item := range sel.Columns {
		if item.Expr != nil && exprHasAggregate(item.Expr) {
			return true
		}
	}
	if sel.Having != nil && exprHasAggregate(sel.Having) {
		return true
	}
	for _, ob := range sel.OrderBy {
		if exprHasAggregate(ob.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateCall(x) {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *Unary:
		return exprHasAggregate(x.X)
	case *CaseExpr:
		if x.Operand != nil && exprHasAggregate(x.Operand) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasAggregate(w.When) || exprHasAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil && exprHasAggregate(x.Else) {
			return true
		}
	case *BetweenExpr:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *LikeExpr:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Pattern)
	case *IsNullExpr:
		return exprHasAggregate(x.X)
	case *InExpr:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, e := range x.List {
			if exprHasAggregate(e) {
				return true
			}
		}
	case *CastExpr:
		return exprHasAggregate(x.X)
	}
	return false
}

// isAggregateCall reports whether fc is an aggregate invocation. MIN/MAX
// with more than one argument are SQLite's scalar variants.
func isAggregateCall(fc *FuncCall) bool {
	switch fc.Name {
	case "COUNT", "SUM", "AVG", "TOTAL", "GROUP_CONCAT":
		return true
	case "MIN", "MAX":
		return fc.Star || len(fc.Args) == 1
	}
	return false
}
