package sqlengine

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE x = 'it''s' AND y >= 3.5 -- comment\n LIMIT 10")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var kinds []TokenType
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Type)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", "=", "it's", "AND", "y", ">=", "3.5", "LIMIT", "10"}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokenKeyword {
		t.Errorf("SELECT should lex as keyword")
	}
	if kinds[9] != TokenString {
		t.Errorf("'it''s' should lex as string, got %v", kinds[9])
	}
}

func TestTokenizeQuotedIdentifiers(t *testing.T) {
	for _, src := range []string{"`Free Meal Count`", `"Free Meal Count"`, "[Free Meal Count]"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", src, err)
		}
		if len(toks) != 1 || toks[0].Type != TokenIdent || toks[0].Text != "Free Meal Count" {
			t.Errorf("Tokenize(%q) = %v, want single ident 'Free Meal Count'", src, toks)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("a <> b != c <= d >= e || f == g")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	wantTypes := []TokenType{TokenIdent, TokenNeq, TokenIdent, TokenNeq, TokenIdent,
		TokenLte, TokenIdent, TokenGte, TokenIdent, TokenConcat, TokenIdent, TokenEq, TokenIdent}
	if len(toks) != len(wantTypes) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(wantTypes))
	}
	for i, wt := range wantTypes {
		if toks[i].Type != wt {
			t.Errorf("token %d type = %v, want %v", i, toks[i].Type, wt)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("SELECT /* block\ncomment */ 1 -- line\n+2")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	if strings.Join(texts, " ") != "SELECT 1 + 2" {
		t.Errorf("comment stripping failed: %v", texts)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		".5":     ".5",
		"1e10":   "1e10",
		"2.5E-3": "2.5E-3",
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", src, err)
		}
		if len(toks) != 1 || toks[0].Type != TokenNumber || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %v, want number %q", src, toks, want)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "`unterminated", "[unterminated", "SELECT @"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}
