package sqlengine

import (
	"strconv"
	"strings"
)

// This file is the query planner. It analyses parsed SELECTs once (at
// Prepare time) and lets the executor replace the naive physical plan —
// full scans into nested-loop joins — with hash equi-joins, predicate
// pushdown and point-lookup indexes.
//
// The planner's contract is strict plan/naive equivalence:
//
//   - identical rows in identical order, and
//   - identical Result.Cost.
//
// Cost is *logical*: it counts the rows the naive executor would have
// touched, not the rows the chosen plan touches. That is what keeps the
// VES metric (which weights accuracy by cost ratios) byte-stable across
// planner changes. Every optimisation below is therefore gated on static
// guarantees; anything the planner cannot prove falls back to the naive
// path, which is kept intact as the reference implementation.
//
// The guarantees, and how each optimisation preserves them:
//
//   - Hash equi-join: the ON conjunction is split; conjuncts of shape
//     `left.col = right.col` become hash conditions, the rest become
//     residual filters on hash-matched pairs. The output relation equals
//     the nested-loop output in content *and order* (probe in left-row
//     order, buckets hold right-row positions ascending). The join still
//     charges |L|·|R| — the naive pair count — via the rowSet's logical
//     cardinality. Residual conjuncts are evaluated on fewer pairs than
//     the naive loop would, so they must be provably pure: subquery-free
//     (subqueries charge cost) and total (cannot error on any input); see
//     exprSafeTotal. Any unresolvable or ambiguous column reference in the
//     ON clause bails to the nested loop, which reproduces the naive
//     error behaviour exactly.
//
//   - Predicate pushdown: the WHERE conjunction is split and single-table
//     conjuncts are evaluated during the base-table scan, before the join
//     multiplies rows. Filtering a join input changes the naive
//     intermediate cardinalities that later join charges depend on, so
//     pushdown is only applied where every affected charge is statically
//     known: with no joins anywhere; with exactly one join on either side
//     (both full table sizes are catalog facts); and with two or more
//     joins only into the last joined table (earlier intermediates are
//     unaffected, and the last charge uses the full catalog size). The
//     right side of a LEFT JOIN is never filtered (NULL-extension
//     semantics), and pushdown requires every WHERE conjunct — pushed or
//     residual — to be safe-total, because rows removed early are rows
//     the naive executor would still have evaluated the remaining
//     conjuncts on.
//
//   - Point-lookup index: a pushed conjunct of shape `col = literal` uses
//     a lazily built per-column hash index (invalidated by any DML)
//     instead of scanning; the scan is still charged at full table size.

// selectPlan is the planner's per-SELECT structural analysis, computed once
// at Prepare time from the AST alone (no schema access — column resolution
// is deferred to execution, where the scopes are known).
type selectPlan struct {
	// where is the flattened WHERE conjunction in evaluation order; empty
	// when the SELECT has no WHERE.
	where []conjunct
	// whereSafe reports that every WHERE conjunct is safe-total — the
	// precondition for pushdown.
	whereSafe bool
	// joins holds the ON-clause analysis per FROM item (index aligned with
	// SelectStmt.From; entry 0 and ON-less items are nil).
	joins []*joinAnalysis
	// groupBySafe reports every GROUP BY expression is safe-total — the
	// precondition for partitioning rows into groups in parallel.
	groupBySafe bool
	// aggProjSafe reports HAVING and every projection item are
	// aggregate-safe-total (aggExprSafeTotal) — the precondition for
	// evaluating groups in parallel.
	aggProjSafe bool
}

// conjunct is one AND-term of a WHERE or ON clause.
type conjunct struct {
	expr Expr
	// refs lists every column reference in expr (subquery bodies excluded —
	// a conjunct containing a subquery is never safe, so its refs are
	// never consulted).
	refs []*ColumnRef
	// eq is set when expr is `colref = colref`, the hash-join candidate
	// shape.
	eq *eqPattern
	// eqLit is set when expr is `colref = literal` (either order), the
	// point-lookup index shape.
	eqLit *eqLitPattern
	// safe reports expr is safe-total: pure (no subqueries, which charge
	// cost) and total (cannot error on any row), so evaluating it on more
	// or fewer rows than the naive executor is unobservable.
	safe bool
}

type eqPattern struct{ a, b *ColumnRef }

type eqLitPattern struct {
	col *ColumnRef
	lit Value
}

// joinAnalysis is the flattened ON conjunction of one join.
type joinAnalysis struct {
	conj []conjunct
	// safe reports every conjunct is safe-total — the hash-join
	// precondition (residuals run on hash-matched pairs only).
	safe bool
}

// planStatement walks every SELECT nested anywhere in st (FROM subqueries,
// IN/EXISTS/scalar subqueries, compound arms, DML expressions) and analyses
// each one. Returns nil when the statement contains no SELECT.
func planStatement(st Statement) map[*SelectStmt]*selectPlan {
	m := make(map[*SelectStmt]*selectPlan)
	switch s := st.(type) {
	case *SelectStmt:
		walkSelect(s, m)
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				walkExprSelects(e, m)
			}
		}
	case *UpdateStmt:
		for _, set := range s.Set {
			walkExprSelects(set.Value, m)
		}
		walkExprSelects(s.Where, m)
	case *DeleteStmt:
		walkExprSelects(s.Where, m)
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

func walkSelect(sel *SelectStmt, m map[*SelectStmt]*selectPlan) {
	if sel == nil {
		return
	}
	if _, done := m[sel]; done {
		return
	}
	m[sel] = planSelect(sel)
	for i := range sel.From {
		walkSelect(sel.From[i].Sub, m)
		walkExprSelects(sel.From[i].On, m)
	}
	for _, item := range sel.Columns {
		walkExprSelects(item.Expr, m)
	}
	walkExprSelects(sel.Where, m)
	for _, e := range sel.GroupBy {
		walkExprSelects(e, m)
	}
	walkExprSelects(sel.Having, m)
	for _, ob := range sel.OrderBy {
		walkExprSelects(ob.Expr, m)
	}
	walkExprSelects(sel.Limit, m)
	walkExprSelects(sel.Offset, m)
	walkSelect(sel.Next, m)
}

func walkExprSelects(e Expr, m map[*SelectStmt]*selectPlan) {
	switch x := e.(type) {
	case nil:
	case *Unary:
		walkExprSelects(x.X, m)
	case *Binary:
		walkExprSelects(x.L, m)
		walkExprSelects(x.R, m)
	case *FuncCall:
		for _, a := range x.Args {
			walkExprSelects(a, m)
		}
	case *CaseExpr:
		walkExprSelects(x.Operand, m)
		for _, w := range x.Whens {
			walkExprSelects(w.When, m)
			walkExprSelects(w.Then, m)
		}
		walkExprSelects(x.Else, m)
	case *BetweenExpr:
		walkExprSelects(x.X, m)
		walkExprSelects(x.Lo, m)
		walkExprSelects(x.Hi, m)
	case *LikeExpr:
		walkExprSelects(x.X, m)
		walkExprSelects(x.Pattern, m)
	case *IsNullExpr:
		walkExprSelects(x.X, m)
	case *InExpr:
		walkExprSelects(x.X, m)
		for _, le := range x.List {
			walkExprSelects(le, m)
		}
		walkSelect(x.Sub, m)
	case *ExistsExpr:
		walkSelect(x.Sub, m)
	case *SubqueryExpr:
		walkSelect(x.Sub, m)
	case *CastExpr:
		walkExprSelects(x.X, m)
	}
}

func planSelect(sel *SelectStmt) *selectPlan {
	pl := &selectPlan{whereSafe: true}
	if sel.Where != nil {
		for _, e := range flattenAnd(sel.Where, nil) {
			c := analyzeConjunct(e)
			if !c.safe {
				pl.whereSafe = false
			}
			pl.where = append(pl.where, c)
		}
	}
	pl.groupBySafe = true
	for _, ge := range sel.GroupBy {
		if !exprSafeTotal(ge) {
			pl.groupBySafe = false
			break
		}
	}
	pl.aggProjSafe = sel.Having == nil || aggExprSafeTotal(sel.Having)
	if pl.aggProjSafe {
		for _, item := range sel.Columns {
			if item.Star {
				continue
			}
			if !aggExprSafeTotal(item.Expr) {
				pl.aggProjSafe = false
				break
			}
		}
	}
	if len(sel.From) > 1 {
		pl.joins = make([]*joinAnalysis, len(sel.From))
		for i := 1; i < len(sel.From); i++ {
			if sel.From[i].On == nil {
				continue
			}
			ja := &joinAnalysis{safe: true}
			for _, e := range flattenAnd(sel.From[i].On, nil) {
				c := analyzeConjunct(e)
				if !c.safe {
					ja.safe = false
				}
				ja.conj = append(ja.conj, c)
			}
			pl.joins[i] = ja
		}
	}
	return pl
}

// flattenAnd appends the AND-tree leaves of e to dst in evaluation order.
func flattenAnd(e Expr, dst []Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return flattenAnd(b.R, flattenAnd(b.L, dst))
	}
	return append(dst, e)
}

func analyzeConjunct(e Expr) conjunct {
	c := conjunct{expr: e, safe: exprSafeTotal(e)}
	c.refs = collectRefs(e, nil)
	if b, ok := e.(*Binary); ok && b.Op == "=" {
		lref, lok := b.L.(*ColumnRef)
		rref, rok := b.R.(*ColumnRef)
		switch {
		case lok && rok:
			c.eq = &eqPattern{a: lref, b: rref}
		case lok:
			if lit, ok := b.R.(*Literal); ok {
				c.eqLit = &eqLitPattern{col: lref, lit: lit.Val}
			}
		case rok:
			if lit, ok := b.L.(*Literal); ok {
				c.eqLit = &eqLitPattern{col: rref, lit: lit.Val}
			}
		}
	}
	return c
}

// collectRefs appends every column reference in e (outside subquery bodies)
// to dst.
func collectRefs(e Expr, dst []*ColumnRef) []*ColumnRef {
	switch x := e.(type) {
	case nil:
	case *ColumnRef:
		dst = append(dst, x)
	case *Unary:
		dst = collectRefs(x.X, dst)
	case *Binary:
		dst = collectRefs(x.L, dst)
		dst = collectRefs(x.R, dst)
	case *FuncCall:
		for _, a := range x.Args {
			dst = collectRefs(a, dst)
		}
	case *CaseExpr:
		dst = collectRefs(x.Operand, dst)
		for _, w := range x.Whens {
			dst = collectRefs(w.When, dst)
			dst = collectRefs(w.Then, dst)
		}
		dst = collectRefs(x.Else, dst)
	case *BetweenExpr:
		dst = collectRefs(x.X, dst)
		dst = collectRefs(x.Lo, dst)
		dst = collectRefs(x.Hi, dst)
	case *LikeExpr:
		dst = collectRefs(x.X, dst)
		dst = collectRefs(x.Pattern, dst)
	case *IsNullExpr:
		dst = collectRefs(x.X, dst)
	case *InExpr:
		dst = collectRefs(x.X, dst)
		for _, le := range x.List {
			dst = collectRefs(le, dst)
		}
	case *CastExpr:
		dst = collectRefs(x.X, dst)
	}
	return dst
}

// exprSafeTotal reports whether e is pure and total: it contains no
// subquery (subquery execution charges cost, so evaluating e on a
// different row set than the naive executor would change Cost) and cannot
// return an evaluation error on any input row (so evaluating it on a
// different row set cannot change whether the query fails). Column
// references are validated separately at execution time, where the scopes
// are known.
func exprSafeTotal(e Expr) bool {
	switch x := e.(type) {
	case *Literal:
		return true
	case *ColumnRef:
		// A bare `t.*` outside COUNT() is an evaluation error.
		return x.Name != "*"
	case *Unary:
		return (x.Op == "-" || x.Op == "NOT") && exprSafeTotal(x.X)
	case *Binary:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "||", "+", "-", "*", "/", "%":
			return exprSafeTotal(x.L) && exprSafeTotal(x.R)
		}
		return false
	case *CaseExpr:
		if x.Operand != nil && !exprSafeTotal(x.Operand) {
			return false
		}
		for _, w := range x.Whens {
			if !exprSafeTotal(w.When) || !exprSafeTotal(w.Then) {
				return false
			}
		}
		return x.Else == nil || exprSafeTotal(x.Else)
	case *BetweenExpr:
		return exprSafeTotal(x.X) && exprSafeTotal(x.Lo) && exprSafeTotal(x.Hi)
	case *LikeExpr:
		return exprSafeTotal(x.X) && exprSafeTotal(x.Pattern)
	case *IsNullExpr:
		return exprSafeTotal(x.X)
	case *InExpr:
		if x.Sub != nil {
			return false
		}
		if !exprSafeTotal(x.X) {
			return false
		}
		for _, le := range x.List {
			if !exprSafeTotal(le) {
				return false
			}
		}
		return true
	case *CastExpr:
		return exprSafeTotal(x.X)
	case *FuncCall:
		return scalarCallSafe(x)
	default:
		// ExistsExpr, SubqueryExpr, anything unknown.
		return false
	}
}

// aggExprSafeTotal extends exprSafeTotal to grouped-projection contexts:
// aggregate calls with a statically valid shape (COUNT(*)-style star, or
// exactly one safe-total argument) are additionally allowed — evaluated
// with a group they cannot error and cannot charge cost. Everything else
// follows exprSafeTotal's rules, recursing with aggregate awareness so
// e.g. `SUM(x) / COUNT(*)` qualifies. Nested aggregates do not: the inner
// call is rejected by exprSafeTotal, which sends the expression down the
// serial path where the naive "misuse of aggregate" error surfaces.
func aggExprSafeTotal(e Expr) bool {
	switch x := e.(type) {
	case *Unary:
		return (x.Op == "-" || x.Op == "NOT") && aggExprSafeTotal(x.X)
	case *Binary:
		switch x.Op {
		case "AND", "OR", "=", "!=", "<", "<=", ">", ">=", "||", "+", "-", "*", "/", "%":
			return aggExprSafeTotal(x.L) && aggExprSafeTotal(x.R)
		}
		return false
	case *CaseExpr:
		if x.Operand != nil && !aggExprSafeTotal(x.Operand) {
			return false
		}
		for _, w := range x.Whens {
			if !aggExprSafeTotal(w.When) || !aggExprSafeTotal(w.Then) {
				return false
			}
		}
		return x.Else == nil || aggExprSafeTotal(x.Else)
	case *BetweenExpr:
		return aggExprSafeTotal(x.X) && aggExprSafeTotal(x.Lo) && aggExprSafeTotal(x.Hi)
	case *LikeExpr:
		return aggExprSafeTotal(x.X) && aggExprSafeTotal(x.Pattern)
	case *IsNullExpr:
		return aggExprSafeTotal(x.X)
	case *InExpr:
		if x.Sub != nil || !aggExprSafeTotal(x.X) {
			return false
		}
		for _, le := range x.List {
			if !aggExprSafeTotal(le) {
				return false
			}
		}
		return true
	case *CastExpr:
		return aggExprSafeTotal(x.X)
	case *FuncCall:
		if isAggregateCall(x) {
			if x.Star {
				return true
			}
			return len(x.Args) == 1 && exprSafeTotal(x.Args[0])
		}
		if x.Star {
			return false
		}
		for _, a := range x.Args {
			if !aggExprSafeTotal(a) {
				return false
			}
		}
		return scalarArityTotal(x)
	default:
		return exprSafeTotal(e)
	}
}

// scalarCallSafe reports whether a function call is a known scalar with a
// statically valid arity that cannot error at runtime. Aggregates are
// unsafe here: outside a grouped projection they raise "misuse of
// aggregate function".
func scalarCallSafe(fc *FuncCall) bool {
	if fc.Star || isAggregateCall(fc) {
		return false
	}
	for _, a := range fc.Args {
		if !exprSafeTotal(a) {
			return false
		}
	}
	return scalarArityTotal(fc)
}

// scalarArityTotal is the name/arity half of scalarCallSafe: whether this
// scalar, given evaluable arguments, can never error.
func scalarArityTotal(fc *FuncCall) bool {
	n := len(fc.Args)
	switch fc.Name {
	case "ABS", "LENGTH", "UPPER", "LOWER", "TRIM", "LTRIM", "RTRIM", "TYPEOF", "DATE":
		return n == 1
	case "ROUND":
		return n == 1 || n == 2
	case "SUBSTR", "SUBSTRING":
		return n == 2 || n == 3
	case "INSTR", "IFNULL", "NULLIF":
		return n == 2
	case "REPLACE", "IIF":
		return n == 3
	case "COALESCE":
		return true
	case "MIN", "MAX":
		// The scalar multi-argument variant; 0/1 args are aggregate or error.
		return n >= 2
	case "STRFTIME":
		// Total only when the format is a literal that the engine's
		// strftime subset fully substitutes (no '%' left over).
		if n != 2 {
			return false
		}
		lit, ok := fc.Args[0].(*Literal)
		if !ok {
			return false
		}
		format := lit.Val.AsText()
		format = strings.ReplaceAll(format, "%Y", "")
		format = strings.ReplaceAll(format, "%m", "")
		format = strings.ReplaceAll(format, "%d", "")
		return !strings.Contains(format, "%")
	}
	return false
}

// --- Execution-time planning helpers ---

// fromPlan is the pushdown placement for one FROM chain, computed per
// execution (placement depends on the catalog and the outer scope, which
// are not known at Prepare time).
type fromPlan struct {
	// pushed holds, per FROM item, the WHERE conjuncts to evaluate during
	// that item's scan.
	pushed [][]conjunct
	// residual holds the WHERE conjuncts left for the post-join filter
	// stage. Because pushdown requires every conjunct to be safe-total,
	// a row passes the original WHERE iff every residual conjunct is true
	// on it.
	residual []Expr
}

// planFrom decides pushdown placement. It returns nil — meaning "evaluate
// the WHERE clause naively" — unless every placement rule holds:
// every WHERE conjunct safe-total, every FROM item a base table, every
// column reference resolving uniquely (ambiguity and no-such-column must
// surface exactly as the naive executor surfaces them), and the target
// position cost-safe per the rules in the package comment above.
func (ec *execCtx) planFrom(pl *selectPlan, sel *SelectStmt, outer *scope) *fromPlan {
	if pl == nil || len(pl.where) == 0 || !pl.whereSafe {
		return nil
	}
	items := sel.From
	n := len(items)
	if n == 0 {
		return nil
	}
	nJoins := n - 1
	itemCols := make([][]scopeCol, n)
	for i := range items {
		if items[i].Sub != nil {
			return nil
		}
		t, ok := ec.db.Table(items[i].Table)
		if !ok {
			return nil // let the naive scan raise "no such table"
		}
		name := strings.ToLower(items[i].Name())
		cols := make([]scopeCol, len(t.Columns))
		for j, c := range t.Columns {
			cols[j] = scopeCol{table: name, name: strings.ToLower(c.Name)}
		}
		itemCols[i] = cols
	}
	// Pushdown shrinks join inputs, so the affected ON clauses get
	// evaluated on fewer pairs than the naive executor evaluates them on.
	// That is only invisible when every ON conjunct is safe-total (an ON
	// subquery charges cost per pair) and every ON column reference
	// resolves cleanly (an unresolvable reference errors naively on the
	// first pair — pushdown could empty an input and mask it). Anything
	// less: no pushdown.
	for i := 1; i < n; i++ {
		if items[i].On == nil {
			continue
		}
		ja := pl.joins[i]
		if ja == nil || !ja.safe {
			return nil
		}
		// The ON of join i sees the columns of items 0..i.
		visible := itemCols[:i+1]
		for _, c := range ja.conj {
			for _, r := range c.refs {
				_, cnt := resolveItems(visible, r.Table, r.Name)
				if cnt > 1 {
					return nil
				}
				if cnt == 0 && outerResolveClass(outer, r.Table, r.Name) != 1 {
					return nil
				}
			}
		}
	}
	pushable := func(i int) bool {
		switch {
		case nJoins == 0:
			return true
		case nJoins == 1:
			if i == 0 {
				// The left side of any single join, including LEFT JOIN:
				// left-side predicates commute with NULL extension.
				return true
			}
			return items[1].Join != JoinLeft
		default:
			// Filtering any earlier input changes the naive intermediate
			// cardinalities that later join charges are defined by; only
			// the last joined table leaves every charge statically known.
			return i == nJoins && items[i].Join != JoinLeft
		}
	}
	fp := &fromPlan{pushed: make([][]conjunct, n)}
	anyPushed := false
	for _, c := range pl.where {
		target := -1 // item index; -1 undecided, -2 multi-item
		for _, r := range c.refs {
			item, cnt := resolveItems(itemCols, r.Table, r.Name)
			if cnt > 1 {
				return nil // naive evaluation raises "ambiguous column name"
			}
			if cnt == 0 {
				if outerResolveClass(outer, r.Table, r.Name) != 1 {
					return nil // "no such column" (or outer ambiguity) must surface naively
				}
				continue // correlated reference: fine, scan scopes chain to outer
			}
			if target == -1 {
				target = item
			} else if target != item {
				target = -2
			}
		}
		if target >= 0 && pushable(target) {
			fp.pushed[target] = append(fp.pushed[target], c)
			anyPushed = true
		} else {
			fp.residual = append(fp.residual, c.expr)
		}
	}
	if !anyPushed {
		return nil
	}
	return fp
}

// resolveItems resolves a column reference against the FROM items' columns
// as one scope level (the executor's join scope), returning the owning item
// and the total number of matches across all items.
func resolveItems(itemCols [][]scopeCol, table, name string) (item, count int) {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	item = -1
	for i, cols := range itemCols {
		for _, c := range cols {
			if c.name != ln {
				continue
			}
			if lt != "" && c.table != lt {
				continue
			}
			count++
			if item == -1 {
				item = i
			}
		}
	}
	return item, count
}

// resolveCols counts matches for a reference within one column list,
// returning the first matching position.
func resolveCols(cols []scopeCol, table, name string) (idx, count int) {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	idx = -1
	for i, c := range cols {
		if c.name != ln {
			continue
		}
		if lt != "" && c.table != lt {
			continue
		}
		count++
		if idx == -1 {
			idx = i
		}
	}
	return idx, count
}

// outerResolveClass classifies how a reference resolves in the outer scope
// chain: 1 = uniquely at some level, 2 = ambiguous at the first level that
// matches, 0 = nowhere.
func outerResolveClass(outer *scope, table, name string) int {
	for cur := outer; cur != nil; cur = cur.parent {
		_, n := resolveCols(cur.cols, table, name)
		if n == 1 {
			return 1
		}
		if n > 1 {
			return 2
		}
	}
	return 0
}

// coarseKey appends an equality bucket key for v: values that compare equal
// under the executor's `=` (including the numeric-affinity coercion in
// harmonise) always get the same key, while distinct values may collide
// (e.g. TEXT '05' and '5' share a bucket). Consumers — the hash join and
// the point-lookup index — re-verify every candidate with sqlEq, so
// collisions cost a comparison, never a wrong row.
func coarseKey(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, 'n')
	case KindInt:
		return appendNumKey(dst, float64(v.I))
	case KindFloat:
		return appendNumKey(dst, v.F)
	default:
		if f, ok := numericText(v.S); ok {
			// harmonise would coerce this text when compared to a number.
			return appendNumKey(dst, f)
		}
		return append(append(dst, 'T'), v.S...)
	}
}

// appendNumKey encodes one numeric bucket component. Negative zero is
// normalised first: -0.0 == 0 under SQL comparison, but strconv's 'b'
// format preserves the sign bit and would split the bucket.
func appendNumKey(dst []byte, f float64) []byte {
	if f == 0 {
		f = 0
	}
	return strconv.AppendFloat(append(dst, 'N'), f, 'b', -1, 64)
}

// sqlEq replicates the truth of the executor's `=` operator: NULL never
// matches, and mixed numeric/text operands go through the same harmonise
// coercion evalBinary applies.
func sqlEq(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	a, b = harmonise(a, b)
	return Compare(a, b) == 0
}
