package sqlengine

import "strings"

// Subquery memoization. The naive executor re-evaluates EXISTS/IN/scalar
// subqueries for every outer row. When the subquery is uncorrelated — no
// column reference escapes into the outer row scope — that repetition is
// pure waste: the result is identical each time, and at scale it turns a
// linear scan into a quadratic one (each evaluation also re-charges the
// subquery's cost, burning the 50M-row budget on work the first evaluation
// already paid for). execSub runs such subqueries once per statement
// execution and caches the result in the execCtx.
//
// Cost stays plan-independent: the memo lives in expression evaluation,
// below the planner, so planned and unplanned execution both charge the
// subquery exactly once.

// execSub executes a subquery expression, memoizing the result when the
// subquery is provably uncorrelated.
func (env *evalEnv) execSub(sel *SelectStmt) (*Rows, error) {
	ec := env.ec
	if rows, ok := ec.subMemo[sel]; ok {
		return rows, nil
	}
	corr, seen := ec.subCorr[sel]
	if !seen {
		corr = subqueryCorrelated(ec.db, sel, nil)
		if ec.subCorr == nil {
			ec.subCorr = make(map[*SelectStmt]bool)
		}
		ec.subCorr[sel] = corr
	}
	rows, err := ec.execSelect(sel, env.sc)
	if err != nil || corr {
		return rows, err
	}
	if ec.subMemo == nil {
		ec.subMemo = make(map[*SelectStmt]*Rows)
	}
	ec.subMemo[sel] = rows
	return rows, nil
}

// frameCols maps one FROM level: addressable item name -> lower-cased
// column set.
type frameCols map[string]map[string]bool

// subqueryCorrelated reports whether sel contains a column reference that
// does not resolve within sel's own FROM items (including nested subquery
// levels). Conservative by construction: derived-table sources, missing
// tables and unknown expression nodes all count as correlated, which only
// forgoes memoization — never correctness.
func subqueryCorrelated(db *Database, sel *SelectStmt, outer []frameCols) bool {
	for cur := sel; cur != nil; cur = cur.Next {
		frame, ok := localFrame(db, cur)
		if !ok {
			return true
		}
		frames := make([]frameCols, 0, len(outer)+1)
		frames = append(frames, outer...)
		frames = append(frames, frame)
		exprs := []Expr{cur.Where, cur.Having, cur.Limit, cur.Offset}
		for _, it := range cur.Columns {
			exprs = append(exprs, it.Expr)
		}
		for _, fi := range cur.From {
			exprs = append(exprs, fi.On)
		}
		exprs = append(exprs, cur.GroupBy...)
		for _, oi := range cur.OrderBy {
			exprs = append(exprs, oi.Expr)
		}
		for _, e := range exprs {
			if e != nil && exprCorrelated(db, e, frames) {
				return true
			}
		}
		if cur.Compound == CompoundNone {
			break
		}
	}
	return false
}

// localFrame builds the column sets visible from sel's own FROM clause.
// ok is false when the frame cannot be determined statically (derived
// tables, unknown tables) — the caller then treats sel as correlated.
func localFrame(db *Database, sel *SelectStmt) (frameCols, bool) {
	frame := make(frameCols, len(sel.From))
	for _, fi := range sel.From {
		if fi.Sub != nil {
			return nil, false
		}
		t, ok := db.Table(fi.Table)
		if !ok {
			return nil, false
		}
		cols := make(map[string]bool, len(t.Columns))
		for _, c := range t.Columns {
			cols[strings.ToLower(c.Name)] = true
		}
		frame[strings.ToLower(fi.Name())] = cols
	}
	return frame, true
}

// refResolves reports whether a (table, name) column reference resolves in
// any frame, innermost last — mirroring scope.resolve without values.
func refResolves(frames []frameCols, table, name string) bool {
	lt, ln := strings.ToLower(table), strings.ToLower(name)
	for _, frame := range frames {
		if lt != "" {
			if cols, ok := frame[lt]; ok && (ln == "*" || cols[ln]) {
				return true
			}
			continue
		}
		for _, cols := range frame {
			if cols[ln] {
				return true
			}
		}
	}
	// Unqualified * (only legal inside COUNT) never reaches outward.
	return lt == "" && ln == "*"
}

// exprCorrelated walks one expression; unknown node types count as
// correlated.
func exprCorrelated(db *Database, e Expr, frames []frameCols) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Literal:
		return false
	case *ColumnRef:
		return !refResolves(frames, x.Table, x.Name)
	case *Unary:
		return exprCorrelated(db, x.X, frames)
	case *Binary:
		return exprCorrelated(db, x.L, frames) || exprCorrelated(db, x.R, frames)
	case *FuncCall:
		for _, a := range x.Args {
			if exprCorrelated(db, a, frames) {
				return true
			}
		}
		return false
	case *CaseExpr:
		if exprCorrelated(db, x.Operand, frames) || exprCorrelated(db, x.Else, frames) {
			return true
		}
		for _, w := range x.Whens {
			if exprCorrelated(db, w.When, frames) || exprCorrelated(db, w.Then, frames) {
				return true
			}
		}
		return false
	case *InExpr:
		if exprCorrelated(db, x.X, frames) {
			return true
		}
		for _, it := range x.List {
			if exprCorrelated(db, it, frames) {
				return true
			}
		}
		if x.Sub != nil && subqueryCorrelated(db, x.Sub, frames) {
			return true
		}
		return false
	case *BetweenExpr:
		return exprCorrelated(db, x.X, frames) || exprCorrelated(db, x.Lo, frames) || exprCorrelated(db, x.Hi, frames)
	case *LikeExpr:
		return exprCorrelated(db, x.X, frames) || exprCorrelated(db, x.Pattern, frames)
	case *IsNullExpr:
		return exprCorrelated(db, x.X, frames)
	case *ExistsExpr:
		return subqueryCorrelated(db, x.Sub, frames)
	case *SubqueryExpr:
		return subqueryCorrelated(db, x.Sub, frames)
	case *CastExpr:
		return exprCorrelated(db, x.X, frames)
	default:
		return true
	}
}
