package sqlengine

import (
	"testing"
	"testing/quick"
)

// Function-level coverage beyond the end-to-end execution tests.

func TestStrftimeSubset(t *testing.T) {
	db := NewDatabase("f")
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT STRFTIME('%Y', '2014-06-11')", "2014"},
		{"SELECT STRFTIME('%m', '2014-06-11')", "06"},
		{"SELECT STRFTIME('%d', '2014-06-11')", "11"},
		{"SELECT STRFTIME('%Y-%m', '2014-06-11')", "2014-06"},
	}
	for _, c := range cases {
		rows, err := db.Query(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got := rows.Data[0][0].AsText(); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
	// Unsupported format verbs error; malformed dates yield NULL.
	if _, err := db.Query("SELECT STRFTIME('%H', '2014-06-11')"); err == nil {
		t.Error("unsupported STRFTIME verb should error")
	}
	rows, err := db.Query("SELECT STRFTIME('%Y', 'not-a-date')")
	if err != nil || !rows.Data[0][0].IsNull() {
		t.Errorf("malformed date should yield NULL: %v %v", rows, err)
	}
}

func TestSubstrEdgeCases(t *testing.T) {
	db := NewDatabase("f")
	cases := []struct {
		sql, want string
	}{
		{"SELECT SUBSTR('hello', 2)", "ello"},
		{"SELECT SUBSTR('hello', 2, 2)", "el"},
		{"SELECT SUBSTR('hello', -2)", "lo"},
		{"SELECT SUBSTR('hello', 99)", ""},
		{"SELECT SUBSTR('hello', 1, 0)", ""},
	}
	for _, c := range cases {
		rows, err := db.Query(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got := rows.Data[0][0].AsText(); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := NewDatabase("f")
	for _, sql := range []string{"SELECT 1 / 0", "SELECT 1.5 / 0", "SELECT 5 % 0"} {
		rows, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if !rows.Data[0][0].IsNull() {
			t.Errorf("%s should be NULL (SQLite semantics), got %v", sql, rows.Data[0][0])
		}
	}
}

func TestRenderedSelectRoundTripsThroughEngine(t *testing.T) {
	db := NewDatabase("r")
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x')")
	queries := []string{
		"SELECT COUNT(*) FROM t WHERE b = 'x'",
		"SELECT b, SUM(a) FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY b",
		"SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE b = 'x') ORDER BY a DESC LIMIT 2",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM t WHERE b = 'y') ORDER BY a",
		"SELECT DISTINCT b FROM t ORDER BY b",
	}
	for _, q := range queries {
		sel, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %s: %v", q, err)
		}
		rendered := sel.SQL()
		r1, err := db.Query(q)
		if err != nil {
			t.Fatalf("exec original %s: %v", q, err)
		}
		r2, err := db.Query(rendered)
		if err != nil {
			t.Fatalf("exec rendered %s: %v", rendered, err)
		}
		if len(r1.Data) != len(r2.Data) {
			t.Errorf("render changed results for %s -> %s", q, rendered)
		}
	}
}

func TestReferencedColumnsAndTables(t *testing.T) {
	sel, err := ParseSelect(`SELECT s.name FROM schools s JOIN satscores ON s.CDSCode = satscores.cds
		WHERE satscores.NumTstTakr > (SELECT AVG(NumTstTakr) FROM satscores)`)
	if err != nil {
		t.Fatal(err)
	}
	tables := ReferencedTables(sel)
	if len(tables) != 2 {
		t.Errorf("tables = %v, want schools+satscores", tables)
	}
	cols := ReferencedColumns(sel)
	seen := map[string]bool{}
	for _, c := range cols {
		seen[c.Name] = true
	}
	for _, want := range []string{"name", "CDSCode", "cds", "NumTstTakr"} {
		if !seen[want] {
			t.Errorf("ReferencedColumns missing %s: %v", want, cols)
		}
	}
}

// Property: Tokenize never panics and always terminates on arbitrary
// input (it either errors or yields tokens).
func TestTokenizeTotal(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 200 {
			s = s[:200]
		}
		toks, err := Tokenize(s)
		return err != nil || toks != nil || s == "" || allSpaceOrComment(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func allSpaceOrComment(s string) bool {
	toks, err := Tokenize(s)
	return err == nil && len(toks) == 0
}
