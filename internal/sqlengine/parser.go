package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token slice.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokenSemicolon, "")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input near %q", p.peek().Text)
	}
	return st, nil
}

// ParseSelect parses src and requires it to be a SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlengine: expected SELECT statement, got %T", st)
	}
	return sel, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("CREATE"):
		return p.parseCreateTable()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	}
	return nil, p.errorf("expected statement, got %q", p.peek().Text)
}

// --- SELECT ---

func (p *Parser) parseSelect() (*SelectStmt, error) {
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	// Compound operators chain onto the first select.
	cur := sel
	for {
		var op CompoundOp
		switch {
		case p.acceptKeyword("UNION"):
			if p.acceptKeyword("ALL") {
				op = CompoundUnionAll
			} else {
				op = CompoundUnion
			}
		case p.acceptKeyword("EXCEPT"):
			op = CompoundExcept
		case p.acceptKeyword("INTERSECT"):
			op = CompoundIntersect
		default:
			op = CompoundNone
		}
		if op == CompoundNone {
			break
		}
		next, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.Compound = op
		cur.Next = next
		cur = next
	}
	// ORDER BY / LIMIT apply to the whole compound; attach to the head.
	if err := p.parseSelectTail(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

func (p *Parser) parseSelectCore() (*SelectStmt, error) {
	if !p.acceptKeyword("SELECT") {
		return nil, p.errorf("expected SELECT, got %q", p.peek().Text)
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Columns = append(sel.Columns, item)
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if !p.acceptKeyword("BY") {
			return nil, p.errorf("expected BY after GROUP")
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokenComma, "") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	return sel, nil
}

// parseSelectTail parses ORDER BY / LIMIT / OFFSET, which follow any
// compound chain.
func (p *Parser) parseSelectTail(sel *SelectStmt) error {
	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return p.errorf("expected BY after ORDER")
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokenComma, "") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		sel.Limit = e
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseExpr()
			if err != nil {
				return err
			}
			sel.Offset = o
		} else if p.accept(TokenComma, "") {
			// LIMIT offset, count (MySQL style): first expr was the offset.
			c, err := p.parseExpr()
			if err != nil {
				return err
			}
			sel.Offset = sel.Limit
			sel.Limit = c
		}
	}
	return nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// Bare star.
	if p.accept(TokenStar, "") {
		return SelectItem{Star: true}, nil
	}
	// Qualified star: ident '.' '*'
	if p.peek().Type == TokenIdent && p.peekAt(1).Type == TokenDot && p.peekAt(2).Type == TokenStar {
		table := p.next().Text
		p.next() // dot
		p.next() // star
		return SelectItem{Star: true, StarTable: table}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdentLike()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Type == TokenIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseFrom() ([]FromItem, error) {
	var items []FromItem
	first, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	items = append(items, first)
	for {
		var jt JoinType
		switch {
		case p.acceptKeyword("INNER"):
			if !p.acceptKeyword("JOIN") {
				return nil, p.errorf("expected JOIN after INNER")
			}
			jt = JoinInner
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if !p.acceptKeyword("JOIN") {
				return nil, p.errorf("expected JOIN after LEFT")
			}
			jt = JoinLeft
		case p.acceptKeyword("CROSS"):
			if !p.acceptKeyword("JOIN") {
				return nil, p.errorf("expected JOIN after CROSS")
			}
			jt = JoinCross
		case p.acceptKeyword("JOIN"):
			jt = JoinInner
		case p.accept(TokenComma, ""):
			jt = JoinCross
		default:
			return items, nil
		}
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		item.Join = jt
		if jt != JoinCross && p.acceptKeyword("ON") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item.On = on
		}
		items = append(items, item)
	}
}

func (p *Parser) parseFromItem() (FromItem, error) {
	var item FromItem
	if p.accept(TokenLParen, "") {
		sub, err := p.parseSelect()
		if err != nil {
			return item, err
		}
		if !p.accept(TokenRParen, "") {
			return item, p.errorf("expected ) after subquery")
		}
		item.Sub = sub
	} else {
		name, err := p.expectIdentLike()
		if err != nil {
			return item, err
		}
		item.Table = name
	}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdentLike()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.peek().Type == TokenIdent {
		item.Alias = p.next().Text
	}
	if item.Sub != nil && item.Alias == "" {
		item.Alias = "subquery"
	}
	return item, nil
}

// --- DDL / DML ---

func (p *Parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if !p.acceptKeyword("TABLE") {
		return nil, p.errorf("expected TABLE after CREATE")
	}
	// Optional IF NOT EXISTS.
	if p.peekKeyword("IS") { // never valid here; skip
		return nil, p.errorf("unexpected IS")
	}
	name, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected ( in CREATE TABLE")
	}
	ct := &CreateTableStmt{Name: name}
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if !p.acceptKeyword("KEY") {
				return nil, p.errorf("expected KEY after PRIMARY")
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			for _, c := range cols {
				p.markPrimary(ct, c)
			}
		case p.acceptKeyword("FOREIGN"):
			if !p.acceptKeyword("KEY") {
				return nil, p.errorf("expected KEY after FOREIGN")
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("REFERENCES") {
				return nil, p.errorf("expected REFERENCES")
			}
			parent, err := p.expectIdentLike()
			if err != nil {
				return nil, err
			}
			pcols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			for i, c := range cols {
				pc := c
				if i < len(pcols) {
					pc = pcols[i]
				}
				ct.ForeignKeys = append(ct.ForeignKeys, ForeignKeyDef{Column: c, ParentTable: parent, ParentColumn: pc})
			}
		case p.acceptKeyword("UNIQUE"):
			if _, err := p.parseParenIdentList(); err != nil {
				return nil, err
			}
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected ) closing CREATE TABLE")
	}
	return ct, nil
}

func (p *Parser) markPrimary(ct *CreateTableStmt, col string) {
	for i := range ct.Columns {
		if strings.EqualFold(ct.Columns[i].Name, col) {
			ct.Columns[i].PrimaryKey = true
		}
	}
}

func (p *Parser) parseParenIdentList() ([]string, error) {
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected (")
	}
	var out []string
	for {
		id, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected )")
	}
	return out, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	var col ColumnDef
	name, err := p.expectIdentLike()
	if err != nil {
		return col, err
	}
	col.Name = name
	col.Type = "TEXT"
	if p.peek().Type == TokenKeyword && isTypeKeyword(p.peek().Text) {
		col.Type = normaliseType(p.next().Text)
		// Optional (n) or (p, s) size suffix.
		if p.accept(TokenLParen, "") {
			for !p.accept(TokenRParen, "") {
				if p.atEOF() {
					return col, p.errorf("unterminated type size")
				}
				p.next()
			}
		}
	}
	// Column constraints.
	for {
		switch {
		case p.acceptKeyword("PRIMARY"):
			if !p.acceptKeyword("KEY") {
				return col, p.errorf("expected KEY after PRIMARY")
			}
			col.PrimaryKey = true
		case p.acceptKeyword("NOT"):
			if !p.acceptKeyword("NULL") {
				return col, p.errorf("expected NULL after NOT")
			}
			col.NotNull = true
		case p.acceptKeyword("UNIQUE"):
			col.Unique = true
		case p.acceptKeyword("DEFAULT"):
			if _, err := p.parsePrimary(); err != nil {
				return col, err
			}
		case p.acceptKeyword("REFERENCES"):
			if _, err := p.expectIdentLike(); err != nil {
				return col, err
			}
			if p.peek().Type == TokenLParen {
				if _, err := p.parseParenIdentList(); err != nil {
					return col, err
				}
			}
		default:
			return col, nil
		}
	}
}

func normaliseType(t string) string {
	switch t {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "BOOLEAN":
		return "INTEGER"
	case "REAL", "FLOAT", "DOUBLE", "NUMERIC", "DECIMAL":
		return "REAL"
	default:
		return "TEXT"
	}
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if !p.acceptKeyword("INTO") {
		return nil, p.errorf("expected INTO after INSERT")
	}
	table, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.peek().Type == TokenLParen {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if !p.acceptKeyword("VALUES") {
		return nil, p.errorf("expected VALUES")
	}
	for {
		if !p.accept(TokenLParen, "") {
			return nil, p.errorf("expected ( starting VALUES row")
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokenComma, "") {
				break
			}
		}
		if !p.accept(TokenRParen, "") {
			return nil, p.errorf("expected ) closing VALUES row")
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(TokenComma, "") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("SET") {
		return nil, p.errorf("expected SET")
	}
	up := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		if !p.accept(TokenEq, "") {
			return nil, p.errorf("expected = in SET")
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, struct {
			Column string
			Value  Expr
		}{col, val})
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if !p.acceptKeyword("FROM") {
		return nil, p.errorf("expected FROM after DELETE")
	}
	table, err := p.expectIdentLike()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// --- Expressions (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// Guard: AND inside BETWEEN is consumed by parseComparison.
		if !p.peekKeyword("AND") {
			return l, nil
		}
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
}

func (p *Parser) parseNot() (Expr, error) {
	if p.peekKeyword("NOT") && !p.peekAtKeyword(1, "EXISTS") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		not := false
		if p.peekKeyword("NOT") && (p.peekAtKeyword(1, "IN") || p.peekAtKeyword(1, "LIKE") || p.peekAtKeyword(1, "BETWEEN") || p.peekAtKeyword(1, "GLOB")) {
			p.next()
			not = true
		}
		switch {
		case p.accept(TokenEq, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "=", L: l, R: r}
		case p.accept(TokenNeq, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "!=", L: l, R: r}
		case p.accept(TokenLt, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "<", L: l, R: r}
		case p.accept(TokenLte, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "<=", L: l, R: r}
		case p.accept(TokenGt, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: ">", L: l, R: r}
		case p.accept(TokenGte, ""):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: ">=", L: l, R: r}
		case p.acceptKeyword("IS"):
			isNot := p.acceptKeyword("NOT")
			if !p.acceptKeyword("NULL") {
				return nil, p.errorf("expected NULL after IS")
			}
			l = &IsNullExpr{X: l, Not: isNot}
		case p.acceptKeyword("LIKE"), p.acceptKeyword("GLOB"):
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if p.acceptKeyword("ESCAPE") {
				if _, err := p.parseAdditive(); err != nil {
					return nil, err
				}
			}
			l = &LikeExpr{X: l, Pattern: pat, Not: not}
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AND") {
				return nil, p.errorf("expected AND in BETWEEN")
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{X: l, Lo: lo, Hi: hi, Not: not}
		case p.acceptKeyword("IN"):
			in, err := p.parseInTail(l, not)
			if err != nil {
				return nil, err
			}
			l = in
		default:
			if not {
				return nil, p.errorf("dangling NOT")
			}
			return l, nil
		}
	}
}

func (p *Parser) parseInTail(x Expr, not bool) (Expr, error) {
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected ( after IN")
	}
	if p.peekKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if !p.accept(TokenRParen, "") {
			return nil, p.errorf("expected ) after IN subquery")
		}
		return &InExpr{X: x, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected ) closing IN list")
	}
	return &InExpr{X: x, List: list, Not: not}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokenPlus, ""):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.accept(TokenMinus, ""):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		case p.accept(TokenConcat, ""):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "||", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(TokenStar, ""):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "*", L: l, R: r}
		case p.accept(TokenSlash, ""):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "/", L: l, R: r}
		case p.accept(TokenPercent, ""):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "%", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch {
	case p.accept(TokenMinus, ""):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case p.accept(TokenPlus, ""):
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.peek()
	switch tok.Type {
	case TokenNumber:
		p.next()
		if strings.ContainsAny(tok.Text, ".eE") {
			f, err := strconv.ParseFloat(tok.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", tok.Text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		i, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(tok.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", tok.Text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(i)}, nil
	case TokenString:
		p.next()
		return &Literal{Val: Text(tok.Text)}, nil
	case TokenLParen:
		p.next()
		if p.peekKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if !p.accept(TokenRParen, "") {
				return nil, p.errorf("expected ) after subquery")
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(TokenRParen, "") {
			return nil, p.errorf("expected )")
		}
		return e, nil
	case TokenKeyword:
		switch tok.Text {
		case "NULL":
			p.next()
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: Int(1)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: Int(0)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "EXISTS":
			p.next()
			return p.parseExistsTail(false)
		case "NOT":
			if p.peekAtKeyword(1, "EXISTS") {
				p.next()
				p.next()
				return p.parseExistsTail(true)
			}
		case "IIF":
			p.next()
			return p.parseFuncArgs("IIF")
		}
		if isNameKeyword(tok.Text) {
			return p.parseIdentExpr()
		}
		return nil, p.errorf("unexpected keyword %q in expression", tok.Text)
	case TokenIdent:
		return p.parseIdentExpr()
	case TokenStar:
		return nil, p.errorf("unexpected *")
	}
	return nil, p.errorf("unexpected token %q in expression", tok.Text)
}

func (p *Parser) parseExistsTail(not bool) (Expr, error) {
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected ( after EXISTS")
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected ) after EXISTS subquery")
	}
	return &ExistsExpr{Sub: sub, Not: not}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptKeyword("THEN") {
			return nil, p.errorf("expected THEN")
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{When: w, Then: t})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE without WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if !p.acceptKeyword("END") {
		return nil, p.errorf("expected END closing CASE")
	}
	return ce, nil
}

func (p *Parser) parseCast() (Expr, error) {
	p.next() // CAST
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected ( after CAST")
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.acceptKeyword("AS") {
		return nil, p.errorf("expected AS in CAST")
	}
	t := p.peek()
	if t.Type != TokenKeyword || !isTypeKeyword(t.Text) {
		return nil, p.errorf("expected type name in CAST, got %q", t.Text)
	}
	p.next()
	// Optional size suffix.
	if p.accept(TokenLParen, "") {
		for !p.accept(TokenRParen, "") {
			if p.atEOF() {
				return nil, p.errorf("unterminated CAST type")
			}
			p.next()
		}
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected ) closing CAST")
	}
	return &CastExpr{X: x, Type: normaliseType(t.Text)}, nil
}

// parseIdentExpr handles column references (possibly qualified) and
// function calls.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name := p.next().Text
	// Function call.
	if p.peek().Type == TokenLParen {
		return p.parseFuncArgs(strings.ToUpper(name))
	}
	// Qualified reference: table.column or table.*
	if p.accept(TokenDot, "") {
		if p.accept(TokenStar, "") {
			// table.* in expression position is only valid inside COUNT();
			// represent as a column ref with Name "*", the evaluator rejects
			// it outside aggregate contexts.
			return &ColumnRef{Table: name, Name: "*"}, nil
		}
		col, err := p.expectIdentLike()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *Parser) parseFuncArgs(name string) (Expr, error) {
	if !p.accept(TokenLParen, "") {
		return nil, p.errorf("expected ( after function name %s", name)
	}
	fc := &FuncCall{Name: name}
	if p.accept(TokenStar, "") {
		fc.Star = true
		if !p.accept(TokenRParen, "") {
			return nil, p.errorf("expected ) after %s(*)", name)
		}
		return fc, nil
	}
	if p.accept(TokenRParen, "") {
		return fc, nil
	}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if !p.accept(TokenComma, "") {
			break
		}
	}
	if !p.accept(TokenRParen, "") {
		return nil, p.errorf("expected ) closing %s(...)", name)
	}
	return fc, nil
}

// --- Token plumbing ---

func (p *Parser) peek() Token { return p.peekAt(0) }

func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Type: TokenEOF, Pos: len(p.src)}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Type == TokenEOF }

// accept consumes the next token when it matches typ (and, when text is
// non-empty, the exact text).
func (p *Parser) accept(typ TokenType, text string) bool {
	t := p.peek()
	if t.Type != typ {
		return false
	}
	if text != "" && t.Text != text {
		return false
	}
	p.next()
	return true
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Type == TokenKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Type == TokenKeyword && t.Text == kw
}

func (p *Parser) peekAtKeyword(n int, kw string) bool {
	t := p.peekAt(n)
	return t.Type == TokenKeyword && t.Text == kw
}

// expectIdentLike consumes an identifier, also tolerating keywords used as
// names (common in real schemas: Date, Key, ...).
func (p *Parser) expectIdentLike() (string, error) {
	t := p.peek()
	if t.Type == TokenIdent {
		p.next()
		return t.Text, nil
	}
	// Allow non-reserved keywords as identifiers.
	if t.Type == TokenKeyword && isNameKeyword(t.Text) {
		p.next()
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

// isNameKeyword reports whether kw, though lexed as a keyword, may be used
// as a table or column name (real schemas use Date, Key, Status, ...).
func isNameKeyword(kw string) bool {
	switch kw {
	case "DATE", "DATETIME", "KEY", "SET", "TEXT", "INT", "INTEGER",
		"REAL", "VALUES", "DEFAULT", "NOCASE", "ALL":
		return true
	}
	return false
}

func (p *Parser) errorf(format string, args ...any) error {
	pos := p.peek().Pos
	ctx := p.src
	if len(ctx) > 60 {
		start := pos - 20
		if start < 0 {
			start = 0
		}
		end := pos + 30
		if end > len(ctx) {
			end = len(ctx)
		}
		ctx = "..." + ctx[start:end] + "..."
	}
	return fmt.Errorf("sqlengine: parse error at offset %d (%s): %s", pos, ctx, fmt.Sprintf(format, args...))
}
