package sqlengine

import (
	"fmt"
	"strings"
	"sync"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       string // INTEGER, REAL or TEXT
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// Table is an in-memory table: a schema plus materialised rows.
type Table struct {
	Name        string
	Columns     []Column
	ForeignKeys []ForeignKeyDef
	Rows        [][]Value

	colIndex map[string]int // lower-case column name -> position

	// idxMu guards eqIdx and colVecs. Indexes and column vectors are built
	// lazily by concurrent read-only queries; any DML drops them (the
	// Database contract already forbids mutation concurrent with queries).
	idxMu   sync.Mutex
	eqIdx   map[int]*colEqIndex // column position -> equality index
	colVecs map[int]*colVec     // column position -> columnar shadow (vector.go)
}

// colEqIndex is a lazily built point-lookup index over one column: the
// planner's coarse join key mapped to ascending row positions. Ascending
// order matters — it makes an index scan emit rows in exactly the order a
// full scan would, which the plan/naive equivalence guarantee relies on.
type colEqIndex struct {
	buckets map[string][]int
}

func newTable(name string, cols []Column, fks []ForeignKeyDef) *Table {
	t := &Table{Name: name, Columns: cols, ForeignKeys: fks, colIndex: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.colIndex[strings.ToLower(c.Name)] = i
	}
	return t
}

// eqLookup returns the positions (ascending) of rows whose column col may
// equal a value with coarse key key, building the column's index on first
// use. Callers must re-verify candidates with real SQL equality: the coarse
// key over-approximates (see coarseKey).
func (t *Table) eqLookup(col int, key string) []int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.eqIdx == nil {
		t.eqIdx = make(map[int]*colEqIndex)
	}
	idx, ok := t.eqIdx[col]
	if !ok {
		idx = &colEqIndex{buckets: make(map[string][]int)}
		var buf []byte
		for ri, row := range t.Rows {
			v := row[col]
			if v.IsNull() {
				continue
			}
			buf = coarseKey(buf[:0], v)
			k := string(buf)
			idx.buckets[k] = append(idx.buckets[k], ri)
		}
		t.eqIdx[col] = idx
	}
	return idx.buckets[key]
}

// invalidateIndexes drops all lazily built equality indexes and column
// vectors. Every DML path (INSERT/UPDATE/DELETE) calls it so index and
// vector reads never see stale rows. (BulkInsert instead extends the
// vectors in place — see Table.noteBulkAppend.)
func (t *Table) invalidateIndexes() {
	t.idxMu.Lock()
	t.eqIdx = nil
	t.colVecs = nil
	t.idxMu.Unlock()
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column definition (case-insensitive).
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// Database is a named collection of tables. It is not safe for concurrent
// mutation; concurrent read-only query execution is safe.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string

	plans      *planCache
	plannerOff bool

	// Batch-execution knobs (see parallel.go). Zero values mean defaults:
	// vectorized execution on, parallelism = GOMAXPROCS, threshold
	// constants from parallel.go.
	vectorOff  bool
	workers    int
	minVecRows int
	minParRows int
}

// NewDatabase returns an empty database with the given name.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table), plans: newPlanCache(0, 0)}
}

// SetPlanner enables or disables the query planner (plan-driven hash joins,
// predicate pushdown and point-lookup indexes). The planner is on by
// default; turning it off forces the naive executor, which by construction
// produces identical rows and identical Cost — the switch exists for the
// equivalence tests and the nested-vs-hash benchmarks.
func (db *Database) SetPlanner(enabled bool) { db.plannerOff = !enabled }

// SetVectorized enables or disables the columnar batch executor (vectorized
// scan-filter kernels, morsel-parallel filters, joins and grouping; see
// parallel.go). It is on by default and engages only for planned execution;
// turning it off forces the row-at-a-time interpreter everywhere. Like
// SetPlanner, the switch changes only the physical execution: rows, row
// order, errors and the logical Result.Cost are identical either way — the
// property the vectorized-on/off × planner-on/off equivalence tests pin.
func (db *Database) SetVectorized(enabled bool) { db.vectorOff = !enabled }

// SetParallelism caps the number of worker goroutines a single batch
// operator may use. 0 (the default) means GOMAXPROCS; 1 forces serial
// batch execution (vectorized kernels still apply). The cap is a request:
// workers beyond the first are borrowed from a process-wide per-core pool
// and under concurrent query load an operator degrades toward serial
// rather than oversubscribing the machine.
func (db *Database) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.workers = n
}

// SetBatchTuning overrides the batch executor's engagement thresholds:
// minVecRows is the smallest table scan that consults the columnar shadow,
// minParRows the smallest operator input that may fan out to parallel
// workers. Zero restores the defaults (parallel.go). Intended for tests
// and benchmarks that need the batch paths to engage on small fixtures.
func (db *Database) SetBatchTuning(minVecRows, minParRows int) {
	db.minVecRows = minVecRows
	db.minParRows = minParRows
}

// Table returns the named table (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in creation order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// TableNames returns the table names in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n].Name)
	}
	return out
}

func (db *Database) createTable(ct *CreateTableStmt) (*Table, error) {
	key := strings.ToLower(ct.Name)
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("sqlengine: table %q already exists", ct.Name)
	}
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("sqlengine: table %q has no columns", ct.Name)
	}
	seen := make(map[string]bool, len(ct.Columns))
	cols := make([]Column, 0, len(ct.Columns))
	for _, cd := range ct.Columns {
		lk := strings.ToLower(cd.Name)
		if seen[lk] {
			return nil, fmt.Errorf("sqlengine: duplicate column %q in table %q", cd.Name, ct.Name)
		}
		seen[lk] = true
		cols = append(cols, Column{
			Name:       cd.Name,
			Type:       cd.Type,
			PrimaryKey: cd.PrimaryKey,
			NotNull:    cd.NotNull,
			Unique:     cd.Unique,
		})
	}
	t := newTable(ct.Name, cols, ct.ForeignKeys)
	db.tables[key] = t
	db.order = append(db.order, key)
	return t, nil
}

// insertRow coerces and appends one row of already-evaluated values.
func (t *Table) insertRow(cols []string, vals []Value) error {
	row := make([]Value, len(t.Columns))
	if len(cols) == 0 {
		if len(vals) != len(t.Columns) {
			return fmt.Errorf("sqlengine: table %s has %d columns but %d values supplied", t.Name, len(t.Columns), len(vals))
		}
		copy(row, vals)
	} else {
		if len(cols) != len(vals) {
			return fmt.Errorf("sqlengine: %d columns but %d values", len(cols), len(vals))
		}
		for i, c := range cols {
			idx := t.ColumnIndex(c)
			if idx < 0 {
				return fmt.Errorf("sqlengine: table %s has no column %q", t.Name, c)
			}
			row[idx] = vals[i]
		}
	}
	for i := range row {
		row[i] = coerce(row[i], t.Columns[i].Type)
		if row[i].IsNull() && t.Columns[i].NotNull {
			return fmt.Errorf("sqlengine: NOT NULL constraint failed: %s.%s", t.Name, t.Columns[i].Name)
		}
	}
	t.Rows = append(t.Rows, row)
	t.invalidateIndexes()
	return nil
}

// coerce applies column-type affinity to a value, SQLite style: numeric
// affinity parses numeric-looking text; text affinity renders numbers.
func coerce(v Value, colType string) Value {
	switch colType {
	case "INTEGER":
		switch v.Kind {
		case KindText:
			s := strings.TrimSpace(v.S)
			if s == "" {
				return v
			}
			if looksInteger(s) {
				return Int(v.AsInt())
			}
			if looksNumeric(s) {
				return Float(v.AsFloat())
			}
			return v
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				return Int(int64(v.F))
			}
			return v
		default:
			return v
		}
	case "REAL":
		switch v.Kind {
		case KindInt:
			return Float(float64(v.I))
		case KindText:
			s := strings.TrimSpace(v.S)
			if looksNumeric(s) {
				return Float(v.AsFloat())
			}
			return v
		default:
			return v
		}
	default: // TEXT
		switch v.Kind {
		case KindInt, KindFloat:
			return Text(v.AsText())
		default:
			return v
		}
	}
}

func looksInteger(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	for ; i < len(s); i++ {
		if !isDigit(s[i]) {
			return false
		}
	}
	return true
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot, digit := false, false
	i := 0
	if s[0] == '-' || s[0] == '+' {
		i = 1
	}
	for ; i < len(s); i++ {
		switch {
		case isDigit(s[i]):
			digit = true
		case s[i] == '.' && !dot:
			dot = true
		default:
			return false
		}
	}
	return digit
}
