package sqlengine

import (
	"reflect"
	"strings"
	"testing"
)

// fixtureDB builds a small two-table database used across execution tests.
func fixtureDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("fixture")
	stmts := []string{
		`CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept TEXT, salary REAL, manager_id INTEGER)`,
		`CREATE TABLE dept (code TEXT PRIMARY KEY, label TEXT, budget INTEGER)`,
		`INSERT INTO emp VALUES
			(1, 'Ann', 'ENG', 120.5, NULL),
			(2, 'Bob', 'ENG', 95.0, 1),
			(3, 'Cara', 'OPS', 88.0, 1),
			(4, 'Dan', 'OPS', 88.0, 3),
			(5, 'Eve', 'HR', 70.0, 1),
			(6, 'Fred', NULL, NULL, 2)`,
		`INSERT INTO dept VALUES ('ENG', 'Engineering', 1000), ('OPS', 'Operations', 500), ('FIN', 'Finance', 300)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("fixture %q: %v", s, err)
		}
	}
	return db
}

func queryVals(t *testing.T, db *Database, sql string) [][]Value {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows.Data
}

func flatten(rows [][]Value) []string {
	var out []string
	for _, r := range rows {
		var parts []string
		for _, v := range r {
			if v.IsNull() {
				parts = append(parts, "NULL")
			} else {
				parts = append(parts, v.AsText())
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func expectRows(t *testing.T, db *Database, sql string, want []string) {
	t.Helper()
	got := flatten(queryVals(t, db, sql))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Query(%q)\n got: %v\nwant: %v", sql, got, want)
	}
}

func TestSelectWhere(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT name FROM emp WHERE dept = 'ENG' ORDER BY id", []string{"Ann", "Bob"})
	expectRows(t, db, "SELECT name FROM emp WHERE salary > 88 ORDER BY salary DESC", []string{"Ann", "Bob"})
	expectRows(t, db, "SELECT name FROM emp WHERE dept IS NULL", []string{"Fred"})
	expectRows(t, db, "SELECT name FROM emp WHERE salary BETWEEN 80 AND 100 ORDER BY id", []string{"Bob", "Cara", "Dan"})
	expectRows(t, db, "SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY id", []string{"Ann", "Cara", "Dan"})
	expectRows(t, db, "SELECT name FROM emp WHERE dept IN ('OPS', 'HR') ORDER BY id", []string{"Cara", "Dan", "Eve"})
}

func TestCaseSensitivityOfEquals(t *testing.T) {
	db := fixtureDB(t)
	// '=' must be case-sensitive: this is what makes the paper's
	// case-sensitivity evidence defects actually produce wrong results.
	expectRows(t, db, "SELECT name FROM emp WHERE dept = 'eng'", nil)
	expectRows(t, db, "SELECT name FROM emp WHERE dept = 'ENG' ORDER BY id", []string{"Ann", "Bob"})
	// LIKE is case-insensitive (SQLite default).
	expectRows(t, db, "SELECT name FROM emp WHERE dept LIKE 'eng' ORDER BY id", []string{"Ann", "Bob"})
}

func TestProjectionAndAliases(t *testing.T) {
	db := fixtureDB(t)
	rows, err := db.Query("SELECT name AS who, salary * 2 AS double_pay FROM emp WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows.Columns, []string{"who", "double_pay"}) {
		t.Errorf("columns = %v", rows.Columns)
	}
	if rows.Data[0][1].AsFloat() != 241.0 {
		t.Errorf("double_pay = %v", rows.Data[0][1])
	}
}

func TestStarExpansion(t *testing.T) {
	db := fixtureDB(t)
	rows, err := db.Query("SELECT * FROM dept ORDER BY code")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 3 || len(rows.Data) != 3 {
		t.Fatalf("star expansion: %v, %d rows", rows.Columns, len(rows.Data))
	}
	rows, err = db.Query("SELECT e.* FROM emp e WHERE e.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 5 {
		t.Fatalf("qualified star: %v", rows.Columns)
	}
}

func TestJoins(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db,
		`SELECT e.name, d.label FROM emp e INNER JOIN dept d ON e.dept = d.code WHERE e.salary >= 95 ORDER BY e.id`,
		[]string{"Ann|Engineering", "Bob|Engineering"})
	// LEFT JOIN keeps Fred (NULL dept) with NULL label.
	expectRows(t, db,
		`SELECT e.name, d.label FROM emp e LEFT JOIN dept d ON e.dept = d.code WHERE e.id IN (1, 6) ORDER BY e.id`,
		[]string{"Ann|Engineering", "Fred|NULL"})
	// Self join via aliases.
	expectRows(t, db,
		`SELECT e.name, m.name FROM emp e JOIN emp m ON e.manager_id = m.id WHERE e.id = 4`,
		[]string{"Dan|Cara"})
}

func TestGroupByHaving(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db,
		"SELECT dept, COUNT(*) FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept",
		[]string{"ENG|2", "HR|1", "OPS|2"})
	expectRows(t, db,
		"SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) >= 2 AND dept IS NOT NULL ORDER BY dept",
		[]string{"ENG", "OPS"})
	expectRows(t, db,
		"SELECT dept, AVG(salary) FROM emp WHERE dept = 'OPS' GROUP BY dept",
		[]string{"OPS|88.0"})
}

func TestAggregatesOverall(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT COUNT(*) FROM emp", []string{"6"})
	expectRows(t, db, "SELECT COUNT(salary) FROM emp", []string{"5"}) // NULL not counted
	expectRows(t, db, "SELECT COUNT(DISTINCT dept) FROM emp", []string{"3"})
	expectRows(t, db, "SELECT SUM(budget) FROM dept", []string{"1800"})
	expectRows(t, db, "SELECT MIN(salary), MAX(salary) FROM emp", []string{"70.0|120.5"})
	expectRows(t, db, "SELECT COUNT(*) FROM emp WHERE dept = 'NOPE'", []string{"0"})
	// SUM over empty set is NULL; TOTAL is 0.0.
	expectRows(t, db, "SELECT SUM(salary) FROM emp WHERE id > 100", []string{"NULL"})
	expectRows(t, db, "SELECT TOTAL(salary) FROM emp WHERE id > 100", []string{"0.0"})
}

func TestDistinctOrderLimit(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT DISTINCT dept FROM emp WHERE dept IS NOT NULL ORDER BY dept", []string{"ENG", "HR", "OPS"})
	expectRows(t, db, "SELECT name FROM emp ORDER BY salary DESC, name ASC LIMIT 3", []string{"Ann", "Bob", "Cara"})
	expectRows(t, db, "SELECT name FROM emp ORDER BY id LIMIT 2 OFFSET 2", []string{"Cara", "Dan"})
	// ORDER BY ordinal and alias.
	expectRows(t, db, "SELECT name, salary AS s FROM emp WHERE salary IS NOT NULL ORDER BY 2 DESC LIMIT 1", []string{"Ann|120.5"})
	expectRows(t, db, "SELECT name, salary AS s FROM emp WHERE salary IS NOT NULL ORDER BY s ASC LIMIT 1", []string{"Eve|70.0"})
}

func TestSubqueries(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db,
		"SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY id",
		[]string{"Ann", "Bob"})
	expectRows(t, db,
		"SELECT label FROM dept WHERE code IN (SELECT dept FROM emp WHERE salary >= 88) ORDER BY code",
		[]string{"Engineering", "Operations"})
	expectRows(t, db,
		"SELECT label FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.code) ORDER BY code",
		[]string{"Engineering", "Operations"})
	expectRows(t, db,
		"SELECT label FROM dept d WHERE NOT EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.code)",
		[]string{"Finance"})
	// FROM subquery.
	expectRows(t, db,
		"SELECT q.d, q.n FROM (SELECT dept AS d, COUNT(*) AS n FROM emp WHERE dept IS NOT NULL GROUP BY dept) q WHERE q.n = 2 ORDER BY q.d",
		[]string{"ENG|2", "OPS|2"})
}

func TestCompoundSelects(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db,
		"SELECT dept FROM emp WHERE dept IS NOT NULL UNION SELECT code FROM dept ORDER BY 1",
		[]string{"ENG", "FIN", "HR", "OPS"})
	expectRows(t, db,
		"SELECT code FROM dept EXCEPT SELECT dept FROM emp ORDER BY 1",
		[]string{"FIN"})
	expectRows(t, db,
		"SELECT code FROM dept INTERSECT SELECT dept FROM emp ORDER BY 1",
		[]string{"ENG", "OPS"})
	got := flatten(queryVals(t, db, "SELECT 1 UNION ALL SELECT 1"))
	if len(got) != 2 {
		t.Errorf("UNION ALL should keep duplicates, got %v", got)
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT UPPER(name), LOWER(dept) FROM emp WHERE id = 1", []string{"ANN|eng"})
	expectRows(t, db, "SELECT LENGTH(name) FROM emp WHERE id = 3", []string{"4"})
	expectRows(t, db, "SELECT SUBSTR(name, 1, 2) FROM emp WHERE id = 1", []string{"An"})
	expectRows(t, db, "SELECT ABS(-5), ROUND(3.567, 1)", []string{"5|3.6"})
	expectRows(t, db, "SELECT COALESCE(NULL, NULL, 'x')", []string{"x"})
	expectRows(t, db, "SELECT IIF(1 > 0, 'yes', 'no')", []string{"yes"})
	expectRows(t, db, "SELECT CAST('12' AS INTEGER) + 1", []string{"13"})
	expectRows(t, db, "SELECT CASE WHEN salary > 100 THEN 'high' ELSE 'low' END FROM emp WHERE id = 1", []string{"high"})
	expectRows(t, db, "SELECT name || '-' || dept FROM emp WHERE id = 2", []string{"Bob-ENG"})
	expectRows(t, db, "SELECT REPLACE('a-b-c', '-', '+')", []string{"a+b+c"})
	expectRows(t, db, "SELECT INSTR('hello', 'll')", []string{"3"})
	expectRows(t, db, "SELECT STRFTIME('%Y', '2014-06-11')", []string{"2014"})
	expectRows(t, db, "SELECT MIN(3, 1, 2), MAX(3, 1, 2)", []string{"1|3"})
	expectRows(t, db, "SELECT NULLIF(1, 1), IFNULL(NULL, 7)", []string{"NULL|7"})
}

func TestNullSemantics(t *testing.T) {
	db := fixtureDB(t)
	// NULL comparisons exclude rows.
	expectRows(t, db, "SELECT name FROM emp WHERE salary > 0 OR salary <= 0 ORDER BY id LIMIT 1", []string{"Ann"})
	got := flatten(queryVals(t, db, "SELECT name FROM emp WHERE salary != 88"))
	for _, g := range got {
		if g == "Fred" {
			t.Errorf("NULL salary row must not pass != predicate")
		}
	}
	// Arithmetic with NULL is NULL.
	expectRows(t, db, "SELECT salary + 1 FROM emp WHERE id = 6", []string{"NULL"})
	// IN with NULL on the left is no match.
	expectRows(t, db, "SELECT name FROM emp WHERE dept IN ('ENG') AND id = 6", nil)
}

func TestInsertUpdateDeleteExec(t *testing.T) {
	db := fixtureDB(t)
	res, err := db.Exec("INSERT INTO dept VALUES ('SCI', 'Science', 250)")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("insert: %v, affected %d", err, res.RowsAffected)
	}
	res, err = db.Exec("UPDATE dept SET budget = 300 WHERE code = 'SCI'")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("update: %v, affected %d", err, res.RowsAffected)
	}
	expectRows(t, db, "SELECT budget FROM dept WHERE code = 'SCI'", []string{"300"})
	res, err = db.Exec("DELETE FROM dept WHERE code = 'SCI'")
	if err != nil || res.RowsAffected != 1 {
		t.Fatalf("delete: %v, affected %d", err, res.RowsAffected)
	}
	expectRows(t, db, "SELECT budget FROM dept WHERE code = 'SCI'", nil)
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDatabase("c")
	db.MustExec("CREATE TABLE t (i INTEGER, r REAL, s TEXT)")
	db.MustExec("INSERT INTO t VALUES ('42', '3.5', 99)")
	rows := queryVals(t, db, "SELECT i, r, s FROM t")
	if rows[0][0].Kind != KindInt || rows[0][0].I != 42 {
		t.Errorf("INTEGER affinity failed: %v", rows[0][0])
	}
	if rows[0][1].Kind != KindFloat || rows[0][1].F != 3.5 {
		t.Errorf("REAL affinity failed: %v", rows[0][1])
	}
	if rows[0][2].Kind != KindText || rows[0][2].S != "99" {
		t.Errorf("TEXT affinity failed: %v", rows[0][2])
	}
}

func TestNumericTextComparison(t *testing.T) {
	db := NewDatabase("c")
	db.MustExec("CREATE TABLE t (v TEXT)")
	db.MustExec("INSERT INTO t VALUES ('500'), ('1500')")
	// Comparing numeric-looking text against a number coerces.
	expectRows(t, db, "SELECT v FROM t WHERE v > 600", []string{"1500"})
}

func TestErrorsAtExecution(t *testing.T) {
	db := fixtureDB(t)
	bad := []string{
		"SELECT nosuch FROM emp",
		"SELECT * FROM nosuch",
		"SELECT emp.nosuch FROM emp",
		"SELECT name FROM emp WHERE NOSUCHFN(1) = 1",
		"INSERT INTO nosuch VALUES (1)",
		"INSERT INTO dept VALUES (1)", // arity
		"SELECT SUM(salary, 2) FROM emp",
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("Exec(%q) should fail", s)
		}
	}
	// Ambiguous unqualified column across joined tables.
	db2 := NewDatabase("amb")
	db2.MustExec("CREATE TABLE a (x INTEGER)")
	db2.MustExec("CREATE TABLE b (x INTEGER)")
	db2.MustExec("INSERT INTO a VALUES (1)")
	db2.MustExec("INSERT INTO b VALUES (1)")
	if _, err := db2.Exec("SELECT x FROM a JOIN b ON a.x = b.x"); err == nil {
		t.Errorf("ambiguous column should fail")
	}
}

func TestCostAccounting(t *testing.T) {
	db := fixtureDB(t)
	res1, err := db.Exec("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db.Exec("SELECT * FROM emp e JOIN dept d ON e.dept = d.code")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cost <= 0 || res2.Cost <= res1.Cost {
		t.Errorf("cost should grow with work: scan=%d join=%d", res1.Cost, res2.Cost)
	}
	// Identical statements must report identical costs (determinism).
	res3, err := db.Exec("SELECT * FROM emp e JOIN dept d ON e.dept = d.code")
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cost != res2.Cost {
		t.Errorf("cost not deterministic: %d vs %d", res2.Cost, res3.Cost)
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := NewDatabase("nn")
	db.MustExec("CREATE TABLE t (a INTEGER NOT NULL)")
	if _, err := db.Exec("INSERT INTO t VALUES (NULL)"); err == nil {
		t.Errorf("NOT NULL insert should fail")
	}
}

func TestGroupConcatAndAvgPrecision(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT GROUP_CONCAT(name) FROM emp WHERE dept = 'ENG'", []string{"Ann,Bob"})
	rows := queryVals(t, db, "SELECT AVG(budget) FROM dept")
	if rows[0][0].AsFloat() != 600.0 {
		t.Errorf("AVG = %v, want 600", rows[0][0])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := NewDatabase("x")
	expectRows(t, db, "SELECT 1 + 1, 'a' || 'b'", []string{"2|ab"})
}

func TestCorrelatedSubqueryAggregation(t *testing.T) {
	db := fixtureDB(t)
	// Employees earning the max salary within their department.
	expectRows(t, db,
		`SELECT name FROM emp e WHERE salary = (SELECT MAX(salary) FROM emp x WHERE x.dept = e.dept) ORDER BY id`,
		[]string{"Ann", "Cara", "Dan", "Eve"})
}

func TestMySQLStyleLimit(t *testing.T) {
	db := fixtureDB(t)
	expectRows(t, db, "SELECT name FROM emp ORDER BY id LIMIT 2, 2", []string{"Cara", "Dan"})
}
