package sqlengine

// Columnar storage shadow. Base tables keep [][]Value as the source of
// truth (DML, BulkInsert and the naive executor all operate on rows), but
// scan-heavy execution wants column-major data: a typed vector per column
// lets the filter kernels in kernels.go run tight int64/float64/string
// loops with a null bitmap instead of loading 4-word Value structs and
// switching on Kind per cell.
//
// Vectors are built lazily per column, under the same lock and with the
// same invalidation discipline as the point-lookup indexes: any DML drops
// them (invalidateIndexes), except BulkInsert, which appends to already
// built vectors in place (noteBulkAppend) so repeated bulk loads do not
// churn the shadow. A vector is always positionally aligned with t.Rows —
// vec position i is row t.Rows[i] — which is why the vectorized scan path
// only applies to full-table scans, never to index-narrowed candidate
// lists.

// colVec is the columnar shadow of one table column. When every non-NULL
// cell of the column has the same storage kind, typed reports that kind
// and exactly one of ints/floats/strs is populated (len == row count);
// mixed-kind columns get typed == false and no arrays, and the kernels
// fall back to reading t.Rows directly. nulls is nil when the column has
// no NULLs, else a per-row bitmap (true = NULL; the typed array holds a
// zero value at those positions).
type colVec struct {
	typed  bool
	kind   Kind // meaningful only when typed; KindNull = all cells NULL
	nulls  []bool
	ints   []int64
	floats []float64
	strs   []string
}

// null reports whether position i holds SQL NULL.
func (v *colVec) null(i int) bool { return v.nulls != nil && v.nulls[i] }

// buildColVec scans one column of rows into a vector. Single pass: the
// first non-NULL cell fixes the kind; any deviating cell downgrades the
// vector to untyped (the arrays are dropped, only the null bitmap — if any
// — survives, since IS NULL kernels remain valid on mixed columns).
func buildColVec(rows [][]Value, col int) *colVec {
	v := &colVec{typed: true, kind: KindNull}
	for i, row := range rows {
		c := row[col]
		if c.IsNull() {
			if v.nulls == nil {
				v.nulls = make([]bool, len(rows))
			}
			v.nulls[i] = true
			v.pad(1)
			continue
		}
		if v.kind == KindNull {
			v.kind = c.Kind
			v.alloc(len(rows), i)
		}
		if c.Kind != v.kind {
			v.typed = false
			v.ints, v.floats, v.strs = nil, nil, nil
			// Finish the null bitmap over the remaining rows.
			for j := i + 1; j < len(rows); j++ {
				if rows[j][col].IsNull() {
					if v.nulls == nil {
						v.nulls = make([]bool, len(rows))
					}
					v.nulls[j] = true
				}
			}
			return v
		}
		v.appendCell(c)
	}
	return v
}

// alloc reserves the typed array for n rows with the first filled leading
// zero cells (rows seen before the kind was known are all NULL).
func (v *colVec) alloc(n, filled int) {
	switch v.kind {
	case KindInt:
		v.ints = make([]int64, filled, n)
	case KindFloat:
		v.floats = make([]float64, filled, n)
	case KindText:
		v.strs = make([]string, filled, n)
	}
}

// pad appends n zero cells to whichever typed array is live (NULL rows).
func (v *colVec) pad(n int) {
	switch v.kind {
	case KindInt:
		for i := 0; i < n; i++ {
			v.ints = append(v.ints, 0)
		}
	case KindFloat:
		for i := 0; i < n; i++ {
			v.floats = append(v.floats, 0)
		}
	case KindText:
		for i := 0; i < n; i++ {
			v.strs = append(v.strs, "")
		}
	}
}

func (v *colVec) appendCell(c Value) {
	switch v.kind {
	case KindInt:
		v.ints = append(v.ints, c.I)
	case KindFloat:
		v.floats = append(v.floats, c.F)
	case KindText:
		v.strs = append(v.strs, c.S)
	}
}

// length returns the row count the vector currently covers.
func (v *colVec) length() int {
	if !v.typed {
		return len(v.nulls)
	}
	switch v.kind {
	case KindInt:
		return len(v.ints)
	case KindFloat:
		return len(v.floats)
	case KindText:
		return len(v.strs)
	default: // all NULL
		return len(v.nulls)
	}
}

// columnVec returns the columnar shadow of column col, building it on
// first use. Safe for concurrent readers (same discipline as eqLookup).
// A vector whose length no longer matches the table is rebuilt — that
// cannot happen under the documented DML/query exclusion contract, but it
// is a one-comparison guard against a stale shadow producing wrong rows.
func (t *Table) columnVec(col int) *colVec {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.colVecs == nil {
		t.colVecs = make(map[int]*colVec)
	}
	v, ok := t.colVecs[col]
	if !ok || (v.typed && v.kind != KindNull && v.length() != len(t.Rows)) ||
		((!v.typed || v.kind == KindNull) && v.nulls != nil && len(v.nulls) != len(t.Rows)) {
		v = buildColVec(t.Rows, col)
		t.colVecs[col] = v
	}
	return v
}

// noteBulkAppend is BulkInsert's index maintenance: the staged rows were
// just appended to t.Rows, so the point-lookup indexes are stale and must
// drop, but any built column vectors can be extended in place instead of
// being rebuilt from scratch on next use. A staged cell that breaks a
// vector's uniform kind evicts just that column's vector.
func (t *Table) noteBulkAppend(staged [][]Value) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	t.eqIdx = nil
	if t.colVecs == nil {
		return
	}
	base := len(t.Rows) - len(staged)
	for col, v := range t.colVecs {
		if !v.typed {
			// Untyped vectors only carry the null bitmap; keep it current.
			if v.nulls != nil {
				for _, row := range staged {
					v.nulls = append(v.nulls, row[col].IsNull())
				}
			}
			continue
		}
		evict := false
		for si, row := range staged {
			c := row[col]
			if c.IsNull() {
				if v.nulls == nil {
					v.nulls = make([]bool, base+si)
				}
				for len(v.nulls) < base+si {
					v.nulls = append(v.nulls, false)
				}
				v.nulls = append(v.nulls, true)
				v.pad(1)
				continue
			}
			if v.kind == KindNull {
				// First non-NULL value the column has ever seen: the arrays
				// were never allocated, so a rebuild on next use is cheaper
				// than retrofitting here.
				evict = true
				break
			}
			if c.Kind != v.kind {
				evict = true
				break
			}
			if v.nulls != nil {
				for len(v.nulls) < base+si {
					v.nulls = append(v.nulls, false)
				}
				v.nulls = append(v.nulls, false)
			}
			v.appendCell(c)
		}
		if evict {
			delete(t.colVecs, col)
			continue
		}
		if v.nulls != nil {
			for len(v.nulls) < len(t.Rows) {
				v.nulls = append(v.nulls, false)
			}
		}
	}
}
