package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evserve"
	"repro/internal/obs"
)

// batcher coalesces concurrent evidence requests into evserve.GenerateAll
// calls. Arrivals accumulate until either the batch window elapses or the
// batch reaches maxSize, then the whole batch is handed to the service's
// worker pool in one call. Under concurrent load this converts N cache
// probes / pipeline runs dispatched one goroutine at a time into pooled
// batches with backpressure — the serving-path analogue of what
// experiments.evidenceMap does for offline splits.
//
// With batching disabled (window <= 0 or maxSize <= 1) Generate degrades
// to a direct single-flight service call: the fast path for lightly
// loaded servers, where waiting out a window would only add latency.
type batcher struct {
	svc     *evserve.Service
	window  time.Duration
	maxSize int

	mu      sync.Mutex
	pending []batchItem
	timer   *time.Timer

	singles       atomic.Int64
	batches       atomic.Int64
	batched       atomic.Int64
	sizeFlushes   atomic.Int64
	windowFlushes atomic.Int64
}

type batchItem struct {
	req evserve.Request
	out chan batchResult
}

type batchResult struct {
	evidence evserve.Evidence
	err      error
	// size is how many requests shared the batch — a span attribute.
	size int
}

func newBatcher(svc *evserve.Service, window time.Duration, maxSize int) *batcher {
	return &batcher{svc: svc, window: window, maxSize: maxSize}
}

// Generate produces evidence (with its provenance trace) for one request,
// possibly sharing a batch with concurrent callers. Cancelling ctx
// abandons the wait immediately; the batch itself keeps running for the
// other participants, and the abandoned result is delivered into a
// buffered channel and dropped.
func (b *batcher) Generate(ctx context.Context, db, question string) (evserve.Evidence, error) {
	if b.window <= 0 || b.maxSize <= 1 {
		b.singles.Add(1)
		return b.svc.GenerateTraced(ctx, db, question)
	}
	// The wait span covers coalescing + the shared batch execution: the
	// batch itself runs under its own context (it is shared by unrelated
	// requests), so this span is the only per-request view of the batched
	// path's cost.
	_, sp := obs.StartSpan(ctx, "batcher.wait")
	item := batchItem{
		req: evserve.Request{DB: db, Question: question},
		out: make(chan batchResult, 1),
	}
	b.mu.Lock()
	b.pending = append(b.pending, item)
	if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.window, b.flushWindow)
	}
	if len(b.pending) >= b.maxSize {
		items := b.takeLocked()
		b.mu.Unlock()
		b.sizeFlushes.Add(1)
		go b.run(items)
	} else {
		b.mu.Unlock()
	}
	select {
	case r := <-item.out:
		sp.SetAttr("batch_size", r.size)
		if r.err != nil {
			sp.Fail(r.err)
		} else {
			sp.End()
		}
		return r.evidence, r.err
	case <-ctx.Done():
		sp.Fail(ctx.Err())
		return evserve.Evidence{}, ctx.Err()
	}
}

// takeLocked detaches the pending batch and disarms the window timer.
// Callers must hold b.mu.
func (b *batcher) takeLocked() []batchItem {
	items := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return items
}

func (b *batcher) flushWindow() {
	b.mu.Lock()
	items := b.takeLocked()
	b.mu.Unlock()
	if len(items) == 0 {
		return
	}
	b.windowFlushes.Add(1)
	b.run(items)
}

// Flush synchronously dispatches whatever is pending; the server's
// shutdown path calls it so no waiter is left parked behind a timer that
// would fire after the evidence service closes.
func (b *batcher) Flush() {
	b.mu.Lock()
	items := b.takeLocked()
	b.mu.Unlock()
	if len(items) == 0 {
		return
	}
	b.run(items)
}

// run executes one batch. The batch context is Background on purpose: a
// batch is shared by unrelated requests, so one caller's cancellation must
// not fail the others; individual callers stop waiting via their own ctx
// in Generate.
func (b *batcher) run(items []batchItem) {
	reqs := make([]evserve.Request, len(items))
	for i := range items {
		reqs[i] = items[i].req
	}
	results, _ := b.svc.GenerateAll(context.Background(), reqs)
	// Count the batch before releasing its waiters, so a caller that
	// reads stats right after its Generate returns sees this batch.
	b.batches.Add(1)
	b.batched.Add(int64(len(items)))
	for i := range items {
		items[i].out <- batchResult{
			evidence: evserve.Evidence{
				Text:     results[i].Evidence,
				Trace:    results[i].Trace,
				CacheHit: results[i].CacheHit,
			},
			err:  results[i].Err,
			size: len(items),
		}
	}
}

// BatcherStats is the /metrics view of one corpus batcher.
type BatcherStats struct {
	// Singles counts requests served on the unbatched fast path.
	Singles int64 `json:"singles"`
	// Batches counts dispatched GenerateAll batches.
	Batches int64 `json:"batches"`
	// BatchedRequests counts requests served through batches.
	BatchedRequests int64 `json:"batched_requests"`
	// AvgFill is BatchedRequests / Batches — the batching win: how many
	// requests each pool dispatch amortised over.
	AvgFill float64 `json:"avg_fill"`
	// SizeFlushes counts batches dispatched because they reached maxSize.
	SizeFlushes int64 `json:"size_flushes"`
	// WindowFlushes counts batches dispatched by the window timer.
	WindowFlushes int64 `json:"window_flushes"`
	// MaxSize echoes the configured size-flush threshold (0 when
	// batching is disabled).
	MaxSize int `json:"max_size"`
	// MeanOccupancy is AvgFill / MaxSize: how full the average dispatched
	// batch was relative to capacity. Near 1.0 means size flushes
	// dominate (the batcher is saturated); near 0 means the window timer
	// is sweeping up near-empty batches.
	MeanOccupancy float64 `json:"mean_occupancy"`
}

func (b *batcher) stats() BatcherStats {
	st := BatcherStats{
		Singles:         b.singles.Load(),
		Batches:         b.batches.Load(),
		BatchedRequests: b.batched.Load(),
		SizeFlushes:     b.sizeFlushes.Load(),
		WindowFlushes:   b.windowFlushes.Load(),
	}
	if b.window > 0 && b.maxSize > 1 {
		st.MaxSize = b.maxSize
	}
	if st.Batches > 0 {
		st.AvgFill = float64(st.BatchedRequests) / float64(st.Batches)
	}
	if st.MaxSize > 0 {
		st.MeanOccupancy = st.AvgFill / float64(st.MaxSize)
	}
	return st
}
