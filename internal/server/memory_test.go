package server

import (
	"encoding/json"
	"testing"
	"time"

	"net/http/httptest"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

// TestMemoryServesRepeatWithZeroLLMCalls is the tentpole's end-to-end
// contract: a question answered correctly once is answered again from
// the query memory — source "memory", confidence attached, and zero
// simulated LLM calls for the request.
func TestMemoryServesRepeatWithZeroLLMCalls(t *testing.T) {
	sim := llm.NewSimulator()
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.Client = sim
		cfg.Memory = true
	})

	examples := testCorpus(t).Dev[:12]
	var memoryHits int
	for _, e := range examples {
		resp, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			continue
		}
		var first api.QueryResponse
		if err := json.Unmarshal(data, &first); err != nil {
			t.Fatal(err)
		}
		if first.Source == api.SourceMemory {
			// Cross-example generalization: a pattern learned from an
			// earlier example matched this question and passed verification
			// against THIS example's gold. Legitimate, but useless for the
			// first-vs-repeat comparison below.
			continue
		}

		before := sim.LedgerSnapshot().TotalCalls()
		resp, data = postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("repeat of %s = %d: %s", e.ID, resp.StatusCode, data)
		}
		var second api.QueryResponse
		if err := json.Unmarshal(data, &second); err != nil {
			t.Fatal(err)
		}
		if second.Source != api.SourceMemory {
			// The simulator does not answer every example correctly; only
			// judged-correct generations are admitted. Incorrect ones must
			// keep regenerating.
			continue
		}
		memoryHits++
		if delta := sim.LedgerSnapshot().TotalCalls() - before; delta != 0 {
			t.Errorf("memory hit for %s made %d LLM calls, want 0", e.ID, delta)
		}
		if second.MemoryConfidence <= 0 {
			t.Errorf("memory hit for %s carries no confidence", e.ID)
		}
		if second.SQL != first.SQL {
			t.Errorf("memory hit for %s served %q, generated %q", e.ID, second.SQL, first.SQL)
		}
		if second.RowCount != first.RowCount {
			t.Errorf("memory hit for %s row count %d != %d", e.ID, second.RowCount, first.RowCount)
		}
		if second.Timing.MemoryMicros <= 0 {
			t.Errorf("memory hit for %s reports no memory time", e.ID)
		}
		if second.Timing.GenerateMicros != 0 || second.Timing.EvidenceMicros != 0 {
			t.Errorf("memory hit for %s reports pipeline time: %+v", e.ID, second.Timing)
		}
	}
	if memoryHits == 0 {
		t.Fatal("no example was served from memory on repeat")
	}
}

// TestMemoryDisabledByDefault pins the compatibility default: without
// Config.Memory, repeats keep their pre-memory behavior (evidence cache
// hit, source "cache") and the metrics snapshot carries no memory block.
func TestMemoryDisabledByDefault(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]
	postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	_, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	var qr api.QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Source == api.SourceMemory {
		t.Fatal("memory must be opt-in")
	}
	if qr.Source != api.SourceCache {
		t.Fatalf("repeat source = %q, want %q", qr.Source, api.SourceCache)
	}
	if srv.Metrics().Memory != nil {
		t.Fatal("metrics should omit memory when disabled")
	}
}

// TestMemoryWarmRestart: with MemoryDir set, learned patterns survive a
// restart — the second life serves from memory without relearning.
func TestMemoryWarmRestart(t *testing.T) {
	dir := t.TempDir()
	newMemServer := func(sim llm.Client) (*Server, string, func()) {
		srv, err := New(Config{
			Corpora:     []*dataset.Corpus{testCorpus(t)},
			Client:      sim,
			Variant:     seed.VariantGPT,
			BatchWindow: 2 * time.Millisecond,
			BatchMax:    16,
			StoreSeed:   7,
			Memory:      true,
			MemoryDir:   dir,
			Logger:      quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts.URL, func() { ts.Close(); srv.Close() }
	}

	_, url1, stop1 := newMemServer(llm.NewSimulator())
	// Teach the first life a few patterns; remember which ones stuck.
	var learned []dataset.Example
	for _, e := range testCorpus(t).Dev[:8] {
		postJSON(t, url1+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		_, data := postJSON(t, url1+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		var qr api.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			continue
		}
		if qr.Source == api.SourceMemory {
			learned = append(learned, e)
		}
	}
	if len(learned) == 0 {
		t.Fatal("first life learned nothing")
	}
	stop1()

	sim2 := llm.NewSimulator()
	srv2, url2, _ := newMemServer(sim2)
	for _, e := range learned {
		before := sim2.LedgerSnapshot().TotalCalls()
		resp, data := postJSON(t, url2+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("restarted server /v1/query = %d: %s", resp.StatusCode, data)
		}
		var qr api.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Source != api.SourceMemory {
			t.Errorf("restarted server regenerated %s (source %q), want memory", e.ID, qr.Source)
		}
		if delta := sim2.LedgerSnapshot().TotalCalls() - before; delta != 0 {
			t.Errorf("restarted memory hit for %s made %d LLM calls", e.ID, delta)
		}
	}
	for _, st := range srv2.Metrics().Memory {
		if st.Restored == 0 {
			t.Error("metrics report no restored patterns after warm restart")
		}
	}
}

// TestMemoryReplicationServesOnFollower: patterns learned on one replica
// ship to peers like evidence — the follower serves a question it never
// generated, from memory, with zero LLM calls.
func TestMemoryReplicationServesOnFollower(t *testing.T) {
	leaderDir := t.TempDir()
	leaderSrv, err := New(Config{
		Corpora:     []*dataset.Corpus{testCorpus(t)},
		Client:      llm.NewSimulator(),
		Variant:     seed.VariantGPT,
		BatchWindow: 2 * time.Millisecond,
		BatchMax:    16,
		StoreDir:    leaderDir,
		StoreSeed:   7,
		Memory:      true,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	leaderTS := httptest.NewServer(leaderSrv.Handler())
	t.Cleanup(func() { leaderTS.Close(); leaderSrv.Close() })

	// Teach the leader.
	var learned []dataset.Example
	for _, e := range testCorpus(t).Dev[:8] {
		postJSON(t, leaderTS.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		_, data := postJSON(t, leaderTS.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		var qr api.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			continue
		}
		if qr.Source == api.SourceMemory {
			learned = append(learned, e)
		}
	}
	if len(learned) == 0 {
		t.Fatal("leader learned nothing")
	}

	followerSim := llm.NewSimulator()
	followerSrv, err := New(Config{
		Corpora:           []*dataset.Corpus{testCorpus(t)},
		Client:            followerSim,
		Variant:           seed.VariantGPT,
		BatchWindow:       2 * time.Millisecond,
		BatchMax:          16,
		StoreDir:          t.TempDir(),
		StoreSeed:         7,
		Peers:             []string{leaderTS.URL},
		ReplicateInterval: 20 * time.Millisecond,
		Memory:            true,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	followerTS := httptest.NewServer(followerSrv.Handler())
	t.Cleanup(func() { followerTS.Close(); followerSrv.Close() })

	deadline := time.Now().Add(5 * time.Second)
	for {
		var injected int64
		for _, st := range followerSrv.Metrics().Memory {
			injected += st.Injected
		}
		if injected >= int64(len(learned)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower injected %d patterns in 5s, want >= %d\nmemory replication: %+v",
				injected, len(learned), followerSrv.Metrics().MemoryReplication)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, e := range learned {
		before := followerSim.LedgerSnapshot().TotalCalls()
		resp, data := postJSON(t, followerTS.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("follower /v1/query = %d: %s", resp.StatusCode, data)
		}
		var qr api.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Source != api.SourceMemory {
			t.Errorf("follower regenerated %s (source %q), want memory", e.ID, qr.Source)
		}
		if delta := followerSim.LedgerSnapshot().TotalCalls() - before; delta != 0 {
			t.Errorf("follower memory hit for %s made %d LLM calls", e.ID, delta)
		}
	}
}
