package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/evserve"
)

// TestWriteUpstreamErrorStatusMapping is the server half of the
// canceled-context regression: an upstream failure whose real cause is
// the client abandoning the request must answer 499/client_closed, not a
// 5xx — and every branch must emit the unified error envelope.
func TestWriteUpstreamErrorStatusMapping(t *testing.T) {
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()
	expiredCtx, cancel2 := context.WithTimeout(context.Background(), 0)
	defer cancel2()
	<-expiredCtx.Done()

	cases := []struct {
		name       string
		ctx        context.Context
		err        error
		wantStatus int
		wantCode   string
	}{
		{"shutdown wins over everything", canceledCtx, evserve.ErrClosed,
			http.StatusServiceUnavailable, api.CodeUnavailable},
		{"client canceled is 499 not 5xx", canceledCtx, context.Canceled,
			api.StatusClientClosedRequest, api.CodeClientClosed},
		{"deadline exceeded is 504", expiredCtx, context.DeadlineExceeded,
			http.StatusGatewayTimeout, api.CodeUpstreamTimeout},
		{"plain upstream failure is 502", context.Background(), errors.New("boom"),
			http.StatusBadGateway, api.CodeUpstreamError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest(http.MethodPost, "/v1/query", nil).WithContext(tc.ctx)
			w := httptest.NewRecorder()
			w.Header().Set("X-Request-Id", "req-123")
			writeUpstreamError(w, r, "evidence generation", tc.err)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", w.Code, tc.wantStatus)
			}
			var env api.Error
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("not the envelope: %v: %s", err, w.Body)
			}
			if env.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", env.Code, tc.wantCode)
			}
			if env.Error == "" || env.RequestID != "req-123" {
				t.Errorf("envelope = %+v", env)
			}
		})
	}
}
