// Package server is SEED's online serving subsystem: the practical-usability
// half of the paper's claim, turned into a production-shaped HTTP service.
// Evidence is generated (and cached) by an evserve.Service per corpus,
// concurrent evidence requests are coalesced by a micro-batcher, text-to-SQL
// generation and execution ride the per-database session registry and the
// SQL engine's prepared-plan cache, and the whole thing sits behind
// admission control (token-bucket rate limit + bounded in-flight semaphore)
// with per-route latency histograms exported at /metrics.
//
// The JSON API:
//
//	POST /v1/query     {"db","question"}  -> evidence, SQL, executed rows
//	POST /v1/evidence  {"db","question"}  -> evidence only
//	GET  /v1/dbs                          -> servable databases
//	GET  /v1/examples?db=&limit=          -> servable questions (for demos/load)
//	GET  /healthz                         -> liveness
//	GET  /metrics                         -> counters + latency histograms
//
// Serving is defined over corpus questions: natural-language parsing proper
// is outside the reproduction's simulation boundary, so /v1/query resolves
// the incoming question against the loaded corpus and answers exactly as
// the offline pipeline would for that example — a golden-equivalence the
// test suite asserts against experiments.Env.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/evserve"
	"repro/internal/evstore"
	"repro/internal/llm"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/qmemory"
	"repro/internal/seed"
	"repro/internal/sqlengine"
	"repro/internal/texttosql"
)

// Config assembles a Server. Corpora and Client are required; everything
// else has serving-shaped defaults.
type Config struct {
	// Corpora are the benchmarks to serve. Database names must be unique
	// across corpora.
	Corpora []*dataset.Corpus
	// Client is the LLM client backing evidence generation and the
	// text-to-SQL generator.
	Client llm.Client
	// Variant selects the SEED evidence architecture (default seed_gpt).
	Variant seed.Variant
	// Generator names the baseline generator (see GeneratorFor; default
	// codes-15b, the strongest concat-style system — the configuration
	// the paper pairs SEED with for its headline numbers).
	Generator string
	// EvidenceWorkers bounds each corpus evidence service's worker pool;
	// 0 defaults to GOMAXPROCS.
	EvidenceWorkers int
	// EvidenceCache is each evidence service's cache capacity in entries;
	// 0 defaults to 4096.
	EvidenceCache int
	// BatchWindow is how long the micro-batcher holds the first request
	// of a batch waiting for company; <= 0 disables batching.
	BatchWindow time.Duration
	// BatchMax flushes a batch early once it reaches this size; <= 1
	// disables batching.
	BatchMax int
	// Rate is the admission token-bucket refill rate in requests/second;
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the token bucket's capacity (min 1 when Rate > 0).
	Burst int
	// MaxInFlight bounds concurrently executing requests; <= 0 disables
	// the in-flight limit.
	MaxInFlight int
	// RequestTimeout is the per-request deadline; <= 0 disables it.
	RequestTimeout time.Duration
	// StoreDir, when non-empty, makes evidence durable: each corpus gets
	// an evstore at StoreDir/<corpus>, the evidence caches are replayed
	// from it on startup (warm restart), every generation is persisted
	// write-through, and shutdown flushes the stores. Empty disables
	// persistence — the pre-durability in-memory behaviour.
	StoreDir string
	// StoreCompactEvery is the per-store WAL compaction threshold in
	// records; 0 uses the evstore default (1024), negative disables
	// automatic compaction.
	StoreCompactEvery int
	// StoreSeed is the corpus-generation seed behind the served data.
	// Each store is stamped with evstore.Manifest(corpus, StoreSeed), and
	// a store stamped differently refuses to open — evidence from another
	// generation would be served as stale cache hits.
	StoreSeed uint64
	// Peers are the base URLs of the other seedd replicas in the fleet.
	// When non-empty (requires StoreDir), the server tails every peer's
	// per-corpus evidence store over GET /v1/replicate and injects the
	// replicated entries into its own stores and serving caches — so when
	// the fleet router fails a dead peer's shard over to this replica, it
	// answers from already-shipped evidence with zero LLM calls.
	Peers []string
	// ReplicateInterval is the peer WAL poll period; <= 0 uses the
	// evstore tailer default (200ms).
	ReplicateInterval time.Duration
	// Memory enables the confidence-gated query memory: past successful
	// (question, evidence, SQL, result-fingerprint) tuples are
	// semantically matched against incoming questions, and a
	// high-confidence hit is served with zero pipeline/LLM calls (after
	// execution-judge verification, so memory can never lower EX).
	Memory bool
	// MemoryDir, when non-empty (requires Memory), makes the query
	// memory durable: each corpus gets a WAL-backed pattern store at
	// MemoryDir/<corpus>, replayed on startup and flushed on shutdown.
	MemoryDir string
	// MemoryOptions tunes the memory's thresholds and retrieval knobs;
	// zero fields take qmemory defaults. The Store field is managed by
	// the server (see MemoryDir) and ignored here.
	MemoryOptions qmemory.Options
	// TraceCapacity sizes the in-memory trace store: up to TraceCapacity
	// recent traces plus as many always-kept slow/error traces are
	// retained behind GET /v1/traces. 0 defaults to 256; negative
	// disables tracing entirely (requests then pay no span overhead).
	TraceCapacity int
	// SlowQueryThreshold gates the structured slow-query log and the
	// trace store's always-keep classification: requests at or over it
	// are logged with their trace ID, stage breakdown and SQL, and their
	// traces survive healthy-traffic churn. <= 0 disables both.
	SlowQueryThreshold time.Duration
	// Logger receives structured request logs; nil uses slog.Default().
	Logger *slog.Logger
}

// Server is the serving subsystem. Construct with New; a Server is safe
// for concurrent use and must be Closed to stop its evidence worker pools.
type Server struct {
	cfg Config
	log *slog.Logger
	reg *registry

	// services, batchers and stores are keyed by corpus name; stores is
	// empty when Config.StoreDir is unset.
	services map[string]*evserve.Service
	batchers map[string]*batcher
	stores   map[string]*evstore.Store
	corpora  map[string]*dataset.Corpus

	// memories and judges are keyed by corpus name, empty unless
	// Config.Memory: the confidence-gated query memory and the execution
	// judge that verifies every memory hit and admission against gold.
	memories map[string]*qmemory.Memory
	judges   map[string]*eval.Judge

	adm    *admission
	routes map[string]*routeMetrics
	start  time.Time

	// Observability (see initObs): the shared metrics registry behind
	// Prometheus /metrics, the bounded trace store behind /v1/traces, the
	// slow-query log, and the panic counter the recovery middleware
	// increments.
	obsReg      *obs.Registry
	traces      *obs.TraceStore
	slowlog     *obs.SlowLog
	panicsTotal *obs.Counter

	// draining flips /healthz?ready to 503 while the server finishes
	// in-flight work — the router stops sending new requests here, but
	// liveness (plain /healthz) and replication stay up so peers can
	// finish tailing this replica's WAL.
	draining atomic.Bool

	// tailers replicate peer evidence stores and memTailers peer query
	// memories (one stream per corpus per peer); tailCancel/tailWG stop
	// them on Close before the stores close.
	tailers    []replStream
	memTailers []memStream
	tailCancel context.CancelFunc
	tailWG     sync.WaitGroup

	closeOnce sync.Once
}

// replStream is one peer replication stream for metrics labeling.
type replStream struct {
	corpus string
	peer   string
	tailer *evstore.Tailer
}

// memStream is one peer query-memory sync stream for metrics labeling.
type memStream struct {
	corpus string
	peer   string
	tailer *qmemory.Tailer
}

// New builds the serving subsystem: one seed pipeline + evidence service +
// micro-batcher per corpus, one generator per corpus shared by its
// sessions, and the admission controller. Spider-style corpora that ship
// no description files are described up front (the paper's §IV-E3
// pipeline), exactly as the offline experiment drivers do.
func New(cfg Config) (*Server, error) {
	if len(cfg.Corpora) == 0 {
		return nil, errors.New("server: Config.Corpora is required")
	}
	if cfg.Client == nil {
		return nil, errors.New("server: Config.Client is required")
	}
	if cfg.Variant == "" {
		cfg.Variant = seed.VariantGPT
	}
	if cfg.Generator == "" {
		cfg.Generator = "codes-15b"
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}

	seedCfg, err := seedConfigFor(cfg.Variant)
	if err != nil {
		return nil, err
	}

	s := &Server{
		cfg:      cfg,
		log:      log,
		services: make(map[string]*evserve.Service),
		batchers: make(map[string]*batcher),
		stores:   make(map[string]*evstore.Store),
		corpora:  make(map[string]*dataset.Corpus),
		memories: make(map[string]*qmemory.Memory),
		judges:   make(map[string]*eval.Judge),
		adm:      newAdmission(cfg.Rate, cfg.Burst, cfg.MaxInFlight),
		routes:   make(map[string]*routeMetrics),
		start:    time.Now(),
	}
	if cfg.MemoryDir != "" && !cfg.Memory {
		return nil, errors.New("server: Config.MemoryDir requires Config.Memory")
	}
	gens := make(map[string]texttosql.Generator, len(cfg.Corpora))
	for _, corpus := range cfg.Corpora {
		if _, dup := s.corpora[corpus.Name]; dup {
			s.Close() // stop pools and stores already started for earlier corpora
			return nil, fmt.Errorf("server: corpus %q listed twice", corpus.Name)
		}
		s.corpora[corpus.Name] = corpus
		p := seed.New(seedCfg, cfg.Client, corpus)
		variant := evserve.CacheNamespace(string(cfg.Variant), corpus.Name)
		if corpus.Name == "spider" {
			// Spider ships no description files; generate them first, as
			// Env.SpiderSeedEvidence does.
			for _, db := range corpus.DBs {
				if err := p.DescribeDatabase(db); err != nil {
					s.Close() // stop worker pools already started for earlier corpora
					return nil, fmt.Errorf("server: describing spider DB %s: %w", db.Name, err)
				}
			}
		}
		var store *evstore.Store
		if cfg.StoreDir != "" {
			store, err = evstore.Open(filepath.Join(cfg.StoreDir, corpus.Name), evstore.Options{
				CompactEvery: cfg.StoreCompactEvery,
				Manifest:     evstore.Manifest(corpus.Name, cfg.StoreSeed),
			})
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("server: opening evidence store for %s: %w", corpus.Name, err)
			}
			s.stores[corpus.Name] = store
		}
		svcOpts := evserve.Options{
			Variant:        variant,
			GenerateTraced: p.GenerateEvidenceTraced,
			Workers:        cfg.EvidenceWorkers,
			CacheCapacity:  cfg.EvidenceCache,
		}
		if store != nil {
			svcOpts.Store = store
		}
		svc := evserve.New(svcOpts)
		s.services[corpus.Name] = svc
		s.batchers[corpus.Name] = newBatcher(svc, cfg.BatchWindow, cfg.BatchMax)
		gen, err := GeneratorFor(cfg.Generator, cfg.Client)
		if err != nil {
			s.Close() // svc is already registered; Close stops every pool so far
			return nil, err
		}
		gens[corpus.Name] = gen
		if cfg.Memory {
			mopts := cfg.MemoryOptions
			mopts.Store = nil
			if cfg.MemoryDir != "" {
				mstore, err := qmemory.OpenStore(filepath.Join(cfg.MemoryDir, corpus.Name), qmemory.StoreOptions{
					Manifest: evstore.Manifest(corpus.Name, cfg.StoreSeed),
				})
				if err != nil {
					s.Close()
					return nil, fmt.Errorf("server: opening query-memory store for %s: %w", corpus.Name, err)
				}
				mopts.Store = mstore
			}
			mem, err := qmemory.New(mopts)
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("server: building query memory for %s: %w", corpus.Name, err)
			}
			s.memories[corpus.Name] = mem
			s.judges[corpus.Name] = eval.NewJudge()
		}
	}
	reg, err := newRegistry(cfg.Corpora, gens)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.reg = reg

	if len(cfg.Peers) > 0 {
		if cfg.StoreDir == "" {
			s.Close()
			return nil, errors.New("server: Config.Peers requires Config.StoreDir — replication ships durable stores, not caches")
		}
		var tailCtx context.Context
		tailCtx, s.tailCancel = context.WithCancel(context.Background())
		// Query memories ship to peers like evidence: every replica tails
		// every peer's pattern set, so a shard failed over to this replica
		// is served from memory on the first paraphrase, not relearned.
		for name, mem := range s.memories {
			for _, peer := range cfg.Peers {
				src := peer + pathMemSync + "?corpus=" + url.QueryEscape(name)
				mt := qmemory.NewTailer(src, mem, qmemory.TailerOptions{Interval: cfg.ReplicateInterval})
				s.memTailers = append(s.memTailers, memStream{corpus: name, peer: peer, tailer: mt})
				s.tailWG.Add(1)
				go func() {
					defer s.tailWG.Done()
					mt.Run(tailCtx)
				}()
			}
		}
		for name, store := range s.stores {
			svc := s.services[name]
			for _, peer := range cfg.Peers {
				src := peer + pathReplicate + "?corpus=" + url.QueryEscape(name)
				tl := evstore.NewTailer(src, store, evstore.TailerOptions{
					Interval: cfg.ReplicateInterval,
					// Replicated evidence goes straight into the serving
					// cache: a shard failed over to this replica is answered
					// from memory, not just from disk on the next restart.
					Apply: func(k evserve.Key, e evserve.Entry) { svc.Inject(k, e) },
				})
				s.tailers = append(s.tailers, replStream{corpus: name, peer: peer, tailer: tl})
				s.tailWG.Add(1)
				go func() {
					defer s.tailWG.Done()
					tl.Run(tailCtx)
				}()
			}
		}
	}

	s.initObs()
	for _, route := range []string{
		pathQuery, pathEvidence, pathDBs, pathExamples, pathReplicate, pathMemSync, pathHealthz, pathMetrics, pathTraces,
	} {
		s.routes[route] = newRouteMetrics(s.obsReg, route)
	}
	return s, nil
}

// Route names; also the keys of the /metrics routes map.
const (
	pathQuery     = "/v1/query"
	pathEvidence  = "/v1/evidence"
	pathDBs       = "/v1/dbs"
	pathExamples  = "/v1/examples"
	pathReplicate = "/v1/replicate"
	pathMemSync   = "/v1/memsync"
	pathTraces    = "/v1/traces"
	pathHealthz   = "/healthz"
	pathMetrics   = "/metrics"
)

// Handler returns the server's HTTP handler with all middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST "+pathQuery, s.wrap(pathQuery, true, s.handleQuery))
	mux.Handle("POST "+pathEvidence, s.wrap(pathEvidence, true, s.handleEvidence))
	mux.Handle("GET "+pathDBs, s.wrap(pathDBs, false, s.handleDBs))
	mux.Handle("GET "+pathExamples, s.wrap(pathExamples, false, s.handleExamples))
	// Replication skips admission: a draining or overloaded replica must
	// still let its followers catch up on the WAL — and on the query
	// memory, which ships over the same peer mesh.
	mux.Handle("GET "+pathReplicate, s.wrap(pathReplicate, false, s.handleReplicate))
	mux.Handle("GET "+pathMemSync, s.wrap(pathMemSync, false, s.handleMemSync))
	// Trace retrieval skips admission for the same reason /metrics does:
	// the traces explaining an overload must be readable during one.
	mux.Handle("GET "+pathTraces, s.wrap(pathTraces, false, s.handleTraces))
	mux.Handle("GET "+pathTraces+"/{id}", s.wrap(pathTraces, false, s.handleTraceByID))
	mux.Handle("GET "+pathHealthz, s.wrap(pathHealthz, false, s.handleHealthz))
	mux.Handle("GET "+pathMetrics, s.wrap(pathMetrics, false, s.handleMetrics))
	return mux
}

// SetDraining flips the readiness verdict: while draining, GET
// /healthz?ready answers 503 (the fleet router routes around this
// replica) but liveness, serving of in-flight work, and replication all
// continue. seedd sets it on SIGTERM, waits a grace period for routers to
// notice, then shuts the listener down.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the current drain state.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the peer replication tailers, flushes pending
// micro-batches, stops the evidence worker pools (each service flushes
// its store after its pool drains), and closes the evidence stores. It is
// idempotent, and safe to race with in-flight requests: they fail with
// evserve.ErrClosed rather than hang.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Tailers first: they append to the stores, which close below.
		if s.tailCancel != nil {
			s.tailCancel()
		}
		s.tailWG.Wait()
		for _, b := range s.batchers {
			b.Flush()
		}
		for _, svc := range s.services {
			svc.Close()
		}
		for name, st := range s.stores {
			if err := st.Close(); err != nil {
				s.log.Warn("closing evidence store", "corpus", name, "err", err)
			}
		}
		for name, mem := range s.memories {
			if err := mem.Close(); err != nil {
				s.log.Warn("closing query memory", "corpus", name, "err", err)
			}
		}
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.reg.Session(req.DB)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown database %q (GET /v1/dbs lists them)", req.DB))
		return
	}
	e, ok := sess.Lookup(req.Question, req.ID)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf(
			"question not in the loaded corpus for %q (GET /v1/examples?db=%s lists servable questions)",
			req.DB, req.DB))
		return
	}

	if root := obs.CurrentSpan(r.Context()); root != nil {
		root.SetAttr("db", e.DB)
		root.SetAttr("example_id", e.ID)
	}

	// Query memory sits ahead of the evidence batcher: a high-confidence
	// semantic match serves adapted cached SQL with zero pipeline/LLM
	// work. A miss (or a hit that fails verification) falls through to
	// the full path, carrying the lookup time into the response timing.
	var memDur time.Duration
	if mem := s.memories[sess.Corpus]; mem != nil {
		served, d := s.tryMemory(w, r, sess, e, req)
		if served {
			return
		}
		memDur = d
	}

	evStart := time.Now()
	evCtx, evSpan := obs.StartSpan(r.Context(), "evidence")
	ev, err := s.batchers[sess.Corpus].Generate(evCtx, e.DB, e.Question)
	evDur := time.Since(evStart)
	if err != nil {
		evSpan.Fail(err)
		writeUpstreamError(w, r, "evidence generation", err)
		return
	}
	evSpan.SetAttr("cache_hit", ev.CacheHit)
	// The evidence's DAG provenance becomes child spans regardless of how
	// it was served: the batched path runs under the batch's own context
	// (no per-request spans can flow into it), and a cache hit did not run
	// the DAG at all this request — either way ev.Trace carries the stage
	// breakdown, anchored here at this request's evidence phase start.
	if ev.Trace != nil {
		for _, st := range ev.Trace.Stages {
			var attrs map[string]any
			if st.CacheHit || st.Tokens > 0 {
				attrs = make(map[string]any, 2)
				if st.CacheHit {
					attrs["memo_hit"] = true
				}
				if st.Tokens > 0 {
					attrs["tokens"] = st.Tokens
				}
			}
			evSpan.Child("stage:"+st.Stage,
				evStart.Add(time.Duration(st.StartMicros)*time.Microsecond),
				time.Duration(st.WallMicros)*time.Microsecond, attrs)
		}
	}
	evSpan.End()

	genStart := time.Now()
	_, genSpan := obs.StartSpan(r.Context(), "generate")
	sql, err := sess.Gen.Generate(texttosql.Task{Example: e, DB: sess.DB, Evidence: ev.Text})
	genDur := time.Since(genStart)
	if err != nil {
		genSpan.Fail(err)
		writeError(w, http.StatusInternalServerError, api.CodeInternal, fmt.Sprintf("generation failed: %v", err))
		return
	}
	genSpan.End()
	if root := obs.CurrentSpan(r.Context()); root != nil {
		root.SetAttr("sql", sql)
	}

	prepStart := time.Now()
	_, prepSpan := obs.StartSpan(r.Context(), "sqlengine.prepare")
	stmt, planHit, err := sess.DB.Engine.PrepareCached(sql)
	prepDur := time.Since(prepStart)
	if err != nil {
		prepSpan.Fail(err)
		writeError(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, fmt.Sprintf("generated SQL does not parse: %v", err))
		return
	}
	prepSpan.SetAttr("plan_cache_hit", planHit)
	prepSpan.End()

	execStart := time.Now()
	_, execSpan := obs.StartSpan(r.Context(), "sqlengine.execute")
	res, err := stmt.Exec()
	execDur := time.Since(execStart)
	if err != nil {
		execSpan.Fail(err)
		writeError(w, http.StatusUnprocessableEntity, api.CodeUnprocessable, fmt.Sprintf("generated SQL does not execute: %v", err))
		return
	}
	execSpan.SetAttr("cost", res.Cost)
	execSpan.SetAttr("batches", res.Batches)
	execSpan.SetAttr("parallel_workers", res.Workers)
	if res.Rows != nil {
		execSpan.SetAttr("rows", len(res.Rows.Data))
	}
	execSpan.End()

	source := api.SourceGenerated
	if ev.CacheHit {
		source = api.SourceCache
	}

	// A judged-correct generation becomes a memory pattern: the next
	// paraphrase of this intent can skip the pipeline entirely.
	if mem := s.memories[sess.Corpus]; mem != nil {
		if out := s.judges[sess.Corpus].ScoreRows(sess.DB, e, res); out.Correct {
			mem.Admit(e.DB, e.Question, ev.Text, sql, qmemory.Fingerprint(res.Rows))
		}
	}

	resp := api.QueryResponse{
		DB:               e.DB,
		ExampleID:        e.ID,
		Question:         e.Question,
		Source:           source,
		Evidence:         ev.Text,
		EvidenceTrace:    ev.Trace,
		EvidenceCacheHit: ev.CacheHit,
		SQL:              sql,
		Cost:             res.Cost,
		Timing: api.QueryTiming{
			MemoryMicros:   memDur.Microseconds(),
			EvidenceMicros: evDur.Microseconds(),
			GenerateMicros: genDur.Microseconds(),
			PrepareMicros:  prepDur.Microseconds(),
			ExecuteMicros:  execDur.Microseconds(),
		},
	}
	if res.Rows != nil {
		resp.Columns = res.Rows.Columns
		resp.RowCount = len(res.Rows.Data)
		n := resp.RowCount
		if req.MaxRows > 0 && req.MaxRows < n {
			n = req.MaxRows
			resp.Truncated = true
		}
		resp.Rows = renderRows(res.Rows, n)
	}
	writeJSON(w, http.StatusOK, resp)
}

// tryMemory looks the question up in the corpus's query memory and, on a
// confident hit, serves the stored SQL with zero pipeline/LLM calls —
// after verifying it: the SQL must still execute, its result fingerprint
// must match the stored one, and the execution judge must score it
// correct against the example's gold. A hit that fails verification
// decays the pattern's confidence; the demotion reshuffles the ranking,
// so the lookup is retried a bounded number of times before giving up —
// a look-alike pattern outscoring the right one costs one cheap engine
// execution, not a full pipeline run. The returned duration covers
// lookup plus verification, for the fall-through response's timing.
func (s *Server) tryMemory(w http.ResponseWriter, r *http.Request, sess *Session, e dataset.Example, req api.QueryRequest) (served bool, memDur time.Duration) {
	mem := s.memories[sess.Corpus]
	start := time.Now()
	_, span := obs.StartSpan(r.Context(), "memory.lookup")
	defer func() {
		memDur = time.Since(start)
		span.End()
	}()

	const maxVerifyAttempts = 3
	var (
		hit   qmemory.Hit
		res   *sqlengine.Result
		tried []string
	)
	verified := false
	for attempt := 0; attempt < maxVerifyAttempts && !verified; attempt++ {
		var ok bool
		hit, ok = mem.Lookup(e.DB, e.Question, tried...)
		if !ok {
			break
		}
		tried = append(tried, hit.PatternID)

		stmt, _, err := sess.DB.Engine.PrepareCached(hit.SQL)
		if err != nil {
			// A stored pattern that no longer parses is poison: demote it
			// and rerank.
			mem.Failure(hit.PatternID)
			continue
		}
		res, err = stmt.Exec()
		if err != nil {
			mem.Failure(hit.PatternID)
			continue
		}
		// Verification is the accuracy floor: the fingerprint pins the
		// result the pattern was admitted with, and the judge pins
		// execution accuracy against gold (gold results are cached per
		// example, so steady-state verification costs one extra engine
		// execution, not two).
		if qmemory.Fingerprint(res.Rows) != hit.Fingerprint ||
			!s.judges[sess.Corpus].ScoreRows(sess.DB, e, res).Correct {
			// A pattern failing a question it previously answered
			// (similarity 1 is the exact-phrasing fast path) is poison:
			// demote it. A semantic look-alike failing a NEW question is a
			// retrieval error, not pattern damage — skip it for this
			// request and leave its confidence (and its own questions)
			// alone.
			if hit.Similarity >= 1 {
				mem.Failure(hit.PatternID)
			}
			continue
		}
		verified = true
	}
	span.SetAttr("hit", len(tried) > 0)
	span.SetAttr("verified", verified)
	if !verified {
		return false, 0
	}
	span.SetAttr("pattern", hit.PatternID)
	span.SetAttr("confidence", hit.Confidence)
	span.SetAttr("similarity", hit.Similarity)
	mem.Success(hit.PatternID, e.Question)

	if root := obs.CurrentSpan(r.Context()); root != nil {
		root.SetAttr("sql", hit.SQL)
	}
	resp := api.QueryResponse{
		DB:               e.DB,
		ExampleID:        e.ID,
		Question:         e.Question,
		Source:           api.SourceMemory,
		MemoryConfidence: hit.Confidence,
		Evidence:         hit.Evidence,
		SQL:              hit.SQL,
		Cost:             res.Cost,
	}
	// On the memory path lookup, verification and execution are one fused
	// phase; the whole end-to-end cost lands in MemoryMicros.
	resp.Timing.MemoryMicros = time.Since(start).Microseconds()
	if res.Rows != nil {
		resp.Columns = res.Rows.Columns
		resp.RowCount = len(res.Rows.Data)
		n := resp.RowCount
		if req.MaxRows > 0 && req.MaxRows < n {
			n = req.MaxRows
			resp.Truncated = true
		}
		resp.Rows = renderRows(res.Rows, n)
	}
	writeJSON(w, http.StatusOK, resp)
	return true, time.Since(start)
}

// renderRows converts engine rows to JSON-shaped values: NULL becomes
// JSON null, everything else its text rendering.
func renderRows(rows *sqlengine.Rows, n int) [][]any {
	out := make([][]any, n)
	for i := 0; i < n; i++ {
		row := make([]any, len(rows.Data[i]))
		for j, v := range rows.Data[i] {
			if v.IsNull() {
				row[j] = nil
			} else {
				row[j] = v.AsText()
			}
		}
		out[i] = row
	}
	return out
}

func (s *Server) handleEvidence(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	sess, ok := s.reg.Session(req.DB)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown database %q (GET /v1/dbs lists them)", req.DB))
		return
	}
	question := req.Question
	if req.ID != "" {
		if e, ok := sess.Lookup("", req.ID); ok {
			question = e.Question
		}
	}
	if question == "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "question (or a known id) is required")
		return
	}
	start := time.Now()
	// Evidence generation works for arbitrary question text — the SEED
	// pipeline needs only the question and the database — so unlike
	// /v1/query this endpoint is not restricted to corpus questions.
	ev, err := s.batchers[sess.Corpus].Generate(r.Context(), req.DB, question)
	if err != nil {
		writeUpstreamError(w, r, "evidence generation", err)
		return
	}
	writeJSON(w, http.StatusOK, api.EvidenceResponse{
		DB:       req.DB,
		Question: question,
		Variant:  s.services[sess.Corpus].Stats().Variant,
		Evidence: ev.Text,
		Trace:    ev.Trace,
		CacheHit: ev.CacheHit,
		Micros:   time.Since(start).Microseconds(),
	})
}

func (s *Server) handleDBs(w http.ResponseWriter, r *http.Request) {
	out := api.DBsResponse{DBs: make([]api.DBInfo, 0, len(s.reg.DBNames()))}
	for _, name := range s.reg.DBNames() {
		// Info serves the listing from static metadata so /v1/dbs never
		// forces every session (and its retriever warm-up) to build.
		info, _ := s.reg.Info(name)
		out.DBs = append(out.DBs, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExamples(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	if db == "" {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "db query parameter is required")
		return
	}
	limit := 10
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	// Listings come from static registry data — like /v1/dbs, this route
	// never forces a session (and its retriever warm-up) to build.
	examples, ok := s.reg.Examples(db, limit)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown database %q", db))
		return
	}
	info, _ := s.reg.Info(db)
	out := api.ExamplesResponse{DB: db, Total: info.Examples, Examples: make([]api.ExampleInfo, len(examples))}
	for i, e := range examples {
		out.Examples[i] = api.ExampleInfo{ID: e.ID, Question: e.Question}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReplicate serves one corpus's WAL to a fleet follower: GET
// /v1/replicate?corpus=<name>&gen=<gen>&from=<offset>. With exactly one
// corpus loaded the corpus parameter may be omitted.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if len(s.stores) == 0 {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "replication requires a durable store (-store-dir)")
		return
	}
	corpus := r.URL.Query().Get("corpus")
	if corpus == "" && len(s.stores) == 1 {
		for name := range s.stores {
			corpus = name
		}
	}
	store, ok := s.stores[corpus]
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown corpus %q", corpus))
		return
	}
	store.ServeReplication(w, r)
}

// handleMemSync serves one corpus's query-memory patterns to a fleet
// follower: GET /v1/memsync?corpus=<name>&gen=<gen>&since=<seq>. With
// exactly one memory-enabled corpus the corpus parameter may be omitted.
func (s *Server) handleMemSync(w http.ResponseWriter, r *http.Request) {
	if len(s.memories) == 0 {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "query memory is disabled on this replica")
		return
	}
	corpus := r.URL.Query().Get("corpus")
	if corpus == "" && len(s.memories) == 1 {
		for name := range s.memories {
			corpus = name
		}
	}
	mem, ok := s.memories[corpus]
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound, fmt.Sprintf("unknown corpus %q", corpus))
		return
	}
	mem.ServeSync(w, r)
}

// handleHealthz is the liveness/readiness split: a plain GET /healthz
// answers 200 while the process serves at all; GET /healthz?ready answers
// 503 while draining, so a fleet router takes the replica out of rotation
// before its listener goes away.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	if r.URL.Query().Has("ready") && draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":         "draining",
			"uptime_seconds": time.Since(s.start).Seconds(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"draining":        draining,
		"uptime_seconds":  time.Since(s.start).Seconds(),
		"databases":       len(s.reg.DBNames()),
		"sessions_loaded": s.reg.Loaded(),
	})
}

// PlanCacheSnapshot aggregates the SQL engines' prepared-plan cache
// counters over one corpus's databases.
type PlanCacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds  float64                      `json:"uptime_seconds"`
	Databases      int                          `json:"databases"`
	SessionsLoaded int64                        `json:"sessions_loaded"`
	Routes         map[string]RouteSnapshot     `json:"routes"`
	Admission      AdmissionStats               `json:"admission"`
	Evidence       map[string]EvidenceSnapshot  `json:"evidence"`
	Batcher        map[string]BatcherStats      `json:"batcher"`
	PlanCache      map[string]PlanCacheSnapshot `json:"plan_cache"`
	// Store holds the per-corpus durable evidence store counters
	// (records, WAL size, compactions, replay time, snapshot age);
	// omitted when the server runs without -store-dir.
	Store map[string]evstore.Stats `json:"store,omitempty"`
	// Replication holds one tailer snapshot per peer stream, keyed
	// "corpus<-peerURL"; omitted outside a fleet (-peers unset).
	Replication map[string]evstore.TailerStats `json:"replication,omitempty"`
	// Memory holds the per-corpus query-memory counters (patterns,
	// lookups, hits, demotions, confidence distribution); omitted when
	// the server runs without -memory.
	Memory map[string]qmemory.Stats `json:"memory,omitempty"`
	// MemoryReplication holds one memory-sync tailer snapshot per peer
	// stream, keyed "corpus<-peerURL"; omitted outside a fleet.
	MemoryReplication map[string]qmemory.TailerStats `json:"memory_replication,omitempty"`
	// Draining reports the shutdown drain state (see SetDraining).
	Draining bool `json:"draining,omitempty"`
}

// EvidenceSnapshot is the /metrics view of one corpus evidence service.
type EvidenceSnapshot struct {
	Variant      string  `json:"variant"`
	Workers      int     `json:"workers"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Entries      int     `json:"cache_entries"`
	Dedups       int64   `json:"dedups"`
	Generations  int64   `json:"generations"`
	Failures     int64   `json:"failures"`
	// Restored counts cache entries replayed from the durable store at
	// startup; StoreAppends/StoreErrors count write-through persistence
	// outcomes. All zero when the server runs without a store.
	Restored     int64 `json:"restored,omitempty"`
	StoreAppends int64 `json:"store_appends,omitempty"`
	StoreErrors  int64 `json:"store_errors,omitempty"`
	// Injected counts cache entries landed by fleet replication; zero
	// outside a fleet.
	Injected int64 `json:"injected,omitempty"`
	// Stages aggregates per-stage pipeline cost across every traced
	// generation: runs, memo hits, wall time and tokens per DAG stage.
	Stages []pipeline.StageAgg `json:"stages,omitempty"`
}

// Metrics snapshots every counter the server exports.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Databases:      len(s.reg.DBNames()),
		SessionsLoaded: s.reg.Loaded(),
		Routes:         make(map[string]RouteSnapshot, len(s.routes)),
		Admission:      s.adm.stats(),
		Evidence:       make(map[string]EvidenceSnapshot, len(s.services)),
		Batcher:        make(map[string]BatcherStats, len(s.batchers)),
		PlanCache:      make(map[string]PlanCacheSnapshot, len(s.corpora)),
	}
	for route, rm := range s.routes {
		snap.Routes[route] = rm.snapshot()
	}
	for name, svc := range s.services {
		st := svc.Stats()
		es := EvidenceSnapshot{
			Variant:      st.Variant,
			Workers:      st.Workers,
			CacheHits:    st.Cache.Hits,
			CacheMisses:  st.Cache.Misses,
			Entries:      st.Cache.Entries,
			Dedups:       st.Dedups,
			Generations:  st.Generations,
			Failures:     st.Failures,
			Restored:     st.Restored,
			StoreAppends: st.StoreAppends,
			StoreErrors:  st.StoreErrors,
			Injected:     st.Injected,
			Stages:       st.Stages,
		}
		if probes := st.Cache.Hits + st.Cache.Misses; probes > 0 {
			es.CacheHitRate = float64(st.Cache.Hits) / float64(probes)
		}
		snap.Evidence[name] = es
	}
	for name, b := range s.batchers {
		snap.Batcher[name] = b.stats()
	}
	if len(s.stores) > 0 {
		snap.Store = make(map[string]evstore.Stats, len(s.stores))
		for name, st := range s.stores {
			snap.Store[name] = st.Stats()
		}
	}
	if len(s.tailers) > 0 {
		snap.Replication = make(map[string]evstore.TailerStats, len(s.tailers))
		for _, rs := range s.tailers {
			snap.Replication[rs.corpus+"<-"+rs.peer] = rs.tailer.Stats()
		}
	}
	if len(s.memories) > 0 {
		snap.Memory = make(map[string]qmemory.Stats, len(s.memories))
		for name, mem := range s.memories {
			snap.Memory[name] = mem.Stats()
		}
	}
	if len(s.memTailers) > 0 {
		snap.MemoryReplication = make(map[string]qmemory.TailerStats, len(s.memTailers))
		for _, ms := range s.memTailers {
			snap.MemoryReplication[ms.corpus+"<-"+ms.peer] = ms.tailer.Stats()
		}
	}
	snap.Draining = s.draining.Load()
	for name, corpus := range s.corpora {
		var agg sqlengine.PlanCacheStats
		for _, db := range corpus.DBs {
			agg.Add(db.Engine.PlanCacheStats())
		}
		snap.PlanCache[name] = PlanCacheSnapshot{
			Hits:      agg.Hits,
			Misses:    agg.Misses,
			Evictions: agg.Evictions,
			Entries:   agg.Entries,
		}
	}
	return snap
}

// handleMetrics serves Prometheus text exposition by default and the
// legacy JSON snapshot at ?format=json (the shape the CI jq asserts and
// pre-existing dashboards consume).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if isJSONFormat(r) {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obsReg.WritePrometheus(w)
}

// decodeBody parses a JSON request body, answering 400 on malformed input.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// writeUpstreamError maps evidence-path failures to HTTP statuses:
// service shutdown to 503, a client that went away to 499 (its
// cancellation is not a server fault and must stay out of 5xx
// accounting), a blown per-request deadline to 504, anything else to 502.
func writeUpstreamError(w http.ResponseWriter, r *http.Request, op string, err error) {
	ctxErr := r.Context().Err()
	switch {
	case errors.Is(err, evserve.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, api.CodeUnavailable, op+" unavailable: server shutting down")
	case errors.Is(ctxErr, context.Canceled):
		writeError(w, api.StatusClientClosedRequest, api.CodeClientClosed, op+" abandoned: client closed request")
	case ctxErr != nil:
		writeError(w, http.StatusGatewayTimeout, api.CodeUpstreamTimeout, op+" deadline exceeded")
	default:
		writeError(w, http.StatusBadGateway, api.CodeUpstreamError, fmt.Sprintf("%s failed: %v", op, err))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	api.WriteError(w, status, code, msg)
}
