package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

// seedConfigFor maps a SEED variant to its pipeline configuration,
// rejecting unknown variants so a typo in `seedd -variant` fails loudly
// instead of silently serving (and labelling caches with) the wrong
// architecture.
func seedConfigFor(v seed.Variant) (seed.Config, error) {
	switch v {
	case seed.VariantGPT:
		return seed.ConfigGPT(), nil
	case seed.VariantDeepSeek:
		return seed.ConfigDeepSeek(), nil
	default:
		return seed.Config{}, fmt.Errorf("server: unknown SEED variant %q (want %s or %s)",
			v, seed.VariantGPT, seed.VariantDeepSeek)
	}
}

// GeneratorFor builds one of the paper's baseline text-to-SQL generators
// by short name. The serving layer and the offline experiment drivers
// construct generators through the same texttosql constructors, which is
// what makes online responses bit-identical to offline pipeline output.
func GeneratorFor(name string, client llm.Client) (texttosql.Generator, error) {
	switch name {
	case "codes-15b":
		return texttosql.NewCodeS(client, 15), nil
	case "codes-7b":
		return texttosql.NewCodeS(client, 7), nil
	case "codes-3b":
		return texttosql.NewCodeS(client, 3), nil
	case "codes-1b":
		return texttosql.NewCodeS(client, 1), nil
	case "chess":
		return texttosql.NewCHESSIRCGUT(client), nil
	case "chess-sscg":
		return texttosql.NewCHESSIRSSCG(client), nil
	case "rsl-sql":
		return texttosql.NewRSLSQL(client), nil
	case "dail-sql":
		return texttosql.NewDAILSQL(client), nil
	case "c3":
		return texttosql.NewC3(client), nil
	default:
		return nil, fmt.Errorf("server: unknown generator %q (want codes-{1,3,7,15}b, chess, chess-sscg, rsl-sql, dail-sql or c3)", name)
	}
}

// Session is the per-database serving state: the schema/catalog handle,
// the corpus-shared generator, and the question index that maps incoming
// natural-language questions back to corpus examples (NL parsing proper is
// outside the simulation boundary, so serving is defined over corpus
// questions). A Session is built exactly once per database — on first
// request — and shared by every subsequent request; building it warms the
// generator's value retriever so no request pays the distinct-value scan
// or BM25 index construction.
type Session struct {
	// DB is the executable database with its description files.
	DB *schema.DB
	// Corpus names the corpus the database belongs to.
	Corpus string
	// Gen is the corpus-shared text-to-SQL generator.
	Gen texttosql.Generator

	byQuestion map[string]dataset.Example
	byID       map[string]dataset.Example
}

// Lookup resolves a request to a corpus example, by exact ID when given,
// otherwise by normalised question text.
func (s *Session) Lookup(question, id string) (dataset.Example, bool) {
	if id != "" {
		e, ok := s.byID[id]
		return e, ok
	}
	e, ok := s.byQuestion[normalizeQuestion(question)]
	return e, ok
}

// normalizeQuestion canonicalises question text for lookup: whitespace
// runs collapse, case folds, and a trailing question mark is optional.
func normalizeQuestion(q string) string {
	q = strings.Join(strings.Fields(q), " ")
	q = strings.TrimSuffix(q, "?")
	return strings.ToLower(strings.TrimSpace(q))
}

// registry maps database names to lazily built Sessions. The expensive
// per-database state — value-retriever warm-up and the question index —
// is built exactly once per database under a per-slot sync.Once, however
// many requests race to be first.
type registry struct {
	slots  map[string]*sessionSlot
	names  []string // sorted database names
	loaded atomic.Int64
}

type sessionSlot struct {
	// info and examples are static corpus data, servable without
	// building the session (no retriever warm-up for listings).
	info     api.DBInfo
	examples []dataset.Example // dev then test, corpus order
	once     sync.Once
	build    func() *Session
	sess     *Session
}

// newRegistry indexes the corpora's databases and binds each to its
// corpus-shared generator. Generators come from the caller (one per
// corpus) so evidence and SQL generation share machinery with the
// offline drivers.
func newRegistry(corpora []*dataset.Corpus, gens map[string]texttosql.Generator) (*registry, error) {
	reg := &registry{slots: make(map[string]*sessionSlot)}
	for _, corpus := range corpora {
		gen, ok := gens[corpus.Name]
		if !ok {
			return nil, fmt.Errorf("server: no generator for corpus %q", corpus.Name)
		}
		servable := make(map[string][]dataset.Example)
		for _, split := range [][]dataset.Example{corpus.Dev, corpus.Test} {
			for _, e := range split {
				servable[e.DB] = append(servable[e.DB], e)
			}
		}
		for name, db := range corpus.DBs {
			if _, dup := reg.slots[name]; dup {
				return nil, fmt.Errorf("server: database %q appears in more than one corpus", name)
			}
			corpus, db, gen := corpus, db, gen
			slot := &sessionSlot{
				info: api.DBInfo{
					Name:     name,
					Corpus:   corpus.Name,
					Tables:   len(db.Engine.Tables()),
					Examples: len(servable[name]),
				},
				examples: servable[name],
			}
			slot.build = func() *Session {
				return buildSession(corpus, db, gen, slot.examples, &reg.loaded)
			}
			reg.slots[name] = slot
			reg.names = append(reg.names, name)
		}
	}
	sort.Strings(reg.names)
	return reg, nil
}

// Info returns a database's static metadata without building its session.
func (r *registry) Info(db string) (api.DBInfo, bool) {
	slot, ok := r.slots[db]
	if !ok {
		return api.DBInfo{}, false
	}
	return slot.info, true
}

// Examples returns up to limit of a database's servable examples
// (limit <= 0 means all), without building its session.
func (r *registry) Examples(db string, limit int) ([]dataset.Example, bool) {
	slot, ok := r.slots[db]
	if !ok {
		return nil, false
	}
	if limit <= 0 || limit > len(slot.examples) {
		limit = len(slot.examples)
	}
	return slot.examples[:limit], true
}

// Session returns the database's session, building it on first use.
func (r *registry) Session(db string) (*Session, bool) {
	slot, ok := r.slots[db]
	if !ok {
		return nil, false
	}
	slot.once.Do(func() { slot.sess = slot.build() })
	return slot.sess, true
}

// DBNames lists every servable database, sorted.
func (r *registry) DBNames() []string { return r.names }

// Loaded reports how many sessions have been built so far.
func (r *registry) Loaded() int64 { return r.loaded.Load() }

func buildSession(corpus *dataset.Corpus, db *schema.DB, gen texttosql.Generator, examples []dataset.Example, loaded *atomic.Int64) *Session {
	sess := &Session{
		DB:         db,
		Corpus:     corpus.Name,
		Gen:        gen,
		byQuestion: make(map[string]dataset.Example, len(examples)),
		byID:       make(map[string]dataset.Example, len(examples)),
	}
	for _, e := range examples {
		sess.byID[e.ID] = e
		key := normalizeQuestion(e.Question)
		if _, dup := sess.byQuestion[key]; !dup {
			sess.byQuestion[key] = e
		}
	}
	// Warm the generator's shared value retriever for this database so
	// the distinct-value inventory / BM25 value index is loaded once, at
	// session build, not on the first request that needs it.
	if op, ok := gen.(texttosql.OptionsProvider); ok {
		if r := op.Options().Values; r != nil {
			r.Warm(db)
		}
	}
	loaded.Add(1)
	return sess
}
