package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

// TestServerDrainKeepsInFlightAlive is the shutdown-under-load regression
// test: flipping the drain bit must take the replica out of rotation
// (GET /healthz?ready answers 503) without killing liveness, replication,
// or requests already in flight.
func TestServerDrainKeepsInFlightAlive(t *testing.T) {
	srv, ts := newTestServer(t, func(cfg *Config) {
		// A wide batch window holds evidence requests in the micro-batcher,
		// guaranteeing genuinely in-flight work while we flip the drain bit.
		cfg.BatchWindow = 75 * time.Millisecond
		cfg.BatchMax = 1024
	})
	examples := testCorpus(t).Dev[:4]

	var wg sync.WaitGroup
	statuses := make([]int, len(examples))
	for i, e := range examples {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
			statuses[i] = resp.StatusCode
		}()
	}

	time.Sleep(20 * time.Millisecond) // let the requests reach the batcher
	srv.SetDraining(true)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz?ready"); code != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz?ready = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200 (liveness must survive drain)", code)
	}
	if code := get("/metrics"); code != http.StatusOK {
		t.Errorf("draining /metrics = %d, want 200", code)
	}

	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusOK {
			t.Errorf("in-flight request %d finished %d during drain, want 200", i, code)
		}
	}

	snap := srv.Metrics()
	if !snap.Draining {
		t.Error("/metrics does not report draining")
	}
	srv.SetDraining(false)
	if code := get("/healthz?ready"); code != http.StatusOK {
		t.Errorf("undrained /healthz?ready = %d, want 200", code)
	}
}

// TestServerPeerReplicationServesWithoutLLM is the end-to-end fleet
// replication test: two servers peered over HTTP, evidence generated on
// the leader, and the follower — which never saw the question — serves it
// as a cache hit with zero evidence generations and zero LLM calls.
func TestServerPeerReplicationServesWithoutLLM(t *testing.T) {
	examples := testCorpus(t).Dev[:5]

	_, leaderTS, _ := newStoreServer(t, t.TempDir(), llm.NewSimulator())

	type evResp struct {
		Evidence string `json:"evidence"`
		CacheHit bool   `json:"evidence_cache_hit"`
	}
	want := make(map[string]string, len(examples))
	for _, e := range examples {
		resp, body := postJSON(t, leaderTS.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("leader /v1/evidence = %d: %s", resp.StatusCode, body)
		}
		var r evResp
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		want[e.ID] = r.Evidence
	}

	followerSim := llm.NewSimulator()
	follower, followerTS, _ := newFleetServer(t, t.TempDir(), followerSim, []string{leaderTS.URL})

	// Wait for the follower's tailer to ship the leader's WAL.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if int64(followerApplied(follower)) >= int64(len(examples)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower replicated %d entries in 5s, want >= %d\nreplication: %+v",
				followerApplied(follower), len(examples), follower.Metrics().Replication)
		}
		time.Sleep(10 * time.Millisecond)
	}

	for _, e := range examples {
		resp, body := postJSON(t, followerTS.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("follower /v1/evidence = %d: %s", resp.StatusCode, body)
		}
		var r evResp
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if !r.CacheHit {
			t.Fatalf("follower missed the replicated cache for %s", e.ID)
		}
		if r.Evidence != want[e.ID] {
			t.Fatalf("replicated evidence for %s diverged:\n leader   %q\n follower %q", e.ID, want[e.ID], r.Evidence)
		}
	}

	snap := follower.Metrics()
	ev := snap.Evidence["bird"]
	if ev.Generations != 0 {
		t.Errorf("follower ran %d generations serving replicated evidence, want 0", ev.Generations)
	}
	if ev.Injected < int64(len(examples)) {
		t.Errorf("follower injected %d replicated entries into its cache, want >= %d", ev.Injected, len(examples))
	}
	if calls := followerSim.LedgerSnapshot().TotalCalls(); calls != 0 {
		t.Errorf("follower made %d LLM calls serving replicated evidence, want 0", calls)
	}
	if len(snap.Replication) == 0 {
		t.Fatal("/metrics has no replication section on a fleet member")
	}
	for stream, st := range snap.Replication {
		if st.Errors > 0 {
			t.Errorf("replication stream %s saw %d errors", stream, st.Errors)
		}
	}
}

// newFleetServer is newStoreServer plus peers: a fleet member tailing the
// given replicas' evidence stores.
func newFleetServer(t *testing.T, dir string, client llm.Client, peers []string) (*Server, *httptest.Server, func()) {
	t.Helper()
	srv, err := New(Config{
		Corpora:           []*dataset.Corpus{testCorpus(t)},
		Client:            client,
		Variant:           seed.VariantGPT,
		BatchWindow:       2 * time.Millisecond,
		BatchMax:          16,
		StoreDir:          dir,
		StoreSeed:         7,
		Peers:             peers,
		ReplicateInterval: 20 * time.Millisecond,
		Logger:            quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	stop := func() {
		ts.Close()
		srv.Close()
	}
	t.Cleanup(stop)
	return srv, ts, stop
}

func followerApplied(s *Server) int64 {
	var total int64
	for _, st := range s.Metrics().Replication {
		total += st.Applied
	}
	return total
}

// TestAdmissionRejectCarriesRetryAfterMs pins the fleet-facing admission
// contract: a 429 carries both the RFC whole-second Retry-After and its
// millisecond-resolution twin X-Retry-After-Ms, and the two agree.
func TestAdmissionRejectCarriesRetryAfterMs(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.Rate = 0.001 // one token; the next refills in ~17 minutes
		cfg.Burst = 1
	})
	e := testCorpus(t).Dev[0]

	resp, _ := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("first request = %d, want 200", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}

	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	ms, err := strconv.ParseInt(resp.Header.Get("X-Retry-After-Ms"), 10, 64)
	if err != nil || ms <= 0 {
		t.Fatalf("X-Retry-After-Ms = %q, want positive milliseconds", resp.Header.Get("X-Retry-After-Ms"))
	}
	if ms > int64(secs)*1000 {
		t.Errorf("X-Retry-After-Ms %d exceeds Retry-After %ds — the coarse header must round up", ms, secs)
	}
}
