package server

import (
	"net/http"
	"strconv"
	"strings"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/sqlengine"
)

// initObs wires the server's observability: the shared metrics registry
// every subsystem registers into, the bounded trace store, the slow-query
// log, and the panic counter. Called from New before routes are built so
// route metrics land in the same registry.
func (s *Server) initObs() {
	s.obsReg = obs.NewRegistry()
	s.panicsTotal = s.obsReg.Counter("server_panics_total", "Requests that panicked in a handler.")
	if s.cfg.TraceCapacity >= 0 {
		capacity := s.cfg.TraceCapacity
		if capacity == 0 {
			capacity = 256
		}
		s.traces = obs.NewTraceStore(capacity, s.cfg.SlowQueryThreshold)
	}
	s.slowlog = obs.NewSlowLog(s.log, s.cfg.SlowQueryThreshold)

	s.obsReg.GaugeFunc("server_uptime_seconds", "Process uptime.", func() float64 {
		return s.Metrics().UptimeSeconds
	})
	s.obsReg.GaugeFunc("server_admission_admitted_total", "Requests that passed admission.",
		func() float64 { return float64(s.adm.stats().Admitted) })
	s.obsReg.GaugeFunc("server_admission_rate_limited_total", "429 rejections from the token bucket.",
		func() float64 { return float64(s.adm.stats().RateLimited) })
	s.obsReg.GaugeFunc("server_admission_overloaded_total", "503 rejections from the in-flight semaphore.",
		func() float64 { return float64(s.adm.stats().Overloaded) })
	s.obsReg.GaugeFunc("server_admission_inflight", "Admitted requests currently executing.",
		func() float64 { return float64(s.adm.stats().Inflight) })

	for name, svc := range s.services {
		svc.RegisterMetrics(s.obsReg, obs.L("corpus", name))
	}
	for name, st := range s.stores {
		st.RegisterMetrics(s.obsReg, obs.L("corpus", name))
	}
	for _, rs := range s.tailers {
		rs.tailer.RegisterMetrics(s.obsReg, obs.L("corpus", rs.corpus))
	}
	for name, mem := range s.memories {
		mem.RegisterMetrics(s.obsReg, obs.L("corpus", name))
	}
	for _, ms := range s.memTailers {
		ms.tailer.RegisterMetrics(s.obsReg, obs.L("corpus", ms.corpus), obs.L("peer", ms.peer))
	}
	for name, corpus := range s.corpora {
		corpus := corpus
		sqlengine.RegisterPlanCacheMetrics(s.obsReg, func() sqlengine.PlanCacheStats {
			var agg sqlengine.PlanCacheStats
			for _, db := range corpus.DBs {
				agg.Add(db.Engine.PlanCacheStats())
			}
			return agg
		}, obs.L("corpus", name))
	}
	// Batch/parallel execution counters are engine-process globals, not
	// per-corpus: register once.
	sqlengine.RegisterEngineExecMetrics(s.obsReg)
}

// Registry exposes the server's metrics registry (for benchmarks and
// embedding processes that add their own metrics).
func (s *Server) Registry() *obs.Registry { return s.obsReg }

// Traces exposes the server's trace store; nil when tracing is disabled.
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// handleTraces serves GET /v1/traces — newest-first summaries of the
// retained traces (?limit=N bounds the list).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "tracing disabled (trace capacity < 0)")
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest, "limit must be a positive integer")
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.List(limit)})
}

// handleTraceByID serves GET /v1/traces/{id} — the full span tree of one
// retained trace.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "tracing disabled (trace capacity < 0)")
		return
	}
	id := r.PathValue("id")
	rec := s.traces.Get(id)
	if rec == nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "no retained trace with id "+id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// sqlOfTrace pulls the SQL text out of a finished trace's span attributes
// for the slow-query log.
func sqlOfTrace(rec *obs.TraceRecord) string {
	if rec == nil {
		return ""
	}
	for i := range rec.Spans {
		if v, ok := rec.Spans[i].Attrs["sql"].(string); ok {
			return v
		}
	}
	return ""
}

// isJSONFormat reports whether the /metrics request asked for the legacy
// JSON snapshot (?format=json).
func isJSONFormat(r *http.Request) bool {
	return strings.EqualFold(r.URL.Query().Get("format"), "json")
}
