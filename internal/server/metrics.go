package server

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency histogram buckets. Bucket i counts
// observations at or below histBoundMicros(i); the last bucket is
// unbounded. Bounds double from 50µs, so the histogram spans 50µs to
// ~26s — micro-batched cache hits at the bottom, cold full-pipeline
// generations with queueing at the top.
const histBuckets = 20

// histBoundMicros returns bucket i's inclusive upper bound in microseconds.
func histBoundMicros(i int) float64 {
	return 50 * float64(int64(1)<<uint(i))
}

// histogram is a lock-free fixed-bucket latency histogram. The zero value
// is not usable; construct with newHistogram.
type histogram struct {
	counts   []atomic.Int64
	total    atomic.Int64
	sumMicro atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, histBuckets)}
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	i := 0
	for i < histBuckets-1 && float64(us) > histBoundMicros(i) {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumMicro.Add(us)
}

// quantile estimates the q-th latency quantile in microseconds by linear
// interpolation within the containing bucket. It returns 0 before any
// observation.
func (h *histogram) quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = histBoundMicros(i - 1)
			}
			upper := histBoundMicros(i)
			if i == histBuckets-1 {
				upper = lower * 2 // open-ended tail: assume one more doubling
			}
			frac := (target - cum) / n
			return lower + frac*(upper-lower)
		}
		cum += n
	}
	return histBoundMicros(histBuckets - 1)
}

func (h *histogram) mean() float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return float64(h.sumMicro.Load()) / float64(total)
}

// routeMetrics aggregates one route's request counters.
type routeMetrics struct {
	count   atomic.Int64
	errors  atomic.Int64 // responses with status >= 400
	latency *histogram
}

func newRouteMetrics() *routeMetrics {
	return &routeMetrics{latency: newHistogram()}
}

func (rm *routeMetrics) observe(status int, d time.Duration) {
	rm.count.Add(1)
	if status >= 400 {
		rm.errors.Add(1)
	}
	rm.latency.observe(d)
}

// RouteSnapshot is the /metrics view of one route's counters.
type RouteSnapshot struct {
	// Count is the number of completed requests, including rejected ones.
	Count int64 `json:"count"`
	// Errors counts responses with status >= 400.
	Errors int64 `json:"errors"`
	// MeanMicros is the mean end-to-end latency in microseconds.
	MeanMicros float64 `json:"mean_us"`
	// P50Micros, P90Micros and P99Micros are interpolated latency
	// quantiles in microseconds.
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
}

func (rm *routeMetrics) snapshot() RouteSnapshot {
	return RouteSnapshot{
		Count:      rm.count.Load(),
		Errors:     rm.errors.Load(),
		MeanMicros: rm.latency.mean(),
		P50Micros:  rm.latency.quantile(0.50),
		P90Micros:  rm.latency.quantile(0.90),
		P99Micros:  rm.latency.quantile(0.99),
	}
}
