package server

import (
	"time"

	"repro/internal/obs"
)

// routeMetrics aggregates one route's request counters, backed by the
// server's obs registry: the same counter/histogram instances feed both
// the Prometheus exposition and the legacy JSON snapshot.
type routeMetrics struct {
	count   *obs.Counter
	errors  *obs.Counter // responses with status >= 400
	latency *obs.Histogram
}

func newRouteMetrics(reg *obs.Registry, route string) *routeMetrics {
	l := obs.L("route", route)
	return &routeMetrics{
		count:   reg.Counter("server_requests_total", "Completed requests, rejected ones included.", l),
		errors:  reg.Counter("server_request_errors_total", "Responses with status >= 400.", l),
		latency: reg.Histogram("server_request_latency_us", "End-to-end request latency in microseconds.", 0, l),
	}
}

func (rm *routeMetrics) observe(status int, d time.Duration) {
	rm.count.Inc()
	if status >= 400 {
		rm.errors.Inc()
	}
	rm.latency.Observe(d.Microseconds())
}

// RouteSnapshot is the /metrics?format=json view of one route's counters.
// The quantiles are exact over the histogram's sample window (previously
// they were interpolated from doubling buckets; the JSON shape is
// unchanged).
type RouteSnapshot struct {
	// Count is the number of completed requests, including rejected ones.
	Count int64 `json:"count"`
	// Errors counts responses with status >= 400.
	Errors int64 `json:"errors"`
	// MeanMicros is the mean end-to-end latency in microseconds.
	MeanMicros float64 `json:"mean_us"`
	// P50Micros, P90Micros and P99Micros are exact latency quantiles in
	// microseconds.
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
}

func (rm *routeMetrics) snapshot() RouteSnapshot {
	q := rm.latency.Quantiles(0.50, 0.90, 0.99)
	return RouteSnapshot{
		Count:      rm.count.Value(),
		Errors:     rm.errors.Value(),
		MeanMicros: rm.latency.Mean(),
		P50Micros:  float64(q[0]),
		P90Micros:  float64(q[1]),
		P99Micros:  float64(q[2]),
	}
}
