package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// TestRoutedQueryTraceEndToEnd is the tentpole acceptance test: one query
// sent through a real fleet.Router must yield one trace, fetchable from
// the serving replica via the response's X-Trace-Id, whose spans cover
// every layer — the router's forward, admission, the batcher wait, the
// evidence DAG stages, and the engine's prepare and execute.
func TestRoutedQueryTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)

	rt, err := fleet.NewRouter(fleet.Config{
		Replicas: []string{ts.URL},
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// A client-supplied traceparent and request ID must both survive the
	// hop: the replica's trace continues the client's trace rather than
	// starting its own.
	clientTrace := obs.NewTraceID()
	e := testCorpus(t).Dev[0]
	body, _ := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/query", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "client-req-1")
	obs.Inject(req.Header, clientTrace, "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "client-req-1" {
		t.Errorf("routed response %s = %q, want the client's ID", obs.RequestIDHeader, got)
	}
	traceID := resp.Header.Get(obs.TraceIDHeader)
	if traceID != clientTrace {
		t.Errorf("routed response %s = %q, want the client trace %q", obs.TraceIDHeader, traceID, clientTrace)
	}

	tresp, err := http.Get(ts.URL + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d, want 200", traceID, tresp.StatusCode)
	}
	var rec obs.TraceRecord
	if err := json.NewDecoder(tresp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.RequestID != "client-req-1" {
		t.Errorf("trace request_id = %q, want client-req-1", rec.RequestID)
	}

	names := make(map[string]int)
	stages := 0
	for _, sp := range rec.Spans {
		names[sp.Name]++
		if strings.HasPrefix(sp.Name, "stage:") {
			stages++
		}
		if sp.Name == "sqlengine.execute" {
			// The execute span must describe the physical execution mode.
			for _, attr := range []string{"batches", "parallel_workers"} {
				if _, ok := sp.Attrs[attr]; !ok {
					t.Errorf("sqlengine.execute span missing %q attr (got %v)", attr, sp.Attrs)
				}
			}
		}
	}
	for _, want := range []string{
		"router.forward", "request", "admission", "evidence",
		"batcher.wait", "generate", "sqlengine.prepare", "sqlengine.execute",
	} {
		if names[want] == 0 {
			t.Errorf("trace is missing span %q (got %v)", want, names)
		}
	}
	if stages == 0 {
		t.Errorf("trace has no evidence DAG stage spans (got %v)", names)
	}
}

// TestRequestIDEchoedOnShed pins the satellite guarantee: a 429 rejected
// before any handler runs still carries the client's X-Request-Id.
func TestRequestIDEchoedOnShed(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.Rate = 0.001
		cfg.Burst = 1
	})
	e := testCorpus(t).Dev[0]
	body, _ := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
	var sawShed bool
	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.RequestIDHeader, "shed-req")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get(obs.RequestIDHeader); got != "shed-req" {
			t.Fatalf("status %d response %s = %q, want shed-req", resp.StatusCode, obs.RequestIDHeader, got)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("no request was shed; the echo-under-shed path went unexercised")
	}
}

// TestPanicRecordsTraceAndCounter pins the panic-path satellite: the
// in-flight span is marked errored with the panic value, panics_total
// increments, and the 500 still echoes the request ID.
func TestPanicRecordsTraceAndCounter(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	before := srv.panicsTotal.Value()
	h := srv.wrap(pathQuery, true, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, pathQuery, nil)
	req.Header.Set(obs.RequestIDHeader, "panic-req")
	h.ServeHTTP(rec, req)

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	if got := rec.Header().Get(obs.RequestIDHeader); got != "panic-req" {
		t.Errorf("panic 500 %s = %q, want panic-req", obs.RequestIDHeader, got)
	}
	if got := srv.panicsTotal.Value(); got != before+1 {
		t.Errorf("panics_total = %d, want %d", got, before+1)
	}

	traceID := rec.Header().Get(obs.TraceIDHeader)
	if traceID == "" {
		t.Fatal("panic 500 carries no X-Trace-Id")
	}
	trec := srv.Traces().Get(traceID)
	if trec == nil {
		t.Fatal("panicked request's trace was not retained")
	}
	if !trec.Errored() {
		t.Error("panicked request's trace is not marked errored")
	}
	var found bool
	for _, sp := range trec.Spans {
		if strings.Contains(sp.Err, "kaboom") {
			found = true
		}
	}
	if !found {
		t.Errorf("no span carries the panic value; spans: %+v", trec.Spans)
	}
}

// TestMetricsPrometheusDefault pins the exposition switch: /metrics is
// Prometheus text by default and the legacy JSON snapshot behind
// ?format=json.
func TestMetricsPrometheusDefault(t *testing.T) {
	_, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]
	postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE server_requests_total counter",
		`server_requests_total{route="/v1/query"}`,
		"server_request_latency_us",
		"evserve_cache_entries",
		"server_admission_admitted_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics exposition is missing %q", want)
		}
	}

	jresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatalf("?format=json is not the legacy JSON snapshot: %v", err)
	}
}

// TestErroredTraceSurvivesChurn pins the trace store's always-keep class
// end to end: with a tiny ring, an errored (panicked) request's trace
// survives churn from successful queries that cycles the recent ring.
func TestErroredTraceSurvivesChurn(t *testing.T) {
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.TraceCapacity = 2
	})
	h := srv.wrap(pathQuery, true, func(w http.ResponseWriter, r *http.Request) {
		panic("evictme-not")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, pathQuery, nil))
	traceID := rec.Header().Get(obs.TraceIDHeader)
	if traceID == "" {
		t.Fatal("panic 500 carries no X-Trace-Id")
	}
	// Churn the recent ring well past its capacity with healthy traffic.
	e := testCorpus(t).Dev[0]
	for i := 0; i < 8; i++ {
		postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	}
	tresp, err := http.Get(ts.URL + "/v1/traces/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Errorf("errored trace %s evicted (GET = %d), want always-keep retention", traceID, tresp.StatusCode)
	}
}
