package server

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// tokenBucket is a continuously refilled token bucket: capacity burst,
// refill rate tokens/second. It implements the server's rate limit.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take consumes one token if available. When the bucket is empty it
// returns false plus the time until one token will have refilled — the
// Retry-After hint.
func (tb *tokenBucket) take(now time.Time) (bool, time.Duration) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	elapsed := now.Sub(tb.last).Seconds()
	if elapsed > 0 {
		tb.tokens = math.Min(tb.burst, tb.tokens+elapsed*tb.rate)
		tb.last = now
	}
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	need := (1 - tb.tokens) / tb.rate
	return false, time.Duration(need * float64(time.Second))
}

// admission is the server's two-stage admission controller: a token-bucket
// rate limit (reject with 429 when sustained arrival rate exceeds the
// configured budget) in front of a bounded in-flight semaphore (reject
// with 503 when concurrency exceeds capacity). Either stage disabled is
// simply nil.
type admission struct {
	bucket *tokenBucket  // nil = unlimited rate
	slots  chan struct{} // nil = unlimited concurrency

	admitted    atomic.Int64
	rateLimited atomic.Int64
	overloaded  atomic.Int64
	inflight    atomic.Int64
}

func newAdmission(rate float64, burst, maxInFlight int) *admission {
	a := &admission{}
	if rate > 0 {
		a.bucket = newTokenBucket(rate, burst)
	}
	if maxInFlight > 0 {
		a.slots = make(chan struct{}, maxInFlight)
	}
	return a
}

// admit decides one request. On success it returns a non-nil release
// function that must be called when the request finishes. On rejection it
// returns the HTTP status to serve (429 or 503) and a Retry-After hint.
func (a *admission) admit() (release func(), status int, retryAfter time.Duration) {
	if a.bucket != nil {
		ok, wait := a.bucket.take(time.Now())
		if !ok {
			a.rateLimited.Add(1)
			// The token time is exact but every starved client computes the
			// same one; jitter spreads their retries so the refilled token
			// is not stampeded.
			return nil, 429, jitterRetry(wait)
		}
	}
	if a.slots != nil {
		select {
		case a.slots <- struct{}{}:
		default:
			a.overloaded.Add(1)
			// The queue is full of in-flight work; suggest retrying after
			// roughly one typical request's worth of backoff. Unlike the
			// rate limiter there is no exact time to compute — a slot frees
			// whenever some request finishes — so the jitter does double
			// duty: it spreads retries AND decorrelates clients that were
			// all rejected by the same full queue.
			return nil, 503, jitterRetry(250 * time.Millisecond)
		}
	}
	a.admitted.Add(1)
	a.inflight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			if a.slots != nil {
				<-a.slots
			}
		})
	}, 0, 0
}

// jitterRetry spreads a nominal Retry-After hint over [d, 1.5d): never
// earlier than the base (a 429's token genuinely does not exist before
// then), up to half again later so simultaneous rejects decorrelate.
func jitterRetry(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d + time.Duration(rand.Int64N(int64(d/2+1)))
}

// AdmissionStats is the /metrics view of the admission controller.
type AdmissionStats struct {
	// Admitted counts requests that passed both stages.
	Admitted int64 `json:"admitted"`
	// RateLimited counts 429 rejections from the token bucket.
	RateLimited int64 `json:"rate_limited"`
	// Overloaded counts 503 rejections from the in-flight semaphore.
	Overloaded int64 `json:"overloaded"`
	// Inflight is the number of admitted requests currently executing.
	Inflight int64 `json:"inflight"`
}

func (a *admission) stats() AdmissionStats {
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		RateLimited: a.rateLimited.Load(),
		Overloaded:  a.overloaded.Load(),
		Inflight:    a.inflight.Load(),
	}
}
