package server

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

// newStoreServer builds a serving stack with durable evidence over dir.
// Unlike newTestServer it returns the close function instead of deferring
// it, because restart tests must tear the first life down mid-test.
func newStoreServer(t *testing.T, dir string, client llm.Client) (*Server, *httptest.Server, func()) {
	t.Helper()
	srv, err := New(Config{
		Corpora:     []*dataset.Corpus{testCorpus(t)},
		Client:      client,
		Variant:     seed.VariantGPT,
		BatchWindow: 2 * time.Millisecond,
		BatchMax:    16,
		StoreDir:    dir,
		StoreSeed:   7, // testCorpus's generation seed
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	stop := func() {
		ts.Close()
		srv.Close()
	}
	t.Cleanup(stop) // Close is idempotent, so an explicit stop + cleanup is safe
	return srv, ts, stop
}

// TestServerWarmRestartServesFromStore is the serving-level half of the
// durability golden test: a server shut down and restarted over the same
// store directory answers /v1/evidence byte-identically — evidence and
// trace — from the replayed store, with zero evidence generations and
// zero simulated LLM calls.
func TestServerWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	examples := testCorpus(t).Dev[:6]

	type evResp struct {
		Evidence string          `json:"evidence"`
		Trace    json.RawMessage `json:"evidence_trace"`
		CacheHit bool            `json:"evidence_cache_hit"`
	}

	// First life: populate the store through real requests.
	_, ts, stop := newStoreServer(t, dir, llm.NewSimulator())
	want := make(map[string]evResp, len(examples))
	for _, e := range examples {
		resp, body := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("first life /v1/evidence = %d: %s", resp.StatusCode, body)
		}
		var r evResp
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		want[e.ID] = r
	}
	stop()

	// Second life: fresh server, fresh simulator, same store directory.
	sim := llm.NewSimulator()
	srv2, ts2, _ := newStoreServer(t, dir, sim)
	for _, e := range examples {
		resp, body := postJSON(t, ts2.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
		if resp.StatusCode != 200 {
			t.Fatalf("restarted /v1/evidence = %d: %s", resp.StatusCode, body)
		}
		var r evResp
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if !r.CacheHit {
			t.Fatalf("restarted server missed the replayed cache for %s", e.ID)
		}
		w := want[e.ID]
		if r.Evidence != w.Evidence {
			t.Fatalf("evidence for %s changed across restart:\n before %q\n after  %q", e.ID, w.Evidence, r.Evidence)
		}
		if string(r.Trace) != string(w.Trace) {
			t.Fatalf("trace for %s not byte-identical across restart:\n before %s\n after  %s", e.ID, w.Trace, r.Trace)
		}
	}

	snap := srv2.Metrics()
	ev := snap.Evidence["bird"]
	if ev.Generations != 0 {
		t.Errorf("restarted server ran %d generations, want 0", ev.Generations)
	}
	if ev.Restored < int64(len(examples)) {
		t.Errorf("restarted server restored %d entries, want >= %d", ev.Restored, len(examples))
	}
	st, ok := snap.Store["bird"]
	if !ok {
		t.Fatal("/metrics has no store section for bird")
	}
	if st.Records < len(examples) {
		t.Errorf("store metrics report %d records, want >= %d", st.Records, len(examples))
	}
	if calls := sim.LedgerSnapshot().TotalCalls(); calls != 0 {
		t.Errorf("restarted server made %d simulated LLM calls serving warm evidence, want 0", calls)
	}
}

// TestMetricsOmitStoreWhenDisabled pins the /metrics shape: no store
// section unless StoreDir is set, and no phantom restore counters.
func TestMetricsOmitStoreWhenDisabled(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	snap := srv.Metrics()
	if snap.Store != nil {
		t.Fatalf("store metrics present without a store: %+v", snap.Store)
	}
	if ev := snap.Evidence["bird"]; ev.Restored != 0 || ev.StoreAppends != 0 {
		t.Fatalf("phantom store counters: %+v", ev)
	}
}

// TestStoreSharedAcrossQueryAndEvidenceRoutes: evidence generated through
// /v1/query is durable too — the store is wired under the evidence
// service, not a single route.
func TestStoreSharedAcrossQueryAndEvidenceRoutes(t *testing.T) {
	dir := t.TempDir()
	e := testCorpus(t).Dev[0]

	srv, ts, _ := newStoreServer(t, dir, llm.NewSimulator())
	resp, body := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/query = %d: %s", resp.StatusCode, body)
	}
	var q api.QueryResponse
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics()
	if ev := snap.Evidence["bird"]; ev.StoreAppends == 0 {
		t.Fatalf("query-path generation was not persisted: %+v", ev)
	}
	if st := snap.Store["bird"]; st.Appends == 0 {
		t.Fatalf("store saw no appends: %+v", st)
	}
	// The same entry then serves /v1/evidence as a hit.
	resp, body = postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/evidence = %d: %s", resp.StatusCode, body)
	}
	var ev struct {
		Evidence string `json:"evidence"`
		CacheHit bool   `json:"evidence_cache_hit"`
	}
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if !ev.CacheHit || ev.Evidence != q.Evidence {
		t.Fatalf("evidence route did not share the query route's entry: %+v vs %q", ev, q.Evidence)
	}
}

// TestDuplicateCorpusReleasesStore: the duplicate-corpus error path must
// release resources already started — observable because a second,
// valid New over the same store directory only works if the first
// attempt's store handle was closed.
func TestDuplicateCorpusReleasesStore(t *testing.T) {
	dir := t.TempDir()
	corpus := testCorpus(t)
	_, err := New(Config{
		Corpora:  []*dataset.Corpus{corpus, corpus},
		Client:   llm.NewSimulator(),
		StoreDir: dir,
		Logger:   quietLogger(),
	})
	if err == nil {
		t.Fatal("New accepted a duplicate corpus")
	}
	srv, err := New(Config{
		Corpora:  []*dataset.Corpus{corpus},
		Client:   llm.NewSimulator(),
		StoreDir: dir,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatalf("store not released by the failed construction: %v", err)
	}
	srv.Close()
}

// TestNewFailsOnUnusableStoreDir: a store directory that cannot be
// created fails construction with a useful error instead of silently
// serving without durability.
func TestNewFailsOnUnusableStoreDir(t *testing.T) {
	dir := t.TempDir()
	// Park a file where the per-corpus directory should go.
	if err := os.WriteFile(filepath.Join(dir, "bird"), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{
		Corpora:  []*dataset.Corpus{testCorpus(t)},
		Client:   llm.NewSimulator(),
		StoreDir: dir,
		Logger:   quietLogger(),
	})
	if err == nil {
		t.Fatal("New accepted an unusable store directory")
	}
}
