package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
)

func benchServer(b *testing.B, traceCapacity int, slow time.Duration) (string, func()) {
	srv, err := New(Config{
		Corpora:            []*dataset.Corpus{dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})},
		Client:             llm.NewSimulator(),
		Variant:            seed.VariantGPT,
		BatchWindow:        2 * time.Millisecond,
		BatchMax:           16,
		MaxInFlight:        1024,
		RequestTimeout:     time.Minute,
		TraceCapacity:      traceCapacity,
		SlowQueryThreshold: slow,
		Logger:             slog.New(slog.DiscardHandler),
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close(); srv.Close() }
}

func runBenchLoad(b *testing.B, base string) {
	corpus := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7})
	payloads := make([][]byte, 0, len(corpus.Dev))
	for _, e := range corpus.Dev {
		body, _ := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		payloads = append(payloads, body)
	}
	ctx := context.Background()
	if _, err := RunLoad(ctx, LoadOptions{BaseURL: base, Payloads: payloads, Concurrency: 8}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := RunLoad(ctx, LoadOptions{BaseURL: base, Payloads: payloads, Concurrency: 16, Total: b.N}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkQueryTraced(b *testing.B) {
	base, stop := benchServer(b, 0, 25*time.Millisecond)
	defer stop()
	runBenchLoad(b, base)
}

func BenchmarkQueryUntraced(b *testing.B) {
	base, stop := benchServer(b, -1, 0)
	defer stop()
	runBenchLoad(b, base)
}
