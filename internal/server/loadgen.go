package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

// LoadOptions configures one load-generation run against a serving
// endpoint: Total requests drawn round-robin from Payloads, issued by
// Concurrency workers.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoint is the POST path; default "/v1/query".
	Endpoint string
	// Payloads are pre-marshalled JSON request bodies, replayed
	// round-robin.
	Payloads [][]byte
	// Concurrency is the worker count; 0 defaults to 1 (serial replay).
	Concurrency int
	// Total is the number of requests to issue; 0 defaults to
	// len(Payloads) (one full replay of the question set).
	Total int
	// Client is the HTTP client; nil uses a pooled default.
	Client *http.Client
}

// LoadReport summarises one load run. Latencies are end-to-end from the
// client's side, in microseconds.
type LoadReport struct {
	Concurrency     int     `json:"concurrency"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	DurationSeconds float64 `json:"duration_seconds"`
	// QPS is Requests (including failed ones) per second of wall time.
	QPS       float64 `json:"qps"`
	P50Micros float64 `json:"p50_us"`
	P90Micros float64 `json:"p90_us"`
	P99Micros float64 `json:"p99_us"`
	MaxMicros float64 `json:"max_us"`
}

// RunLoad replays the payloads against the endpoint and aggregates a
// report. A non-2xx response counts as an error but still contributes its
// latency; transport failures abort the run.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("server: LoadOptions.BaseURL is required")
	}
	if len(opts.Payloads) == 0 {
		return nil, errors.New("server: LoadOptions.Payloads is empty")
	}
	if opts.Endpoint == "" {
		opts.Endpoint = pathQuery
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Total <= 0 {
		opts.Total = len(opts.Payloads)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: opts.Concurrency,
		}}
	}
	url := opts.BaseURL + opts.Endpoint

	var next atomic.Int64
	var errCount atomic.Int64
	latencies := make([][]int64, opts.Concurrency)
	errs := make([]error, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Total) || ctx.Err() != nil {
					return
				}
				body := opts.Payloads[i%int64(len(opts.Payloads))]
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					errs[w] = err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errs[w] = fmt.Errorf("request %d: %w", i, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				latencies[w] = append(latencies[w], time.Since(t0).Microseconds())
				if resp.StatusCode < 200 || resp.StatusCode >= 300 {
					errCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []int64
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	return buildReport(all, int(errCount.Load()), opts.Concurrency, elapsed), nil
}

// buildReport aggregates raw request latencies into a LoadReport.
func buildReport(latencies []int64, errors, concurrency int, elapsed time.Duration) *LoadReport {
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	report := &LoadReport{
		Concurrency:     concurrency,
		Requests:        len(latencies),
		Errors:          errors,
		DurationSeconds: elapsed.Seconds(),
	}
	if elapsed > 0 {
		report.QPS = float64(len(latencies)) / elapsed.Seconds()
	}
	if len(latencies) > 0 {
		report.P50Micros = float64(percentile(latencies, 0.50))
		report.P90Micros = float64(percentile(latencies, 0.90))
		report.P99Micros = float64(percentile(latencies, 0.99))
		report.MaxMicros = float64(latencies[len(latencies)-1])
	}
	return report
}

// RunSerialBaseline measures the pre-serving status quo the subsystem is
// judged against: per-request serial pipeline calls. Every request pays a
// full evidence-generation run (no cache, no batching, no concurrency)
// followed by SQL generation and execution — exactly what a script
// wrapping the offline pipeline per incoming request would do, minus even
// the HTTP overhead the served path pays. Questions replay round-robin
// from the corpus dev split.
func RunSerialBaseline(corpus *dataset.Corpus, client llm.Client, variant seed.Variant, generator string, total int) (*LoadReport, error) {
	seedCfg, err := seedConfigFor(variant)
	if err != nil {
		return nil, err
	}
	p := seed.New(seedCfg, client, corpus)
	gen, err := GeneratorFor(generator, client)
	if err != nil {
		return nil, err
	}
	if len(corpus.Dev) == 0 {
		return nil, errors.New("server: corpus has no dev split to replay")
	}
	if total <= 0 {
		total = len(corpus.Dev)
	}
	latencies := make([]int64, 0, total)
	failures := 0
	start := time.Now()
	for i := 0; i < total; i++ {
		e := corpus.Dev[i%len(corpus.Dev)]
		db := corpus.DBs[e.DB]
		t0 := time.Now()
		err := func() error {
			ev, err := p.GenerateEvidence(e.DB, e.Question)
			if err != nil {
				return err
			}
			sql, err := gen.Generate(texttosql.Task{Example: e, DB: db, Evidence: ev})
			if err != nil {
				return err
			}
			stmt, err := db.Engine.Prepare(sql)
			if err != nil {
				return err
			}
			_, err = stmt.Exec()
			return err
		}()
		latencies = append(latencies, time.Since(t0).Microseconds())
		if err != nil {
			failures++
		}
	}
	return buildReport(latencies, failures, 1, time.Since(start)), nil
}

// percentile returns the p-th percentile of sorted latencies using the
// nearest-rank method.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
