package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evserve"
)

// newEchoBatcher builds a batcher over an evserve service whose generator
// echoes "db/question" and counts invocations. Caching is disabled so
// every generation reaches the counter.
func newEchoBatcher(t *testing.T, window time.Duration, maxSize int, calls *atomic.Int64) *batcher {
	t.Helper()
	svc := evserve.New(evserve.Options{
		Variant:       "test",
		CacheCapacity: -1,
		Workers:       4,
		Generate: func(db, question string) (string, error) {
			calls.Add(1)
			return db + "/" + question, nil
		},
	})
	t.Cleanup(svc.Close)
	return newBatcher(svc, window, maxSize)
}

// TestBatcherSingleRequestFastPath: with batching disabled the batcher
// must call straight through — no timer, no batch accounting.
func TestBatcherSingleRequestFastPath(t *testing.T) {
	var calls atomic.Int64
	for _, b := range []*batcher{
		newEchoBatcher(t, 0, 32, &calls),               // window disables
		newEchoBatcher(t, time.Millisecond, 1, &calls), // maxSize disables
	} {
		ev, err := b.Generate(context.Background(), "db", "q")
		if err != nil || ev.Text != "db/q" {
			t.Fatalf("Generate = %q, %v", ev.Text, err)
		}
		st := b.stats()
		if st.Singles != 1 || st.Batches != 0 || st.BatchedRequests != 0 {
			t.Errorf("fast path stats = %+v, want 1 single and no batches", st)
		}
	}
}

// TestBatcherWindowFlush: requests arriving within one window must be
// served by a single window-triggered batch.
func TestBatcherWindowFlush(t *testing.T) {
	var calls atomic.Int64
	b := newEchoBatcher(t, 150*time.Millisecond, 64, &calls)
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	evs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ev, err := b.Generate(context.Background(), "db", fmt.Sprintf("q%d", i))
			evs[i], errs[i] = ev.Text, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || evs[i] != fmt.Sprintf("db/q%d", i) {
			t.Fatalf("request %d: %q, %v", i, evs[i], errs[i])
		}
	}
	st := b.stats()
	if st.WindowFlushes != 1 || st.SizeFlushes != 0 {
		t.Errorf("flushes = %d window / %d size, want 1 / 0 (stats %+v)", st.WindowFlushes, st.SizeFlushes, st)
	}
	if st.Batches != 1 || st.BatchedRequests != n {
		t.Errorf("batches = %d with %d requests, want 1 with %d", st.Batches, st.BatchedRequests, n)
	}
	if st.AvgFill != n {
		t.Errorf("AvgFill = %.1f, want %d", st.AvgFill, n)
	}
}

// TestBatcherSizeFlush: hitting maxSize must dispatch immediately, well
// before the (deliberately enormous) window elapses.
func TestBatcherSizeFlush(t *testing.T) {
	var calls atomic.Int64
	const n = 4
	b := newEchoBatcher(t, time.Hour, n, &calls)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Generate(context.Background(), "db", fmt.Sprintf("q%d", i)); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size flush waited %v — the window timer fired instead", elapsed)
	}
	st := b.stats()
	if st.SizeFlushes != 1 || st.WindowFlushes != 0 {
		t.Errorf("flushes = %d size / %d window, want 1 / 0", st.SizeFlushes, st.WindowFlushes)
	}
	if st.BatchedRequests != n {
		t.Errorf("BatchedRequests = %d, want %d", st.BatchedRequests, n)
	}
}

// TestBatcherContextCancellationMidBatch: a caller whose context dies
// while its request is parked in a pending batch must return promptly with
// ctx.Err(); the batch itself must still serve the other participants.
func TestBatcherContextCancellationMidBatch(t *testing.T) {
	var calls atomic.Int64
	b := newEchoBatcher(t, 250*time.Millisecond, 64, &calls)

	survivor := make(chan error, 1)
	go func() {
		_, err := b.Generate(context.Background(), "db", "keeper")
		survivor <- err
	}()

	ctx, cancel := context.WithCancel(context.Background())
	abandoned := make(chan error, 1)
	go func() {
		_, err := b.Generate(ctx, "db", "quitter")
		abandoned <- err
	}()
	// Let both requests join the pending batch, then cancel one.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-abandoned:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled caller returned %v, want context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("cancelled caller still parked after cancellation — it must not wait for the window")
	}
	if err := <-survivor; err != nil {
		t.Fatalf("surviving batch participant failed: %v", err)
	}
	// Both requests were in the dispatched batch: the abandoned one still
	// ran (its result goes to a buffered channel nobody reads).
	if got := calls.Load(); got != 2 {
		t.Errorf("generator ran %d times, want 2 (batch keeps running for survivors)", got)
	}
	if st := b.stats(); st.BatchedRequests != 2 {
		t.Errorf("BatchedRequests = %d, want 2", st.BatchedRequests)
	}
}

// TestBatcherFlushDrainsPending: Flush must dispatch a parked batch
// synchronously so shutdown never strands waiters behind a long window.
func TestBatcherFlushDrainsPending(t *testing.T) {
	var calls atomic.Int64
	b := newEchoBatcher(t, time.Hour, 64, &calls)
	got := make(chan string, 1)
	go func() {
		ev, _ := b.Generate(context.Background(), "db", "q")
		got <- ev.Text
	}()
	for i := 0; i < 100 && func() bool { b.mu.Lock(); defer b.mu.Unlock(); return len(b.pending) == 0 }(); i++ {
		time.Sleep(time.Millisecond)
	}
	b.Flush()
	select {
	case ev := <-got:
		if ev != "db/q" {
			t.Fatalf("flushed request got %q", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Flush did not release the parked request")
	}
	b.Flush() // idempotent on an empty queue
}
