package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// wrap layers the server's cross-cutting middleware around a handler, from
// the outside in: request-id echo + trace collection, panic recovery,
// structured request logging + latency metrics, then (for admitted routes)
// admission control, then the per-request deadline. Health and metrics
// routes skip admission so the server stays observable under overload.
//
// X-Request-Id is stamped on the response before any outcome is decided,
// so sheds (429/503) and panic 500s carry it too; traced requests also
// echo X-Trace-Id, which is how a client (or the failover smoke) fetches
// the trace it just produced from /v1/traces/{id}.
func (s *Server) wrap(route string, admit bool, h http.HandlerFunc) http.Handler {
	rm := s.routes[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		reqID := obs.RequestID(r.Header)
		rec.Header().Set(obs.RequestIDHeader, reqID)

		ctx := r.Context()
		var tr *obs.Trace
		var root *obs.Span
		// Traces are collected for the admitted (query-path) routes only:
		// health probes and replication polls would churn the ring without
		// telling anyone where a query spent its time.
		if admit && s.traces != nil {
			traceID, parent, _ := obs.Extract(r.Header)
			ctx, tr = obs.NewTrace(ctx, traceID, reqID)
			rec.Header().Set(obs.TraceIDHeader, tr.ID())
			if att := r.Header.Get(obs.FleetAttemptHeader); att != "" {
				// The router's hop becomes a span in this replica's trace
				// (the trace store lives here, not on the router): attempt>0
				// marks a retried/hedged forward, which is how a failover
				// trace shows the successor replica serving the request.
				fw := tr.StartRoot("router.forward", parent)
				if n, err := strconv.Atoi(att); err == nil {
					fw.SetAttr("attempt", n)
					if n > 0 {
						fw.SetAttr("retried", true)
					}
				}
				parent = fw.SpanID
			}
			root = tr.StartRoot("request", parent)
			ctx = obs.ContextWithSpan(ctx, root)
		}

		defer func() {
			if p := recover(); p != nil {
				// The request must not vanish from telemetry: count it, mark
				// the in-flight span errored with the panic value, and let
				// the histogram observe it below like any other 500.
				s.panicsTotal.Inc()
				root.Fail(p)
				s.log.Error("panic serving request",
					"route", route, "request_id", reqID, "trace_id", tr.ID(),
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, api.CodeInternal, "internal error")
				}
			}
			d := time.Since(start)
			rm.observe(rec.status, d)
			if tr != nil {
				root.End()
				trec := tr.Finish(route, rec.status, "")
				s.traces.Add(trec)
				s.slowlog.Record(trec, sqlOfTrace(trec))
			}
			s.log.Info("request",
				"method", r.Method, "route", route, "status", rec.status,
				"duration_us", d.Microseconds(), "remote", r.RemoteAddr,
				"request_id", reqID, "trace_id", tr.ID())
		}()

		if admit {
			_, asp := obs.StartSpan(ctx, "admission")
			release, status, retryAfter := s.adm.admit()
			if release == nil {
				asp.SetAttr("shed", true)
				asp.SetAttr("status", status)
				asp.End()
				// Retry-After is whole seconds per RFC 9110; round up so
				// the client never retries before a token exists.
				secs := int(math.Ceil(retryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				rec.Header().Set("Retry-After", fmt.Sprint(secs))
				// Whole seconds is far too coarse for an intra-fleet hop
				// whose real backoff is tens of milliseconds; the router
				// reads this millisecond-resolution twin instead.
				rec.Header().Set("X-Retry-After-Ms", fmt.Sprint(retryAfter.Milliseconds()))
				msg, code := "rate limit exceeded", api.CodeRateLimited
				if status == http.StatusServiceUnavailable {
					msg, code = "server at capacity", api.CodeOverCapacity
				}
				writeError(rec, status, code, msg)
				return
			}
			asp.End()
			defer release()
		}

		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		h(rec, r.WithContext(ctx))
	})
}
