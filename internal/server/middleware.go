package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// wrap layers the server's cross-cutting middleware around a handler, from
// the outside in: panic recovery, then structured request logging +
// latency metrics, then (for admitted routes) admission control, then the
// per-request deadline. Health and metrics routes skip admission so the
// server stays observable under overload.
func (s *Server) wrap(route string, admit bool, h http.HandlerFunc) http.Handler {
	rm := s.routes[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}

		defer func() {
			if p := recover(); p != nil {
				s.log.Error("panic serving request",
					"route", route, "panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			d := time.Since(start)
			rm.observe(rec.status, d)
			s.log.Info("request",
				"method", r.Method, "route", route, "status", rec.status,
				"duration_us", d.Microseconds(), "remote", r.RemoteAddr)
		}()

		if admit {
			release, status, retryAfter := s.adm.admit()
			if release == nil {
				// Retry-After is whole seconds per RFC 9110; round up so
				// the client never retries before a token exists.
				secs := int(math.Ceil(retryAfter.Seconds()))
				if secs < 1 {
					secs = 1
				}
				rec.Header().Set("Retry-After", fmt.Sprint(secs))
				// Whole seconds is far too coarse for an intra-fleet hop
				// whose real backoff is tens of milliseconds; the router
				// reads this millisecond-resolution twin instead.
				rec.Header().Set("X-Retry-After-Ms", fmt.Sprint(retryAfter.Milliseconds()))
				msg := "rate limit exceeded"
				if status == http.StatusServiceUnavailable {
					msg = "server at capacity"
				}
				writeError(rec, status, msg)
				return
			}
			defer release()
		}

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		h(rec, r.WithContext(ctx))
	})
}
