package server

import (
	"testing"
	"time"
)

func TestTokenBucketRefill(t *testing.T) {
	tb := newTokenBucket(10, 2) // 10 tokens/s, burst 2
	now := time.Now()
	if ok, _ := tb.take(now); !ok {
		t.Fatal("first take from a full bucket denied")
	}
	if ok, _ := tb.take(now); !ok {
		t.Fatal("second take within burst denied")
	}
	ok, wait := tb.take(now)
	if ok {
		t.Fatal("take from an empty bucket allowed")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want (0, 100ms] at 10 tokens/s", wait)
	}
	// After the advertised wait a token must exist.
	if ok, _ := tb.take(now.Add(wait)); !ok {
		t.Fatal("take after the advertised retry-after still denied")
	}
	// Refill never exceeds burst.
	if ok, _ := tb.take(now.Add(time.Hour)); !ok {
		t.Fatal("take after long idle denied")
	}
	if ok, _ := tb.take(now.Add(time.Hour)); !ok {
		t.Fatal("second take after long idle denied (burst 2)")
	}
	if ok, _ := tb.take(now.Add(time.Hour)); ok {
		t.Fatal("third take after long idle allowed — bucket exceeded burst")
	}
}

func TestAdmissionRateLimit(t *testing.T) {
	a := newAdmission(1, 1, 0) // 1 req/s, burst 1, no in-flight cap
	release, status, _ := a.admit()
	if release == nil {
		t.Fatalf("first request rejected with %d", status)
	}
	release()
	_, status, retry := a.admit()
	if status != 429 {
		t.Fatalf("second immediate request status = %d, want 429", status)
	}
	if retry <= 0 {
		t.Fatal("429 carries no Retry-After hint")
	}
	st := a.stats()
	if st.Admitted != 1 || st.RateLimited != 1 {
		t.Errorf("stats = %+v, want 1 admitted / 1 rate-limited", st)
	}
}

func TestAdmissionInFlightBound(t *testing.T) {
	a := newAdmission(0, 0, 2) // no rate limit, 2 slots
	r1, status, _ := a.admit()
	if r1 == nil {
		t.Fatalf("first admit rejected: %d", status)
	}
	r2, _, _ := a.admit()
	if r2 == nil {
		t.Fatal("second admit rejected with a free slot")
	}
	_, status, retry := a.admit()
	if status != 503 {
		t.Fatalf("over-capacity status = %d, want 503", status)
	}
	if retry <= 0 {
		t.Fatal("503 carries no Retry-After hint")
	}
	if got := a.stats().Inflight; got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
	r1()
	r1() // double release must not free a second slot
	if r3, _, _ := a.admit(); r3 == nil {
		t.Fatal("admit after release rejected")
	}
	if _, status, _ := a.admit(); status != 503 {
		t.Fatalf("double release freed an extra slot (status %d, want 503)", status)
	}
	r2()
	st := a.stats()
	if st.Overloaded != 2 {
		t.Errorf("Overloaded = %d, want 2", st.Overloaded)
	}
}

func TestAdmissionDisabled(t *testing.T) {
	a := newAdmission(0, 0, 0)
	for i := 0; i < 100; i++ {
		release, status, _ := a.admit()
		if release == nil {
			t.Fatalf("unlimited admission rejected request %d with %d", i, status)
		}
		defer release()
	}
}
