package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

var (
	corpusOnce sync.Once
	birdCorpus *dataset.Corpus
)

func testCorpus(t *testing.T) *dataset.Corpus {
	t.Helper()
	corpusOnce.Do(func() { birdCorpus = dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7}) })
	return birdCorpus
}

func quietLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// newTestServer stands up a full serving stack over the shared BIRD corpus.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Corpora:     []*dataset.Corpus{testCorpus(t)},
		Client:      llm.NewSimulator(),
		Variant:     seed.VariantGPT,
		BatchWindow: 2 * time.Millisecond,
		BatchMax:    16,
		Logger:      quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthzAndDBs(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/dbs")
	if err != nil {
		t.Fatal(err)
	}
	var dbs struct {
		DBs []api.DBInfo `json:"dbs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dbs.DBs) != len(testCorpus(t).DBs) {
		t.Fatalf("/v1/dbs lists %d databases, corpus has %d", len(dbs.DBs), len(testCorpus(t).DBs))
	}
	for _, info := range dbs.DBs {
		if info.Tables == 0 || info.Examples == 0 {
			t.Errorf("db %s listed with %d tables / %d examples", info.Name, info.Tables, info.Examples)
		}
	}
}

func TestQueryServesEvidenceSQLAndRows(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]
	resp, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("query = %d: %s", resp.StatusCode, data)
	}
	var qr api.QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.ExampleID != e.ID {
		t.Errorf("resolved example %s, want %s", qr.ExampleID, e.ID)
	}
	if qr.Evidence == "" || qr.SQL == "" {
		t.Errorf("response missing evidence (%q) or SQL (%q)", qr.Evidence, qr.SQL)
	}
	if len(qr.Columns) == 0 {
		t.Error("response has no columns")
	}

	// Question lookup is whitespace- and case-tolerant, and the example
	// ID works as a direct key.
	resp, _ = postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: "  " + e.Question + "  "})
	if resp.StatusCode != 200 {
		t.Errorf("whitespace-padded question = %d", resp.StatusCode)
	}
	resp, data = postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, ID: e.ID})
	if resp.StatusCode != 200 {
		t.Errorf("lookup by id = %d: %s", resp.StatusCode, data)
	}

	// The session registry loaded exactly one session for all of this.
	if loaded := srv.reg.Loaded(); loaded != 1 {
		t.Errorf("sessions loaded = %d, want 1", loaded)
	}
}

func TestQueryErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]

	resp, _ := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: "no_such_db", Question: e.Question})
	if resp.StatusCode != 404 {
		t.Errorf("unknown db = %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: "what is the airspeed velocity of an unladen swallow"})
	if resp.StatusCode != 404 {
		t.Errorf("unknown question = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader([]byte("{not json")))
	req.Header.Set("Content-Type", "application/json")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Errorf("malformed body = %d, want 400", r2.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB})
	if resp.StatusCode != 400 {
		t.Errorf("evidence without question = %d, want 400", resp.StatusCode)
	}
}

func TestRateLimitReturns429WithRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.Rate = 0.001 // effectively one request, then dry for a long time
		cfg.Burst = 1
	})
	e := testCorpus(t).Dev[0]
	resp, data := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("first request = %d: %s", resp.StatusCode, data)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 429 {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	// Health stays reachable under rate limiting.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != 200 {
		t.Errorf("healthz under rate limit = %d", hr.StatusCode)
	}
}

func TestOverloadReturns503(t *testing.T) {
	srv, ts := newTestServer(t, func(cfg *Config) {
		cfg.MaxInFlight = 1
		cfg.BatchWindow = 200 * time.Millisecond // park the first request in a batch window
		cfg.BatchMax = 64
	})
	e := testCorpus(t).Dev[0]
	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
		first <- resp.StatusCode
	}()
	// Wait until the first request holds the only slot.
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.stats().Inflight == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 503 {
		t.Errorf("over-capacity request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After header")
	}
	if code := <-first; code != 200 {
		t.Errorf("first request = %d", code)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.wrap(pathHealthz, false, func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != 500 {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	_, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})
	}
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	q := snap.Routes["/v1/query"]
	if q.Count != 3 {
		t.Errorf("query route count = %d, want 3", q.Count)
	}
	if q.P50Micros <= 0 || q.P99Micros < q.P50Micros {
		t.Errorf("histogram quantiles look wrong: p50=%v p99=%v", q.P50Micros, q.P99Micros)
	}
	ev := snap.Evidence["bird"]
	if ev.Variant != string(seed.VariantGPT) {
		t.Errorf("evidence variant = %q", ev.Variant)
	}
	if ev.CacheHits < 2 {
		t.Errorf("repeat questions produced %d evidence cache hits, want >= 2", ev.CacheHits)
	}
	pc := snap.PlanCache["bird"]
	if pc.Hits+pc.Misses == 0 {
		t.Error("plan cache saw no traffic despite executed queries")
	}
	if snap.Admission.Admitted != 3 {
		t.Errorf("admitted = %d, want 3", snap.Admission.Admitted)
	}
}

// TestQueryGoldenEquivalence is the serving acceptance test: for the same
// (db, question, variant), POST /v1/query must return exactly the
// evidence, SQL and rows the offline pipeline produces — evidence checked
// against experiments.Env's evidence service, SQL and rows against the
// same generator constructor run offline.
func TestQueryGoldenEquivalence(t *testing.T) {
	env := experiments.NewEnv(7)
	defer env.Close()
	_, ts := newTestServer(t, nil)
	offlineGen, err := GeneratorFor("codes-15b", env.Client)
	if err != nil {
		t.Fatal(err)
	}

	checked := 0
	for i := 0; i < len(env.BIRD.Dev); i += 9 {
		e := env.BIRD.Dev[i]
		resp, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: e.DB, Question: e.Question})

		offlineEv, err := env.BIRDSeedEvidenceFor(context.Background(), seed.VariantGPT, e.DB, e.Question)
		if err != nil {
			t.Fatalf("%s: offline evidence: %v", e.ID, err)
		}
		offlineSQL, genErr := offlineGen.Generate(texttosql.Task{
			Example: e, DB: env.BIRD.DBs[e.DB], Evidence: offlineEv,
		})
		if genErr != nil {
			if resp.StatusCode == 200 {
				t.Errorf("%s: offline generation failed (%v) but serving succeeded", e.ID, genErr)
			}
			continue
		}
		offlineRes, execErr := env.BIRD.DBs[e.DB].Engine.Exec(offlineSQL)

		if execErr != nil || offlineRes.Rows == nil {
			if resp.StatusCode == 200 {
				t.Errorf("%s: offline execution failed (%v) but serving returned 200", e.ID, execErr)
			}
			continue
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: serving = %d (%s) but offline pipeline succeeded", e.ID, resp.StatusCode, data)
			continue
		}
		var qr api.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if qr.Evidence != offlineEv {
			t.Errorf("%s: evidence diverged\n  online:  %q\n  offline: %q", e.ID, qr.Evidence, offlineEv)
		}
		if qr.SQL != offlineSQL {
			t.Errorf("%s: SQL diverged\n  online:  %q\n  offline: %q", e.ID, qr.SQL, offlineSQL)
		}
		offlineRows := renderRows(offlineRes.Rows, len(offlineRes.Rows.Data))
		onlineRows := qr.Rows
		if onlineRows == nil {
			onlineRows = [][]any{}
		}
		if offlineRows == nil {
			offlineRows = [][]any{}
		}
		if qr.RowCount != len(offlineRes.Rows.Data) || !reflect.DeepEqual(onlineRows, offlineRows) {
			t.Errorf("%s: rows diverged (online %d, offline %d)", e.ID, qr.RowCount, len(offlineRes.Rows.Data))
		}
		if qr.Cost != offlineRes.Cost {
			t.Errorf("%s: cost diverged (online %d, offline %d)", e.ID, qr.Cost, offlineRes.Cost)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d examples fully checked — sample too thin to call it equivalence", checked)
	}
}

// TestBatchedServingBeatsSerialPipeline is the load-harness acceptance
// test: at concurrency 16 on a warm evidence cache, micro-batched serving
// must sustain higher QPS than per-request serial pipeline calls — the
// pre-serving status quo, where every request pays a fresh evidence
// generation with no cache, no batching and no concurrency. This is the
// paper's practical-usability claim measured end to end.
func TestBatchedServingBeatsSerialPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("load measurement; skipped in -short")
	}
	_, ts := newTestServer(t, func(cfg *Config) {
		cfg.BatchMax = 16 // match client concurrency: saturated batches flush on size
	})
	corpus := testCorpus(t)
	var payloads [][]byte
	for i := 0; i < len(corpus.Dev); i += 2 {
		e := corpus.Dev[i]
		body, _ := json.Marshal(api.QueryRequest{DB: e.DB, Question: e.Question})
		payloads = append(payloads, body)
	}
	ctx := context.Background()
	// Warm pass: fill the evidence cache and build every session.
	if _, err := RunLoad(ctx, LoadOptions{BaseURL: ts.URL, Payloads: payloads, Concurrency: 8}); err != nil {
		t.Fatal(err)
	}
	batched, err := RunLoad(ctx, LoadOptions{BaseURL: ts.URL, Payloads: payloads, Concurrency: 16, Total: 2 * len(payloads)})
	if err != nil {
		t.Fatal(err)
	}
	// A few dev examples legitimately 422 (the generator emits SQL that
	// does not execute); that is serving behaviour, not load failure. It
	// must stay a small minority.
	if batched.Errors*10 > batched.Requests {
		t.Fatalf("load error rate too high: %d/%d", batched.Errors, batched.Requests)
	}
	serial, err := RunSerialBaseline(corpus, llm.NewSimulator(), seed.VariantGPT, "codes-15b", 64)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pipeline serial: %.0f qps (p50 %.0fus); batched c=16: %.0f qps (p50 %.0fus p99 %.0fus)",
		serial.QPS, serial.P50Micros, batched.QPS, batched.P50Micros, batched.P99Micros)
	// Require a real margin, not a coin flip: measured ~8x on one CPU,
	// so 1.5x leaves ample room for noisy machines.
	if batched.QPS <= 1.5*serial.QPS {
		t.Errorf("batched serving (%.0f qps) does not beat per-request serial pipeline calls (%.0f qps) by >= 1.5x",
			batched.QPS, serial.QPS)
	}
}

// TestListingsDoNotBuildSessions pins the lazy-registry contract: the
// discovery routes serve static corpus data and must not trigger session
// builds (retriever warm-up) for every database they list.
func TestListingsDoNotBuildSessions(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	for _, url := range []string{ts.URL + "/v1/dbs", ts.URL + "/v1/examples?db=financial&limit=3"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d", url, resp.StatusCode)
		}
	}
	if loaded := srv.reg.Loaded(); loaded != 0 {
		t.Errorf("listings built %d sessions, want 0", loaded)
	}
}

func TestNewRejectsUnknownVariant(t *testing.T) {
	_, err := New(Config{
		Corpora: []*dataset.Corpus{testCorpus(t)},
		Client:  llm.NewSimulator(),
		Variant: "seed_deepsek", // typo must fail loudly, not fall back to GPT
		Logger:  quietLogger(),
	})
	if err == nil {
		t.Fatal("New accepted an unknown variant")
	}
}

func TestGeneratorForRejectsUnknown(t *testing.T) {
	client := llm.NewSimulator()
	for _, name := range []string{"codes-15b", "codes-7b", "codes-3b", "codes-1b", "chess", "chess-sscg", "rsl-sql", "dail-sql", "c3"} {
		gen, err := GeneratorFor(name, client)
		if err != nil || gen == nil {
			t.Errorf("GeneratorFor(%q) = %v", name, err)
		}
	}
	if _, err := GeneratorFor("gpt-17", client); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestServerCloseIdempotentAndRejectsAfter(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	e := testCorpus(t).Dev[0]
	resp, data := postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: e.Question})
	if resp.StatusCode != 200 {
		t.Fatalf("pre-close request = %d: %s", resp.StatusCode, data)
	}
	srv.Close()
	srv.Close() // idempotent
	resp, _ = postJSON(t, ts.URL+"/v1/evidence", api.QueryRequest{DB: e.DB, Question: fmt.Sprintf("%s (uncached)", e.Question)})
	if resp.StatusCode != 503 {
		t.Errorf("evidence after Close = %d, want 503", resp.StatusCode)
	}
}

// TestQueryExposesEvidenceTrace: /v1/query and /v1/evidence responses
// carry the stage-graph provenance trace; a repeat question is flagged as
// an evidence-cache hit while keeping the original generation's trace.
func TestQueryExposesEvidenceTrace(t *testing.T) {
	_, ts := newTestServer(t, nil)
	ex := testCorpus(t).Dev[0]
	body := api.QueryRequest{DB: ex.DB, Question: ex.Question}

	resp, data := postJSON(t, ts.URL+"/v1/query", body)
	if resp.StatusCode != 200 {
		t.Fatalf("query = %d: %s", resp.StatusCode, data)
	}
	var qr api.QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.EvidenceTrace == nil {
		t.Fatal("query response has no evidence_trace")
	}
	stages := make(map[string]bool)
	for _, st := range qr.EvidenceTrace.Stages {
		stages[st.Stage] = true
	}
	for _, want := range []string{seed.StageKeywords, seed.StageSamples, seed.StageSchema, seed.StageShots, seed.StageGenerate} {
		if !stages[want] {
			t.Errorf("trace missing stage %s: %+v", want, qr.EvidenceTrace.Stages)
		}
	}
	if qr.EvidenceTrace.Stage(seed.StageGenerate).Tokens == 0 {
		t.Error("generate stage reports no tokens")
	}

	// Repeat: the evidence cache answers, but the trace survives.
	resp, data = postJSON(t, ts.URL+"/v1/query", body)
	if resp.StatusCode != 200 {
		t.Fatalf("repeat query = %d", resp.StatusCode)
	}
	var warm api.QueryResponse
	if err := json.Unmarshal(data, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.EvidenceCacheHit {
		t.Error("repeat query not flagged evidence_cache_hit")
	}
	if warm.EvidenceTrace == nil || len(warm.EvidenceTrace.Stages) == 0 {
		t.Error("cache hit lost the evidence trace")
	}

	// /v1/evidence carries the same provenance.
	resp, data = postJSON(t, ts.URL+"/v1/evidence", body)
	if resp.StatusCode != 200 {
		t.Fatalf("evidence = %d", resp.StatusCode)
	}
	var er api.EvidenceResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Trace == nil || !er.CacheHit {
		t.Errorf("/v1/evidence trace=%v cacheHit=%v, want preserved trace and cache hit", er.Trace != nil, er.CacheHit)
	}
}

// TestMetricsExposeStagesAndBatcherOccupancy: /metrics surfaces the
// per-stage latency aggregation next to the micro-batcher's flush split
// and mean occupancy.
func TestMetricsExposeStagesAndBatcherOccupancy(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	// Drive a few concurrent queries through the batcher.
	exs := testCorpus(t).Dev
	if len(exs) > 8 {
		exs = exs[:8]
	}
	var wg sync.WaitGroup
	for _, ex := range exs {
		wg.Add(1)
		go func(ex dataset.Example) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{DB: ex.DB, Question: ex.Question})
			if resp.StatusCode != 200 {
				t.Errorf("query %s = %d: %s", ex.ID, resp.StatusCode, data)
			}
		}(ex)
	}
	wg.Wait()

	snap := srv.Metrics()
	ev, ok := snap.Evidence["bird"]
	if !ok {
		t.Fatal("no bird evidence snapshot")
	}
	if len(ev.Stages) == 0 {
		t.Fatal("/metrics evidence snapshot has no per-stage aggregation")
	}
	var sawGenerate bool
	for _, sa := range ev.Stages {
		if sa.Count <= 0 {
			t.Errorf("stage %s count = %d", sa.Stage, sa.Count)
		}
		if sa.Stage == seed.StageGenerate {
			sawGenerate = true
			if sa.Tokens == 0 {
				t.Error("generate stage aggregated no tokens")
			}
		}
	}
	if !sawGenerate {
		t.Errorf("stages missing generate: %+v", ev.Stages)
	}

	b, ok := snap.Batcher["bird"]
	if !ok {
		t.Fatal("no bird batcher snapshot")
	}
	if b.MaxSize != 16 {
		t.Errorf("batcher max_size = %d, want 16", b.MaxSize)
	}
	if b.Batches > 0 {
		if b.MeanOccupancy <= 0 || b.MeanOccupancy > 1 {
			t.Errorf("mean occupancy = %.3f, want in (0, 1]", b.MeanOccupancy)
		}
		if got := b.AvgFill / float64(b.MaxSize); !floatsClose(got, b.MeanOccupancy) {
			t.Errorf("mean occupancy %.3f != avg_fill/max_size %.3f", b.MeanOccupancy, got)
		}
	}
	if b.Batches != b.SizeFlushes+b.WindowFlushes {
		t.Errorf("batches %d != size %d + window %d flushes", b.Batches, b.SizeFlushes, b.WindowFlushes)
	}

	// The JSON body carries the same fields.
	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"evidence", "batcher"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/metrics body missing %q", key)
		}
	}
	var evRaw map[string]EvidenceSnapshot
	if err := json.Unmarshal(raw["evidence"], &evRaw); err != nil {
		t.Fatal(err)
	}
	if len(evRaw["bird"].Stages) == 0 {
		t.Error("/metrics JSON lost the stage aggregation")
	}
}

func floatsClose(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
