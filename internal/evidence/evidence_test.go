package evidence

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseShapes(t *testing.T) {
	ev := "weekly issuance refers to frequency = 'POPLATEK TYDNE'; element = 'cl' means Chlorine; 'F' stands for female; join on a.x = b.x; stray text"
	clauses := Parse(ev)
	if len(clauses) != 5 {
		t.Fatalf("clauses = %d, want 5", len(clauses))
	}
	if clauses[0].Term != "weekly issuance" || clauses[0].Body != "frequency = 'POPLATEK TYDNE'" {
		t.Errorf("refers-to parse: %+v", clauses[0])
	}
	if clauses[1].Term != "Chlorine" || clauses[1].Body != "element = 'cl'" {
		t.Errorf("means parse: %+v", clauses[1])
	}
	if clauses[2].Term != "female" || clauses[2].Body != "'F'" {
		t.Errorf("stands-for parse: %+v", clauses[2])
	}
	if !clauses[3].Join || clauses[3].Body != "a.x = b.x" {
		t.Errorf("join parse: %+v", clauses[3])
	}
	if clauses[4].Term != "" || clauses[4].Body != "stray text" {
		t.Errorf("fallback parse: %+v", clauses[4])
	}
}

func TestComposeRoundTrip(t *testing.T) {
	ev := "weekly issuance refers to frequency = 'POPLATEK TYDNE'; join on a.x = b.x"
	if got := Compose(Parse(ev)); got != ev {
		t.Errorf("round trip:\n got %q\nwant %q", got, ev)
	}
}

// Property: Parse(Compose(Parse(x))) is stable (idempotent normal form).
func TestParseComposeIdempotent(t *testing.T) {
	f := func(term, body string) bool {
		term = strings.ReplaceAll(term, ";", " ")
		body = strings.ReplaceAll(body, ";", " ")
		ev := term + " refers to " + body
		once := Compose(Parse(ev))
		twice := Compose(Parse(once))
		return once == twice
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStripJoins(t *testing.T) {
	ev := "magnet refers to Magnet = 1; join on satscores.cds = schools.CDSCode; x refers to y = 'z'"
	stripped := StripJoins(ev)
	if strings.Contains(stripped, "join on") {
		t.Errorf("join survived strip: %q", stripped)
	}
	if !strings.Contains(stripped, "Magnet = 1") || !strings.Contains(stripped, "y = 'z'") {
		t.Errorf("non-join clauses lost: %q", stripped)
	}
	if !HasJoins(ev) || HasJoins(stripped) {
		t.Error("HasJoins misreports")
	}
}

func TestValueLiteral(t *testing.T) {
	cases := []struct {
		body string
		want string
		ok   bool
	}{
		{"frequency = 'POPLATEK TYDNE'", "'POPLATEK TYDNE'", true},
		{"Magnet = 1", "1", true},
		{"hct >= 52", "", false},
		{"duration / 12", "", false},
		{"full_name", "", false},
		{"a != 'b'", "", false},
	}
	for _, c := range cases {
		got, ok := Clause{Body: c.body}.ValueLiteral()
		if ok != c.ok || got != c.want {
			t.Errorf("ValueLiteral(%q) = %q,%v want %q,%v", c.body, got, ok, c.want, c.ok)
		}
	}
}

func TestColumnSide(t *testing.T) {
	if got := (Clause{Body: "district.A2 = 'Jesenik'"}).ColumnSide(); got != "district.A2" {
		t.Errorf("ColumnSide = %q", got)
	}
	if got := (Clause{Body: "full_name"}).ColumnSide(); got != "full_name" {
		t.Errorf("ColumnSide bare = %q", got)
	}
	if got := (Clause{Body: "hct >= 52"}).ColumnSide(); got != "hct" {
		t.Errorf("ColumnSide inequality = %q", got)
	}
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		clause Clause
		want   string
	}{
		{Clause{Term: "duration in years", Body: "duration / 12"}, CategoryNumeric},
		{Clause{Term: "exceeded the normal range", Body: "hct >= 52"}, CategoryDomain},
		{Clause{Term: "restricted", Body: "status = 'Restricted'"}, CategorySynonym},
		{Clause{Term: "female", Body: "gender = 'F'"}, CategorySynonym},
		{Clause{Term: "weekly issuance", Body: "frequency = 'POPLATEK TYDNE'"}, CategoryValue},
		{Clause{Body: "a.x = b.x", Join: true}, CategoryJoin},
	}
	for _, c := range cases {
		if got := Categorize(c.clause); got != c.want {
			t.Errorf("Categorize(%v) = %s, want %s", c.clause, got, c.want)
		}
	}
}

func TestBestMatch(t *testing.T) {
	clauses := Parse("weekly issuance refers to frequency = 'POPLATEK TYDNE'; women refers to gender = 'F'; duration in years refers to duration / 12")
	c, ok := BestMatch(clauses, "the weekly issuance accounts", 0.5)
	if !ok || c.Term != "weekly issuance" {
		t.Errorf("BestMatch weekly = %+v, %v", c, ok)
	}
	c, ok = BestMatch(clauses, "women", 0.5)
	if !ok || c.Body != "gender = 'F'" {
		t.Errorf("BestMatch women = %+v, %v", c, ok)
	}
	if _, ok := BestMatch(clauses, "carcinogenic molecules", 0.5); ok {
		t.Error("unrelated phrase should not match")
	}
	// Typo tolerance: a dropped letter still matches.
	c, ok = BestMatch(clauses, "weekly issunce", 0.5)
	if !ok || c.Term != "weekly issuance" {
		t.Errorf("typo should still match: %+v, %v", c, ok)
	}
}

func TestBestMatchSkipsJoins(t *testing.T) {
	clauses := Parse("join on account.account_id = loan.account_id")
	if _, ok := BestMatch(clauses, "account", 0.1); ok {
		t.Error("join clauses must not resolve atom terms")
	}
}

func TestCategoryCensus(t *testing.T) {
	census := CategoryCensus([]string{
		"women refers to gender = 'F'",
		"weekly issuance refers to frequency = 'POPLATEK TYDNE'; duration in years refers to duration / 12",
	})
	if census[CategorySynonym] != 1 || census[CategoryValue] != 1 || census[CategoryNumeric] != 1 {
		t.Errorf("census = %v", census)
	}
}

func TestParseEmpty(t *testing.T) {
	if got := Parse(""); got != nil {
		t.Errorf("Parse empty = %v", got)
	}
	if got := Parse(" ; ; "); got != nil {
		t.Errorf("Parse blanks = %v", got)
	}
}
