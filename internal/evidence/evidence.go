// Package evidence models BIRD-style evidence strings: semicolon-separated
// clauses such as "weekly issuance refers to frequency = 'POPLATEK TYDNE'".
// It parses them into structured clauses, classifies them into BIRD's four
// knowledge categories, extracts the SQL-fragment payloads that text-to-SQL
// generators consume, and supports the join-clause stripping behind the
// paper's SEED_revised variant (Table VI/VII).
package evidence

import (
	"strings"

	"repro/internal/textutil"
)

// Clause is one parsed evidence clause.
type Clause struct {
	// Term is the natural-language side ("weekly issuance").
	Term string
	// Body is the database side ("frequency = 'POPLATEK TYDNE'").
	Body string
	// Join marks join-path clauses ("join on a.x = b.x"), the format
	// difference between SEED_deepseek and BIRD evidence.
	Join bool
}

// Category names for Categorize, following BIRD's taxonomy (paper §II-A).
const (
	CategoryNumeric      = "numeric-reasoning"
	CategoryDomain       = "domain"
	CategorySynonym      = "synonym"
	CategoryValue        = "value-illustration"
	CategoryJoin         = "join-path"
	CategoryUnclassified = "unclassified"
)

// Parse splits an evidence string into clauses. Recognised shapes:
//
//	"<term> refers to <body>"
//	"<body> means <term>"
//	"<body> stands for <term>"
//	"join on <body>"
//
// Anything else becomes a term-less clause carrying the raw text as Body.
func Parse(ev string) []Clause {
	var out []Clause
	for _, raw := range strings.Split(ev, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		lower := strings.ToLower(part)
		switch {
		case strings.HasPrefix(lower, "join on "):
			out = append(out, Clause{Body: strings.TrimSpace(part[len("join on "):]), Join: true})
		case strings.Contains(part, " refers to "):
			i := strings.Index(part, " refers to ")
			out = append(out, Clause{
				Term: strings.TrimSpace(part[:i]),
				Body: strings.TrimSpace(part[i+len(" refers to "):]),
			})
		case strings.Contains(part, " stands for "):
			i := strings.Index(part, " stands for ")
			out = append(out, Clause{
				Term: strings.TrimSpace(part[i+len(" stands for "):]),
				Body: strings.TrimSpace(part[:i]),
			})
		case strings.Contains(part, " means "):
			i := strings.Index(part, " means ")
			out = append(out, Clause{
				Term: strings.TrimSpace(part[i+len(" means "):]),
				Body: strings.TrimSpace(part[:i]),
			})
		default:
			out = append(out, Clause{Body: part})
		}
	}
	return out
}

// String renders the clause back to BIRD's canonical shape.
func (c Clause) String() string {
	if c.Join {
		return "join on " + c.Body
	}
	if c.Term == "" {
		return c.Body
	}
	return c.Term + " refers to " + c.Body
}

// Compose joins clauses back into an evidence string.
func Compose(clauses []Clause) string {
	parts := make([]string, 0, len(clauses))
	for _, c := range clauses {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, "; ")
}

// StripJoins removes join-path clauses, producing the SEED_revised format
// the paper builds with DeepSeek-V3 (Table VI).
func StripJoins(ev string) string {
	clauses := Parse(ev)
	kept := clauses[:0]
	for _, c := range clauses {
		if !c.Join {
			kept = append(kept, c)
		}
	}
	return Compose(kept)
}

// HasJoins reports whether the evidence contains any join-path clause.
func HasJoins(ev string) bool {
	for _, c := range Parse(ev) {
		if c.Join {
			return true
		}
	}
	return false
}

// ValueLiteral extracts the literal from an equality-shaped body like
// "frequency = 'POPLATEK TYDNE'" or "Magnet = 1". The literal keeps its
// quoting so it can be substituted into a SQL value slot directly.
func (c Clause) ValueLiteral() (string, bool) {
	i := strings.LastIndex(c.Body, "=")
	if i < 0 {
		return "", false
	}
	// Reject inequality bodies (>=, <=, !=): those are predicates.
	if i > 0 && (c.Body[i-1] == '>' || c.Body[i-1] == '<' || c.Body[i-1] == '!') {
		return "", false
	}
	lit := strings.TrimSpace(c.Body[i+1:])
	if lit == "" {
		return "", false
	}
	return lit, true
}

// ColumnSide extracts the column reference from an equality-shaped body,
// or the whole body when there is no equals sign (already a bare column).
func (c Clause) ColumnSide() string {
	i := strings.IndexAny(c.Body, "=<>")
	if i < 0 {
		return strings.TrimSpace(c.Body)
	}
	return strings.TrimSpace(c.Body[:i])
}

// Categorize assigns the clause to a BIRD knowledge category.
func Categorize(c Clause) string {
	if c.Join {
		return CategoryJoin
	}
	body := c.Body
	if strings.ContainsAny(body, "+*/") || strings.Contains(body, " - ") {
		return CategoryNumeric
	}
	if strings.Contains(body, ">") || strings.Contains(body, "<") {
		return CategoryDomain
	}
	if lit, ok := c.ValueLiteral(); ok {
		val := strings.Trim(lit, "'")
		// Synonym when the term and the stored value are lexically close
		// ("female" -> 'F', "restricted" -> 'Restricted') or related
		// through the world-knowledge dictionary ("women" -> 'F'); value
		// illustration when they are unrelated codes.
		for _, w := range textutil.ContentWords(c.Term) {
			candidates := append([]string{w}, textutil.Synonyms(w)...)
			for _, cand := range candidates {
				if textutil.Similarity(cand, val) >= 0.5 {
					return CategorySynonym
				}
				if len(val) == 1 && strings.HasPrefix(cand, strings.ToLower(val)) {
					return CategorySynonym
				}
			}
		}
		return CategoryValue
	}
	if c.Term == "" {
		return CategoryUnclassified
	}
	return CategoryValue
}

// BestMatch finds the clause whose term best matches the given phrase,
// requiring a minimum token-level similarity. It is the lookup generators
// perform when resolving a knowledge atom from provided evidence.
func BestMatch(clauses []Clause, phrase string, minScore float64) (Clause, bool) {
	best := -1
	bestScore := 0.0
	for i, c := range clauses {
		if c.Join || c.Term == "" {
			continue
		}
		s := termSimilarity(phrase, c.Term)
		if s > bestScore {
			bestScore = s
			best = i
		}
	}
	if best < 0 || bestScore < minScore {
		return Clause{}, false
	}
	return clauses[best], true
}

// termSimilarity scores two phrases by stemmed-token overlap with a fuzzy
// fallback for near-miss tokens (typos) and world-knowledge synonym
// expansion ("official" matches a clause termed "true").
func termSimilarity(a, b string) float64 {
	ta := stemGroups(a)
	tb := stemGroups(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	matched := 0
	for _, x := range ta {
		if groupsMatch(x, tb) {
			matched++
		}
	}
	da := float64(matched) / float64(len(ta))
	// Also require the clause term to be mostly covered, so a one-word
	// overlap with a long unrelated term does not win.
	matchedB := 0
	for _, y := range tb {
		if groupsMatch(y, ta) {
			matchedB++
		}
	}
	db := float64(matchedB) / float64(len(tb))
	return (da + db) / 2
}

// stemGroups maps each content word to the stem set of itself plus its
// synonyms.
func stemGroups(s string) [][]string {
	words := textutil.ContentWords(s)
	out := make([][]string, 0, len(words))
	for _, w := range words {
		group := []string{textutil.Stem(w)}
		for _, syn := range textutil.Synonyms(w) {
			group = append(group, textutil.Stem(syn))
		}
		out = append(out, group)
	}
	return out
}

// groupsMatch reports whether any stem of group x matches (exactly or
// fuzzily) any stem of any group in ys.
func groupsMatch(x []string, ys [][]string) bool {
	for _, y := range ys {
		for _, xs := range x {
			for _, yst := range y {
				if xs == yst || textutil.Similarity(xs, yst) >= 0.75 {
					return true
				}
			}
		}
	}
	return false
}

// CategoryCensus tallies clause categories across many evidence strings —
// the data behind the Table III breakdown.
func CategoryCensus(evidences []string) map[string]int {
	out := make(map[string]int)
	for _, ev := range evidences {
		for _, c := range Parse(ev) {
			out[Categorize(c)]++
		}
	}
	return out
}
