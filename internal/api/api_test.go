package api

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestWriteErrorEnvelope pins the one error shape every non-2xx response
// carries, across the header combinations the middlewares produce.
func TestWriteErrorEnvelope(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		code       string
		msg        string
		headers    map[string]string
		wantRetry  int64
		wantReqID  string
		wantFields map[string]bool // keys that must be present in the JSON
	}{
		{
			name:   "bad request, no headers",
			status: 400, code: CodeBadRequest, msg: "malformed request body",
			wantFields: map[string]bool{"error": true, "code": true},
		},
		{
			name:   "rate limited with millisecond retry hint",
			status: 429, code: CodeRateLimited, msg: "rate limit exceeded",
			headers: map[string]string{
				"Retry-After":      "1",
				"X-Retry-After-Ms": "37",
				"X-Request-Id":     "req-123",
			},
			wantRetry: 37,
			wantReqID: "req-123",
		},
		{
			name:   "over capacity with only whole-second retry",
			status: 503, code: CodeOverCapacity, msg: "server at capacity",
			headers:   map[string]string{"Retry-After": "2"},
			wantRetry: 2000,
		},
		{
			name:   "panic path keeps request id",
			status: 500, code: CodeInternal, msg: "internal error",
			headers:   map[string]string{"X-Request-Id": "req-panic"},
			wantReqID: "req-panic",
		},
		{
			name:   "client closed request",
			status: StatusClientClosedRequest, code: CodeClientClosed, msg: "client canceled request",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			for k, v := range tc.headers {
				rec.Header().Set(k, v)
			}
			WriteError(rec, tc.status, tc.code, tc.msg)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			var e Error
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
				t.Fatalf("body is not valid JSON: %v\n%s", err, rec.Body.String())
			}
			if e.Error != tc.msg {
				t.Errorf("error = %q, want %q", e.Error, tc.msg)
			}
			if e.Code != tc.code {
				t.Errorf("code = %q, want %q", e.Code, tc.code)
			}
			if e.RetryAfterMs != tc.wantRetry {
				t.Errorf("retry_after_ms = %d, want %d", e.RetryAfterMs, tc.wantRetry)
			}
			if e.RequestID != tc.wantReqID {
				t.Errorf("request_id = %q, want %q", e.RequestID, tc.wantReqID)
			}
			// The wire keys are part of the contract (CI smokes jq them).
			var raw map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
				t.Fatal(err)
			}
			for k := range tc.wantFields {
				if _, ok := raw[k]; !ok {
					t.Errorf("envelope is missing key %q: %s", k, rec.Body.String())
				}
			}
		})
	}
}

// TestQueryResponseWireKeys pins the JSON keys the smokes, benches and
// dashboards consume — especially the new source provenance field, which
// must be present (not omitempty) so clients can always branch on it.
func TestQueryResponseWireKeys(t *testing.T) {
	b, err := json.Marshal(QueryResponse{Source: SourceGenerated})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"db", "example_id", "question", "source", "evidence", "evidence_cache_hit", "sql", "row_count", "cost", "timing"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("QueryResponse is missing wire key %q", key)
		}
	}
	if raw["source"] != SourceGenerated {
		t.Errorf("source = %v, want %q", raw["source"], SourceGenerated)
	}
	if _, ok := raw["memory_confidence"]; ok {
		t.Errorf("memory_confidence should be omitted when zero")
	}
	b, _ = json.Marshal(QueryResponse{Source: SourceMemory, MemoryConfidence: 0.93})
	_ = json.Unmarshal(b, &raw)
	if raw["memory_confidence"] != 0.93 {
		t.Errorf("memory_confidence = %v, want 0.93", raw["memory_confidence"])
	}
}
