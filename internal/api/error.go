package api

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Error codes: machine-readable classifications of every non-2xx answer
// the serving surface emits. Clients branch on Code; Error stays
// human-shaped and free to change.
const (
	// CodeBadRequest covers malformed bodies and missing parameters.
	CodeBadRequest = "bad_request"
	// CodeNotFound covers unknown databases, questions and trace IDs.
	CodeNotFound = "not_found"
	// CodeRateLimited is a token-bucket admission shed (429); honor
	// RetryAfterMs before retrying.
	CodeRateLimited = "rate_limited"
	// CodeOverCapacity is an in-flight-limit admission shed or a draining
	// replica (503); honor RetryAfterMs before retrying.
	CodeOverCapacity = "over_capacity"
	// CodeUnprocessable marks served SQL that failed to parse or execute.
	CodeUnprocessable = "unprocessable"
	// CodeInternal covers handler panics and generation failures.
	CodeInternal = "internal"
	// CodeUpstreamTimeout is an evidence-path deadline expiry (504).
	CodeUpstreamTimeout = "upstream_timeout"
	// CodeUpstreamError is an evidence-path failure that was not a
	// timeout (502), including a router whose replicas all failed.
	CodeUpstreamError = "upstream_error"
	// CodeUnavailable is a shutting-down server (503, not retryable on
	// this replica).
	CodeUnavailable = "unavailable"
	// CodeClientClosed marks a request whose client went away before the
	// answer existed (499-style accounting: not a server fault).
	CodeClientClosed = "client_closed"
	// CodeExhausted is a router that ran out of backend attempts.
	CodeExhausted = "exhausted"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) for requests canceled by the client. It keeps client
// disappearances out of the 5xx accounting that breakers and alerting
// key on.
const StatusClientClosedRequest = 499

// Error is the one JSON envelope every non-2xx response on seedd and
// seedrouter carries. RetryAfterMs mirrors the Retry-After /
// X-Retry-After-Ms headers (kept for compatibility); RequestID mirrors
// X-Request-Id so the failing request is log-joinable from the body
// alone.
type Error struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	RequestID    string `json:"request_id,omitempty"`
}

// WriteError emits the envelope. It reads X-Request-Id and
// X-Retry-After-Ms (falling back to Retry-After seconds) from the
// response headers already set by the middleware, so the body and the
// headers cannot disagree.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	e := Error{
		Error:     msg,
		Code:      code,
		RequestID: w.Header().Get("X-Request-Id"),
	}
	if v := w.Header().Get("X-Retry-After-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
			e.RetryAfterMs = ms
		}
	} else if v := w.Header().Get("Retry-After"); v != "" {
		if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
			e.RetryAfterMs = secs * 1000
		}
	}
	WriteJSON(w, status, e)
}

// WriteJSON writes v as a JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
