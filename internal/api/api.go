// Package api holds the typed request/response shapes of the serving
// HTTP surface — the one definition that seedd (internal/server), the
// fleet router (internal/fleet, cmd/seedrouter), the load generators and
// the bench harnesses all marshal through. Before this package each of
// those re-declared the wire structs ad hoc; a field added in one place
// silently vanished everywhere else.
//
// The package is deliberately leaf-shaped: it imports only the pipeline
// trace type (part of the evidence provenance contract) so every layer of
// the stack can depend on it without cycles.
package api

import "repro/internal/pipeline"

// Source values for QueryResponse.Source: where the served SQL came from.
const (
	// SourceMemory marks a confidence-gated query-memory hit: the SQL was
	// adapted from a past successful pattern with zero pipeline/LLM calls.
	SourceMemory = "memory"
	// SourceCache marks a full generation ride on an evidence-cache hit.
	SourceCache = "cache"
	// SourceGenerated marks a cold full-pipeline generation.
	SourceGenerated = "generated"
)

// QueryRequest is the POST /v1/query (and /v1/evidence) request body.
type QueryRequest struct {
	// DB is the target database name.
	DB string `json:"db"`
	// Question is the natural-language question. Lookup is
	// case-insensitive and whitespace-tolerant.
	Question string `json:"question"`
	// ID optionally names the corpus example directly instead of (or as
	// well as) the question text.
	ID string `json:"id,omitempty"`
	// MaxRows truncates the returned rows when > 0. Execution and cost
	// accounting always cover the full result.
	MaxRows int `json:"max_rows,omitempty"`
}

// QueryTiming breaks a /v1/query response down by serving phase, in
// microseconds.
type QueryTiming struct {
	// MemoryMicros is the query-memory lookup (and, on a hit, verify)
	// time; zero when the server runs without memory.
	MemoryMicros   int64 `json:"memory_us,omitempty"`
	EvidenceMicros int64 `json:"evidence_us"`
	GenerateMicros int64 `json:"generate_us"`
	PrepareMicros  int64 `json:"prepare_us"`
	ExecuteMicros  int64 `json:"execute_us"`
}

// QueryResponse is the /v1/query response body.
type QueryResponse struct {
	DB        string `json:"db"`
	ExampleID string `json:"example_id"`
	Question  string `json:"question"`
	// Source is the serving provenance: SourceMemory (query-memory hit,
	// no pipeline/LLM work), SourceCache (generation over an
	// evidence-cache hit) or SourceGenerated (cold full pipeline).
	Source string `json:"source"`
	// MemoryConfidence is the serving pattern's confidence score when
	// Source is SourceMemory; omitted otherwise.
	MemoryConfidence float64 `json:"memory_confidence,omitempty"`
	// Evidence is the SEED-generated evidence the generator consumed (on
	// a memory hit: the evidence stored with the pattern).
	Evidence string `json:"evidence"`
	// EvidenceTrace is the stage-graph provenance of the evidence: one
	// entry per pipeline stage with memo-hit flag, wall time and token
	// spend. On an evidence-cache hit it describes the original
	// generation; memory hits carry none (no pipeline ran).
	EvidenceTrace *pipeline.Trace `json:"evidence_trace,omitempty"`
	// EvidenceCacheHit reports the evidence came from the evidence cache
	// rather than a fresh pipeline run.
	EvidenceCacheHit bool `json:"evidence_cache_hit"`
	// SQL is the served query.
	SQL string `json:"sql"`
	// Columns and Rows are the execution result; NULLs are JSON nulls.
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// RowCount is the full result size, even when Rows is truncated.
	RowCount int `json:"row_count"`
	// Truncated reports MaxRows truncation.
	Truncated bool `json:"truncated,omitempty"`
	// Cost is the engine's logical rows-touched charge.
	Cost   int64       `json:"cost"`
	Timing QueryTiming `json:"timing"`
}

// EvidenceResponse is the /v1/evidence response body.
type EvidenceResponse struct {
	DB       string `json:"db"`
	Question string `json:"question"`
	Variant  string `json:"variant"`
	Evidence string `json:"evidence"`
	// Trace is the stage-graph provenance of the evidence (see
	// QueryResponse.EvidenceTrace).
	Trace    *pipeline.Trace `json:"evidence_trace,omitempty"`
	CacheHit bool            `json:"evidence_cache_hit"`
	Micros   int64           `json:"duration_us"`
}

// DBInfo is one entry of the /v1/dbs listing.
type DBInfo struct {
	Name     string `json:"name"`
	Corpus   string `json:"corpus"`
	Tables   int    `json:"tables"`
	Examples int    `json:"examples"`
}

// DBsResponse is the GET /v1/dbs response body.
type DBsResponse struct {
	DBs []DBInfo `json:"dbs"`
}

// ExampleInfo is one entry of the /v1/examples listing.
type ExampleInfo struct {
	ID       string `json:"id"`
	Question string `json:"question"`
}

// ExamplesResponse is the GET /v1/examples response body.
type ExamplesResponse struct {
	DB       string        `json:"db"`
	Total    int           `json:"total"`
	Examples []ExampleInfo `json:"examples"`
}
