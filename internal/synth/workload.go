package synth

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// Query is one synthesized question/SQL pair, Text2SQL-Flow style: a
// template instantiated with values that actually occur in the generated
// tables, so every query is executable and (usually) non-empty.
type Query struct {
	Question string
	SQL      string
	// Paraphrases are alternative phrasings of Question with the same
	// intent and the same literals — the workload the query-memory
	// benchmark replays to measure semantic (not string-equal) matching.
	Paraphrases []string
}

// Workload synthesizes n question/SQL pairs over the database's generated
// values. Each candidate is validated by execution before it is accepted;
// templates that cannot be instantiated against the schema are skipped.
// Deterministic under seed, independent of n's relation to table sizes.
func Workload(db *schema.DB, n int, seed uint64) ([]Query, error) {
	rng := llm.NewRand(mix64(seed ^ 0x776f726b6c6f6164)) // "workload"
	tables := db.Engine.Tables()
	if len(tables) == 0 {
		return nil, fmt.Errorf("synth: workload over empty database %s", db.Name)
	}

	var out []Query
	seen := make(map[string]struct{})
	// Bounded attempts so a degenerate schema terminates rather than spins.
	for attempts := 0; len(out) < n && attempts < n*40; attempts++ {
		t := tables[rng.Intn(len(tables))]
		if len(t.Rows) == 0 {
			continue
		}
		var q Query
		var ok bool
		switch rng.Intn(6) {
		case 0:
			q, ok = countEqQuery(db, t, rng)
		case 1:
			q, ok = sumWhereQuery(db, t, rng)
		case 2:
			q, ok = avgQuery(db, t, rng)
		case 3:
			q, ok = rangeCountQuery(db, t, rng)
		case 4:
			q, ok = joinCountQuery(db, t, rng)
		case 5:
			q, ok = topKQuery(db, t, rng)
		}
		if !ok {
			continue
		}
		if _, dup := seen[q.SQL]; dup {
			continue
		}
		if _, err := db.Engine.Query(q.SQL); err != nil {
			return nil, fmt.Errorf("synth: workload emitted invalid SQL %q: %w", q.SQL, err)
		}
		seen[q.SQL] = struct{}{}
		out = append(out, q)
	}
	if len(out) < n {
		return nil, fmt.Errorf("synth: only synthesized %d/%d workload queries for %s", len(out), n, db.Name)
	}
	return out, nil
}

// ToExamples converts a workload into dataset examples (no knowledge
// atoms: the template is already the gold SQL), ready for retrieval
// pipelines and the serving benchmark.
func ToExamples(dbName string, qs []Query) ([]dataset.Example, error) {
	out := make([]dataset.Example, len(qs))
	for i, q := range qs {
		e := dataset.Example{
			ID:          fmt.Sprintf("%s-synth-%04d", dbName, i),
			DB:          dbName,
			Question:    q.Question,
			SQLTemplate: q.SQL,
		}
		if err := e.Finalize(); err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// ParaphraseExamples flattens each query's paraphrases into their own
// dataset examples — same gold SQL, IDs suffixed -pN — so a serving
// corpus can expose the paraphrased workload the query memory is
// benchmarked on.
func ParaphraseExamples(dbName string, qs []Query) ([]dataset.Example, error) {
	var out []dataset.Example
	for i, q := range qs {
		for j, ph := range q.Paraphrases {
			e := dataset.Example{
				ID:          fmt.Sprintf("%s-synth-%04d-p%d", dbName, i, j),
				DB:          dbName,
				Question:    ph,
				SQLTemplate: q.SQL,
			}
			if err := e.Finalize(); err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// ToCorpus wraps a generated database and its workload as a corpus: first
// half train, second half dev — the shape the serving stack consumes.
func ToCorpus(db *schema.DB, qs []Query) (*dataset.Corpus, error) {
	examples, err := ToExamples(db.Name, qs)
	if err != nil {
		return nil, err
	}
	half := len(examples) / 2
	return &dataset.Corpus{
		Name:  "synth",
		DBs:   map[string]*schema.DB{db.Name: db},
		Train: examples[:half],
		Dev:   examples[half:],
	}, nil
}

// fullName resolves a column's natural-language name from the description
// files, falling back to the raw column name.
func fullName(db *schema.DB, table, col string) string {
	if doc, ok := db.Doc(table); ok {
		if cd, ok := doc.ColumnDoc(col); ok && cd.FullName != "" {
			return cd.FullName
		}
	}
	return col
}

// sampleValue picks a non-NULL value of one column from the generated rows.
func sampleValue(t *sqlengine.Table, colIdx int, rng *llm.Rand) (sqlengine.Value, bool) {
	for tries := 0; tries < 8; tries++ {
		v := t.Rows[rng.Intn(len(t.Rows))][colIdx]
		if !v.IsNull() {
			return v, true
		}
	}
	return sqlengine.Value{}, false
}

// sqlLiteral renders a value as a SQL literal, escaping quotes.
func sqlLiteral(v sqlengine.Value) string {
	if v.Kind == sqlengine.KindText {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.AsText()
}

// pickColumn returns a random column index satisfying pred, or -1.
func pickColumn(t *sqlengine.Table, rng *llm.Rand, pred func(sqlengine.Column) bool) int {
	var cands []int
	for i, c := range t.Columns {
		if pred(c) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[rng.Intn(len(cands))]
}

func isText(c sqlengine.Column) bool { return strings.EqualFold(c.Type, "TEXT") }
func isNumeric(c sqlengine.Column) bool {
	return strings.EqualFold(c.Type, "INTEGER") || strings.EqualFold(c.Type, "REAL")
}

func countEqQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	ci := pickColumn(t, rng, func(c sqlengine.Column) bool { return isText(c) && !c.PrimaryKey })
	if ci < 0 {
		return Query{}, false
	}
	v, ok := sampleValue(t, ci, rng)
	if !ok {
		return Query{}, false
	}
	col := t.Columns[ci].Name
	full, lit := fullName(db, t.Name, col), sqlLiteral(v)
	return Query{
		Question: fmt.Sprintf("How many rows in %s have %s equal to %s?", t.Name, full, lit),
		SQL:      fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = %s", t.Name, col, lit),
		Paraphrases: []string{
			fmt.Sprintf("Count the rows in %s where %s is %s.", t.Name, full, lit),
			fmt.Sprintf("In %s, how many rows have a %s of %s?", t.Name, full, lit),
			fmt.Sprintf("What is the number of %s rows whose %s equals %s?", t.Name, full, lit),
		},
	}, true
}

func sumWhereQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	ni := pickColumn(t, rng, func(c sqlengine.Column) bool { return isNumeric(c) && !c.PrimaryKey })
	ti := pickColumn(t, rng, func(c sqlengine.Column) bool { return isText(c) && !c.PrimaryKey })
	if ni < 0 || ti < 0 {
		return Query{}, false
	}
	v, ok := sampleValue(t, ti, rng)
	if !ok {
		return Query{}, false
	}
	num, txt := t.Columns[ni].Name, t.Columns[ti].Name
	fnum, ftxt, lit := fullName(db, t.Name, num), fullName(db, t.Name, txt), sqlLiteral(v)
	return Query{
		Question: fmt.Sprintf("What is the total %s of %s rows whose %s is %s?", fnum, t.Name, ftxt, lit),
		SQL:      fmt.Sprintf("SELECT SUM(%s) FROM %s WHERE %s = %s", num, t.Name, txt, lit),
		Paraphrases: []string{
			fmt.Sprintf("Sum the %s over %s rows where %s equals %s.", fnum, t.Name, ftxt, lit),
			fmt.Sprintf("Across %s rows whose %s is %s, what do the %s values add up to?", t.Name, ftxt, lit, fnum),
		},
	}, true
}

func avgQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	ni := pickColumn(t, rng, func(c sqlengine.Column) bool { return isNumeric(c) && !c.PrimaryKey })
	if ni < 0 {
		return Query{}, false
	}
	num := t.Columns[ni].Name
	fnum := fullName(db, t.Name, num)
	return Query{
		Question: fmt.Sprintf("What is the average %s across all %s rows?", fnum, t.Name),
		SQL:      fmt.Sprintf("SELECT AVG(%s) FROM %s", num, t.Name),
		Paraphrases: []string{
			fmt.Sprintf("What is the mean %s over the whole %s table?", fnum, t.Name),
			fmt.Sprintf("Compute the average value of %s for all rows of %s.", fnum, t.Name),
		},
	}, true
}

func rangeCountQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	ni := pickColumn(t, rng, func(c sqlengine.Column) bool { return isNumeric(c) && !c.PrimaryKey })
	if ni < 0 {
		return Query{}, false
	}
	v, ok := sampleValue(t, ni, rng)
	if !ok {
		return Query{}, false
	}
	num := t.Columns[ni].Name
	fnum, lit := fullName(db, t.Name, num), sqlLiteral(v)
	return Query{
		Question: fmt.Sprintf("How many %s rows have %s greater than %s?", t.Name, fnum, lit),
		SQL:      fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s > %s", t.Name, num, lit),
		Paraphrases: []string{
			fmt.Sprintf("Count %s rows where %s exceeds %s.", t.Name, fnum, lit),
			fmt.Sprintf("How many rows of %s have a %s above %s?", t.Name, fnum, lit),
		},
	}, true
}

// joinPairBudget bounds the logical |L|·|R| pair count a synthesized join
// may charge. The engine's plan-independent cost model bills every join
// its full pair count against a 50M-row budget, so joins beyond this
// margin would fail at execution no matter how good the physical plan is.
const joinPairBudget = 40_000_000

// joinCountQuery counts child rows joined to a parent filtered on one of
// the parent's text attributes — the workload shape that exercises the
// planner's hash join at scale.
func joinCountQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	if len(t.ForeignKeys) == 0 {
		return Query{}, false
	}
	fk := t.ForeignKeys[rng.Intn(len(t.ForeignKeys))]
	if strings.EqualFold(fk.ParentTable, t.Name) {
		return Query{}, false
	}
	parent, ok := db.Engine.Table(fk.ParentTable)
	if !ok || len(parent.Rows) == 0 {
		return Query{}, false
	}
	if len(t.Rows)*len(parent.Rows) > joinPairBudget {
		return Query{}, false
	}
	pi := pickColumn(parent, rng, func(c sqlengine.Column) bool { return isText(c) && !c.PrimaryKey })
	if pi < 0 {
		return Query{}, false
	}
	v, okV := sampleValue(parent, pi, rng)
	if !okV {
		return Query{}, false
	}
	pcol := parent.Columns[pi].Name
	fp, lit := fullName(db, parent.Name, pcol), sqlLiteral(v)
	return Query{
		Question: fmt.Sprintf("How many %s rows belong to a %s whose %s is %s?",
			t.Name, parent.Name, fp, lit),
		SQL: fmt.Sprintf("SELECT COUNT(*) FROM %s JOIN %s ON %s.%s = %s.%s WHERE %s.%s = %s",
			t.Name, parent.Name, t.Name, fk.Column, parent.Name, fk.ParentColumn, parent.Name, pcol, lit),
		Paraphrases: []string{
			fmt.Sprintf("Count the %s rows joined to a %s with %s equal to %s.", t.Name, parent.Name, fp, lit),
			fmt.Sprintf("For the %s whose %s is %s, how many %s rows are attached?", parent.Name, fp, lit, t.Name),
		},
	}, true
}

func topKQuery(db *schema.DB, t *sqlengine.Table, rng *llm.Rand) (Query, bool) {
	ni := pickColumn(t, rng, func(c sqlengine.Column) bool { return isNumeric(c) && !c.PrimaryKey })
	var pk string
	for _, c := range t.Columns {
		if c.PrimaryKey {
			pk = c.Name
			break
		}
	}
	if ni < 0 || pk == "" {
		return Query{}, false
	}
	k := 3 + rng.Intn(8)
	num := t.Columns[ni].Name
	fnum := fullName(db, t.Name, num)
	return Query{
		Question: fmt.Sprintf("Which %d %s rows have the highest %s?", k, t.Name, fnum),
		SQL: fmt.Sprintf("SELECT %s FROM %s ORDER BY %s DESC, %s LIMIT %d",
			pk, t.Name, num, pk, k),
		Paraphrases: []string{
			fmt.Sprintf("List the top %d %s rows by %s.", k, t.Name, fnum),
			fmt.Sprintf("Which %d rows of %s rank highest on %s?", k, t.Name, fnum),
		},
	}, true
}
