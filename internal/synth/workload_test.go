package synth

import (
	"testing"

	"repro/internal/dataset"
)

func TestWorkloadExecutableAndDeterministic(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 11, Rows: ProportionalRows(src, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 40 {
		t.Fatalf("got %d queries, want 40", len(qs))
	}
	for _, q := range qs {
		if q.Question == "" {
			t.Fatalf("query %q has no question", q.SQL)
		}
		if _, err := db.Engine.Query(q.SQL); err != nil {
			t.Fatalf("workload query %q does not execute: %v", q.SQL, err)
		}
	}

	again, err := Workload(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatalf("workload not deterministic at %d: %+v vs %+v", i, qs[i], again[i])
		}
	}
}

func TestWorkloadToCorpus(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 3, Rows: ProportionalRows(src, 3000)})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(db, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ToCorpus(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train)+len(c.Dev) != 20 {
		t.Fatalf("corpus lost examples: %d train + %d dev", len(c.Train), len(c.Dev))
	}
	if _, ok := c.DB(db.Name); !ok {
		t.Fatalf("corpus has no database %q", db.Name)
	}
	for _, e := range append(append([]dataset.Example{}, c.Train...), c.Dev...) {
		if e.GoldSQL != e.SQLTemplate {
			t.Fatalf("example %s: atom-free gold SQL should equal the template", e.ID)
		}
		if e.Question == "" || e.DB != db.Name {
			t.Fatalf("example %s malformed: %+v", e.ID, e)
		}
	}
}
