package synth

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestWorkloadExecutableAndDeterministic(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 11, Rows: ProportionalRows(src, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 40 {
		t.Fatalf("got %d queries, want 40", len(qs))
	}
	for _, q := range qs {
		if q.Question == "" {
			t.Fatalf("query %q has no question", q.SQL)
		}
		if _, err := db.Engine.Query(q.SQL); err != nil {
			t.Fatalf("workload query %q does not execute: %v", q.SQL, err)
		}
	}

	again, err := Workload(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical, not just equivalent: the paraphrased workload is
	// what the memory benchmark gates on, so any drift across runs of the
	// same seed would silently change the committed BENCH numbers.
	a, err := json.Marshal(qs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("workload not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestWorkloadParaphrases pins the contract the query memory depends on:
// every query carries paraphrases, and every paraphrase preserves the
// SQL's literals verbatim so qmemory's literal-overlap gate passes.
func TestWorkloadParaphrases(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 11, Rows: ProportionalRows(src, 4000)})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if len(q.Paraphrases) < 2 {
			t.Fatalf("query %q has %d paraphrases, want >= 2", q.Question, len(q.Paraphrases))
		}
		for _, ph := range q.Paraphrases {
			if ph == q.Question {
				t.Fatalf("paraphrase of %q is the question itself", q.Question)
			}
			for _, lit := range testLiterals(q.SQL) {
				if !strings.Contains(strings.ToLower(ph), strings.ToLower(lit)) {
					t.Fatalf("paraphrase %q of %q drops literal %q", ph, q.SQL, lit)
				}
			}
		}
	}

	ex, err := ParaphraseExamples(db.Name, qs)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, q := range qs {
		want += len(q.Paraphrases)
	}
	if len(ex) != want {
		t.Fatalf("ParaphraseExamples produced %d examples, want %d", len(ex), want)
	}
	for _, e := range ex {
		if e.GoldSQL == "" || e.Question == "" || e.DB != db.Name {
			t.Fatalf("paraphrase example malformed: %+v", e)
		}
	}
}

// testLiterals extracts quoted strings and standalone numbers from SQL,
// mirroring the qmemory literal gate closely enough for the assertion.
func testLiterals(sql string) []string {
	var out []string
	i := 0
	for i < len(sql) {
		c := sql[i]
		if c == '\'' {
			j := i + 1
			var b strings.Builder
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(sql[j])
				j++
			}
			out = append(out, b.String())
			i = j + 1
			continue
		}
		if c >= '0' && c <= '9' && (i == 0 || !isWordByte(sql[i-1])) {
			j := i
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.') {
				j++
			}
			out = append(out, sql[i:j])
			i = j
			continue
		}
		i++
	}
	return out
}

func isWordByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func TestWorkloadToCorpus(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 3, Rows: ProportionalRows(src, 3000)})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Workload(db, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := ToCorpus(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Train)+len(c.Dev) != 20 {
		t.Fatalf("corpus lost examples: %d train + %d dev", len(c.Train), len(c.Dev))
	}
	if _, ok := c.DB(db.Name); !ok {
		t.Fatalf("corpus has no database %q", db.Name)
	}
	for _, e := range append(append([]dataset.Example{}, c.Train...), c.Dev...) {
		if e.GoldSQL != e.SQLTemplate {
			t.Fatalf("example %s: atom-free gold SQL should equal the template", e.ID)
		}
		if e.Question == "" || e.DB != db.Name {
			t.Fatalf("example %s malformed: %+v", e.ID, e)
		}
	}
}
