package synth

import (
	"reflect"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// TestPlannerEquivalenceOnSynthCorpora is the scale extension of the
// engine's planner-on/off quick-check, widened into a three-way property
// test over the execution matrix: randomized synthetic databases plus
// synthesized workloads are executed (1) naive, (2) planned row-at-a-time,
// and (3) planned + vectorized with parallel morsel workers, and all three
// must agree on every row AND on the logical Result.Cost (the cost model
// is defined to be independent of the physical plan — of both the
// planner's rewrites and the engine's batch/parallel execution).
func TestPlannerEquivalenceOnSynthCorpora(t *testing.T) {
	src := financialFixture(t)
	trials := 6
	total := 3000
	if testing.Short() {
		trials, total = 2, 1200
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(1000 + trial*17)
		gen := func() *schema.DB {
			c, err := Generate(src, Options{Seed: seed, Rows: ProportionalRows(src, total)})
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		naive, rowwise, vectorized := gen(), gen(), gen()
		if Fingerprint(naive) != Fingerprint(rowwise) || Fingerprint(naive) != Fingerprint(vectorized) {
			t.Fatalf("trial %d: generations from seed %d differ before execution is even involved", trial, seed)
		}
		naive.Engine.SetPlanner(false)
		rowwise.Engine.SetVectorized(false)
		// Force batch + parallel engagement despite the small corpus, so the
		// kernels and morsel workers actually run on every query shape the
		// workload synthesizer emits.
		vectorized.Engine.SetBatchTuning(1, 1)
		vectorized.Engine.SetParallelism(4)

		qs, err := Workload(naive, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			ref, errRef := naive.Engine.Exec(q.SQL)
			for _, alt := range []struct {
				name string
				c    *schema.DB
			}{{"planned", rowwise}, {"planned+vectorized", vectorized}} {
				got, errGot := alt.c.Engine.Exec(q.SQL)
				if (errRef == nil) != (errGot == nil) {
					t.Fatalf("trial %d: %q: naive err=%v, %s err=%v", trial, q.SQL, errRef, alt.name, errGot)
				}
				if errRef != nil {
					continue
				}
				if !resultRowsIdentical(ref.Rows, got.Rows) {
					t.Fatalf("trial %d: %q: %s rows differ from naive\nnaive: %v\n%s: %v",
						trial, q.SQL, alt.name, ref.Rows.Data, alt.name, got.Rows.Data)
				}
				if ref.Cost != got.Cost {
					t.Fatalf("trial %d: %q: logical cost differs: naive %d vs %s %d — Cost must be plan-independent",
						trial, q.SQL, ref.Cost, alt.name, got.Cost)
				}
			}
		}
	}
}

func resultRowsIdentical(a, b *sqlengine.Rows) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !reflect.DeepEqual(a.Columns, b.Columns) {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if !reflect.DeepEqual(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}
