package synth

import (
	"reflect"
	"testing"

	"repro/internal/sqlengine"
)

// TestPlannerEquivalenceOnSynthCorpora is the scale extension of the
// engine's planner-on/off quick-check: randomized synthetic databases plus
// synthesized workloads, executed through both paths, must agree on every
// row AND on the logical Result.Cost (the cost model is defined to be
// plan-independent).
func TestPlannerEquivalenceOnSynthCorpora(t *testing.T) {
	src := financialFixture(t)
	trials := 6
	total := 3000
	if testing.Short() {
		trials, total = 2, 1200
	}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(1000 + trial*17)
		planned, err := Generate(src, Options{Seed: seed, Rows: ProportionalRows(src, total)})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := Generate(src, Options{Seed: seed, Rows: ProportionalRows(src, total)})
		if err != nil {
			t.Fatal(err)
		}
		if Fingerprint(planned) != Fingerprint(naive) {
			t.Fatalf("trial %d: two generations from seed %d differ before the planner is even involved", trial, seed)
		}
		naive.Engine.SetPlanner(false)

		qs, err := Workload(planned, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs {
			a, errA := planned.Engine.Exec(q.SQL)
			b, errB := naive.Engine.Exec(q.SQL)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("trial %d: %q: planner=%v naive=%v", trial, q.SQL, errA, errB)
			}
			if errA != nil {
				continue
			}
			if !resultRowsIdentical(a.Rows, b.Rows) {
				t.Fatalf("trial %d: %q: planner and naive rows differ\nplanner: %v\nnaive:   %v",
					trial, q.SQL, a.Rows.Data, b.Rows.Data)
			}
			if a.Cost != b.Cost {
				t.Fatalf("trial %d: %q: logical cost differs: planner %d vs naive %d — Cost must be plan-independent",
					trial, q.SQL, a.Cost, b.Cost)
			}
		}
	}
}

func resultRowsIdentical(a, b *sqlengine.Rows) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if !reflect.DeepEqual(a.Columns, b.Columns) {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if !reflect.DeepEqual(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}
