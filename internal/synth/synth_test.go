package synth

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// financialFixture returns the BIRD financial database — five tables, a
// diamond-shaped FK graph — as the canonical generator input.
func financialFixture(t testing.TB) *schema.DB {
	t.Helper()
	c := dataset.BuildBIRD(dataset.BIRDOptions{Seed: 7, CleanDev: true})
	db, ok := c.DB("financial")
	if !ok {
		t.Fatal("BIRD corpus lost its financial database")
	}
	return db
}

func TestGenerateDeterministic(t *testing.T) {
	src := financialFixture(t)
	rows := map[string]int{"district": 50, "account": 400, "client": 500, "disp": 500, "loan": 300}

	// Different worker and batch configurations must yield identical bytes.
	configs := []Options{
		{Seed: 42, Rows: rows, Workers: 1, BatchSize: 64},
		{Seed: 42, Rows: rows, Workers: 8, BatchSize: 64},
		{Seed: 42, Rows: rows, Workers: 4, BatchSize: 1000},
	}
	var first uint64
	for i, opt := range configs {
		db, err := Generate(src, opt)
		if err != nil {
			t.Fatal(err)
		}
		fp := Fingerprint(db)
		if i == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("config %d: fingerprint %#x differs from %#x — generation depends on workers/batch size", i, fp, first)
		}
	}

	// And a different seed must actually change the output.
	db, err := Generate(src, Options{Seed: 43, Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(db) == first {
		t.Fatal("seed 43 produced the same bytes as seed 42")
	}
}

// TestGenerateGoldenFingerprint pins the exact output of seed 42 over the
// financial fixture. If this fails, the generator's byte stream changed:
// either bump the constant deliberately (and say so in the commit) or fix
// the regression.
func TestGenerateGoldenFingerprint(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{
		Seed: 42,
		Rows: map[string]int{"district": 20, "account": 100, "client": 100, "disp": 100, "loan": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = goldenFingerprint
	if got := Fingerprint(db); got != want {
		t.Fatalf("golden fingerprint changed: got %#x, want %#x", got, want)
	}
}

func TestGenerateFKConsistentSmall(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 9, Rows: ProportionalRows(src, 5000)})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFK(db); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateMillionRowsFKConsistent is the acceptance-criteria test:
// one million total rows, every child key resolving. Heavy (seconds), so
// it only runs in the full suite.
func TestGenerateMillionRowsFKConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("million-row generation in -short mode")
	}
	src := financialFixture(t)
	rows := ProportionalRows(src, 1_000_000)
	total := 0
	for _, n := range rows {
		total += n
	}
	if total != 1_000_000 {
		t.Fatalf("ProportionalRows summed to %d, want exactly 1000000", total)
	}
	db, err := Generate(src, Options{Seed: 1, Rows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFK(db); err != nil {
		t.Fatal(err)
	}
	for name, want := range rows {
		tab, ok := db.Engine.Table(name)
		if !ok {
			t.Fatalf("generated database lost table %s", name)
		}
		if len(tab.Rows) != want {
			t.Fatalf("table %s has %d rows, want %d", name, len(tab.Rows), want)
		}
	}
}

func TestProportionalRowsCapsDimensions(t *testing.T) {
	src := financialFixture(t)
	rows := ProportionalRows(src, 1_000_000)
	// district is a pure dimension table (referenced, references nothing):
	// it must stay small enough that fact-to-dimension joins fit the
	// engine's 50M-pair logical cost budget at a million fact rows.
	if rows["district"] > 128 {
		t.Fatalf("dimension table district got %d rows, cap is 128", rows["district"])
	}
	total := 0
	for _, n := range rows {
		total += n
	}
	if total != 1_000_000 {
		t.Fatalf("total %d, want exactly 1000000", total)
	}
}

func TestGeneratePreservesSchemaAndDocs(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 5, Rows: map[string]int{"district": 10, "account": 20, "client": 20, "disp": 20, "loan": 10}})
	if err != nil {
		t.Fatal(err)
	}
	if db.DDL() != src.DDL() {
		t.Fatal("generated database renders different DDL than its source")
	}
	if !db.HasDescriptions() {
		t.Fatal("generated database lost the description files")
	}
	// Documented code sets must be respected: frequency only emits BIRD's
	// three issuance codes.
	rows, err := db.Engine.Query("SELECT DISTINCT frequency FROM account ORDER BY frequency")
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{"POPLATEK MESICNE": true, "POPLATEK PO OBRATU": true, "POPLATEK TYDNE": true}
	for _, r := range rows.Data {
		if !r[0].IsNull() && !valid[r[0].S] {
			t.Fatalf("account.frequency emitted undocumented code %q", r[0].S)
		}
	}
}

func TestVerifyFKCatchesViolation(t *testing.T) {
	src := financialFixture(t)
	db, err := Generate(src, Options{Seed: 2, Rows: map[string]int{"district": 5, "account": 10, "client": 10, "disp": 10, "loan": 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one child key to a value no parent has.
	tab, _ := db.Engine.Table("loan")
	ci := tab.ColumnIndex("account_id")
	tab.Rows[0][ci] = sqlengine.Int(999999)
	if err := VerifyFK(db); err == nil {
		t.Fatal("VerifyFK missed a dangling loan.account_id")
	}
}
