package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llm"
	"repro/internal/schema"
	"repro/internal/sqlengine"
)

// A valueModel produces the value of one column for one generated row. It
// must be a pure function of (idx, rng): models never share mutable state,
// so batches of rows can be generated concurrently and still come out
// byte-identical for a given seed. idx is the zero-based row index within
// the whole table; rng is the batch-local deterministic stream.
type valueModel interface {
	value(idx int, rng *llm.Rand) sqlengine.Value
}

// seqInt emits idx+1 — the model for INTEGER primary keys. Being a pure
// function of the row index (it never touches rng) keeps primary keys dense
// and predictable, which the foreign-key models and the workload
// synthesizer both exploit.
type seqInt struct{}

func (seqInt) value(idx int, _ *llm.Rand) sqlengine.Value { return sqlengine.Int(int64(idx) + 1) }

// seqText emits "<col>_<idx+1>" for TEXT primary keys.
type seqText struct{ col string }

func (m seqText) value(idx int, _ *llm.Rand) sqlengine.Value {
	return sqlengine.Text(fmt.Sprintf("%s_%d", m.col, idx+1))
}

// fkRef samples uniformly from the keys actually present in the generated
// parent table, so every child reference resolves by construction. Sampling
// from the materialised pool (with duplicates, if the parent column has
// them) rather than a deduplicated set is deliberate: it is deterministic
// and it skews child fan-out toward frequent parent keys the way real data
// does.
type fkRef struct {
	pool     []sqlengine.Value
	nullRate float64
}

func (m fkRef) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	return m.pool[rng.Intn(len(m.pool))]
}

// selfRef handles a table whose foreign key points at itself: the parent
// rows do not exist yet while the table is being generated, so it samples
// from the planned primary-key sequence 1..n instead.
type selfRef struct {
	n        int
	nullRate float64
}

func (m selfRef) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	return sqlengine.Int(int64(rng.Intn(m.n)) + 1)
}

// categorical samples from a fixed code set, weighted by how often each
// code appears in the fixture rows. Codes are kept sorted so the model is
// independent of map iteration order.
type categorical struct {
	codes    []string
	cum      []int // cumulative weights, same length as codes
	total    int
	nullRate float64
}

func (m categorical) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	r := rng.Intn(m.total)
	i := sort.SearchInts(m.cum, r+1)
	return sqlengine.Text(m.codes[i])
}

// intRange draws uniformly from the closed integer interval observed in
// the fixture rows.
type intRange struct {
	lo, hi   int64
	nullRate float64
}

func (m intRange) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	span := m.hi - m.lo + 1
	return sqlengine.Int(m.lo + int64(rng.Uint64()%uint64(span)))
}

// floatRange draws uniformly from the observed real interval, rounded to
// two decimals so values print compactly and compare stably.
type floatRange struct {
	lo, hi   float64
	nullRate float64
}

func (m floatRange) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	v := m.lo + rng.Float64()*(m.hi-m.lo)
	return sqlengine.Float(float64(int64(v*100+0.5)) / 100)
}

// dateRange draws ISO dates between the observed fixture years. Days cap
// at 28 so every generated date is valid in every month.
type dateRange struct {
	loYear, hiYear int
	nullRate       float64
}

func (m dateRange) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	y := m.loYear + rng.Intn(m.hiYear-m.loYear+1)
	return sqlengine.Text(fmt.Sprintf("%04d-%02d-%02d", y, 1+rng.Intn(12), 1+rng.Intn(28)))
}

// textSample mixes fixture reuse with synthesis: half the time it replays a
// fixture string (keeping realistic values queries can match on), half the
// time it mints "<col>_<N>" (growing the distinct-value count with the
// table, the way identifiers do).
type textSample struct {
	col      string
	samples  []string // sorted fixture values
	nullRate float64
}

func (m textSample) value(_ int, rng *llm.Rand) sqlengine.Value {
	if m.nullRate > 0 && rng.Chance(m.nullRate) {
		return sqlengine.Null()
	}
	if len(m.samples) > 0 && rng.Chance(0.5) {
		return sqlengine.Text(m.samples[rng.Intn(len(m.samples))])
	}
	return sqlengine.Text(fmt.Sprintf("%s_%d", m.col, rng.Intn(1_000_000)))
}

// isISODate reports whether s looks like YYYY-MM-DD.
func isISODate(s string) bool {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	for i, c := range []byte(s) {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// buildModel infers the generator for one column from the fixture rows,
// the column's documentation, and its role in the schema. fkPool is
// non-nil when the column is the child side of a foreign key; selfN is the
// planned row count when that foreign key is a self-reference.
func buildModel(t *sqlengine.Table, colIdx int, doc *schema.TableDoc, fkPool []sqlengine.Value, selfN int) valueModel {
	col := t.Columns[colIdx]

	// Observed fixture statistics.
	var nonNull, nInt, nFloat int
	var texts []string
	var loI, hiI int64
	var loF, hiF float64
	allDates := len(t.Rows) > 0
	seenText := make(map[string]int)
	for _, row := range t.Rows {
		v := row[colIdx]
		if v.IsNull() {
			continue
		}
		nonNull++
		switch v.Kind {
		case sqlengine.KindInt:
			nInt++
			if nInt == 1 || v.I < loI {
				loI = v.I
			}
			if nInt == 1 || v.I > hiI {
				hiI = v.I
			}
		case sqlengine.KindFloat:
			nFloat++
			if nFloat == 1 || v.F < loF {
				loF = v.F
			}
			if nFloat == 1 || v.F > hiF {
				hiF = v.F
			}
		case sqlengine.KindText:
			if _, ok := seenText[v.S]; !ok {
				texts = append(texts, v.S)
			}
			seenText[v.S]++
			if !isISODate(v.S) {
				allDates = false
			}
		}
	}
	nullRate := 0.0
	if !col.NotNull && len(t.Rows) > 0 {
		nullRate = float64(len(t.Rows)-nonNull) / float64(len(t.Rows))
	}

	if selfN > 0 {
		return selfRef{n: selfN, nullRate: nullRate}
	}
	if fkPool != nil {
		return fkRef{pool: fkPool, nullRate: nullRate}
	}
	if col.PrimaryKey {
		if strings.EqualFold(col.Type, "TEXT") {
			return seqText{col: col.Name}
		}
		return seqInt{}
	}

	// Documented code sets become categorical models weighted by fixture
	// frequency (uniform when the fixture never uses a code).
	if doc != nil {
		if cd, ok := doc.ColumnDoc(col.Name); ok && len(cd.ValueMap) > 0 {
			codes := make([]string, 0, len(cd.ValueMap))
			for c := range cd.ValueMap {
				codes = append(codes, c)
			}
			sort.Strings(codes)
			cum := make([]int, len(codes))
			total := 0
			for i, c := range codes {
				w := seenText[c] + 1
				total += w
				cum[i] = total
			}
			return categorical{codes: codes, cum: cum, total: total, nullRate: nullRate}
		}
	}

	switch {
	case strings.EqualFold(col.Type, "INTEGER"):
		if nInt == 0 {
			loI, hiI = 1, 1000
		}
		return intRange{lo: loI, hi: hiI, nullRate: nullRate}
	case strings.EqualFold(col.Type, "REAL"):
		if nFloat == 0 {
			loF, hiF = 0, 1000
		}
		return floatRange{lo: loF, hi: hiF, nullRate: nullRate}
	default:
		if nonNull > 0 && allDates {
			lo, hi := 9999, 0
			for s := range seenText {
				y := (int(s[0]-'0')*1000 + int(s[1]-'0')*100 + int(s[2]-'0')*10 + int(s[3]-'0'))
				if y < lo {
					lo = y
				}
				if y > hi {
					hi = y
				}
			}
			return dateRange{loYear: lo, hiYear: hi, nullRate: nullRate}
		}
		sort.Strings(texts)
		return textSample{col: col.Name, samples: texts, nullRate: nullRate}
	}
}
