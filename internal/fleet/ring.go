// Package fleet is the multi-node robustness layer over seedd: a
// shard-aware front tier that consistent-hashes (db, question) across N
// seedd replicas so each replica's evidence cache and durable store stay
// hot for its shard, with per-replica health probes, bounded retries with
// exponential backoff and jitter, hedged retries to the next ring replica,
// and a circuit breaker that ejects flapping replicas and re-admits them
// after probation.
//
// The paper's practical-usability claim — evidence is generated once and
// reused forever — only survives production if the serving path tolerates
// crashes, slow nodes and partitions. Combined with WAL shipping in
// internal/evstore (each replica tails its peers' stores), a killed
// replica costs bounded tail latency, never availability: the next ring
// replica serves the dead replica's shard from replicated records with
// zero LLM calls.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-replica virtual-node count used when a
// Ring is built with vnodes <= 0. 128 points per replica keeps the
// keyspace spread within a few percent of uniform and the remap fraction
// on membership change near the ideal 1/N.
const DefaultVirtualNodes = 128

// ShardKey renders the routing key for one request. The router and any
// diagnostic tooling must build keys through this one function so a
// question always lands on the same shard regardless of which component
// asks. The NUL separator keeps ("ab","c") and ("a","bc") distinct.
func ShardKey(db, question string) string {
	return db + "\x00" + question
}

// ringPoint is one virtual node: a position on the 64-bit hash circle and
// the index of the replica that owns it.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is an immutable consistent-hash ring over a set of replica names.
// Construction is deterministic: the same replica set (in any order)
// always produces the same ring, and key mapping depends only on hashes —
// never on Go map iteration order — so a restarted router routes every
// question to the same replica it did before. Build with NewRing; a Ring
// is safe for concurrent use.
type Ring struct {
	replicas []string
	points   []ringPoint
}

// NewRing builds a ring over the given replica names with the given
// virtual-node count per replica (<= 0 uses DefaultVirtualNodes).
// Duplicate names collapse to one replica. An empty replica set yields a
// ring whose lookups return nothing.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(replicas))
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	// Sorting first makes the ring independent of the order replicas were
	// listed in — a restarted router with a reordered -replicas flag still
	// maps every key identically.
	sort.Strings(uniq)
	ring := &Ring{replicas: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, name := range uniq {
		for v := 0; v < vnodes; v++ {
			ring.points = append(ring.points, ringPoint{hash: pointHash(name, v), replica: i})
		}
	}
	sort.Slice(ring.points, func(a, b int) bool {
		pa, pb := ring.points[a], ring.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// A 64-bit collision between two replicas' points is vanishingly
		// rare but must still order deterministically.
		return ring.replicas[pa.replica] < ring.replicas[pb.replica]
	})
	return ring
}

// pointHash positions one virtual node on the circle: FNV-1a over
// "name\x00vnode", then mixed through fmix64.
func pointHash(name string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	return fmix64(h.Sum64())
}

// keyHash positions a shard key on the circle.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer. FNV-1a alone is not enough
// here: a trailing-byte difference only moves the raw hash by about
// delta*prime (~2^44 for a final digit), which is far less than the
// ~2^55 average gap between ring points, so keys sharing a long prefix —
// "question 1" vs "question 2" — all collapse into one arc and one
// replica owns the whole family. The finalizer's shift-xor-multiply
// rounds give full avalanche, restoring uniform shard spread.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Replicas returns the ring's member names in sorted order. The returned
// slice is shared; callers must not mutate it.
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the replica that owns the key — the first ring point at
// or clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	s := r.Successors(key, 1)
	if len(s) == 0 {
		return "", false
	}
	return s[0], true
}

// Successors returns up to n distinct replicas in ring order starting at
// the key's owner. Index 0 is the owner; index 1 is where a hedged retry
// goes when the owner fails — and, symmetrically, the peer whose shipped
// WAL should hold the owner's shard.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	kh := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.replica] {
			taken[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
