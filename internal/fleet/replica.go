package fleet

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// replica is the router's view of one seedd backend: its base URL, its
// circuit breaker, the latest health-probe verdicts, and an admission
// cooldown fed by Retry-After responses.
type replica struct {
	name    string // base URL, e.g. "http://127.0.0.1:8081"
	breaker *Breaker

	// alive is the liveness verdict (GET /healthz answers at all); ready
	// is the readiness verdict (GET /healthz?ready is 200 — a draining
	// replica flips this to 503 while it finishes in-flight work). Both
	// start true so the router serves before the first probe completes.
	alive atomic.Bool
	ready atomic.Bool

	// cooldownUntil is the unix-nano deadline before which the replica
	// asked not to be retried (a 429/503 Retry-After). Routing prefers
	// replicas outside their cooldown.
	cooldownUntil atomic.Int64

	attempts  atomic.Int64 // requests sent to this replica
	failures  atomic.Int64 // transport errors + 5xx outcomes
	shed      atomic.Int64 // 429/503 admission rejections observed
	hedges    atomic.Int64 // requests sent here as hedges/failovers (not first choice)
	probeErrs atomic.Int64 // health-probe round trips that failed
}

func newReplica(name string, threshold int, probation, maxProbation time.Duration) *replica {
	r := &replica{name: name, breaker: NewBreaker(threshold, probation, maxProbation)}
	r.alive.Store(true)
	r.ready.Store(true)
	return r
}

// eligible reports whether the routing path should consider this replica:
// alive, not draining, breaker admitting, and outside any Retry-After
// cooldown. now is passed in so selection within one request is
// consistent.
func (r *replica) eligible(now time.Time) bool {
	return r.alive.Load() && r.ready.Load() &&
		now.UnixNano() >= r.cooldownUntil.Load() &&
		r.breaker.Allow(now)
}

// coolDown records a replica-requested backoff (Retry-After). Later
// deadlines win; a shorter concurrent hint never truncates a longer one.
func (r *replica) coolDown(until time.Time) {
	for {
		cur := r.cooldownUntil.Load()
		if until.UnixNano() <= cur {
			return
		}
		if r.cooldownUntil.CompareAndSwap(cur, until.UnixNano()) {
			return
		}
	}
}

// retryAfterHint extracts the backoff a 429/503 response asked for.
// X-Retry-After-Ms (millisecond resolution, set by seedd's admission
// middleware) is preferred; the standard whole-seconds Retry-After is the
// fallback; absent both, fall back to def.
func retryAfterHint(h http.Header, def time.Duration) time.Duration {
	if v := h.Get("X-Retry-After-Ms"); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	if v := h.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return def
}

// probe runs one liveness + readiness round trip and updates the
// replica's verdicts. Liveness failure force-opens the breaker so the
// serving path stops trying a dead replica without burning requests on
// it; liveness recovery leaves re-admission to the breaker's half-open
// probe, which verifies the serving path end to end.
func (r *replica) probe(ctx context.Context, client *http.Client, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, r.name+"/healthz?ready", nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		r.probeErrs.Add(1)
		if wasAlive := r.alive.Swap(false); wasAlive {
			r.breaker.ForceOpen(time.Now())
		}
		return
	}
	resp.Body.Close()
	r.alive.Store(true)
	// 200 = serving; 503 = draining (alive, finishing in-flight work, do
	// not route new requests). Anything else is indistinguishable from
	// not-ready.
	r.ready.Store(resp.StatusCode == http.StatusOK)
}

// ReplicaStatus is the /healthz + /metrics view of one backend.
type ReplicaStatus struct {
	Name  string `json:"name"`
	Alive bool   `json:"alive"`
	Ready bool   `json:"ready"`
	// Breaker is the circuit state: closed, open or half_open.
	Breaker string `json:"breaker"`
	// BreakerTrips counts closed->open ejections since start.
	BreakerTrips int64 `json:"breaker_trips"`
	// CooldownMs is the remaining Retry-After cooldown, 0 when none.
	CooldownMs int64 `json:"cooldown_ms,omitempty"`
	Attempts   int64 `json:"attempts"`
	Failures   int64 `json:"failures"`
	// Shed counts 429/503 admission rejections this replica returned.
	Shed int64 `json:"shed"`
	// Hedges counts requests routed here as a hedge or failover rather
	// than as the shard owner.
	Hedges    int64 `json:"hedges"`
	ProbeErrs int64 `json:"probe_errors"`
}

func (r *replica) status(now time.Time) ReplicaStatus {
	state, trips := r.breaker.State(now)
	st := ReplicaStatus{
		Name:         r.name,
		Alive:        r.alive.Load(),
		Ready:        r.ready.Load(),
		Breaker:      state,
		BreakerTrips: trips,
		Attempts:     r.attempts.Load(),
		Failures:     r.failures.Load(),
		Shed:         r.shed.Load(),
		Hedges:       r.hedges.Load(),
		ProbeErrs:    r.probeErrs.Load(),
	}
	if until := r.cooldownUntil.Load(); until > now.UnixNano() {
		st.CooldownMs = (until - now.UnixNano()) / int64(time.Millisecond)
	}
	return st
}
