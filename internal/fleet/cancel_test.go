package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
)

// hangingReplica answers health checks but parks every other request on
// the request context — the shape of a replica that is alive but slower
// than the client's patience.
func hangingReplica(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// Drain the body so net/http's background read can notice the
		// client disconnect and cancel r.Context().
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterClientCancelAnswers499 is the regression test for the
// canceled-context accounting bug: a request the client abandons
// mid-flight must answer 499, stay out of the router's 5xx accounting,
// and leave the replica's breaker untouched — previously it was reported
// as a 502, polluting both.
func TestRouterClientCancelAnswers499(t *testing.T) {
	rep := hangingReplica(t)
	rt, err := NewRouter(Config{
		Replicas:       []string{rep.URL},
		RequestTimeout: 10 * time.Second,
		AttemptTimeout: 10 * time.Second,
		HedgeDelay:     10 * time.Second,
		BaseBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		strings.NewReader(`{"db":"financial","question":"how many accounts"}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	rt.Handler().ServeHTTP(w, req)

	if w.Code != api.StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", w.Code, api.StatusClientClosedRequest, w.Body)
	}
	var env api.Error
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not the error envelope: %v: %s", err, w.Body)
	}
	if env.Code != api.CodeClientClosed {
		t.Errorf("code = %q, want %q", env.Code, api.CodeClientClosed)
	}
	if env.RequestID == "" {
		t.Error("envelope lost the request id")
	}
	if env.RequestID != w.Header().Get("X-Request-Id") {
		t.Error("envelope request id disagrees with the header")
	}

	m := rt.Metrics()
	if m.ClientFivexx != 0 {
		t.Errorf("client cancellation counted as %d router 5xx", m.ClientFivexx)
	}
	if m.ClientClosed != 1 {
		t.Errorf("ClientClosed = %d, want 1", m.ClientClosed)
	}
	for _, rs := range m.Replicas {
		if rs.Breaker != "closed" {
			t.Errorf("replica %s breaker %q after a client cancel, want closed", rs.Name, rs.Breaker)
		}
		if rs.Failures != 0 {
			t.Errorf("replica %s charged %d failures for a client cancel", rs.Name, rs.Failures)
		}
	}
}

// TestRouterErrorEnvelope pins the unified error envelope on the
// router's own non-2xx paths: bad requests and exhausted forwards both
// answer {error, code, request_id}.
func TestRouterErrorEnvelope(t *testing.T) {
	rep := newFakeReplica(t, modeFail)
	rt, err := NewRouter(Config{
		Replicas:       []string{rep.srv.URL},
		RequestTimeout: 2 * time.Second,
		AttemptTimeout: time.Second,
		HedgeDelay:     100 * time.Millisecond,
		BaseBackoff:    time.Millisecond,
		MaxAttempts:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h := rt.Handler()

	t.Run("bad request", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader("{not json"))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", w.Code)
		}
		var env api.Error
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("not the envelope: %v: %s", err, w.Body)
		}
		if env.Code != api.CodeBadRequest || env.Error == "" || env.RequestID == "" {
			t.Errorf("envelope = %+v", env)
		}
	})

	t.Run("exhausted passes through replica envelope", func(t *testing.T) {
		// The fake replica answers plain 500s; the router relays the last
		// backend response verbatim, so here we only pin status + 5xx
		// accounting. (Real seedd replicas answer enveloped errors, which
		// relay through unchanged.)
		w := postQuery(t, h, "financial", "q")
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500 passthrough", w.Code)
		}
		if got := rt.Metrics().ClientFivexx; got != 1 {
			t.Errorf("ClientFivexx = %d, want 1", got)
		}
	})
}
