package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a scriptable seedd stand-in: it counts hits and serves
// whatever behavior the test installs.
type fakeReplica struct {
	srv  *httptest.Server
	hits atomic.Int64
	// mode selects the canned behavior; tests flip it mid-flight.
	mode atomic.Value // string
}

const (
	modeOK      = "ok"
	modeFail    = "fail"     // 500
	modeShed    = "shed"     // 429 + X-Retry-After-Ms
	modeSlow    = "slow"     // 2s then 200
	modeDown    = "down"     // connection refused (server closed separately)
	modeMissing = "notfound" // 404
)

func newFakeReplica(t *testing.T, initial string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.mode.Store(initial)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		f.hits.Add(1)
		switch f.mode.Load().(string) {
		case modeFail:
			http.Error(w, "boom", http.StatusInternalServerError)
		case modeShed:
			w.Header().Set("Retry-After", "60")
			w.Header().Set("X-Retry-After-Ms", "60000")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
		case modeSlow:
			time.Sleep(2 * time.Second)
			fmt.Fprintf(w, `{"served_by":%q}`, f.srv.URL)
		case modeMissing:
			http.Error(w, "no such db", http.StatusNotFound)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"served_by":%q}`, f.srv.URL)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// newTestFleet builds n fake replicas and a router over them with
// test-friendly timeouts. Probing is off unless the test enables it;
// routing still learns from its own request outcomes.
func newTestFleet(t *testing.T, n int, mutate func(*Config)) (*Router, []*fakeReplica) {
	t.Helper()
	reps := make([]*fakeReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newFakeReplica(t, modeOK)
		urls[i] = reps[i].srv.URL
	}
	cfg := Config{
		Replicas:       urls,
		RequestTimeout: 10 * time.Second,
		AttemptTimeout: 5 * time.Second,
		HedgeDelay:     100 * time.Millisecond,
		BaseBackoff:    time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, reps
}

// byURL maps a fake replica set by base URL for owner lookups.
func byURL(reps []*fakeReplica) map[string]*fakeReplica {
	m := make(map[string]*fakeReplica, len(reps))
	for _, r := range reps {
		m[r.srv.URL] = r
	}
	return m
}

// questionOwnedBy finds a question whose shard owner is the given replica.
func questionOwnedBy(t *testing.T, ring *Ring, db, owner string) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		q := fmt.Sprintf("synthetic question %d", i)
		if o, _ := ring.Owner(ShardKey(db, q)); o == owner {
			return q
		}
	}
	t.Fatalf("no question found owned by %s", owner)
	return ""
}

func postQuery(t *testing.T, h http.Handler, db, q string) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"db":%q,"question":%q}`, db, q)
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestRouterShardAffinity pins the routing contract evserve's cache
// depends on: a repeated (db, question) always lands on the same replica,
// while distinct questions spread across the fleet.
func TestRouterShardAffinity(t *testing.T) {
	rt, reps := newTestFleet(t, 3, nil)
	h := rt.Handler()

	first := postQuery(t, h, "financial", "how many accounts")
	if first.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", first.Code, first.Body)
	}
	servedBy := first.Header().Get("X-Fleet-Replica")
	for i := 0; i < 20; i++ {
		w := postQuery(t, h, "financial", "how many accounts")
		if got := w.Header().Get("X-Fleet-Replica"); got != servedBy {
			t.Fatalf("repeat question moved from %s to %s", servedBy, got)
		}
	}

	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		w := postQuery(t, h, "financial", fmt.Sprintf("question %d", i))
		if w.Code != http.StatusOK {
			t.Fatalf("query %d status %d", i, w.Code)
		}
		seen[w.Header().Get("X-Fleet-Replica")] = true
	}
	if len(seen) < 2 {
		t.Fatalf("50 distinct questions all routed to %v — no spread", seen)
	}
	_ = reps
}

// TestRouterFailoverDeadReplica kills a shard owner outright and requires
// the router to keep answering 200 from the ring successor — the
// zero-availability-loss core of the fleet design.
func TestRouterFailoverDeadReplica(t *testing.T) {
	rt, reps := newTestFleet(t, 3, nil)
	h := rt.Handler()
	owner := reps[0].srv.URL
	q := questionOwnedBy(t, rt.ring, "financial", owner)

	if w := postQuery(t, h, "financial", q); w.Header().Get("X-Fleet-Replica") != owner {
		t.Fatalf("sanity: question not served by its owner %s", owner)
	}
	reps[0].srv.Close() // SIGKILL stand-in: connections refused from now on

	for i := 0; i < 10; i++ {
		w := postQuery(t, h, "financial", q)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d after owner death: status %d body %s", i, w.Code, w.Body)
		}
		if got := w.Header().Get("X-Fleet-Replica"); got == owner {
			t.Fatalf("request %d claimed to be served by the dead owner", i)
		}
	}
	if fivexx := rt.Metrics().ClientFivexx; fivexx != 0 {
		t.Fatalf("router surfaced %d 5xx responses during failover, want 0", fivexx)
	}
}

// TestRouterRetryAfterCooldown pins satellite 2 end to end: a 429 with
// X-Retry-After-Ms diverts traffic elsewhere immediately and keeps the
// shedding replica out of rotation for the advertised window.
func TestRouterRetryAfterCooldown(t *testing.T) {
	rt, reps := newTestFleet(t, 2, nil)
	h := rt.Handler()
	owner := reps[0].srv.URL
	other := reps[1].srv.URL
	q := questionOwnedBy(t, rt.ring, "financial", owner)
	reps[0].mode.Store(modeShed)

	w := postQuery(t, h, "financial", q)
	if w.Code != http.StatusOK {
		t.Fatalf("shed request not absorbed: status %d body %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Fleet-Replica"); got != other {
		t.Fatalf("shed request served by %s, want failover to %s", got, other)
	}
	ownerHits := byURL(reps)[owner].hits.Load()
	// The 60s cooldown must keep every subsequent request off the owner
	// without a single wasted attempt.
	for i := 0; i < 10; i++ {
		if w := postQuery(t, h, "financial", q); w.Code != http.StatusOK {
			t.Fatalf("request %d during cooldown: status %d", i, w.Code)
		}
	}
	if got := byURL(reps)[owner].hits.Load(); got != ownerHits {
		t.Fatalf("cooled-down replica received %d extra requests", got-ownerHits)
	}
	if shed := rt.Metrics().ShedRetries; shed != 1 {
		t.Fatalf("ShedRetries = %d, want exactly the one absorbed rejection", shed)
	}
}

// TestRouterBreakerEjectsAndReadmits drives a replica through
// fail -> ejection -> heal -> probe -> re-admission using only the serving
// path (no background prober), pinning that the breaker both stops the
// bleeding and lets a healed replica back in.
func TestRouterBreakerEjectsAndReadmits(t *testing.T) {
	rt, reps := newTestFleet(t, 2, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerProbation = 50 * time.Millisecond
	})
	h := rt.Handler()
	owner := reps[0].srv.URL
	q := questionOwnedBy(t, rt.ring, "financial", owner)
	reps[0].mode.Store(modeFail)

	// Each request burns one failed attempt on the owner then fails over;
	// two of them trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		if w := postQuery(t, h, "financial", q); w.Code != http.StatusOK {
			t.Fatalf("request %d not absorbed: status %d", i, w.Code)
		}
	}
	if state, _ := rt.replicas[owner].breaker.State(time.Now()); state != "open" {
		t.Fatalf("breaker state %s after consecutive failures, want open", state)
	}
	ownerHits := reps[0].hits.Load()
	for i := 0; i < 5; i++ {
		postQuery(t, h, "financial", q)
	}
	if got := reps[0].hits.Load(); got != ownerHits {
		t.Fatalf("ejected replica received %d requests during probation", got-ownerHits)
	}

	reps[0].mode.Store(modeOK)
	time.Sleep(60 * time.Millisecond) // probation expires
	// First request after probation is the half-open probe; it succeeds and
	// re-admits the owner, so traffic returns to the shard owner.
	if w := postQuery(t, h, "financial", q); w.Header().Get("X-Fleet-Replica") != owner {
		t.Fatalf("healed owner not probed after probation (served by %s)", w.Header().Get("X-Fleet-Replica"))
	}
	if w := postQuery(t, h, "financial", q); w.Header().Get("X-Fleet-Replica") != owner {
		t.Fatal("healed owner not re-admitted after successful probe")
	}
}

// TestRouterAuthoritative4xx pins that client errors are not replica
// faults: a 404 passes through verbatim, is not retried anywhere, and
// leaves the breaker closed.
func TestRouterAuthoritative4xx(t *testing.T) {
	rt, reps := newTestFleet(t, 3, nil)
	h := rt.Handler()
	for _, r := range reps {
		r.mode.Store(modeMissing)
	}
	w := postQuery(t, h, "nope", "whatever")
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 passthrough", w.Code)
	}
	var total int64
	for _, r := range reps {
		total += r.hits.Load()
	}
	if total != 1 {
		t.Fatalf("a 404 burned %d attempts, want 1 (no retry on authoritative errors)", total)
	}
}

// TestRouterHedgesSlowReplica pins the tail-latency bound: a replica in a
// latency spike costs one HedgeDelay, after which the next ring replica
// races it and wins.
func TestRouterHedgesSlowReplica(t *testing.T) {
	rt, reps := newTestFleet(t, 2, func(c *Config) {
		c.HedgeDelay = 50 * time.Millisecond
	})
	h := rt.Handler()
	owner := reps[0].srv.URL
	q := questionOwnedBy(t, rt.ring, "financial", owner)
	reps[0].mode.Store(modeSlow) // 2s stall

	t0 := time.Now()
	w := postQuery(t, h, "financial", q)
	elapsed := time.Since(t0)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if got := w.Header().Get("X-Fleet-Replica"); got == owner {
		t.Fatal("response credited to the stalled owner, want the hedge winner")
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %v — the 2s stall leaked into the tail", elapsed)
	}
	if m := rt.Metrics(); m.HedgedWins == 0 {
		t.Fatalf("HedgedWins = 0 after a hedge won: %+v", m)
	}
}

// TestRouterExhaustionPassesThroughLastResponse: when every replica sheds,
// the client gets the final 429 (with its Retry-After intact) rather than
// a synthetic 502 that hides the backpressure signal.
func TestRouterExhaustionPassesThroughLastResponse(t *testing.T) {
	rt, reps := newTestFleet(t, 2, nil)
	h := rt.Handler()
	for _, r := range reps {
		r.mode.Store(modeShed)
	}
	w := postQuery(t, h, "financial", "q")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 passthrough after exhaustion", w.Code)
	}
	if w.Header().Get("X-Retry-After-Ms") == "" {
		t.Fatal("Retry-After hint lost in exhaustion passthrough")
	}
	if m := rt.Metrics(); m.Exhausted != 1 {
		t.Fatalf("Exhausted = %d, want 1", m.Exhausted)
	}
}

// TestRouterRouteDebugEndpoint pins the shard-mapping contract the CI
// failover smoke scripts against.
func TestRouterRouteDebugEndpoint(t *testing.T) {
	rt, reps := newTestFleet(t, 3, nil)
	h := rt.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/route?db=financial&question=how+many+accounts", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var out struct {
		Owner      string   `json:"owner"`
		Candidates []string `json:"candidates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding route response: %v", err)
	}
	if len(out.Candidates) != 3 || out.Candidates[0] != out.Owner {
		t.Fatalf("route = %+v, want owner-first list of all 3 replicas", out)
	}
	// The debug endpoint and the serving path must agree.
	if got := postQuery(t, h, "financial", "how many accounts").Header().Get("X-Fleet-Replica"); got != out.Owner {
		t.Fatalf("serving path used %s, /v1/route claims %s", got, out.Owner)
	}
	_ = reps
}

// TestRouterReadinessReflectsFleet: with probing on and every replica
// dead, the router's own /healthz?ready flips to 503 so an upstream load
// balancer can stop sending traffic.
func TestRouterReadinessReflectsFleet(t *testing.T) {
	rt, reps := newTestFleet(t, 2, func(c *Config) {
		c.ProbeInterval = 20 * time.Millisecond
	})
	h := rt.Handler()
	for _, r := range reps {
		r.srv.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/healthz?ready", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router still ready %v after every replica died", w.Code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Liveness (no ?ready) stays 200: the router process itself is fine.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("router liveness %d, want 200", w.Code)
	}
}
