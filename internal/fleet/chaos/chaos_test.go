package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newEcho(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Echo-Path", r.URL.Path)
		_, _ = w.Write([]byte(`{"echo":"` + strings.ToUpper(string(body)) + `"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func newProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := NewProxy(target)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestProxyTransparentWhenHealthy(t *testing.T) {
	p := newProxy(t, newEcho(t).URL)
	resp, err := http.Post(p.URL()+"/v1/query?x=1", "application/json", strings.NewReader("hello"))
	if err != nil {
		t.Fatalf("request through idle proxy: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "HELLO") {
		t.Fatalf("proxy mangled the exchange: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Echo-Path"); got != "/v1/query" {
		t.Fatalf("path forwarded as %q", got)
	}
	if p.Injected() != 0 {
		t.Fatalf("idle proxy claims %d injected faults", p.Injected())
	}
}

func TestProxyLatencySpike(t *testing.T) {
	p := newProxy(t, newEcho(t).URL)
	p.SpikeLatency(300*time.Millisecond, 2) // every 2nd request stalls

	fast, slow := 0, 0
	for i := 0; i < 4; i++ {
		t0 := time.Now()
		resp, err := http.Get(p.URL() + "/v1/dbs")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if time.Since(t0) >= 300*time.Millisecond {
			slow++
		} else {
			fast++
		}
	}
	if slow != 2 || fast != 2 {
		t.Fatalf("latency spike hit %d of 4 requests, want exactly every 2nd", slow)
	}
	p.Reset()
	t0 := time.Now()
	resp, err := http.Get(p.URL() + "/v1/dbs")
	if err != nil {
		t.Fatalf("after reset: %v", err)
	}
	resp.Body.Close()
	if time.Since(t0) >= 300*time.Millisecond {
		t.Fatal("Reset did not clear the latency fault")
	}
}

func TestProxy5xxBurst(t *testing.T) {
	echo := newEcho(t)
	p := newProxy(t, echo.URL)
	p.Burst5xx(3)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(p.URL() + "/v1/dbs")
		if err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("burst request %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// Burst exhausted: traffic flows again.
	resp, err := http.Get(p.URL() + "/v1/dbs")
	if err != nil {
		t.Fatalf("post-burst request: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-burst status %d, want 200", resp.StatusCode)
	}
	if p.Injected() != 3 {
		t.Fatalf("Injected() = %d, want 3", p.Injected())
	}
}

func TestProxyTruncation(t *testing.T) {
	p := newProxy(t, newEcho(t).URL)
	p.TruncateEvery(1)
	resp, err := http.Post(p.URL()+"/v1/query", "application/json", strings.NewReader("a long enough body to halve"))
	if err == nil {
		// The abort may surface on body read rather than on headers.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("truncated response read cleanly; want a mid-body transport error")
	}
}

func TestProxyDownAndRecovery(t *testing.T) {
	p := newProxy(t, newEcho(t).URL)
	p.SetDown(true)
	client := &http.Client{Timeout: 2 * time.Second}
	if resp, err := client.Get(p.URL() + "/v1/dbs"); err == nil {
		resp.Body.Close()
		t.Fatal("request through a down proxy succeeded")
	}
	p.SetDown(false)
	resp, err := client.Get(p.URL() + "/v1/dbs")
	if err != nil {
		t.Fatalf("request after recovery: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d", resp.StatusCode)
	}
}
