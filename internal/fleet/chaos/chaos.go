// Package chaos is the fault-injection layer for fleet testing: an HTTP
// proxy that sits between the router and one replica and injects the
// failure modes the fleet must absorb — latency spikes, 5xx bursts,
// mid-body truncation, and total blackout. The chaos suite in benchrun
// -fleetbench and the failover tests drive these knobs while asserting
// zero availability loss at the router.
//
// Faults are injected at the HTTP layer rather than in-process so the
// proxied replica runs its real serving path: what the router observes
// under chaos is exactly what it would observe against a genuinely
// misbehaving node (slow responses, garbage from a dying process,
// connections that reset mid-body).
package chaos

import (
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Proxy is one fault-injecting hop in front of a target base URL. All
// knobs are safe to flip concurrently with traffic. The zero value is not
// usable; construct with NewProxy.
type Proxy struct {
	target string
	ln     net.Listener
	srv    *http.Server
	client *http.Client

	seq atomic.Int64 // request counter driving every-Nth faults

	// latencyNs stalls every latencyEvery-th request by latencyNs before
	// forwarding; latencyEvery == 0 disables.
	latencyNs    atomic.Int64
	latencyEvery atomic.Int64

	// errBurst is a countdown of requests to answer 500 without
	// forwarding — a replica whose process is up but whose handler is
	// broken.
	errBurst atomic.Int64

	// truncateEvery aborts every Nth response halfway through its body —
	// the client sees a reset mid-stream; 0 disables.
	truncateEvery atomic.Int64

	// down hard-closes every connection without reading the request — the
	// closest an HTTP proxy gets to a SIGKILLed process.
	down atomic.Bool

	injected atomic.Int64 // total faults injected, for reporting
}

// NewProxy starts a proxy on an ephemeral localhost port forwarding to
// the target base URL (e.g. a seedd replica's http://127.0.0.1:port).
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}},
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go func() { _ = p.srv.Serve(ln) }()
	return p, nil
}

// URL returns the proxy's base URL; the router is pointed here instead of
// at the replica.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Close stops the proxy and drops every open connection.
func (p *Proxy) Close() { _ = p.srv.Close() }

// Injected returns how many faults this proxy has injected so far.
func (p *Proxy) Injected() int64 { return p.injected.Load() }

// SetDown makes the proxy drop every connection (true) or forward
// normally again (false). Unlike Close this is reversible, modeling a
// network partition or a crashed-then-restarted process.
func (p *Proxy) SetDown(down bool) { p.down.Store(down) }

// SpikeLatency stalls every nth request by d before forwarding. n <= 0
// disables the fault.
func (p *Proxy) SpikeLatency(d time.Duration, n int) {
	if n <= 0 {
		p.latencyEvery.Store(0)
		return
	}
	p.latencyNs.Store(int64(d))
	p.latencyEvery.Store(int64(n))
}

// Burst5xx makes the next n requests answer 500 without reaching the
// replica.
func (p *Proxy) Burst5xx(n int) { p.errBurst.Store(int64(n)) }

// TruncateEvery aborts every nth response mid-body. n <= 0 disables.
func (p *Proxy) TruncateEvery(n int) { p.truncateEvery.Store(int64(n)) }

// Reset clears every fault; the proxy becomes a transparent hop.
func (p *Proxy) Reset() {
	p.down.Store(false)
	p.latencyEvery.Store(0)
	p.errBurst.Store(0)
	p.truncateEvery.Store(0)
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	n := p.seq.Add(1)

	if p.down.Load() {
		p.injected.Add(1)
		// Hijack and slam the connection: the client sees a reset, not a
		// well-formed HTTP error — the same signature as a killed process.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}

	if every := p.latencyEvery.Load(); every > 0 && n%every == 0 {
		p.injected.Add(1)
		time.Sleep(time.Duration(p.latencyNs.Load()))
	}

	if p.errBurst.Load() > 0 && p.errBurst.Add(-1) >= 0 {
		p.injected.Add(1)
		http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
		return
	}

	// Forward to the target, streaming the response back.
	url := p.target + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()

	truncate := false
	if every := p.truncateEvery.Load(); every > 0 && n%every == 0 {
		truncate = true
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if truncate {
		p.injected.Add(1)
		body, _ := io.ReadAll(resp.Body)
		w.WriteHeader(resp.StatusCode)
		if len(body) > 1 {
			_, _ = w.Write(body[:len(body)/2])
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Abort the connection so the client sees a mid-body reset rather
		// than a short-but-complete response.
		panic(http.ErrAbortHandler)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
