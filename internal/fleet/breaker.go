package fleet

import (
	"sync"
	"time"
)

// Breaker states.
const (
	// breakerClosed admits traffic normally.
	breakerClosed = iota
	// breakerOpen ejects the replica: no traffic until probation expires.
	breakerOpen
	// breakerHalfOpen admits exactly one probe request; its outcome
	// decides between re-admission and a longer probation.
	breakerHalfOpen
)

// stateNames renders breaker states for metrics and logs.
var stateNames = [...]string{"closed", "open", "half_open"}

// Breaker is a per-replica circuit breaker: Threshold consecutive
// failures eject the replica for Probation; after probation one probe
// request is admitted, and its outcome either re-admits the replica or
// re-ejects it with doubled probation (capped at MaxProbation). Doubling
// is what keeps a flapping replica — one that answers the probe and then
// fails again — from soaking up a retry per probation window forever.
//
// A Breaker is safe for concurrent use. The zero value is not usable;
// construct with NewBreaker.
type Breaker struct {
	mu           sync.Mutex
	threshold    int
	probation    time.Duration
	maxProbation time.Duration

	state     int
	fails     int           // consecutive failures while closed
	openUntil time.Time     // when the open state expires into half-open
	current   time.Duration // this ejection's probation (doubles on re-ejection)
	probing   bool          // a half-open probe is in flight

	trips int64 // closed->open transitions, for metrics
}

// NewBreaker builds a breaker. threshold <= 0 defaults to 5 consecutive
// failures; probation <= 0 defaults to 1s; maxProbation <= probation
// defaults to 16x probation.
func NewBreaker(threshold int, probation, maxProbation time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if probation <= 0 {
		probation = time.Second
	}
	if maxProbation <= probation {
		maxProbation = 16 * probation
	}
	return &Breaker{threshold: threshold, probation: probation, maxProbation: maxProbation, current: probation}
}

// Allow reports whether a request may be sent to this replica now. In the
// half-open state only one caller wins the probe slot; everyone else is
// refused until the probe's Record lands.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = false
		fallthrough
	default: // breakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports one request outcome. Failures while closed accumulate
// toward ejection; a half-open probe failure re-ejects with doubled
// probation, a probe success closes the breaker and resets probation.
func (b *Breaker) Record(success bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.trip(now)
		}
	case breakerHalfOpen:
		b.probing = false
		if success {
			b.state = breakerClosed
			b.fails = 0
			b.current = b.probation
			return
		}
		b.current *= 2
		if b.current > b.maxProbation {
			b.current = b.maxProbation
		}
		b.trip(now)
	case breakerOpen:
		// A straggler from before the trip; the open timer already covers it.
	}
}

// ForceOpen ejects the replica immediately — the health prober calls this
// when liveness itself fails, so the serving path stops trying a dead
// replica without burning Threshold requests on it first.
func (b *Breaker) ForceOpen(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		b.trip(now)
	}
}

// trip transitions to open. Callers must hold b.mu.
func (b *Breaker) trip(now time.Time) {
	b.state = breakerOpen
	b.openUntil = now.Add(b.current)
	b.fails = 0
	b.trips++
}

// State returns the current state name and the closed->open trip count.
func (b *Breaker) State(now time.Time) (string, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.state
	if s == breakerOpen && !now.Before(b.openUntil) {
		// Probation has expired; the next Allow will flip to half-open.
		s = breakerHalfOpen
	}
	return stateNames[s], b.trips
}
