package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Config assembles a Router. Replicas is required; everything else has
// fleet-shaped defaults.
type Config struct {
	// Replicas are the seedd backend base URLs (e.g.
	// "http://127.0.0.1:8081"). The consistent-hash ring is built over
	// exactly this set.
	Replicas []string
	// VirtualNodes is the per-replica virtual-node count on the ring;
	// <= 0 uses DefaultVirtualNodes.
	VirtualNodes int
	// MaxAttempts bounds how many backend attempts one client request may
	// spend across retries and hedges; <= 0 defaults to 3 (or the replica
	// count, whichever is larger, so a full ring walk is always possible).
	MaxAttempts int
	// RequestTimeout is the end-to-end client deadline across all
	// attempts; <= 0 defaults to 30s.
	RequestTimeout time.Duration
	// AttemptTimeout bounds one backend attempt; <= 0 defaults to 10s.
	AttemptTimeout time.Duration
	// HedgeDelay is how long the router waits on an in-flight attempt
	// before racing a duplicate against the next ring replica. This is
	// the bounded-tail-latency knob: a replica in a latency spike costs
	// at most HedgeDelay extra, not its whole spike. <= 0 defaults to
	// 250ms.
	HedgeDelay time.Duration
	// BaseBackoff seeds the exponential backoff between retry attempts
	// after a hard failure; <= 0 defaults to 10ms. Every wait is jittered
	// to half-to-full of its nominal value so synchronized clients spread
	// out.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; <= 0 defaults to 1s.
	MaxBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that ejects a
	// replica (see NewBreaker); <= 0 defaults to 5.
	BreakerThreshold int
	// BreakerProbation is the initial ejection duration, doubling while
	// the replica flaps; <= 0 defaults to 1s.
	BreakerProbation time.Duration
	// BreakerMaxProbation caps the doubling; <= BreakerProbation defaults
	// to 16x BreakerProbation.
	BreakerMaxProbation time.Duration
	// ProbeInterval is the per-replica health-probe period; <= 0 disables
	// background probing (the serving path still learns from its own
	// failures).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip; <= 0 defaults to 1s.
	ProbeTimeout time.Duration
	// Client is the backend HTTP client; nil builds a pooled default.
	Client *http.Client
	// Logger receives structured routing logs; nil uses slog.Default().
	Logger *slog.Logger
}

// maxProxiedBody bounds how much of a backend response the router will
// buffer before relaying it. Buffering (rather than streaming) is what
// lets a mid-body backend death turn into a retry instead of a truncated
// client response.
const maxProxiedBody = 32 << 20

// Router is the fleet front tier: an http.Handler that shards /v1/query
// and /v1/evidence across replicas by consistent hash of (db, question),
// fails over along the ring, and keeps itself observable at /healthz and
// /metrics. Construct with NewRouter; Close stops the health probers.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	client   *http.Client
	log      *slog.Logger

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup

	rr    atomic.Int64 // round-robin cursor for unsharded routes
	start time.Time
	reg   *obs.Registry

	requests     atomic.Int64
	attempts     atomic.Int64
	failovers    atomic.Int64 // attempts beyond the first, per request
	hedgedWins   atomic.Int64 // requests won by a non-first attempt
	shedRetries  atomic.Int64 // 429/503 responses absorbed by retrying elsewhere
	exhausted    atomic.Int64 // requests that ran out of attempts
	clientFivexx atomic.Int64 // 5xx the router returned to its client
	clientClosed atomic.Int64 // requests abandoned by the client (499s)
	canceledAtts atomic.Int64 // attempts cut short by client cancellation

	lat latencyReservoir
}

// NewRouter builds the front tier and starts its health probers.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: Config.Replicas is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxAttempts < len(cfg.Replicas) {
		// A full ring walk must always be possible: N-1 failures with a
		// healthy last replica should never exhaust the budget.
		cfg.MaxAttempts = len(cfg.Replicas)
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.HedgeDelay <= 0 {
		cfg.HedgeDelay = 250 * time.Millisecond
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}}
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas, cfg.VirtualNodes),
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		client:   client,
		log:      cfg.Logger,
		start:    time.Now(),
	}
	for _, name := range rt.ring.Replicas() {
		rt.replicas[name] = newReplica(name, cfg.BreakerThreshold, cfg.BreakerProbation, cfg.BreakerMaxProbation)
	}
	rt.initObs()
	rt.probeCtx, rt.probeCancel = context.WithCancel(context.Background())
	if cfg.ProbeInterval > 0 {
		for _, rep := range rt.replicas {
			rt.probeWG.Add(1)
			go rt.probeLoop(rep)
		}
	}
	return rt, nil
}

// probeLoop drives one replica's liveness/readiness probes until Close.
// The first probe fires immediately so a router started against a dead
// replica ejects it within one interval, not two.
func (rt *Router) probeLoop(rep *replica) {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	rep.probe(rt.probeCtx, rt.client, rt.cfg.ProbeTimeout)
	for {
		select {
		case <-rt.probeCtx.Done():
			return
		case <-t.C:
			rep.probe(rt.probeCtx, rt.client, rt.cfg.ProbeTimeout)
		}
	}
}

// Close stops the health probers. In-flight requests finish normally.
func (rt *Router) Close() {
	rt.probeCancel()
	rt.probeWG.Wait()
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", rt.stamp(rt.serveSharded))
	mux.HandleFunc("POST /v1/evidence", rt.stamp(rt.serveSharded))
	mux.HandleFunc("GET /v1/dbs", rt.stamp(rt.serveAny))
	mux.HandleFunc("GET /v1/examples", rt.stamp(rt.serveAny))
	mux.HandleFunc("GET /v1/route", rt.stamp(rt.handleRoute))
	mux.HandleFunc("GET /healthz", rt.stamp(rt.handleHealthz))
	mux.HandleFunc("GET /metrics", rt.stamp(rt.handleMetrics))
	return mux
}

// serveSharded routes a body-carrying request by consistent hash of its
// (db, question) pair, so repeat questions land on the replica whose
// evidence cache and store are hot for them.
func (rt *Router) serveSharded(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxiedBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	// Routing needs only the api.QueryRequest identity fields; the raw
	// body passes through to the replica untouched.
	var sr api.QueryRequest
	if err := json.Unmarshal(body, &sr); err != nil {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Sprintf("malformed request body: %v", err))
		return
	}
	q := sr.Question
	if q == "" {
		// ID-only requests shard by the id instead; the mapping only needs
		// to be stable per request shape for cache affinity to hold.
		q = sr.ID
	}
	rt.forward(w, r, body, rt.candidatesFor(ShardKey(sr.DB, q)))
}

// serveAny routes an unsharded read to any replica, rotating the starting
// point so listing traffic spreads across the fleet.
func (rt *Router) serveAny(w http.ResponseWriter, r *http.Request) {
	names := rt.ring.Replicas()
	startAt := int(rt.rr.Add(1)) % len(names)
	cands := make([]*replica, 0, len(names))
	for i := range names {
		cands = append(cands, rt.replicas[names[(startAt+i)%len(names)]])
	}
	rt.forward(w, r, nil, cands)
}

// candidatesFor lists the key's replicas in failover order: the shard
// owner first, then its ring successors.
func (rt *Router) candidatesFor(key string) []*replica {
	names := rt.ring.Successors(key, len(rt.replicas))
	cands := make([]*replica, len(names))
	for i, n := range names {
		cands[i] = rt.replicas[n]
	}
	return cands
}

// attemptResult is one backend attempt's outcome, body fully buffered.
type attemptResult struct {
	rep    *replica
	status int
	header http.Header
	body   []byte
	err    error
	index  int // 0 = first attempt, >0 = retry/hedge
}

// final reports whether the result should be relayed to the client as-is:
// any response that is not a replica fault (transport error, 5xx) and not
// an admission shed (429, or 503 which also covers draining replicas).
func (a attemptResult) final() bool {
	if a.err != nil {
		return false
	}
	if a.status == http.StatusTooManyRequests || a.status == http.StatusServiceUnavailable {
		return false
	}
	return a.status < 500
}

// shed reports a 429/503 admission rejection — the replica is alive but
// asked for backoff, so it cools down without a breaker penalty.
func (a attemptResult) shed() bool {
	return a.err == nil &&
		(a.status == http.StatusTooManyRequests || a.status == http.StatusServiceUnavailable)
}

// fwdMeta is the per-request identity the forwarding path threads through
// its attempts and logs: the request ID (stamped by stamp, echoed on the
// response, propagated to every attempt) and the trace ID (a client
// traceparent when one arrived, fresh otherwise — every attempt carries it
// so the serving replica's trace is joinable from the router log line).
type fwdMeta struct {
	path    string
	reqID   string
	traceID string
}

// forward relays one client request to the candidate replicas: bounded
// attempts, exponential backoff with jitter between retries, and a hedge
// to the next ring replica when the current attempt is slow. The first
// final response wins; losers are cancelled.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, cands []*replica) {
	t0 := time.Now()
	rt.requests.Add(1)
	meta := fwdMeta{path: r.URL.Path, reqID: r.Header.Get(obs.RequestIDHeader)}
	if tid, _, ok := obs.Extract(r.Header); ok {
		meta.traceID = tid
	} else {
		meta.traceID = obs.NewTraceID()
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	results := make(chan attemptResult, rt.cfg.MaxAttempts)
	tried := make(map[*replica]int, len(cands))
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	launch := func(index int) bool {
		rep := nextCandidate(cands, tried, time.Now())
		if rep == nil {
			return false
		}
		tried[rep]++
		rep.attempts.Add(1)
		if index > 0 {
			rep.hedges.Add(1)
			rt.failovers.Add(1)
		}
		rt.attempts.Add(1)
		actx, acancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		cancels = append(cancels, acancel)
		go rt.attempt(actx, rep, r, body, meta, index, results)
		return true
	}

	launched, done := 0, 0
	var last attemptResult
	timer := time.NewTimer(0) // first attempt fires immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			rt.relayFailure(w, ctx, last, t0, meta)
			return
		case <-timer.C:
			if launched < rt.cfg.MaxAttempts && launch(launched) {
				launched++
				// The hedge timer: if this attempt hasn't resolved within
				// HedgeDelay, race the next replica against it.
				timer.Reset(jittered(rt.cfg.HedgeDelay))
			} else if done == launched {
				// Nothing in flight and nothing launchable.
				rt.relayFailure(w, ctx, last, t0, meta)
				return
			}
		case res := <-results:
			done++
			rt.record(res)
			if res.final() {
				cancel() // abandon any slower hedges
				if res.index > 0 {
					rt.hedgedWins.Add(1)
				}
				rt.relay(w, res, t0, meta)
				return
			}
			last = res
			if launched < rt.cfg.MaxAttempts {
				// A failed attempt accelerates the next one: back off
				// exponentially (with jitter) rather than waiting out the
				// full hedge delay.
				timer.Reset(rt.backoff(launched))
			} else if done == launched {
				rt.relayFailure(w, ctx, last, t0, meta)
				return
			}
		}
	}
}

// record applies one attempt outcome to its replica's breaker, cooldown
// and counters.
func (rt *Router) record(res attemptResult) {
	now := time.Now()
	switch {
	case res.err != nil && errors.Is(res.err, context.Canceled):
		// The client hung up (or the request was abandoned) while this
		// attempt was in flight: the replica did nothing wrong, so the
		// breaker must not hear about it — counting these as faults is how
		// a wave of impatient clients ejects a healthy replica.
		rt.canceledAtts.Add(1)
	case res.err != nil:
		res.rep.failures.Add(1)
		res.rep.breaker.Record(false, now)
	case res.shed():
		// The replica is alive but shedding load (or draining): honor its
		// Retry-After and leave the breaker alone — overload is not a
		// fault, and ejecting a shedding replica would amplify the
		// overload on its peers.
		res.rep.shed.Add(1)
		rt.shedRetries.Add(1)
		res.rep.coolDown(now.Add(jittered(retryAfterHint(res.header, 250*time.Millisecond))))
		res.rep.breaker.Record(true, now)
	case res.status >= 500:
		res.rep.failures.Add(1)
		res.rep.breaker.Record(false, now)
	default:
		res.rep.breaker.Record(true, now)
	}
}

// attempt performs one backend round trip, buffering the response body so
// a mid-body failure is retryable.
func (rt *Router) attempt(ctx context.Context, rep *replica, r *http.Request, body []byte, meta fwdMeta, index int, out chan<- attemptResult) {
	url := rep.name + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, reader)
	if err != nil {
		out <- attemptResult{rep: rep, err: err, index: index}
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	// Every attempt carries the same trace and request ID (one client
	// request is one trace, however many replicas it touches) plus its
	// attempt index, so the serving replica's trace records whether it was
	// the shard owner or a retry/hedge successor. The span ID is fresh per
	// attempt: it is the parent of everything that replica records.
	obs.Inject(req.Header, meta.traceID, "")
	req.Header.Set(obs.RequestIDHeader, meta.reqID)
	req.Header.Set(obs.FleetAttemptHeader, fmt.Sprint(index))
	resp, err := rt.client.Do(req)
	if err != nil {
		out <- attemptResult{rep: rep, err: err, index: index}
		return
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxProxiedBody))
	resp.Body.Close()
	if err != nil {
		// The replica died (or was chaos-truncated) mid-body: the client
		// saw nothing yet, so this is still retryable.
		out <- attemptResult{rep: rep, err: fmt.Errorf("reading response body: %w", err), index: index}
		return
	}
	out <- attemptResult{rep: rep, status: resp.StatusCode, header: resp.Header, body: buf, index: index}
}

// backoff returns the jittered exponential delay before attempt n+1.
func (rt *Router) backoff(n int) time.Duration {
	d := rt.cfg.BaseBackoff
	for i := 1; i < n && d < rt.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > rt.cfg.MaxBackoff {
		d = rt.cfg.MaxBackoff
	}
	return jittered(d)
}

// jittered spreads a nominal delay over [d/2, d) so synchronized retries
// (many clients, or many shards failing over at once) decorrelate.
func jittered(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)))
}

// nextCandidate picks the replica for the next attempt: first an untried
// eligible replica in ring order; failing that, an untried replica even
// if ineligible (availability beats a stale breaker verdict when there is
// nothing else to try); failing that, the least-retried replica (a
// one-replica fleet still gets its bounded retries).
func nextCandidate(cands []*replica, tried map[*replica]int, now time.Time) *replica {
	for _, c := range cands {
		if tried[c] == 0 && c.eligible(now) {
			return c
		}
	}
	for _, c := range cands {
		if tried[c] == 0 {
			return c
		}
	}
	var best *replica
	for _, c := range cands {
		if best == nil || tried[c] < tried[best] {
			best = c
		}
	}
	return best
}

// relay writes a buffered backend response to the client, stamping which
// replica served it (X-Fleet-Replica) so failover is observable end to
// end.
func (rt *Router) relay(w http.ResponseWriter, res attemptResult, t0 time.Time, meta fwdMeta) {
	// X-Trace-Id relays through so the client can fetch the serving
	// replica's trace for the request it just made.
	for _, h := range []string{"Content-Type", "Retry-After", "X-Retry-After-Ms", obs.TraceIDHeader} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fleet-Replica", res.rep.name)
	if res.status >= 500 {
		rt.clientFivexx.Add(1)
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
	d := time.Since(t0)
	rt.lat.observe(d)
	rt.log.Info("request",
		"route", meta.path, "status", res.status, "replica", res.rep.name,
		"attempt", res.index, "duration_us", d.Microseconds(),
		"request_id", meta.reqID, "trace_id", meta.traceID)
}

// relayFailure answers a client whose attempts are exhausted. A request
// the *client* abandoned answers 499 and stays out of the 5xx accounting
// — the fleet did not fail, the caller left. Otherwise: the last backend
// response verbatim when there was one (its Retry-After still means
// something), a 504 when the request deadline expired, a 502 when every
// attempt faulted.
func (rt *Router) relayFailure(w http.ResponseWriter, ctx context.Context, last attemptResult, t0 time.Time, meta fwdMeta) {
	rt.exhausted.Add(1)
	if errors.Is(ctx.Err(), context.Canceled) {
		rt.clientClosed.Add(1)
		status := api.StatusClientClosedRequest
		rt.writeError(w, status, api.CodeClientClosed, "client closed request")
		d := time.Since(t0)
		rt.lat.observe(d)
		rt.log.Info("request abandoned by client",
			"route", meta.path, "status", status, "duration_us", d.Microseconds(),
			"request_id", meta.reqID, "trace_id", meta.traceID)
		return
	}
	if last.err == nil && last.status != 0 {
		rt.relay(w, last, t0, meta)
		return
	}
	status, code := http.StatusBadGateway, api.CodeUpstreamError
	msg := "no replica answered"
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		status, code = http.StatusGatewayTimeout, api.CodeUpstreamTimeout
		msg = "no replica answered within the request deadline"
	}
	if last.err != nil {
		msg = fmt.Sprintf("%s: %v", msg, last.err)
	}
	rt.clientFivexx.Add(1)
	rt.writeError(w, status, code, msg)
	d := time.Since(t0)
	rt.lat.observe(d)
	rt.log.Warn("request exhausted",
		"route", meta.path, "status", status, "duration_us", d.Microseconds(),
		"request_id", meta.reqID, "trace_id", meta.traceID, "error", msg)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	api.WriteError(w, status, code, msg)
}

// handleRoute is the shard-mapping debug endpoint: GET
// /v1/route?db=<db>&question=<q> returns the owner and failover order for
// that key. The CI failover smoke uses it to find a question owned by the
// replica it is about to kill.
func (rt *Router) handleRoute(w http.ResponseWriter, r *http.Request) {
	db := r.URL.Query().Get("db")
	q := r.URL.Query().Get("question")
	if db == "" || q == "" {
		rt.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "db and question query parameters are required")
		return
	}
	names := rt.ring.Successors(ShardKey(db, q), len(rt.replicas))
	out := struct {
		DB         string   `json:"db"`
		Question   string   `json:"question"`
		Owner      string   `json:"owner"`
		Candidates []string `json:"candidates"`
	}{DB: db, Question: q, Candidates: names}
	if len(names) > 0 {
		out.Owner = names[0]
	}
	rt.writeJSON(w, out)
}

// handleHealthz reports the router's own health. With ?ready it answers
// 503 unless at least one replica is alive and ready — the same
// liveness/readiness split the replicas themselves expose, so routers can
// stack behind load balancers.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	statuses := rt.replicaStatuses(now)
	readyCount := 0
	for _, s := range statuses {
		if s.Alive && s.Ready {
			readyCount++
		}
	}
	if r.URL.Query().Has("ready") && readyCount == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "no ready replicas", "replicas": statuses})
		return
	}
	rt.writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(rt.start).Seconds(),
		"ready_replicas": readyCount,
		"replicas":       statuses,
	})
}

// Metrics is the router's /metrics snapshot.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts client requests; Attempts counts backend round
	// trips spent on them (attempts/requests > 1 means retries/hedges).
	Requests int64 `json:"requests"`
	Attempts int64 `json:"attempts"`
	// Failovers counts attempts sent anywhere but the first choice.
	Failovers int64 `json:"failovers"`
	// HedgedWins counts requests whose winning response came from a
	// retry or hedge rather than the first attempt.
	HedgedWins int64 `json:"hedged_wins"`
	// ShedRetries counts 429/503 admission rejections the router
	// absorbed by retrying another replica.
	ShedRetries int64 `json:"shed_retries"`
	// Exhausted counts requests that ran out of attempts.
	Exhausted int64 `json:"exhausted"`
	// ClientFivexx counts 5xx responses the router returned to clients —
	// the availability-loss number the chaos suite pins at zero.
	ClientFivexx int64           `json:"client_5xx"`
	ClientClosed int64           `json:"client_closed"`
	CanceledAtts int64           `json:"canceled_attempts"`
	P50Micros    float64         `json:"p50_us"`
	P99Micros    float64         `json:"p99_us"`
	MaxMicros    float64         `json:"max_us"`
	Replicas     []ReplicaStatus `json:"replicas"`
}

// Metrics snapshots the router counters.
func (rt *Router) Metrics() Metrics {
	p50, p99, max := rt.lat.quantiles()
	return Metrics{
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Requests:      rt.requests.Load(),
		Attempts:      rt.attempts.Load(),
		Failovers:     rt.failovers.Load(),
		HedgedWins:    rt.hedgedWins.Load(),
		ShedRetries:   rt.shedRetries.Load(),
		Exhausted:     rt.exhausted.Load(),
		ClientFivexx:  rt.clientFivexx.Load(),
		ClientClosed:  rt.clientClosed.Load(),
		CanceledAtts:  rt.canceledAtts.Load(),
		P50Micros:     p50,
		P99Micros:     p99,
		MaxMicros:     max,
		Replicas:      rt.replicaStatuses(time.Now()),
	}
}

func (rt *Router) replicaStatuses(now time.Time) []ReplicaStatus {
	names := rt.ring.Replicas()
	out := make([]ReplicaStatus, len(names))
	for i, n := range names {
		out[i] = rt.replicas[n].status(now)
	}
	return out
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if isJSONFormat(r) {
		rt.writeJSON(w, rt.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}

func (rt *Router) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// latencyReservoir keeps the most recent request latencies for quantile
// estimation — a fixed ring so memory stays bounded under any load.
type latencyReservoir struct {
	mu      sync.Mutex
	samples [4096]int64
	n       int64
}

func (lr *latencyReservoir) observe(d time.Duration) {
	lr.mu.Lock()
	lr.samples[lr.n%int64(len(lr.samples))] = d.Microseconds()
	lr.n++
	lr.mu.Unlock()
}

func (lr *latencyReservoir) quantiles() (p50, p99, max float64) {
	lr.mu.Lock()
	n := lr.n
	if n > int64(len(lr.samples)) {
		n = int64(len(lr.samples))
	}
	snap := make([]int64, n)
	copy(snap, lr.samples[:n])
	lr.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	at := func(q float64) float64 {
		i := int(q*float64(len(snap))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(snap) {
			i = len(snap) - 1
		}
		return float64(snap[i])
	}
	return at(0.50), at(0.99), float64(snap[len(snap)-1])
}
