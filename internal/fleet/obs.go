package fleet

import (
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// initObs registers the router's counters into an obs.Registry so the
// front tier speaks the same Prometheus exposition as the replicas. The
// existing atomics stay the source of truth (the JSON Metrics snapshot
// reads them directly); the registry wraps them in scrape-time gauges.
func (rt *Router) initObs() {
	rt.reg = obs.NewRegistry()
	rt.reg.GaugeFunc("fleet_uptime_seconds", "Router process uptime.",
		func() float64 { return time.Since(rt.start).Seconds() })

	counter := func(name, help string, v *atomic.Int64) {
		rt.reg.GaugeFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("fleet_requests_total", "Client requests.", &rt.requests)
	counter("fleet_attempts_total", "Backend round trips spent on client requests.", &rt.attempts)
	counter("fleet_failovers_total", "Attempts sent anywhere but the first-choice replica.", &rt.failovers)
	counter("fleet_hedged_wins_total", "Requests won by a retry or hedge rather than the first attempt.", &rt.hedgedWins)
	counter("fleet_shed_retries_total", "429/503 sheds absorbed by retrying another replica.", &rt.shedRetries)
	counter("fleet_exhausted_total", "Requests that ran out of attempts.", &rt.exhausted)
	counter("fleet_client_5xx_total", "5xx responses returned to clients.", &rt.clientFivexx)

	quantile := func(name, help string, pick func(p50, p99, max float64) float64) {
		rt.reg.GaugeFunc(name, help, func() float64 {
			return pick(rt.lat.quantiles())
		})
	}
	quantile("fleet_request_p50_us", "Median end-to-end request latency in microseconds.",
		func(p50, _, _ float64) float64 { return p50 })
	quantile("fleet_request_p99_us", "P99 end-to-end request latency in microseconds.",
		func(_, p99, _ float64) float64 { return p99 })
	quantile("fleet_request_max_us", "Max end-to-end request latency in microseconds over the sample window.",
		func(_, _, max float64) float64 { return max })

	for name, rep := range rt.replicas {
		rep := rep
		l := obs.L("replica", name)
		bool01 := func(b *atomic.Bool) func() float64 {
			return func() float64 {
				if b.Load() {
					return 1
				}
				return 0
			}
		}
		rt.reg.GaugeFunc("fleet_replica_alive", "1 when the replica answers health probes.", bool01(&rep.alive), l)
		rt.reg.GaugeFunc("fleet_replica_ready", "1 when the replica reports ready (not draining).", bool01(&rep.ready), l)
		repCounter := func(mname, help string, v *atomic.Int64) {
			rt.reg.GaugeFunc(mname, help, func() float64 { return float64(v.Load()) }, l)
		}
		repCounter("fleet_replica_attempts_total", "Requests sent to this replica.", &rep.attempts)
		repCounter("fleet_replica_failures_total", "Transport errors and 5xx outcomes from this replica.", &rep.failures)
		repCounter("fleet_replica_shed_total", "429/503 admission rejections this replica returned.", &rep.shed)
		repCounter("fleet_replica_hedges_total", "Requests routed here as a hedge or failover.", &rep.hedges)
		repCounter("fleet_replica_probe_errors_total", "Health-probe round trips that failed.", &rep.probeErrs)
	}
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// stamp is the router's outermost middleware: it resolves the request ID
// (propagating a client-supplied one, minting one otherwise), echoes it on
// the response before any outcome is decided — sheds, 502s and proxied
// responses all carry it — and writes it back into the request headers so
// the forwarding path propagates the same ID to the chosen replica.
func (rt *Router) stamp(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := obs.RequestID(r.Header)
		r.Header.Set(obs.RequestIDHeader, reqID)
		w.Header().Set(obs.RequestIDHeader, reqID)
		h(w, r)
	}
}

// isJSONFormat reports whether the /metrics request asked for the legacy
// JSON snapshot (?format=json).
func isJSONFormat(r *http.Request) bool {
	return strings.EqualFold(r.URL.Query().Get("format"), "json")
}
