package fleet

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// mustRouter builds a router over cfg with test-friendly logging.
func mustRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestForwardPropagatesTraceHeaders pins the router's side of the trace
// contract: every backend attempt carries the client's trace ID (or a
// fresh one), the request ID, and its attempt index; the response relays
// the replica's X-Trace-Id and echoes X-Request-Id.
func TestForwardPropagatesTraceHeaders(t *testing.T) {
	var mu sync.Mutex
	var gotTraceparent, gotReqID, gotAttempt string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		mu.Lock()
		gotTraceparent = r.Header.Get(obs.TraceparentHeader)
		gotReqID = r.Header.Get(obs.RequestIDHeader)
		gotAttempt = r.Header.Get(obs.FleetAttemptHeader)
		mu.Unlock()
		w.Header().Set(obs.TraceIDHeader, "deadbeef")
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(backend.Close)

	rt := mustRouter(t, Config{Replicas: []string{backend.URL}})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	clientTrace := obs.NewTraceID()
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/query",
		strings.NewReader(`{"db":"financial","question":"q"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "rid-42")
	obs.Inject(req.Header, clientTrace, "")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	wantPrefix := "00-" + clientTrace + "-"
	if !strings.HasPrefix(gotTraceparent, wantPrefix) {
		t.Errorf("backend traceparent = %q, want prefix %q (client trace propagated)", gotTraceparent, wantPrefix)
	}
	if gotReqID != "rid-42" {
		t.Errorf("backend %s = %q, want rid-42", obs.RequestIDHeader, gotReqID)
	}
	if gotAttempt != "0" {
		t.Errorf("backend %s = %q, want 0 (first attempt)", obs.FleetAttemptHeader, gotAttempt)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "rid-42" {
		t.Errorf("router response %s = %q, want rid-42", obs.RequestIDHeader, got)
	}
	if got := resp.Header.Get(obs.TraceIDHeader); got != "deadbeef" {
		t.Errorf("router response %s = %q, want the replica's deadbeef relayed", obs.TraceIDHeader, got)
	}
}

// TestRequestIDMintedAndEchoedOnFailure pins the no-replica-answered
// path: even a 502 minted by the router itself carries a request ID.
func TestRequestIDMintedAndEchoedOnFailure(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	rt := mustRouter(t, Config{Replicas: []string{deadURL}, MaxAttempts: 1})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	resp, err := http.Post(front.URL+"/v1/query", "application/json",
		strings.NewReader(`{"db":"financial","question":"q"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead fleet = %d, want 502", resp.StatusCode)
	}
	if resp.Header.Get(obs.RequestIDHeader) == "" {
		t.Errorf("502 response carries no %s", obs.RequestIDHeader)
	}
}

// TestRouterMetricsPrometheusDefault pins the router's exposition switch:
// Prometheus text by default, the legacy JSON snapshot behind
// ?format=json.
func TestRouterMetricsPrometheusDefault(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(backend.Close)
	rt := mustRouter(t, Config{Replicas: []string{backend.URL}})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	for _, want := range []string{
		"# TYPE fleet_requests_total gauge",
		"fleet_replica_alive{replica=",
		"fleet_request_p99_us",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics exposition is missing %q", want)
		}
	}

	jresp, err := http.Get(front.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if !strings.Contains(string(jbody), `"client_5xx"`) {
		t.Errorf("?format=json is not the legacy snapshot: %s", jbody)
	}
}
