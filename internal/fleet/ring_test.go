package fleet

import (
	"fmt"
	"testing"
)

// testKeys builds a deterministic 10k-question keyspace shaped like real
// routing keys: a handful of databases, many distinct questions.
func testKeys(n int) []string {
	dbs := []string{"financial", "california_schools", "toxicology", "card_games"}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = ShardKey(dbs[i%len(dbs)], fmt.Sprintf("question %d about column %d", i, i*7))
	}
	return keys
}

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://127.0.0.1:%d", 9000+i)
	}
	return names
}

// TestRingMinimalRemapOnMembershipChange is the consistent-hashing
// property the shard-aware router depends on: adding or removing one of N
// replicas may remap only ~1/N of the keyspace. A modulo-hash router
// would remap nearly everything, flushing every replica's hot cache on
// each membership change.
func TestRingMinimalRemapOnMembershipChange(t *testing.T) {
	keys := testKeys(10000)
	const n = 5
	full := NewRing(replicaNames(n), 0)

	t.Run("remove one of N", func(t *testing.T) {
		smaller := NewRing(replicaNames(n)[:n-1], 0)
		removed := replicaNames(n)[n-1]
		moved := 0
		for _, k := range keys {
			before, _ := full.Owner(k)
			after, _ := smaller.Owner(k)
			if before != after {
				moved++
				// Only keys the departed replica owned may move; everything
				// else must stay put — that is what keeps surviving caches hot.
				if before != removed {
					t.Fatalf("key %q moved from surviving replica %s to %s", k, before, after)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1.0 / float64(n)
		if frac > 1.5*ideal {
			t.Fatalf("removing 1 of %d replicas remapped %.3f of the keyspace (ideal %.3f, bound %.3f)",
				n, frac, ideal, 1.5*ideal)
		}
	})

	t.Run("add one more", func(t *testing.T) {
		bigger := NewRing(replicaNames(n+1), 0)
		added := replicaNames(n + 1)[n]
		moved := 0
		for _, k := range keys {
			before, _ := full.Owner(k)
			after, _ := bigger.Owner(k)
			if before != after {
				moved++
				if after != added {
					t.Fatalf("key %q moved to %s, not the newly added replica", k, after)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1.0 / float64(n+1)
		if frac > 1.5*ideal {
			t.Fatalf("adding a replica remapped %.3f of the keyspace (ideal %.3f, bound %.3f)",
				frac, ideal, 1.5*ideal)
		}
	})
}

// TestRingStableAcrossConstruction pins that the mapping is a pure
// function of the membership set: rebuilt rings (process restarts) and
// reordered replica lists map every key identically. This is what rules
// out any dependence on Go map iteration order in the implementation.
func TestRingStableAcrossConstruction(t *testing.T) {
	keys := testKeys(10000)
	names := replicaNames(5)
	a := NewRing(names, 0)
	b := NewRing(names, 0) // fresh construction = restart
	shuffled := []string{names[3], names[0], names[4], names[2], names[1]}
	c := NewRing(shuffled, 0)
	for _, k := range keys {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob {
			t.Fatalf("key %q maps to %s then %s across identical constructions", k, oa, ob)
		}
		if oa != oc {
			t.Fatalf("key %q maps to %s then %s when the replica list is reordered", k, oa, oc)
		}
	}
}

// TestRingBalance bounds the per-replica keyspace share: with 128 virtual
// nodes per replica no replica may own a pathological slice of the ring.
func TestRingBalance(t *testing.T) {
	keys := testKeys(10000)
	names := replicaNames(5)
	ring := NewRing(names, 0)
	counts := make(map[string]int)
	for _, k := range keys {
		o, ok := ring.Owner(k)
		if !ok {
			t.Fatal("owner lookup failed on a populated ring")
		}
		counts[o]++
	}
	mean := float64(len(keys)) / float64(len(names))
	for _, name := range names {
		share := float64(counts[name])
		if share > 2*mean || share < mean/2.5 {
			t.Fatalf("replica %s owns %d of %d keys (mean %.0f) — ring is unbalanced", name, counts[name], len(keys), mean)
		}
	}
}

// TestRingSuccessors pins the failover order contract: the first
// successor is the owner, entries are distinct, and the list is a prefix
// of the full ring order (asking for fewer returns the same heads).
func TestRingSuccessors(t *testing.T) {
	names := replicaNames(4)
	ring := NewRing(names, 0)
	for _, k := range testKeys(100) {
		all := ring.Successors(k, len(names))
		if len(all) != len(names) {
			t.Fatalf("Successors returned %d replicas, want %d", len(all), len(names))
		}
		owner, _ := ring.Owner(k)
		if all[0] != owner {
			t.Fatalf("Successors[0] = %s, Owner = %s", all[0], owner)
		}
		seen := make(map[string]bool)
		for _, r := range all {
			if seen[r] {
				t.Fatalf("Successors repeated replica %s", r)
			}
			seen[r] = true
		}
		two := ring.Successors(k, 2)
		if len(two) != 2 || two[0] != all[0] || two[1] != all[1] {
			t.Fatalf("Successors(2) = %v is not a prefix of Successors(all) = %v", two, all)
		}
	}
	if got := ring.Successors("k", 0); got != nil {
		t.Fatalf("Successors(0) = %v, want nil", got)
	}
	empty := NewRing(nil, 0)
	if _, ok := empty.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}
