package fleet

import (
	"testing"
	"time"
)

// The breaker tests drive time explicitly — no sleeps, no flakes.

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, time.Second, 0)
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false, now)
	}
	// A success between failures resets the consecutive count: only
	// *consecutive* failures signal a broken replica, not background noise.
	b.Record(true, now)
	for i := 0; i < 2; i++ {
		b.Record(false, now)
	}
	if state, _ := b.State(now); state != "closed" {
		t.Fatalf("breaker tripped on interleaved failures (state %s)", state)
	}
	b.Record(false, now)
	if state, trips := b.State(now); state != "open" || trips != 1 {
		t.Fatalf("state %s trips %d after 3 consecutive failures, want open/1", state, trips)
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a request")
	}
}

func TestBreakerProbationProbeAndReadmission(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, time.Second, 0)
	b.Record(false, now)
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("breaker admitted a request during probation")
	}
	probeAt := now.Add(1100 * time.Millisecond)
	if !b.Allow(probeAt) {
		t.Fatal("breaker refused the probe after probation expired")
	}
	// Exactly one probe: concurrent callers must not stampede a replica
	// that just came back.
	if b.Allow(probeAt) {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.Record(true, probeAt)
	if state, _ := b.State(probeAt); state != "closed" {
		t.Fatalf("probe success left state %s, want closed", state)
	}
	if !b.Allow(probeAt) {
		t.Fatal("re-admitted replica refused a request")
	}
}

func TestBreakerFlappingDoublesProbation(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, time.Second, 4*time.Second)
	b.Record(false, now) // trip #1: probation 1s

	// Probe fails: probation doubles to 2s.
	now = now.Add(1100 * time.Millisecond)
	if !b.Allow(now) {
		t.Fatal("probe refused")
	}
	b.Record(false, now)
	if b.Allow(now.Add(1500 * time.Millisecond)) {
		t.Fatal("flapping replica re-admitted before doubled probation expired")
	}
	// Probe fails again: 4s (the cap).
	now = now.Add(2100 * time.Millisecond)
	if !b.Allow(now) {
		t.Fatal("second probe refused")
	}
	b.Record(false, now)
	if b.Allow(now.Add(3900 * time.Millisecond)) {
		t.Fatal("re-admitted before capped probation expired")
	}
	// Cap holds: the next doubling would be 8s, but maxProbation pins 4s.
	now = now.Add(4100 * time.Millisecond)
	if !b.Allow(now) {
		t.Fatal("probe after capped probation refused")
	}
	b.Record(false, now)
	if !b.Allow(now.Add(4100 * time.Millisecond)) {
		t.Fatal("probation exceeded the configured cap")
	}

	// A probe success resets probation back to the base, so a healed
	// replica is not stuck with its flapping history.
	b.Record(true, now.Add(4100*time.Millisecond))
	now = now.Add(5 * time.Second)
	b.Record(false, now)
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("probation did not apply after reset")
	}
	if !b.Allow(now.Add(1100 * time.Millisecond)) {
		t.Fatal("probation did not reset to base after a healthy stretch")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(5, time.Second, 0)
	b.ForceOpen(now)
	if b.Allow(now) {
		t.Fatal("force-opened breaker admitted a request")
	}
	if state, trips := b.State(now); state != "open" || trips != 1 {
		t.Fatalf("state %s trips %d after ForceOpen, want open/1", state, trips)
	}
	// Repeat ForceOpen while open is a no-op, not another trip.
	b.ForceOpen(now)
	if _, trips := b.State(now); trips != 1 {
		t.Fatalf("repeat ForceOpen counted %d trips, want 1", trips)
	}
}
