package experiments

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

var (
	envOnce sync.Once
	env     *Env
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { env = NewEnv(7) })
	return env
}

func TestFig2MatchesPaperRates(t *testing.T) {
	tab := Fig2(testEnv(t))
	var missing, erroneous float64
	for _, row := range tab.Rows {
		share, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		switch row[0] {
		case "missing evidence":
			missing = share
		case "erroneous evidence":
			erroneous = share
		}
	}
	// The quota-based injector should land within half a point of the
	// paper's 9.65% / 6.84%.
	if missing < 9.1 || missing > 10.2 {
		t.Errorf("missing rate %.2f%%, paper 9.65%%", missing)
	}
	if erroneous < 6.3 || erroneous > 7.4 {
		t.Errorf("erroneous rate %.2f%%, paper 6.84%%", erroneous)
	}
}

func TestTable1CoversErrorTypes(t *testing.T) {
	tab := Table1(testEnv(t))
	if len(tab.Rows) < 5 {
		t.Errorf("Table I shows only %d error types", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == row[3] {
			t.Errorf("defective and revised evidence identical for %s", row[0])
		}
	}
}

func TestTable2CorrectionHelpsAndIsMonotone(t *testing.T) {
	tab := Table2(testEnv(t))
	if len(tab.Rows) != 4 {
		t.Fatalf("Table II rows = %d, want 4 (CodeS sizes)", len(tab.Rows))
	}
	prev := 101.0
	for _, row := range tab.Rows {
		bad, _ := strconv.ParseFloat(row[1], 64)
		good, _ := strconv.ParseFloat(strings.Fields(row[2])[0], 64)
		if good <= bad {
			t.Errorf("%s: corrected evidence must beat defective (%v vs %v)", row[0], good, bad)
		}
		if good > prev+1e-9 {
			t.Errorf("corrected EX not monotone in size at %s", row[0])
		}
		prev = good
	}
}

func TestTable3CountsAllCategories(t *testing.T) {
	tab := Table3(testEnv(t))
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		if n == 0 {
			t.Errorf("category %s has zero clauses", row[0])
		}
	}
}

func TestTable6ShowsJoinDifference(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: run without -short")
	}
	e := testEnv(t)
	tab := Table6(e)
	if len(tab.Rows) < 4 {
		t.Fatalf("Table VI incomplete: %d rows", len(tab.Rows))
	}
	var ds, rev string
	for _, row := range tab.Rows {
		switch row[0] {
		case "SEED_deepseek":
			ds = row[1]
		case "SEED_revised":
			rev = row[1]
		}
	}
	if !strings.Contains(ds, "join on") {
		t.Errorf("deepseek evidence lacks join clause: %q", ds)
	}
	if strings.Contains(rev, "join on") {
		t.Errorf("revised evidence still has join clause: %q", rev)
	}
}

// TestTable4Shape asserts the paper's qualitative orderings on a sampled
// run (DESIGN.md §4): evidence omission degrades everyone, DAIL-SQL
// degrades most, CodeS profits at least as much from SEED as from gold
// evidence, and SEED_revised beats SEED_deepseek for CHESS.
func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: run without -short")
	}
	e := testEnv(t)
	dev := sampleEvery(e.BIRD.Dev, 3)
	gptEv := eval.FromMap(e.BIRDSeedEvidence(seed.VariantGPT))
	dsEv := eval.FromMap(e.BIRDSeedEvidence(seed.VariantDeepSeek))

	type res struct{ none, bird, gpt, ds float64 }
	measure := func(gen texttosql.Generator) res {
		return res{
			none: e.birdRunner.Evaluate(gen, dev, eval.NoEvidence).EX,
			bird: e.birdRunner.Evaluate(gen, dev, eval.ProvidedEvidence).EX,
			gpt:  e.birdRunner.Evaluate(gen, dev, gptEv).EX,
			ds:   e.birdRunner.Evaluate(gen, dev, dsEv).EX,
		}
	}
	chess := measure(texttosql.NewCHESSIRCGUT(e.Client))
	codes := measure(texttosql.NewCodeS(e.Client, 15))
	dail := measure(texttosql.NewDAILSQL(e.Client))

	for name, r := range map[string]res{"chess": chess, "codes": codes, "dail": dail} {
		if r.bird <= r.none {
			t.Errorf("%s: gold evidence should beat no evidence (%v vs %v)", name, r.bird, r.none)
		}
	}
	if dail.bird-dail.none <= chess.bird-chess.none {
		t.Errorf("DAIL-SQL must degrade hardest without evidence (dail %+.1f vs chess %+.1f)",
			dail.bird-dail.none, chess.bird-chess.none)
	}
	if codes.gpt < codes.none {
		t.Errorf("CodeS with SEED_gpt must beat no evidence (%v vs %v)", codes.gpt, codes.none)
	}
	// SEED as substitute: CodeS recovers at least 70% of the gold-evidence
	// gain; CHESS's deepseek variant recovers far less (format
	// sensitivity), staying within 3 points of no-evidence.
	if codes.gpt-codes.none < 0.7*(codes.bird-codes.none) {
		t.Errorf("CodeS SEED gain too small: %+.1f vs gold %+.1f", codes.gpt-codes.none, codes.bird-codes.none)
	}
	if chess.ds > chess.none+3 {
		t.Errorf("CHESS with SEED_deepseek should hover at/below no-evidence (%v vs %v)", chess.ds, chess.none)
	}
}

func TestFig3TraceRuns(t *testing.T) {
	out := Fig3Trace(testEnv(t))
	if !strings.Contains(out, "seed_gpt") || !strings.Contains(out, "seed_deepseek") {
		t.Errorf("trace misses variants: %s", out)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "1", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSampleEvery(t *testing.T) {
	xs := make([]dataset.Example, 10)
	if got := len(sampleEvery(xs, 3)); got != 4 {
		t.Errorf("sampleEvery(10,3) = %d, want 4", got)
	}
	if got := len(sampleEvery(xs, 1)); got != 10 {
		t.Errorf("sampleEvery(10,1) = %d, want 10", got)
	}
}

// TestEvidenceAccessorsConcurrent exercises the lazy service construction
// and stats snapshot from concurrent goroutines — under -race this guards
// Env's lock discipline around the evidence services.
func TestEvidenceAccessorsConcurrent(t *testing.T) {
	e := testEnv(t)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m := e.BIRDSeedEvidence(seed.VariantGPT); len(m) == 0 {
				t.Error("empty gpt evidence map")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if m := e.BIRDRevisedEvidence(); len(m) == 0 {
				t.Error("empty revised evidence map")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = e.EvidenceStats()
			_ = ThroughputReport(e).Render()
		}()
	}
	wg.Wait()
	if got := len(e.EvidenceStats()); got < 2 {
		t.Errorf("EvidenceStats lists %d services, want >= 2", got)
	}
}

func TestPipelineStageReportAndTracedAccessor(t *testing.T) {
	e := testEnv(t)
	ex := e.BIRD.Dev[0]
	ev, err := e.BIRDSeedEvidenceTraced(context.Background(), seed.VariantGPT, ex.DB, ex.Question)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Text == "" || ev.Trace == nil {
		t.Fatalf("traced accessor = %+v, want evidence with trace", ev)
	}
	// The offline batch accessor and the traced per-question accessor
	// answer from the same service, so the bytes must agree.
	if batch := e.BIRDSeedEvidence(seed.VariantGPT); batch[ex.ID] != ev.Text {
		t.Errorf("traced evidence %q != batch evidence %q", ev.Text, batch[ex.ID])
	}
	report := PipelineStageReport(e).Render()
	for _, stage := range []string{seed.StageKeywords, seed.StageSamples, seed.StageSchema, seed.StageShots, seed.StageGenerate} {
		if !strings.Contains(report, stage) {
			t.Errorf("stage report missing %s:\n%s", stage, report)
		}
	}
	if !strings.Contains(report, string(seed.VariantGPT)) {
		t.Errorf("stage report missing variant column:\n%s", report)
	}
}
