package experiments

import (
	"context"
	"testing"

	"repro/internal/seed"
)

// TestEnvWithStoreSharesEvidenceAcrossRuns: an Env built over a store
// directory persists its generations, and a second Env over the same
// directory serves them without invoking the simulator — the offline
// side of the "one evidence corpus shared between offline runs and
// online serving" contract.
func TestEnvWithStoreSharesEvidenceAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	env1 := NewEnvWithStore(7, dir)
	examples := env1.BIRD.Dev[:5]
	want := make(map[string]string, len(examples))
	for _, e := range examples {
		ev, err := env1.BIRDSeedEvidenceFor(ctx, seed.VariantGPT, e.DB, e.Question)
		if err != nil {
			t.Fatal(err)
		}
		want[e.ID] = ev
	}
	env1.Close()

	env2 := NewEnvWithStore(7, dir)
	defer env2.Close()
	baseline := env2.Client.LedgerSnapshot().TotalCalls()
	for _, e := range examples {
		ev, err := env2.BIRDSeedEvidenceFor(ctx, seed.VariantGPT, e.DB, e.Question)
		if err != nil {
			t.Fatal(err)
		}
		if ev != want[e.ID] {
			t.Fatalf("evidence for %s differs across store-backed envs:\n first  %q\n second %q", e.ID, want[e.ID], ev)
		}
	}
	if calls := env2.Client.LedgerSnapshot().TotalCalls() - baseline; calls != 0 {
		t.Errorf("second env made %d LLM calls for persisted questions, want 0", calls)
	}
	sts := env2.EvidenceStats()
	if len(sts) == 0 || sts[0].Restored == 0 {
		t.Errorf("second env restored nothing from the store: %+v", sts)
	}
}
