// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each driver returns a Table whose rows mirror the
// paper's layout; the bench harness and the benchrun CLI print them.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/llm"
	"repro/internal/seed"
)

// Env holds the corpora, simulator and memoised SEED outputs shared by all
// experiment drivers. Building SEED evidence for a whole split is the
// expensive step, so it is computed once per variant and cached.
type Env struct {
	Seed   uint64
	BIRD   *dataset.Corpus
	Spider *dataset.Corpus
	Client *llm.Simulator

	birdRunner   *eval.Runner
	spiderRunner *eval.Runner

	mu              sync.Mutex
	birdSeedEv      map[seed.Variant]map[string]string
	birdRevisedEv   map[string]string
	spiderSeedEv    map[string]string // dev+test, GPT variant
	spiderDescribed bool
}

// NewEnv builds the experiment environment from a corpus seed.
func NewEnv(corpusSeed uint64) *Env {
	e := &Env{
		Seed:   corpusSeed,
		BIRD:   dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed}),
		Spider: dataset.BuildSpider(corpusSeed),
		Client: llm.NewSimulator(),
	}
	e.birdRunner = eval.NewRunner(e.BIRD)
	e.spiderRunner = eval.NewRunner(e.Spider)
	e.birdSeedEv = make(map[seed.Variant]map[string]string)
	return e
}

// BIRDSeedEvidence generates (once) SEED evidence for every BIRD dev
// example under the given variant.
func (e *Env) BIRDSeedEvidence(v seed.Variant) map[string]string {
	e.mu.Lock()
	if ev, ok := e.birdSeedEv[v]; ok {
		e.mu.Unlock()
		return ev
	}
	e.mu.Unlock()

	cfg := seed.ConfigGPT()
	if v == seed.VariantDeepSeek {
		cfg = seed.ConfigDeepSeek()
	}
	p := seed.New(cfg, e.Client, e.BIRD)
	out := generateAll(p, e.BIRD.Dev)

	e.mu.Lock()
	e.birdSeedEv[v] = out
	e.mu.Unlock()
	return out
}

// BIRDRevisedEvidence generates (once) the SEED_revised condition:
// deepseek evidence with join clauses stripped by the revision model.
func (e *Env) BIRDRevisedEvidence() map[string]string {
	base := e.BIRDSeedEvidence(seed.VariantDeepSeek)
	e.mu.Lock()
	if e.birdRevisedEv != nil {
		defer e.mu.Unlock()
		return e.birdRevisedEv
	}
	e.mu.Unlock()

	p := seed.New(seed.ConfigDeepSeek(), e.Client, e.BIRD)
	out := make(map[string]string, len(base))
	var mu sync.Mutex
	parallelEach(len(e.BIRD.Dev), func(i int) {
		ex := e.BIRD.Dev[i]
		revised, err := p.Revise(base[ex.ID])
		if err != nil {
			revised = base[ex.ID]
		}
		mu.Lock()
		out[ex.ID] = revised
		mu.Unlock()
	})

	e.mu.Lock()
	e.birdRevisedEv = out
	e.mu.Unlock()
	return out
}

// SpiderSeedEvidence runs the paper's Spider pipeline (§IV-E3): generate
// description files with the revision model first, then SEED_gpt evidence
// for dev and test questions.
func (e *Env) SpiderSeedEvidence() map[string]string {
	e.mu.Lock()
	if e.spiderSeedEv != nil {
		defer e.mu.Unlock()
		return e.spiderSeedEv
	}
	e.mu.Unlock()

	p := seed.New(seed.ConfigGPT(), e.Client, e.Spider)
	e.mu.Lock()
	if !e.spiderDescribed {
		for _, db := range e.Spider.DBs {
			if err := p.DescribeDatabase(db); err != nil {
				panic(fmt.Sprintf("experiments: describing spider DB %s: %v", db.Name, err))
			}
		}
		e.spiderDescribed = true
	}
	e.mu.Unlock()

	split := append(append([]dataset.Example{}, e.Spider.Dev...), e.Spider.Test...)
	out := generateAll(p, split)

	e.mu.Lock()
	e.spiderSeedEv = out
	e.mu.Unlock()
	return out
}

// generateAll runs SEED over a split concurrently.
func generateAll(p *seed.Pipeline, split []dataset.Example) map[string]string {
	out := make(map[string]string, len(split))
	var mu sync.Mutex
	parallelEach(len(split), func(i int) {
		ex := split[i]
		ev, err := p.GenerateEvidence(ex.DB, ex.Question)
		if err != nil {
			ev = ""
		}
		mu.Lock()
		out[ex.ID] = ev
		mu.Unlock()
	})
	return out
}

func parallelEach(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// sampleEvery returns every nth example (n <= 1 returns all), for fast
// test-mode runs of the heavy tables.
func sampleEvery(split []dataset.Example, n int) []dataset.Example {
	if n <= 1 {
		return split
	}
	var out []dataset.Example
	for i := 0; i < len(split); i += n {
		out = append(out, split[i])
	}
	return out
}

// Table is a rendered experiment artefact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}
