// Package experiments reproduces every table and figure of the paper's
// evaluation section. Each driver returns a Table whose rows mirror the
// paper's layout; the bench harness and the benchrun CLI print them.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/evserve"
	"repro/internal/llm"
	"repro/internal/pipeline"
	"repro/internal/seed"
	"repro/internal/sqlengine"
)

// Env holds the corpora, simulator and the evidence-generation services
// shared by all experiment drivers. Building SEED evidence for a whole
// split is the expensive step; each variant is served by an evserve.Service
// whose cache makes repeat accessor calls (every table driver asks for the
// same splits) cost a lookup rather than a pipeline run.
type Env struct {
	Seed   uint64
	BIRD   *dataset.Corpus
	Spider *dataset.Corpus
	Client *llm.Simulator

	birdRunner   *eval.Runner
	spiderRunner *eval.Runner

	// mu guards lazy construction and reads of the service pointers;
	// the services themselves are concurrency-safe.
	mu         sync.Mutex
	gptSvc     *evserve.Service
	dsSvc      *evserve.Service
	revisedSvc *evserve.Service
	spiderSvc  *evserve.Service
}

// NewEnv builds the experiment environment from a corpus seed. Evidence
// services (and the pipelines behind them) are constructed lazily on first
// use, so experiments that never touch a variant never pay for it.
func NewEnv(corpusSeed uint64) *Env {
	e := &Env{
		Seed:   corpusSeed,
		BIRD:   dataset.BuildBIRD(dataset.BIRDOptions{Seed: corpusSeed}),
		Spider: dataset.BuildSpider(corpusSeed),
		Client: llm.NewSimulator(),
	}
	e.birdRunner = eval.NewRunner(e.BIRD)
	e.spiderRunner = eval.NewRunner(e.Spider)
	return e
}

// birdService returns (building once) the evidence service for a BIRD
// variant.
func (e *Env) birdService(v seed.Variant) *evserve.Service {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v == seed.VariantDeepSeek {
		if e.dsSvc == nil {
			p := seed.New(seed.ConfigDeepSeek(), e.Client, e.BIRD)
			e.dsSvc = evserve.New(evserve.Options{
				Variant:        string(seed.VariantDeepSeek),
				GenerateTraced: p.GenerateEvidenceTraced,
			})
		}
		return e.dsSvc
	}
	if e.gptSvc == nil {
		p := seed.New(seed.ConfigGPT(), e.Client, e.BIRD)
		e.gptSvc = evserve.New(evserve.Options{
			Variant:        string(seed.VariantGPT),
			GenerateTraced: p.GenerateEvidenceTraced,
		})
	}
	return e.gptSvc
}

// BIRDSeedEvidence generates SEED evidence for every BIRD dev example under
// the given variant. Results are served from the variant's evidence cache,
// so repeat calls are cheap.
func (e *Env) BIRDSeedEvidence(v seed.Variant) map[string]string {
	return evidenceMap(e.birdService(v), e.BIRD.Dev)
}

// BIRDSeedEvidenceFor generates (or serves from cache) evidence for one
// BIRD question under the given variant. It is the per-request view of the
// same pipeline BIRDSeedEvidence batches over a whole split — the serving
// subsystem's golden-equivalence tests compare its online responses
// against this entry point, and diagnostics can probe single questions
// without paying for a full split.
func (e *Env) BIRDSeedEvidenceFor(ctx context.Context, v seed.Variant, db, question string) (string, error) {
	return e.birdService(v).Generate(ctx, db, question)
}

// BIRDSeedEvidenceTraced is BIRDSeedEvidenceFor plus provenance: the
// returned evidence carries the stage-graph trace of the generation that
// produced it (preserved across the evidence cache). Diagnostics use it
// to print per-question trace trees.
func (e *Env) BIRDSeedEvidenceTraced(ctx context.Context, v seed.Variant, db, question string) (evserve.Evidence, error) {
	return e.birdService(v).GenerateTraced(ctx, db, question)
}

// BIRDRevisedEvidence generates the SEED_revised condition: deepseek
// evidence with join clauses stripped by the revision model. The revised
// service's generation function pulls the base evidence through the
// deepseek service (sharing its cache) before revising.
func (e *Env) BIRDRevisedEvidence() map[string]string {
	// Resolve the base service before taking e.mu: birdService locks it too.
	base := e.birdService(seed.VariantDeepSeek)
	e.mu.Lock()
	if e.revisedSvc == nil {
		p := seed.New(seed.ConfigDeepSeek(), e.Client, e.BIRD)
		e.revisedSvc = evserve.New(evserve.Options{
			Variant: "seed_revised",
			// The trace passed through is the base deepseek generation's:
			// revision is a post-pass over its output, so that is where
			// the evidence actually came from.
			GenerateTraced: func(ctx context.Context, db, question string) (string, *pipeline.Trace, error) {
				ev, err := base.GenerateTraced(ctx, db, question)
				if err != nil {
					return "", nil, err
				}
				revised, rerr := p.Revise(ev.Text)
				if rerr != nil {
					return ev.Text, ev.Trace, nil
				}
				return revised, ev.Trace, nil
			},
		})
	}
	svc := e.revisedSvc
	e.mu.Unlock()
	return evidenceMap(svc, e.BIRD.Dev)
}

// SpiderSeedEvidence runs the paper's Spider pipeline (§IV-E3): generate
// description files with the revision model first, then SEED_gpt evidence
// for dev and test questions.
func (e *Env) SpiderSeedEvidence() map[string]string {
	e.mu.Lock()
	if e.spiderSvc == nil {
		p := seed.New(seed.ConfigGPT(), e.Client, e.Spider)
		// Describe every database before the service goes concurrent:
		// DescribeDatabase installs docs into shared corpus state.
		for _, db := range e.Spider.DBs {
			if err := p.DescribeDatabase(db); err != nil {
				e.mu.Unlock()
				panic(fmt.Sprintf("experiments: describing spider DB %s: %v", db.Name, err))
			}
		}
		e.spiderSvc = evserve.New(evserve.Options{
			Variant:        string(seed.VariantGPT) + "_spider",
			GenerateTraced: p.GenerateEvidenceTraced,
		})
	}
	svc := e.spiderSvc
	e.mu.Unlock()
	split := append(append([]dataset.Example{}, e.Spider.Dev...), e.Spider.Test...)
	return evidenceMap(svc, split)
}

// Close shuts down the worker pools of every evidence service built so
// far. The Env is not usable for evidence generation afterwards.
func (e *Env) Close() {
	e.mu.Lock()
	services := []*evserve.Service{e.gptSvc, e.dsSvc, e.revisedSvc, e.spiderSvc}
	e.mu.Unlock()
	for _, svc := range services {
		if svc != nil {
			svc.Close()
		}
	}
}

// EvidenceStats snapshots the counters of every evidence service built so
// far, in a fixed variant order. Services never touched are omitted.
func (e *Env) EvidenceStats() []evserve.Stats {
	e.mu.Lock()
	services := []*evserve.Service{e.gptSvc, e.dsSvc, e.revisedSvc, e.spiderSvc}
	e.mu.Unlock()
	var out []evserve.Stats
	for _, svc := range services {
		if svc != nil {
			out = append(out, svc.Stats())
		}
	}
	return out
}

// PlanCacheReport renders the SQL engines' prepared-plan cache counters,
// aggregated per corpus. Every gold and predicted query the experiment
// drivers execute flows through these caches (eval prepares statements on
// the corpus engines), so the hit ratio is the direct measure of how much
// parse-and-plan work the evaluation hot path is skipping.
func PlanCacheReport(env *Env) *Table {
	t := &Table{
		Title:  "SQL plan cache",
		Header: []string{"corpus", "hits", "misses", "evictions", "entries"},
	}
	for _, c := range []*dataset.Corpus{env.BIRD, env.Spider} {
		if c == nil {
			continue
		}
		var agg sqlengine.PlanCacheStats
		for _, db := range c.DBs {
			agg.Add(db.Engine.PlanCacheStats())
		}
		t.Rows = append(t.Rows, []string{
			c.Name,
			fmt.Sprint(agg.Hits),
			fmt.Sprint(agg.Misses),
			fmt.Sprint(agg.Evictions),
			fmt.Sprint(agg.Entries),
		})
	}
	return t
}

// PipelineStageReport renders the per-stage cost table of every evidence
// service built so far: how often each DAG stage ran, how often its memo
// answered, and the wall time and token spend it accumulated. This is the
// table the stage-graph refactor exists to make visible — where a
// generation actually spends its time.
func PipelineStageReport(env *Env) *Table {
	t := &Table{
		Title:  "Evidence pipeline stages",
		Header: []string{"variant", "stage", "runs", "memo hits", "hit%", "mean wall", "total wall", "tokens"},
	}
	for _, st := range env.EvidenceStats() {
		for _, sa := range st.Stages {
			t.Rows = append(t.Rows, []string{
				st.Variant,
				sa.Stage,
				fmt.Sprint(sa.Count),
				fmt.Sprint(sa.CacheHits),
				fmt.Sprintf("%.0f%%", 100*sa.HitRate()),
				(time.Duration(sa.MeanMicros()) * time.Microsecond).Round(time.Microsecond).String(),
				(time.Duration(sa.WallMicros) * time.Microsecond).Round(time.Microsecond).String(),
				fmt.Sprint(sa.Tokens),
			})
		}
	}
	if len(t.Rows) == 0 {
		t.Notes = append(t.Notes, "no traced generations yet")
	}
	return t
}

// ThroughputReport renders the evidence services' cache and batch counters
// as a table; empty when no evidence has been generated yet.
func ThroughputReport(env *Env) *Table {
	t := &Table{
		Title:  "Evidence service throughput",
		Header: []string{"variant", "hits", "misses", "dedup", "gen", "gen time", "batch reqs", "batch time", "req/s"},
	}
	for _, st := range env.EvidenceStats() {
		t.Rows = append(t.Rows, []string{
			st.Variant,
			fmt.Sprint(st.Cache.Hits),
			fmt.Sprint(st.Cache.Misses),
			fmt.Sprint(st.Dedups),
			fmt.Sprint(st.Generations),
			st.GenerationTime.Round(time.Millisecond).String(),
			fmt.Sprint(st.BatchRequests),
			st.BatchTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", st.Throughput()),
		})
	}
	return t
}

// evidenceMap runs a split through the service's batch API and returns the
// evidence keyed by example ID. Failed requests map to empty evidence, the
// same contract the table drivers have always had.
func evidenceMap(svc *evserve.Service, split []dataset.Example) map[string]string {
	reqs := make([]evserve.Request, len(split))
	for i, ex := range split {
		reqs[i] = evserve.Request{DB: ex.DB, Question: ex.Question}
	}
	results, _ := svc.GenerateAll(context.Background(), reqs)
	out := make(map[string]string, len(split))
	for i, r := range results {
		ev := r.Evidence
		if r.Err != nil {
			ev = ""
		}
		out[split[i].ID] = ev
	}
	return out
}

// sampleEvery returns every nth example (n <= 1 returns all), for fast
// test-mode runs of the heavy tables.
func sampleEvery(split []dataset.Example, n int) []dataset.Example {
	if n <= 1 {
		return split
	}
	var out []dataset.Example
	for i := 0; i < len(split); i += n {
		out = append(out, split[i])
	}
	return out
}

// Table is a rendered experiment artefact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: " + n + "\n")
	}
	return b.String()
}
