package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/llm"
	"repro/internal/seed"
	"repro/internal/texttosql"
)

// birdGenerators returns the six Table IV rows in paper order.
func birdGenerators(client llm.Client) []texttosql.Generator {
	return []texttosql.Generator{
		texttosql.NewCHESSIRCGUT(client),
		texttosql.NewCHESSIRSSCG(client),
		texttosql.NewRSLSQL(client),
		texttosql.NewCodeS(client, 15),
		texttosql.NewCodeS(client, 7),
		texttosql.NewDAILSQL(client),
	}
}

func pct(v float64) string { return fmt.Sprintf("%.2f", v) }

func delta(base, v float64) string {
	return fmt.Sprintf("%.2f (%+.2f)", v, v-base)
}

// Table4 reproduces Table IV: BIRD dev EX% and VES% for six model
// configurations under four evidence conditions. sample > 1 evaluates
// every sample-th dev example (test mode); <= 1 is the full split.
func Table4(env *Env, sample int) *Table {
	dev := sampleEvery(env.BIRD.Dev, sample)
	gptEv := eval.FromMap(env.BIRDSeedEvidence(seed.VariantGPT))
	dsEv := eval.FromMap(env.BIRDSeedEvidence(seed.VariantDeepSeek))

	t := &Table{
		Title: "Table IV: BIRD dev — performance without evidence, with BIRD evidence, and with SEED",
		Header: []string{"model", "EX w/o", "EX w/ evid", "EX SEED_gpt", "EX SEED_ds",
			"VES w/o", "VES w/ evid", "VES SEED_gpt", "VES SEED_ds"},
	}
	if sample > 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("sampled: every %d-th of %d dev examples", sample, len(env.BIRD.Dev)))
	}
	for _, gen := range birdGenerators(env.Client) {
		none := env.birdRunner.Evaluate(gen, dev, eval.NoEvidence)
		bird := env.birdRunner.Evaluate(gen, dev, eval.ProvidedEvidence)
		gpt := env.birdRunner.Evaluate(gen, dev, gptEv)
		ds := env.birdRunner.Evaluate(gen, dev, dsEv)
		t.Rows = append(t.Rows, []string{
			gen.Name(),
			pct(none.EX), delta(none.EX, bird.EX), delta(none.EX, gpt.EX), delta(none.EX, ds.EX),
			pct(none.VES), delta(none.VES, bird.VES), delta(none.VES, gpt.VES), delta(none.VES, ds.VES),
		})
	}
	return t
}

// Table2 reproduces Table II: CodeS sizes on the erroneous-evidence dev
// pairs, defective versus manually corrected evidence.
func Table2(env *Env) *Table {
	var erroneous []dataset.Example
	for _, e := range env.BIRD.Dev {
		switch e.Defect {
		case dataset.DefectNone, dataset.DefectMissing:
		default:
			erroneous = append(erroneous, e)
		}
	}
	t := &Table{
		Title:  fmt.Sprintf("Table II: EX on the %d erroneous-evidence pairs, before and after correction", len(erroneous)),
		Header: []string{"model", "EX defective", "EX corrected"},
	}
	for _, size := range []int{15, 7, 3, 1} {
		gen := texttosql.NewCodeS(env.Client, size)
		bad := env.birdRunner.Evaluate(gen, erroneous, eval.ProvidedEvidence)
		good := env.birdRunner.Evaluate(gen, erroneous, eval.CleanEvidenceOf)
		t.Rows = append(t.Rows, []string{gen.Name(), pct(bad.EX), delta(bad.EX, good.EX)})
	}
	return t
}

// Table5 reproduces Table V: Spider dev and test EX with and without
// SEED_gpt evidence (description files generated first, §IV-E3).
func Table5(env *Env) *Table {
	seedEv := eval.FromMap(env.SpiderSeedEvidence())
	gens := []texttosql.Generator{
		texttosql.NewCodeS(env.Client, 15),
		texttosql.NewCodeS(env.Client, 7),
		texttosql.NewC3(env.Client),
	}
	t := &Table{
		Title:  "Table V: Spider — EX without SEED and with SEED_gpt",
		Header: []string{"model", "dev w/o", "dev w/ SEED", "test w/o", "test w/ SEED"},
	}
	for _, gen := range gens {
		devNone := env.spiderRunner.Evaluate(gen, env.Spider.Dev, eval.NoEvidence)
		devSeed := env.spiderRunner.Evaluate(gen, env.Spider.Dev, seedEv)
		testNone := env.spiderRunner.Evaluate(gen, env.Spider.Test, eval.NoEvidence)
		testSeed := env.spiderRunner.Evaluate(gen, env.Spider.Test, seedEv)
		t.Rows = append(t.Rows, []string{
			gen.Name(),
			pct(devNone.EX), delta(devNone.EX, devSeed.EX),
			pct(testNone.EX), delta(testNone.EX, testSeed.EX),
		})
	}
	return t
}

// Table7 reproduces Table VII: CHESS_IR+CG+UT and CodeS under
// SEED_deepseek versus SEED_revised (join clauses stripped).
func Table7(env *Env, sample int) *Table {
	dev := sampleEvery(env.BIRD.Dev, sample)
	dsEv := eval.FromMap(env.BIRDSeedEvidence(seed.VariantDeepSeek))
	revEv := eval.FromMap(env.BIRDRevisedEvidence())
	gens := []texttosql.Generator{
		texttosql.NewCHESSIRCGUT(env.Client),
		texttosql.NewCodeS(env.Client, 15),
		texttosql.NewCodeS(env.Client, 7),
	}
	t := &Table{
		Title: "Table VII: BIRD dev — SEED_deepseek versus SEED_revised",
		Header: []string{"model", "EX w/o", "EX SEED_ds", "EX SEED_rev",
			"VES w/o", "VES SEED_ds", "VES SEED_rev"},
	}
	for _, gen := range gens {
		none := env.birdRunner.Evaluate(gen, dev, eval.NoEvidence)
		ds := env.birdRunner.Evaluate(gen, dev, dsEv)
		rev := env.birdRunner.Evaluate(gen, dev, revEv)
		t.Rows = append(t.Rows, []string{
			gen.Name(),
			pct(none.EX), delta(none.EX, ds.EX), delta(none.EX, rev.EX),
			pct(none.VES), delta(none.VES, ds.VES), delta(none.VES, rev.VES),
		})
	}
	return t
}

// Fig2 reproduces Figure 2: the BIRD dev evidence defect census — overall
// rates (left pie) and the error-type distribution (right pie).
func Fig2(env *Env) *Table {
	audit := dataset.AuditDefects(env.BIRD.Dev)
	total := len(env.BIRD.Dev)
	var erroneous int
	for _, dt := range dataset.ErroneousTypes() {
		erroneous += audit[dt]
	}
	t := &Table{
		Title:  "Figure 2: BIRD dev evidence defect census",
		Header: []string{"category", "count", "share"},
	}
	add := func(name string, n int) {
		t.Rows = append(t.Rows, []string{name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f%%", 100*float64(n)/float64(total))})
	}
	add("correct evidence", audit[dataset.DefectNone])
	add("missing evidence", audit[dataset.DefectMissing])
	add("erroneous evidence", erroneous)
	for _, dt := range dataset.ErroneousTypes() {
		add("  - "+dt.String(), audit[dt])
	}
	t.Notes = append(t.Notes, fmt.Sprintf("paper: 9.65%% missing, 6.84%% erroneous of 1,534 pairs; here of %d pairs", total))
	return t
}

// Table1 reproduces Table I: sample defective evidence with the revised
// (clean) version, one row per error type found in the dev split.
func Table1(env *Env) *Table {
	t := &Table{
		Title:  "Table I: error samples from the dev split evidence",
		Header: []string{"error type", "question", "evidence (defective)", "revised evidence"},
	}
	seen := make(map[dataset.DefectType]bool)
	for _, e := range env.BIRD.Dev {
		switch e.Defect {
		case dataset.DefectNone, dataset.DefectMissing:
			continue
		}
		if seen[e.Defect] {
			continue
		}
		seen[e.Defect] = true
		t.Rows = append(t.Rows, []string{
			e.Defect.String(), clip(e.Question, 60), clip(e.Evidence, 70), clip(e.CleanEvidence, 70),
		})
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
	return t
}

// Table3 reproduces Table III: the knowledge-category census of dev
// evidence, with the information source each category derives from.
func Table3(env *Env) *Table {
	var evs []string
	for _, e := range env.BIRD.Dev {
		if e.CleanEvidence != "" {
			evs = append(evs, e.CleanEvidence)
		}
	}
	census := evidence.CategoryCensus(evs)
	t := &Table{
		Title:  "Table III: evidence knowledge categories and their information sources",
		Header: []string{"knowledge type", "clauses", "information source"},
	}
	rows := []struct{ cat, source string }{
		{evidence.CategoryDomain, "database description file (documented ranges)"},
		{evidence.CategorySynonym, "description file or database values"},
		{evidence.CategoryValue, "database description file (value codes)"},
		{evidence.CategoryNumeric, "external numeric-reasoning knowledge (few-shot exemplars)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.cat, fmt.Sprintf("%d", census[r.cat]), r.source})
	}
	return t
}

// Table6 reproduces Table VI: BIRD evidence versus SEED_deepseek versus
// SEED_revised for an example question, showing the join-clause
// difference.
func Table6(env *Env) *Table {
	dsEv := env.BIRDSeedEvidence(seed.VariantDeepSeek)
	revEv := env.BIRDRevisedEvidence()
	t := &Table{
		Title:  "Table VI: evidence format comparison (join-clause difference)",
		Header: []string{"source", "evidence"},
	}
	for _, e := range env.BIRD.Dev {
		ds := dsEv[e.ID]
		if e.CleanEvidence == "" || !evidence.HasJoins(ds) {
			continue
		}
		// Surface the join clause even in long evidence: show the tail
		// containing it rather than a blind prefix.
		t.Rows = append(t.Rows, []string{"question", clip(e.Question, 110)})
		t.Rows = append(t.Rows, []string{"BIRD evidence", clip(e.CleanEvidence, 220)})
		t.Rows = append(t.Rows, []string{"SEED_deepseek", clipKeeping(ds, "join on", 220)})
		t.Rows = append(t.Rows, []string{"SEED_revised", clip(revEv[e.ID], 220)})
		break
	}
	return t
}

// Fig3Trace renders the per-stage pipeline trace for both SEED variants on
// one question — the textual equivalent of the Fig. 3 architecture
// diagrams.
func Fig3Trace(env *Env) string {
	q := env.BIRD.Dev[0]
	out := "Figure 3: SEED pipeline structures\n"
	for _, v := range []seed.Variant{seed.VariantGPT, seed.VariantDeepSeek} {
		cfg := seed.ConfigGPT()
		if v == seed.VariantDeepSeek {
			cfg = seed.ConfigDeepSeek()
		}
		p := seed.New(cfg, env.Client, env.BIRD)
		ev, err := p.GenerateEvidence(q.DB, q.Question)
		if err != nil {
			ev = "error: " + err.Error()
		}
		out += fmt.Sprintf("\n[%s] sample-model=%s generate-model=%s summarize=%v join-hints=%v\n",
			v, cfg.SampleModel, cfg.GenerateModel, cfg.Summarize, cfg.EmitJoinHints)
		out += "question: " + q.Question + "\n"
		out += "evidence: " + ev + "\n"
	}
	return out
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// clipKeeping clips s to n characters while guaranteeing the substring
// marker stays visible, shifting the window to the marker when needed.
func clipKeeping(s, marker string, n int) string {
	if len(s) <= n {
		return s
	}
	i := strings.Index(s, marker)
	if i < 0 || i+len(marker) <= n-3 {
		return s[:n-3] + "..."
	}
	start := i - (n-6)/2
	if start < 0 {
		start = 0
	}
	end := start + n - 6
	if end > len(s) {
		end = len(s)
	}
	return "..." + s[start:end] + "..."
}
