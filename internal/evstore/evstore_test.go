package evstore

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/evserve"
	"repro/internal/pipeline"
)

// testEntry builds a deterministic entry with a trace, so persistence
// tests cover the provenance path too.
func testEntry(text string, wall int64) evserve.Entry {
	return evserve.Entry{
		Evidence: text,
		Trace: &pipeline.Trace{
			Graph: "seed_evidence",
			Stages: []pipeline.StageTrace{
				{Stage: "extract_keywords", WallMicros: wall, Tokens: 12},
				{Stage: "generate", Deps: []string{"extract_keywords"}, WallMicros: wall * 2, Tokens: 40},
			},
			WallMicros:   wall * 3,
			SerialMicros: wall * 3,
		},
	}
}

// loadAll replays a store into a map for assertions.
func loadAll(t *testing.T, s *Store) map[evserve.Key]evserve.Entry {
	t.Helper()
	got := make(map[evserve.Key]evserve.Entry)
	if err := s.Load(func(k evserve.Key, e evserve.Entry) { got[k] = e }); err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got
}

// mustJSON marshals for byte-level comparisons.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k1 := evserve.KeyFor("financial", "seed_gpt", "How many accounts?")
	k2 := evserve.KeyFor("financial", "seed_gpt", "List loans over 10k")
	e1, e2 := testEntry("accounts means table account", 100), testEntry("loan.amount is in CZK", 250)
	if err := s.Append(k1, e1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(k2, e2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := loadAll(t, r)
	if len(got) != 2 {
		t.Fatalf("reopened store has %d entries, want 2", len(got))
	}
	for k, want := range map[evserve.Key]evserve.Entry{k1: e1, k2: e2} {
		if !bytes.Equal(mustJSON(t, got[k]), mustJSON(t, want)) {
			t.Errorf("entry for %v not byte-identical after reopen:\n got %s\nwant %s",
				k, mustJSON(t, got[k]), mustJSON(t, want))
		}
	}
	st := r.Stats()
	if st.Records != 2 || st.TailDropped != 0 {
		t.Errorf("stats = %+v, want 2 records, 0 dropped", st)
	}
	if st.ReplayMicros < 0 {
		t.Errorf("negative replay time: %+v", st)
	}
}

func TestReappendLatestWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := evserve.KeyFor("card_games", "seed_gpt", "q")
	if err := s.Append(k, testEntry("old", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(k, testEntry("new", 2)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (latest per key)", s.Len())
	}
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := loadAll(t, r)
	if got[k].Evidence != "new" {
		t.Fatalf("replayed evidence = %q, want the newest record to win", got[k].Evidence)
	}
}

func TestCompactionSnapshotsAndEmptiesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]evserve.Key, 10)
	for i := range keys {
		keys[i] = evserve.KeyFor("db", "v", strings.Repeat("q", i+1))
		if err := s.Append(keys[i], testEntry(strings.Repeat("e", i+1), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Two post-compaction appends land in the fresh WAL generation.
	for i := 0; i < 2; i++ {
		k := evserve.KeyFor("db", "v", strings.Repeat("z", i+1))
		keys = append(keys, k)
		if err := s.Append(k, testEntry("post-compact", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions != 1 || st.SnapshotRecords != 10 || st.WALRecords != 2 {
		t.Fatalf("stats after compaction = %+v, want 1 compaction, 10 snapshot records, 2 wal records", st)
	}
	s.Close()

	// Disk state matches the counters: compacted snapshot + fresh WAL, no
	// leftover tail.
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(wal, []byte{'\n'}); n != st.WALRecords {
		t.Fatalf("wal holds %d records on disk, stats say %d", n, st.WALRecords)
	}
	snap, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(snap, []byte{'\n'}); n != st.SnapshotRecords {
		t.Fatalf("snapshot holds %d records on disk, stats say %d", n, st.SnapshotRecords)
	}
	if _, err := os.Stat(filepath.Join(dir, walTailFile)); !os.IsNotExist(err) {
		t.Fatalf("tail WAL still present after completed compaction: %v", err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := loadAll(t, r); len(got) != len(keys) {
		t.Fatalf("replayed %d entries after compaction, want %d", len(got), len(keys))
	}
}

// TestAutoCompactionRunsInBackground: crossing CompactEvery triggers a
// compaction off the append path; Flush waits for it, and nothing is
// lost across a reopen.
func TestAutoCompactionRunsInBackground(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := s.Append(evserve.KeyFor("db", "v", strings.Repeat("q", i+1)), testEntry("e", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil { // waits for in-flight compactions
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions < 1 {
		t.Fatalf("no background compaction ran after %d appends at CompactEvery=4: %+v", total, st)
	}
	if st.CompactErrors != 0 {
		t.Fatalf("compact errors: %+v", st)
	}
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := loadAll(t, r); len(got) != total {
		t.Fatalf("replayed %d entries, want %d", len(got), total)
	}
	if st := r.Stats(); st.TailDropped != 0 {
		t.Fatalf("background compaction corrupted the log: %+v", st)
	}
}

// TestCrashMidCompactionRecovers: a crash between WAL rotation and
// snapshot rename leaves snapshot + wal.tail.evs + wal.evs on disk; Open
// must replay all three (snapshot, then tail, then WAL) and absorb the
// tail into a fresh snapshot.
func TestCrashMidCompactionRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	k1 := evserve.KeyFor("db", "v", "rotated-away")
	if err := s.Append(k1, testEntry("old-value", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash point: the WAL was rotated to the tail, a fresh
	// WAL took one more append (overwriting k1), and the snapshot never
	// landed.
	if err := os.Rename(filepath.Join(dir, walFile), filepath.Join(dir, walTailFile)); err != nil {
		t.Fatal(err)
	}
	k2 := evserve.KeyFor("db", "v", "post-rotation")
	line, err := encodeRecord(record{DB: k2.DB, Variant: k2.Variant, QHash: k2.QHash, Evidence: "fresh"})
	if err != nil {
		t.Fatal(err)
	}
	line2, err := encodeRecord(record{DB: k1.DB, Variant: k1.Variant, QHash: k1.QHash, Evidence: "new-value"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), append(line, line2...), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open over interrupted compaction: %v", err)
	}
	got := loadAll(t, r)
	if len(got) != 2 {
		t.Fatalf("recovered %d records, want 2", len(got))
	}
	// WAL replays after the tail, so its overwrite of k1 wins.
	if got[k1].Evidence != "new-value" || got[k2].Evidence != "fresh" {
		t.Fatalf("replay order wrong: %+v", got)
	}
	// The tail was absorbed into a fresh snapshot.
	if _, err := os.Stat(filepath.Join(dir, walTailFile)); !os.IsNotExist(err) {
		t.Fatalf("tail WAL not absorbed at Open: %v", err)
	}
	st := r.Stats()
	if st.SnapshotRecords != 2 || st.Compactions != 1 {
		t.Fatalf("absorb stats = %+v, want 2 snapshot records from 1 compaction", st)
	}
	// And the store remains fully usable afterwards.
	if err := r.Append(evserve.KeyFor("db", "v", "after"), testEntry("x", 3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := loadAll(t, r2); len(got) != 3 {
		t.Fatalf("post-recovery state lost records: %d, want 3", len(got))
	}
}

func TestExplicitCompactIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Append(evserve.KeyFor("db", "v", strings.Repeat("x", i+1)), testEntry("e", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Records != 5 || st.WALRecords != 0 || st.SnapshotRecords != 5 {
		t.Fatalf("stats after double compact = %+v", st)
	}
}

func TestBatchedFlushSurvivesOnlyAfterFlush(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FlushEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	k := evserve.KeyFor("db", "v", "q")
	if err := s.Append(k, testEntry("buffered", 1)); err != nil {
		t.Fatal(err)
	}
	// What a SIGKILL right now would preserve is exactly the on-disk WAL:
	// the append is still in the bufio buffer, so the file must be empty.
	// (The flock forbids opening a second Store while this one is alive,
	// so crash survival is asserted at the byte level.)
	if wal := readWAL(t, filepath.Join(dir, walFile)); len(wal) != 0 {
		t.Fatalf("unflushed append reached disk: %d bytes", len(wal))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if wal := readWAL(t, filepath.Join(dir, walFile)); bytes.Count(wal, []byte{'\n'}) != 1 {
		t.Fatalf("flushed append not on disk: %q", wal)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if n := recovered.Len(); n != 1 {
		t.Fatalf("flushed append lost: %d entries, want 1", n)
	}
}

// TestSecondOpenRefusedWhileLocked: the one-process-per-directory rule is
// enforced, not just documented — a concurrent Open fails fast instead of
// interleaving WAL frames, and the directory is usable again after Close.
func TestSecondOpenRefusedWhileLocked(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked store directory succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	r.Close()
}

// TestManifestMismatchRefused: a store stamped for one corpus generation
// refuses to open for another — question text hashes identically across
// generation seeds, so replaying would serve stale evidence as hits.
func TestManifestMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Manifest: "corpus=bird seed=7"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(evserve.KeyFor("db", "v", "q"), testEntry("e", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Manifest: "corpus=bird seed=9"}); err == nil {
		t.Fatal("store built for seed 7 opened for seed 9")
	}
	// The matching manifest — and the no-manifest opt-out — both reopen.
	r, err := Open(dir, Options{Manifest: "corpus=bird seed=7"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("matching manifest lost data: %d entries", r.Len())
	}
	r.Close()
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("manifest-less open should skip the check: %v", err)
	}
	r2.Close()
}

// TestSyncModeRoundTrip drives the fsync-everything configuration
// through append, compaction and reopen — the syncDir call sites all
// execute and the data round-trips.
func TestSyncModeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Append(evserve.KeyFor("db", "v", strings.Repeat("s", i+1)), testEntry("e", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(evserve.KeyFor("db", "v", "post"), testEntry("p", 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := loadAll(t, r); len(got) != 7 {
		t.Fatalf("sync-mode store replayed %d entries, want 7", len(got))
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Append(evserve.KeyFor("db", "v", "q"), testEntry("e", 1)); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{CompactEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := evserve.KeyFor("db", "v", strings.Repeat("q", g*per+i+1))
				if err := s.Append(k, testEntry("e", int64(i))); err != nil {
					t.Errorf("append: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != goroutines*per {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines*per)
	}
	s.Close()

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := loadAll(t, r); len(got) != goroutines*per {
		t.Fatalf("replayed %d entries, want %d", len(got), goroutines*per)
	}
	if st := r.Stats(); st.TailDropped != 0 {
		t.Fatalf("concurrent appends left %d corrupt records", st.TailDropped)
	}
}
