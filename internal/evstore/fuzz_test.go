package evstore

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/evserve"
)

// fuzzFrame renders one valid WAL frame for seeding the corpus.
func fuzzFrame(q, evidence string) []byte {
	k := evserve.KeyFor("db", "v", q)
	line, err := encodeRecord(record{DB: k.DB, Variant: k.Variant, QHash: k.QHash, Evidence: evidence})
	if err != nil {
		panic(err)
	}
	return line
}

// FuzzReplayFrame feeds arbitrary bytes to the WAL replay path (Open →
// replayFile → decodeRecord) and checks the recovery contract the
// corruption tests pin for hand-built cases:
//
//   - Open never panics and never errors on a damaged WAL — damage is
//     recovered from, not reported as failure;
//   - accounting is sane: live records plus dropped frames never exceed
//     the number of frames on disk;
//   - the recovered store accepts appends;
//   - a second Open is clean — recovery truncated the WAL to a valid
//     prefix, so no record is dropped twice and nothing is lost.
func FuzzReplayFrame(f *testing.F) {
	a := fuzzFrame("question one", "evidence one")
	b := fuzzFrame("question two", "evidence two")

	f.Add([]byte{})
	f.Add(append(append([]byte{}, a...), b...))
	// Torn tail: final frame lost its last bytes and its newline.
	f.Add(append(append([]byte{}, a...), b[:len(b)-5]...))
	// CRC flip: one payload byte corrupted in place.
	flipped := append([]byte{}, a...)
	flipped[20] ^= 0x40
	f.Add(flipped)
	// Bad hex in the checksum field.
	badHex := append([]byte{}, a...)
	copy(badHex, "zzzzzzzz")
	f.Add(badHex)
	// Frame too short to hold a checksum, and a missing space separator.
	f.Add([]byte("abc\n"))
	noSpace := append([]byte{}, a...)
	noSpace[8] = '_'
	f.Add(noSpace)
	// Valid frame, then binary garbage, then another valid frame.
	mid := append(append([]byte{}, a...), 0xff, 0x00, 0x7f, '\n')
	f.Add(append(mid, b...))
	// Checksum valid but payload is not a record JSON object.
	f.Add([]byte("00000000 \n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatalf("Open failed on damaged WAL instead of recovering: %v", err)
		}
		st := s.Stats()
		if lines := countLines(data); st.Records+st.TailDropped > lines {
			t.Fatalf("accounting: %d live + %d dropped > %d frames on disk",
				st.Records, st.TailDropped, lines)
		}
		k := evserve.KeyFor("db", "v", "post-recovery append")
		if err := s.Append(k, evserve.Entry{Evidence: "fresh"}); err != nil {
			t.Fatalf("recovered store rejected an append: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("closing recovered store: %v", err)
		}

		s2, err := Open(dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer s2.Close()
		st2 := s2.Stats()
		if st2.TailDropped != 0 {
			t.Fatalf("second Open dropped %d frames — recovery left a corrupt prefix behind", st2.TailDropped)
		}
		if st2.Records != st.Records+1 {
			t.Fatalf("records changed across clean reopen: %d then %d (expected +1 for the appended key)",
				st.Records, st2.Records)
		}
		var got bool
		if err := s2.Load(func(lk evserve.Key, e evserve.Entry) {
			if lk == k && e.Evidence == "fresh" {
				got = true
			}
		}); err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatal("append made before the clean close did not survive reopen")
		}
	})
}

// FuzzTailerStream feeds arbitrary bytes to a follower as a replication
// response body — modeling a leader behind a hostile network (truncations,
// flipped bits, duplicated frames, outright garbage) — and checks the
// replication safety contract:
//
//   - Poll never panics, whatever the peer sends;
//   - only CRC-valid frames reach the follower's store, and an identical
//     frame delivered twice is applied once (no double-apply);
//   - the follower's own WAL stays clean: a reopen drops nothing, so
//     network damage never became disk damage.
func FuzzTailerStream(f *testing.F) {
	a := fuzzFrame("replicated question one", "evidence one")
	b := fuzzFrame("replicated question two", "evidence two")

	f.Add([]byte{}, false)
	f.Add(append(append([]byte{}, a...), b...), false)
	// Torn tail: the second frame lost its last bytes mid-flight.
	f.Add(append(append([]byte{}, a...), b[:len(b)-5]...), false)
	// Duplicate frames: the same record delivered twice in one body.
	f.Add(append(append([]byte{}, a...), a...), false)
	// CRC flip inside the payload.
	flipped := append([]byte{}, a...)
	flipped[20] ^= 0x40
	f.Add(flipped, false)
	// Valid frame, garbage, valid frame — only the prefix may apply.
	mid := append(append([]byte{}, a...), 0xff, 0x00, '\n')
	f.Add(append(mid, b...), false)
	// The same bodies served as full dumps.
	f.Add(append(append([]byte{}, a...), b...), true)
	f.Add(append(append([]byte{}, a...), a...), true)

	f.Fuzz(func(t *testing.T, body []byte, full bool) {
		dir := t.TempDir()
		follower, err := Open(dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}

		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h := w.Header()
			h.Set(HeaderReplicateGen, "12345")
			h.Set(HeaderReplicateNext, strconv.Itoa(len(body)))
			h.Set(HeaderReplicateLen, strconv.Itoa(len(body)))
			if full {
				h.Set(HeaderReplicateFull, "1")
			}
			_, _ = w.Write(body)
		}))
		defer srv.Close()

		tl := NewTailer(srv.URL, follower, TailerOptions{})
		// Poll twice: the second delivery of the same bytes must dedup
		// against the first, not double-apply.
		if _, err := tl.Poll(context.Background()); err != nil {
			t.Fatalf("first poll errored on hostile bytes: %v", err)
		}
		tl.mu.Lock()
		tl.gen, tl.next = 0, 0 // replay the identical body from scratch
		tl.mu.Unlock()
		if _, err := tl.Poll(context.Background()); err != nil {
			t.Fatalf("second poll errored on hostile bytes: %v", err)
		}

		// Every applied record must correspond to a valid frame in the
		// body, and re-delivery must not have double-applied any of them.
		validFrames := 0
		uniq := make(map[evserve.Key]bool)
		scanFrames(body, func(rec record) {
			validFrames++
			uniq[evserve.Key{DB: rec.DB, Variant: rec.Variant, QHash: rec.QHash}] = true
		})
		st := tl.Stats()
		if int(st.Applied) > validFrames {
			t.Fatalf("applied %d records from a body holding %d valid frames", st.Applied, validFrames)
		}
		if follower.Len() > len(uniq) {
			t.Fatalf("store holds %d keys from a body holding %d distinct valid keys", follower.Len(), len(uniq))
		}

		if err := follower.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, Options{CompactEvery: -1})
		if err != nil {
			t.Fatalf("follower unopenable after hostile replication: %v", err)
		}
		defer re.Close()
		if re.Stats().TailDropped != 0 {
			t.Fatalf("hostile network bytes reached the follower's WAL: %d frames dropped on reopen", re.Stats().TailDropped)
		}
		if re.Len() != follower.Len() {
			t.Fatalf("follower lost records across reopen: %d then %d", follower.Len(), re.Len())
		}
	})
}
