package evstore

import "repro/internal/obs"

// RegisterMetrics publishes the store's counters into reg as gauge
// callbacks evaluated at scrape time.
func (s *Store) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	gauge := func(name, help string, get func(Stats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return get(s.Stats()) }, labels...)
	}
	gauge("evstore_records", "Live entries (latest per key).", func(st Stats) float64 { return float64(st.Records) })
	gauge("evstore_wal_records", "Records in the current WAL generation.", func(st Stats) float64 { return float64(st.WALRecords) })
	gauge("evstore_appends_total", "Accepted Append calls since Open.", func(st Stats) float64 { return float64(st.Appends) })
	gauge("evstore_compactions_total", "Completed snapshot rewrites since Open.", func(st Stats) float64 { return float64(st.Compactions) })
	gauge("evstore_compact_errors_total", "Abandoned compactions.", func(st Stats) float64 { return float64(st.CompactErrors) })
	gauge("evstore_snapshot_age_seconds", "Seconds since the last compaction (or Open).", func(st Stats) float64 { return st.SnapshotAgeSeconds })
}

// RegisterMetrics publishes the tailer's replication counters into reg,
// labelled by the peer it replicates from.
func (t *Tailer) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	labels = append([]obs.Label{obs.L("source", t.source)}, labels...)
	gauge := func(name, help string, get func(TailerStats) float64) {
		reg.GaugeFunc(name, help, func() float64 { return get(t.Stats()) }, labels...)
	}
	gauge("evstore_tailer_polls_total", "Replication round trips.", func(st TailerStats) float64 { return float64(st.Polls) })
	gauge("evstore_tailer_applied_total", "Replicated records landed locally.", func(st TailerStats) float64 { return float64(st.Applied) })
	gauge("evstore_tailer_duplicates_total", "Replicated records already present.", func(st TailerStats) float64 { return float64(st.Duplicates) })
	gauge("evstore_tailer_resyncs_total", "Full-dump restarts after stalled polls.", func(st TailerStats) float64 { return float64(st.Resyncs) })
	gauge("evstore_tailer_errors_total", "Failed polls.", func(st TailerStats) float64 { return float64(st.Errors) })
}
